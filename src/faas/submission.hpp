// Transport-free submission currency shared by every dispatch frontend.
//
// The pre-cluster Invoker fused three concerns: the submission types
// (task in, outcome out), the worker-pool transport (per-worker queues +
// shard-affine routing), and the binding to one Platform. The cluster
// scheduler needs the first two without the third — a cluster host runs
// the same worker loop against its own Platform, and pull-mode hosts
// replace the per-worker queues with a shared bounded queue they drain
// when idle. This header is the extracted currency:
//
//   * Submission / SubmissionOutcome — what flows in and out of any
//     dispatch frontend (Invoker, cluster Host, pull queue). `seq` is a
//     frontend-assigned identity so accounting tests can prove no
//     submission is lost or executed twice; `host` on the outcome is
//     filled by cluster frontends (always 0 single-host).
//   * TaskSource — the pull-mode abstraction: a blocking producer of
//     Submissions that a Dispatcher's workers drain instead of their own
//     queues (Hiku-style: idle hosts pull work; nothing is committed to a
//     host before a worker there is free).
//   * SharedTaskQueue — the bounded MPMC TaskSource the cluster uses.
//     push() blocks when full (submission backpressure), close() wakes
//     all consumers for shutdown.
#pragma once

#include <cassert>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <stdexcept>

#include "faas/admission.hpp"
#include "faas/platform.hpp"

namespace horse::faas {

/// One queued invocation, independent of which host/worker executes it.
/// A submission names either a plain function (workflow == kNoWorkflow)
/// or a workflow chain — in the latter case `function` mirrors the stage
/// at the hop cursor so shard-affine routing and per-function dispatch
/// policies see the chain under its current stage's identity, and the
/// chain still carries exactly one key and one deadline end-to-end.
struct Submission {
  FunctionId function = 0;
  StartMode mode = StartMode::kCold;
  workloads::Request request;
  /// Chain identity; kNoWorkflow for a plain function submission.
  WorkflowId workflow = kNoWorkflow;
  /// Hop cursor: the first chain stage this dispatch still has to run.
  /// Advanced in place by the executing host as stages complete, so an
  /// orphan-recovery re-dispatch resumes from the frontier and never
  /// re-executes a completed stage.
  std::uint32_t hop = 0;
  /// Monotonic clock at submit; queueing latency is measured against it.
  util::Nanos enqueued_at = 0;
  /// Absolute monotonic deadline; 0 = none. A deadline is both an expiry
  /// (the dispatcher drops the task at dequeue once it has passed — the
  /// caller already gave up, executing it only wastes a worker) and an
  /// admission signal (the scheduler sheds when estimated queue delay
  /// exceeds the remaining slack).
  util::Nanos deadline = 0;
  /// Frontend-assigned identity (1-based per frontend; 0 = untagged).
  std::uint64_t seq = 0;
  /// Stable idempotency key, assigned once at the frontend and preserved
  /// across every re-dispatch of the same logical submission. The crash
  /// dedup ledger keys on it: a late completion from a declared-dead host
  /// and the completion of its re-dispatched copy carry the SAME key, so
  /// exactly one of them surfaces. 0 = untagged (single-host Invoker
  /// paths that never re-dispatch).
  std::uint64_t key = 0;
  /// Set when a cluster re-dispatches after a stall/drop: re-dispatched
  /// submissions are exempt from the dispatch faults, which is what makes
  /// "re-dispatched exactly once" a structural property.
  bool redispatched = false;
};

struct SubmissionOutcome {
  FunctionId function = 0;
  StartMode mode = StartMode::kCold;
  util::Status status;
  InvocationRecord record;   // valid when status.is_ok()
  util::Nanos queueing = 0;  // submit-to-start wait (monotonic clock)
  std::uint64_t seq = 0;     // copied from the Submission
  std::uint64_t key = 0;     // idempotency key, copied from the Submission
  std::size_t host = 0;      // executing host (cluster mode; 0 single-host)
  /// Chain identity, copied from the Submission (kNoWorkflow = plain).
  WorkflowId workflow = kNoWorkflow;
  /// Hop cursor this execution STARTED from (0 unless the chain was
  /// re-dispatched mid-way by orphan recovery).
  std::uint32_t chain_first_hop = 0;
  /// Stages this execution actually ran (0 for plain submissions).
  std::uint32_t chain_stages = 0;
  /// Why the submission was refused, when it was (status not OK and no
  /// record). kNone for completed work AND for ordinary invocation
  /// failures — `reject != kNone` identifies overload-control refusals
  /// specifically, which is what the exactly-one-outcome sweeps count.
  SubmissionReject reject = SubmissionReject::kNone;
};

/// Pull-mode task producer: blocks consumers until work or shutdown.
class TaskSource {
 public:
  virtual ~TaskSource() = default;

  /// Blocks until a task is available (true) or the source is closed and
  /// drained (false). Multiple consumers may wait concurrently.
  virtual bool wait_pop(Submission& out) = 0;
};

/// Bounded MPMC queue of submissions — the cluster's shared pull queue.
///
/// Precondition: capacity > 0. A zero-capacity queue used to be silently
/// coerced to 1 — a config typo became an invisible convoy point instead
/// of an error. Construction now asserts and throws instead (configuration
/// error, not a hot-path condition).
class SharedTaskQueue final : public TaskSource {
 public:
  explicit SharedTaskQueue(std::size_t capacity) : capacity_(capacity) {
    assert(capacity > 0 && "SharedTaskQueue capacity must be positive");
    if (capacity == 0) {
      throw std::invalid_argument("SharedTaskQueue: capacity must be > 0");
    }
  }

  /// Blocks while the queue is full (backpressure toward submitters);
  /// returns false if the queue was closed before the task went in.
  bool push(Submission task) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock,
                   [this] { return tasks_.size() < capacity_ || closed_; });
    if (closed_) {
      return false;
    }
    tasks_.push_back(std::move(task));
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push: false when the queue is full or closed, leaving
  /// the task with the caller. This is the overload signal — a full pull
  /// queue means every host is busy AND the buffer is exhausted, so the
  /// scheduler sheds (typed kQueueFull) instead of convoying behind a
  /// blocking push.
  [[nodiscard]] bool try_push(Submission task) {
    {
      std::lock_guard lock(mutex_);
      if (closed_ || tasks_.size() >= capacity_) {
        return false;
      }
      tasks_.push_back(std::move(task));
    }
    not_empty_.notify_one();
    return true;
  }

  bool wait_pop(Submission& out) override {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [this] { return !tasks_.empty() || closed_; });
    if (tasks_.empty()) {
      return false;  // closed and drained
    }
    out = std::move(tasks_.front());
    tasks_.pop_front();
    not_full_.notify_one();
    return true;
  }

  /// Wake every blocked producer/consumer; consumers drain what remains.
  void close() {
    std::lock_guard lock(mutex_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mutex_);
    return tasks_.size();
  }

  [[nodiscard]] bool empty() const { return size() == 0; }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<Submission> tasks_;
  bool closed_ = false;
};

}  // namespace horse::faas
