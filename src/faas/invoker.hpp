// Asynchronous invocation frontend.
//
// FaaS gateways accept triggers concurrently and queue them toward the
// control plane; Invoker is that layer over Platform: submissions from
// any thread fan out to a worker pool, outcomes (status + record) are
// collected for later draining. The platform's control-plane mutex
// serializes the actual invocations — what the Invoker adds is admission,
// backpressure accounting, and a place to observe end-to-end queueing.
#pragma once

#include <atomic>
#include <mutex>
#include <vector>

#include "faas/platform.hpp"
#include "util/thread_pool.hpp"

namespace horse::faas {

class Invoker {
 public:
  struct Outcome {
    FunctionId function = 0;
    StartMode mode = StartMode::kCold;
    util::Status status;
    InvocationRecord record;   // valid when status.is_ok()
    util::Nanos queueing = 0;  // submit-to-start wait (monotonic clock)
  };

  Invoker(Platform& platform, std::size_t workers)
      : platform_(platform), pool_(workers) {}

  Invoker(const Invoker&) = delete;
  Invoker& operator=(const Invoker&) = delete;

  /// Fire-and-collect: enqueue an invocation. Thread-safe.
  void submit(FunctionId function, workloads::Request request, StartMode mode) {
    submitted_.fetch_add(1, std::memory_order_relaxed);
    const util::Nanos enqueued_at = util::monotonic_now();
    pool_.submit([this, function, request = std::move(request), mode,
                  enqueued_at]() mutable {
      Outcome outcome;
      outcome.function = function;
      outcome.mode = mode;
      outcome.queueing = util::monotonic_now() - enqueued_at;
      auto result = platform_.invoke(function, request, mode);
      if (result) {
        outcome.record = std::move(*result);
      } else {
        outcome.status = result.status();
      }
      std::lock_guard lock(outcomes_mutex_);
      outcomes_.push_back(std::move(outcome));
    });
  }

  /// Wait for all submitted invocations and take their outcomes.
  [[nodiscard]] std::vector<Outcome> drain() {
    pool_.wait_idle();
    std::lock_guard lock(outcomes_mutex_);
    std::vector<Outcome> out;
    out.swap(outcomes_);
    return out;
  }

  [[nodiscard]] std::uint64_t submitted() const noexcept {
    return submitted_.load(std::memory_order_relaxed);
  }

 private:
  Platform& platform_;
  util::ThreadPool pool_;
  std::mutex outcomes_mutex_;
  std::vector<Outcome> outcomes_;
  std::atomic<std::uint64_t> submitted_{0};
};

}  // namespace horse::faas
