// Asynchronous invocation frontend.
//
// FaaS gateways accept triggers concurrently and queue them toward the
// control plane; Invoker is that layer over Platform: submissions from
// any thread fan out to a worker pool, outcomes (status + record) are
// collected for later draining.
//
// Workers are SHARD-AFFINE: a submission for function F is routed to
// worker `platform.shard_of(F) % workers`, so every invocation of F flows
// through one worker and lands on F's control-plane shard without
// fighting other functions' workers for it. With >= as many workers as
// active shards, the worker pool realises the sharded control plane's
// parallelism: different functions execute on different threads against
// different shard mutexes. (The old design pushed every task through one
// shared queue into a platform-wide mutex; the workers only ever took
// turns.)
//
// Thread-safety: submit() may be called from any thread; drain() blocks
// until every accepted submission has completed and is the only way
// outcomes are read back, so it must not race other drain() calls.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "faas/platform.hpp"

namespace horse::faas {

class Invoker {
 public:
  struct Outcome {
    FunctionId function = 0;
    StartMode mode = StartMode::kCold;
    util::Status status;
    InvocationRecord record;   // valid when status.is_ok()
    util::Nanos queueing = 0;  // submit-to-start wait (monotonic clock)
  };

  Invoker(Platform& platform, std::size_t workers);
  ~Invoker();

  Invoker(const Invoker&) = delete;
  Invoker& operator=(const Invoker&) = delete;

  /// Fire-and-collect: enqueue an invocation on the worker owning the
  /// function's shard. Takes the request by value and moves it end-to-end
  /// (task queue → Platform::invoke → workload). Thread-safe.
  void submit(FunctionId function, workloads::Request request, StartMode mode);

  /// Wait for all submitted invocations and take their outcomes.
  [[nodiscard]] std::vector<Outcome> drain();

  [[nodiscard]] std::uint64_t submitted() const noexcept {
    return submitted_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t num_workers() const noexcept {
    return workers_.size();
  }

 private:
  struct Task {
    FunctionId function = 0;
    StartMode mode = StartMode::kCold;
    workloads::Request request;
    util::Nanos enqueued_at = 0;
  };

  /// One worker: private task queue + outcome list, so the only
  /// cross-thread touch points are the queue mutex (per worker) and the
  /// shard mutex inside Platform::invoke.
  struct Worker {
    std::mutex mutex;
    std::condition_variable work_available;
    std::condition_variable idle;
    std::deque<Task> tasks;
    std::vector<Outcome> outcomes;
    bool busy = false;
    bool shutting_down = false;
    std::jthread thread;  // last: joins before the queue state dies
  };

  void worker_loop(Worker& worker);

  Platform& platform_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<std::uint64_t> submitted_{0};
};

}  // namespace horse::faas
