// Asynchronous invocation frontend (single-host).
//
// FaaS gateways accept triggers concurrently and queue them toward the
// control plane; Invoker is that layer over Platform. Since the cluster
// scheduler arrived it is a thin binding of the transport-free Dispatcher
// (faas/dispatcher.hpp) to one Platform: submissions from any thread fan
// out to the Dispatcher's push-mode worker pool, outcomes (status +
// record) are collected for later draining. The cluster's per-host
// plumbing runs the same Dispatcher, so single-host and cluster
// invocations share one worker-loop code path.
//
// Workers are SHARD-AFFINE: a submission for function F is routed to
// worker `platform.shard_of(F) % workers`, so every invocation of F flows
// through one worker and lands on F's control-plane shard without
// fighting other functions' workers for it. With >= as many workers as
// active shards, the worker pool realises the sharded control plane's
// parallelism: different functions execute on different threads against
// different shard mutexes.
//
// Thread-safety: submit() may be called from any thread; drain() blocks
// until every accepted submission has completed and is the only way
// outcomes are read back, so it must not race other drain() calls.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "faas/dispatcher.hpp"
#include "faas/platform.hpp"
#include "faas/submission.hpp"

namespace horse::faas {

class Invoker {
 public:
  /// Historical alias: Invoker predates the transport-free split and its
  /// tests/benches name the outcome through it.
  using Outcome = SubmissionOutcome;

  Invoker(Platform& platform, std::size_t workers);

  Invoker(const Invoker&) = delete;
  Invoker& operator=(const Invoker&) = delete;

  /// Fire-and-collect: enqueue an invocation on the worker owning the
  /// function's shard. Takes the request by value and moves it end-to-end
  /// (task queue → Platform::invoke → workload). Thread-safe.
  void submit(FunctionId function, workloads::Request request, StartMode mode);

  /// Deadline-carrying submit: `deadline` is an absolute monotonic
  /// timestamp (0 = none). Expired work is refused with a typed outcome
  /// (SubmissionOutcome::reject) instead of executing late.
  void submit(FunctionId function, workloads::Request request, StartMode mode,
              util::Nanos deadline);

  /// Submit a registered workflow chain as one routed unit: one
  /// submission, one idempotency scope, one deadline for the whole chain.
  /// Routed under the entry stage's identity; executed via
  /// Platform::invoke_chain (fused where the planner allows).
  void submit_chain(WorkflowId workflow, workloads::Request request,
                    StartMode mode, util::Nanos deadline = 0);

  /// Wait for all submitted invocations and take their outcomes.
  [[nodiscard]] std::vector<Outcome> drain() { return dispatcher_.drain(); }

  [[nodiscard]] std::uint64_t submitted() const noexcept {
    return submitted_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t num_workers() const noexcept {
    return dispatcher_.capacity();
  }

 private:
  Platform& platform_;
  std::atomic<std::uint64_t> submitted_{0};
  Dispatcher dispatcher_;  // last: workers join before the counters die
};

}  // namespace horse::faas
