// Function registry: maps function ids to their implementation and the
// sandbox shape they require (vCPUs, memory, uLL flag) — the tenant-facing
// configuration surface of the platform. Also the workflow registry: a
// WorkflowSpec names a linear chain of registered functions with per-edge
// payload plumbing, validated at add_workflow() (every stage must exist;
// uLL-compatibility is recorded per adjacent pair so the fusion planner
// never re-derives it on the invoke path).
//
// Thread-safety: reads (find / find_by_name / find_workflow / size) take a
// shared lock and may run from any number of concurrently invoking
// control-plane shards; add() / add_workflow() take the exclusive lock.
// Specs live in deques so the `const FunctionSpec*` / `const WorkflowSpec*`
// handed out stay valid for the registry's lifetime even while later adds
// grow the containers.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/status.hpp"
#include "vmm/sandbox.hpp"
#include "workloads/function.hpp"

namespace horse::faas {

using FunctionId = std::uint32_t;
using WorkflowId = std::uint32_t;

/// Sentinel on Submission: "this is a plain function, not a chain".
inline constexpr WorkflowId kNoWorkflow = 0xffff'ffffU;

struct FunctionSpec {
  std::string name;
  std::shared_ptr<workloads::Function> implementation;
  vmm::SandboxConfig sandbox;
};

/// How a stage's response becomes the next stage's request.
enum class EdgePlumbing : std::uint8_t {
  /// The downstream stage receives the upstream request with the header
  /// replaced by the upstream response's rewritten_header (when set) —
  /// payload and threshold pass through untouched.
  kForwardHeader,
  /// As kForwardHeader, but the chain completes EARLY (success, the
  /// upstream response is the chain's response) when the upstream stage
  /// said `allowed == false` — firewall-style gating.
  kGated,
};

struct WorkflowEdge {
  EdgePlumbing plumbing = EdgePlumbing::kForwardHeader;
  /// Recorded at add_workflow(): both endpoint stages are uLL and their
  /// sandbox shapes are co-locatable (equal vCPU count, downstream memory
  /// fits in the upstream shape), so the fusion planner may run them
  /// back-to-back in one resumed sandbox.
  bool fusable = false;
};

/// A linear DAG of registered functions, routed (and crash-recovered) as
/// one unit. `edges[i]` plumbs stages[i] → stages[i+1].
struct WorkflowSpec {
  std::string name;
  std::vector<FunctionId> stages;
  std::vector<WorkflowEdge> edges;  // always stages.size() - 1 after add
};

/// One contiguous run of a chain, as the fusion planner partitions it.
/// A fused segment (`end - begin > 1`, every interior edge fusable) runs
/// as a single warm/horse resume; a singleton segment dispatches as an
/// ordinary per-stage invocation.
struct ChainSegment {
  std::uint32_t begin = 0;  // stage index, inclusive
  std::uint32_t end = 0;    // stage index, exclusive
  bool fused = false;
};

/// Partition a chain's stages [from_hop, n) into maximal runs of adjacent
/// fusable edges. Pure function of the spec's recorded edge flags, so a
/// re-dispatched chain re-plans identically from its hop cursor.
[[nodiscard]] inline std::vector<ChainSegment> plan_fusion(
    const WorkflowSpec& workflow, std::uint32_t from_hop = 0) {
  std::vector<ChainSegment> out;
  const auto n = static_cast<std::uint32_t>(workflow.stages.size());
  std::uint32_t begin = from_hop;
  while (begin < n) {
    std::uint32_t end = begin + 1;
    while (end < n && workflow.edges[end - 1].fusable) {
      ++end;
    }
    out.push_back({begin, end, end - begin > 1});
    begin = end;
  }
  return out;
}

/// Apply one edge's plumbing: rewrite `request` in place from the
/// upstream `response`. Returns false when a kGated edge stops the chain
/// (early success — the upstream response is the chain's final response).
[[nodiscard]] inline bool apply_edge(const WorkflowEdge& edge,
                                     const workloads::Response& response,
                                     workloads::Request& request) {
  if (edge.plumbing == EdgePlumbing::kGated && !response.allowed) {
    return false;
  }
  if (!response.rewritten_header.empty()) {
    request.header = response.rewritten_header;
  }
  return true;
}

class FunctionRegistry {
 public:
  /// Register a function; the sandbox config's `ull` flag should be set
  /// for workloads that need the HORSE fast path. Returns the new id.
  util::Expected<FunctionId> add(FunctionSpec spec);

  /// The returned pointer is stable for the registry's lifetime.
  [[nodiscard]] util::Expected<const FunctionSpec*> find(FunctionId id) const;
  [[nodiscard]] util::Expected<FunctionId> find_by_name(
      const std::string& name) const;

  /// Register a workflow chain. Validated here, not on the invoke path:
  /// the chain must be non-empty, every stage must already be registered,
  /// and `edges` must be empty (defaults) or exactly stages-1 long. Each
  /// edge's `fusable` flag is computed from the endpoint specs and
  /// recorded on the stored spec — whatever the caller passed in is
  /// overwritten. Returns the new workflow id.
  util::Expected<WorkflowId> add_workflow(WorkflowSpec spec);

  /// The returned pointer is stable for the registry's lifetime.
  [[nodiscard]] util::Expected<const WorkflowSpec*> find_workflow(
      WorkflowId id) const;
  [[nodiscard]] util::Expected<WorkflowId> find_workflow_by_name(
      const std::string& name) const;

  [[nodiscard]] std::size_t size() const {
    std::shared_lock lock(mutex_);
    return specs_.size();
  }

  [[nodiscard]] std::size_t workflow_count() const {
    std::shared_lock lock(mutex_);
    return workflows_.size();
  }

 private:
  mutable std::shared_mutex mutex_;
  std::deque<FunctionSpec> specs_;  // deque: stable addresses across add()
  std::unordered_map<std::string, FunctionId> by_name_;
  std::deque<WorkflowSpec> workflows_;  // same stability contract
  std::unordered_map<std::string, WorkflowId> workflows_by_name_;
};

inline util::Expected<FunctionId> FunctionRegistry::add(FunctionSpec spec) {
  if (spec.name.empty() || spec.implementation == nullptr) {
    return util::Status{util::StatusCode::kInvalidArgument,
                        "registry: function needs a name and implementation"};
  }
  std::unique_lock lock(mutex_);
  if (by_name_.contains(spec.name)) {
    return util::Status{util::StatusCode::kAlreadyExists,
                        "registry: duplicate function name " + spec.name};
  }
  const auto id = static_cast<FunctionId>(specs_.size());
  by_name_.emplace(spec.name, id);
  specs_.push_back(std::move(spec));
  return id;
}

inline util::Expected<const FunctionSpec*> FunctionRegistry::find(
    FunctionId id) const {
  std::shared_lock lock(mutex_);
  if (id >= specs_.size()) {
    return util::Status{util::StatusCode::kNotFound,
                        "registry: unknown function id"};
  }
  return &specs_[id];
}

inline util::Expected<FunctionId> FunctionRegistry::find_by_name(
    const std::string& name) const {
  std::shared_lock lock(mutex_);
  const auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return util::Status{util::StatusCode::kNotFound,
                        "registry: unknown function " + name};
  }
  return it->second;
}

inline util::Expected<WorkflowId> FunctionRegistry::add_workflow(
    WorkflowSpec spec) {
  if (spec.name.empty()) {
    return util::Status{util::StatusCode::kInvalidArgument,
                        "registry: workflow needs a name"};
  }
  if (spec.stages.empty()) {
    return util::Status{util::StatusCode::kInvalidArgument,
                        "registry: workflow " + spec.name + " has no stages"};
  }
  if (!spec.edges.empty() && spec.edges.size() != spec.stages.size() - 1) {
    return util::Status{
        util::StatusCode::kInvalidArgument,
        "registry: workflow " + spec.name + " needs stages-1 edges"};
  }
  std::unique_lock lock(mutex_);
  if (workflows_by_name_.contains(spec.name)) {
    return util::Status{util::StatusCode::kAlreadyExists,
                        "registry: duplicate workflow name " + spec.name};
  }
  for (const FunctionId stage : spec.stages) {
    if (stage >= specs_.size()) {
      return util::Status{
          util::StatusCode::kInvalidArgument,
          "registry: workflow " + spec.name + " references unknown stage id " +
              std::to_string(stage)};
    }
  }
  if (spec.edges.empty()) {
    spec.edges.resize(spec.stages.size() - 1);
  }
  // Record uLL co-locatability per adjacent pair so the fusion planner is
  // a pure table lookup on the invoke path: both stages must want the
  // HORSE fast path, run on the same vCPU count, and the downstream image
  // must fit inside the upstream sandbox it would share.
  for (std::size_t i = 0; i + 1 < spec.stages.size(); ++i) {
    const vmm::SandboxConfig& a = specs_[spec.stages[i]].sandbox;
    const vmm::SandboxConfig& b = specs_[spec.stages[i + 1]].sandbox;
    spec.edges[i].fusable = a.ull && b.ull && a.num_vcpus == b.num_vcpus &&
                            b.memory_mb <= a.memory_mb;
  }
  const auto id = static_cast<WorkflowId>(workflows_.size());
  workflows_by_name_.emplace(spec.name, id);
  workflows_.push_back(std::move(spec));
  return id;
}

inline util::Expected<const WorkflowSpec*> FunctionRegistry::find_workflow(
    WorkflowId id) const {
  std::shared_lock lock(mutex_);
  if (id >= workflows_.size()) {
    return util::Status{util::StatusCode::kNotFound,
                        "registry: unknown workflow id"};
  }
  return &workflows_[id];
}

inline util::Expected<WorkflowId> FunctionRegistry::find_workflow_by_name(
    const std::string& name) const {
  std::shared_lock lock(mutex_);
  const auto it = workflows_by_name_.find(name);
  if (it == workflows_by_name_.end()) {
    return util::Status{util::StatusCode::kNotFound,
                        "registry: unknown workflow " + name};
  }
  return it->second;
}

}  // namespace horse::faas
