// Function registry: maps function ids to their implementation and the
// sandbox shape they require (vCPUs, memory, uLL flag) — the tenant-facing
// configuration surface of the platform.
//
// Thread-safety: reads (find / find_by_name / size) take a shared lock and
// may run from any number of concurrently invoking control-plane shards;
// add() takes the exclusive lock. Specs live in a deque so the
// `const FunctionSpec*` handed out by find() stays valid for the
// registry's lifetime even while later add() calls grow the container.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>

#include "util/status.hpp"
#include "vmm/sandbox.hpp"
#include "workloads/function.hpp"

namespace horse::faas {

using FunctionId = std::uint32_t;

struct FunctionSpec {
  std::string name;
  std::shared_ptr<workloads::Function> implementation;
  vmm::SandboxConfig sandbox;
};

class FunctionRegistry {
 public:
  /// Register a function; the sandbox config's `ull` flag should be set
  /// for workloads that need the HORSE fast path. Returns the new id.
  util::Expected<FunctionId> add(FunctionSpec spec);

  /// The returned pointer is stable for the registry's lifetime.
  [[nodiscard]] util::Expected<const FunctionSpec*> find(FunctionId id) const;
  [[nodiscard]] util::Expected<FunctionId> find_by_name(
      const std::string& name) const;

  [[nodiscard]] std::size_t size() const {
    std::shared_lock lock(mutex_);
    return specs_.size();
  }

 private:
  mutable std::shared_mutex mutex_;
  std::deque<FunctionSpec> specs_;  // deque: stable addresses across add()
  std::unordered_map<std::string, FunctionId> by_name_;
};

inline util::Expected<FunctionId> FunctionRegistry::add(FunctionSpec spec) {
  if (spec.name.empty() || spec.implementation == nullptr) {
    return util::Status{util::StatusCode::kInvalidArgument,
                        "registry: function needs a name and implementation"};
  }
  std::unique_lock lock(mutex_);
  if (by_name_.contains(spec.name)) {
    return util::Status{util::StatusCode::kAlreadyExists,
                        "registry: duplicate function name " + spec.name};
  }
  const auto id = static_cast<FunctionId>(specs_.size());
  by_name_.emplace(spec.name, id);
  specs_.push_back(std::move(spec));
  return id;
}

inline util::Expected<const FunctionSpec*> FunctionRegistry::find(
    FunctionId id) const {
  std::shared_lock lock(mutex_);
  if (id >= specs_.size()) {
    return util::Status{util::StatusCode::kNotFound,
                        "registry: unknown function id"};
  }
  return &specs_[id];
}

inline util::Expected<FunctionId> FunctionRegistry::find_by_name(
    const std::string& name) const {
  std::shared_lock lock(mutex_);
  const auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return util::Status{util::StatusCode::kNotFound,
                        "registry: unknown function " + name};
  }
  return it->second;
}

}  // namespace horse::faas
