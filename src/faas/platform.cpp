#include "faas/platform.hpp"

#include <utility>

namespace horse::faas {

Platform::Platform(PlatformConfig config)
    : config_(std::move(config)),
      topology_(config_.num_cpus),
      boot_(config_.profile, config_.seed + 1),
      snapshots_(config_.profile, config_.seed + 2),
      pool_(config_.warm_pool),
      keep_alive_policy_(config_.keep_alive_policy),
      rng_(config_.seed + 3) {
  vanilla_ = std::make_unique<vmm::ResumeEngine>(topology_, config_.profile);
  horse_ = std::make_unique<core::HorseResumeEngine>(topology_, config_.profile,
                                                     config_.horse);
}

void Platform::destroy_pooled(vmm::Sandbox& sandbox) {
  // Proper teardown order for a pool-owned sandbox: drop the fast-path
  // tracking first (the index references the sandbox's merge_vcpus), then
  // dequeue/offline the vCPUs, then forget its health history.
  horse_->ull_manager().untrack(sandbox.id());
  (void)horse_->destroy(sandbox);
  resume_failures_.erase(sandbox.id());
}

void Platform::advance_time(util::Nanos delta) {
  std::lock_guard lock(control_mutex_);
  logical_now_ += delta;
  if (config_.adaptive_keep_alive) {
    // Refresh per-function keep-alive windows from the idle histograms
    // before deciding evictions.
    for (FunctionId id = 0; id < registry_.size(); ++id) {
      const KeepAliveDecision decision = keep_alive_policy_.decide(id);
      pool_.set_keep_alive_override(id, decision.keep_alive);
    }
  }
  for (auto& sandbox : pool_.evict_expired(logical_now_)) {
    destroy_pooled(*sandbox);
    // unique_ptr destruction frees the sandbox after dequeueing.
  }
}

util::Expected<std::unique_ptr<vmm::Sandbox>> Platform::make_sandbox(
    const FunctionSpec& spec) {
  auto sandbox =
      std::make_unique<vmm::Sandbox>(next_sandbox_id_++, spec.sandbox);
  return sandbox;
}

util::Status Platform::pause_and_pool(FunctionId function,
                                      std::unique_ptr<vmm::Sandbox> sandbox) {
  // Pause through the HORSE engine: uLL sandboxes get their queue
  // assignment, coalescing precompute, and 𝒫²𝒮ℳ index rebuilt so the next
  // kHorse resume is fast-path-ready; non-uLL sandboxes take the vanilla
  // pause inside the same call.
  HORSE_RETURN_IF_ERROR(horse_->pause(*sandbox));
  std::unique_ptr<vmm::Sandbox> rejected;
  util::Status status =
      pool_.put(function, std::move(sandbox), logical_now_, &rejected);
  if (!status.is_ok() && rejected != nullptr) {
    // The pool refused (per-function cap): tear the sandbox down fully
    // instead of silently dropping it — its vCPUs are parked on
    // merge_vcpus and the ull manager may hold an index into them.
    destroy_pooled(*rejected);
    ++counters_.pool_overflow_destroyed;
  }
  return status;
}

util::Status Platform::provision(FunctionId function, std::size_t count) {
  std::lock_guard lock(control_mutex_);
  const auto spec = registry_.find(function);
  if (!spec) {
    return spec.status();
  }
  for (std::size_t i = 0; i < count; ++i) {
    auto sandbox = make_sandbox(**spec);
    if (!sandbox) {
      return sandbox.status();
    }
    HORSE_RETURN_IF_ERROR(horse_->start(**sandbox));
    HORSE_RETURN_IF_ERROR(pause_and_pool(function, std::move(*sandbox)));
  }
  pool_.set_provisioned_floor(function, count);
  return util::Status::ok();
}

util::Status Platform::ensure_snapshot(FunctionId function) {
  std::lock_guard lock(control_mutex_);
  return ensure_snapshot_locked(function);
}

util::Status Platform::ensure_snapshot_locked(FunctionId function) {
  if (snapshot_store_.contains(function)) {
    return util::Status::ok();
  }
  const auto spec = registry_.find(function);
  if (!spec) {
    return spec.status();
  }
  auto sandbox = make_sandbox(**spec);
  if (!sandbox) {
    return sandbox.status();
  }
  HORSE_RETURN_IF_ERROR(horse_->start(**sandbox));
  HORSE_RETURN_IF_ERROR(horse_->pause(**sandbox));
  auto snapshot = snapshots_.take(**sandbox);
  if (!snapshot) {
    return snapshot.status();
  }
  snapshot_store_.emplace(function, std::move(*snapshot));
  horse_->ull_manager().untrack((*sandbox)->id());
  return horse_->destroy(**sandbox);
}

util::Expected<InvocationRecord> Platform::invoke(
    FunctionId function, const workloads::Request& request, StartMode mode) {
  std::lock_guard lock(control_mutex_);
  auto result = invoke_locked(function, request, mode);
  if (result) {
    ++counters_.invocations;
    // Count by the mode the invocation actually completed with: a
    // ladder-demoted kHorse request that finished as a cold start is a
    // cold start in the books.
    switch (result->mode) {
      case StartMode::kCold: ++counters_.cold; break;
      case StartMode::kRestore: ++counters_.restore; break;
      case StartMode::kWarm: ++counters_.warm; break;
      case StartMode::kHorse: ++counters_.horse; break;
    }
    if (result->mode != result->requested) {
      ++counters_.degraded_invocations;
    }
  } else {
    ++counters_.failed;
  }
  return result;
}

void Platform::handle_resume_failure(FunctionId function,
                                     std::unique_ptr<vmm::Sandbox> sandbox) {
  const sched::SandboxId id = sandbox->id();
  const std::size_t strikes = ++resume_failures_[id];
  if (strikes >= config_.degradation.quarantine_threshold) {
    // Repeated failures: this sandbox is suspected broken (wedged control
    // plane, corrupt state). Quarantine = full teardown, never re-pooled;
    // future invocations get a fresh sandbox via a colder rung.
    destroy_pooled(*sandbox);
    ++counters_.sandboxes_quarantined;
    return;
  }
  // First strike(s): the failed resume left the sandbox paused, so it can
  // go back to the pool for a later retry (transient failures — a
  // control-plane hiccup — heal this way without losing the warm state).
  std::unique_ptr<vmm::Sandbox> rejected;
  if (!pool_.put(function, std::move(sandbox), logical_now_, &rejected)
           .is_ok() &&
      rejected != nullptr) {
    destroy_pooled(*rejected);
    ++counters_.pool_overflow_destroyed;
  }
}

util::Expected<std::unique_ptr<vmm::Sandbox>> Platform::try_start_locked(
    FunctionId function, const FunctionSpec& spec, StartMode mode,
    InvocationRecord& record) {
  switch (mode) {
    case StartMode::kCold: {
      auto boot = boot_.cold_boot(next_sandbox_id_++, spec.sandbox);
      record.init_modelled = boot.boot_time + config_.warm_dispatch_overhead;
      std::unique_ptr<vmm::Sandbox> sandbox = std::move(boot.sandbox);
      util::Stopwatch watch;
      HORSE_RETURN_IF_ERROR(horse_->start(*sandbox));
      record.init_time = record.init_modelled + watch.elapsed();
      return sandbox;
    }
    case StartMode::kRestore: {
      HORSE_RETURN_IF_ERROR(ensure_snapshot_locked(function));
      auto restored =
          snapshots_.restore(snapshot_store_.at(function), next_sandbox_id_++);
      if (!restored) {
        // Corrupt snapshot: it will never restore — drop it so the next
        // rung (or invocation) rebuilds a fresh one instead of looping on
        // the same broken image.
        snapshot_store_.erase(function);
        return restored.status();
      }
      record.init_modelled =
          restored->modelled_time + config_.warm_dispatch_overhead;
      std::unique_ptr<vmm::Sandbox> sandbox = std::move(restored->sandbox);
      util::Stopwatch watch;
      HORSE_RETURN_IF_ERROR(horse_->start(*sandbox));
      record.init_time =
          record.init_modelled + restored->copy_time + watch.elapsed();
      return sandbox;
    }
    case StartMode::kWarm:
    case StartMode::kHorse: {
      std::unique_ptr<vmm::Sandbox> sandbox = pool_.take(function);
      if (sandbox == nullptr) {
        return util::Status{util::StatusCode::kUnavailable,
                            "invoke: no warm sandbox pooled (provision first)"};
      }
      util::Status status;
      if (mode == StartMode::kHorse && spec.sandbox.ull) {
        status = horse_->resume(*sandbox, &record.resume);
      } else {
        // Vanilla warm path; drop any fast-path state the pause installed.
        horse_->ull_manager().untrack(sandbox->id());
        sandbox->coalesce().valid = false;
        status = vanilla_->resume(*sandbox, &record.resume);
        record.init_modelled = config_.warm_dispatch_overhead;
      }
      if (!status.is_ok()) {
        // A failed resume leaves the sandbox paused. Strike its health
        // record; quarantine at the threshold, else re-pool for a retry.
        handle_resume_failure(function, std::move(sandbox));
        return status;
      }
      resume_failures_.erase(sandbox->id());
      record.init_time = record.resume.total() + record.init_modelled;
      return sandbox;
    }
  }
  return util::Status{util::StatusCode::kInternal, "invoke: unknown mode"};
}

util::Expected<InvocationRecord> Platform::invoke_locked(
    FunctionId function, const workloads::Request& request, StartMode mode) {
  const auto spec_lookup = registry_.find(function);
  if (!spec_lookup) {
    return spec_lookup.status();
  }
  const FunctionSpec& spec = **spec_lookup;

  keep_alive_policy_.record_invocation(function, logical_now_);

  // --- start ladder: requested mode first, demoting one rung per failure -
  const StartMode requested = mode;
  const DegradationPolicy& ladder = config_.degradation;
  InvocationRecord record;
  std::unique_ptr<vmm::Sandbox> sandbox;
  std::uint32_t fallbacks = 0;
  util::Nanos backoff_total = 0;
  std::size_t attempt = 0;
  while (true) {
    ++attempt;
    record = {};
    record.requested = requested;
    record.mode = mode;
    record.fallbacks = fallbacks;
    auto started = try_start_locked(function, spec, mode, record);
    if (started) {
      sandbox = std::move(*started);
      break;
    }
    const bool exhausted = !ladder.enabled || attempt >= ladder.max_attempts ||
                           mode == StartMode::kCold;
    if (exhausted) {
      return started.status();
    }
    // Demote one rung and model a jittered exponential backoff (recorded,
    // not slept: the logical clock is caller-driven).
    mode = next_colder(mode);
    ++fallbacks;
    ++counters_.rung_fallbacks;
    const double jitter = 0.5 + rng_.uniform01();  // ±50%
    backoff_total += static_cast<util::Nanos>(
        static_cast<double>(ladder.retry_backoff_base) *
        static_cast<double>(1ULL << (attempt - 1)) * jitter);
  }
  record.retry_backoff = backoff_total;
  record.init_modelled += backoff_total;
  record.init_time += backoff_total;

  // Run the function body for real.
  util::Stopwatch exec_watch;
  record.response = spec.implementation->invoke(request);
  record.exec_time = exec_watch.elapsed();

  // Keep-alive: re-pause and pool for the next trigger.
  HORSE_RETURN_IF_ERROR(pause_and_pool(function, std::move(sandbox)));
  return record;
}

}  // namespace horse::faas
