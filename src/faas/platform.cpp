#include "faas/platform.hpp"

#include <algorithm>
#include <utility>

#include "util/backoff.hpp"
#include "util/dcheck.hpp"

namespace horse::faas {

namespace {
using ShardLock = metrics::MeteredLock<std::mutex>;
}  // namespace

Platform::Platform(PlatformConfig config)
    : config_(std::move(config)),
      topology_(config_.num_cpus),
      retry_budget_(config_.admission.retry_budget) {
  ull_manager_ =
      std::make_unique<core::UllRunQueueManager>(topology_, config_.horse);
  vanilla_ = std::make_unique<vmm::ResumeEngine>(topology_, config_.profile);
  // One HORSE engine per reserved queue: resumes targeting different
  // ull_runqueues serialise on different step-② locks.
  for (const sched::CpuId cpu : ull_manager_->ull_cpus()) {
    horse_engines_.push_back(std::make_unique<core::HorseResumeEngine>(
        topology_, config_.profile, *ull_manager_, cpu, config_.horse));
  }
  if (config_.profile.kind == vmm::VmmKind::kXen) {
    // One control-plane store for all engines: a pause recorded through
    // engine A must satisfy a resume sanity check through engine B. The
    // store locks itself.
    auto store = std::make_shared<vmm::XenStore>();
    vanilla_->use_shared_xenstore(store);
    for (auto& engine : horse_engines_) {
      engine->use_shared_xenstore(store);
    }
  }
  const std::size_t num_shards =
      config_.control_shards != 0
          ? config_.control_shards
          : std::max<std::size_t>(8, config_.num_cpus);
  shards_.reserve(num_shards);
  for (std::size_t i = 0; i < num_shards; ++i) {
    // Disjoint seed windows per shard keep the streams independent while
    // the whole platform stays reproducible from config.seed.
    shards_.push_back(std::make_unique<ControlShard>(
        config_, config_.seed + 16 * static_cast<std::uint64_t>(i)));
  }
}

void Platform::destroy_pooled(ControlShard& shard, vmm::Sandbox& sandbox) {
  // Proper teardown order for a pool-owned sandbox: drop the fast-path
  // tracking first (the index references the sandbox's merge_vcpus), then
  // dequeue/offline the vCPUs, then forget its health history. destroy()
  // is engine-agnostic, so the vanilla engine serves every sandbox.
  ull_manager_->untrack(sandbox.id());
  (void)vanilla_->destroy(sandbox);
  shard.resume_failures.erase(sandbox.id());
}

void Platform::advance_time(util::Nanos delta) {
  const util::Nanos now =
      logical_now_.fetch_add(delta, std::memory_order_acq_rel) + delta;
  const std::size_t num_functions = registry_.size();
  // Shards are walked independently — no global pause of the control
  // plane; invocations on other shards proceed while this one evicts.
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    ControlShard& shard = *shards_[s];
    ShardLock lock(shard.mutex, shard.meter);
    if (config_.adaptive_keep_alive) {
      // Functions owned by shard s are exactly {s, s+N, s+2N, ...}.
      for (FunctionId id = static_cast<FunctionId>(s); id < num_functions;
           id += static_cast<FunctionId>(shards_.size())) {
        const KeepAliveDecision decision = shard.keep_alive.decide(id);
        shard.pool.set_keep_alive_override(id, decision.keep_alive);
      }
    }
    for (auto& sandbox : shard.pool.evict_expired(now)) {
      destroy_pooled(shard, *sandbox);
      // unique_ptr destruction frees the sandbox after dequeueing.
    }
  }
}

std::unique_ptr<vmm::Sandbox> Platform::make_sandbox(const FunctionSpec& spec) {
  return std::make_unique<vmm::Sandbox>(
      next_sandbox_id_.fetch_add(1, std::memory_order_relaxed), spec.sandbox);
}

util::Status Platform::pause_and_pool(ControlShard& shard,
                                      std::size_t shard_index,
                                      FunctionId function,
                                      std::unique_ptr<vmm::Sandbox> sandbox) {
  // uLL sandboxes pause through a HORSE engine so they get their queue
  // assignment, coalescing precompute, and 𝒫²𝒮ℳ index and the next kHorse
  // resume is fast-path-ready; plain sandboxes take the vanilla pause.
  if (sandbox->config().ull) {
    HORSE_RETURN_IF_ERROR(horse_affine(shard_index).pause(*sandbox));
  } else {
    HORSE_RETURN_IF_ERROR(vanilla_->pause(*sandbox));
  }
  std::unique_ptr<vmm::Sandbox> rejected;
  util::Status status =
      shard.pool.put(function, std::move(sandbox), logical_now(), &rejected);
  if (!status.is_ok() && rejected != nullptr) {
    // The pool refused (per-function cap): tear the sandbox down fully
    // instead of silently dropping it — its vCPUs are parked on
    // merge_vcpus and the ull manager may hold an index into them.
    destroy_pooled(shard, *rejected);
    ++shard.counters.pool_overflow_destroyed;
  }
  return status;
}

util::Status Platform::provision(FunctionId function, std::size_t count) {
  const std::size_t shard_index = shard_of(function);
  ControlShard& s = *shards_[shard_index];
  ShardLock lock(s.mutex, s.meter);
  const auto spec = registry_.find(function);
  if (!spec) {
    return spec.status();
  }
  for (std::size_t i = 0; i < count; ++i) {
    auto sandbox = make_sandbox(**spec);
    if ((*spec)->sandbox.ull) {
      HORSE_RETURN_IF_ERROR(horse_affine(shard_index).start(*sandbox));
    } else {
      HORSE_RETURN_IF_ERROR(vanilla_->start(*sandbox));
    }
    HORSE_RETURN_IF_ERROR(
        pause_and_pool(s, shard_index, function, std::move(sandbox)));
  }
  s.pool.set_provisioned_floor(function, count);
  return util::Status::ok();
}

util::Status Platform::ensure_snapshot(FunctionId function) {
  const std::size_t shard_index = shard_of(function);
  ControlShard& s = *shards_[shard_index];
  ShardLock lock(s.mutex, s.meter);
  return ensure_snapshot_on(s, shard_index, function);
}

util::Status Platform::ensure_snapshot_on(ControlShard& shard,
                                          std::size_t shard_index,
                                          FunctionId function) {
  // Ensure-once is shard-local: the function's snapshot lives only in its
  // owning shard's store, and the shard mutex (already held) makes the
  // check-then-create atomic.
  if (shard.snapshot_store.contains(function)) {
    return util::Status::ok();
  }
  const auto spec = registry_.find(function);
  if (!spec) {
    return spec.status();
  }
  auto sandbox = make_sandbox(**spec);
  vmm::ResumeEngine& engine = (*spec)->sandbox.ull
                                  ? horse_affine(shard_index)
                                  : static_cast<vmm::ResumeEngine&>(*vanilla_);
  HORSE_RETURN_IF_ERROR(engine.start(*sandbox));
  HORSE_RETURN_IF_ERROR(engine.pause(*sandbox));
  auto snapshot = shard.snapshots.take(*sandbox);
  if (!snapshot) {
    return snapshot.status();
  }
  shard.snapshot_store.emplace(function, std::move(*snapshot));
  ull_manager_->untrack(sandbox->id());
  return vanilla_->destroy(*sandbox);
}

void Platform::clear_warm_pools() {
  // Shard-by-shard, like advance_time: no global pause, each pool is
  // flushed under its own mutex and every evicted sandbox gets the full
  // engine teardown (untrack + dequeue).
  for (auto& shard_ptr : shards_) {
    ControlShard& shard = *shard_ptr;
    ShardLock lock(shard.mutex, shard.meter);
    for (auto& sandbox : shard.pool.evict_all()) {
      destroy_pooled(shard, *sandbox);
    }
  }
}

util::Status Platform::rehydrate(FunctionId function, std::size_t target) {
  const std::size_t shard_index = shard_of(function);
  ControlShard& s = *shards_[shard_index];
  ShardLock lock(s.mutex, s.meter);
  const auto spec = registry_.find(function);
  if (!spec) {
    return spec.status();
  }
  if (s.pool.available(function) >= target) {
    return util::Status::ok();  // warm state intact (stall, not crash)
  }
  HORSE_RETURN_IF_ERROR(ensure_snapshot_on(s, shard_index, function));
  while (s.pool.available(function) < target) {
    // The kRestore recipe (see try_start_on), ending in the pool instead
    // of an invocation: restore from the cached snapshot, start through
    // the right engine, pause back into the warm pool.
    auto restored = s.snapshots.restore(
        s.snapshot_store.at(function),
        next_sandbox_id_.fetch_add(1, std::memory_order_relaxed));
    if (!restored) {
      s.snapshot_store.erase(function);
      return restored.status();
    }
    std::unique_ptr<vmm::Sandbox> sandbox = std::move(restored->sandbox);
    if ((*spec)->sandbox.ull) {
      HORSE_RETURN_IF_ERROR(horse_affine(shard_index).start(*sandbox));
    } else {
      HORSE_RETURN_IF_ERROR(vanilla_->start(*sandbox));
    }
    HORSE_RETURN_IF_ERROR(
        pause_and_pool(s, shard_index, function, std::move(sandbox)));
    ++s.counters.rehydrated_sandboxes;
  }
  return util::Status::ok();
}

std::vector<FunctionId> Platform::recently_invoked(std::size_t k) const {
  // Rank every registered function by its keep-alive last-arrival time
  // (recorded on every invocation regardless of adaptive_keep_alive).
  // Ties — common when logical time never advances — break toward higher
  // FunctionId, which is arbitrary but deterministic.
  std::vector<std::pair<util::Nanos, FunctionId>> ranked;
  const std::size_t num_functions = registry_.size();
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const ControlShard& shard = *shards_[s];
    ShardLock lock(shard.mutex, shard.meter);
    for (FunctionId id = static_cast<FunctionId>(s); id < num_functions;
         id += static_cast<FunctionId>(shards_.size())) {
      const util::Nanos last = shard.keep_alive.last_arrival(id);
      if (last >= 0) {
        ranked.emplace_back(last, id);
      }
    }
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a > b; });
  if (ranked.size() > k) {
    ranked.resize(k);
  }
  std::vector<FunctionId> out;
  out.reserve(ranked.size());
  for (const auto& [last, id] : ranked) {
    out.push_back(id);
  }
  return out;
}

util::Expected<InvocationRecord> Platform::invoke(FunctionId function,
                                                  workloads::Request request,
                                                  StartMode mode) {
  InvokeControls controls;  // no deadline, every admission gate passes
  return invoke(function, std::move(request), mode, controls);
}

util::Expected<InvocationRecord> Platform::invoke(FunctionId function,
                                                  workloads::Request request,
                                                  StartMode mode,
                                                  InvokeControls& controls) {
  controls.reject = SubmissionReject::kNone;
  const std::size_t shard_index = shard_of(function);
  ControlShard& s = *shards_[shard_index];
  const AdmissionConfig& admission = config_.admission;

  // Admission gate 1 — expired deadline: the caller already gave up;
  // running the function only wastes the shard's serial capacity.
  if (controls.deadline != 0 && controls.now >= controls.deadline) {
    controls.reject = SubmissionReject::kDeadlineExpired;
    s.deadline_rejections.fetch_add(1, std::memory_order_relaxed);
    return util::Status{util::StatusCode::kDeadlineExceeded,
                        "invoke: deadline expired before start"};
  }
  // Admission gate 2 — shard occupancy high-water mark, checked BEFORE
  // blocking on the shard mutex: an overloaded shard must refuse fast
  // instead of growing its mutex convoy unboundedly.
  if (admission.shard_high_water != 0 &&
      s.inflight.load(std::memory_order_acquire) >= admission.shard_high_water) {
    controls.reject = SubmissionReject::kShardOverload;
    s.overload_rejections.fetch_add(1, std::memory_order_relaxed);
    return util::Status{util::StatusCode::kResourceExhausted,
                        "invoke: control shard above high-water occupancy"};
  }

  s.inflight.fetch_add(1, std::memory_order_acq_rel);
  util::Expected<InvocationRecord> result =
      util::Status{util::StatusCode::kInternal, "invoke: unreachable"};
  {
    // Same-function invocations serialise here (which is also what keeps a
    // function's workload-implementation state single-threaded); functions
    // on other shards proceed in parallel.
    ShardLock lock(s.mutex, s.meter);

    // Admission gate 3 — per-function circuit breaker (breakers live
    // under the shard mutex; a function with no breaker is closed).
    if (admission.breaker_enabled) {
      auto it = s.breakers.find(function);
      if (it != s.breakers.end() &&
          !it->second.allow(controls.now, s.rng)) {
        ++s.counters.breaker_rejections;
        s.inflight.fetch_sub(1, std::memory_order_acq_rel);
        controls.reject = SubmissionReject::kBreakerOpen;
        return util::Status{util::StatusCode::kUnavailable,
                            "invoke: circuit breaker open"};
      }
    }
    if (admission.retry_budget_enabled) {
      // Every admitted request funds the host's escalation budget.
      retry_budget_.deposit();
    }

    result = invoke_on_shard(s, shard_index, function, std::move(request),
                             mode, &controls);
    if (result) {
      ++s.counters.invocations;
      // Count by the mode the invocation actually completed with: a
      // ladder-demoted kHorse request that finished as a cold start is a
      // cold start in the books.
      switch (result->mode) {
        case StartMode::kCold: ++s.counters.cold; break;
        case StartMode::kRestore: ++s.counters.restore; break;
        case StartMode::kWarm: ++s.counters.warm; break;
        case StartMode::kHorse: ++s.counters.horse; break;
      }
      if (result->mode != result->requested) {
        ++s.counters.degraded_invocations;
      }
    } else {
      ++s.counters.failed;
    }
  }
  s.inflight.fetch_sub(1, std::memory_order_acq_rel);
  return result;
}

namespace {

/// Fold one executed segment's record into the chain aggregate: the first
/// segment contributes the chain's start decomposition wholesale, later
/// segments add their own init/exec on top, and the response always
/// tracks the most recently completed stage.
void fold_segment_record(InvocationRecord& total, const InvocationRecord& part,
                         bool first) {
  if (first) {
    total = part;
    return;
  }
  total.fallbacks += part.fallbacks;
  total.retry_backoff += part.retry_backoff;
  total.init_time += part.init_time;
  total.init_modelled += part.init_modelled;
  total.exec_time += part.exec_time;
  total.response = part.response;
}

}  // namespace

util::Expected<ChainRecord> Platform::invoke_chain(WorkflowId workflow,
                                                   workloads::Request request,
                                                   StartMode mode) {
  InvokeControls controls;  // no deadline, hop 0, every admission gate passes
  return invoke_chain(workflow, std::move(request), mode, controls);
}

util::Expected<ChainRecord> Platform::invoke_chain(WorkflowId workflow,
                                                   workloads::Request request,
                                                   StartMode mode,
                                                   InvokeControls& controls) {
  controls.reject = SubmissionReject::kNone;
  controls.hops_completed = 0;
  const auto workflow_lookup = registry_.find_workflow(workflow);
  if (!workflow_lookup) {
    return workflow_lookup.status();
  }
  const WorkflowSpec& spec = **workflow_lookup;
  const auto num_stages = static_cast<std::uint32_t>(spec.stages.size());
  if (controls.hop >= num_stages) {
    return util::Status{util::StatusCode::kInvalidArgument,
                        "invoke_chain: hop cursor past the last stage"};
  }

  ChainRecord chain;
  chain.first_hop = controls.hop;
  // Plan from the cursor: an orphan-recovery re-dispatch partitions only
  // the REMAINING stages and never revisits completed ones. The plan is a
  // pure function of the registered edge flags, so every re-dispatch of
  // the same chain plans identically.
  const std::vector<ChainSegment> plan = plan_fusion(spec, controls.hop);
  const util::Stopwatch chain_watch;
  const StartMode requested = mode;
  bool first_segment = true;

  // One deadline for the whole chain: remaining slack is re-evaluated
  // before every hop against the caller's `now` plus the time this chain
  // has measurably consumed so far.
  const auto slack_expired = [&]() -> bool {
    return controls.deadline != 0 &&
           controls.now + chain_watch.elapsed() >= controls.deadline;
  };
  const auto refuse_deadline = [&](std::uint32_t hop) -> util::Status {
    controls.reject = SubmissionReject::kDeadlineExpired;
    shard(spec.stages[hop])
        .deadline_rejections.fetch_add(1, std::memory_order_relaxed);
    return util::Status{util::StatusCode::kDeadlineExceeded,
                        "invoke_chain: deadline expired at hop " +
                            std::to_string(hop)};
  };
  // Advance the hop cursor past a completed stage: plumb its response
  // into the next stage's request, notify the caller's cursor callback,
  // and note a kGated early stop.
  const auto advance_hop = [&](const workloads::Response& response) {
    const std::uint32_t done = controls.hop;
    bool keep_going = true;
    if (done + 1 < num_stages) {
      keep_going = apply_edge(spec.edges[done], response, request);
    }
    controls.hop = done + 1;
    controls.hops_completed = controls.hop - chain.first_hop;
    if (controls.on_hop) {
      controls.on_hop(controls.hop,
                      spec.stages[std::min(controls.hop, num_stages - 1)]);
    }
    if (!keep_going) {
      chain.gated_early = true;
    }
  };

  const auto run = [&]() -> util::Expected<ChainRecord> {
    for (const ChainSegment& segment : plan) {
      if (controls.hop >= segment.end || chain.gated_early) {
        continue;
      }
      if (slack_expired()) {
        return refuse_deadline(controls.hop);
      }
      bool fused_done = false;
      if (segment.fused) {
        auto fused = invoke_fused_segment(spec, segment, request, mode,
                                          controls, chain_watch, chain);
        if (fused) {
          fold_segment_record(chain.record, *fused, first_segment);
          first_segment = false;
          fused_done = true;
        } else if (controls.reject != SubmissionReject::kNone) {
          // Typed overload refusal: surfaces as the chain's outcome with
          // the cursor at the frontier, like any mid-chain refusal.
          return fused.status();
        }
        // Untyped failure (the segment's start ladder exhausted, or a
        // re-pool failed mid-run): the SEGMENT is demoted to per-stage
        // dispatch from the frontier — the chain itself keeps going
        // through the full admission machinery below.
      }
      if (!fused_done) {
        while (controls.hop < segment.end && !chain.gated_early) {
          const std::uint32_t stage_hop = controls.hop;
          if (slack_expired()) {
            return refuse_deadline(stage_hop);
          }
          InvokeControls stage_controls;
          stage_controls.now = controls.now + chain_watch.elapsed();
          stage_controls.deadline = controls.deadline;
          auto staged = invoke(spec.stages[stage_hop], request, requested,
                               stage_controls);
          if (!staged) {
            controls.reject = stage_controls.reject;
            return staged.status();
          }
          fold_segment_record(chain.record, *staged, first_segment);
          first_segment = false;
          ++chain.stages_executed;
          ++chain.per_stage_dispatches;
          advance_hop(staged->response);
        }
      }
      if (chain.gated_early) {
        break;
      }
    }
    return chain;
  };

  auto result = run();
  {
    // Chain-shaped bookkeeping lands on the shard of the stage the chain
    // ENTERED at, win or lose, so chains_invoked counts each routed chain
    // exactly once.
    ControlShard& entry = shard(spec.stages[chain.first_hop]);
    ShardLock lock(entry.mutex, entry.meter);
    ++entry.counters.chains_invoked;
    entry.counters.chain_stages_executed += chain.stages_executed;
    entry.counters.chain_fallback_stages += chain.per_stage_dispatches;
    if (chain.gated_early) {
      ++entry.counters.chains_gated_early;
    }
  }
  return result;
}

util::Expected<InvocationRecord> Platform::invoke_fused_segment(
    const WorkflowSpec& workflow, const ChainSegment& segment,
    workloads::Request& request, StartMode mode, InvokeControls& controls,
    const util::Stopwatch& chain_watch, ChainRecord& chain) {
  const FunctionId entry = workflow.stages[segment.begin];
  const std::size_t shard_index = shard_of(entry);
  ControlShard& s = *shards_[shard_index];
  const AdmissionConfig& admission = config_.admission;

  // A fused segment is ONE admission unit, charged to its entry stage's
  // shard — the same pre-lock high-water gate as invoke().
  if (admission.shard_high_water != 0 &&
      s.inflight.load(std::memory_order_acquire) >=
          admission.shard_high_water) {
    controls.reject = SubmissionReject::kShardOverload;
    s.overload_rejections.fetch_add(1, std::memory_order_relaxed);
    return util::Status{
        util::StatusCode::kResourceExhausted,
        "invoke_chain: control shard above high-water occupancy"};
  }

  s.inflight.fetch_add(1, std::memory_order_acq_rel);
  util::Expected<InvocationRecord> result =
      util::Status{util::StatusCode::kInternal, "invoke_chain: unreachable"};
  {
    ShardLock lock(s.mutex, s.meter);

    // Entry-function circuit breaker, evaluated at the chain's current
    // (elapsed-adjusted) timestamp.
    if (admission.breaker_enabled) {
      auto it = s.breakers.find(entry);
      if (it != s.breakers.end() &&
          !it->second.allow(controls.now + chain_watch.elapsed(), s.rng)) {
        ++s.counters.breaker_rejections;
        s.inflight.fetch_sub(1, std::memory_order_acq_rel);
        controls.reject = SubmissionReject::kBreakerOpen;
        return util::Status{util::StatusCode::kUnavailable,
                            "invoke_chain: circuit breaker open"};
      }
    }
    if (admission.retry_budget_enabled) {
      retry_budget_.deposit();
    }

    result = fused_segment_on_shard(s, shard_index, workflow, segment, request,
                                    mode, controls, chain_watch, chain);
    if (result) {
      // The whole fused segment books as ONE invocation, by the mode its
      // single start actually completed with.
      ++s.counters.invocations;
      switch (result->mode) {
        case StartMode::kCold: ++s.counters.cold; break;
        case StartMode::kRestore: ++s.counters.restore; break;
        case StartMode::kWarm: ++s.counters.warm; break;
        case StartMode::kHorse: ++s.counters.horse; break;
      }
      if (result->mode != result->requested) {
        ++s.counters.degraded_invocations;
      }
    } else {
      ++s.counters.failed;
    }
  }
  s.inflight.fetch_sub(1, std::memory_order_acq_rel);
  return result;
}

util::Expected<InvocationRecord> Platform::fused_segment_on_shard(
    ControlShard& shard, std::size_t shard_index, const WorkflowSpec& workflow,
    const ChainSegment& segment, workloads::Request& request, StartMode mode,
    InvokeControls& controls, const util::Stopwatch& chain_watch,
    ChainRecord& chain) {
  const FunctionId entry = workflow.stages[segment.begin];
  const auto num_stages = static_cast<std::uint32_t>(workflow.stages.size());
  const auto spec_lookup = registry_.find(entry);
  if (!spec_lookup) {
    return spec_lookup.status();
  }
  const FunctionSpec& entry_spec = **spec_lookup;
  const AdmissionConfig& admission = config_.admission;

  // One keep-alive arrival, for the ENTRY function only: interior stages
  // never take a pool slot in a fused run, so recording them would
  // inflate their pre-warm ranking without a pooled sandbox ever serving
  // them.
  shard.keep_alive.record_invocation(entry, logical_now());

  const auto breaker_for = [&]() -> CircuitBreaker& {
    return shard.breakers.try_emplace(entry, admission.breaker).first->second;
  };

  // --- segment start ladder: the per-function ladder verbatim, applied
  // to the segment's entry stage. A demotion demotes THIS SEGMENT only
  // (it still runs fused, just from a colder start); the caller's later
  // segments start at the originally requested mode again.
  const StartMode requested = mode;
  const DegradationPolicy& ladder = config_.degradation;
  const util::Backoff backoff{
      util::BackoffPolicy{ladder.retry_backoff_base, ladder.retry_backoff_cap}};
  InvocationRecord record;
  std::unique_ptr<vmm::Sandbox> sandbox;
  std::uint32_t fallbacks = 0;
  util::Nanos backoff_total = 0;
  std::size_t attempt = 0;
  while (true) {
    ++attempt;
    record = {};
    record.requested = requested;
    record.mode = mode;
    record.fallbacks = fallbacks;
    auto started =
        try_start_on(shard, shard_index, entry, entry_spec, mode, record);
    const bool resume_rung =
        mode == StartMode::kWarm || mode == StartMode::kHorse;
    if (started) {
      if (admission.breaker_enabled && resume_rung) {
        breaker_for().on_success(controls.now);
      }
      sandbox = std::move(*started);
      break;
    }
    if (admission.breaker_enabled && resume_rung &&
        started.status().code() != util::StatusCode::kUnavailable) {
      breaker_for().on_failure(controls.now, shard.rng);
    }
    const bool exhausted = !ladder.enabled || attempt >= ladder.max_attempts ||
                           mode == StartMode::kCold;
    if (exhausted) {
      return started.status();
    }
    const StartMode colder = next_colder(mode);
    if (admission.retry_budget_enabled &&
        (colder == StartMode::kRestore || colder == StartMode::kCold) &&
        !retry_budget_.try_withdraw()) {
      ++shard.counters.budget_denied_escalations;
      controls.reject = SubmissionReject::kRetryBudgetExhausted;
      return util::Status{
          util::StatusCode::kResourceExhausted,
          "invoke_chain: retry budget exhausted, escalation denied"};
    }
    mode = colder;
    ++fallbacks;
    ++shard.counters.rung_fallbacks;
    backoff_total += backoff.delay(attempt, shard.rng);
  }
  record.retry_backoff = backoff_total;
  record.init_modelled += backoff_total;
  record.init_time += backoff_total;

  // --- run the segment's stage bodies back-to-back in the one resumed
  // sandbox, handing each stage's output to the next via edge plumbing.
  // Interior bodies run under the ENTRY stage's shard mutex (never a
  // nested shard lock), so an interior function may execute here
  // concurrently with its own standalone invocations on its home shard —
  // the fusion-safety rule callers accept by registering a workflow (see
  // DESIGN.md §5.8).
  while (controls.hop < segment.end) {
    const std::uint32_t hop = controls.hop;
    // Per-hop slack inside the fused run too: a chain must not keep
    // burning stages after its one deadline has passed. The sandbox is
    // healthy, so it returns to the pool; the refusal is typed.
    if (hop != segment.begin && controls.deadline != 0 &&
        controls.now + chain_watch.elapsed() >= controls.deadline) {
      HORSE_RETURN_IF_ERROR(
          pause_and_pool(shard, shard_index, entry, std::move(sandbox)));
      controls.reject = SubmissionReject::kDeadlineExpired;
      shard.deadline_rejections.fetch_add(1, std::memory_order_relaxed);
      return util::Status{util::StatusCode::kDeadlineExceeded,
                          "invoke_chain: deadline expired mid-segment at hop " +
                              std::to_string(hop)};
    }
    const FunctionSpec* stage_spec = &entry_spec;
    if (hop != segment.begin) {
      const auto stage_lookup = registry_.find(workflow.stages[hop]);
      if (!stage_lookup) {
        // Stage ids are validated at add_workflow, so this is effectively
        // unreachable — but pool the healthy sandbox before surfacing.
        HORSE_RETURN_IF_ERROR(
            pause_and_pool(shard, shard_index, entry, std::move(sandbox)));
        return stage_lookup.status();
      }
      stage_spec = *stage_lookup;
    }
    util::Stopwatch exec_watch;
    record.response = stage_spec->implementation->invoke(request);
    record.exec_time += exec_watch.elapsed();
    ++chain.stages_executed;
    bool keep_going = true;
    if (hop + 1 < num_stages) {
      keep_going = apply_edge(workflow.edges[hop], record.response, request);
    }
    controls.hop = hop + 1;
    controls.hops_completed = controls.hop - chain.first_hop;
    if (controls.on_hop) {
      controls.on_hop(controls.hop,
                      workflow.stages[std::min(controls.hop, num_stages - 1)]);
    }
    if (!keep_going) {
      chain.gated_early = true;
      break;
    }
  }
  ++chain.fused_segments;
  ++shard.counters.fused_segments;

  // One re-pause for the whole segment: keep-alive pools the sandbox
  // under the entry function, where the one pool take came from.
  HORSE_RETURN_IF_ERROR(
      pause_and_pool(shard, shard_index, entry, std::move(sandbox)));
  return record;
}

void Platform::handle_resume_failure(ControlShard& shard, FunctionId function,
                                     std::unique_ptr<vmm::Sandbox> sandbox) {
  const sched::SandboxId id = sandbox->id();
  const std::size_t strikes = ++shard.resume_failures[id];
  if (strikes >= config_.degradation.quarantine_threshold) {
    // Repeated failures: this sandbox is suspected broken (wedged control
    // plane, corrupt state). Quarantine = full teardown, never re-pooled;
    // future invocations get a fresh sandbox via a colder rung.
    destroy_pooled(shard, *sandbox);
    ++shard.counters.sandboxes_quarantined;
    return;
  }
  // First strike(s): the failed resume left the sandbox paused, so it can
  // go back to the pool for a later retry (transient failures — a
  // control-plane hiccup — heal this way without losing the warm state).
  std::unique_ptr<vmm::Sandbox> rejected;
  if (!shard.pool.put(function, std::move(sandbox), logical_now(), &rejected)
           .is_ok() &&
      rejected != nullptr) {
    destroy_pooled(shard, *rejected);
    ++shard.counters.pool_overflow_destroyed;
  }
}

util::Expected<std::unique_ptr<vmm::Sandbox>> Platform::try_start_on(
    ControlShard& shard, std::size_t shard_index, FunctionId function,
    const FunctionSpec& spec, StartMode mode, InvocationRecord& record) {
  switch (mode) {
    case StartMode::kCold: {
      auto boot = shard.boot.cold_boot(
          next_sandbox_id_.fetch_add(1, std::memory_order_relaxed),
          spec.sandbox);
      record.init_modelled = boot.boot_time + config_.warm_dispatch_overhead;
      std::unique_ptr<vmm::Sandbox> sandbox = std::move(boot.sandbox);
      util::Stopwatch watch;
      if (spec.sandbox.ull) {
        HORSE_RETURN_IF_ERROR(horse_affine(shard_index).start(*sandbox));
      } else {
        HORSE_RETURN_IF_ERROR(vanilla_->start(*sandbox));
      }
      record.init_time = record.init_modelled + watch.elapsed();
      return sandbox;
    }
    case StartMode::kRestore: {
      HORSE_RETURN_IF_ERROR(ensure_snapshot_on(shard, shard_index, function));
      auto restored = shard.snapshots.restore(
          shard.snapshot_store.at(function),
          next_sandbox_id_.fetch_add(1, std::memory_order_relaxed));
      if (!restored) {
        // Corrupt snapshot: it will never restore — drop it so the next
        // rung (or invocation) rebuilds a fresh one instead of looping on
        // the same broken image.
        shard.snapshot_store.erase(function);
        return restored.status();
      }
      record.init_modelled =
          restored->modelled_time + config_.warm_dispatch_overhead;
      std::unique_ptr<vmm::Sandbox> sandbox = std::move(restored->sandbox);
      util::Stopwatch watch;
      if (spec.sandbox.ull) {
        HORSE_RETURN_IF_ERROR(horse_affine(shard_index).start(*sandbox));
      } else {
        HORSE_RETURN_IF_ERROR(vanilla_->start(*sandbox));
      }
      record.init_time =
          record.init_modelled + restored->copy_time + watch.elapsed();
      return sandbox;
    }
    case StartMode::kWarm:
    case StartMode::kHorse: {
      std::unique_ptr<vmm::Sandbox> sandbox = shard.pool.take(function);
      if (sandbox == nullptr) {
        return util::Status{util::StatusCode::kUnavailable,
                            "invoke: no warm sandbox pooled (provision first)"};
      }
      util::Status status;
      if (mode == StartMode::kHorse && spec.sandbox.ull) {
        // Route to the engine whose step-② lock owns the queue this
        // sandbox was assigned to at pause time.
        core::HorseResumeEngine* engine =
            ull_manager_->engine_for_sandbox(sandbox->id());
        HORSE_DCHECK(engine != nullptr,
                     "sharded platform always binds >= 1 horse engine");
        status = engine->resume(*sandbox, &record.resume);
      } else {
        // Vanilla warm path; drop any fast-path state the pause installed.
        ull_manager_->untrack(sandbox->id());
        sandbox->coalesce().valid = false;
        status = vanilla_->resume(*sandbox, &record.resume);
        record.init_modelled = config_.warm_dispatch_overhead;
      }
      if (!status.is_ok()) {
        // A failed resume leaves the sandbox paused. Strike its health
        // record; quarantine at the threshold, else re-pool for a retry.
        handle_resume_failure(shard, function, std::move(sandbox));
        return status;
      }
      shard.resume_failures.erase(sandbox->id());
      record.init_time = record.resume.total() + record.init_modelled;
      return sandbox;
    }
  }
  return util::Status{util::StatusCode::kInternal, "invoke: unknown mode"};
}

util::Expected<InvocationRecord> Platform::invoke_on_shard(
    ControlShard& shard, std::size_t shard_index, FunctionId function,
    workloads::Request request, StartMode mode, InvokeControls* controls) {
  const auto spec_lookup = registry_.find(function);
  if (!spec_lookup) {
    return spec_lookup.status();
  }
  const FunctionSpec& spec = **spec_lookup;
  const AdmissionConfig& admission = config_.admission;

  shard.keep_alive.record_invocation(function, logical_now());

  // The breaker watches resume outcomes at the warm/horse rungs: a pool
  // miss (kUnavailable) is a capacity signal, not a health signal, and
  // must not trip it — only actual resume failures count.
  const auto breaker_for = [&]() -> CircuitBreaker& {
    return shard.breakers.try_emplace(function, admission.breaker)
        .first->second;
  };

  // --- start ladder: requested mode first, demoting one rung per failure -
  const StartMode requested = mode;
  const DegradationPolicy& ladder = config_.degradation;
  const util::Backoff backoff{
      util::BackoffPolicy{ladder.retry_backoff_base, ladder.retry_backoff_cap}};
  InvocationRecord record;
  std::unique_ptr<vmm::Sandbox> sandbox;
  std::uint32_t fallbacks = 0;
  util::Nanos backoff_total = 0;
  std::size_t attempt = 0;
  while (true) {
    ++attempt;
    record = {};
    record.requested = requested;
    record.mode = mode;
    record.fallbacks = fallbacks;
    auto started =
        try_start_on(shard, shard_index, function, spec, mode, record);
    const bool resume_rung =
        mode == StartMode::kWarm || mode == StartMode::kHorse;
    if (started) {
      if (admission.breaker_enabled && resume_rung) {
        breaker_for().on_success(controls != nullptr ? controls->now : 0);
      }
      sandbox = std::move(*started);
      break;
    }
    if (admission.breaker_enabled && resume_rung &&
        started.status().code() != util::StatusCode::kUnavailable) {
      breaker_for().on_failure(controls != nullptr ? controls->now : 0,
                               shard.rng);
    }
    const bool exhausted = !ladder.enabled || attempt >= ladder.max_attempts ||
                           mode == StartMode::kCold;
    if (exhausted) {
      return started.status();
    }
    const StartMode colder = next_colder(mode);
    // Escalating to kRestore/kCold is the expensive half of the ladder —
    // a restore storm is exactly what saturates a host during a spike.
    // The host-wide budget (funded by admitted requests) bounds it in
    // aggregate: exhausted budget turns the escalation into an immediate
    // typed rejection instead of a pile-on.
    if (admission.retry_budget_enabled &&
        (colder == StartMode::kRestore || colder == StartMode::kCold) &&
        !retry_budget_.try_withdraw()) {
      ++shard.counters.budget_denied_escalations;
      if (controls != nullptr) {
        controls->reject = SubmissionReject::kRetryBudgetExhausted;
      }
      return util::Status{util::StatusCode::kResourceExhausted,
                          "invoke: retry budget exhausted, escalation denied"};
    }
    // Demote one rung and model a capped full-jitter backoff (recorded,
    // not slept: the logical clock is caller-driven).
    mode = colder;
    ++fallbacks;
    ++shard.counters.rung_fallbacks;
    backoff_total += backoff.delay(attempt, shard.rng);
  }
  record.retry_backoff = backoff_total;
  record.init_modelled += backoff_total;
  record.init_time += backoff_total;

  // Run the function body for real.
  util::Stopwatch exec_watch;
  record.response = spec.implementation->invoke(request);
  record.exec_time = exec_watch.elapsed();

  // Keep-alive: re-pause and pool for the next trigger.
  HORSE_RETURN_IF_ERROR(
      pause_and_pool(shard, shard_index, function, std::move(sandbox)));
  return record;
}

PlatformCounters Platform::counters() const {
  PlatformCounters total;
  for (const auto& shard : shards_) {
    {
      ShardLock lock(shard->mutex, shard->meter);
      total += shard->counters;
      // Breaker opens live in the per-breaker stats (the transition
      // happens inside the state machine); fold them in here.
      for (const auto& [fn, breaker] : shard->breakers) {
        total.breaker_opens += breaker.stats().opens;
      }
    }
    // Pre-lock rejection tallies are atomics (counted without the mutex).
    total.shard_overload_rejections +=
        shard->overload_rejections.load(std::memory_order_relaxed);
    total.deadline_rejections +=
        shard->deadline_rejections.load(std::memory_order_relaxed);
  }
  return total;
}

CircuitBreaker::State Platform::breaker_state(FunctionId function) const {
  const ControlShard& s = shard(function);
  ShardLock lock(s.mutex, s.meter);
  const auto it = s.breakers.find(function);
  return it != s.breakers.end() ? it->second.state()
                                : CircuitBreaker::State::kClosed;
}

CircuitBreaker::Stats Platform::breaker_stats(FunctionId function) const {
  const ControlShard& s = shard(function);
  ShardLock lock(s.mutex, s.meter);
  const auto it = s.breakers.find(function);
  return it != s.breakers.end() ? it->second.stats() : CircuitBreaker::Stats{};
}

core::ResumeDegradationStats Platform::resume_degradation_stats() const {
  core::ResumeDegradationStats total;
  for (const auto& engine : horse_engines_) {
    const core::ResumeDegradationStats stats = engine->degradation_stats();
    total.fallback_merges += stats.fallback_merges;
    total.stale_index_fallbacks += stats.stale_index_fallbacks;
    total.poisoned_index_fallbacks += stats.poisoned_index_fallbacks;
    total.merge_error_fallbacks += stats.merge_error_fallbacks;
    total.deferred_refreshes += stats.deferred_refreshes;
  }
  return total;
}

metrics::ContentionStats Platform::shard_contention() const {
  metrics::ContentionStats total;
  for (const auto& shard : shards_) {
    total += shard->meter.snapshot();
  }
  return total;
}

std::vector<std::size_t> Platform::shard_pool_occupancy() const {
  std::vector<std::size_t> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) {
    ShardLock lock(shard->mutex, shard->meter);
    out.push_back(shard->pool.total());
  }
  return out;
}

ControlPlaneSnapshot Platform::control_plane_snapshot() const {
  ControlPlaneSnapshot out;
  out.shard_pool_occupancy.reserve(shards_.size());
  for (const auto& shard : shards_) {
    // One hold per shard: its contention contribution and its pool
    // occupancy describe the same instant.
    ShardLock lock(shard->mutex, shard->meter);
    out.shard_contention += shard->meter.snapshot();
    out.shard_pool_occupancy.push_back(shard->pool.total());
  }
  out.ull = ull_manager_->snapshot();
  return out;
}

// --- facade views ---------------------------------------------------------

std::size_t ShardedWarmPoolView::available(FunctionId function) const {
  const auto& shard = platform_.shard(function);
  ShardLock lock(shard.mutex, shard.meter);
  return shard.pool.available(function);
}

std::size_t ShardedWarmPoolView::provisioned_floor(FunctionId function) const {
  const auto& shard = platform_.shard(function);
  ShardLock lock(shard.mutex, shard.meter);
  return shard.pool.provisioned_floor(function);
}

util::Nanos ShardedWarmPoolView::keep_alive_for(FunctionId function) const {
  const auto& shard = platform_.shard(function);
  ShardLock lock(shard.mutex, shard.meter);
  return shard.pool.keep_alive_for(function);
}

void ShardedWarmPoolView::set_keep_alive_override(FunctionId function,
                                                  util::Nanos keep_alive) {
  auto& shard = platform_.shard(function);
  ShardLock lock(shard.mutex, shard.meter);
  shard.pool.set_keep_alive_override(function, keep_alive);
}

std::size_t ShardedWarmPoolView::total() const {
  std::size_t sum = 0;
  for (const std::size_t occupancy : platform_.shard_pool_occupancy()) {
    sum += occupancy;
  }
  return sum;
}

KeepAliveDecision KeepAlivePolicyView::decide(FunctionId function) const {
  const auto& shard = platform_.shard(function);
  ShardLock lock(shard.mutex, shard.meter);
  return shard.keep_alive.decide(function);
}

std::size_t KeepAlivePolicyView::sample_count(FunctionId function) const {
  const auto& shard = platform_.shard(function);
  ShardLock lock(shard.mutex, shard.meter);
  return shard.keep_alive.sample_count(function);
}

std::size_t KeepAlivePolicyView::oob_count(FunctionId function) const {
  const auto& shard = platform_.shard(function);
  ShardLock lock(shard.mutex, shard.meter);
  return shard.keep_alive.oob_count(function);
}

const KeepAlivePolicyConfig& KeepAlivePolicyView::config() const noexcept {
  // Immutable after construction and identical across shards.
  return platform_.shards_.front()->keep_alive.config();
}

}  // namespace horse::faas
