#include "faas/platform.hpp"

#include <utility>

namespace horse::faas {

Platform::Platform(PlatformConfig config)
    : config_(std::move(config)),
      topology_(config_.num_cpus),
      boot_(config_.profile, config_.seed + 1),
      snapshots_(config_.profile, config_.seed + 2),
      pool_(config_.warm_pool),
      keep_alive_policy_(config_.keep_alive_policy) {
  vanilla_ = std::make_unique<vmm::ResumeEngine>(topology_, config_.profile);
  horse_ = std::make_unique<core::HorseResumeEngine>(topology_, config_.profile,
                                                     config_.horse);
}

void Platform::advance_time(util::Nanos delta) {
  std::lock_guard lock(control_mutex_);
  logical_now_ += delta;
  if (config_.adaptive_keep_alive) {
    // Refresh per-function keep-alive windows from the idle histograms
    // before deciding evictions.
    for (FunctionId id = 0; id < registry_.size(); ++id) {
      const KeepAliveDecision decision = keep_alive_policy_.decide(id);
      pool_.set_keep_alive_override(id, decision.keep_alive);
    }
  }
  for (auto& sandbox : pool_.evict_expired(logical_now_)) {
    (void)horse_->destroy(*sandbox);
    // unique_ptr destruction frees the sandbox after dequeueing.
  }
}

util::Expected<std::unique_ptr<vmm::Sandbox>> Platform::make_sandbox(
    const FunctionSpec& spec) {
  auto sandbox =
      std::make_unique<vmm::Sandbox>(next_sandbox_id_++, spec.sandbox);
  return sandbox;
}

util::Status Platform::pause_and_pool(FunctionId function,
                                      std::unique_ptr<vmm::Sandbox> sandbox) {
  // Pause through the HORSE engine: uLL sandboxes get their queue
  // assignment, coalescing precompute, and 𝒫²𝒮ℳ index rebuilt so the next
  // kHorse resume is fast-path-ready; non-uLL sandboxes take the vanilla
  // pause inside the same call.
  if (util::Status status = horse_->pause(*sandbox); !status.is_ok()) {
    return status;
  }
  const sched::SandboxId id = sandbox->id();
  util::Status status = pool_.put(function, std::move(sandbox), logical_now_);
  if (!status.is_ok()) {
    horse_->ull_manager().untrack(id);
  }
  return status;
}

util::Status Platform::provision(FunctionId function, std::size_t count) {
  std::lock_guard lock(control_mutex_);
  const auto spec = registry_.find(function);
  if (!spec) {
    return spec.status();
  }
  for (std::size_t i = 0; i < count; ++i) {
    auto sandbox = make_sandbox(**spec);
    if (!sandbox) {
      return sandbox.status();
    }
    if (util::Status status = horse_->start(**sandbox); !status.is_ok()) {
      return status;
    }
    if (util::Status status = pause_and_pool(function, std::move(*sandbox));
        !status.is_ok()) {
      return status;
    }
  }
  pool_.set_provisioned_floor(function, count);
  return util::Status::ok();
}

util::Status Platform::ensure_snapshot(FunctionId function) {
  std::lock_guard lock(control_mutex_);
  return ensure_snapshot_locked(function);
}

util::Status Platform::ensure_snapshot_locked(FunctionId function) {
  if (snapshot_store_.contains(function)) {
    return util::Status::ok();
  }
  const auto spec = registry_.find(function);
  if (!spec) {
    return spec.status();
  }
  auto sandbox = make_sandbox(**spec);
  if (!sandbox) {
    return sandbox.status();
  }
  if (util::Status status = horse_->start(**sandbox); !status.is_ok()) {
    return status;
  }
  if (util::Status status = horse_->pause(**sandbox); !status.is_ok()) {
    return status;
  }
  auto snapshot = snapshots_.take(**sandbox);
  if (!snapshot) {
    return snapshot.status();
  }
  snapshot_store_.emplace(function, std::move(*snapshot));
  horse_->ull_manager().untrack((*sandbox)->id());
  return horse_->destroy(**sandbox);
}

util::Expected<InvocationRecord> Platform::invoke(
    FunctionId function, const workloads::Request& request, StartMode mode) {
  std::lock_guard lock(control_mutex_);
  auto result = invoke_locked(function, request, mode);
  if (result) {
    ++counters_.invocations;
    switch (mode) {
      case StartMode::kCold: ++counters_.cold; break;
      case StartMode::kRestore: ++counters_.restore; break;
      case StartMode::kWarm: ++counters_.warm; break;
      case StartMode::kHorse: ++counters_.horse; break;
    }
  } else {
    ++counters_.failed;
  }
  return result;
}

util::Expected<InvocationRecord> Platform::invoke_locked(
    FunctionId function, const workloads::Request& request, StartMode mode) {
  const auto spec_lookup = registry_.find(function);
  if (!spec_lookup) {
    return spec_lookup.status();
  }
  const FunctionSpec& spec = **spec_lookup;

  keep_alive_policy_.record_invocation(function, logical_now_);

  InvocationRecord record;
  record.mode = mode;
  std::unique_ptr<vmm::Sandbox> sandbox;

  switch (mode) {
    case StartMode::kCold: {
      auto boot = boot_.cold_boot(next_sandbox_id_++, spec.sandbox);
      record.init_modelled = boot.boot_time + config_.warm_dispatch_overhead;
      sandbox = std::move(boot.sandbox);
      util::Stopwatch watch;
      if (util::Status status = horse_->start(*sandbox); !status.is_ok()) {
        return status;
      }
      record.init_time = record.init_modelled + watch.elapsed();
      break;
    }
    case StartMode::kRestore: {
      if (util::Status status = ensure_snapshot_locked(function);
          !status.is_ok()) {
        return status;
      }
      auto restored =
          snapshots_.restore(snapshot_store_.at(function), next_sandbox_id_++);
      record.init_modelled =
          restored.modelled_time + config_.warm_dispatch_overhead;
      sandbox = std::move(restored.sandbox);
      util::Stopwatch watch;
      if (util::Status status = horse_->start(*sandbox); !status.is_ok()) {
        return status;
      }
      record.init_time =
          record.init_modelled + restored.copy_time + watch.elapsed();
      break;
    }
    case StartMode::kWarm:
    case StartMode::kHorse: {
      sandbox = pool_.take(function);
      if (sandbox == nullptr) {
        return util::Status{util::StatusCode::kUnavailable,
                            "invoke: no warm sandbox pooled (provision first)"};
      }
      util::Status status;
      if (mode == StartMode::kHorse && spec.sandbox.ull) {
        status = horse_->resume(*sandbox, &record.resume);
      } else {
        // Vanilla warm path; drop any fast-path state the pause installed.
        horse_->ull_manager().untrack(sandbox->id());
        sandbox->coalesce().valid = false;
        status = vanilla_->resume(*sandbox, &record.resume);
        record.init_modelled = config_.warm_dispatch_overhead;
      }
      if (!status.is_ok()) {
        return status;
      }
      record.init_time = record.resume.total() + record.init_modelled;
      break;
    }
  }

  // Run the function body for real.
  util::Stopwatch exec_watch;
  record.response = spec.implementation->invoke(request);
  record.exec_time = exec_watch.elapsed();

  // Keep-alive: re-pause and pool for the next trigger.
  if (util::Status status = pause_and_pool(function, std::move(sandbox));
      !status.is_ok()) {
    return status;
  }
  return record;
}

}  // namespace horse::faas
