#include "faas/platform.hpp"

#include <algorithm>
#include <utility>

#include "util/backoff.hpp"
#include "util/dcheck.hpp"

namespace horse::faas {

namespace {
using ShardLock = metrics::MeteredLock<std::mutex>;
}  // namespace

Platform::Platform(PlatformConfig config)
    : config_(std::move(config)),
      topology_(config_.num_cpus),
      retry_budget_(config_.admission.retry_budget) {
  ull_manager_ =
      std::make_unique<core::UllRunQueueManager>(topology_, config_.horse);
  vanilla_ = std::make_unique<vmm::ResumeEngine>(topology_, config_.profile);
  // One HORSE engine per reserved queue: resumes targeting different
  // ull_runqueues serialise on different step-② locks.
  for (const sched::CpuId cpu : ull_manager_->ull_cpus()) {
    horse_engines_.push_back(std::make_unique<core::HorseResumeEngine>(
        topology_, config_.profile, *ull_manager_, cpu, config_.horse));
  }
  if (config_.profile.kind == vmm::VmmKind::kXen) {
    // One control-plane store for all engines: a pause recorded through
    // engine A must satisfy a resume sanity check through engine B. The
    // store locks itself.
    auto store = std::make_shared<vmm::XenStore>();
    vanilla_->use_shared_xenstore(store);
    for (auto& engine : horse_engines_) {
      engine->use_shared_xenstore(store);
    }
  }
  const std::size_t num_shards =
      config_.control_shards != 0
          ? config_.control_shards
          : std::max<std::size_t>(8, config_.num_cpus);
  shards_.reserve(num_shards);
  for (std::size_t i = 0; i < num_shards; ++i) {
    // Disjoint seed windows per shard keep the streams independent while
    // the whole platform stays reproducible from config.seed.
    shards_.push_back(std::make_unique<ControlShard>(
        config_, config_.seed + 16 * static_cast<std::uint64_t>(i)));
  }
}

void Platform::destroy_pooled(ControlShard& shard, vmm::Sandbox& sandbox) {
  // Proper teardown order for a pool-owned sandbox: drop the fast-path
  // tracking first (the index references the sandbox's merge_vcpus), then
  // dequeue/offline the vCPUs, then forget its health history. destroy()
  // is engine-agnostic, so the vanilla engine serves every sandbox.
  ull_manager_->untrack(sandbox.id());
  (void)vanilla_->destroy(sandbox);
  shard.resume_failures.erase(sandbox.id());
}

void Platform::advance_time(util::Nanos delta) {
  const util::Nanos now =
      logical_now_.fetch_add(delta, std::memory_order_acq_rel) + delta;
  const std::size_t num_functions = registry_.size();
  // Shards are walked independently — no global pause of the control
  // plane; invocations on other shards proceed while this one evicts.
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    ControlShard& shard = *shards_[s];
    ShardLock lock(shard.mutex, shard.meter);
    if (config_.adaptive_keep_alive) {
      // Functions owned by shard s are exactly {s, s+N, s+2N, ...}.
      for (FunctionId id = static_cast<FunctionId>(s); id < num_functions;
           id += static_cast<FunctionId>(shards_.size())) {
        const KeepAliveDecision decision = shard.keep_alive.decide(id);
        shard.pool.set_keep_alive_override(id, decision.keep_alive);
      }
    }
    for (auto& sandbox : shard.pool.evict_expired(now)) {
      destroy_pooled(shard, *sandbox);
      // unique_ptr destruction frees the sandbox after dequeueing.
    }
  }
}

std::unique_ptr<vmm::Sandbox> Platform::make_sandbox(const FunctionSpec& spec) {
  return std::make_unique<vmm::Sandbox>(
      next_sandbox_id_.fetch_add(1, std::memory_order_relaxed), spec.sandbox);
}

util::Status Platform::pause_and_pool(ControlShard& shard,
                                      std::size_t shard_index,
                                      FunctionId function,
                                      std::unique_ptr<vmm::Sandbox> sandbox) {
  // uLL sandboxes pause through a HORSE engine so they get their queue
  // assignment, coalescing precompute, and 𝒫²𝒮ℳ index and the next kHorse
  // resume is fast-path-ready; plain sandboxes take the vanilla pause.
  if (sandbox->config().ull) {
    HORSE_RETURN_IF_ERROR(horse_affine(shard_index).pause(*sandbox));
  } else {
    HORSE_RETURN_IF_ERROR(vanilla_->pause(*sandbox));
  }
  std::unique_ptr<vmm::Sandbox> rejected;
  util::Status status =
      shard.pool.put(function, std::move(sandbox), logical_now(), &rejected);
  if (!status.is_ok() && rejected != nullptr) {
    // The pool refused (per-function cap): tear the sandbox down fully
    // instead of silently dropping it — its vCPUs are parked on
    // merge_vcpus and the ull manager may hold an index into them.
    destroy_pooled(shard, *rejected);
    ++shard.counters.pool_overflow_destroyed;
  }
  return status;
}

util::Status Platform::provision(FunctionId function, std::size_t count) {
  const std::size_t shard_index = shard_of(function);
  ControlShard& s = *shards_[shard_index];
  ShardLock lock(s.mutex, s.meter);
  const auto spec = registry_.find(function);
  if (!spec) {
    return spec.status();
  }
  for (std::size_t i = 0; i < count; ++i) {
    auto sandbox = make_sandbox(**spec);
    if ((*spec)->sandbox.ull) {
      HORSE_RETURN_IF_ERROR(horse_affine(shard_index).start(*sandbox));
    } else {
      HORSE_RETURN_IF_ERROR(vanilla_->start(*sandbox));
    }
    HORSE_RETURN_IF_ERROR(
        pause_and_pool(s, shard_index, function, std::move(sandbox)));
  }
  s.pool.set_provisioned_floor(function, count);
  return util::Status::ok();
}

util::Status Platform::ensure_snapshot(FunctionId function) {
  const std::size_t shard_index = shard_of(function);
  ControlShard& s = *shards_[shard_index];
  ShardLock lock(s.mutex, s.meter);
  return ensure_snapshot_on(s, shard_index, function);
}

util::Status Platform::ensure_snapshot_on(ControlShard& shard,
                                          std::size_t shard_index,
                                          FunctionId function) {
  // Ensure-once is shard-local: the function's snapshot lives only in its
  // owning shard's store, and the shard mutex (already held) makes the
  // check-then-create atomic.
  if (shard.snapshot_store.contains(function)) {
    return util::Status::ok();
  }
  const auto spec = registry_.find(function);
  if (!spec) {
    return spec.status();
  }
  auto sandbox = make_sandbox(**spec);
  vmm::ResumeEngine& engine = (*spec)->sandbox.ull
                                  ? horse_affine(shard_index)
                                  : static_cast<vmm::ResumeEngine&>(*vanilla_);
  HORSE_RETURN_IF_ERROR(engine.start(*sandbox));
  HORSE_RETURN_IF_ERROR(engine.pause(*sandbox));
  auto snapshot = shard.snapshots.take(*sandbox);
  if (!snapshot) {
    return snapshot.status();
  }
  shard.snapshot_store.emplace(function, std::move(*snapshot));
  ull_manager_->untrack(sandbox->id());
  return vanilla_->destroy(*sandbox);
}

void Platform::clear_warm_pools() {
  // Shard-by-shard, like advance_time: no global pause, each pool is
  // flushed under its own mutex and every evicted sandbox gets the full
  // engine teardown (untrack + dequeue).
  for (auto& shard_ptr : shards_) {
    ControlShard& shard = *shard_ptr;
    ShardLock lock(shard.mutex, shard.meter);
    for (auto& sandbox : shard.pool.evict_all()) {
      destroy_pooled(shard, *sandbox);
    }
  }
}

util::Status Platform::rehydrate(FunctionId function, std::size_t target) {
  const std::size_t shard_index = shard_of(function);
  ControlShard& s = *shards_[shard_index];
  ShardLock lock(s.mutex, s.meter);
  const auto spec = registry_.find(function);
  if (!spec) {
    return spec.status();
  }
  if (s.pool.available(function) >= target) {
    return util::Status::ok();  // warm state intact (stall, not crash)
  }
  HORSE_RETURN_IF_ERROR(ensure_snapshot_on(s, shard_index, function));
  while (s.pool.available(function) < target) {
    // The kRestore recipe (see try_start_on), ending in the pool instead
    // of an invocation: restore from the cached snapshot, start through
    // the right engine, pause back into the warm pool.
    auto restored = s.snapshots.restore(
        s.snapshot_store.at(function),
        next_sandbox_id_.fetch_add(1, std::memory_order_relaxed));
    if (!restored) {
      s.snapshot_store.erase(function);
      return restored.status();
    }
    std::unique_ptr<vmm::Sandbox> sandbox = std::move(restored->sandbox);
    if ((*spec)->sandbox.ull) {
      HORSE_RETURN_IF_ERROR(horse_affine(shard_index).start(*sandbox));
    } else {
      HORSE_RETURN_IF_ERROR(vanilla_->start(*sandbox));
    }
    HORSE_RETURN_IF_ERROR(
        pause_and_pool(s, shard_index, function, std::move(sandbox)));
    ++s.counters.rehydrated_sandboxes;
  }
  return util::Status::ok();
}

std::vector<FunctionId> Platform::recently_invoked(std::size_t k) const {
  // Rank every registered function by its keep-alive last-arrival time
  // (recorded on every invocation regardless of adaptive_keep_alive).
  // Ties — common when logical time never advances — break toward higher
  // FunctionId, which is arbitrary but deterministic.
  std::vector<std::pair<util::Nanos, FunctionId>> ranked;
  const std::size_t num_functions = registry_.size();
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const ControlShard& shard = *shards_[s];
    ShardLock lock(shard.mutex, shard.meter);
    for (FunctionId id = static_cast<FunctionId>(s); id < num_functions;
         id += static_cast<FunctionId>(shards_.size())) {
      const util::Nanos last = shard.keep_alive.last_arrival(id);
      if (last >= 0) {
        ranked.emplace_back(last, id);
      }
    }
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a > b; });
  if (ranked.size() > k) {
    ranked.resize(k);
  }
  std::vector<FunctionId> out;
  out.reserve(ranked.size());
  for (const auto& [last, id] : ranked) {
    out.push_back(id);
  }
  return out;
}

util::Expected<InvocationRecord> Platform::invoke(FunctionId function,
                                                  workloads::Request request,
                                                  StartMode mode) {
  InvokeControls controls;  // no deadline, every admission gate passes
  return invoke(function, std::move(request), mode, controls);
}

util::Expected<InvocationRecord> Platform::invoke(FunctionId function,
                                                  workloads::Request request,
                                                  StartMode mode,
                                                  InvokeControls& controls) {
  controls.reject = SubmissionReject::kNone;
  const std::size_t shard_index = shard_of(function);
  ControlShard& s = *shards_[shard_index];
  const AdmissionConfig& admission = config_.admission;

  // Admission gate 1 — expired deadline: the caller already gave up;
  // running the function only wastes the shard's serial capacity.
  if (controls.deadline != 0 && controls.now >= controls.deadline) {
    controls.reject = SubmissionReject::kDeadlineExpired;
    s.deadline_rejections.fetch_add(1, std::memory_order_relaxed);
    return util::Status{util::StatusCode::kDeadlineExceeded,
                        "invoke: deadline expired before start"};
  }
  // Admission gate 2 — shard occupancy high-water mark, checked BEFORE
  // blocking on the shard mutex: an overloaded shard must refuse fast
  // instead of growing its mutex convoy unboundedly.
  if (admission.shard_high_water != 0 &&
      s.inflight.load(std::memory_order_acquire) >= admission.shard_high_water) {
    controls.reject = SubmissionReject::kShardOverload;
    s.overload_rejections.fetch_add(1, std::memory_order_relaxed);
    return util::Status{util::StatusCode::kResourceExhausted,
                        "invoke: control shard above high-water occupancy"};
  }

  s.inflight.fetch_add(1, std::memory_order_acq_rel);
  util::Expected<InvocationRecord> result =
      util::Status{util::StatusCode::kInternal, "invoke: unreachable"};
  {
    // Same-function invocations serialise here (which is also what keeps a
    // function's workload-implementation state single-threaded); functions
    // on other shards proceed in parallel.
    ShardLock lock(s.mutex, s.meter);

    // Admission gate 3 — per-function circuit breaker (breakers live
    // under the shard mutex; a function with no breaker is closed).
    if (admission.breaker_enabled) {
      auto it = s.breakers.find(function);
      if (it != s.breakers.end() &&
          !it->second.allow(controls.now, s.rng)) {
        ++s.counters.breaker_rejections;
        s.inflight.fetch_sub(1, std::memory_order_acq_rel);
        controls.reject = SubmissionReject::kBreakerOpen;
        return util::Status{util::StatusCode::kUnavailable,
                            "invoke: circuit breaker open"};
      }
    }
    if (admission.retry_budget_enabled) {
      // Every admitted request funds the host's escalation budget.
      retry_budget_.deposit();
    }

    result = invoke_on_shard(s, shard_index, function, std::move(request),
                             mode, &controls);
    if (result) {
      ++s.counters.invocations;
      // Count by the mode the invocation actually completed with: a
      // ladder-demoted kHorse request that finished as a cold start is a
      // cold start in the books.
      switch (result->mode) {
        case StartMode::kCold: ++s.counters.cold; break;
        case StartMode::kRestore: ++s.counters.restore; break;
        case StartMode::kWarm: ++s.counters.warm; break;
        case StartMode::kHorse: ++s.counters.horse; break;
      }
      if (result->mode != result->requested) {
        ++s.counters.degraded_invocations;
      }
    } else {
      ++s.counters.failed;
    }
  }
  s.inflight.fetch_sub(1, std::memory_order_acq_rel);
  return result;
}

void Platform::handle_resume_failure(ControlShard& shard, FunctionId function,
                                     std::unique_ptr<vmm::Sandbox> sandbox) {
  const sched::SandboxId id = sandbox->id();
  const std::size_t strikes = ++shard.resume_failures[id];
  if (strikes >= config_.degradation.quarantine_threshold) {
    // Repeated failures: this sandbox is suspected broken (wedged control
    // plane, corrupt state). Quarantine = full teardown, never re-pooled;
    // future invocations get a fresh sandbox via a colder rung.
    destroy_pooled(shard, *sandbox);
    ++shard.counters.sandboxes_quarantined;
    return;
  }
  // First strike(s): the failed resume left the sandbox paused, so it can
  // go back to the pool for a later retry (transient failures — a
  // control-plane hiccup — heal this way without losing the warm state).
  std::unique_ptr<vmm::Sandbox> rejected;
  if (!shard.pool.put(function, std::move(sandbox), logical_now(), &rejected)
           .is_ok() &&
      rejected != nullptr) {
    destroy_pooled(shard, *rejected);
    ++shard.counters.pool_overflow_destroyed;
  }
}

util::Expected<std::unique_ptr<vmm::Sandbox>> Platform::try_start_on(
    ControlShard& shard, std::size_t shard_index, FunctionId function,
    const FunctionSpec& spec, StartMode mode, InvocationRecord& record) {
  switch (mode) {
    case StartMode::kCold: {
      auto boot = shard.boot.cold_boot(
          next_sandbox_id_.fetch_add(1, std::memory_order_relaxed),
          spec.sandbox);
      record.init_modelled = boot.boot_time + config_.warm_dispatch_overhead;
      std::unique_ptr<vmm::Sandbox> sandbox = std::move(boot.sandbox);
      util::Stopwatch watch;
      if (spec.sandbox.ull) {
        HORSE_RETURN_IF_ERROR(horse_affine(shard_index).start(*sandbox));
      } else {
        HORSE_RETURN_IF_ERROR(vanilla_->start(*sandbox));
      }
      record.init_time = record.init_modelled + watch.elapsed();
      return sandbox;
    }
    case StartMode::kRestore: {
      HORSE_RETURN_IF_ERROR(ensure_snapshot_on(shard, shard_index, function));
      auto restored = shard.snapshots.restore(
          shard.snapshot_store.at(function),
          next_sandbox_id_.fetch_add(1, std::memory_order_relaxed));
      if (!restored) {
        // Corrupt snapshot: it will never restore — drop it so the next
        // rung (or invocation) rebuilds a fresh one instead of looping on
        // the same broken image.
        shard.snapshot_store.erase(function);
        return restored.status();
      }
      record.init_modelled =
          restored->modelled_time + config_.warm_dispatch_overhead;
      std::unique_ptr<vmm::Sandbox> sandbox = std::move(restored->sandbox);
      util::Stopwatch watch;
      if (spec.sandbox.ull) {
        HORSE_RETURN_IF_ERROR(horse_affine(shard_index).start(*sandbox));
      } else {
        HORSE_RETURN_IF_ERROR(vanilla_->start(*sandbox));
      }
      record.init_time =
          record.init_modelled + restored->copy_time + watch.elapsed();
      return sandbox;
    }
    case StartMode::kWarm:
    case StartMode::kHorse: {
      std::unique_ptr<vmm::Sandbox> sandbox = shard.pool.take(function);
      if (sandbox == nullptr) {
        return util::Status{util::StatusCode::kUnavailable,
                            "invoke: no warm sandbox pooled (provision first)"};
      }
      util::Status status;
      if (mode == StartMode::kHorse && spec.sandbox.ull) {
        // Route to the engine whose step-② lock owns the queue this
        // sandbox was assigned to at pause time.
        core::HorseResumeEngine* engine =
            ull_manager_->engine_for_sandbox(sandbox->id());
        HORSE_DCHECK(engine != nullptr,
                     "sharded platform always binds >= 1 horse engine");
        status = engine->resume(*sandbox, &record.resume);
      } else {
        // Vanilla warm path; drop any fast-path state the pause installed.
        ull_manager_->untrack(sandbox->id());
        sandbox->coalesce().valid = false;
        status = vanilla_->resume(*sandbox, &record.resume);
        record.init_modelled = config_.warm_dispatch_overhead;
      }
      if (!status.is_ok()) {
        // A failed resume leaves the sandbox paused. Strike its health
        // record; quarantine at the threshold, else re-pool for a retry.
        handle_resume_failure(shard, function, std::move(sandbox));
        return status;
      }
      shard.resume_failures.erase(sandbox->id());
      record.init_time = record.resume.total() + record.init_modelled;
      return sandbox;
    }
  }
  return util::Status{util::StatusCode::kInternal, "invoke: unknown mode"};
}

util::Expected<InvocationRecord> Platform::invoke_on_shard(
    ControlShard& shard, std::size_t shard_index, FunctionId function,
    workloads::Request request, StartMode mode, InvokeControls* controls) {
  const auto spec_lookup = registry_.find(function);
  if (!spec_lookup) {
    return spec_lookup.status();
  }
  const FunctionSpec& spec = **spec_lookup;
  const AdmissionConfig& admission = config_.admission;

  shard.keep_alive.record_invocation(function, logical_now());

  // The breaker watches resume outcomes at the warm/horse rungs: a pool
  // miss (kUnavailable) is a capacity signal, not a health signal, and
  // must not trip it — only actual resume failures count.
  const auto breaker_for = [&]() -> CircuitBreaker& {
    return shard.breakers.try_emplace(function, admission.breaker)
        .first->second;
  };

  // --- start ladder: requested mode first, demoting one rung per failure -
  const StartMode requested = mode;
  const DegradationPolicy& ladder = config_.degradation;
  const util::Backoff backoff{
      util::BackoffPolicy{ladder.retry_backoff_base, ladder.retry_backoff_cap}};
  InvocationRecord record;
  std::unique_ptr<vmm::Sandbox> sandbox;
  std::uint32_t fallbacks = 0;
  util::Nanos backoff_total = 0;
  std::size_t attempt = 0;
  while (true) {
    ++attempt;
    record = {};
    record.requested = requested;
    record.mode = mode;
    record.fallbacks = fallbacks;
    auto started =
        try_start_on(shard, shard_index, function, spec, mode, record);
    const bool resume_rung =
        mode == StartMode::kWarm || mode == StartMode::kHorse;
    if (started) {
      if (admission.breaker_enabled && resume_rung) {
        breaker_for().on_success(controls != nullptr ? controls->now : 0);
      }
      sandbox = std::move(*started);
      break;
    }
    if (admission.breaker_enabled && resume_rung &&
        started.status().code() != util::StatusCode::kUnavailable) {
      breaker_for().on_failure(controls != nullptr ? controls->now : 0,
                               shard.rng);
    }
    const bool exhausted = !ladder.enabled || attempt >= ladder.max_attempts ||
                           mode == StartMode::kCold;
    if (exhausted) {
      return started.status();
    }
    const StartMode colder = next_colder(mode);
    // Escalating to kRestore/kCold is the expensive half of the ladder —
    // a restore storm is exactly what saturates a host during a spike.
    // The host-wide budget (funded by admitted requests) bounds it in
    // aggregate: exhausted budget turns the escalation into an immediate
    // typed rejection instead of a pile-on.
    if (admission.retry_budget_enabled &&
        (colder == StartMode::kRestore || colder == StartMode::kCold) &&
        !retry_budget_.try_withdraw()) {
      ++shard.counters.budget_denied_escalations;
      if (controls != nullptr) {
        controls->reject = SubmissionReject::kRetryBudgetExhausted;
      }
      return util::Status{util::StatusCode::kResourceExhausted,
                          "invoke: retry budget exhausted, escalation denied"};
    }
    // Demote one rung and model a capped full-jitter backoff (recorded,
    // not slept: the logical clock is caller-driven).
    mode = colder;
    ++fallbacks;
    ++shard.counters.rung_fallbacks;
    backoff_total += backoff.delay(attempt, shard.rng);
  }
  record.retry_backoff = backoff_total;
  record.init_modelled += backoff_total;
  record.init_time += backoff_total;

  // Run the function body for real.
  util::Stopwatch exec_watch;
  record.response = spec.implementation->invoke(request);
  record.exec_time = exec_watch.elapsed();

  // Keep-alive: re-pause and pool for the next trigger.
  HORSE_RETURN_IF_ERROR(
      pause_and_pool(shard, shard_index, function, std::move(sandbox)));
  return record;
}

PlatformCounters Platform::counters() const {
  PlatformCounters total;
  for (const auto& shard : shards_) {
    {
      ShardLock lock(shard->mutex, shard->meter);
      total += shard->counters;
      // Breaker opens live in the per-breaker stats (the transition
      // happens inside the state machine); fold them in here.
      for (const auto& [fn, breaker] : shard->breakers) {
        total.breaker_opens += breaker.stats().opens;
      }
    }
    // Pre-lock rejection tallies are atomics (counted without the mutex).
    total.shard_overload_rejections +=
        shard->overload_rejections.load(std::memory_order_relaxed);
    total.deadline_rejections +=
        shard->deadline_rejections.load(std::memory_order_relaxed);
  }
  return total;
}

CircuitBreaker::State Platform::breaker_state(FunctionId function) const {
  const ControlShard& s = shard(function);
  ShardLock lock(s.mutex, s.meter);
  const auto it = s.breakers.find(function);
  return it != s.breakers.end() ? it->second.state()
                                : CircuitBreaker::State::kClosed;
}

CircuitBreaker::Stats Platform::breaker_stats(FunctionId function) const {
  const ControlShard& s = shard(function);
  ShardLock lock(s.mutex, s.meter);
  const auto it = s.breakers.find(function);
  return it != s.breakers.end() ? it->second.stats() : CircuitBreaker::Stats{};
}

core::ResumeDegradationStats Platform::resume_degradation_stats() const {
  core::ResumeDegradationStats total;
  for (const auto& engine : horse_engines_) {
    const core::ResumeDegradationStats stats = engine->degradation_stats();
    total.fallback_merges += stats.fallback_merges;
    total.stale_index_fallbacks += stats.stale_index_fallbacks;
    total.poisoned_index_fallbacks += stats.poisoned_index_fallbacks;
    total.merge_error_fallbacks += stats.merge_error_fallbacks;
    total.deferred_refreshes += stats.deferred_refreshes;
  }
  return total;
}

metrics::ContentionStats Platform::shard_contention() const {
  metrics::ContentionStats total;
  for (const auto& shard : shards_) {
    total += shard->meter.snapshot();
  }
  return total;
}

std::vector<std::size_t> Platform::shard_pool_occupancy() const {
  std::vector<std::size_t> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) {
    ShardLock lock(shard->mutex, shard->meter);
    out.push_back(shard->pool.total());
  }
  return out;
}

ControlPlaneSnapshot Platform::control_plane_snapshot() const {
  ControlPlaneSnapshot out;
  out.shard_pool_occupancy.reserve(shards_.size());
  for (const auto& shard : shards_) {
    // One hold per shard: its contention contribution and its pool
    // occupancy describe the same instant.
    ShardLock lock(shard->mutex, shard->meter);
    out.shard_contention += shard->meter.snapshot();
    out.shard_pool_occupancy.push_back(shard->pool.total());
  }
  out.ull = ull_manager_->snapshot();
  return out;
}

// --- facade views ---------------------------------------------------------

std::size_t ShardedWarmPoolView::available(FunctionId function) const {
  const auto& shard = platform_.shard(function);
  ShardLock lock(shard.mutex, shard.meter);
  return shard.pool.available(function);
}

std::size_t ShardedWarmPoolView::provisioned_floor(FunctionId function) const {
  const auto& shard = platform_.shard(function);
  ShardLock lock(shard.mutex, shard.meter);
  return shard.pool.provisioned_floor(function);
}

util::Nanos ShardedWarmPoolView::keep_alive_for(FunctionId function) const {
  const auto& shard = platform_.shard(function);
  ShardLock lock(shard.mutex, shard.meter);
  return shard.pool.keep_alive_for(function);
}

void ShardedWarmPoolView::set_keep_alive_override(FunctionId function,
                                                  util::Nanos keep_alive) {
  auto& shard = platform_.shard(function);
  ShardLock lock(shard.mutex, shard.meter);
  shard.pool.set_keep_alive_override(function, keep_alive);
}

std::size_t ShardedWarmPoolView::total() const {
  std::size_t sum = 0;
  for (const std::size_t occupancy : platform_.shard_pool_occupancy()) {
    sum += occupancy;
  }
  return sum;
}

KeepAliveDecision KeepAlivePolicyView::decide(FunctionId function) const {
  const auto& shard = platform_.shard(function);
  ShardLock lock(shard.mutex, shard.meter);
  return shard.keep_alive.decide(function);
}

std::size_t KeepAlivePolicyView::sample_count(FunctionId function) const {
  const auto& shard = platform_.shard(function);
  ShardLock lock(shard.mutex, shard.meter);
  return shard.keep_alive.sample_count(function);
}

std::size_t KeepAlivePolicyView::oob_count(FunctionId function) const {
  const auto& shard = platform_.shard(function);
  ShardLock lock(shard.mutex, shard.meter);
  return shard.keep_alive.oob_count(function);
}

const KeepAlivePolicyConfig& KeepAlivePolicyView::config() const noexcept {
  // Immutable after construction and identical across shards.
  return platform_.shards_.front()->keep_alive.config();
}

}  // namespace horse::faas
