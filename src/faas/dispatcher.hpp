// Worker-pool dispatch engine shared by the single-host Invoker and the
// cluster's per-host submission plumbing.
//
// A Dispatcher is a fixed pool of workers executing Submissions through a
// caller-supplied executor, in one of two transports:
//
//   * PUSH — submit() routes each task to one worker's private queue via
//     the caller's router (the Invoker passes shard_of so per-function
//     work serialises before the shard mutex, exactly as before the
//     split). Work is committed to a worker at submit time.
//   * PULL — no local queues: every worker blocks on a shared TaskSource
//     (the cluster's bounded queue) and takes the next task the moment it
//     goes idle. Work is committed to a worker — and hence a host — only
//     when that worker is free, which is the Hiku-style late binding the
//     cluster's pull mode is built on.
//
// Both transports run the same worker epilogue (queueing measurement,
// executor call, outcome recording, completion hook), so single-host and
// cluster invocations flow through one code path.
//
// Cluster hooks: pause() parks workers after their current task (a
// modelled host stall — pending work stays put), steal_pending() removes
// queued-but-unstarted tasks so a quarantined host's backlog can be
// re-dispatched exactly once, and completed() rises only after the
// outcome is durably recorded, so a cluster frontend can keep lossless
// submitted-vs-completed accounting from the counters alone.
//
// Thread-safety: submit() from any thread; wait_idle()/take_outcomes()
// must not race each other (same single-drainer contract as the old
// Invoker). Pull-mode owners must close() the TaskSource before
// destroying the Dispatcher, or its workers never unblock.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "faas/submission.hpp"

namespace horse::faas {

class Dispatcher {
 public:
  /// Executes one submission, filling status/record (and optionally host)
  /// on the pre-populated outcome (function/mode/seq/queueing are already
  /// set by the worker loop).
  using Executor = std::function<void(Submission, SubmissionOutcome&)>;
  using Router = std::function<std::size_t(FunctionId)>;

  struct Options {
    Executor executor;
    /// Push mode: maps a function to a worker index (taken modulo the
    /// worker count). Ignored in pull mode.
    Router router;
    /// Non-null selects pull mode; must outlive the Dispatcher.
    TaskSource* source = nullptr;
    std::size_t workers = 1;
    /// CoDel-style sojourn cap: a task that waited longer than this
    /// between enqueue and dequeue is expired at dequeue (typed outcome,
    /// executor never called) — under overload the queue would otherwise
    /// serve only stale work. 0 disables; per-task deadlines are always
    /// honoured regardless.
    util::Nanos max_sojourn = 0;
  };

  explicit Dispatcher(Options options);
  ~Dispatcher();

  Dispatcher(const Dispatcher&) = delete;
  Dispatcher& operator=(const Dispatcher&) = delete;

  /// Push-mode enqueue (throws std::logic_error in pull mode — pull
  /// frontends feed the shared TaskSource instead).
  void submit(Submission task);

  /// Block until every locally queued task has completed (push mode; in
  /// pull mode this only waits for in-flight work, since the backlog
  /// lives in the shared source). Single-drainer contract.
  void wait_idle();

  /// Take every recorded outcome (single-drainer contract).
  [[nodiscard]] std::vector<SubmissionOutcome> take_outcomes();

  /// wait_idle() + take_outcomes(), the Invoker drain shape.
  [[nodiscard]] std::vector<SubmissionOutcome> drain();

  // --- cluster health hooks ------------------------------------------------

  /// Park every worker after its current task; queued tasks stay queued.
  void pause();
  void resume();
  [[nodiscard]] bool paused() const noexcept {
    return paused_.load(std::memory_order_acquire);
  }

  /// Remove and return every queued-but-unstarted task (push mode; empty
  /// in pull mode, where the backlog lives in the shared source).
  [[nodiscard]] std::vector<Submission> steal_pending();

  // --- occupancy ----------------------------------------------------------

  [[nodiscard]] std::size_t capacity() const noexcept { return workers_.size(); }
  [[nodiscard]] std::size_t pending() const noexcept {
    return pending_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::size_t in_flight() const noexcept {
    return in_flight_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint64_t completed() const noexcept {
    return completed_.load(std::memory_order_acquire);
  }
  /// Tasks expired at dequeue (deadline passed or sojourn cap exceeded)
  /// without running. Every expiry still records an outcome and counts
  /// toward completed(), so frontend accounting stays lossless.
  [[nodiscard]] std::uint64_t expired() const noexcept {
    return expired_.load(std::memory_order_acquire);
  }
  /// Workers with neither queued nor running work.
  [[nodiscard]] std::size_t free_slots() const noexcept;
  [[nodiscard]] bool pull_mode() const noexcept { return source_ != nullptr; }

 private:
  struct Worker {
    std::mutex mutex;
    std::condition_variable work_available;
    std::condition_variable idle;
    std::deque<Submission> tasks;
    std::vector<SubmissionOutcome> outcomes;
    bool busy = false;
    bool shutting_down = false;
    std::jthread thread;  // last: joins before the queue state dies
  };

  void push_worker_loop(Worker& worker);
  void pull_worker_loop(Worker& worker);
  /// Shared epilogue: measure queueing, execute, record, notify.
  void execute_and_record(Worker& worker, Submission task);

  Executor executor_;
  Router router_;
  TaskSource* source_ = nullptr;
  util::Nanos max_sojourn_ = 0;
  std::atomic<std::uint64_t> expired_{0};
  std::atomic<bool> shutdown_{false};
  std::atomic<bool> paused_{false};
  std::mutex pause_mutex_;
  std::condition_variable pause_cv_;
  std::atomic<std::size_t> pending_{0};
  std::atomic<std::size_t> in_flight_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::vector<std::unique_ptr<Worker>> workers_;
};

}  // namespace horse::faas
