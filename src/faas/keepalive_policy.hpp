// Hybrid-histogram keep-alive policy (Shahrad et al., "Serverless in the
// Wild", USENIX ATC'20 — the production policy of the platform whose
// traces drive this paper's §5.4 experiment).
//
// Fixed keep-alive windows waste memory on rarely-invoked functions and
// still miss long idle gaps. The hybrid policy tracks a per-function
// histogram of idle times (gaps between invocations) and derives:
//
//   * pre-warm window  — how long after an invocation the sandbox may be
//     released before being re-provisioned, set from a low percentile of
//     the idle-time distribution (head cut-off);
//   * keep-alive window — how long to keep it warm, set from a high
//     percentile (tail cut-off);
//   * a fallback to the fixed default when the pattern is not
//     "representative" (too few samples or out-of-bounds-dominated).
//
// Platform wires the keep-alive side into WarmPool eviction; the pre-warm
// window is exposed for schedulers that re-provision proactively.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "faas/registry.hpp"
#include "util/time.hpp"

namespace horse::faas {

struct KeepAlivePolicyConfig {
  /// Histogram bin width (the ATC'20 policy uses 1-minute bins).
  util::Nanos bin_width = 60 * util::kSecond;
  /// Number of bins; idle times beyond bin_width*num_bins count as
  /// out-of-bounds (OOB).
  std::size_t num_bins = 240;  // 4 hours, as in the production system
  /// Head/tail percentiles for pre-warm / keep-alive cut-offs.
  double head_percentile = 5.0;
  double tail_percentile = 99.0;
  /// Safety margin applied to both cut-offs (ATC'20 uses 10%).
  double margin = 0.10;
  /// Below this many samples the pattern is not representative.
  std::size_t min_samples = 8;
  /// If more than this fraction of idle times are OOB, fall back.
  double max_oob_fraction = 0.5;
  /// Fallback keep-alive (the fixed-window baseline).
  util::Nanos fallback_keep_alive = 10LL * 60 * util::kSecond;
};

struct KeepAliveDecision {
  /// Time after an invocation during which the sandbox need not be kept
  /// (it can be released and re-provisioned just-in-time). 0 = keep from
  /// the start.
  util::Nanos prewarm_window = 0;
  /// How long past the pre-warm window to keep the sandbox warm.
  util::Nanos keep_alive = 0;
  /// True when derived from the histogram, false on fallback.
  bool from_histogram = false;
};

class HybridHistogramPolicy {
 public:
  explicit HybridHistogramPolicy(KeepAlivePolicyConfig config = {});

  /// Record an invocation arrival for `function` at time `now` (any
  /// monotonic clock; only gaps matter).
  void record_invocation(FunctionId function, util::Nanos now);

  /// Current policy decision for `function`.
  [[nodiscard]] KeepAliveDecision decide(FunctionId function) const;

  /// Observed idle-time count (in-bounds + OOB) for a function.
  [[nodiscard]] std::size_t sample_count(FunctionId function) const;
  [[nodiscard]] std::size_t oob_count(FunctionId function) const;

  /// Most recent invocation arrival recorded for `function`, or -1 if it
  /// has never been invoked. Warm-rejoin rehydration ranks functions by
  /// this to pick the top-k recently-routed ones worth restoring first.
  [[nodiscard]] util::Nanos last_arrival(FunctionId function) const;

  [[nodiscard]] const KeepAlivePolicyConfig& config() const noexcept {
    return config_;
  }

 private:
  struct FunctionHistory {
    std::vector<std::uint32_t> bins;
    std::uint64_t total = 0;
    std::uint64_t oob = 0;
    util::Nanos last_arrival = -1;
  };

  enum class BinEdge { kLower, kUpper };
  [[nodiscard]] util::Nanos percentile_cutoff(const FunctionHistory& history,
                                              double percentile,
                                              BinEdge edge) const;

  KeepAlivePolicyConfig config_;
  std::unordered_map<FunctionId, FunctionHistory> histories_;
};

}  // namespace horse::faas
