// Platform: the public facade of the library — a single-node FaaS control
// plane over the scheduler/VMM substrates, speaking the paper's four start
// strategies.
//
//   kCold    — build a sandbox from scratch (modelled guest boot + real
//              scheduler start), then run the function.
//   kRestore — materialise the sandbox from a snapshot (real memory-image
//              copy + modelled device re-init), FaaSnap-style.
//   kWarm    — take a paused sandbox from the warm pool and resume it
//              through the *vanilla* resume path.
//   kHorse   — take a paused uLL sandbox and resume it through the HORSE
//              fast path (𝒫²𝒮ℳ + coalesced load update).
//
// Execution is in-process: the sandbox's vCPUs are really enqueued on the
// scheduler substrate and the function body really executes; what is
// modelled (boot, device re-init, dispatch plumbing) is itemised on the
// returned record so experiments can account modelled vs measured time.
//
// After each invocation the sandbox is re-paused and returned to the warm
// pool (keep-alive); pausing always goes through the HORSE engine so uLL
// sandboxes are immediately fast-path-ready again.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "core/horse_resume.hpp"
#include "faas/keepalive_policy.hpp"
#include "faas/registry.hpp"
#include "faas/warm_pool.hpp"
#include "sched/topology.hpp"
#include "util/status.hpp"
#include "vmm/boot.hpp"
#include "vmm/snapshot.hpp"

namespace horse::faas {

enum class StartMode : std::uint8_t { kCold, kRestore, kWarm, kHorse };

[[nodiscard]] constexpr std::string_view to_string(StartMode mode) noexcept {
  switch (mode) {
    case StartMode::kCold: return "cold";
    case StartMode::kRestore: return "restore";
    case StartMode::kWarm: return "warm";
    case StartMode::kHorse: return "horse";
  }
  return "unknown";
}

struct PlatformConfig {
  std::size_t num_cpus = 8;
  vmm::VmmProfile profile = vmm::VmmProfile::firecracker();
  core::HorseConfig horse;
  WarmPoolConfig warm_pool;
  /// Derive per-function keep-alive windows from idle-time histograms
  /// (Shahrad et al. ATC'20) instead of the fixed warm_pool.keep_alive.
  bool adaptive_keep_alive = false;
  KeepAlivePolicyConfig keep_alive_policy;
  /// Generic warm-start dispatch plumbing (request routing, sandbox
  /// lookup) charged to cold/restore/warm starts; the HORSE fast path
  /// bypasses it. See sim/cost_model.hpp for the derivation from Table 1.
  util::Nanos warm_dispatch_overhead = 820;
  std::uint64_t seed = 1;
};

/// Lifetime invocation counters (successful invocations only).
struct PlatformCounters {
  std::uint64_t invocations = 0;
  std::uint64_t cold = 0;
  std::uint64_t restore = 0;
  std::uint64_t warm = 0;
  std::uint64_t horse = 0;
  std::uint64_t failed = 0;
};

struct InvocationRecord {
  StartMode mode = StartMode::kCold;
  /// Total sandbox-initialization latency (modelled + measured parts).
  util::Nanos init_time = 0;
  /// Modelled share of init_time (boot / device re-init / dispatch).
  util::Nanos init_modelled = 0;
  /// Measured function execution time.
  util::Nanos exec_time = 0;
  /// Per-step resume timing (warm/horse modes only).
  vmm::ResumeBreakdown resume;
  workloads::Response response;

  [[nodiscard]] double init_fraction() const noexcept {
    const util::Nanos total = init_time + exec_time;
    return total == 0 ? 0.0
                      : static_cast<double>(init_time) /
                            static_cast<double>(total);
  }
};

// Thread-safety: invoke / provision / ensure_snapshot / advance_time are
// serialized on an internal control-plane mutex, so a Platform may be
// shared by concurrent frontends (see Invoker). Accessors returning
// references (registry, warm_pool, engines) hand out unsynchronised
// objects — configure before going concurrent.
class Platform {
 public:
  explicit Platform(PlatformConfig config = {});

  [[nodiscard]] FunctionRegistry& registry() noexcept { return registry_; }
  [[nodiscard]] WarmPool& warm_pool() noexcept { return pool_; }
  [[nodiscard]] sched::CpuTopology& topology() noexcept { return topology_; }
  [[nodiscard]] vmm::ResumeEngine& vanilla_engine() noexcept { return *vanilla_; }
  [[nodiscard]] core::HorseResumeEngine& horse_engine() noexcept {
    return *horse_;
  }
  [[nodiscard]] const PlatformConfig& config() const noexcept { return config_; }

  /// Provisioned concurrency: create, start once, pause and pool `count`
  /// sandboxes for `function`, and set the pool's eviction floor.
  util::Status provision(FunctionId function, std::size_t count);

  /// Make sure a snapshot exists for restore-mode starts.
  util::Status ensure_snapshot(FunctionId function);

  /// Trigger one invocation with the given start strategy.
  [[nodiscard]] util::Expected<InvocationRecord> invoke(
      FunctionId function, const workloads::Request& request, StartMode mode);

  /// Logical platform clock for keep-alive accounting; advanced by the
  /// caller (experiments drive it from their own schedule).
  [[nodiscard]] util::Nanos logical_now() const noexcept { return logical_now_; }
  void advance_time(util::Nanos delta);

  /// The hybrid-histogram keep-alive policy (consulted on advance_time
  /// when config().adaptive_keep_alive is set; always records arrivals).
  [[nodiscard]] HybridHistogramPolicy& keep_alive_policy() noexcept {
    return keep_alive_policy_;
  }

  [[nodiscard]] PlatformCounters counters() const {
    std::lock_guard lock(control_mutex_);
    return counters_;
  }

 private:
  [[nodiscard]] util::Expected<std::unique_ptr<vmm::Sandbox>> make_sandbox(
      const FunctionSpec& spec);
  util::Status pause_and_pool(FunctionId function,
                              std::unique_ptr<vmm::Sandbox> sandbox);
  util::Status ensure_snapshot_locked(FunctionId function);
  util::Expected<InvocationRecord> invoke_locked(
      FunctionId function, const workloads::Request& request, StartMode mode);

  PlatformConfig config_;
  mutable std::mutex control_mutex_;
  sched::CpuTopology topology_;
  std::unique_ptr<vmm::ResumeEngine> vanilla_;
  std::unique_ptr<core::HorseResumeEngine> horse_;
  vmm::BootModel boot_;
  vmm::SnapshotManager snapshots_;
  FunctionRegistry registry_;
  WarmPool pool_;
  std::unordered_map<FunctionId, vmm::Snapshot> snapshot_store_;
  HybridHistogramPolicy keep_alive_policy_;
  PlatformCounters counters_;
  sched::SandboxId next_sandbox_id_ = 1;
  util::Nanos logical_now_ = 0;
};

}  // namespace horse::faas
