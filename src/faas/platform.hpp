// Platform: the public facade of the library — a single-node FaaS control
// plane over the scheduler/VMM substrates, speaking the paper's four start
// strategies.
//
//   kCold    — build a sandbox from scratch (modelled guest boot + real
//              scheduler start), then run the function.
//   kRestore — materialise the sandbox from a snapshot (real memory-image
//              copy + modelled device re-init), FaaSnap-style.
//   kWarm    — take a paused sandbox from the warm pool and resume it
//              through the *vanilla* resume path.
//   kHorse   — take a paused uLL sandbox and resume it through the HORSE
//              fast path (𝒫²𝒮ℳ + coalesced load update).
//
// Execution is in-process: the sandbox's vCPUs are really enqueued on the
// scheduler substrate and the function body really executes; what is
// modelled (boot, device re-init, dispatch plumbing) is itemised on the
// returned record so experiments can account modelled vs measured time.
//
// After each invocation the sandbox is re-paused and returned to the warm
// pool (keep-alive); pausing always goes through a HORSE engine so uLL
// sandboxes are immediately fast-path-ready again.
//
// ── Sharded control plane ───────────────────────────────────────────────
//
// The control plane is sharded two ways (see DESIGN.md, "Sharded control
// plane"):
//
//   * per-FUNCTION shards — FunctionId hashes to one ControlShard that
//     owns the function's warm-pool partition, snapshot cache, keep-alive
//     history, RNG stream, and counters. Invocations of functions on
//     different shards never touch the same mutex; invocations of the
//     SAME function serialise on their shard, which is also what keeps a
//     function's workload-implementation state single-threaded.
//   * per-QUEUE resume engines — one HorseResumeEngine per reserved
//     ull_runqueue, all sharing one UllRunQueueManager (which owns the
//     engine-per-queue map). HORSE resumes targeting different reserved
//     queues proceed under different step-② locks.
//
// Thread-safety: invoke / provision / ensure_snapshot / advance_time /
// counters may be called from any number of threads. Lock hierarchy
// (never acquire right-to-left):
//
//   shard mutex → engine resume_lock_ → ull-manager mutex → queue lock
//                                                         → load lock
//
// Accessors returning references to substrate objects (registry,
// topology, engines, ull_manager) hand out objects that are themselves
// internally synchronised for the operations the platform performs;
// instrumentation that walks them (e.g. reading queue contents) should
// quiesce invokers first, as before.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/horse_resume.hpp"
#include "faas/admission.hpp"
#include "faas/keepalive_policy.hpp"
#include "faas/registry.hpp"
#include "faas/warm_pool.hpp"
#include "metrics/contention.hpp"
#include "sched/topology.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"
#include "vmm/boot.hpp"
#include "vmm/snapshot.hpp"

namespace horse::faas {

enum class StartMode : std::uint8_t { kCold, kRestore, kWarm, kHorse };

[[nodiscard]] constexpr std::string_view to_string(StartMode mode) noexcept {
  switch (mode) {
    case StartMode::kCold: return "cold";
    case StartMode::kRestore: return "restore";
    case StartMode::kWarm: return "warm";
    case StartMode::kHorse: return "horse";
  }
  return "unknown";
}

/// Bounded retry ladder for failed starts. A failed start attempt (pool
/// miss, resume failure, corrupt snapshot) demotes the invocation one rung
/// colder — kHorse → kWarm → kRestore → kCold — instead of surfacing the
/// error, up to `max_attempts` rungs with a modelled, jittered backoff
/// between them. Per-sandbox health is tracked across invocations:
/// a pooled sandbox whose resume fails `quarantine_threshold` times in a
/// row is quarantined (untracked, destroyed, never re-pooled).
struct DegradationPolicy {
  bool enabled = true;
  /// Total start attempts per invocation (first try included).
  std::size_t max_attempts = 4;
  /// Consecutive resume failures before a pooled sandbox is evicted.
  std::size_t quarantine_threshold = 2;
  /// Base/cap of the modelled capped full-jitter backoff between rungs
  /// (util::Backoff): attempt k draws uniformly from
  /// (0, min(cap, base * 2^(k-1))] on the shard's seeded RNG. Purely
  /// modelled (recorded, never slept).
  util::Nanos retry_backoff_base = 50 * util::kMicrosecond;
  util::Nanos retry_backoff_cap = 10 * util::kMillisecond;
};

struct PlatformConfig {
  std::size_t num_cpus = 8;
  vmm::VmmProfile profile = vmm::VmmProfile::firecracker();
  core::HorseConfig horse;
  WarmPoolConfig warm_pool;
  /// Derive per-function keep-alive windows from idle-time histograms
  /// (Shahrad et al. ATC'20) instead of the fixed warm_pool.keep_alive.
  bool adaptive_keep_alive = false;
  KeepAlivePolicyConfig keep_alive_policy;
  /// Generic warm-start dispatch plumbing (request routing, sandbox
  /// lookup) charged to cold/restore/warm starts; the HORSE fast path
  /// bypasses it. See sim/cost_model.hpp for the derivation from Table 1.
  util::Nanos warm_dispatch_overhead = 820;
  DegradationPolicy degradation;
  /// Host-level overload control (shard high-water, retry budget,
  /// circuit breaker); every gate defaults off — see AdmissionConfig.
  AdmissionConfig admission;
  std::uint64_t seed = 1;
  /// Number of per-function control-plane shards; 0 = max(8, num_cpus).
  std::size_t control_shards = 0;
};

/// Lifetime invocation counters. Per-mode counts are by the mode the
/// invocation actually COMPLETED with (after any ladder demotions), so
/// cold+restore+warm+horse always sums to invocations.
struct PlatformCounters {
  std::uint64_t invocations = 0;
  std::uint64_t cold = 0;
  std::uint64_t restore = 0;
  std::uint64_t warm = 0;
  std::uint64_t horse = 0;
  std::uint64_t failed = 0;
  // --- degradation-ladder counters ---------------------------------------
  /// Individual rung demotions taken (an invocation may take several).
  std::uint64_t rung_fallbacks = 0;
  /// Invocations that completed at a colder mode than requested.
  std::uint64_t degraded_invocations = 0;
  /// Pooled sandboxes evicted after repeated resume failures.
  std::uint64_t sandboxes_quarantined = 0;
  /// Sandboxes properly torn down after the warm pool rejected them
  /// (per-function cap) — previously they were silently dropped.
  std::uint64_t pool_overflow_destroyed = 0;
  // --- overload-control counters ------------------------------------------
  /// Invocations refused because the shard was at its high-water mark.
  std::uint64_t shard_overload_rejections = 0;
  /// Invocations refused because the function's breaker was open.
  std::uint64_t breaker_rejections = 0;
  /// Breaker closed/half-open → open transitions.
  std::uint64_t breaker_opens = 0;
  /// Ladder escalations to kRestore/kCold refused: retry budget empty.
  std::uint64_t budget_denied_escalations = 0;
  /// Invocations refused because their deadline had already passed when
  /// the shard picked them up.
  std::uint64_t deadline_rejections = 0;
  // --- crash-tolerance counters --------------------------------------------
  /// Sandboxes restored into the warm pool by rehydrate() (warm rejoin).
  std::uint64_t rehydrated_sandboxes = 0;
  // --- workflow-chain counters ---------------------------------------------
  /// Chains that ran to an outcome through invoke_chain (success, gated
  /// early-exit, or failure mid-way — each counted once, on the shard of
  /// the stage the chain entered at).
  std::uint64_t chains_invoked = 0;
  /// Total chain stages whose bodies actually executed.
  std::uint64_t chain_stages_executed = 0;
  /// Fused segments executed as a single resume (each also counts as one
  /// invocation, attributed to its entry stage's mode).
  std::uint64_t fused_segments = 0;
  /// Chain stages dispatched per-stage (planner split, or fallback after
  /// a fused segment failed to start).
  std::uint64_t chain_fallback_stages = 0;
  /// Chains that completed early on a kGated edge (success outcome).
  std::uint64_t chains_gated_early = 0;

  PlatformCounters& operator+=(const PlatformCounters& other) noexcept {
    invocations += other.invocations;
    cold += other.cold;
    restore += other.restore;
    warm += other.warm;
    horse += other.horse;
    failed += other.failed;
    rung_fallbacks += other.rung_fallbacks;
    degraded_invocations += other.degraded_invocations;
    sandboxes_quarantined += other.sandboxes_quarantined;
    pool_overflow_destroyed += other.pool_overflow_destroyed;
    shard_overload_rejections += other.shard_overload_rejections;
    breaker_rejections += other.breaker_rejections;
    breaker_opens += other.breaker_opens;
    budget_denied_escalations += other.budget_denied_escalations;
    deadline_rejections += other.deadline_rejections;
    rehydrated_sandboxes += other.rehydrated_sandboxes;
    chains_invoked += other.chains_invoked;
    chain_stages_executed += other.chain_stages_executed;
    fused_segments += other.fused_segments;
    chain_fallback_stages += other.chain_fallback_stages;
    chains_gated_early += other.chains_gated_early;
    return *this;
  }
};

/// The next-colder rung of the start ladder (kCold maps to itself).
[[nodiscard]] constexpr StartMode next_colder(StartMode mode) noexcept {
  switch (mode) {
    case StartMode::kHorse: return StartMode::kWarm;
    case StartMode::kWarm: return StartMode::kRestore;
    case StartMode::kRestore: return StartMode::kCold;
    case StartMode::kCold: return StartMode::kCold;
  }
  return StartMode::kCold;
}

struct InvocationRecord {
  /// The mode the invocation actually completed with.
  StartMode mode = StartMode::kCold;
  /// The mode the caller asked for (== mode unless the ladder demoted).
  StartMode requested = StartMode::kCold;
  /// Ladder rungs descended before the start succeeded.
  std::uint32_t fallbacks = 0;
  /// Modelled, jittered retry backoff accumulated across rungs (included
  /// in init_time / init_modelled).
  util::Nanos retry_backoff = 0;
  /// Total sandbox-initialization latency (modelled + measured parts).
  util::Nanos init_time = 0;
  /// Modelled share of init_time (boot / device re-init / dispatch).
  util::Nanos init_modelled = 0;
  /// Measured function execution time.
  util::Nanos exec_time = 0;
  /// Per-step resume timing (warm/horse modes only).
  vmm::ResumeBreakdown resume;
  workloads::Response response;

  [[nodiscard]] double init_fraction() const noexcept {
    const util::Nanos total = init_time + exec_time;
    return total == 0 ? 0.0
                      : static_cast<double>(init_time) /
                            static_cast<double>(total);
  }
};

/// Per-invocation overload-control context for Platform::invoke. `now`
/// and `deadline` flow in; `reject` flows out: when invoke fails with a
/// non-kNone reject the refusal came from overload control (breaker,
/// shard high-water, expired deadline), not from the function itself —
/// callers map it onto SubmissionOutcome::reject so no refusal is silent.
struct InvokeControls {
  /// Monotonic timestamp the caller observed (deadline checks and breaker
  /// cooldowns are evaluated against it; the platform never reads a clock
  /// for these, keeping SimCluster reproduction exact).
  util::Nanos now = 0;
  /// Absolute monotonic deadline; 0 = none. For chains this is the ONE
  /// deadline the whole chain carries: invoke_chain re-checks the
  /// remaining slack before every hop against `now` plus the time the
  /// chain has measurably consumed so far.
  util::Nanos deadline = 0;
  /// OUT: why overload control refused (kNone on success or on ordinary
  /// invocation failure).
  SubmissionReject reject = SubmissionReject::kNone;
  /// IN (invoke_chain only): hop cursor — the first chain stage this call
  /// still has to run. 0 for a fresh chain; an orphan-recovery
  /// re-dispatch passes the frontier its dead host had reached. OUT: left
  /// at the frontier on return, so a failed chain reports exactly where
  /// it stopped.
  std::uint32_t hop = 0;
  /// OUT (invoke_chain only): stages completed by THIS call
  /// (hop_on_return - hop_on_entry).
  std::uint32_t hops_completed = 0;
  /// Optional (invoke_chain only): called after each stage completes with
  /// the advanced cursor and the function at that cursor (the last
  /// stage's id again once the chain is done). Invoked while the
  /// executing shard's mutex is held — the callback must only touch leaf
  /// state (the cluster Host updates its in-flight ledger entry, a leaf
  /// lock, so orphan recovery re-dispatches from the frontier).
  std::function<void(std::uint32_t hop, FunctionId function)> on_hop;
};

/// Outcome of invoke_chain: one aggregated InvocationRecord (the chain's
/// latency decomposition: first segment's start cost, summed exec and any
/// later segments' start costs, final stage's response) plus chain-shaped
/// accounting the per-function record cannot express.
struct ChainRecord {
  InvocationRecord record;
  /// The hop cursor this call started from.
  std::uint32_t first_hop = 0;
  /// Stages whose bodies ran in this call.
  std::uint32_t stages_executed = 0;
  /// How many fused segments (multi-stage single-resume runs) ran.
  std::uint32_t fused_segments = 0;
  /// Stages that went through ordinary per-stage dispatch instead
  /// (planner split or fused-start fallback).
  std::uint32_t per_stage_dispatches = 0;
  /// The chain stopped early on a kGated edge (success: the gating
  /// stage's response is the chain's response).
  bool gated_early = false;
};

class Platform;

/// Consistent observability snapshot — see
/// Platform::control_plane_snapshot().
struct ControlPlaneSnapshot {
  /// Shard-mutex acquisition accounting, summed across shards.
  metrics::ContentionStats shard_contention;
  /// Pooled-sandbox count per shard (index = shard), read under the same
  /// per-shard hold as that shard's contention contribution.
  std::vector<std::size_t> shard_pool_occupancy;
  /// Reserved-queue occupancy + manager-mutex contention, one critical
  /// section (core::UllRunQueueManager::snapshot()).
  core::UllRunQueueManager::ManagerSnapshot ull;
};

/// Read-mostly view over the striped warm pool: each call routes to the
/// shard owning the function and takes that shard's lock, so callers keep
/// the pre-sharding `platform.warm_pool().available(fn)` idiom without
/// seeing a single pool object (there isn't one any more).
class ShardedWarmPoolView {
 public:
  [[nodiscard]] std::size_t available(FunctionId function) const;
  [[nodiscard]] std::size_t provisioned_floor(FunctionId function) const;
  [[nodiscard]] util::Nanos keep_alive_for(FunctionId function) const;
  void set_keep_alive_override(FunctionId function, util::Nanos keep_alive);
  /// Pooled sandboxes across all shards (sums per-shard totals).
  [[nodiscard]] std::size_t total() const;

 private:
  friend class Platform;
  explicit ShardedWarmPoolView(Platform& platform) : platform_(platform) {}
  Platform& platform_;
};

/// Same idea for the hybrid-histogram keep-alive policy: a function's idle
/// history lives wholly in its owning shard.
class KeepAlivePolicyView {
 public:
  [[nodiscard]] KeepAliveDecision decide(FunctionId function) const;
  [[nodiscard]] std::size_t sample_count(FunctionId function) const;
  [[nodiscard]] std::size_t oob_count(FunctionId function) const;
  [[nodiscard]] const KeepAlivePolicyConfig& config() const noexcept;

 private:
  friend class Platform;
  explicit KeepAlivePolicyView(Platform& platform) : platform_(platform) {}
  Platform& platform_;
};

class Platform {
 public:
  explicit Platform(PlatformConfig config = {});

  [[nodiscard]] FunctionRegistry& registry() noexcept { return registry_; }
  [[nodiscard]] ShardedWarmPoolView& warm_pool() noexcept { return pool_view_; }
  [[nodiscard]] sched::CpuTopology& topology() noexcept { return topology_; }
  [[nodiscard]] vmm::ResumeEngine& vanilla_engine() noexcept { return *vanilla_; }
  /// The first per-queue HORSE engine (the only one when
  /// horse.num_ull_runqueues == 1; see horse_engines() for the rest).
  [[nodiscard]] core::HorseResumeEngine& horse_engine() noexcept {
    return *horse_engines_.front();
  }
  [[nodiscard]] const std::vector<std::unique_ptr<core::HorseResumeEngine>>&
  horse_engines() const noexcept {
    return horse_engines_;
  }
  [[nodiscard]] core::UllRunQueueManager& ull_manager() noexcept {
    return *ull_manager_;
  }
  [[nodiscard]] const PlatformConfig& config() const noexcept { return config_; }

  /// Provisioned concurrency: create, start once, pause and pool `count`
  /// sandboxes for `function`, and set the pool's eviction floor.
  util::Status provision(FunctionId function, std::size_t count);

  /// Make sure a snapshot exists for restore-mode starts.
  util::Status ensure_snapshot(FunctionId function);

  /// Trigger one invocation with the given start strategy. Takes the
  /// request by value: callers that move avoid every copy down to the
  /// workload implementation.
  [[nodiscard]] util::Expected<InvocationRecord> invoke(
      FunctionId function, workloads::Request request, StartMode mode);

  /// Overload-aware invoke: checks the deadline, the shard high-water
  /// mark, and the function's circuit breaker before starting, and gates
  /// ladder escalation on the retry budget. On an overload refusal the
  /// returned status is not-OK and controls.reject names the reason.
  [[nodiscard]] util::Expected<InvocationRecord> invoke(
      FunctionId function, workloads::Request request, StartMode mode,
      InvokeControls& controls);

  /// Invoke a registered workflow chain as one routed unit, starting from
  /// controls.hop. The fusion planner partitions the remaining stages
  /// into maximal runs of adjacent uLL-fusable stages; each fused run
  /// executes as a SINGLE warm/horse resume (one pool take, one resume
  /// prologue, stage outputs handed off in-sandbox), and everything else
  /// falls back to ordinary per-stage invoke() through the full
  /// admission machinery. Remaining deadline slack is re-checked before
  /// every hop; a mid-chain refusal or failure surfaces with controls.hop
  /// at the frontier so the caller can re-dispatch without re-executing
  /// completed stages. The resume ladder demotes a failing SEGMENT, never
  /// the whole chain.
  [[nodiscard]] util::Expected<ChainRecord> invoke_chain(
      WorkflowId workflow, workloads::Request request, StartMode mode,
      InvokeControls& controls);

  /// Convenience overload with default controls (no deadline, hop 0).
  [[nodiscard]] util::Expected<ChainRecord> invoke_chain(
      WorkflowId workflow, workloads::Request request, StartMode mode);

  /// Logical platform clock for keep-alive accounting; advanced by the
  /// caller (experiments drive it from their own schedule).
  [[nodiscard]] util::Nanos logical_now() const noexcept {
    return logical_now_.load(std::memory_order_acquire);
  }
  void advance_time(util::Nanos delta);

  /// The hybrid-histogram keep-alive policy (consulted on advance_time
  /// when config().adaptive_keep_alive is set; always records arrivals).
  [[nodiscard]] KeepAlivePolicyView& keep_alive_policy() noexcept {
    return keep_alive_view_;
  }

  /// Lifetime counters, aggregated across shards.
  [[nodiscard]] PlatformCounters counters() const;

  /// Degradation counters aggregated across the per-queue HORSE engines.
  [[nodiscard]] core::ResumeDegradationStats resume_degradation_stats() const;

  // --- overload control ---------------------------------------------------

  /// The host-wide retry-budget bucket (atomic; safe from any thread).
  [[nodiscard]] RetryBudget& retry_budget() noexcept { return retry_budget_; }
  [[nodiscard]] const RetryBudget& retry_budget() const noexcept {
    return retry_budget_;
  }
  /// Current breaker state for `function` (kClosed when no breaker exists
  /// yet — a function with no failures has an implicitly closed breaker).
  [[nodiscard]] CircuitBreaker::State breaker_state(FunctionId function) const;
  /// Aggregated breaker stats for `function` (zeros when none exists).
  [[nodiscard]] CircuitBreaker::Stats breaker_stats(FunctionId function) const;

  // --- crash tolerance / warm rejoin ---------------------------------------

  /// Crash model: destroy every pooled warm sandbox on every shard — a
  /// host that dies loses its warm state wholesale. Provisioned floors
  /// and keep-alive overrides survive (policy, not state), so a later
  /// rehydrate() can build the pools back up.
  void clear_warm_pools();

  /// Warm-rejoin rehydration: top `function`'s warm pool back up to
  /// `target` paused sandboxes by restoring from its snapshot (taken
  /// first if none exists) — the kRestore recipe, ending in the pool
  /// instead of an invocation. Idempotent: a pool already at/above
  /// `target` is left untouched, so rejoin after a mere stall (warm state
  /// intact) restores nothing.
  util::Status rehydrate(FunctionId function, std::size_t target);

  /// The up-to-k most recently invoked registered functions, most recent
  /// first, ranked by the keep-alive history's last-arrival time. This is
  /// what warm rejoin rehydrates: the functions traffic was actually
  /// routing here before the crash.
  [[nodiscard]] std::vector<FunctionId> recently_invoked(std::size_t k) const;

  // --- shard observability ------------------------------------------------

  [[nodiscard]] std::size_t num_shards() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] std::size_t shard_of(FunctionId function) const noexcept {
    return static_cast<std::size_t>(function) % shards_.size();
  }
  /// Shard-mutex acquisition accounting, summed across shards.
  [[nodiscard]] metrics::ContentionStats shard_contention() const;
  /// Per-shard pooled-sandbox occupancy (index = shard).
  [[nodiscard]] std::vector<std::size_t> shard_pool_occupancy() const;
  /// Every observability counter a reporting row needs, through one
  /// accessor: each shard is visited ONCE (contention + pool occupancy
  /// under a single hold of its mutex) and the ull manager contributes
  /// its own single-critical-section snapshot. shard_contention() +
  /// shard_pool_occupancy() + ull_manager().occupancy()/contention()
  /// called separately can interleave with invocations and produce rows
  /// whose columns describe different instants; CSV emitters
  /// (macro_throughput) and the cluster's per-host stats use this.
  [[nodiscard]] ControlPlaneSnapshot control_plane_snapshot() const;

 private:
  friend class ShardedWarmPoolView;
  friend class KeepAlivePolicyView;

  /// Everything one function-shard owns. The shard mutex serialises all
  /// control-plane work for the functions hashing here; substrate work
  /// done while it is held (engine calls) nests per the lock hierarchy in
  /// the file comment.
  struct ControlShard {
    ControlShard(const PlatformConfig& config, std::uint64_t seed_base)
        : boot(config.profile, seed_base + 1),
          snapshots(config.profile, seed_base + 2),
          pool(config.warm_pool),
          keep_alive(config.keep_alive_policy),
          rng(seed_base + 3) {}

    mutable std::mutex mutex;
    mutable metrics::ContentionMeter meter;
    vmm::BootModel boot;
    vmm::SnapshotManager snapshots;
    WarmPool pool;
    HybridHistogramPolicy keep_alive;
    std::unordered_map<FunctionId, vmm::Snapshot> snapshot_store;
    /// Consecutive resume failures per pooled sandbox (erased on success,
    /// quarantine, or eviction).
    std::unordered_map<sched::SandboxId, std::size_t> resume_failures;
    /// Per-function circuit breakers (created on first failure; guarded by
    /// the shard mutex like everything else here — no new locks).
    std::unordered_map<FunctionId, CircuitBreaker> breakers;
    PlatformCounters counters;
    util::Xoshiro256 rng;
    /// Invocations currently inside (or queued on the mutex of) this
    /// shard; atomic so the high-water check runs BEFORE blocking on the
    /// mutex — that pre-lock rejection is the whole point, an overloaded
    /// shard must refuse without making the caller wait in its convoy.
    std::atomic<std::size_t> inflight{0};
    /// Pre-lock rejection tallies (atomics: counted without the mutex,
    /// folded into PlatformCounters by Platform::counters()).
    std::atomic<std::uint64_t> overload_rejections{0};
    std::atomic<std::uint64_t> deadline_rejections{0};
  };

  [[nodiscard]] ControlShard& shard(FunctionId function) {
    return *shards_[shard_of(function)];
  }
  [[nodiscard]] const ControlShard& shard(FunctionId function) const {
    return *shards_[shard_of(function)];
  }

  /// The HORSE engine a shard prefers for starts/pauses (round-robin over
  /// the per-queue engines; the RESUME engine is always looked up from
  /// the sandbox's queue assignment instead).
  [[nodiscard]] core::HorseResumeEngine& horse_affine(
      std::size_t shard_index) noexcept {
    return *horse_engines_[shard_index % horse_engines_.size()];
  }

  [[nodiscard]] std::unique_ptr<vmm::Sandbox> make_sandbox(
      const FunctionSpec& spec);
  util::Status pause_and_pool(ControlShard& shard, std::size_t shard_index,
                              FunctionId function,
                              std::unique_ptr<vmm::Sandbox> sandbox);
  util::Status ensure_snapshot_on(ControlShard& shard, std::size_t shard_index,
                                  FunctionId function);
  util::Expected<InvocationRecord> invoke_on_shard(ControlShard& shard,
                                                   std::size_t shard_index,
                                                   FunctionId function,
                                                   workloads::Request request,
                                                   StartMode mode,
                                                   InvokeControls* controls);

  /// One rung: acquire + initialise a runnable sandbox for `mode`,
  /// filling the init/resume fields of `record`. Failure leaves the
  /// shard consistent (failed pooled sandboxes are health-tracked and
  /// re-pooled or quarantined) so the caller may try a colder rung.
  [[nodiscard]] util::Expected<std::unique_ptr<vmm::Sandbox>> try_start_on(
      ControlShard& shard, std::size_t shard_index, FunctionId function,
      const FunctionSpec& spec, StartMode mode, InvocationRecord& record);

  /// Admission wrapper for one fused segment: entry-shard high-water and
  /// breaker gates, then fused_segment_on_shard under the entry shard's
  /// mutex. A typed refusal sets controls.reject; an untyped failure lets
  /// invoke_chain fall back to per-stage dispatch of the same stages.
  util::Expected<InvocationRecord> invoke_fused_segment(
      const WorkflowSpec& workflow, const ChainSegment& segment,
      workloads::Request& request, StartMode mode, InvokeControls& controls,
      const util::Stopwatch& chain_watch, ChainRecord& chain);

  /// The fused-execution path proper (entry shard mutex held): one start
  /// ladder for the segment's entry stage, then every stage body in the
  /// segment back-to-back inside that one sandbox with edge plumbing
  /// between them, one re-pause at the end. Only the ENTRY stage records
  /// a keep-alive arrival — interior stages never take a pool slot, so
  /// counting them would inflate their pre-warm ranking.
  util::Expected<InvocationRecord> fused_segment_on_shard(
      ControlShard& shard, std::size_t shard_index,
      const WorkflowSpec& workflow, const ChainSegment& segment,
      workloads::Request& request, StartMode mode, InvokeControls& controls,
      const util::Stopwatch& chain_watch, ChainRecord& chain);

  /// Health bookkeeping for a pooled sandbox whose resume failed: strike
  /// its failure counter; quarantine (untrack + destroy) at the
  /// threshold, else hand it back to the pool for a later retry.
  void handle_resume_failure(ControlShard& shard, FunctionId function,
                             std::unique_ptr<vmm::Sandbox> sandbox);

  /// Tear a sandbox fully down (engine bookkeeping included) after the
  /// pool rejected or evicted it.
  void destroy_pooled(ControlShard& shard, vmm::Sandbox& sandbox);

  PlatformConfig config_;
  sched::CpuTopology topology_;
  // Destruction order (reverse of declaration): shards_ die first — their
  // pools hold the sandboxes the manager's indexes point into — then the
  // engines unbind from the manager, then the manager releases the
  // reserved queues.
  std::unique_ptr<core::UllRunQueueManager> ull_manager_;
  std::unique_ptr<vmm::ResumeEngine> vanilla_;
  std::vector<std::unique_ptr<core::HorseResumeEngine>> horse_engines_;
  FunctionRegistry registry_;
  std::vector<std::unique_ptr<ControlShard>> shards_;
  ShardedWarmPoolView pool_view_{*this};
  KeepAlivePolicyView keep_alive_view_{*this};
  std::atomic<sched::SandboxId> next_sandbox_id_{1};
  std::atomic<util::Nanos> logical_now_{0};
  /// Host-wide (all shards share it); a single atomic, so it sits outside
  /// the lock hierarchy entirely.
  RetryBudget retry_budget_;
};

}  // namespace horse::faas
