// Platform: the public facade of the library — a single-node FaaS control
// plane over the scheduler/VMM substrates, speaking the paper's four start
// strategies.
//
//   kCold    — build a sandbox from scratch (modelled guest boot + real
//              scheduler start), then run the function.
//   kRestore — materialise the sandbox from a snapshot (real memory-image
//              copy + modelled device re-init), FaaSnap-style.
//   kWarm    — take a paused sandbox from the warm pool and resume it
//              through the *vanilla* resume path.
//   kHorse   — take a paused uLL sandbox and resume it through the HORSE
//              fast path (𝒫²𝒮ℳ + coalesced load update).
//
// Execution is in-process: the sandbox's vCPUs are really enqueued on the
// scheduler substrate and the function body really executes; what is
// modelled (boot, device re-init, dispatch plumbing) is itemised on the
// returned record so experiments can account modelled vs measured time.
//
// After each invocation the sandbox is re-paused and returned to the warm
// pool (keep-alive); pausing always goes through the HORSE engine so uLL
// sandboxes are immediately fast-path-ready again.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "core/horse_resume.hpp"
#include "faas/keepalive_policy.hpp"
#include "faas/registry.hpp"
#include "faas/warm_pool.hpp"
#include "sched/topology.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"
#include "vmm/boot.hpp"
#include "vmm/snapshot.hpp"

namespace horse::faas {

enum class StartMode : std::uint8_t { kCold, kRestore, kWarm, kHorse };

[[nodiscard]] constexpr std::string_view to_string(StartMode mode) noexcept {
  switch (mode) {
    case StartMode::kCold: return "cold";
    case StartMode::kRestore: return "restore";
    case StartMode::kWarm: return "warm";
    case StartMode::kHorse: return "horse";
  }
  return "unknown";
}

/// Bounded retry ladder for failed starts. A failed start attempt (pool
/// miss, resume failure, corrupt snapshot) demotes the invocation one rung
/// colder — kHorse → kWarm → kRestore → kCold — instead of surfacing the
/// error, up to `max_attempts` rungs with a modelled, jittered backoff
/// between them. Per-sandbox health is tracked across invocations:
/// a pooled sandbox whose resume fails `quarantine_threshold` times in a
/// row is quarantined (untracked, destroyed, never re-pooled).
struct DegradationPolicy {
  bool enabled = true;
  /// Total start attempts per invocation (first try included).
  std::size_t max_attempts = 4;
  /// Consecutive resume failures before a pooled sandbox is evicted.
  std::size_t quarantine_threshold = 2;
  /// Base of the modelled exponential backoff between rungs; the actual
  /// delay is base * 2^(attempt-1), jittered ±50% from the platform's
  /// seeded RNG. Purely modelled (recorded, never slept).
  util::Nanos retry_backoff_base = 50 * util::kMicrosecond;
};

struct PlatformConfig {
  std::size_t num_cpus = 8;
  vmm::VmmProfile profile = vmm::VmmProfile::firecracker();
  core::HorseConfig horse;
  WarmPoolConfig warm_pool;
  /// Derive per-function keep-alive windows from idle-time histograms
  /// (Shahrad et al. ATC'20) instead of the fixed warm_pool.keep_alive.
  bool adaptive_keep_alive = false;
  KeepAlivePolicyConfig keep_alive_policy;
  /// Generic warm-start dispatch plumbing (request routing, sandbox
  /// lookup) charged to cold/restore/warm starts; the HORSE fast path
  /// bypasses it. See sim/cost_model.hpp for the derivation from Table 1.
  util::Nanos warm_dispatch_overhead = 820;
  DegradationPolicy degradation;
  std::uint64_t seed = 1;
};

/// Lifetime invocation counters. Per-mode counts are by the mode the
/// invocation actually COMPLETED with (after any ladder demotions), so
/// cold+restore+warm+horse always sums to invocations.
struct PlatformCounters {
  std::uint64_t invocations = 0;
  std::uint64_t cold = 0;
  std::uint64_t restore = 0;
  std::uint64_t warm = 0;
  std::uint64_t horse = 0;
  std::uint64_t failed = 0;
  // --- degradation-ladder counters ---------------------------------------
  /// Individual rung demotions taken (an invocation may take several).
  std::uint64_t rung_fallbacks = 0;
  /// Invocations that completed at a colder mode than requested.
  std::uint64_t degraded_invocations = 0;
  /// Pooled sandboxes evicted after repeated resume failures.
  std::uint64_t sandboxes_quarantined = 0;
  /// Sandboxes properly torn down after the warm pool rejected them
  /// (per-function cap) — previously they were silently dropped.
  std::uint64_t pool_overflow_destroyed = 0;
};

/// The next-colder rung of the start ladder (kCold maps to itself).
[[nodiscard]] constexpr StartMode next_colder(StartMode mode) noexcept {
  switch (mode) {
    case StartMode::kHorse: return StartMode::kWarm;
    case StartMode::kWarm: return StartMode::kRestore;
    case StartMode::kRestore: return StartMode::kCold;
    case StartMode::kCold: return StartMode::kCold;
  }
  return StartMode::kCold;
}

struct InvocationRecord {
  /// The mode the invocation actually completed with.
  StartMode mode = StartMode::kCold;
  /// The mode the caller asked for (== mode unless the ladder demoted).
  StartMode requested = StartMode::kCold;
  /// Ladder rungs descended before the start succeeded.
  std::uint32_t fallbacks = 0;
  /// Modelled, jittered retry backoff accumulated across rungs (included
  /// in init_time / init_modelled).
  util::Nanos retry_backoff = 0;
  /// Total sandbox-initialization latency (modelled + measured parts).
  util::Nanos init_time = 0;
  /// Modelled share of init_time (boot / device re-init / dispatch).
  util::Nanos init_modelled = 0;
  /// Measured function execution time.
  util::Nanos exec_time = 0;
  /// Per-step resume timing (warm/horse modes only).
  vmm::ResumeBreakdown resume;
  workloads::Response response;

  [[nodiscard]] double init_fraction() const noexcept {
    const util::Nanos total = init_time + exec_time;
    return total == 0 ? 0.0
                      : static_cast<double>(init_time) /
                            static_cast<double>(total);
  }
};

// Thread-safety: invoke / provision / ensure_snapshot / advance_time are
// serialized on an internal control-plane mutex, so a Platform may be
// shared by concurrent frontends (see Invoker). Accessors returning
// references (registry, warm_pool, engines) hand out unsynchronised
// objects — configure before going concurrent.
class Platform {
 public:
  explicit Platform(PlatformConfig config = {});

  [[nodiscard]] FunctionRegistry& registry() noexcept { return registry_; }
  [[nodiscard]] WarmPool& warm_pool() noexcept { return pool_; }
  [[nodiscard]] sched::CpuTopology& topology() noexcept { return topology_; }
  [[nodiscard]] vmm::ResumeEngine& vanilla_engine() noexcept { return *vanilla_; }
  [[nodiscard]] core::HorseResumeEngine& horse_engine() noexcept {
    return *horse_;
  }
  [[nodiscard]] const PlatformConfig& config() const noexcept { return config_; }

  /// Provisioned concurrency: create, start once, pause and pool `count`
  /// sandboxes for `function`, and set the pool's eviction floor.
  util::Status provision(FunctionId function, std::size_t count);

  /// Make sure a snapshot exists for restore-mode starts.
  util::Status ensure_snapshot(FunctionId function);

  /// Trigger one invocation with the given start strategy.
  [[nodiscard]] util::Expected<InvocationRecord> invoke(
      FunctionId function, const workloads::Request& request, StartMode mode);

  /// Logical platform clock for keep-alive accounting; advanced by the
  /// caller (experiments drive it from their own schedule).
  [[nodiscard]] util::Nanos logical_now() const noexcept { return logical_now_; }
  void advance_time(util::Nanos delta);

  /// The hybrid-histogram keep-alive policy (consulted on advance_time
  /// when config().adaptive_keep_alive is set; always records arrivals).
  [[nodiscard]] HybridHistogramPolicy& keep_alive_policy() noexcept {
    return keep_alive_policy_;
  }

  [[nodiscard]] PlatformCounters counters() const {
    std::lock_guard lock(control_mutex_);
    return counters_;
  }

 private:
  [[nodiscard]] util::Expected<std::unique_ptr<vmm::Sandbox>> make_sandbox(
      const FunctionSpec& spec);
  util::Status pause_and_pool(FunctionId function,
                              std::unique_ptr<vmm::Sandbox> sandbox);
  util::Status ensure_snapshot_locked(FunctionId function);
  util::Expected<InvocationRecord> invoke_locked(
      FunctionId function, const workloads::Request& request, StartMode mode);

  /// One rung: acquire + initialise a runnable sandbox for `mode`,
  /// filling the init/resume fields of `record`. Failure leaves the
  /// platform consistent (failed pooled sandboxes are health-tracked and
  /// re-pooled or quarantined) so the caller may try a colder rung.
  [[nodiscard]] util::Expected<std::unique_ptr<vmm::Sandbox>> try_start_locked(
      FunctionId function, const FunctionSpec& spec, StartMode mode,
      InvocationRecord& record);

  /// Health bookkeeping for a pooled sandbox whose resume failed: strike
  /// its failure counter; quarantine (untrack + destroy) at the
  /// threshold, else hand it back to the pool for a later retry.
  void handle_resume_failure(FunctionId function,
                             std::unique_ptr<vmm::Sandbox> sandbox);

  /// Tear a sandbox fully down (engine bookkeeping included) after the
  /// pool rejected or evicted it.
  void destroy_pooled(vmm::Sandbox& sandbox);

  PlatformConfig config_;
  mutable std::mutex control_mutex_;
  sched::CpuTopology topology_;
  std::unique_ptr<vmm::ResumeEngine> vanilla_;
  std::unique_ptr<core::HorseResumeEngine> horse_;
  vmm::BootModel boot_;
  vmm::SnapshotManager snapshots_;
  FunctionRegistry registry_;
  WarmPool pool_;
  std::unordered_map<FunctionId, vmm::Snapshot> snapshot_store_;
  HybridHistogramPolicy keep_alive_policy_;
  PlatformCounters counters_;
  /// Consecutive resume failures per pooled sandbox (erased on success,
  /// quarantine, or eviction).
  std::unordered_map<sched::SandboxId, std::size_t> resume_failures_;
  util::Xoshiro256 rng_;
  sched::SandboxId next_sandbox_id_ = 1;
  util::Nanos logical_now_ = 0;
};

}  // namespace horse::faas
