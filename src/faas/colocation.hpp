// §5.4 colocation experiment driver: longer-running thumbnail invocations
// (Azure-trace arrivals) sharing a server with bursts of uLL resumes.
//
// Runs on the simulation plane: thumbnail service times come from the
// heavy-tailed sampler, resume costs from the CostModel (calibrated or
// analytic), and CPU contention from the credit scheduler via CpuExecutor.
// Interference channels modelled:
//   * vanilla — uLL vCPUs are placed on the *general* queues: each resume
//     blacks out its target CPUs for the (vCPU-count-dependent) resume
//     duration and the uLL work itself then competes with thumbnails;
//   * HORSE — resumes land on the reserved ull_runqueue (no general-queue
//     contention); the only residual channel is 𝒫²𝒮ℳ merge threads
//     briefly preempting general CPUs (§5.4 measures this as ≤0.00107%
//     on the 99th percentile, ≈30 µs).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "metrics/stats.hpp"
#include "sim/cost_model.hpp"
#include "trace/schedule.hpp"
#include "trace/synthetic.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace horse::faas {

enum class ColocationMode : std::uint8_t { kVanilla, kHorse };

struct ColocationParams {
  ColocationMode mode = ColocationMode::kVanilla;
  std::size_t num_cpus = 12;
  /// Reserved ull_runqueues in HORSE mode.
  std::size_t num_ull_queues = 1;
  /// vCPUs of the uLL sandboxes (the experiment's sweep axis, 1..36).
  std::uint32_t ull_vcpus = 1;
  /// uLL resumes triggered per second.
  std::uint32_t ull_per_second = 10;
  /// uLL function execution time once resumed.
  util::Nanos ull_exec = 1 * util::kMicrosecond;
  /// Experiment window ("a 30 s chunk of the Azure traces").
  util::Nanos duration = 30 * util::kSecond;
  /// Per-merge-thread preemption charged to a general CPU in HORSE mode
  /// (context-switch in/out around two pointer writes).
  util::Nanos merge_preempt_cost = 800;
  /// Thumbnail sandbox resume (2 vCPUs per the paper's setup).
  std::uint32_t thumbnail_vcpus = 2;
  /// Thumbnail service-time distribution. The defaults keep the server
  /// out of the scarcity regime, matching the paper's setup ("designed to
  /// prevent measurement noise from CPU contention due to resource
  /// scarcity").
  trace::DurationSampler::Params thumbnail_durations{
      .median = 200 * util::kMillisecond,
      .sigma = 0.5,
      .tail_fraction = 0.03,
      .tail_min = 1 * util::kSecond,
      .tail_max = 5 * util::kSecond,
      .tail_alpha = 1.5,
  };
  /// Consult Credit2Scheduler::should_preempt() on every submit and let a
  /// winning candidate cancel the running slice (CpuExecutor wake
  /// preemption). Off by default: the historical run-to-slice-end
  /// executor behaviour, bit-identical results for existing arms.
  bool wake_preemption = false;
  /// Wake-preemption resistance handed to Credit2Params. The default
  /// matches the scheduler's own; raise it above `reset_credit` to damp
  /// credit-based wake preemption entirely — the regime where only the
  /// SFS bypass can get a short function onto a busy CPU.
  std::int64_t preemption_resistance = 500 * util::kMicrosecond;
  /// The SFS knob under test (Credit2Params::short_function_first): uLL
  /// candidates bypass preemption resistance — and the credit compare —
  /// against non-uLL runners. Only observable with wake_preemption on;
  /// sweep it with wake_preemption held constant to isolate the knob.
  bool short_function_first = false;
  std::uint64_t seed = 99;
};

struct ColocationResult {
  double mean_ns = 0.0;
  double p95_ns = 0.0;
  double p99_ns = 0.0;
  std::size_t completed = 0;
  std::uint64_t preemptions = 0;
  std::uint64_t ull_triggers = 0;
  /// DVFS-side outcome: estimated CPU energy over the window (schedutil
  /// decisions on the PELT loads, CMOS power model). HORSE must not move
  /// this — the coalesced load updates are bit-equivalent inputs to the
  /// governor.
  double energy_joules = 0.0;
  double mean_freq_khz = 0.0;
  /// uLL end-to-end latency (trigger → function completion, resume
  /// included) — the quantity the SFS knob is supposed to improve without
  /// regressing the thumbnail p99 above.
  double ull_mean_ns = 0.0;
  double ull_p99_ns = 0.0;
  std::size_t ull_completed = 0;
};

class ColocationExperiment {
 public:
  ColocationExperiment(ColocationParams params, const sim::CostModel& costs);

  /// Thumbnail arrivals default to a synthetic Azure 30 s window; tests
  /// may override with an explicit schedule.
  [[nodiscard]] ColocationResult run();
  [[nodiscard]] ColocationResult run(const trace::ArrivalSchedule& arrivals);

 private:
  ColocationParams params_;
  const sim::CostModel& costs_;
};

/// Default arrival source: the busiest function of a synthetic Azure trace
/// windowed to the experiment duration.
[[nodiscard]] trace::ArrivalSchedule default_thumbnail_arrivals(
    util::Nanos duration, std::uint64_t seed);

}  // namespace horse::faas
