// End-to-end overload control: typed rejection reasons, the host-wide
// retry budget, and the per-function circuit breaker.
//
// HORSE makes the warm path ultra-fast, but a saturated platform dies a
// different death: unbounded queueing plus unbudgeted retry-ladder
// escalation turns a load spike into a metastable collapse where every
// request blows its latency target yet none is refused. The pieces here
// make refusal a first-class, typed, counted outcome at every layer:
//
//   * SubmissionReject — WHY a submission was refused. Nothing in the
//     stack may drop a request silently: a shed, expiry, or breaker
//     rejection always produces a SubmissionOutcome carrying one of
//     these (and Platform::invoke reports it through InvokeControls).
//   * RetryBudget — a host-wide token bucket (Finagle-style: every
//     admitted request deposits a fraction of a token, every expensive
//     retry withdraws one) that bounds how much kRestore/kCold ladder
//     escalation the host performs IN AGGREGATE. Per-request ladders are
//     individually bounded but collectively unbounded — a spike of warm
//     misses would otherwise amplify into a restore storm precisely when
//     the host can least afford it. Exhausted budget degrades escalation
//     to an immediate typed rejection. Deterministic by construction
//     (no clock: deposits are request-driven), one atomic, lock-free.
//   * CircuitBreaker — per-function closed → open → half-open machine
//     over a rolling window of resume outcomes. Composes with the
//     per-sandbox strike/quarantine machinery (§5.2): strikes remove one
//     bad sandbox; the breaker notices the FUNCTION keeps failing across
//     sandboxes and makes rejection sticky (open) and recovery probing
//     cheap (half-open admits a few probes after a full-jitter cooldown,
//     util::Backoff-spaced so consecutive re-opens probe less often).
//
// Lock-hierarchy placement (DESIGN.md §5.6): CircuitBreaker instances
// live inside a ControlShard and are only touched under that shard's
// mutex — no new locks, no new hierarchy edges. RetryBudget is shared by
// ALL shards and therefore sits outside the hierarchy entirely: it is a
// single atomic, safe to touch with any (or no) lock held. The breaker's
// stuck-open fault site (breaker.stuck_open) suppresses the open →
// half-open transition so the ladder tests can prove recovery probing is
// what actually closes a breaker.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "util/backoff.hpp"
#include "util/fault_injection.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace horse::faas {

/// Typed refusal reasons — every shed/expiry/breaker outcome carries one.
enum class SubmissionReject : std::uint8_t {
  kNone = 0,
  /// Deadline passed before the work ran (admission check, CoDel-style
  /// drop-on-dequeue, or mid-ladder expiry).
  kDeadlineExpired,
  /// Admission control: estimated queue delay already exceeds the
  /// submission's slack — executing it would only waste a worker.
  kQueueShed,
  /// The bounded pull queue was full (try_push refused).
  kQueueFull,
  /// The function's control shard is above its occupancy high-water mark.
  kShardOverload,
  /// The per-function circuit breaker is open.
  kBreakerOpen,
  /// Ladder escalation to kRestore/kCold denied: host retry budget empty.
  kRetryBudgetExhausted,
  /// A late completion from a declared-dead (zombie) host whose orphaned
  /// submission was already re-dispatched and delivered: the duplicate is
  /// counted, typed, and dropped so every idempotency key surfaces once.
  kDuplicateSuppressed,
};

[[nodiscard]] constexpr std::string_view to_string(
    SubmissionReject reject) noexcept {
  switch (reject) {
    case SubmissionReject::kNone: return "none";
    case SubmissionReject::kDeadlineExpired: return "deadline_expired";
    case SubmissionReject::kQueueShed: return "queue_shed";
    case SubmissionReject::kQueueFull: return "queue_full";
    case SubmissionReject::kShardOverload: return "shard_overload";
    case SubmissionReject::kBreakerOpen: return "breaker_open";
    case SubmissionReject::kRetryBudgetExhausted: return "retry_budget";
    case SubmissionReject::kDuplicateSuppressed: return "duplicate_suppressed";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// RetryBudget
// ---------------------------------------------------------------------------

struct RetryBudgetConfig {
  /// Tokens deposited per admitted request (0.1 = the host may spend one
  /// expensive retry per ten requests, steady-state).
  double deposit_per_request = 0.1;
  /// Token cap: how much burst headroom accumulates while healthy.
  std::uint64_t cap = 256;
  /// Tokens available at construction (cold-start grace).
  std::uint64_t initial = 32;
};

/// Host-wide token bucket over expensive retries. Thread-safe and
/// lock-free: the balance is milli-tokens in one atomic, so deposits and
/// withdrawals from every control shard race benignly.
class RetryBudget {
 public:
  explicit RetryBudget(RetryBudgetConfig config = {}) noexcept
      : config_(config),
        millitokens_(static_cast<std::int64_t>(
            (config.initial < config.cap ? config.initial : config.cap) *
            1000)) {}

  /// One admitted request funds deposit_per_request tokens, up to cap.
  void deposit() noexcept {
    const auto add =
        static_cast<std::int64_t>(config_.deposit_per_request * 1000.0);
    const auto cap = static_cast<std::int64_t>(config_.cap) * 1000;
    std::int64_t current = millitokens_.load(std::memory_order_relaxed);
    while (current < cap) {
      const std::int64_t next = current + add < cap ? current + add : cap;
      if (millitokens_.compare_exchange_weak(current, next,
                                             std::memory_order_acq_rel,
                                             std::memory_order_relaxed)) {
        return;
      }
    }
  }

  /// Spend one whole token; false (and no state change) when exhausted.
  [[nodiscard]] bool try_withdraw() noexcept {
    std::int64_t current = millitokens_.load(std::memory_order_relaxed);
    while (current >= 1000) {
      if (millitokens_.compare_exchange_weak(current, current - 1000,
                                             std::memory_order_acq_rel,
                                             std::memory_order_relaxed)) {
        withdrawals_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
    denials_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  /// Whole tokens currently available.
  [[nodiscard]] std::uint64_t available() const noexcept {
    const std::int64_t balance = millitokens_.load(std::memory_order_acquire);
    return balance > 0 ? static_cast<std::uint64_t>(balance / 1000) : 0;
  }

  [[nodiscard]] std::uint64_t withdrawals() const noexcept {
    return withdrawals_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t denials() const noexcept {
    return denials_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const RetryBudgetConfig& config() const noexcept {
    return config_;
  }

 private:
  RetryBudgetConfig config_;
  std::atomic<std::int64_t> millitokens_;
  std::atomic<std::uint64_t> withdrawals_{0};
  std::atomic<std::uint64_t> denials_{0};
};

// ---------------------------------------------------------------------------
// CircuitBreaker
// ---------------------------------------------------------------------------

struct CircuitBreakerConfig {
  /// Rolling-window length (recent resume outcomes considered).
  std::size_t window = 16;
  /// Outcomes required in the window before the rate can open the breaker
  /// (a single early failure must not trip it).
  std::size_t min_samples = 8;
  /// Failure fraction at/above which the breaker opens.
  double failure_rate = 0.5;
  /// Cooldown window before the first half-open probe round; consecutive
  /// re-opens back off (full jitter) up to `cooldown_cap`.
  util::Nanos cooldown_base = 1 * util::kMillisecond;
  util::Nanos cooldown_cap = 100 * util::kMillisecond;
  /// Consecutive half-open probe successes required to close again.
  std::size_t half_open_probes = 2;
};

/// Per-function breaker state machine. NOT internally locked: instances
/// live in a ControlShard and every call happens under that shard's mutex
/// (same-function invocations serialise there anyway).
class CircuitBreaker {
 public:
  enum class State : std::uint8_t { kClosed, kOpen, kHalfOpen };

  struct Stats {
    std::uint64_t opens = 0;        // closed/half-open → open transitions
    std::uint64_t probe_rounds = 0; // open → half-open transitions
    std::uint64_t stuck_open = 0;   // breaker.stuck_open fault fires
  };

  explicit CircuitBreaker(CircuitBreakerConfig config = {}) noexcept
      : config_(config),
        backoff_(util::BackoffPolicy{config.cooldown_base,
                                     config.cooldown_cap}) {
    if (config_.window == 0) {
      config_.window = 1;
    }
    if (config_.window > 64) {
      config_.window = 64;  // outcomes live in one uint64 bitmask
    }
    if (config_.min_samples > config_.window) {
      config_.min_samples = config_.window;
    }
  }

  /// May a request for this function proceed at `now`? Open → false until
  /// the cooldown elapses, then the breaker goes half-open and admits
  /// probes. The open → half-open edge carries the breaker.stuck_open
  /// fault site: a fire suppresses the transition (and re-arms the
  /// cooldown) so tests can hold a breaker open deterministically.
  [[nodiscard]] bool allow(util::Nanos now, util::Xoshiro256& rng) {
    switch (state_) {
      case State::kClosed:
        return true;
      case State::kHalfOpen:
        return true;  // a probe; outcome moves the machine
      case State::kOpen:
        if (now < open_until_) {
          return false;
        }
        if (HORSE_FAULT_POINT("breaker.stuck_open")) {
          ++stats_.stuck_open;
          open_until_ = now + backoff_.delay(reopen_streak_, rng);
          return false;
        }
        state_ = State::kHalfOpen;
        probe_successes_ = 0;
        ++stats_.probe_rounds;
        return true;
    }
    return true;
  }

  void on_success(util::Nanos now) noexcept {
    (void)now;
    if (state_ == State::kHalfOpen) {
      if (++probe_successes_ >= config_.half_open_probes) {
        state_ = State::kClosed;
        reopen_streak_ = 0;
        samples_ = 0;
        outcomes_ = 0;
      }
      return;
    }
    if (state_ == State::kClosed) {
      push_outcome(false);
    }
  }

  void on_failure(util::Nanos now, util::Xoshiro256& rng) {
    if (state_ == State::kHalfOpen) {
      open(now, rng);  // one failed probe re-opens immediately
      return;
    }
    if (state_ == State::kClosed) {
      push_outcome(true);
      if (samples_ >= config_.min_samples &&
          static_cast<double>(failures_in_window()) >=
              config_.failure_rate * static_cast<double>(samples_)) {
        open(now, rng);
      }
    }
  }

  [[nodiscard]] State state() const noexcept { return state_; }
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  /// When the current open period ends (meaningful in kOpen only).
  [[nodiscard]] util::Nanos open_until() const noexcept { return open_until_; }

 private:
  void open(util::Nanos now, util::Xoshiro256& rng) {
    state_ = State::kOpen;
    ++stats_.opens;
    ++reopen_streak_;
    open_until_ = now + backoff_.delay(reopen_streak_, rng);
  }

  void push_outcome(bool failure) noexcept {
    outcomes_ = (outcomes_ << 1) | (failure ? 1ULL : 0ULL);
    if (samples_ < config_.window) {
      ++samples_;
    }
  }

  [[nodiscard]] std::size_t failures_in_window() const noexcept {
    const std::uint64_t mask =
        samples_ >= 64 ? ~0ULL : ((1ULL << samples_) - 1);
    return static_cast<std::size_t>(__builtin_popcountll(outcomes_ & mask));
  }

  CircuitBreakerConfig config_;
  util::Backoff backoff_;
  State state_ = State::kClosed;
  std::uint64_t outcomes_ = 0;  // bit i = i-th most recent outcome, 1=failure
  std::size_t samples_ = 0;
  std::size_t probe_successes_ = 0;
  std::size_t reopen_streak_ = 0;  // consecutive opens; backoff attempt index
  util::Nanos open_until_ = 0;
  Stats stats_;
};

[[nodiscard]] constexpr std::string_view to_string(
    CircuitBreaker::State state) noexcept {
  switch (state) {
    case CircuitBreaker::State::kClosed: return "closed";
    case CircuitBreaker::State::kOpen: return "open";
    case CircuitBreaker::State::kHalfOpen: return "half_open";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// Platform-level admission configuration
// ---------------------------------------------------------------------------

/// Overload-control knobs on one Platform (host). All rejection paths are
/// opt-in: a default-constructed platform behaves exactly as before this
/// subsystem existed, which is what keeps deadline-free callers (and the
/// pre-overload test corpus) byte-identical.
struct AdmissionConfig {
  /// Max invocations concurrently inside (or queued on the mutex of) one
  /// control shard before new arrivals are rejected with kShardOverload
  /// instead of queueing unboundedly. 0 disables.
  std::size_t shard_high_water = 0;
  /// Gate kRestore/kCold ladder escalation on the host-wide RetryBudget.
  bool retry_budget_enabled = false;
  RetryBudgetConfig retry_budget;
  /// Per-function circuit breaker over resume failures.
  bool breaker_enabled = false;
  CircuitBreakerConfig breaker;
};

}  // namespace horse::faas
