#include "faas/invoker.hpp"

#include <utility>

namespace horse::faas {

namespace {

Dispatcher::Options invoker_options(Platform& platform, std::size_t workers) {
  Dispatcher::Options options;
  options.workers = workers == 0 ? 1 : workers;
  options.executor = [&platform](Submission task, SubmissionOutcome& outcome) {
    InvokeControls controls;
    controls.now = util::monotonic_now();
    controls.deadline = task.deadline;
    if (task.workflow != kNoWorkflow) {
      // Chain submission: the workflow is the routed unit; `function`
      // only carried the entry stage for shard-affine routing.
      controls.hop = task.hop;
      outcome.workflow = task.workflow;
      outcome.chain_first_hop = task.hop;
      auto result = platform.invoke_chain(
          task.workflow, std::move(task.request), task.mode, controls);
      outcome.chain_stages = controls.hops_completed;
      if (result) {
        outcome.record = std::move(result->record);
      } else {
        outcome.status = result.status();
        outcome.reject = controls.reject;  // kNone for ordinary failures
      }
      return;
    }
    auto result = platform.invoke(task.function, std::move(task.request),
                                  task.mode, controls);
    if (result) {
      outcome.record = std::move(*result);
    } else {
      outcome.status = result.status();
      outcome.reject = controls.reject;  // kNone for ordinary failures
    }
  };
  // Shard-affine routing: every submission for a function goes to the
  // same worker, which serialises per-function work BEFORE the shard
  // mutex — the lock sees almost no contention, and distinct functions
  // ride distinct workers.
  options.router = [&platform](FunctionId function) {
    return platform.shard_of(function);
  };
  return options;
}

}  // namespace

Invoker::Invoker(Platform& platform, std::size_t workers)
    : platform_(platform), dispatcher_(invoker_options(platform, workers)) {}

void Invoker::submit(FunctionId function, workloads::Request request,
                     StartMode mode) {
  submit(function, std::move(request), mode, 0);
}

void Invoker::submit(FunctionId function, workloads::Request request,
                     StartMode mode, util::Nanos deadline) {
  Submission task;
  task.function = function;
  task.mode = mode;
  task.request = std::move(request);
  task.enqueued_at = util::monotonic_now();
  task.deadline = deadline;
  task.seq = submitted_.fetch_add(1, std::memory_order_relaxed) + 1;
  dispatcher_.submit(std::move(task));
}

void Invoker::submit_chain(WorkflowId workflow, workloads::Request request,
                           StartMode mode, util::Nanos deadline) {
  Submission task;
  task.workflow = workflow;
  task.hop = 0;
  // Mirror the entry stage in `function` so shard-affine routing sees the
  // chain under its first stage's identity (unknown workflows fall to
  // worker 0 and fail with a typed NotFound outcome at execution).
  const auto spec = platform_.registry().find_workflow(workflow);
  task.function = spec ? (*spec)->stages.front() : 0;
  task.mode = mode;
  task.request = std::move(request);
  task.enqueued_at = util::monotonic_now();
  task.deadline = deadline;
  task.seq = submitted_.fetch_add(1, std::memory_order_relaxed) + 1;
  dispatcher_.submit(std::move(task));
}

}  // namespace horse::faas
