#include "faas/invoker.hpp"

#include <utility>

namespace horse::faas {

namespace {

Dispatcher::Options invoker_options(Platform& platform, std::size_t workers) {
  Dispatcher::Options options;
  options.workers = workers == 0 ? 1 : workers;
  options.executor = [&platform](Submission task, SubmissionOutcome& outcome) {
    InvokeControls controls;
    controls.now = util::monotonic_now();
    controls.deadline = task.deadline;
    auto result = platform.invoke(task.function, std::move(task.request),
                                  task.mode, controls);
    if (result) {
      outcome.record = std::move(*result);
    } else {
      outcome.status = result.status();
      outcome.reject = controls.reject;  // kNone for ordinary failures
    }
  };
  // Shard-affine routing: every submission for a function goes to the
  // same worker, which serialises per-function work BEFORE the shard
  // mutex — the lock sees almost no contention, and distinct functions
  // ride distinct workers.
  options.router = [&platform](FunctionId function) {
    return platform.shard_of(function);
  };
  return options;
}

}  // namespace

Invoker::Invoker(Platform& platform, std::size_t workers)
    : platform_(platform), dispatcher_(invoker_options(platform, workers)) {}

void Invoker::submit(FunctionId function, workloads::Request request,
                     StartMode mode) {
  submit(function, std::move(request), mode, 0);
}

void Invoker::submit(FunctionId function, workloads::Request request,
                     StartMode mode, util::Nanos deadline) {
  Submission task;
  task.function = function;
  task.mode = mode;
  task.request = std::move(request);
  task.enqueued_at = util::monotonic_now();
  task.deadline = deadline;
  task.seq = submitted_.fetch_add(1, std::memory_order_relaxed) + 1;
  dispatcher_.submit(std::move(task));
}

}  // namespace horse::faas
