#include "faas/invoker.hpp"

#include <utility>

namespace horse::faas {

Invoker::Invoker(Platform& platform, std::size_t workers)
    : platform_(platform) {
  const std::size_t count = workers == 0 ? 1 : workers;
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    auto worker = std::make_unique<Worker>();
    worker->thread = std::jthread([this, w = worker.get()] { worker_loop(*w); });
    workers_.push_back(std::move(worker));
  }
}

Invoker::~Invoker() {
  for (auto& worker : workers_) {
    {
      std::lock_guard lock(worker->mutex);
      worker->shutting_down = true;
    }
    worker->work_available.notify_all();
  }
  // jthread members join on destruction of each Worker.
}

void Invoker::submit(FunctionId function, workloads::Request request,
                     StartMode mode) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  Task task;
  task.function = function;
  task.mode = mode;
  task.request = std::move(request);
  task.enqueued_at = util::monotonic_now();
  // Shard-affine routing: every submission for this function goes to the
  // same worker, which serialises per-function work BEFORE the shard
  // mutex — the lock sees almost no contention, and distinct functions
  // ride distinct workers.
  Worker& worker = *workers_[platform_.shard_of(function) % workers_.size()];
  {
    std::lock_guard lock(worker.mutex);
    worker.tasks.push_back(std::move(task));
  }
  worker.work_available.notify_one();
}

void Invoker::worker_loop(Worker& worker) {
  std::unique_lock lock(worker.mutex);
  while (true) {
    worker.work_available.wait(lock, [&worker] {
      return !worker.tasks.empty() || worker.shutting_down;
    });
    if (worker.tasks.empty()) {
      if (worker.shutting_down) {
        return;
      }
      continue;
    }
    Task task = std::move(worker.tasks.front());
    worker.tasks.pop_front();
    worker.busy = true;
    lock.unlock();

    Outcome outcome;
    outcome.function = task.function;
    outcome.mode = task.mode;
    // One clock read covers the queueing measurement; invoke() timing is
    // the record's own business.
    outcome.queueing = util::monotonic_now() - task.enqueued_at;
    auto result =
        platform_.invoke(task.function, std::move(task.request), task.mode);
    if (result) {
      outcome.record = std::move(*result);
    } else {
      outcome.status = result.status();
    }

    lock.lock();
    worker.outcomes.push_back(std::move(outcome));
    worker.busy = false;
    if (worker.tasks.empty()) {
      worker.idle.notify_all();
    }
  }
}

std::vector<Invoker::Outcome> Invoker::drain() {
  std::vector<Outcome> out;
  for (auto& worker : workers_) {
    std::unique_lock lock(worker->mutex);
    worker->idle.wait(lock, [&worker] {
      return worker->tasks.empty() && !worker->busy;
    });
    for (auto& outcome : worker->outcomes) {
      out.push_back(std::move(outcome));
    }
    worker->outcomes.clear();
  }
  return out;
}

}  // namespace horse::faas
