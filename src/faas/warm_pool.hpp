// Warm sandbox pool: keep-alive + provisioned concurrency.
//
// Models the two sources of warm starts the paper lists (§1): a fixed
// keep-alive window after a function finishes, and a subscribed
// "provisioned" floor of always-ready sandboxes (Azure Premium / Lambda
// Provisioned Concurrency / Alibaba Provisioned Mode). Pooled sandboxes
// are paused, per the paper's premise that idle warm sandboxes must not
// contend with running ones.
//
// Thread-safety: none of its own — the pool is a striped resource. Each
// control-plane shard owns one WarmPool instance covering the functions
// that hash to it, and every access goes through that shard's mutex (see
// faas/platform.hpp); a standalone WarmPool needs external locking.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "faas/registry.hpp"
#include "util/status.hpp"
#include "util/time.hpp"
#include "vmm/sandbox.hpp"

namespace horse::faas {

struct WarmPoolConfig {
  /// Keep-alive window after an invocation completes (10 min is the
  /// commonly reported public-cloud default).
  util::Nanos keep_alive = 10LL * 60 * util::kSecond;
  /// Hard cap on pooled sandboxes per function.
  std::size_t max_per_function = 64;
};

class WarmPool {
 public:
  explicit WarmPool(WarmPoolConfig config = {}) : config_(config) {}

  /// Park a paused sandbox for reuse at logical time `now`. Fails when the
  /// per-function cap is reached or the sandbox is not poolable. On
  /// failure the sandbox is NOT silently destroyed: it is handed back
  /// through `rejected` (when non-null) so the caller can tear it down
  /// properly — destroying a sandbox means dequeuing its vCPUs and
  /// updating engine bookkeeping, which the pool cannot do. Passing
  /// rejected == nullptr reproduces the old drop-on-floor behaviour and
  /// is only acceptable when the sandbox owns no engine state.
  util::Status put(FunctionId function, std::unique_ptr<vmm::Sandbox> sandbox,
                   util::Nanos now,
                   std::unique_ptr<vmm::Sandbox>* rejected = nullptr);

  /// Take the most-recently-used warm sandbox (LIFO keeps caches warm).
  /// Returns nullptr on a miss — including an injected one (the
  /// warm_pool.take.miss fault site models a pooled sandbox found
  /// unusable at take time; the platform's ladder falls to a colder
  /// start).
  [[nodiscard]] std::unique_ptr<vmm::Sandbox> take(FunctionId function);

  /// Provisioned-concurrency floor: pool refills up to this count are the
  /// platform's job (Platform::provision); eviction never drops below it.
  void set_provisioned_floor(FunctionId function, std::size_t count) {
    floors_[function] = count;
  }
  [[nodiscard]] std::size_t provisioned_floor(FunctionId function) const {
    const auto it = floors_.find(function);
    return it == floors_.end() ? 0 : it->second;
  }

  /// Per-function keep-alive override (e.g. from the hybrid-histogram
  /// policy); functions without one use the config default.
  void set_keep_alive_override(FunctionId function, util::Nanos keep_alive) {
    keep_alive_overrides_[function] = keep_alive;
  }
  [[nodiscard]] util::Nanos keep_alive_for(FunctionId function) const {
    const auto it = keep_alive_overrides_.find(function);
    return it == keep_alive_overrides_.end() ? config_.keep_alive : it->second;
  }

  /// Evict sandboxes idle past keep-alive, respecting provisioned floors.
  /// Returns the evicted sandboxes (caller destroys them properly).
  std::vector<std::unique_ptr<vmm::Sandbox>> evict_expired(util::Nanos now);

  /// Evict EVERY pooled sandbox, ignoring keep-alive and provisioned
  /// floors — the crash model: a dead host's warm state is gone, full
  /// stop. Floors and keep-alive overrides survive (they are policy, not
  /// state) so a rejoining host can be rehydrated back up to them.
  /// Returns the evicted sandboxes (caller destroys them properly).
  std::vector<std::unique_ptr<vmm::Sandbox>> evict_all();

  [[nodiscard]] std::size_t available(FunctionId function) const;
  [[nodiscard]] std::size_t total() const noexcept { return total_; }

 private:
  struct Entry {
    std::unique_ptr<vmm::Sandbox> sandbox;
    util::Nanos parked_at = 0;
  };

  WarmPoolConfig config_;
  std::unordered_map<FunctionId, std::deque<Entry>> pools_;
  std::unordered_map<FunctionId, std::size_t> floors_;
  std::unordered_map<FunctionId, util::Nanos> keep_alive_overrides_;
  std::size_t total_ = 0;
};

}  // namespace horse::faas
