#include "faas/keepalive_policy.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace horse::faas {

HybridHistogramPolicy::HybridHistogramPolicy(KeepAlivePolicyConfig config)
    : config_(config) {
  if (config_.bin_width <= 0 || config_.num_bins == 0) {
    throw std::invalid_argument("keep-alive policy: bad histogram shape");
  }
  if (config_.head_percentile < 0.0 || config_.tail_percentile > 100.0 ||
      config_.head_percentile >= config_.tail_percentile) {
    throw std::invalid_argument("keep-alive policy: bad percentiles");
  }
}

void HybridHistogramPolicy::record_invocation(FunctionId function,
                                              util::Nanos now) {
  FunctionHistory& history = histories_[function];
  if (history.bins.empty()) {
    history.bins.resize(config_.num_bins, 0);
  }
  if (history.last_arrival >= 0 && now >= history.last_arrival) {
    const util::Nanos idle = now - history.last_arrival;
    const auto bin = static_cast<std::size_t>(idle / config_.bin_width);
    if (bin < config_.num_bins) {
      ++history.bins[bin];
    } else {
      ++history.oob;
    }
    ++history.total;
  }
  history.last_arrival = now;
}

util::Nanos HybridHistogramPolicy::percentile_cutoff(
    const FunctionHistory& history, double percentile, BinEdge edge) const {
  // Percentile over the in-bounds histogram mass. The head cut-off
  // (pre-warm) takes the *lower* edge of the crossing bin — re-provision
  // before the earliest plausible arrival — while the tail cut-off
  // (keep-alive) takes the *upper* edge, covering the whole bin.
  const std::uint64_t in_bounds = history.total - history.oob;
  if (in_bounds == 0) {
    return 0;
  }
  const auto target = static_cast<std::uint64_t>(
      std::ceil(percentile / 100.0 * static_cast<double>(in_bounds)));
  std::uint64_t seen = 0;
  for (std::size_t bin = 0; bin < history.bins.size(); ++bin) {
    seen += history.bins[bin];
    if (seen >= std::max<std::uint64_t>(target, 1)) {
      const std::size_t boundary = edge == BinEdge::kLower ? bin : bin + 1;
      return static_cast<util::Nanos>(boundary) * config_.bin_width;
    }
  }
  return static_cast<util::Nanos>(history.bins.size()) * config_.bin_width;
}

KeepAliveDecision HybridHistogramPolicy::decide(FunctionId function) const {
  KeepAliveDecision decision;
  decision.keep_alive = config_.fallback_keep_alive;

  const auto it = histories_.find(function);
  if (it == histories_.end()) {
    return decision;
  }
  const FunctionHistory& history = it->second;
  if (history.total < config_.min_samples) {
    return decision;
  }
  const double oob_fraction =
      static_cast<double>(history.oob) / static_cast<double>(history.total);
  if (oob_fraction > config_.max_oob_fraction) {
    return decision;
  }

  const util::Nanos head =
      percentile_cutoff(history, config_.head_percentile, BinEdge::kLower);
  const util::Nanos tail =
      percentile_cutoff(history, config_.tail_percentile, BinEdge::kUpper);
  // Margins widen the kept window on both sides (pre-warm earlier,
  // keep longer), as in the ATC'20 policy.
  decision.prewarm_window = static_cast<util::Nanos>(
      static_cast<double>(head) * (1.0 - config_.margin));
  decision.keep_alive = std::max<util::Nanos>(
      config_.bin_width,
      static_cast<util::Nanos>(static_cast<double>(tail) *
                               (1.0 + config_.margin)) -
          decision.prewarm_window);
  decision.from_histogram = true;
  return decision;
}

std::size_t HybridHistogramPolicy::sample_count(FunctionId function) const {
  const auto it = histories_.find(function);
  return it == histories_.end() ? 0 : static_cast<std::size_t>(it->second.total);
}

std::size_t HybridHistogramPolicy::oob_count(FunctionId function) const {
  const auto it = histories_.find(function);
  return it == histories_.end() ? 0 : static_cast<std::size_t>(it->second.oob);
}

util::Nanos HybridHistogramPolicy::last_arrival(FunctionId function) const {
  const auto it = histories_.find(function);
  return it == histories_.end() ? -1 : it->second.last_arrival;
}

}  // namespace horse::faas
