#include "faas/dispatcher.hpp"

#include <stdexcept>
#include <utility>

namespace horse::faas {

Dispatcher::Dispatcher(Options options)
    : executor_(std::move(options.executor)),
      router_(std::move(options.router)),
      source_(options.source),
      max_sojourn_(options.max_sojourn) {
  if (!executor_) {
    throw std::invalid_argument("Dispatcher: executor is required");
  }
  const std::size_t count = options.workers == 0 ? 1 : options.workers;
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    auto worker = std::make_unique<Worker>();
    Worker* raw = worker.get();
    worker->thread = std::jthread([this, raw] {
      if (source_ != nullptr) {
        pull_worker_loop(*raw);
      } else {
        push_worker_loop(*raw);
      }
    });
    workers_.push_back(std::move(worker));
  }
}

Dispatcher::~Dispatcher() {
  shutdown_.store(true, std::memory_order_release);
  resume();  // a paused worker must wake to observe the shutdown
  for (auto& worker : workers_) {
    {
      std::lock_guard lock(worker->mutex);
      worker->shutting_down = true;
    }
    worker->work_available.notify_all();
  }
  // jthread members join on destruction of each Worker. Pull-mode owners
  // must have close()d the TaskSource by now (see header contract).
}

void Dispatcher::submit(Submission task) {
  if (source_ != nullptr) {
    throw std::logic_error(
        "Dispatcher: submit() is push-mode only; feed the TaskSource");
  }
  if (task.enqueued_at == 0) {
    task.enqueued_at = util::monotonic_now();
  }
  const std::size_t index =
      router_ ? router_(task.function) % workers_.size()
              : static_cast<std::size_t>(task.function) % workers_.size();
  Worker& worker = *workers_[index];
  pending_.fetch_add(1, std::memory_order_acq_rel);
  {
    std::lock_guard lock(worker.mutex);
    worker.tasks.push_back(std::move(task));
  }
  worker.work_available.notify_one();
}

void Dispatcher::push_worker_loop(Worker& worker) {
  std::unique_lock lock(worker.mutex);
  while (true) {
    worker.work_available.wait(lock, [this, &worker] {
      return worker.shutting_down ||
             (!worker.tasks.empty() &&
              !paused_.load(std::memory_order_acquire));
    });
    if (worker.tasks.empty()) {
      if (worker.shutting_down) {
        return;
      }
      continue;
    }
    Submission task = std::move(worker.tasks.front());
    worker.tasks.pop_front();
    worker.busy = true;
    // in_flight rises before pending falls so occupancy sums never dip.
    in_flight_.fetch_add(1, std::memory_order_acq_rel);
    pending_.fetch_sub(1, std::memory_order_acq_rel);
    lock.unlock();

    execute_and_record(worker, std::move(task));

    lock.lock();
    worker.busy = false;
    if (worker.tasks.empty()) {
      worker.idle.notify_all();
    }
  }
}

void Dispatcher::pull_worker_loop(Worker& worker) {
  while (true) {
    if (paused_.load(std::memory_order_acquire)) {
      std::unique_lock lock(pause_mutex_);
      pause_cv_.wait(lock, [this] {
        return !paused_.load(std::memory_order_acquire) ||
               shutdown_.load(std::memory_order_acquire);
      });
    }
    // Late binding: the pop only happens on an idle worker, so a pull
    // host by construction never accepts work without a free slot.
    Submission task;
    if (!source_->wait_pop(task)) {
      return;  // source closed and drained
    }
    in_flight_.fetch_add(1, std::memory_order_acq_rel);
    {
      std::lock_guard lock(worker.mutex);
      worker.busy = true;
    }

    execute_and_record(worker, std::move(task));

    {
      std::lock_guard lock(worker.mutex);
      worker.busy = false;
    }
    worker.idle.notify_all();
  }
}

void Dispatcher::execute_and_record(Worker& worker, Submission task) {
  SubmissionOutcome outcome;
  outcome.function = task.function;
  outcome.mode = task.mode;
  outcome.seq = task.seq;
  outcome.key = task.key;
  // Chain identity rides along so even an expire-at-dequeue refusal below
  // reports which workflow (and frontier hop) it refused.
  outcome.workflow = task.workflow;
  outcome.chain_first_hop = task.hop;
  // One clock read covers the queueing measurement, the deadline check,
  // and the sojourn check; the executor's own timing is the record's
  // business.
  const util::Nanos now = util::monotonic_now();
  outcome.queueing = now - task.enqueued_at;
  // Expire-at-dequeue (CoDel-style): a task whose deadline passed — or
  // that sat queued past the sojourn cap — is refused HERE, before a
  // worker is wasted executing work nobody is waiting for. The typed
  // outcome is still recorded and counts toward completed(), so the
  // frontend's lossless submitted-vs-completed accounting holds.
  const bool deadline_passed = task.deadline != 0 && now >= task.deadline;
  const bool sojourn_exceeded =
      max_sojourn_ != 0 && outcome.queueing > max_sojourn_;
  if (deadline_passed || sojourn_exceeded) {
    outcome.status =
        util::Status{util::StatusCode::kDeadlineExceeded,
                     deadline_passed ? "dispatcher: deadline expired in queue"
                                     : "dispatcher: sojourn cap exceeded"};
    outcome.reject = SubmissionReject::kDeadlineExpired;
    expired_.fetch_add(1, std::memory_order_acq_rel);
    {
      std::lock_guard lock(worker.mutex);
      worker.outcomes.push_back(std::move(outcome));
      in_flight_.fetch_sub(1, std::memory_order_acq_rel);
      completed_.fetch_add(1, std::memory_order_acq_rel);
    }
    return;
  }
  executor_(std::move(task), outcome);
  {
    std::lock_guard lock(worker.mutex);
    worker.outcomes.push_back(std::move(outcome));
    // Ordered under the outcome lock: by the time a frontend's accounting
    // observes the completion, the outcome is drainable.
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    completed_.fetch_add(1, std::memory_order_acq_rel);
  }
}

void Dispatcher::wait_idle() {
  for (auto& worker : workers_) {
    std::unique_lock lock(worker->mutex);
    worker->idle.wait(lock, [&worker] {
      return worker->tasks.empty() && !worker->busy;
    });
  }
}

std::vector<SubmissionOutcome> Dispatcher::take_outcomes() {
  std::vector<SubmissionOutcome> out;
  for (auto& worker : workers_) {
    std::lock_guard lock(worker->mutex);
    for (auto& outcome : worker->outcomes) {
      out.push_back(std::move(outcome));
    }
    worker->outcomes.clear();
  }
  return out;
}

std::vector<SubmissionOutcome> Dispatcher::drain() {
  wait_idle();
  return take_outcomes();
}

void Dispatcher::pause() {
  paused_.store(true, std::memory_order_release);
  // No notification needed: workers already waiting re-check on their
  // next wakeup, and running workers observe the flag before dequeuing.
}

void Dispatcher::resume() {
  paused_.store(false, std::memory_order_release);
  {
    std::lock_guard lock(pause_mutex_);
  }
  pause_cv_.notify_all();
  for (auto& worker : workers_) {
    {
      std::lock_guard lock(worker->mutex);
    }
    worker->work_available.notify_all();
  }
}

std::vector<Submission> Dispatcher::steal_pending() {
  std::vector<Submission> stolen;
  for (auto& worker : workers_) {
    std::lock_guard lock(worker->mutex);
    for (auto& task : worker->tasks) {
      stolen.push_back(std::move(task));
    }
    if (!worker->tasks.empty()) {
      pending_.fetch_sub(worker->tasks.size(), std::memory_order_acq_rel);
      worker->tasks.clear();
    }
  }
  return stolen;
}

std::size_t Dispatcher::free_slots() const noexcept {
  const std::size_t busy = in_flight_.load(std::memory_order_acquire) +
                           pending_.load(std::memory_order_acquire);
  const std::size_t cap = workers_.size();
  return busy >= cap ? 0 : cap - busy;
}

}  // namespace horse::faas
