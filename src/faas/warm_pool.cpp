#include "faas/warm_pool.hpp"

#include "util/fault_injection.hpp"

namespace horse::faas {

util::Status WarmPool::put(FunctionId function,
                           std::unique_ptr<vmm::Sandbox> sandbox,
                           util::Nanos now,
                           std::unique_ptr<vmm::Sandbox>* rejected) {
  if (sandbox == nullptr || sandbox->state() != vmm::SandboxState::kPaused) {
    if (rejected != nullptr) {
      *rejected = std::move(sandbox);
    }
    return {util::StatusCode::kFailedPrecondition,
            "warm pool: only paused sandboxes can be pooled"};
  }
  auto& pool = pools_[function];
  if (pool.size() >= config_.max_per_function ||
      HORSE_FAULT_POINT("warm_pool.park.reject")) {
    // Cap overflow (or an injected park rejection — e.g. cgroup memory
    // pressure in a real platform). The sandbox goes back to the caller
    // for a proper teardown; quietly destroying it here would leak its
    // engine-side tracking state.
    if (rejected != nullptr) {
      *rejected = std::move(sandbox);
    }
    return {util::StatusCode::kResourceExhausted,
            "warm pool: per-function cap reached"};
  }
  pool.push_back(Entry{std::move(sandbox), now});
  ++total_;
  return util::Status::ok();
}

std::unique_ptr<vmm::Sandbox> WarmPool::take(FunctionId function) {
  if (HORSE_FAULT_POINT("warm_pool.take.miss")) {
    // Injected miss: the pool's accounting is untouched — the entry stays
    // parked, the caller simply doesn't get it (as if a health probe had
    // failed at take time).
    return nullptr;
  }
  const auto it = pools_.find(function);
  if (it == pools_.end() || it->second.empty()) {
    return nullptr;
  }
  // LIFO: the most recently parked sandbox has the warmest caches.
  Entry entry = std::move(it->second.back());
  it->second.pop_back();
  --total_;
  return std::move(entry.sandbox);
}

std::vector<std::unique_ptr<vmm::Sandbox>> WarmPool::evict_expired(
    util::Nanos now) {
  std::vector<std::unique_ptr<vmm::Sandbox>> evicted;
  for (auto& [function, pool] : pools_) {
    const std::size_t floor = provisioned_floor(function);
    const util::Nanos keep_alive = keep_alive_for(function);
    // Oldest entries are at the front (put appends, take pops the back).
    while (pool.size() > floor && !pool.empty() &&
           now - pool.front().parked_at > keep_alive) {
      evicted.push_back(std::move(pool.front().sandbox));
      pool.pop_front();
      --total_;
    }
  }
  return evicted;
}

std::vector<std::unique_ptr<vmm::Sandbox>> WarmPool::evict_all() {
  std::vector<std::unique_ptr<vmm::Sandbox>> evicted;
  for (auto& [function, pool] : pools_) {
    for (Entry& entry : pool) {
      evicted.push_back(std::move(entry.sandbox));
      --total_;
    }
    pool.clear();
  }
  return evicted;
}

std::size_t WarmPool::available(FunctionId function) const {
  const auto it = pools_.find(function);
  return it == pools_.end() ? 0 : it->second.size();
}

}  // namespace horse::faas
