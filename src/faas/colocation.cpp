#include "faas/colocation.hpp"

#include <algorithm>
#include <functional>
#include <unordered_map>

#include "metrics/time_series.hpp"
#include "sched/credit2.hpp"
#include "sched/dvfs.hpp"
#include "sched/energy.hpp"
#include "sched/topology.hpp"
#include "sim/cpu_executor.hpp"
#include "sim/simulation.hpp"

namespace horse::faas {

trace::ArrivalSchedule default_thumbnail_arrivals(util::Nanos duration,
                                                  std::uint64_t seed) {
  trace::SyntheticTraceParams params;
  params.num_functions = 20;
  params.num_minutes = static_cast<std::uint32_t>(
      std::max<util::Nanos>(1, duration / (60 * util::kSecond) + 1));
  params.top_rate_per_minute = 240.0;  // ~4 thumbnail triggers per second
  params.seed = seed;
  trace::SyntheticAzureTrace generator(params);
  const auto full = generator.generate_schedule();

  // Keep the single busiest function, as the paper triggers one function
  // (the SEBS thumbnail generator) with trace-derived arrival times.
  std::unordered_map<std::uint32_t, std::size_t> counts;
  for (const auto& arrival : full.arrivals()) {
    ++counts[arrival.function_id];
  }
  std::uint32_t busiest = 0;
  std::size_t best = 0;
  for (const auto& [id, count] : counts) {
    if (count > best) {
      best = count;
      busiest = id;
    }
  }
  std::vector<trace::Arrival> filtered;
  for (const auto& arrival : full.arrivals()) {
    if (arrival.function_id == busiest && arrival.time < duration) {
      filtered.push_back(trace::Arrival{arrival.time, 0});
    }
  }
  return trace::ArrivalSchedule(std::move(filtered));
}

ColocationExperiment::ColocationExperiment(ColocationParams params,
                                           const sim::CostModel& costs)
    : params_(params), costs_(costs) {}

ColocationResult ColocationExperiment::run() {
  return run(default_thumbnail_arrivals(params_.duration, params_.seed));
}

ColocationResult ColocationExperiment::run(
    const trace::ArrivalSchedule& arrivals) {
  sim::Simulation sim;
  sched::CpuTopology topology(params_.num_cpus);
  const bool horse = params_.mode == ColocationMode::kHorse;

  std::vector<sched::CpuId> general_cpus;
  std::vector<sched::CpuId> ull_cpus;
  if (horse) {
    for (std::size_t i = 0; i < params_.num_ull_queues; ++i) {
      const auto cpu = static_cast<sched::CpuId>(params_.num_cpus - 1 - i);
      topology.reserve_for_ull(cpu);
      ull_cpus.push_back(cpu);
    }
  }
  for (sched::CpuId cpu = 0; cpu < topology.num_cpus(); ++cpu) {
    if (!topology.is_reserved(cpu)) {
      general_cpus.push_back(cpu);
    }
  }

  sched::Credit2Params sched_params;
  sched_params.short_function_first = params_.short_function_first;
  sched_params.preemption_resistance = params_.preemption_resistance;
  sched::Credit2Scheduler scheduler(topology, sched_params);
  sim::CpuExecutor executor(sim, scheduler);
  executor.set_wake_preemption(params_.wake_preemption);
  util::Xoshiro256 rng(params_.seed);
  trace::DurationSampler durations(params_.thumbnail_durations,
                                   params_.seed + 1);
  metrics::SampleStats latencies;
  metrics::SampleStats ull_latencies;

  // Live vCPU storage: one per in-flight task, reclaimed on completion.
  std::unordered_map<sched::Vcpu*, std::unique_ptr<sched::Vcpu>> live;
  std::uint32_t next_vcpu_id = 1;

  auto make_vcpu = [&]() -> sched::Vcpu& {
    auto vcpu = std::make_unique<sched::Vcpu>();
    vcpu->id = next_vcpu_id++;
    sched::Vcpu& ref = *vcpu;
    live.emplace(&ref, std::move(vcpu));
    return ref;
  };

  // Placement by queue occupancy (runnable count) rather than PELT load:
  // with no decay ticks in this reduced model, load would only accumulate
  // and amplify placement noise under heavy-tailed service times.
  auto pick_general = [&]() -> sched::CpuId {
    sched::CpuId best = general_cpus.front();
    std::size_t best_depth = topology.queue(best).size() +
                             (executor.idle(best) ? 0 : 1);
    for (const sched::CpuId cpu : general_cpus) {
      const std::size_t depth =
          topology.queue(cpu).size() + (executor.idle(cpu) ? 0 : 1);
      if (depth < best_depth) {
        best = cpu;
        best_depth = depth;
      }
    }
    return best;
  };

  // --- thumbnail invocations --------------------------------------------
  for (const auto& arrival : arrivals.arrivals()) {
    if (arrival.time >= params_.duration) {
      continue;
    }
    sim.schedule_at(arrival.time, [&, arrival] {
      const util::Nanos resume =
          costs_.init_warm(params_.thumbnail_vcpus);
      const sched::CpuId cpu = pick_general();
      // The warm resume stalls the target queue for its duration.
      executor.block_cpu(cpu, resume);
      const util::Nanos service = durations.sample();
      const util::Nanos started = arrival.time;
      sim.schedule_after(resume, [&, cpu, service, started] {
        sched::Vcpu& vcpu = make_vcpu();
        executor.submit(vcpu, cpu, service, [&, started](sched::Vcpu& done) {
          latencies.add(static_cast<double>(sim.now() - started));
          live.erase(&done);
        });
      });
    });
  }

  // --- uLL resume bursts ---------------------------------------------------
  std::uint64_t ull_triggers = 0;
  const auto seconds =
      static_cast<std::uint64_t>(params_.duration / util::kSecond);
  for (std::uint64_t s = 0; s < seconds; ++s) {
    for (std::uint32_t k = 0; k < params_.ull_per_second; ++k) {
      const util::Nanos when =
          static_cast<util::Nanos>(s) * util::kSecond +
          static_cast<util::Nanos>(rng.uniform01() * 0.9 * util::kSecond);
      sim.schedule_at(when, [&, when] {
        ++ull_triggers;
        if (horse) {
          const util::Nanos resume = costs_.horse_resume(params_.ull_vcpus);
          const sched::CpuId target = ull_cpus.front();
          executor.block_cpu(target, resume);
          // 𝒫²𝒮ℳ merge threads preempt general CPUs, one per run chunk.
          const std::size_t merge_threads = std::min<std::size_t>(
              params_.ull_vcpus, general_cpus.size());
          for (std::size_t m = 0; m < merge_threads; ++m) {
            const auto victim = general_cpus[rng.bounded(general_cpus.size())];
            executor.block_cpu(victim, params_.merge_preempt_cost);
          }
          sim.schedule_after(resume, [&, target, when] {
            sched::Vcpu& vcpu = make_vcpu();
            vcpu.ull = true;
            executor.submit(vcpu, target, params_.ull_exec,
                            [&, when](sched::Vcpu& done) {
                              ull_latencies.add(
                                  static_cast<double>(sim.now() - when));
                              live.erase(&done);
                            });
          });
        } else {
          const util::Nanos resume = costs_.init_warm(params_.ull_vcpus);
          // Vanilla: the per-vCPU inserts hit the general queues.
          const std::uint32_t spread =
              std::min<std::uint32_t>(params_.ull_vcpus,
                                      static_cast<std::uint32_t>(general_cpus.size()));
          const util::Nanos share = resume / std::max<std::uint32_t>(1, spread);
          for (std::uint32_t m = 0; m < spread; ++m) {
            executor.block_cpu(general_cpus[rng.bounded(general_cpus.size())],
                               share);
          }
          const sched::CpuId cpu = pick_general();
          sim.schedule_after(resume, [&, cpu, when] {
            sched::Vcpu& vcpu = make_vcpu();
            vcpu.ull = true;
            executor.submit(vcpu, cpu, params_.ull_exec,
                            [&, when](sched::Vcpu& done) {
                              ull_latencies.add(
                                  static_cast<double>(sim.now() - when));
                              live.erase(&done);
                            });
          });
        }
      });
    }
  }

  // --- DVFS sampling ------------------------------------------------------
  // Every 100 ms the governor re-evaluates each queue's PELT load (idle
  // queues decay in between, as scheduler ticks would make them).
  sched::DvfsGovernor governor;
  std::vector<metrics::TimeSeries> freq_traces(topology.num_cpus());
  constexpr util::Nanos kDvfsInterval = 100 * util::kMillisecond;
  constexpr std::uint32_t kPeltPeriodsPerSample = 100;  // 1 ms PELT period
  std::function<void()> sample_dvfs = [&] {
    for (sched::CpuId cpu = 0; cpu < topology.num_cpus(); ++cpu) {
      sched::RunQueue& queue = topology.queue(cpu);
      if (queue.empty() && executor.idle(cpu)) {
        queue.decay_load(kPeltPeriodsPerSample);
      } else {
        // A runnable entity accumulates PELT contribution every period it
        // stays on the queue; the closed form applies all periods since
        // the last sample at once (the same arithmetic HORSE coalesces).
        queue.update_load_coalesced(kPeltPeriodsPerSample);
      }
      freq_traces[cpu].record(
          sim.now(),
          static_cast<double>(governor.target_freq_khz(queue.load())));
    }
    if (sim.now() < params_.duration) {
      sim.schedule_after(kDvfsInterval, sample_dvfs);
    }
  };
  sim.schedule_at(0, sample_dvfs);

  // Run past the window so queued work drains.
  sim.run();

  ColocationResult result;
  const auto summary = latencies.summarize();
  result.mean_ns = summary.mean;
  result.p95_ns = latencies.percentile(95.0);
  result.p99_ns = latencies.percentile(99.0);
  result.completed = latencies.size();
  result.preemptions = executor.preemptions();
  result.ull_triggers = ull_triggers;
  result.ull_mean_ns = ull_latencies.summarize().mean;
  result.ull_p99_ns = ull_latencies.percentile(99.0);
  result.ull_completed = ull_latencies.size();

  sched::EnergyModel energy;
  double joules = 0.0;
  double freq_sum = 0.0;
  for (sched::CpuId cpu = 0; cpu < topology.num_cpus(); ++cpu) {
    joules += energy.energy_of_trace(freq_traces[cpu], params_.duration);
    freq_sum += freq_traces[cpu].time_weighted_mean(params_.duration);
  }
  result.energy_joules = joules;
  result.mean_freq_khz = freq_sum / static_cast<double>(topology.num_cpus());
  return result;
}

}  // namespace horse::faas
