// Background CPU load (§5.2 runs "10 1-vCPU sandboxes each running a
// CPU-intensive application with sysbench"). sysbench's classic CPU test
// is a prime search; this is the same loop, bounded either by a prime
// target or a time budget.
#pragma once

#include "workloads/function.hpp"

namespace horse::workloads {

class CpuBurnerFunction final : public Function {
 public:
  /// `prime_limit` bounds the search (sysbench's --cpu-max-prime).
  explicit CpuBurnerFunction(std::uint32_t prime_limit = 20'000)
      : prime_limit_(prime_limit) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "cpu-burner";
  }
  [[nodiscard]] Category category() const noexcept override {
    return Category::kBackground;
  }
  [[nodiscard]] util::Nanos nominal_duration() const noexcept override {
    return 10 * util::kMillisecond;
  }

  /// request.threshold > 0 overrides the prime limit.
  Response invoke(const Request& request) override;

  [[nodiscard]] static std::uint32_t count_primes_below(std::uint32_t limit);

 private:
  std::uint32_t prime_limit_;
};

}  // namespace horse::workloads
