// Category-2 uLL workload (§2): a NAT that "changes a request header based
// on pre-registered routing rules" — the second NFV use case. A hash
// lookup on (dst, port) followed by an in-place header rewrite; ~1.5 µs.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "workloads/firewall.hpp"  // PacketHeader / parse_header
#include "workloads/function.hpp"

namespace horse::workloads {

struct NatRule {
  std::uint32_t new_dst = 0;
  std::uint16_t new_port = 0;
};

class NatFunction final : public Function {
 public:
  explicit NatFunction(std::size_t num_rules = 1024, std::uint64_t seed = 13);

  [[nodiscard]] std::string_view name() const noexcept override {
    return "nat-rewrite";
  }
  [[nodiscard]] Category category() const noexcept override {
    return Category::kCategory2;
  }
  [[nodiscard]] util::Nanos nominal_duration() const noexcept override {
    return 1'500;  // 1.5 µs, Table 1 Category 2
  }

  Response invoke(const Request& request) override;

  void add_rule(std::uint32_t dst, std::uint16_t port, NatRule rule);
  [[nodiscard]] std::size_t rule_count() const noexcept { return rules_.size(); }

 private:
  static std::uint64_t key_of(std::uint32_t dst, std::uint16_t port) noexcept {
    return (static_cast<std::uint64_t>(dst) << 16) | port;
  }

  std::unordered_map<std::uint64_t, NatRule> rules_;
};

}  // namespace horse::workloads
