#include "workloads/firewall.hpp"

#include <charconv>

#include "util/rng.hpp"

namespace horse::workloads {

namespace {

bool parse_ipv4(std::string_view text, std::uint32_t& out) noexcept {
  std::uint32_t value = 0;
  int octets = 0;
  const char* cursor = text.data();
  const char* end = text.data() + text.size();
  while (octets < 4) {
    std::uint32_t octet = 0;
    const auto result = std::from_chars(cursor, end, octet);
    if (result.ec != std::errc{} || octet > 255) {
      return false;
    }
    value = (value << 8) | octet;
    cursor = result.ptr;
    ++octets;
    if (octets < 4) {
      if (cursor == end || *cursor != '.') {
        return false;
      }
      ++cursor;
    }
  }
  if (cursor != end) {
    return false;
  }
  out = value;
  return true;
}

std::string_view field_after(std::string_view header,
                             std::string_view key) noexcept {
  const std::size_t pos = header.find(key);
  if (pos == std::string_view::npos) {
    return {};
  }
  const std::size_t start = pos + key.size();
  std::size_t stop = header.find(' ', start);
  if (stop == std::string_view::npos) {
    stop = header.size();
  }
  return header.substr(start, stop - start);
}

}  // namespace

PacketHeader parse_header(std::string_view header) noexcept {
  PacketHeader out;
  const std::string_view src = field_after(header, "src=");
  const std::string_view dst = field_after(header, "dst=");
  const std::string_view port = field_after(header, "port=");
  const std::string_view proto = field_after(header, "proto=");
  if (src.empty() || dst.empty() || port.empty() || proto.empty()) {
    return out;
  }
  if (!parse_ipv4(src, out.src) || !parse_ipv4(dst, out.dst)) {
    return out;
  }
  std::uint32_t port_value = 0;
  const auto result =
      std::from_chars(port.data(), port.data() + port.size(), port_value);
  if (result.ec != std::errc{} || port_value > 65535) {
    return out;
  }
  out.port = static_cast<std::uint16_t>(port_value);
  if (proto == "tcp") {
    out.proto = 6;
  } else if (proto == "udp") {
    out.proto = 17;
  } else {
    return out;
  }
  out.valid = true;
  return out;
}

FirewallFunction::FirewallFunction(std::size_t num_rules, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  rules_.reserve(num_rules);
  for (std::size_t i = 0; i < num_rules; ++i) {
    FirewallRule rule;
    rule.src_prefix = static_cast<std::uint32_t>(rng());
    const unsigned prefix_len = 8 + static_cast<unsigned>(rng.bounded(17));
    rule.src_mask = prefix_len == 0 ? 0 : ~0U << (32 - prefix_len);
    rule.src_prefix &= rule.src_mask;
    rule.dst_addr = static_cast<std::uint32_t>(rng());
    rule.port_lo = static_cast<std::uint16_t>(rng.bounded(60000));
    rule.port_hi = static_cast<std::uint16_t>(
        rule.port_lo + static_cast<std::uint16_t>(rng.bounded(1024)));
    rule.proto = rng.bounded(2) == 0 ? 6 : 17;
    rules_.push_back(rule);
  }
}

Response FirewallFunction::invoke(const Request& request) {
  Response response;
  const PacketHeader header = parse_header(request.header);
  if (!header.valid) {
    response.allowed = false;
    return response;
  }
  // Linear rule scan — the "static allow list" query. First match wins.
  std::uint64_t fingerprint = 0;
  for (const FirewallRule& rule : rules_) {
    fingerprint += rule.src_prefix;  // keeps the full scan observable
    if (rule.proto == header.proto &&
        (header.src & rule.src_mask) == rule.src_prefix &&
        rule.dst_addr == header.dst && header.port >= rule.port_lo &&
        header.port <= rule.port_hi) {
      response.allowed = true;
      break;
    }
  }
  response.checksum = fingerprint ^ header.src ^ header.dst;
  return response;
}

}  // namespace horse::workloads
