#include "workloads/array_filter.hpp"

#include "util/rng.hpp"

namespace horse::workloads {

Response ArrayFilterFunction::invoke(const Request& request) {
  Response response;
  response.indexes.reserve(request.payload.size() / 4);
  std::uint64_t checksum = 0;
  for (std::size_t i = 0; i < request.payload.size(); ++i) {
    if (request.payload[i] > request.threshold) {
      response.indexes.push_back(static_cast<std::int32_t>(i));
      checksum += i;
    }
  }
  response.allowed = !response.indexes.empty();
  response.checksum = checksum;
  return response;
}

std::vector<std::int32_t> ArrayFilterFunction::default_payload(
    std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::int32_t> payload;
  payload.reserve(kDefaultArraySize);
  for (std::size_t i = 0; i < kDefaultArraySize; ++i) {
    payload.push_back(static_cast<std::int32_t>(rng.bounded(1'000'000)));
  }
  return payload;
}

}  // namespace horse::workloads
