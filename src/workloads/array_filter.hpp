// Category-3 uLL workload (§2): "given an array composed of 3000 integers,
// retrieve the indexes of all the elements in the array that are larger
// than an integer parameter passed during the workload trigger" — the kind
// of primitive used inside image-transformation pipelines. Hundreds of ns.
#pragma once

#include "workloads/function.hpp"

namespace horse::workloads {

class ArrayFilterFunction final : public Function {
 public:
  static constexpr std::size_t kDefaultArraySize = 3000;

  ArrayFilterFunction() = default;

  [[nodiscard]] std::string_view name() const noexcept override {
    return "array-index-filter";
  }
  [[nodiscard]] Category category() const noexcept override {
    return Category::kCategory3;
  }
  [[nodiscard]] util::Nanos nominal_duration() const noexcept override {
    return 700;  // 0.7 µs, Table 1 Category 3
  }

  Response invoke(const Request& request) override;

  /// Deterministic default payload of 3000 integers for callers that do
  /// not bring their own.
  [[nodiscard]] static std::vector<std::int32_t> default_payload(
      std::uint64_t seed = 17);
};

}  // namespace horse::workloads
