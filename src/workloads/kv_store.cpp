#include "workloads/kv_store.hpp"

#include "util/rng.hpp"

namespace horse::workloads {

KvStoreFunction::KvStoreFunction(std::size_t num_keys, std::size_t value_size,
                                 std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  store_.reserve(num_keys);
  std::string value(value_size, 'x');
  for (std::size_t i = 0; i < num_keys; ++i) {
    for (auto& byte : value) {
      byte = static_cast<char>('a' + rng.bounded(26));
    }
    store_.emplace(key_name(i), value);
  }
}

Response KvStoreFunction::invoke(const Request& request) {
  Response response;
  const std::string& command = request.header;
  if (command.rfind("GET ", 0) == 0) {
    const std::string key = command.substr(4);
    const auto it = store_.find(key);
    if (it != store_.end()) {
      response.allowed = true;
      response.rewritten_header = it->second;
      std::uint64_t checksum = 1469598103934665603ULL;
      for (const char c : it->second) {
        checksum = (checksum ^ static_cast<unsigned char>(c)) *
                   1099511628211ULL;
      }
      response.checksum = checksum;
    }
    return response;
  }
  if (command.rfind("SET ", 0) == 0) {
    const std::size_t space = command.find(' ', 4);
    if (space == std::string::npos || space + 1 >= command.size()) {
      return response;  // malformed SET
    }
    store_[command.substr(4, space - 4)] = command.substr(space + 1);
    response.allowed = true;
    response.checksum = store_.size();
    return response;
  }
  return response;  // unknown command: allowed=false
}

}  // namespace horse::workloads
