// Category-1 uLL workload (§2): a stateless firewall that "takes a request
// header as input and determines whether the request should go through by
// querying a static allow list". A common NFV use case.
//
// The allow list is a set of (source prefix, destination, port, protocol)
// rules; matching walks the rules for the parsed header's protocol class,
// doing real byte comparisons — enough work to land in the paper's
// <= 20 µs band on server-class hardware.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "workloads/function.hpp"

namespace horse::workloads {

struct FirewallRule {
  std::uint32_t src_prefix = 0;   // network byte-order prefix
  std::uint32_t src_mask = 0;
  std::uint32_t dst_addr = 0;
  std::uint16_t port_lo = 0;
  std::uint16_t port_hi = 0;
  std::uint8_t proto = 0;  // 6 = tcp, 17 = udp
};

/// Parsed form of the textual request header.
struct PacketHeader {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint16_t port = 0;
  std::uint8_t proto = 0;
  bool valid = false;
};

/// Parse "src=a.b.c.d dst=a.b.c.d port=N proto=tcp|udp".
[[nodiscard]] PacketHeader parse_header(std::string_view header) noexcept;

class FirewallFunction final : public Function {
 public:
  /// `num_rules` controls the allow-list size (default sized for the
  /// Category-1 execution band).
  explicit FirewallFunction(std::size_t num_rules = 4096,
                            std::uint64_t seed = 11);

  [[nodiscard]] std::string_view name() const noexcept override {
    return "stateless-firewall";
  }
  [[nodiscard]] Category category() const noexcept override {
    return Category::kCategory1;
  }
  [[nodiscard]] util::Nanos nominal_duration() const noexcept override {
    return 17 * util::kMicrosecond;  // Table 1, Category 1
  }

  Response invoke(const Request& request) override;

  [[nodiscard]] std::size_t rule_count() const noexcept { return rules_.size(); }

  /// Install an explicit allow rule (tests use this for determinism).
  void add_rule(const FirewallRule& rule) { rules_.push_back(rule); }

 private:
  std::vector<FirewallRule> rules_;
};

}  // namespace horse::workloads
