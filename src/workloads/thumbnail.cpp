#include "workloads/thumbnail.hpp"

#include "util/rng.hpp"

namespace horse::workloads {

Image Image::synthetic(std::uint32_t width, std::uint32_t height,
                       std::uint64_t seed) {
  Image image;
  image.width = width;
  image.height = height;
  image.rgb.resize(static_cast<std::size_t>(width) * height * 3);
  util::Xoshiro256 rng(seed);
  // Smooth gradient + noise: compressible structure like a photo, not
  // uniform bytes.
  std::size_t i = 0;
  for (std::uint32_t y = 0; y < height; ++y) {
    for (std::uint32_t x = 0; x < width; ++x) {
      image.rgb[i++] = static_cast<std::uint8_t>((x * 255) / width);
      image.rgb[i++] = static_cast<std::uint8_t>((y * 255) / height);
      image.rgb[i++] = static_cast<std::uint8_t>(rng.bounded(256));
    }
  }
  return image;
}

Image downscale(const Image& source, std::uint32_t factor) {
  Image out;
  if (factor == 0 || source.width < factor || source.height < factor) {
    return out;
  }
  out.width = source.width / factor;
  out.height = source.height / factor;
  out.rgb.resize(static_cast<std::size_t>(out.width) * out.height * 3);
  for (std::uint32_t oy = 0; oy < out.height; ++oy) {
    for (std::uint32_t ox = 0; ox < out.width; ++ox) {
      std::uint32_t acc[3] = {0, 0, 0};
      for (std::uint32_t dy = 0; dy < factor; ++dy) {
        const std::uint32_t sy = oy * factor + dy;
        const std::size_t row =
            (static_cast<std::size_t>(sy) * source.width + ox * factor) * 3;
        for (std::uint32_t dx = 0; dx < factor; ++dx) {
          acc[0] += source.rgb[row + dx * 3];
          acc[1] += source.rgb[row + dx * 3 + 1];
          acc[2] += source.rgb[row + dx * 3 + 2];
        }
      }
      const std::uint32_t area = factor * factor;
      const std::size_t at =
          (static_cast<std::size_t>(oy) * out.width + ox) * 3;
      out.rgb[at] = static_cast<std::uint8_t>(acc[0] / area);
      out.rgb[at + 1] = static_cast<std::uint8_t>(acc[1] / area);
      out.rgb[at + 2] = static_cast<std::uint8_t>(acc[2] / area);
    }
  }
  return out;
}

ThumbnailFunction::ThumbnailFunction(std::uint32_t source_dim,
                                     std::uint32_t thumb_factor,
                                     std::uint64_t seed)
    : factor_(thumb_factor), durations_({}, seed) {
  // A few distinct "S3 objects".
  for (std::uint64_t i = 0; i < 4; ++i) {
    sources_.push_back(Image::synthetic(source_dim, source_dim, seed + i));
  }
}

Response ThumbnailFunction::invoke(const Request& request) {
  Response response;
  const auto& source =
      sources_[static_cast<std::size_t>(request.threshold) % sources_.size()];
  last_ = downscale(source, factor_);
  std::uint64_t checksum = 0xcbf29ce484222325ULL;
  for (std::uint8_t byte : last_.rgb) {
    checksum = (checksum ^ byte) * 0x100000001b3ULL;
  }
  response.checksum = checksum;
  response.allowed = !last_.rgb.empty();
  return response;
}

util::Nanos ThumbnailFunction::sample_service_time(util::Xoshiro256& rng) {
  (void)rng;  // the sampler owns its deterministic stream
  return durations_.sample();
}

}  // namespace horse::workloads
