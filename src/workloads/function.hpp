// Function interface: what the FaaS platform runs inside a sandbox.
//
// Each workload exists in two planes, matching the repository's split:
//   * invoke() executes the real computation (a real allow-list lookup, a
//     real header rewrite, ...) so micro-benchmarks time genuine work;
//   * sample_service_time() draws a virtual-time duration for the
//     discrete-event experiments, with distributions anchored at the
//     paper's reported execution times (Table 1: 17 µs / 1.5 µs / 0.7 µs).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/rng.hpp"
#include "util/time.hpp"

namespace horse::workloads {

/// The paper's workload classes (§2) plus the colocation roles of §5.
enum class Category : std::uint8_t {
  kCategory1,    // uLL, <= 20 µs (stateless firewall)
  kCategory2,    // uLL, <= 1.5 µs (NAT header rewrite)
  kCategory3,    // uLL, hundreds of ns (array index filter)
  kLongRunning,  // > 100 ms (thumbnail generation)
  kBackground,   // CPU burner (sysbench stand-in)
};

[[nodiscard]] constexpr bool is_ull(Category category) noexcept {
  return category == Category::kCategory1 || category == Category::kCategory2 ||
         category == Category::kCategory3;
}

[[nodiscard]] constexpr std::string_view to_string(Category category) noexcept {
  switch (category) {
    case Category::kCategory1: return "category1";
    case Category::kCategory2: return "category2";
    case Category::kCategory3: return "category3";
    case Category::kLongRunning: return "long-running";
    case Category::kBackground: return "background";
  }
  return "unknown";
}

struct Request {
  /// Textual request header, e.g. "src=10.2.3.4 dst=10.0.0.1 port=443
  /// proto=tcp" (firewall and NAT input).
  std::string header;
  /// Integer payload (array-filter input).
  std::vector<std::int32_t> payload;
  std::int32_t threshold = 0;
};

struct Response {
  bool allowed = false;
  std::string rewritten_header;
  std::vector<std::int32_t> indexes;
  /// Work fingerprint so benchmark loops cannot be optimised away and
  /// tests can assert determinism.
  std::uint64_t checksum = 0;
};

class Function {
 public:
  virtual ~Function() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  [[nodiscard]] virtual Category category() const noexcept = 0;

  /// Execute the real computation.
  virtual Response invoke(const Request& request) = 0;

  /// Nominal execution time (the paper's "Average Execution" row).
  [[nodiscard]] virtual util::Nanos nominal_duration() const noexcept = 0;

  /// Virtual-time service duration for the simulation plane. Default: a
  /// ±15% uniform band around the nominal duration.
  [[nodiscard]] virtual util::Nanos sample_service_time(util::Xoshiro256& rng) {
    const double jitter = 0.85 + 0.3 * rng.uniform01();
    return static_cast<util::Nanos>(
        static_cast<double>(nominal_duration()) * jitter);
  }
};

}  // namespace horse::workloads
