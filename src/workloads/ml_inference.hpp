// uLL workload: tiny ML inference (logistic scorer).
//
// §1 cites "machine learning (ML) inference tasks" running "every
// request, every microsecond" at CDN edges. The representative kernel is
// a dense dot product plus sigmoid over a small feature vector — a linear
// model of the size those systems actually deploy per-request. Execution
// sits at the Category-1/2 boundary depending on the feature width.
#pragma once

#include <cstdint>
#include <vector>

#include "workloads/function.hpp"

namespace horse::workloads {

class MlInferenceFunction final : public Function {
 public:
  /// A model with `features` weights (random, seeded, fixed thereafter).
  explicit MlInferenceFunction(std::size_t features = 256,
                               std::uint64_t seed = 29);

  [[nodiscard]] std::string_view name() const noexcept override {
    return "ml-inference";
  }
  [[nodiscard]] Category category() const noexcept override {
    return Category::kCategory2;
  }
  [[nodiscard]] util::Nanos nominal_duration() const noexcept override {
    return 1'000;  // ~1 µs for a 256-feature linear scorer
  }

  /// request.payload carries the feature vector (int32, scaled by 1e3);
  /// missing features read as zero, extras are ignored.
  /// response.allowed = (score >= 0.5); checksum = score in ppm.
  Response invoke(const Request& request) override;

  [[nodiscard]] std::size_t feature_count() const noexcept {
    return weights_.size();
  }
  [[nodiscard]] double score(const std::vector<std::int32_t>& features) const;

 private:
  std::vector<double> weights_;
  double bias_ = 0.0;
};

}  // namespace horse::workloads
