#include "workloads/nat.hpp"

#include <cstdio>

#include "util/rng.hpp"

namespace horse::workloads {

NatFunction::NatFunction(std::size_t num_rules, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  rules_.reserve(num_rules);
  for (std::size_t i = 0; i < num_rules; ++i) {
    const auto dst = static_cast<std::uint32_t>(rng());
    const auto port = static_cast<std::uint16_t>(rng.bounded(65536));
    NatRule rule;
    rule.new_dst = static_cast<std::uint32_t>(rng());
    rule.new_port = static_cast<std::uint16_t>(rng.bounded(65536));
    rules_.emplace(key_of(dst, port), rule);
  }
}

void NatFunction::add_rule(std::uint32_t dst, std::uint16_t port, NatRule rule) {
  rules_[key_of(dst, port)] = rule;
}

Response NatFunction::invoke(const Request& request) {
  Response response;
  const PacketHeader header = parse_header(request.header);
  if (!header.valid) {
    return response;
  }
  const auto it = rules_.find(key_of(header.dst, header.port));
  std::uint32_t dst = header.dst;
  std::uint16_t port = header.port;
  if (it != rules_.end()) {
    dst = it->second.new_dst;
    port = it->second.new_port;
    response.allowed = true;  // translated
  }
  char rewritten[96];
  std::snprintf(rewritten, sizeof rewritten,
                "src=%u.%u.%u.%u dst=%u.%u.%u.%u port=%u proto=%s",
                header.src >> 24, (header.src >> 16) & 0xff,
                (header.src >> 8) & 0xff, header.src & 0xff, dst >> 24,
                (dst >> 16) & 0xff, (dst >> 8) & 0xff, dst & 0xff, port,
                header.proto == 6 ? "tcp" : "udp");
  response.rewritten_header = rewritten;
  response.checksum = (static_cast<std::uint64_t>(dst) << 16) ^ port;
  return response;
}

}  // namespace horse::workloads
