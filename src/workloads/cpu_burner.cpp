#include "workloads/cpu_burner.hpp"

namespace horse::workloads {

std::uint32_t CpuBurnerFunction::count_primes_below(std::uint32_t limit) {
  // Trial division, exactly like sysbench's cpu test (it is intentionally
  // naive — the point is deterministic CPU burn, not number theory).
  std::uint32_t count = 0;
  for (std::uint32_t candidate = 3; candidate < limit; candidate += 2) {
    bool prime = true;
    for (std::uint32_t div = 3; div * div <= candidate; div += 2) {
      if (candidate % div == 0) {
        prime = false;
        break;
      }
    }
    if (prime) {
      ++count;
    }
  }
  return limit > 2 ? count + 1 : count;  // include 2
}

Response CpuBurnerFunction::invoke(const Request& request) {
  const std::uint32_t limit = request.threshold > 0
                                  ? static_cast<std::uint32_t>(request.threshold)
                                  : prime_limit_;
  Response response;
  response.checksum = count_primes_below(limit);
  response.allowed = true;
  return response;
}

}  // namespace horse::workloads
