#include "workloads/ml_inference.hpp"

#include <cmath>

#include "util/rng.hpp"

namespace horse::workloads {

MlInferenceFunction::MlInferenceFunction(std::size_t features,
                                         std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  weights_.reserve(features);
  for (std::size_t i = 0; i < features; ++i) {
    weights_.push_back(rng.normal(0.0, 0.2));
  }
  bias_ = rng.normal(0.0, 0.1);
}

double MlInferenceFunction::score(
    const std::vector<std::int32_t>& features) const {
  double activation = bias_;
  const std::size_t n = std::min(features.size(), weights_.size());
  for (std::size_t i = 0; i < n; ++i) {
    activation += weights_[i] * (static_cast<double>(features[i]) / 1e3);
  }
  return 1.0 / (1.0 + std::exp(-activation));
}

Response MlInferenceFunction::invoke(const Request& request) {
  Response response;
  const double probability = score(request.payload);
  response.allowed = probability >= 0.5;
  response.checksum = static_cast<std::uint64_t>(probability * 1e6);
  return response;
}

}  // namespace horse::workloads
