// uLL workload: in-memory key-value GET over small objects.
//
// The paper's §1 lists "distributed in-memory key-value stores with small
// objects" among the ultra-low-latency services (FaRM, NetCache, RDMA
// KV). This function models the per-request server-side work: parse a
// GET/SET command, hash-lookup or insert a small value. Execution lands
// in the Category-2 band (~1 µs).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "workloads/function.hpp"

namespace horse::workloads {

class KvStoreFunction final : public Function {
 public:
  /// Pre-populates `num_keys` entries of `value_size` bytes.
  explicit KvStoreFunction(std::size_t num_keys = 10'000,
                           std::size_t value_size = 64,
                           std::uint64_t seed = 23);

  [[nodiscard]] std::string_view name() const noexcept override {
    return "kv-store";
  }
  [[nodiscard]] Category category() const noexcept override {
    return Category::kCategory2;
  }
  [[nodiscard]] util::Nanos nominal_duration() const noexcept override {
    return 1'200;  // ~1.2 µs per op
  }

  /// request.header is the command: "GET <key>" or "SET <key> <value>".
  /// GET: response.rewritten_header = value, allowed = hit.
  /// SET: allowed = true, checksum = store size afterwards.
  Response invoke(const Request& request) override;

  [[nodiscard]] std::size_t size() const noexcept { return store_.size(); }

  /// Key name used for the pre-populated entry #i (tests target these).
  [[nodiscard]] static std::string key_name(std::size_t i) {
    return "key-" + std::to_string(i);
  }

 private:
  std::unordered_map<std::string, std::string> store_;
};

}  // namespace horse::workloads
