// Longer-running workload for the §5.4 colocation study: the SEBS
// thumbnail generator ("generates thumbnails from images stored on an
// Amazon S3 bucket").
//
// Substitution: no S3 exists here, so the object fetch is a modelled I/O
// delay while the thumbnail computation itself is real — a box-filter
// downscale over an in-memory RGB image. The simulation plane samples
// service times from a heavy-tailed distribution (lognormal body around
// ~200 ms), matching the premise that "a non-negligible fraction of
// serverless functions has an execution time longer than 1 s".
#pragma once

#include <cstdint>
#include <vector>

#include "trace/synthetic.hpp"
#include "workloads/function.hpp"

namespace horse::workloads {

struct Image {
  std::uint32_t width = 0;
  std::uint32_t height = 0;
  std::vector<std::uint8_t> rgb;  // 3 bytes per pixel, row-major

  [[nodiscard]] static Image synthetic(std::uint32_t width,
                                       std::uint32_t height,
                                       std::uint64_t seed);
};

/// Box-filter downscale by integer factor; the real computation.
[[nodiscard]] Image downscale(const Image& source, std::uint32_t factor);

class ThumbnailFunction final : public Function {
 public:
  explicit ThumbnailFunction(std::uint32_t source_dim = 256,
                             std::uint32_t thumb_factor = 8,
                             std::uint64_t seed = 19);

  [[nodiscard]] std::string_view name() const noexcept override {
    return "thumbnail-generator";
  }
  [[nodiscard]] Category category() const noexcept override {
    return Category::kLongRunning;
  }
  [[nodiscard]] util::Nanos nominal_duration() const noexcept override {
    return 200 * util::kMillisecond;
  }

  /// Real plane: downscale the stored source image; `request.threshold`
  /// selects among pre-generated source images (like distinct S3 keys).
  Response invoke(const Request& request) override;

  /// Simulation plane: heavy-tailed service time (shared sampler).
  [[nodiscard]] util::Nanos sample_service_time(util::Xoshiro256& rng) override;

  [[nodiscard]] const Image& last_thumbnail() const noexcept { return last_; }

 private:
  std::vector<Image> sources_;
  std::uint32_t factor_;
  Image last_;
  trace::DurationSampler durations_;
};

}  // namespace horse::workloads
