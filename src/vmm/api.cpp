#include "vmm/api.hpp"

#include <charconv>
#include <sstream>

namespace horse::vmm {

ApiServer::~ApiServer() {
  for (auto& [id, sandbox] : sandboxes_) {
    if (sandbox->state() != SandboxState::kDestroyed) {
      (void)engine_.destroy(*sandbox);
    }
  }
}

util::Expected<ApiServer::ParsedCommand> ApiServer::parse(
    std::string_view line) {
  ParsedCommand command;
  std::istringstream stream{std::string(line)};
  std::string token;
  if (!(stream >> command.verb)) {
    return util::Status{util::StatusCode::kInvalidArgument,
                        "api: empty command"};
  }
  while (stream >> token) {
    if (token == "ull") {
      command.ull = true;
      continue;
    }
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= token.size()) {
      return util::Status{util::StatusCode::kInvalidArgument,
                          "api: malformed argument '" + token + "'"};
    }
    command.args[token.substr(0, eq)] = token.substr(eq + 1);
  }
  return command;
}

util::Expected<std::uint32_t> ApiServer::required_u32(
    const ParsedCommand& command, std::string_view key) const {
  const auto it = command.args.find(key);
  if (it == command.args.end()) {
    return util::Status{util::StatusCode::kInvalidArgument,
                        "api: missing argument '" + std::string(key) + "'"};
  }
  std::uint32_t value = 0;
  const char* begin = it->second.data();
  const char* end = begin + it->second.size();
  const auto result = std::from_chars(begin, end, value);
  if (result.ec != std::errc{} || result.ptr != end) {
    return util::Status{util::StatusCode::kInvalidArgument,
                        "api: argument '" + std::string(key) +
                            "' is not an unsigned integer"};
  }
  return value;
}

Sandbox* ApiServer::find(sched::SandboxId id) {
  const auto it = sandboxes_.find(id);
  return it == sandboxes_.end() ? nullptr : it->second.get();
}

ApiResponse ApiServer::handle(std::string_view command_line) {
  ApiResponse response;
  auto parsed = parse(command_line);
  if (!parsed) {
    response.status = parsed.status();
    return response;
  }
  const ParsedCommand& command = *parsed;

  if (command.verb == "list") {
    std::string body;
    for (const auto& [id, sandbox] : sandboxes_) {
      body += std::to_string(id) + ":" +
              std::string(to_string(sandbox->state())) + " ";
    }
    response.body = body.empty() ? "(none)" : body;
    return response;
  }

  if (command.verb == "create") {
    const auto id = required_u32(command, "id");
    const auto vcpus = required_u32(command, "vcpus");
    const auto memory = required_u32(command, "memory_mb");
    if (!id || !vcpus || !memory) {
      response.status = !id ? id.status()
                            : (!vcpus ? vcpus.status() : memory.status());
      return response;
    }
    if (sandboxes_.contains(*id)) {
      response.status = {util::StatusCode::kAlreadyExists,
                         "api: sandbox id already in use"};
      return response;
    }
    SandboxConfig config;
    config.name = "api-" + std::to_string(*id);
    config.num_vcpus = *vcpus;
    config.memory_mb = *memory;
    config.ull = command.ull;
    try {
      sandboxes_.emplace(*id, std::make_unique<Sandbox>(*id, config));
    } catch (const std::invalid_argument& error) {
      response.status = {util::StatusCode::kInvalidArgument, error.what()};
      return response;
    }
    response.body = "created " + std::to_string(*id);
    return response;
  }

  // All remaining verbs operate on an existing sandbox.
  const auto id = required_u32(command, "id");
  if (!id) {
    response.status = id.status();
    return response;
  }
  Sandbox* sandbox = find(*id);
  if (sandbox == nullptr) {
    response.status = {util::StatusCode::kNotFound,
                       "api: no sandbox " + std::to_string(*id)};
    return response;
  }

  if (command.verb == "start") {
    response.status = engine_.start(*sandbox);
  } else if (command.verb == "pause") {
    response.status = engine_.pause(*sandbox);
  } else if (command.verb == "resume") {
    ResumeBreakdown breakdown;
    response.status = engine_.resume(*sandbox, &breakdown);
    if (response.ok()) {
      response.body = "resumed in " + std::to_string(breakdown.total()) + " ns";
      return response;
    }
  } else if (command.verb == "hotplug") {
    response.status = engine_.hotplug_vcpu(*sandbox);
  } else if (command.verb == "unplug") {
    response.status = engine_.unplug_vcpu(*sandbox);
  } else if (command.verb == "destroy") {
    response.status = engine_.destroy(*sandbox);
    if (response.ok()) {
      sandboxes_.erase(*id);
      response.body = "destroyed";
      return response;
    }
  } else if (command.verb == "state") {
    response.body = std::string(to_string(sandbox->state())) + " vcpus=" +
                    std::to_string(sandbox->num_vcpus());
    return response;
  } else {
    response.status = {util::StatusCode::kInvalidArgument,
                       "api: unknown command '" + command.verb + "'"};
    return response;
  }

  if (response.ok() && response.body.empty()) {
    response.body = command.verb + " ok";
  }
  return response;
}

}  // namespace horse::vmm
