#include "vmm/snapshot.hpp"

#include <algorithm>
#include <cstring>

#include "util/fault_injection.hpp"

namespace horse::vmm {

std::uint64_t SnapshotManager::compute_checksum(
    const std::vector<std::byte>& image) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (std::byte b : image) {
    hash ^= static_cast<std::uint64_t>(b);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

util::Expected<Snapshot> SnapshotManager::take(const Sandbox& sandbox) {
  if (sandbox.state() != SandboxState::kPaused) {
    return util::Status{util::StatusCode::kFailedPrecondition,
                        "snapshot: sandbox must be paused"};
  }
  Snapshot snapshot;
  snapshot.config = sandbox.config();
  snapshot.memory_image = sandbox.guest_memory();
  snapshot.checksum = compute_checksum(snapshot.memory_image);
  return snapshot;
}

void DirtyTracker::mark_range(std::size_t offset, std::size_t length) {
  if (length == 0) {
    return;
  }
  const std::size_t first = offset / kPageSize;
  const std::size_t last = (offset + length - 1) / kPageSize;
  for (std::size_t page = first; page <= last; ++page) {
    dirty_.at(page) = true;
  }
}

void DirtyTracker::write(std::vector<std::byte>& image, std::size_t offset,
                         const std::byte* data, std::size_t length) {
  std::copy(data, data + length,
            image.begin() + static_cast<std::ptrdiff_t>(offset));
  mark_range(offset, length);
}

std::size_t DirtyTracker::dirty_count() const noexcept {
  std::size_t count = 0;
  for (const bool dirty : dirty_) {
    if (dirty) {
      ++count;
    }
  }
  return count;
}

std::vector<std::size_t> DirtyTracker::dirty_pages() const {
  std::vector<std::size_t> pages;
  for (std::size_t page = 0; page < dirty_.size(); ++page) {
    if (dirty_[page]) {
      pages.push_back(page);
    }
  }
  return pages;
}

util::Expected<DeltaSnapshot> SnapshotManager::take_delta(
    const Sandbox& sandbox, const Snapshot& base, const DirtyTracker& tracker) {
  if (sandbox.state() != SandboxState::kPaused) {
    return util::Status{util::StatusCode::kFailedPrecondition,
                        "delta snapshot: sandbox must be paused"};
  }
  const auto& memory = sandbox.guest_memory();
  if (memory.size() != base.memory_image.size()) {
    return util::Status{util::StatusCode::kInvalidArgument,
                        "delta snapshot: image size differs from base"};
  }
  DeltaSnapshot delta;
  delta.base_checksum = base.checksum;
  delta.pages = tracker.dirty_pages();
  delta.page_data.reserve(delta.pages.size() * DirtyTracker::kPageSize);
  for (const std::size_t page : delta.pages) {
    const std::size_t begin = page * DirtyTracker::kPageSize;
    const std::size_t end =
        std::min(begin + DirtyTracker::kPageSize, memory.size());
    delta.page_data.insert(delta.page_data.end(), memory.begin() + begin,
                           memory.begin() + end);
  }
  return delta;
}

util::Expected<RestoreResult> SnapshotManager::restore_incremental(
    const Snapshot& base, const DeltaSnapshot& delta,
    sched::SandboxId next_id) {
  if (delta.base_checksum != base.checksum) {
    return util::Status{util::StatusCode::kFailedPrecondition,
                        "incremental restore: delta does not match base"};
  }
  RestoreResult result;
  util::Stopwatch watch;
  result.sandbox = std::make_unique<Sandbox>(next_id, base.config);
  auto& memory = result.sandbox->guest_memory();
  memory = base.memory_image;
  std::size_t cursor = 0;
  for (const std::size_t page : delta.pages) {
    const std::size_t begin = page * DirtyTracker::kPageSize;
    const std::size_t length =
        std::min(DirtyTracker::kPageSize, memory.size() - begin);
    std::copy(delta.page_data.begin() + static_cast<std::ptrdiff_t>(cursor),
              delta.page_data.begin() +
                  static_cast<std::ptrdiff_t>(cursor + length),
              memory.begin() + static_cast<std::ptrdiff_t>(begin));
    cursor += length;
  }
  result.copy_time = watch.elapsed();
  // Device re-init is the same whether the image came whole or as
  // base+delta; what shrinks with the working set is the (real) copy.
  const double jitter = rng_.normal(1.0, 0.02);
  result.modelled_time = static_cast<util::Nanos>(
      static_cast<double>(profile_.snapshot_restore) *
      std::clamp(jitter, 0.9, 1.1));
  return result;
}

util::Expected<RestoreResult> SnapshotManager::restore(
    const Snapshot& snapshot, sched::SandboxId next_id) {
  // Integrity gate: refuse an image whose checksum drifted from the one
  // recorded at take() time. The fault site flips the computed value —
  // equivalent to a single corrupted byte without damaging the caller's
  // snapshot object.
  std::uint64_t computed = compute_checksum(snapshot.memory_image);
  if (HORSE_FAULT_POINT("snapshot.restore.corrupt")) {
    computed = ~computed;
  }
  if (computed != snapshot.checksum) {
    return util::Status{util::StatusCode::kInternal,
                        "restore: memory image checksum mismatch "
                        "(snapshot corrupt)"};
  }

  RestoreResult result;

  util::Stopwatch watch;
  result.sandbox = std::make_unique<Sandbox>(next_id, snapshot.config);
  auto& memory = result.sandbox->guest_memory();
  memory.resize(snapshot.memory_image.size());
  std::copy(snapshot.memory_image.begin(), snapshot.memory_image.end(),
            memory.begin());
  result.copy_time = watch.elapsed();

  // Device re-init and lazy-mapping latency we cannot execute without a
  // hypervisor: sampled around the profile constant (±2%), matching the
  // paper's observed run-to-run variance.
  const double jitter = rng_.normal(1.0, 0.02);
  result.modelled_time = static_cast<util::Nanos>(
      static_cast<double>(profile_.snapshot_restore) *
      std::clamp(jitter, 0.9, 1.1));
  return result;
}

}  // namespace horse::vmm
