// In-memory XenStore replacement (LightVM-style).
//
// Xen's control plane keeps per-domain configuration in XenStore, a
// hierarchical key-value store consulted on every lifecycle operation —
// including resume, where the toolstack reads the domain's state and
// vCPU configuration. The stock XenStore is a userspace daemon reached
// via a ring protocol; §3.2 of the paper follows LightVM ("we change the
// XenStore to an in-memory shared space to reduce userspace costs").
// This is that in-memory shared space: hierarchical paths, transactions
// with optimistic concurrency (abort on conflicting commits), and watch
// counters — the subset the resume path and its tests exercise.
//
// The Xen-profile resume path performs its step-① sanity reads against
// this store, so the Xen flavour's higher control-plane cost is partly
// *executed* rather than purely modelled.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/spinlock.hpp"
#include "util/status.hpp"

namespace horse::vmm {

class XenStore {
 public:
  using TxId = std::uint64_t;

  XenStore() = default;
  XenStore(const XenStore&) = delete;
  XenStore& operator=(const XenStore&) = delete;

  // --- direct (transaction-less) operations ------------------------------

  /// Write a value; creates intermediate directories implicitly (paths
  /// are `/`-separated, e.g. "/local/domain/7/state").
  util::Status write(const std::string& path, const std::string& value);

  [[nodiscard]] util::Expected<std::string> read(const std::string& path) const;

  /// Remove a path and everything below it.
  util::Status remove(const std::string& path);

  /// Immediate children names of a directory path.
  [[nodiscard]] std::vector<std::string> list(const std::string& path) const;

  [[nodiscard]] bool exists(const std::string& path) const;

  // --- transactions --------------------------------------------------------

  /// Begin a transaction: reads/writes through it are isolated and
  /// committed atomically. Commit fails (kFailedPrecondition, like
  /// XenStore's EAGAIN) if any path read or written inside the
  /// transaction was modified outside it since tx_begin.
  [[nodiscard]] TxId tx_begin();
  util::Status tx_write(TxId tx, const std::string& path,
                        const std::string& value);
  [[nodiscard]] util::Expected<std::string> tx_read(TxId tx,
                                                    const std::string& path);
  util::Status tx_commit(TxId tx);
  void tx_abort(TxId tx);

  // --- watches (simplified: per-path change counters) ---------------------

  /// Number of committed changes at or below `path` since store creation.
  [[nodiscard]] std::uint64_t change_count(const std::string& path) const;

  [[nodiscard]] std::size_t size() const;

  // --- domain-path conventions used by the resume path --------------------

  [[nodiscard]] static std::string domain_path(std::uint32_t domid) {
    return "/local/domain/" + std::to_string(domid);
  }

 private:
  struct Node {
    std::string value;
    std::uint64_t version = 0;  // bumped on every committed write
  };
  struct Transaction {
    bool open = false;
    std::map<std::string, std::string> writes;
    std::map<std::string, std::uint64_t> read_versions;
  };

  static bool is_prefix_of(const std::string& dir, const std::string& path);
  [[nodiscard]] std::uint64_t version_of(const std::string& path) const;

  mutable util::Spinlock lock_;
  std::map<std::string, Node> nodes_;  // ordered: prefix scans for list()
  std::map<TxId, Transaction> transactions_;
  TxId next_tx_ = 1;
  std::uint64_t commit_counter_ = 0;
};

}  // namespace horse::vmm
