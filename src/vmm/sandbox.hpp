// Sandbox: a microVM (Firecracker) or VM (Xen) as seen by the resume path.
//
// Owns its vCPUs (stable addresses — they are linked into intrusive run
// queues by pointer) and a scaled-down guest-memory image used by the
// snapshot/restore path. While paused, its vCPUs live on `merge_vcpus`,
// the credit-sorted list the paper introduces in §4.1.3 so that resume
// never has to iterate over vCPUs one by one.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sched/vcpu.hpp"
#include "util/status.hpp"
#include "util/time.hpp"

namespace horse::vmm {

enum class SandboxState : std::uint8_t {
  kCreated,    // configured, never started
  kRunning,
  kPaused,     // vCPUs off the run queues, parked on merge_vcpus
  kDestroyed,
};

[[nodiscard]] constexpr std::string_view to_string(SandboxState state) noexcept {
  switch (state) {
    case SandboxState::kCreated: return "created";
    case SandboxState::kRunning: return "running";
    case SandboxState::kPaused: return "paused";
    case SandboxState::kDestroyed: return "destroyed";
  }
  return "unknown";
}

struct SandboxConfig {
  std::string name;
  std::uint32_t num_vcpus = 1;
  std::uint32_t memory_mb = 512;
  /// Marked at creation: uLL sandboxes are eligible for the HORSE fast
  /// path and the reserved ull_runqueues.
  bool ull = false;
};

/// Pause-time precomputation for load-update coalescing (§4.2.2): "we
/// compute αⁿ and β(1-αⁿ)/(1-α) and save these two values as an attribute
/// of the sandbox".
struct CoalescePrecompute {
  double alpha_n = 1.0;
  double beta_geo_sum = 0.0;
  bool valid = false;
};

class Sandbox {
 public:
  Sandbox(sched::SandboxId id, SandboxConfig config);

  Sandbox(const Sandbox&) = delete;
  Sandbox& operator=(const Sandbox&) = delete;

  [[nodiscard]] sched::SandboxId id() const noexcept { return id_; }
  [[nodiscard]] const SandboxConfig& config() const noexcept { return config_; }
  [[nodiscard]] SandboxState state() const noexcept { return state_; }
  void set_state(SandboxState state) noexcept { state_ = state; }

  [[nodiscard]] std::uint32_t num_vcpus() const noexcept {
    return static_cast<std::uint32_t>(vcpus_.size());
  }
  [[nodiscard]] sched::Vcpu& vcpu(std::size_t index) { return *vcpus_.at(index); }
  [[nodiscard]] const std::vector<std::unique_ptr<sched::Vcpu>>& vcpus() const noexcept {
    return vcpus_;
  }

  // --- vCPU hot(un)plug, paused sandboxes only ----------------------------
  // Resizing happens while paused (as cloud resize does on stopped
  // instances). The caller — normally a ResumeEngine, which also repairs
  // the fast-path state — links/unlinks the vCPU in merge_vcpus.

  /// Append one vCPU (state kPaused, unlinked). Fails unless paused.
  util::Expected<sched::Vcpu*> add_vcpu();

  /// Drop the highest-numbered vCPU. Fails unless paused, if it is the
  /// last one, or if its hook is still linked anywhere.
  util::Status remove_last_vcpu();

  /// Credit-sorted list of this sandbox's vCPUs while paused (`merge_vcpus`
  /// in the paper). Populated by the pause path.
  [[nodiscard]] sched::VcpuList& merge_vcpus() noexcept { return merge_vcpus_; }

  [[nodiscard]] CoalescePrecompute& coalesce() noexcept { return coalesce_; }

  /// Scaled guest-memory image backing the snapshot/restore experiments.
  /// Real guests would map `memory_mb` MiB; we keep a 1/64-scale image so
  /// restore performs a real (but laptop-sized) page copy.
  [[nodiscard]] std::vector<std::byte>& guest_memory() noexcept { return guest_memory_; }
  [[nodiscard]] const std::vector<std::byte>& guest_memory() const noexcept {
    return guest_memory_;
  }
  static constexpr std::size_t kMemoryScaleDenominator = 64;

  /// Total time this sandbox has spent paused (keep-alive accounting).
  util::Nanos paused_at = 0;

 private:
  sched::SandboxId id_;
  SandboxConfig config_;
  SandboxState state_ = SandboxState::kCreated;
  std::vector<std::unique_ptr<sched::Vcpu>> vcpus_;
  sched::VcpuList merge_vcpus_;
  CoalescePrecompute coalesce_;
  std::vector<std::byte> guest_memory_;
};

}  // namespace horse::vmm
