// Snapshot / restore path (the paper's `restore` mode, FaaSnap-style).
//
// A snapshot captures the sandbox configuration and its guest-memory
// image. Restore performs a real page-by-page copy into a freshly created
// sandbox (the mechanical part we can execute) and reports the modelled
// device/VMM re-initialisation latency from the profile (the part that
// needs a real hypervisor). Table 1's restore row is the sum of both.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/rng.hpp"
#include "util/status.hpp"
#include "util/time.hpp"
#include "vmm/profile.hpp"
#include "vmm/sandbox.hpp"

namespace horse::vmm {

struct Snapshot {
  SandboxConfig config;
  std::vector<std::byte> memory_image;
  std::uint64_t checksum = 0;
};

/// Page-granular dirty tracking over a guest-memory image, the mechanism
/// behind incremental snapshots (and FaaSnap's working-set restores):
/// writes go through `write()`, which marks the containing page.
class DirtyTracker {
 public:
  static constexpr std::size_t kPageSize = 4096;

  explicit DirtyTracker(std::size_t image_bytes)
      : dirty_((image_bytes + kPageSize - 1) / kPageSize, false) {}

  void mark(std::size_t offset) {
    dirty_.at(offset / kPageSize) = true;
  }
  void mark_range(std::size_t offset, std::size_t length);

  /// Write into the image, marking dirtied pages.
  void write(std::vector<std::byte>& image, std::size_t offset,
             const std::byte* data, std::size_t length);

  [[nodiscard]] bool is_dirty(std::size_t page) const {
    return dirty_.at(page);
  }
  [[nodiscard]] std::size_t page_count() const noexcept { return dirty_.size(); }
  [[nodiscard]] std::size_t dirty_count() const noexcept;
  [[nodiscard]] std::vector<std::size_t> dirty_pages() const;

  void clear() noexcept {
    std::fill(dirty_.begin(), dirty_.end(), false);
  }

 private:
  std::vector<bool> dirty_;
};

/// Delta snapshot: the pages that changed since a base snapshot. Restoring
/// applies base + delta; the copy cost scales with the working set, not
/// the image (FaaSnap's observation).
struct DeltaSnapshot {
  std::uint64_t base_checksum = 0;  // identifies the base it applies to
  std::vector<std::size_t> pages;
  std::vector<std::byte> page_data;  // pages.size() * kPageSize bytes
};

struct RestoreResult {
  std::unique_ptr<Sandbox> sandbox;
  util::Nanos copy_time = 0;     // measured: memory-image copy
  util::Nanos modelled_time = 0; // modelled: device/VMM reinit latency
  [[nodiscard]] util::Nanos total_time() const noexcept {
    return copy_time + modelled_time;
  }
};

class SnapshotManager {
 public:
  explicit SnapshotManager(VmmProfile profile, std::uint64_t seed = 42)
      : profile_(std::move(profile)), rng_(seed) {}

  /// Capture the sandbox's memory image and configuration. The sandbox
  /// must be paused (snapshotting a running guest would tear pages).
  [[nodiscard]] util::Expected<Snapshot> take(const Sandbox& sandbox);

  /// Materialise a new sandbox from a snapshot. `next_id` is assigned to
  /// the restored sandbox. Fails with kInternal when the image's FNV-1a
  /// checksum does not match the one recorded at take() time (on-disk
  /// corruption in a real deployment; the snapshot.restore.corrupt fault
  /// site injects it here).
  [[nodiscard]] util::Expected<RestoreResult> restore(const Snapshot& snapshot,
                                                      sched::SandboxId next_id);

  /// FNV-1a over the memory image; restore verifies integrity with it.
  [[nodiscard]] static std::uint64_t compute_checksum(
      const std::vector<std::byte>& image) noexcept;

  // --- incremental snapshots ----------------------------------------------

  /// Capture only the pages `tracker` marked dirty relative to `base`.
  /// The sandbox must be paused.
  [[nodiscard]] util::Expected<DeltaSnapshot> take_delta(
      const Sandbox& sandbox, const Snapshot& base,
      const DirtyTracker& tracker);

  /// Restore base + delta into a fresh sandbox. Fails when the delta was
  /// taken against a different base (checksum mismatch).
  [[nodiscard]] util::Expected<RestoreResult> restore_incremental(
      const Snapshot& base, const DeltaSnapshot& delta,
      sched::SandboxId next_id);

 private:
  VmmProfile profile_;
  util::Xoshiro256 rng_;
};

}  // namespace horse::vmm
