#include "vmm/xenstore.hpp"

#include <algorithm>

namespace horse::vmm {

namespace {

bool valid_path(const std::string& path) {
  return !path.empty() && path.front() == '/' &&
         (path.size() == 1 || path.back() != '/');
}

}  // namespace

bool XenStore::is_prefix_of(const std::string& dir, const std::string& path) {
  if (path.size() <= dir.size() || path.compare(0, dir.size(), dir) != 0) {
    return dir == path;
  }
  return path[dir.size()] == '/';
}

util::Status XenStore::write(const std::string& path, const std::string& value) {
  if (!valid_path(path)) {
    return {util::StatusCode::kInvalidArgument, "xenstore: bad path " + path};
  }
  util::LockGuard guard(lock_);
  Node& node = nodes_[path];
  node.value = value;
  node.version = ++commit_counter_;
  return util::Status::ok();
}

util::Expected<std::string> XenStore::read(const std::string& path) const {
  util::LockGuard guard(lock_);
  const auto it = nodes_.find(path);
  if (it == nodes_.end()) {
    return util::Status{util::StatusCode::kNotFound,
                        "xenstore: no node " + path};
  }
  return it->second.value;
}

util::Status XenStore::remove(const std::string& path) {
  if (!valid_path(path)) {
    return {util::StatusCode::kInvalidArgument, "xenstore: bad path " + path};
  }
  util::LockGuard guard(lock_);
  bool removed = false;
  auto it = nodes_.lower_bound(path);
  while (it != nodes_.end() && is_prefix_of(path, it->first)) {
    it = nodes_.erase(it);
    removed = true;
  }
  if (!removed) {
    return {util::StatusCode::kNotFound, "xenstore: no node " + path};
  }
  ++commit_counter_;
  return util::Status::ok();
}

std::vector<std::string> XenStore::list(const std::string& path) const {
  util::LockGuard guard(lock_);
  std::vector<std::string> children;
  const std::string prefix = path == "/" ? "/" : path + "/";
  for (auto it = nodes_.lower_bound(prefix); it != nodes_.end(); ++it) {
    const std::string& key = it->first;
    if (key.compare(0, prefix.size(), prefix) != 0) {
      break;
    }
    // First path segment below the directory.
    const std::size_t end = key.find('/', prefix.size());
    std::string child = key.substr(
        prefix.size(),
        end == std::string::npos ? std::string::npos : end - prefix.size());
    if (children.empty() || children.back() != child) {
      children.push_back(std::move(child));
    }
  }
  return children;
}

bool XenStore::exists(const std::string& path) const {
  util::LockGuard guard(lock_);
  return nodes_.contains(path);
}

std::uint64_t XenStore::version_of(const std::string& path) const {
  // Caller holds lock_.
  const auto it = nodes_.find(path);
  return it == nodes_.end() ? 0 : it->second.version;
}

XenStore::TxId XenStore::tx_begin() {
  util::LockGuard guard(lock_);
  const TxId id = next_tx_++;
  transactions_[id].open = true;
  return id;
}

util::Status XenStore::tx_write(TxId tx, const std::string& path,
                                const std::string& value) {
  if (!valid_path(path)) {
    return {util::StatusCode::kInvalidArgument, "xenstore: bad path " + path};
  }
  util::LockGuard guard(lock_);
  const auto it = transactions_.find(tx);
  if (it == transactions_.end() || !it->second.open) {
    return {util::StatusCode::kNotFound, "xenstore: no such transaction"};
  }
  // Record the version we based the write on, for conflict detection.
  it->second.read_versions.try_emplace(path, version_of(path));
  it->second.writes[path] = value;
  return util::Status::ok();
}

util::Expected<std::string> XenStore::tx_read(TxId tx, const std::string& path) {
  util::LockGuard guard(lock_);
  const auto it = transactions_.find(tx);
  if (it == transactions_.end() || !it->second.open) {
    return util::Status{util::StatusCode::kNotFound,
                        "xenstore: no such transaction"};
  }
  // Reads see the transaction's own writes first.
  const auto written = it->second.writes.find(path);
  if (written != it->second.writes.end()) {
    return written->second;
  }
  it->second.read_versions.try_emplace(path, version_of(path));
  const auto node = nodes_.find(path);
  if (node == nodes_.end()) {
    return util::Status{util::StatusCode::kNotFound,
                        "xenstore: no node " + path};
  }
  return node->second.value;
}

util::Status XenStore::tx_commit(TxId tx) {
  util::LockGuard guard(lock_);
  const auto it = transactions_.find(tx);
  if (it == transactions_.end() || !it->second.open) {
    return {util::StatusCode::kNotFound, "xenstore: no such transaction"};
  }
  Transaction& transaction = it->second;
  // Optimistic concurrency: every path this transaction observed must be
  // unchanged, or the commit fails like XenStore's EAGAIN.
  for (const auto& [path, version] : transaction.read_versions) {
    if (version_of(path) != version) {
      // Build the message BEFORE erasing: `path` references a key inside
      // the transaction being destroyed (use-after-free otherwise; caught
      // by the asan-ubsan preset).
      util::Status conflict{util::StatusCode::kFailedPrecondition,
                            "xenstore: transaction conflict on " + path};
      transactions_.erase(it);
      return conflict;
    }
  }
  for (const auto& [path, value] : transaction.writes) {
    Node& node = nodes_[path];
    node.value = value;
    node.version = ++commit_counter_;
  }
  transactions_.erase(it);
  return util::Status::ok();
}

void XenStore::tx_abort(TxId tx) {
  util::LockGuard guard(lock_);
  transactions_.erase(tx);
}

std::uint64_t XenStore::change_count(const std::string& path) const {
  util::LockGuard guard(lock_);
  std::uint64_t newest = 0;
  for (auto it = nodes_.lower_bound(path); it != nodes_.end(); ++it) {
    if (!is_prefix_of(path, it->first)) {
      break;
    }
    newest = std::max(newest, it->second.version);
  }
  return newest;
}

std::size_t XenStore::size() const {
  util::LockGuard guard(lock_);
  return nodes_.size();
}

}  // namespace horse::vmm
