// Cold-boot latency model.
//
// A cold start spawns the VMM process, boots the guest kernel, and
// initialises the language runtime — ~1.5 s in Table 1. None of that can
// execute in user space without a hypervisor, so the cold path samples a
// latency around the profile constant while still constructing the real
// Sandbox object (vCPUs, memory image) so everything downstream of boot
// is exercised for real.
#pragma once

#include <algorithm>
#include <memory>

#include "util/rng.hpp"
#include "util/time.hpp"
#include "vmm/profile.hpp"
#include "vmm/sandbox.hpp"

namespace horse::vmm {

struct BootResult {
  std::unique_ptr<Sandbox> sandbox;
  util::Nanos boot_time = 0;  // modelled guest boot latency
};

class BootModel {
 public:
  explicit BootModel(VmmProfile profile, std::uint64_t seed = 43)
      : profile_(std::move(profile)), rng_(seed) {}

  [[nodiscard]] BootResult cold_boot(sched::SandboxId id, SandboxConfig config) {
    BootResult result;
    result.sandbox = std::make_unique<Sandbox>(id, std::move(config));
    const double jitter = std::clamp(rng_.normal(1.0, 0.03), 0.9, 1.2);
    result.boot_time = static_cast<util::Nanos>(
        static_cast<double>(profile_.cold_boot) * jitter);
    return result;
  }

 private:
  VmmProfile profile_;
  util::Xoshiro256 rng_;
};

}  // namespace horse::vmm
