// Control-plane API for the VMM — the textual command surface a
// Firecracker-style process exposes (PUT /actions, PUT /snapshot/create,
// ...), reduced to a line protocol:
//
//   create  id=<n> vcpus=<n> memory_mb=<n> [ull]
//   start   id=<n>
//   pause   id=<n>
//   resume  id=<n>
//   hotplug id=<n>
//   unplug  id=<n>
//   destroy id=<n>
//   state   id=<n>
//   list
//
// This is the layer where the paper's resume step ① ("the input
// parameters associated with the resume command are parsed and passed to
// the virtualization system if the parameters are correctly parsed")
// actually lives: ApiServer owns the sandboxes, parses and validates the
// command, and dispatches to a ResumeEngine. Examples use it as a REPL;
// tests drive every command and malformed variant.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "util/status.hpp"
#include "vmm/resume_engine.hpp"
#include "vmm/sandbox.hpp"

namespace horse::vmm {

struct ApiResponse {
  util::Status status;
  std::string body;  // human-readable result on success

  [[nodiscard]] bool ok() const noexcept { return status.is_ok(); }
};

class ApiServer {
 public:
  /// The engine defines which resume path commands take (vanilla or
  /// HORSE); the server owns the sandboxes it creates.
  explicit ApiServer(ResumeEngine& engine) : engine_(engine) {}

  ApiServer(const ApiServer&) = delete;
  ApiServer& operator=(const ApiServer&) = delete;

  ~ApiServer();

  /// Parse and execute one command line.
  ApiResponse handle(std::string_view command_line);

  [[nodiscard]] std::size_t sandbox_count() const noexcept {
    return sandboxes_.size();
  }
  [[nodiscard]] Sandbox* find(sched::SandboxId id);

 private:
  struct ParsedCommand {
    std::string verb;
    std::map<std::string, std::string, std::less<>> args;
    bool ull = false;
  };

  [[nodiscard]] static util::Expected<ParsedCommand> parse(
      std::string_view line);
  [[nodiscard]] util::Expected<std::uint32_t> required_u32(
      const ParsedCommand& command, std::string_view key) const;

  ResumeEngine& engine_;
  std::map<sched::SandboxId, std::unique_ptr<Sandbox>> sandboxes_;
};

}  // namespace horse::vmm
