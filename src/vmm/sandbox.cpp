#include "vmm/sandbox.hpp"

#include <stdexcept>

namespace horse::vmm {

Sandbox::Sandbox(sched::SandboxId id, SandboxConfig config)
    : id_(id), config_(std::move(config)) {
  if (config_.num_vcpus == 0) {
    throw std::invalid_argument("Sandbox: num_vcpus must be >= 1");
  }
  if (config_.memory_mb == 0) {
    throw std::invalid_argument("Sandbox: memory_mb must be >= 1");
  }
  vcpus_.reserve(config_.num_vcpus);
  for (std::uint32_t i = 0; i < config_.num_vcpus; ++i) {
    auto vcpu = std::make_unique<sched::Vcpu>();
    vcpu->id = i;
    vcpu->sandbox = id_;
    vcpus_.push_back(std::move(vcpu));
  }
  const std::size_t image_bytes =
      static_cast<std::size_t>(config_.memory_mb) * 1024 * 1024 /
      kMemoryScaleDenominator;
  guest_memory_.resize(image_bytes);
}

util::Expected<sched::Vcpu*> Sandbox::add_vcpu() {
  if (state_ != SandboxState::kPaused) {
    return util::Status{util::StatusCode::kFailedPrecondition,
                        "hotplug: sandbox must be paused"};
  }
  auto vcpu = std::make_unique<sched::Vcpu>();
  vcpu->id = static_cast<sched::VcpuId>(vcpus_.size());
  vcpu->sandbox = id_;
  vcpu->state = sched::VcpuState::kPaused;
  sched::Vcpu* raw = vcpu.get();
  vcpus_.push_back(std::move(vcpu));
  config_.num_vcpus = num_vcpus();
  return raw;
}

util::Status Sandbox::remove_last_vcpu() {
  if (state_ != SandboxState::kPaused) {
    return {util::StatusCode::kFailedPrecondition,
            "unplug: sandbox must be paused"};
  }
  if (vcpus_.size() <= 1) {
    return {util::StatusCode::kFailedPrecondition,
            "unplug: at least one vCPU must remain"};
  }
  if (vcpus_.back()->hook.is_linked()) {
    return {util::StatusCode::kFailedPrecondition,
            "unplug: vCPU still linked (caller must unlink first)"};
  }
  vcpus_.pop_back();
  config_.num_vcpus = num_vcpus();
  return util::Status::ok();
}

}  // namespace horse::vmm
