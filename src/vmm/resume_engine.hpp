// The vanilla pause/resume path of the virtualization system, instrumented
// step by step exactly as §3.1 of the paper decomposes it:
//
//   ① parse the resume command's input parameters
//   ② acquire the global lock that serialises concurrent resumes
//   ③ sanity checks (target sandbox is actually paused, ...)
//   ④ for each vCPU: find a run queue and sorted-merge the vCPU into it
//   ⑤ for each inserted vCPU: update the run queue's lock-protected load
//   ⑥ release the lock, flip the sandbox to running
//
// Steps ④ and ⑤ run for real on the scheduler substrate and are timed
// with the monotonic clock; the control-plane costs a user-space
// reproduction cannot execute (KVM ioctls / XenStore ops) are added
// arithmetically from the VmmProfile and attributed to the step they
// belong to, so breakdown percentages remain comparable to Figure 2.
//
// HorseResumeEngine (core/horse_resume.hpp) derives from this class and
// replaces steps ④/⑤ with 𝒫²𝒮ℳ and the coalesced load update.
#pragma once

#include <cstdint>

#include <memory>

#include "sched/credit2.hpp"
#include "sched/topology.hpp"
#include "util/cycle_clock.hpp"
#include "util/spinlock.hpp"
#include "util/status.hpp"
#include "util/time.hpp"
#include "vmm/profile.hpp"
#include "vmm/sandbox.hpp"
#include "vmm/xenstore.hpp"

namespace horse::vmm {

/// Stage timer for the resume breakdown. With `cycles` (the default) each
/// boundary read is one fenced rdtsc (~10 ns) converted by a calibrated
/// multiply; without it, the original std::chrono reads (~20-25 ns each
/// through the vDSO) — the E22 scalar baseline arm, and the automatic
/// behaviour on targets where CycleClock has no counter. With ~12 reads
/// on a full resume, the timing source alone is worth >100 ns of measured
/// path.
class StageTimer {
 public:
  explicit StageTimer(bool cycles) noexcept : cycles_(cycles) { restart(); }

  void restart() noexcept {
    start_ = cycles_ ? util::CycleClock::now()
                     : static_cast<std::uint64_t>(util::monotonic_now());
  }
  [[nodiscard]] util::Nanos elapsed() const noexcept {
    if (cycles_) {
      return util::CycleClock::cycles_to_nanos(util::CycleClock::now() -
                                               start_);
    }
    return util::monotonic_now() - static_cast<util::Nanos>(start_);
  }

 private:
  bool cycles_;
  std::uint64_t start_;
};

/// Per-step timing of one resume call, in nanoseconds. Field names follow
/// the paper's circled step numbers.
struct ResumeBreakdown {
  util::Nanos parse = 0;        // ① (includes modelled control-plane cost)
  util::Nanos lock = 0;         // ②
  util::Nanos sanity = 0;       // ③
  util::Nanos merge = 0;        // ④ (includes modelled per-vCPU tax)
  util::Nanos load_update = 0;  // ⑤
  util::Nanos finalize = 0;     // ⑥

  [[nodiscard]] util::Nanos total() const noexcept {
    return parse + lock + sanity + merge + load_update + finalize;
  }

  /// Share of the resume spent in the two contested steps (④+⑤); the
  /// paper measures 87.5%-93.1% for the vanilla path.
  [[nodiscard]] double contested_fraction() const noexcept {
    const util::Nanos t = total();
    return t == 0 ? 0.0
                  : static_cast<double>(merge + load_update) /
                        static_cast<double>(t);
  }
};

class ResumeEngine {
 public:
  ResumeEngine(sched::CpuTopology& topology, VmmProfile profile);
  virtual ~ResumeEngine() = default;

  ResumeEngine(const ResumeEngine&) = delete;
  ResumeEngine& operator=(const ResumeEngine&) = delete;

  [[nodiscard]] const VmmProfile& profile() const noexcept { return profile_; }
  [[nodiscard]] sched::CpuTopology& topology() noexcept { return topology_; }

  /// The control-plane store. Non-null only for the Xen flavour, whose
  /// lifecycle operations really read/write it (LightVM-style in-memory
  /// XenStore); Firecracker/KVM has no equivalent and models the ioctl
  /// cost instead.
  [[nodiscard]] XenStore* xenstore() noexcept { return xenstore_.get(); }

  /// Replace this engine's store with one shared across engines. The
  /// sharded control plane runs several engines against one topology; a
  /// pause recorded through engine A must be visible to a resume sanity
  /// check through engine B, so the Platform hands every engine the same
  /// (internally spinlocked) store. No-op semantics match the flavour:
  /// callers only share stores between engines of the same profile.
  void use_shared_xenstore(std::shared_ptr<XenStore> store) {
    xenstore_ = std::move(store);
  }

  // Thread-safety: start/pause/resume/destroy serialize on the engine's
  // own lock (the paper's step-② lock, which in the real hypervisor also
  // guards the other domain lifecycle operations). Different sandboxes
  // may be driven from different threads, and — since the sharded control
  // plane — different *engines* may run concurrently against the same
  // topology: per-queue locks protect queue structure, the shared
  // XenStore locks itself, and the HORSE ull manager is internally
  // locked. The one rule callers must keep is the single-owner invariant:
  // a given sandbox is driven through exactly one engine call at a time.
  // Direct access to the topology for instrumentation remains externally
  // synchronised.

  /// Place a created sandbox's vCPUs onto run queues and mark it running.
  /// (Boot-time scheduling; not part of the measured resume path.)
  util::Status start(Sandbox& sandbox);

  /// Remove the sandbox's vCPUs from their run queues and park them,
  /// credit-sorted, on the sandbox's merge_vcpus list.
  util::Status pause(Sandbox& sandbox);

  /// The six-step resume. On success the sandbox is running and all its
  /// vCPUs are linked into run queues. `breakdown`, when non-null,
  /// receives per-step timings.
  virtual util::Status resume(Sandbox& sandbox,
                              ResumeBreakdown* breakdown = nullptr);

  /// Fully tear down a sandbox (dequeue any runnable vCPUs).
  util::Status destroy(Sandbox& sandbox);

  /// Hot-plug one vCPU into a *paused* sandbox; it joins merge_vcpus at
  /// its credit-sorted position (credit 0 for a fresh vCPU). Derived
  /// engines also repair their fast-path state.
  util::Status hotplug_vcpu(Sandbox& sandbox);

  /// Hot-unplug the highest-numbered vCPU of a paused sandbox.
  util::Status unplug_vcpu(Sandbox& sandbox);

 protected:
  /// Pause body; runs with the engine lock held. Derived engines override
  /// this (NOT pause()) to add pause-time work.
  virtual util::Status pause_locked(Sandbox& sandbox);

  /// Hotplug bodies; run with the engine lock held.
  virtual util::Status hotplug_vcpu_locked(Sandbox& sandbox);
  virtual util::Status unplug_vcpu_locked(Sandbox& sandbox);

  /// Vanilla per-vCPU placement: least-loaded general queue.
  [[nodiscard]] virtual sched::CpuId select_cpu(const sched::Vcpu& vcpu);

  /// Step ① as real work: format-then-parse a resume command string and
  /// validate the sandbox id round-trips.
  [[nodiscard]] bool parse_resume_command(const Sandbox& sandbox) const;

  /// Record the sandbox's lifecycle state in the control-plane store
  /// (no-op for flavours without one).
  void record_state(const Sandbox& sandbox, std::string_view state);

  /// Control-plane state check used by the resume sanity step; true when
  /// no store exists (nothing to contradict the in-memory state machine).
  [[nodiscard]] bool control_plane_agrees(const Sandbox& sandbox,
                                          std::string_view state) const;

  /// Shared by derived classes: run steps ①-③, return false (and fill the
  /// status) if a sanity check fails.
  util::Status run_prologue(Sandbox& sandbox, ResumeBreakdown& breakdown);

  /// Step ⑥ for derived classes.
  void run_epilogue(Sandbox& sandbox, ResumeBreakdown& breakdown);

  sched::CpuTopology& topology_;
  VmmProfile profile_;
  util::Spinlock resume_lock_;  // step ②: one resume at a time (per engine)
  std::shared_ptr<XenStore> xenstore_;  // shared across sharded engines
  /// Timing source for ResumeBreakdown stage boundaries (see StageTimer).
  /// Derived engines flip this off (HorseConfig::cycle_timing = false) to
  /// reproduce the chrono-timed baseline arm; the constructor calibrates
  /// CycleClock once so the first timed resume pays no calibration stall.
  bool cycle_timing_ = true;
};

}  // namespace horse::vmm
