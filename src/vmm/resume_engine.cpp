#include "vmm/resume_engine.hpp"

#include <cstdio>
#include <cstring>

#include "util/fault_injection.hpp"

namespace horse::vmm {

namespace {

/// Credit-sorted insertion into a plain vCPU list (the merge_vcpus list is
/// maintained sorted so HORSE can splice it in one shot; vanilla benefits
/// too: resume pops in already-sorted order).
void insert_sorted_into(sched::VcpuList& list, sched::Vcpu& vcpu) {
  auto it = list.begin();
  const auto end = list.end();
  while (it != end && it->credit <= vcpu.credit) {
    ++it;
  }
  list.insert(it, vcpu);
}

}  // namespace

ResumeEngine::ResumeEngine(sched::CpuTopology& topology, VmmProfile profile)
    : topology_(topology), profile_(std::move(profile)) {
  if (profile_.kind == VmmKind::kXen) {
    xenstore_ = std::make_shared<XenStore>();
  }
  // Pay the one-time TSC↔wall-clock calibration spin here so the first
  // timed resume reads a settled ratio instead of stalling ~1 ms.
  util::CycleClock::calibrate();
}

void ResumeEngine::record_state(const Sandbox& sandbox,
                                std::string_view state) {
  if (xenstore_ == nullptr) {
    return;
  }
  const std::string base = XenStore::domain_path(sandbox.id());
  (void)xenstore_->write(base + "/state", std::string(state));
  (void)xenstore_->write(base + "/vcpus",
                         std::to_string(sandbox.num_vcpus()));
}

bool ResumeEngine::control_plane_agrees(const Sandbox& sandbox,
                                        std::string_view state) const {
  if (xenstore_ == nullptr) {
    return true;
  }
  const auto stored =
      xenstore_->read(XenStore::domain_path(sandbox.id()) + "/state");
  return stored.has_value() && *stored == state;
}

util::Status ResumeEngine::start(Sandbox& sandbox) {
  util::LockGuard guard(resume_lock_);
  if (sandbox.state() != SandboxState::kCreated) {
    return {util::StatusCode::kFailedPrecondition,
            "start: sandbox not in created state"};
  }
  for (const auto& vcpu : sandbox.vcpus()) {
    const sched::CpuId cpu = select_cpu(*vcpu);
    sched::RunQueue& queue = topology_.queue(cpu);
    {
      util::LockGuard guard(queue.lock());
      queue.insert_sorted(*vcpu);
    }
    queue.update_load_enqueue();
  }
  sandbox.set_state(SandboxState::kRunning);
  record_state(sandbox, "running");
  return util::Status::ok();
}

util::Status ResumeEngine::pause(Sandbox& sandbox) {
  util::LockGuard guard(resume_lock_);
  return pause_locked(sandbox);
}

util::Status ResumeEngine::pause_locked(Sandbox& sandbox) {
  if (sandbox.state() != SandboxState::kRunning) {
    return {util::StatusCode::kFailedPrecondition,
            "pause: sandbox not running"};
  }
  for (const auto& vcpu : sandbox.vcpus()) {
    if (vcpu->hook.is_linked()) {
      sched::RunQueue& queue = topology_.queue(vcpu->last_cpu);
      util::LockGuard guard(queue.lock());
      queue.remove(*vcpu);
    }
    vcpu->state = sched::VcpuState::kPaused;
    insert_sorted_into(sandbox.merge_vcpus(), *vcpu);
  }
  sandbox.set_state(SandboxState::kPaused);
  record_state(sandbox, "paused");
  return util::Status::ok();
}

bool ResumeEngine::parse_resume_command(const Sandbox& sandbox) const {
  // Step ① does real (small) work: round-trip the command through text,
  // the way a VMM parses its API request.
  char command[64];
  std::snprintf(command, sizeof command, "resume id=%u vcpus=%u",
                sandbox.id(), sandbox.num_vcpus());
  unsigned parsed_id = 0;
  unsigned parsed_vcpus = 0;
  if (std::sscanf(command, "resume id=%u vcpus=%u", &parsed_id,
                  &parsed_vcpus) != 2) {
    return false;
  }
  return parsed_id == sandbox.id() && parsed_vcpus == sandbox.num_vcpus();
}

util::Status ResumeEngine::run_prologue(Sandbox& sandbox,
                                        ResumeBreakdown& breakdown) {
  StageTimer watch(cycle_timing_);

  // ① parse. The fault site models a malformed resume request: fails
  // before the global lock is taken, sandbox state untouched.
  if (HORSE_FAULT_POINT("resume.parse.fault") ||
      !parse_resume_command(sandbox)) {
    return {util::StatusCode::kInvalidArgument, "resume: bad command"};
  }
  breakdown.parse = watch.elapsed() + profile_.resume_control_plane;

  // ② global lock
  watch.restart();
  resume_lock_.lock();
  breakdown.lock = watch.elapsed();

  // ③ sanity checks — includes a real control-plane read on Xen flavours.
  // The fault site models a transient control-plane disagreement (stale
  // XenStore read, interrupted ioctl): the lock is released and the
  // sandbox stays paused, so the caller may retry or fall down the
  // platform's start ladder.
  watch.restart();
  if (HORSE_FAULT_POINT("resume.sanity.fault")) {
    resume_lock_.unlock();
    return {util::StatusCode::kInternal,
            "resume: injected sanity-check failure (control plane)"};
  }
  if (sandbox.state() != SandboxState::kPaused ||
      sandbox.merge_vcpus().size() != sandbox.num_vcpus() ||
      !control_plane_agrees(sandbox, "paused")) {
    resume_lock_.unlock();
    return {util::StatusCode::kFailedPrecondition,
            "resume: sandbox not paused"};
  }
  breakdown.sanity = watch.elapsed();
  return util::Status::ok();
}

void ResumeEngine::run_epilogue(Sandbox& sandbox, ResumeBreakdown& breakdown) {
  StageTimer watch(cycle_timing_);
  sandbox.set_state(SandboxState::kRunning);
  record_state(sandbox, "running");
  resume_lock_.unlock();
  breakdown.finalize = watch.elapsed();
}

util::Status ResumeEngine::resume(Sandbox& sandbox,
                                  ResumeBreakdown* breakdown) {
  ResumeBreakdown local;
  ResumeBreakdown& bd = breakdown != nullptr ? *breakdown : local;
  bd = {};

  HORSE_RETURN_IF_ERROR(run_prologue(sandbox, bd));

  // ④+⑤: per-vCPU sorted merge and load update, interleaved exactly as in
  // the vanilla path but timed separately (as the paper's Figure 2 does).
  StageTimer watch(cycle_timing_);
  while (!sandbox.merge_vcpus().empty()) {
    sched::Vcpu& vcpu = sandbox.merge_vcpus().pop_front();

    watch.restart();
    const sched::CpuId cpu = select_cpu(vcpu);
    sched::RunQueue& queue = topology_.queue(cpu);
    {
      util::LockGuard guard(queue.lock());
      queue.insert_sorted(vcpu);
    }
    bd.merge += watch.elapsed();

    watch.restart();
    queue.update_load_enqueue();
    bd.load_update += watch.elapsed();
  }
  bd.merge += static_cast<util::Nanos>(sandbox.num_vcpus()) *
              profile_.resume_per_vcpu_tax;

  run_epilogue(sandbox, bd);
  return util::Status::ok();
}

util::Status ResumeEngine::destroy(Sandbox& sandbox) {
  util::LockGuard guard(resume_lock_);
  if (sandbox.state() == SandboxState::kDestroyed) {
    return {util::StatusCode::kFailedPrecondition, "destroy: already destroyed"};
  }
  for (const auto& vcpu : sandbox.vcpus()) {
    if (vcpu->hook.is_linked()) {
      if (vcpu->state == sched::VcpuState::kPaused) {
        sandbox.merge_vcpus().erase(*vcpu);
      } else {
        sched::RunQueue& queue = topology_.queue(vcpu->last_cpu);
        util::LockGuard guard(queue.lock());
        queue.remove(*vcpu);
      }
    }
    vcpu->state = sched::VcpuState::kOffline;
  }
  sandbox.set_state(SandboxState::kDestroyed);
  if (xenstore_ != nullptr) {
    (void)xenstore_->remove(XenStore::domain_path(sandbox.id()));
  }
  return util::Status::ok();
}

util::Status ResumeEngine::hotplug_vcpu(Sandbox& sandbox) {
  util::LockGuard guard(resume_lock_);
  return hotplug_vcpu_locked(sandbox);
}

util::Status ResumeEngine::unplug_vcpu(Sandbox& sandbox) {
  util::LockGuard guard(resume_lock_);
  return unplug_vcpu_locked(sandbox);
}

util::Status ResumeEngine::hotplug_vcpu_locked(Sandbox& sandbox) {
  auto vcpu = sandbox.add_vcpu();
  if (!vcpu) {
    return vcpu.status();
  }
  insert_sorted_into(sandbox.merge_vcpus(), **vcpu);
  record_state(sandbox, "paused");  // refresh /vcpus in the control plane
  return util::Status::ok();
}

util::Status ResumeEngine::unplug_vcpu_locked(Sandbox& sandbox) {
  if (sandbox.state() != SandboxState::kPaused) {
    return {util::StatusCode::kFailedPrecondition,
            "unplug: sandbox must be paused"};
  }
  if (sandbox.num_vcpus() <= 1) {
    return {util::StatusCode::kFailedPrecondition,
            "unplug: at least one vCPU must remain"};
  }
  sched::Vcpu& victim = sandbox.vcpu(sandbox.num_vcpus() - 1);
  if (victim.hook.is_linked()) {
    sandbox.merge_vcpus().erase(victim);
  }
  HORSE_RETURN_IF_ERROR(sandbox.remove_last_vcpu());
  record_state(sandbox, "paused");
  return util::Status::ok();
}

sched::CpuId ResumeEngine::select_cpu(const sched::Vcpu& /*vcpu*/) {
  return topology_.least_loaded_general();
}

}  // namespace horse::vmm
