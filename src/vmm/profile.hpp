// Per-virtualization-system cost profiles.
//
// The resume path's contested steps (④ sorted merge, ⑤ load update) are
// executed for real on this substrate; the steps the paper itself treats
// as constants — input parsing, cold boot, snapshot restore — differ
// between Firecracker and Xen only by fixed costs, captured here. The
// numbers come from the paper's Table 1 (cold 1.5 s, restore 1.3 ms, warm
// resume ≈1.1 µs at 1 vCPU) and from LightVM's published XenStore
// measurements for the Xen flavour.
#pragma once

#include <cstdint>
#include <string>

#include "util/time.hpp"

namespace horse::vmm {

enum class VmmKind : std::uint8_t { kFirecracker, kXen };

struct VmmProfile {
  VmmKind kind = VmmKind::kFirecracker;
  std::string name = "firecracker";

  /// Full cold start: sandbox process spawn + guest kernel boot + runtime
  /// init (Table 1: 1.5e6 µs).
  util::Nanos cold_boot = 1'500 * util::kMillisecond;
  /// FaaSnap-style snapshot restore (Table 1: 1300 µs).
  util::Nanos snapshot_restore = 1'300 * util::kMicrosecond;
  /// Control-plane cost charged per resume before the scheduler work:
  /// ioctl round trip for Firecracker/KVM, in-memory XenStore transaction
  /// for LightVM-style Xen.
  util::Nanos resume_control_plane = 120;
  /// Per-vCPU control-plane tax of the vanilla path (one ioctl per vCPU
  /// for KVM, one event-channel op for Xen).
  util::Nanos resume_per_vcpu_tax = 25;

  [[nodiscard]] static VmmProfile firecracker() {
    return VmmProfile{};
  }

  [[nodiscard]] static VmmProfile xen() {
    VmmProfile p;
    p.kind = VmmKind::kXen;
    p.name = "xen";
    // Xen with the LightVM in-memory XenStore replacement (§3.2): higher
    // fixed control-plane cost than a KVM ioctl, similar per-vCPU tax.
    p.cold_boot = 1'800 * util::kMillisecond;
    p.snapshot_restore = 1'500 * util::kMicrosecond;
    p.resume_control_plane = 180;
    p.resume_per_vcpu_tax = 30;
    return p;
  }
};

}  // namespace horse::vmm
