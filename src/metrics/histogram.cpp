#include "metrics/histogram.hpp"

#include <algorithm>
#include <bit>

namespace horse::metrics {

namespace {
constexpr int kSubBucketBits = 5;  // log2(kSubBuckets)
static_assert((1 << kSubBucketBits) == Histogram::kSubBuckets);
}  // namespace

std::size_t Histogram::bucket_index(util::Nanos value) noexcept {
  if (value < 0) {
    value = 0;
  }
  const auto v = static_cast<std::uint64_t>(value);
  if (v < kSubBuckets) {
    // Group 0 is linear: exact for tiny values.
    return static_cast<std::size_t>(v);
  }
  const int msb = 63 - std::countl_zero(v);
  const int group = msb - kSubBucketBits + 1;
  const auto sub = static_cast<std::size_t>((v >> (msb - kSubBucketBits)) & (kSubBuckets - 1));
  const std::size_t index = static_cast<std::size_t>(group) * kSubBuckets + sub;
  constexpr std::size_t kTotal =
      static_cast<std::size_t>(kBucketGroups) * kSubBuckets;
  return std::min(index, kTotal - 1);
}

util::Nanos Histogram::bucket_midpoint(std::size_t index) noexcept {
  const std::size_t group = index / kSubBuckets;
  const std::size_t sub = index % kSubBuckets;
  if (group == 0) {
    return static_cast<util::Nanos>(sub);
  }
  // Reconstruct the bucket's lower bound, then take the midpoint of its width.
  const int msb = static_cast<int>(group) + kSubBucketBits - 1;
  const std::uint64_t lower =
      (1ULL << msb) | (static_cast<std::uint64_t>(sub) << (msb - kSubBucketBits));
  const std::uint64_t width = 1ULL << (msb - kSubBucketBits);
  return static_cast<util::Nanos>(lower + width / 2);
}

void Histogram::record(util::Nanos value) noexcept { record_n(value, 1); }

void Histogram::record_n(util::Nanos value, std::uint64_t count) noexcept {
  if (count == 0) {
    return;
  }
  buckets_[bucket_index(value)] += count;
  if (total_count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  total_count_ += count;
  sum_ += static_cast<double>(value) * static_cast<double>(count);
}

double Histogram::mean() const noexcept {
  return total_count_ == 0 ? 0.0 : sum_ / static_cast<double>(total_count_);
}

util::Nanos Histogram::quantile(double q) const noexcept {
  if (total_count_ == 0) {
    return 0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(q * static_cast<double>(total_count_ - 1)) + 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target) {
      // Clamp to observed extremes so single-bucket histograms report the
      // exact recorded value rather than a bucket midpoint.
      return std::clamp(bucket_midpoint(i), min_, max_);
    }
  }
  return max_;
}

void Histogram::clear() noexcept {
  buckets_.fill(0);
  total_count_ = 0;
  sum_ = 0.0;
  min_ = 0;
  max_ = 0;
}

void Histogram::merge(const Histogram& other) noexcept {
  if (other.total_count_ == 0) {
    return;
  }
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (total_count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  total_count_ += other.total_count_;
  sum_ += other.sum_;
}

}  // namespace horse::metrics
