// CSV emission for benchmark results, so reproduced tables/figures can be
// post-processed (plotted, diffed against the paper) without scraping the
// text output. RFC-4180-style quoting for fields containing separators.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "metrics/reporter.hpp"
#include "util/status.hpp"

namespace horse::metrics {

class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  /// Numeric convenience: formats with 6 significant digits.
  void add_numeric_row(const std::vector<double>& values);

  void write(std::ostream& os) const;
  /// Write to a file path; parent directory must exist.
  [[nodiscard]] util::Status write_file(const std::string& path) const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  /// Quote a field per RFC 4180 when it contains commas/quotes/newlines.
  [[nodiscard]] static std::string escape(const std::string& field);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Convert figure series to a CSV (x column + one column per series).
[[nodiscard]] CsvWriter series_to_csv(const std::string& x_label,
                                      const std::vector<Series>& series);

}  // namespace horse::metrics
