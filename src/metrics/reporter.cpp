#include "metrics/reporter.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace horse::metrics {

TextTable::TextTable(std::string title, std::vector<std::string> headers)
    : title_(std::move(title)), headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("TextTable requires at least one column");
  }
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TextTable row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_row = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << cells[c];
      for (std::size_t pad = cells[c].size(); pad < widths[c]; ++pad) {
        os << ' ';
      }
      os << " |";
    }
    os << '\n';
  };

  if (!title_.empty()) {
    os << "== " << title_ << " ==\n";
  }
  print_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < widths.size(); ++c) {
    for (std::size_t i = 0; i < widths[c] + 2; ++i) {
      os << '-';
    }
    os << "|";
  }
  os << '\n';
  for (const auto& row : rows_) {
    print_row(row);
  }
}

std::string format_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string format_nanos(double nanos) {
  char buf[64];
  if (nanos < 1e3) {
    std::snprintf(buf, sizeof buf, "%.1f ns", nanos);
  } else if (nanos < 1e6) {
    std::snprintf(buf, sizeof buf, "%.2f us", nanos / 1e3);
  } else if (nanos < 1e9) {
    std::snprintf(buf, sizeof buf, "%.2f ms", nanos / 1e6);
  } else {
    std::snprintf(buf, sizeof buf, "%.2f s", nanos / 1e9);
  }
  return buf;
}

std::string format_percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

TextTable counters_table(std::string title,
                         const std::vector<CounterEntry>& counters) {
  TextTable table(std::move(title), {"counter", "value"});
  for (const auto& entry : counters) {
    table.add_row({entry.name, std::to_string(entry.value)});
  }
  return table;
}

void print_series(std::ostream& os, const std::string& title,
                  const std::string& x_label, const std::vector<Series>& series) {
  os << "== " << title << " ==\n";
  if (series.empty()) {
    os << "(no series)\n";
    return;
  }
  // Build headers: x label then one per series.
  std::vector<std::string> headers{x_label};
  for (const auto& s : series) {
    headers.push_back(s.name);
  }
  TextTable body("", headers);
  const std::size_t points = series.front().xs.size();
  for (std::size_t i = 0; i < points; ++i) {
    std::vector<std::string> row;
    row.push_back(format_double(series.front().xs[i], 0));
    for (const auto& s : series) {
      row.push_back(i < s.ys.size() ? format_double(s.ys[i], 2) : "-");
    }
    body.add_row(std::move(row));
  }
  body.print(os);
}

}  // namespace horse::metrics
