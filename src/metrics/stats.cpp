#include "metrics/stats.hpp"

#include <algorithm>
#include <array>
#include <cmath>

namespace horse::metrics {

double t_critical_95(std::size_t n) {
  // Index by degrees of freedom (n - 1); df >= 30 uses z ~ 1.96.
  static constexpr std::array<double, 31> kTable = {
      0.0,    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
      2.228,  2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093,
      2.086,  2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045,
      2.042};
  if (n < 2) {
    return 0.0;
  }
  const std::size_t df = n - 1;
  if (df < kTable.size()) {
    return kTable[df];
  }
  return 1.96;
}

Summary SampleStats::summarize() const {
  Summary out;
  out.n = samples_.size();
  if (out.n == 0) {
    return out;
  }
  double sum = 0.0;
  out.min = samples_.front();
  out.max = samples_.front();
  for (double v : samples_) {
    sum += v;
    out.min = std::min(out.min, v);
    out.max = std::max(out.max, v);
  }
  out.mean = sum / static_cast<double>(out.n);
  if (out.n >= 2) {
    double sq = 0.0;
    for (double v : samples_) {
      const double d = v - out.mean;
      sq += d * d;
    }
    out.stddev = std::sqrt(sq / static_cast<double>(out.n - 1));
    out.ci95_half = t_critical_95(out.n) * out.stddev /
                    std::sqrt(static_cast<double>(out.n));
  }
  return out;
}

double SampleStats::percentile(double p) const {
  if (samples_.empty()) {
    return 0.0;
  }
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

}  // namespace horse::metrics
