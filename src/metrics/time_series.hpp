// Time-indexed measurement recording.
//
// The §5.2-style experiments sample CPU/memory/frequency "each 500 ms";
// TimeSeries is that recorder: (timestamp, value) pairs with summary and
// window queries, plus fixed-interval resampling for table output.
#pragma once

#include <cstddef>
#include <vector>

#include "metrics/stats.hpp"
#include "util/time.hpp"

namespace horse::metrics {

class TimeSeries {
 public:
  struct Point {
    util::Nanos time = 0;
    double value = 0.0;
  };

  void record(util::Nanos time, double value) {
    points_.push_back({time, value});
  }

  [[nodiscard]] std::size_t size() const noexcept { return points_.size(); }
  [[nodiscard]] bool empty() const noexcept { return points_.empty(); }
  [[nodiscard]] const std::vector<Point>& points() const noexcept {
    return points_;
  }

  /// Summary over all values.
  [[nodiscard]] Summary summarize() const {
    SampleStats stats;
    for (const Point& point : points_) {
      stats.add(point.value);
    }
    return stats.summarize();
  }

  /// Summary restricted to [begin, end).
  [[nodiscard]] Summary summarize_window(util::Nanos begin,
                                         util::Nanos end) const {
    SampleStats stats;
    for (const Point& point : points_) {
      if (point.time >= begin && point.time < end) {
        stats.add(point.value);
      }
    }
    return stats.summarize();
  }

  /// Last-value-carried-forward resample at fixed `interval`, starting at
  /// the first sample's timestamp. Empty input gives an empty output.
  [[nodiscard]] std::vector<Point> resample(util::Nanos interval) const;

  /// Time-weighted mean: each value holds until the next sample (step
  /// function), which is how frequency/occupancy averages are defined.
  [[nodiscard]] double time_weighted_mean(util::Nanos end) const;

  void clear() noexcept { points_.clear(); }

 private:
  std::vector<Point> points_;
};

}  // namespace horse::metrics
