#include "metrics/csv.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <stdexcept>

namespace horse::metrics {

CsvWriter::CsvWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("CsvWriter: need at least one column");
  }
}

void CsvWriter::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("CsvWriter: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

void CsvWriter::add_numeric_row(const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (const double value : values) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", value);
    cells.emplace_back(buf);
  }
  add_row(std::move(cells));
}

std::string CsvWriter::escape(const std::string& field) {
  if (field.find_first_of(",\"\n\r") == std::string::npos) {
    return field;
  }
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') {
      out += "\"\"";
    } else {
      out += c;
    }
  }
  out += '"';
  return out;
}

void CsvWriter::write(std::ostream& os) const {
  auto write_row = [&os](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i > 0) {
        os << ',';
      }
      os << escape(cells[i]);
    }
    os << '\n';
  };
  write_row(headers_);
  for (const auto& row : rows_) {
    write_row(row);
  }
}

util::Status CsvWriter::write_file(const std::string& path) const {
  std::ofstream file(path);
  if (!file) {
    return {util::StatusCode::kUnavailable, "csv: cannot open " + path};
  }
  write(file);
  return file.good() ? util::Status::ok()
                     : util::Status{util::StatusCode::kInternal,
                                    "csv: write failed for " + path};
}

CsvWriter series_to_csv(const std::string& x_label,
                        const std::vector<Series>& series) {
  std::vector<std::string> headers{x_label};
  for (const auto& s : series) {
    headers.push_back(s.name);
  }
  CsvWriter csv(std::move(headers));
  if (series.empty()) {
    return csv;
  }
  const std::size_t points = series.front().xs.size();
  for (std::size_t i = 0; i < points; ++i) {
    std::vector<double> row{series.front().xs[i]};
    for (const auto& s : series) {
      row.push_back(i < s.ys.size() ? s.ys[i] : 0.0);
    }
    csv.add_numeric_row(row);
  }
  return csv;
}

}  // namespace horse::metrics
