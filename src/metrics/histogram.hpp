// Log-bucketed latency histogram (HDR-histogram style).
//
// Latencies in this project span seven orders of magnitude (150 ns HORSE
// resume to 1.5 s cold boot); a log-linear bucket layout keeps relative
// quantile error bounded (~1/kSubBuckets) across the whole range with a
// fixed, allocation-free footprint, which matters because histograms are
// updated from inside simulated invocation completions.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "util/time.hpp"

namespace horse::metrics {

class Histogram {
 public:
  static constexpr int kBucketGroups = 40;   // covers up to ~2^40 ns (~18 min)
  static constexpr int kSubBuckets = 32;     // ~3% relative resolution

  Histogram() = default;

  void record(util::Nanos value) noexcept;
  void record_n(util::Nanos value, std::uint64_t count) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return total_count_; }
  [[nodiscard]] util::Nanos min() const noexcept { return total_count_ ? min_ : 0; }
  [[nodiscard]] util::Nanos max() const noexcept { return total_count_ ? max_ : 0; }
  [[nodiscard]] double mean() const noexcept;

  /// Quantile in [0,1]; returns a representative value of the bucket the
  /// quantile falls into. 0 with no samples.
  [[nodiscard]] util::Nanos quantile(double q) const noexcept;

  [[nodiscard]] util::Nanos p50() const noexcept { return quantile(0.50); }
  [[nodiscard]] util::Nanos p95() const noexcept { return quantile(0.95); }
  [[nodiscard]] util::Nanos p99() const noexcept { return quantile(0.99); }
  [[nodiscard]] util::Nanos p999() const noexcept { return quantile(0.999); }

  void clear() noexcept;

  /// Merge another histogram into this one (used to combine per-thread
  /// recorders after an experiment).
  void merge(const Histogram& other) noexcept;

 private:
  static std::size_t bucket_index(util::Nanos value) noexcept;
  static util::Nanos bucket_midpoint(std::size_t index) noexcept;

  std::array<std::uint64_t, static_cast<std::size_t>(kBucketGroups) * kSubBuckets>
      buckets_{};
  std::uint64_t total_count_ = 0;
  double sum_ = 0.0;
  util::Nanos min_ = 0;
  util::Nanos max_ = 0;
};

}  // namespace horse::metrics
