// Plain-text table/series rendering shared by every bench harness, so the
// reproduced tables and figure series all print in one consistent format
// that is easy to diff against the paper's numbers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace horse::metrics {

/// A rectangular text table with a title, column headers, and rows.
class TextTable {
 public:
  TextTable(std::string title, std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Render with column widths fitted to content.
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helpers: fixed-precision numbers and time values with unit
/// auto-scaling (ns / µs / ms / s), matching how the paper quotes values.
[[nodiscard]] std::string format_double(double value, int precision = 2);
[[nodiscard]] std::string format_nanos(double nanos);
[[nodiscard]] std::string format_percent(double fraction, int precision = 2);

/// One named monotonic counter, e.g. a degradation-ladder event count or
/// a fault-injection site's fire count.
struct CounterEntry {
  std::string name;
  std::uint64_t value = 0;
};

/// Render a name/value counter listing (degradation-ladder events,
/// fault-site hit/fire counts) in the shared table format so experiment
/// logs carry the fallback accounting next to the latency tables.
[[nodiscard]] TextTable counters_table(std::string title,
                                       const std::vector<CounterEntry>& counters);

/// One (x, y) series of a figure, e.g. resume time vs vCPU count.
struct Series {
  std::string name;
  std::vector<double> xs;
  std::vector<double> ys;
};

/// Print aligned multi-series data (one x column, one column per series),
/// the textual equivalent of one paper figure.
void print_series(std::ostream& os, const std::string& title,
                  const std::string& x_label, const std::vector<Series>& series);

}  // namespace horse::metrics
