#include "metrics/time_series.hpp"

#include <algorithm>

namespace horse::metrics {

std::vector<TimeSeries::Point> TimeSeries::resample(util::Nanos interval) const {
  std::vector<Point> out;
  if (points_.empty() || interval <= 0) {
    return out;
  }
  // Points are expected in time order (recorders append monotonically);
  // be robust to violations by working on a sorted copy.
  std::vector<Point> sorted = points_;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Point& lhs, const Point& rhs) {
                     return lhs.time < rhs.time;
                   });
  util::Nanos next = sorted.front().time;
  std::size_t cursor = 0;
  double current = sorted.front().value;
  const util::Nanos last = sorted.back().time;
  while (next <= last) {
    while (cursor < sorted.size() && sorted[cursor].time <= next) {
      current = sorted[cursor].value;
      ++cursor;
    }
    out.push_back({next, current});
    next += interval;
  }
  return out;
}

double TimeSeries::time_weighted_mean(util::Nanos end) const {
  if (points_.empty()) {
    return 0.0;
  }
  std::vector<Point> sorted = points_;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Point& lhs, const Point& rhs) {
                     return lhs.time < rhs.time;
                   });
  if (end <= sorted.front().time) {
    return sorted.front().value;
  }
  double weighted = 0.0;
  util::Nanos covered = 0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const util::Nanos start = sorted[i].time;
    const util::Nanos stop =
        i + 1 < sorted.size() ? std::min(sorted[i + 1].time, end) : end;
    if (stop <= start) {
      continue;
    }
    weighted += sorted[i].value * static_cast<double>(stop - start);
    covered += stop - start;
  }
  return covered == 0 ? sorted.back().value
                      : weighted / static_cast<double>(covered);
}

}  // namespace horse::metrics
