// Small-sample summary statistics with confidence intervals.
//
// The paper runs each experiment 10× and reports 95% confidence intervals
// ≤ 3% of the mean; SampleStats reproduces that methodology (Student's t
// with the exact critical values for small n).
#pragma once

#include <cstddef>
#include <vector>

namespace horse::metrics {

struct Summary {
  double mean = 0.0;
  double stddev = 0.0;     // sample standard deviation (n-1)
  double ci95_half = 0.0;  // half-width of the 95% confidence interval
  double min = 0.0;
  double max = 0.0;
  std::size_t n = 0;

  /// CI half-width as a fraction of the mean; the paper's acceptance
  /// criterion is <= 0.03.
  [[nodiscard]] double ci95_relative() const noexcept {
    return mean == 0.0 ? 0.0 : ci95_half / mean;
  }
};

class SampleStats {
 public:
  void add(double value) { samples_.push_back(value); }
  void clear() noexcept { samples_.clear(); }

  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
  [[nodiscard]] const std::vector<double>& samples() const noexcept { return samples_; }

  [[nodiscard]] Summary summarize() const;

  /// Exact order-statistic percentile (linear interpolation between ranks).
  [[nodiscard]] double percentile(double p) const;

 private:
  std::vector<double> samples_;
};

/// Two-sided Student's t critical value at 95% confidence for n-1 degrees
/// of freedom (exact table for small n, normal approximation beyond).
[[nodiscard]] double t_critical_95(std::size_t n);

}  // namespace horse::metrics
