// Lock contention / occupancy accounting for the sharded control plane.
//
// The big-lock platform had one number that mattered (time spent queued on
// control_mutex_); the sharded design has many small locks whose health is
// only visible statistically. ContentionMeter is the cheap primitive the
// shards and the ull manager hang off their mutexes: every acquisition
// records whether it had to wait, so a bench or experiment can report
// "x% of shard acquisitions contended" next to its throughput numbers
// (bench/macro_throughput.cpp does exactly that).
//
// The meter is deliberately approximate — relaxed atomics, no timing — so
// metering never perturbs the paths it observes.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>

namespace horse::metrics {

/// Snapshot of one lock's acquisition accounting.
struct ContentionStats {
  std::uint64_t acquisitions = 0;
  /// Acquisitions that found the lock held and had to wait.
  std::uint64_t contended = 0;

  [[nodiscard]] double contended_fraction() const noexcept {
    return acquisitions == 0
               ? 0.0
               : static_cast<double>(contended) /
                     static_cast<double>(acquisitions);
  }

  ContentionStats& operator+=(const ContentionStats& other) noexcept {
    acquisitions += other.acquisitions;
    contended += other.contended;
    return *this;
  }
};

/// Relaxed-atomic acquisition counters; safe to record from any thread.
class ContentionMeter {
 public:
  void record(bool was_contended) noexcept {
    acquisitions_.fetch_add(1, std::memory_order_relaxed);
    if (was_contended) {
      contended_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  [[nodiscard]] ContentionStats snapshot() const noexcept {
    ContentionStats out;
    out.acquisitions = acquisitions_.load(std::memory_order_relaxed);
    out.contended = contended_.load(std::memory_order_relaxed);
    return out;
  }

 private:
  std::atomic<std::uint64_t> acquisitions_{0};
  std::atomic<std::uint64_t> contended_{0};
};

/// std::scoped_lock replacement that feeds a ContentionMeter: try_lock
/// first (uncontended fast path), fall back to a blocking lock and count
/// the wait. Works with any Lockable providing try_lock()/lock()/unlock().
template <typename Mutex>
class MeteredLock {
 public:
  MeteredLock(Mutex& mutex, ContentionMeter& meter) : mutex_(mutex) {
    const bool contended = !mutex_.try_lock();
    if (contended) {
      mutex_.lock();
    }
    meter.record(contended);
  }
  ~MeteredLock() { mutex_.unlock(); }

  MeteredLock(const MeteredLock&) = delete;
  MeteredLock& operator=(const MeteredLock&) = delete;

 private:
  Mutex& mutex_;
};

}  // namespace horse::metrics
