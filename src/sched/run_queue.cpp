#include "sched/run_queue.hpp"

namespace horse::sched {

void RunQueue::insert_sorted(Vcpu& vcpu) noexcept {
  auto it = queue_.begin();
  const auto end = queue_.end();
  while (it != end && it->credit <= vcpu.credit) {
    ++it;
  }
  queue_.insert(it, vcpu);
  vcpu.state = VcpuState::kRunnable;
  vcpu.last_cpu = cpu_;
  bump_version();
}

void RunQueue::push_back(Vcpu& vcpu) noexcept {
  queue_.push_back(vcpu);
  vcpu.state = VcpuState::kRunnable;
  vcpu.last_cpu = cpu_;
  bump_version();
}

void RunQueue::remove(Vcpu& vcpu) noexcept {
  queue_.erase(vcpu);
  bump_version();
}

Vcpu* RunQueue::pop_front() noexcept {
  if (queue_.empty()) {
    return nullptr;
  }
  Vcpu& vcpu = queue_.pop_front();
  bump_version();
  return &vcpu;
}

bool RunQueue::is_sorted() const noexcept {
  // const_cast is confined to iteration; the list is logically const here.
  auto& list = const_cast<VcpuList&>(queue_);
  Credit prev = 0;
  bool first = true;
  for (const Vcpu& vcpu : list) {
    if (!first && vcpu.credit < prev) {
      return false;
    }
    prev = vcpu.credit;
    first = false;
  }
  return true;
}

double RunQueue::update_load_enqueue() noexcept {
  util::LockGuard guard(load_lock_);
  load_ = pelt_.apply_once(load_);
  return load_;
}

double RunQueue::update_load_coalesced(std::uint32_t n) noexcept {
  util::LockGuard guard(load_lock_);
  load_ = pelt_.apply_closed_form(load_, n);
  return load_;
}

double RunQueue::apply_precomputed_load(double alpha_n,
                                        double beta_geo_sum) noexcept {
  util::LockGuard guard(load_lock_);
  load_ = alpha_n * load_ + beta_geo_sum;
  return load_;
}

void RunQueue::decay_load(std::uint32_t periods) noexcept {
  util::LockGuard guard(load_lock_);
  load_ = pelt_.decay(load_, periods);
}

double RunQueue::load() const noexcept {
  util::LockGuard guard(load_lock_);
  return load_;
}

void RunQueue::set_load_for_test(double load) noexcept {
  util::LockGuard guard(load_lock_);
  load_ = load;
}

}  // namespace horse::sched
