#include "sched/run_queue.hpp"

#include <string>

#include "sched/credit_scan.hpp"
#include "util/dcheck.hpp"
#include "util/yield_point.hpp"

namespace horse::sched {

void RunQueue::insert_sorted(Vcpu& vcpu) noexcept {
  auto it = queue_.begin();
  const auto end = queue_.end();
  std::int32_t position = 0;
  while (it != end && it->credit <= vcpu.credit) {
    HORSE_YIELD_POINT("runq.insert_scan");
    ++it;
    ++position;
  }
  HORSE_YIELD_POINT("runq.insert_link");
  queue_.insert(it, vcpu);
  vcpu.state = VcpuState::kRunnable;
  vcpu.last_cpu = cpu_;
  HORSE_YIELD_POINT("runq.bump_version");
  journal_record(QueueDelta::Kind::kInsert, position, vcpu.credit, &vcpu.hook);
  HORSE_DCHECK_OK(check_invariants(/*require_sorted=*/false));
}

std::size_t RunQueue::merge_sorted(VcpuList& incoming) noexcept {
  auto it = queue_.begin();
  const auto end = queue_.end();
  std::int32_t position = 0;
  Credit prev_key = 0;
  bool first = true;
  std::size_t merged = 0;

  while (!incoming.empty()) {
    Vcpu& vcpu = incoming.pop_front();
    const Credit key = vcpu.credit;
    if (!first && key < prev_key) {
      // Out-of-order element: restart from the head so the placement (and
      // tie order) matches what insert_sorted() would have produced.
      it = queue_.begin();
      position = 0;
    }
    while (it != end && it->credit <= key) {
      HORSE_YIELD_POINT("runq.merge_scan");
      // Pull the node after next into cache while we compare this one;
      // harmless when it resolves past the sentinel (prefetch never
      // faults).
      credit_scan::prefetch(VcpuList::from_hook(it->hook.next));
      ++it;
      ++position;
    }
    HORSE_YIELD_POINT("runq.merge_link");
    queue_.insert(it, vcpu);
    vcpu.state = VcpuState::kRunnable;
    vcpu.last_cpu = cpu_;
    stage_delta(merged, QueueDelta::Kind::kInsert, position, key, &vcpu.hook);
    ++position;  // the inserted node now precedes `it`
    prev_key = key;
    first = false;
    ++merged;
  }

  if (merged > 0) {
    HORSE_YIELD_POINT("runq.bump_version");
    publish_staged_deltas(merged);
  }
  HORSE_DCHECK_OK(check_invariants(/*require_sorted=*/false));
  return merged;
}

void RunQueue::push_back(Vcpu& vcpu) noexcept {
  HORSE_YIELD_POINT("runq.push_back");
  const auto position = static_cast<std::int32_t>(queue_.size());
  queue_.push_back(vcpu);
  vcpu.state = VcpuState::kRunnable;
  vcpu.last_cpu = cpu_;
  journal_record(QueueDelta::Kind::kInsert, position, vcpu.credit, &vcpu.hook);
  HORSE_DCHECK_OK(check_invariants(/*require_sorted=*/false));
}

void RunQueue::remove(Vcpu& vcpu) noexcept {
  HORSE_YIELD_POINT("runq.remove");
  queue_.erase(vcpu);
  journal_record(QueueDelta::Kind::kRemove, QueueDelta::kUnknownPosition,
                 vcpu.credit, &vcpu.hook);
  HORSE_DCHECK_OK(check_invariants(/*require_sorted=*/false));
}

Vcpu* RunQueue::pop_front() noexcept {
  if (queue_.empty()) {
    return nullptr;
  }
  HORSE_YIELD_POINT("runq.pop_front");
  Vcpu& vcpu = queue_.pop_front();
  journal_record(QueueDelta::Kind::kRemove, 0, vcpu.credit, &vcpu.hook);
  HORSE_DCHECK_OK(check_invariants(/*require_sorted=*/false));
  return &vcpu;
}

bool RunQueue::is_sorted() const noexcept {
  // const_cast is confined to iteration; the list is logically const here.
  auto& list = const_cast<VcpuList&>(queue_);
  Credit prev = 0;
  bool first = true;
  for (const Vcpu& vcpu : list) {
    if (!first && vcpu.credit < prev) {
      return false;
    }
    prev = vcpu.credit;
    first = false;
  }
  return true;
}

util::Status RunQueue::check_invariants(bool require_sorted) const noexcept {
  // const_cast confined to hook traversal, as in is_sorted().
  auto& list = const_cast<VcpuList&>(queue_);
  const util::ListHook* sentinel = list.sentinel();
  const std::size_t declared = queue_.size();

  const util::ListHook* node = sentinel->next;
  const util::ListHook* prev = sentinel;
  std::size_t walked = 0;
  Credit last_credit = 0;
  bool first = true;
  // Allow exactly `declared` hops before we must be back at the sentinel;
  // anything longer is a cycle or a foreign chain spliced in twice.
  while (node != sentinel) {
    if (node == nullptr) {
      return {util::StatusCode::kInternal,
              "runq invariant: null hook reached after " +
                  std::to_string(walked) + " hops (chain escaped the ring)"};
    }
    if (node->prev != prev) {
      return {util::StatusCode::kInternal,
              "runq invariant: prev/next asymmetry at hop " +
                  std::to_string(walked)};
    }
    if (walked >= declared) {
      return {util::StatusCode::kInternal,
              "runq invariant: walk exceeds declared size " +
                  std::to_string(declared) + " (cycle or lost add_size)"};
    }
    const Vcpu* vcpu = VcpuList::from_hook(const_cast<util::ListHook*>(node));
    if (require_sorted && !first && vcpu->credit < last_credit) {
      return {util::StatusCode::kInternal,
              "runq invariant: credit order violated at hop " +
                  std::to_string(walked)};
    }
    last_credit = vcpu->credit;
    first = false;
    ++walked;
    prev = node;
    node = node->next;
  }
  if (sentinel->prev != prev) {
    return {util::StatusCode::kInternal,
            "runq invariant: sentinel->prev does not close the ring"};
  }
  if (walked != declared) {
    return {util::StatusCode::kInternal,
            "runq invariant: walked " + std::to_string(walked) +
                " nodes but size() is " + std::to_string(declared) +
                " (lost or duplicated nodes)"};
  }
  if (declared > 0 && version() == 0) {
    return {util::StatusCode::kInternal,
            "runq invariant: non-empty queue with version 0 (mutation "
            "did not bump the version counter)"};
  }
  return util::Status::ok();
}

double RunQueue::update_load_enqueue() noexcept {
  util::LockGuard guard(load_lock_);
  HORSE_YIELD_POINT("runq.load_enqueue");
  load_ = pelt_.apply_once(load_);
  return load_;
}

double RunQueue::update_load_coalesced(std::uint32_t n) noexcept {
  util::LockGuard guard(load_lock_);
  HORSE_YIELD_POINT("runq.load_coalesced");
  load_ = pelt_.apply_closed_form(load_, n);
  return load_;
}

double RunQueue::apply_precomputed_load(double alpha_n,
                                        double beta_geo_sum) noexcept {
  util::LockGuard guard(load_lock_);
  HORSE_YIELD_POINT("runq.load_fma");
  load_ = alpha_n * load_ + beta_geo_sum;
  return load_;
}

void RunQueue::decay_load(std::uint32_t periods) noexcept {
  util::LockGuard guard(load_lock_);
  load_ = pelt_.decay(load_, periods);
}

double RunQueue::load() const noexcept {
  util::LockGuard guard(load_lock_);
  return load_;
}

void RunQueue::set_load_for_test(double load) noexcept {
  util::LockGuard guard(load_lock_);
  load_ = load;
}

}  // namespace horse::sched
