#include "sched/pelt_entity.hpp"

#include <cmath>

namespace horse::sched {

void EntityLoad::decay_to(util::Nanos now) {
  if (now <= last_update_) {
    return;
  }
  const auto periods =
      static_cast<std::uint32_t>((now - last_update_) / kPeltPeriod);
  if (periods > 0) {
    load_avg_ *= std::pow(params_.alpha, static_cast<double>(periods));
    last_update_ += static_cast<util::Nanos>(periods) * kPeltPeriod;
  }
}

void EntityLoad::update_idle(util::Nanos now) { decay_to(now); }

void EntityLoad::update_running(util::Nanos now, util::Nanos duration) {
  if (duration <= 0) {
    decay_to(now);
    return;
  }
  // Idle gap before this run segment decays history first.
  const util::Nanos start = now - duration;
  decay_to(start);
  // Accumulate whole periods of running: each applies one αx+β step,
  // scaled by the fraction of the period actually run.
  util::Nanos remaining = duration;
  while (remaining > 0) {
    const util::Nanos chunk =
        remaining >= kPeltPeriod ? kPeltPeriod : remaining;
    const double fraction =
        static_cast<double>(chunk) / static_cast<double>(kPeltPeriod);
    load_avg_ = params_.alpha * load_avg_ + params_.beta * fraction;
    remaining -= chunk;
  }
  last_update_ = now;
}

}  // namespace horse::sched
