// Branchless / SIMD-assisted credit comparisons for the resume hot path.
//
// Both the 𝒫²𝒮ℳ anchor search (upper_bound over the creditsB snapshot)
// and the delta-replay searches over `pos_a_` sit inside merge/repair
// windows measured in nanoseconds, where a mispredicted branch (~15
// cycles) costs as much as the comparison loop itself. Credits arriving
// from a just-resumed sandbox are effectively random relative to queue
// contents, so the classic `if (mid < key)` binary search mispredicts
// ~50% of its steps. The routines here replace that with:
//
//  * branchless_upper/lower_bound — a uniform-shape halving loop whose
//    two updates hang off one comparison, which GCC/Clang compile to
//    cmov; no data-dependent branches, identical results to the std::
//    algorithms on sorted input.
//  * simd_count_le — vectorized "how many elements <= key". On a sorted
//    array that count IS the upper_bound index, and for the short arrays
//    the hot path sees (a handful of runs in B) a linear SIMD count beats
//    log-n probing because every load is sequential and predictable.
//    Compiled with AVX2/SSE4.2 only when the build already targets those
//    ISAs (we add no -m flags); otherwise an unrolled scalar form that
//    still compiles branch-free.
//  * credit_upper_bound — the hybrid the callers use: linear SIMD count
//    below kLinearCutoff, branchless halving above.
//
// Everything here is allocation-free, noexcept, and header-only so the
// comparisons inline into the merge loops.
#pragma once

#include <cstddef>
#include <cstdint>

#if defined(__AVX2__) || defined(__SSE4_2__)
#include <immintrin.h>
#endif

namespace horse::sched::credit_scan {

/// Count of leading entries to keep before `key`'s insertion point, i.e.
/// std::upper_bound(first, first + n, key) - first, on sorted input.
template <typename T>
[[nodiscard]] inline std::size_t branchless_upper_bound(
    const T* first, std::size_t n, T key) noexcept {
  const T* base = first;
  while (n > 1) {
    const std::size_t half = n / 2;
    // One comparison feeds both updates -> cmov, never a branch.
    base = (base[half - 1] <= key) ? base + half : base;
    n -= half;
  }
  if (n == 1 && *base <= key) ++base;
  return static_cast<std::size_t>(base - first);
}

/// std::lower_bound(first, first + n, key) - first, on sorted input.
template <typename T>
[[nodiscard]] inline std::size_t branchless_lower_bound(
    const T* first, std::size_t n, T key) noexcept {
  const T* base = first;
  while (n > 1) {
    const std::size_t half = n / 2;
    base = (base[half - 1] < key) ? base + half : base;
    n -= half;
  }
  if (n == 1 && *base < key) ++base;
  return static_cast<std::size_t>(base - first);
}

/// Number of elements <= key, order-free: usable on sorted input as an
/// upper_bound index. int64 credits only (the Credit representation).
[[nodiscard]] inline std::size_t simd_count_le(const std::int64_t* first,
                                               std::size_t n,
                                               std::int64_t key) noexcept {
  std::size_t count = 0;
  std::size_t i = 0;
#if defined(__AVX2__)
  const __m256i vkey = _mm256_set1_epi64x(key);
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(first + i));
    // (v > key) per lane; lanes NOT greater are the <= ones.
    const __m256i gt = _mm256_cmpgt_epi64(v, vkey);
    const int mask = _mm256_movemask_pd(_mm256_castsi256_pd(gt));
    count += 4 - static_cast<std::size_t>(__builtin_popcount(mask));
  }
#elif defined(__SSE4_2__)
  const __m128i vkey = _mm_set1_epi64x(key);
  for (; i + 2 <= n; i += 2) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(first + i));
    const __m128i gt = _mm_cmpgt_epi64(v, vkey);
    const int mask = _mm_movemask_pd(_mm_castsi128_pd(gt));
    count += 2 - static_cast<std::size_t>(__builtin_popcount(mask));
  }
#endif
  // Scalar tail (or whole array without SIMD): the comparison result is
  // consumed as an integer, so there is no branch to mispredict.
  for (; i < n; ++i) count += static_cast<std::size_t>(first[i] <= key);
  return count;
}

/// Below this length a linear SIMD/branch-free count over contiguous
/// credits beats binary probing (sequential loads, no mispredictions).
/// Typical reserved-queue B snapshots hold well under this many runs.
inline constexpr std::size_t kLinearCutoff = 32;

/// Hybrid upper_bound over a sorted credit array — the entry point used
/// by the 𝒫²𝒮ℳ anchor search and the fallback merge walk.
[[nodiscard]] inline std::size_t credit_upper_bound(
    const std::int64_t* first, std::size_t n, std::int64_t key) noexcept {
  if (n <= kLinearCutoff) return simd_count_le(first, n, key);
  return branchless_upper_bound(first, n, key);
}

/// Software prefetch of the cache line holding `address` (read intent).
/// No-op where the builtin is unavailable.
inline void prefetch(const void* address) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(address, /*rw=*/0, /*locality=*/3);
#else
  (void)address;
#endif
}

}  // namespace horse::sched::credit_scan
