#include "sched/credit2.hpp"

#include <vector>

namespace horse::sched {

void Credit2Scheduler::trace_event(TraceEvent event, CpuId cpu,
                                   const Vcpu* vcpu) noexcept {
  if (trace_ == nullptr) {
    return;
  }
  const util::Nanos when = trace_clock_ ? trace_clock_() : ++trace_seq_;
  trace_->record(when, event, cpu, vcpu != nullptr ? vcpu->id : 0,
                 vcpu != nullptr ? vcpu->sandbox : 0);
}

void Credit2Scheduler::enqueue(Vcpu& vcpu, CpuId cpu) {
  RunQueue& queue = topology_.queue(cpu);
  {
    util::LockGuard guard(queue.lock());
    queue.insert_sorted(vcpu);
  }
  queue.update_load_enqueue();
}

void Credit2Scheduler::dequeue(Vcpu& vcpu) {
  RunQueue& queue = topology_.queue(vcpu.last_cpu);
  util::LockGuard guard(queue.lock());
  queue.remove(vcpu);
}

Vcpu* Credit2Scheduler::schedule(CpuId cpu) {
  RunQueue& queue = topology_.queue(cpu);
  util::LockGuard guard(queue.lock());
  Vcpu* next = queue.peek_front();
  if (next == nullptr) {
    return nullptr;
  }
  if (next->credit <= 0) {
    reset_credits(queue);
    next = queue.peek_front();
  }
  queue.pop_front();
  next->state = VcpuState::kRunning;
  trace_event(TraceEvent::kDispatch, cpu, next);
  return next;
}

void Credit2Scheduler::charge_and_requeue(Vcpu& vcpu, util::Nanos ran,
                                          bool still_runnable) {
  // Credit burn is inversely proportional to weight: heavier vCPUs burn
  // slower, as in credit2's burn_credits().
  const auto burn = static_cast<Credit>(
      ran * params_.reference_weight / (vcpu.weight == 0 ? 1 : vcpu.weight));
  vcpu.credit -= burn;
  vcpu.cpu_time += ran;
  if (still_runnable) {
    RunQueue& queue = topology_.queue(vcpu.last_cpu);
    {
      util::LockGuard guard(queue.lock());
      queue.insert_sorted(vcpu);
    }
    trace_event(TraceEvent::kRequeue, vcpu.last_cpu, &vcpu);
  } else {
    vcpu.state = VcpuState::kOffline;
  }
}

void Credit2Scheduler::dispatch_direct(Vcpu& vcpu, CpuId cpu) {
  vcpu.last_cpu = cpu;
  vcpu.state = VcpuState::kRunning;
  trace_event(TraceEvent::kDispatch, cpu, &vcpu);
}

Credit2Scheduler::WakeResult Credit2Scheduler::wake(
    Vcpu& vcpu, const Vcpu* running_on_target) {
  WakeResult result;
  CpuId target = vcpu.last_cpu;
  // Affinity first; fall back when the remembered CPU is reserved (and
  // the waker is not a uLL vCPU already assigned there) or clearly worse.
  const bool affinity_valid =
      target < topology_.num_cpus() &&
      (!topology_.is_reserved(target) || vcpu.priority > 0 ||
       vcpu.state == VcpuState::kPaused);
  const CpuId least = topology_.least_loaded_general();
  if (!affinity_valid ||
      topology_.queue(target).size() > topology_.queue(least).size() + 1) {
    target = least;
  }
  enqueue(vcpu, target);
  result.cpu = target;
  result.preempt =
      running_on_target != nullptr && should_preempt(*running_on_target, vcpu);
  return result;
}

void Credit2Scheduler::reset_credits(RunQueue& queue) {
  // credit2 resets by adding reset_credit to every vCPU on the queue; the
  // relative order is preserved, so the sorted list stays sorted and no
  // re-sort is needed.
  for (Vcpu& vcpu : queue.list()) {
    vcpu.credit += params_.reset_credit;
  }
  queue.bump_version();
  ++credit_resets_;
  trace_event(TraceEvent::kCreditReset, queue.cpu(), nullptr);
}

}  // namespace horse::sched
