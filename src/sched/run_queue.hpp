// A per-CPU run queue: credit-sorted intrusive list of vCPUs plus the
// lock-protected load variable the DVFS governor reads.
//
// This is the data structure both resume paths contend on:
//   * vanilla step ④ calls insert_sorted() once per vCPU (O(queue length)
//     each), step ⑤ calls update_load_enqueue() once per vCPU under the
//     load lock;
//   * HORSE splices a pre-merged chain with 𝒫²𝒮ℳ and applies one
//     coalesced load update.
// A monotonically increasing version counter lets 𝒫²𝒮ℳ's precompute layer
// detect structural changes (§4.1.3: "the updates are performed each time
// ull_runqueue is updated").
#pragma once

#include <atomic>
#include <cstdint>

#include "sched/pelt.hpp"
#include "sched/vcpu.hpp"
#include "util/spinlock.hpp"
#include "util/status.hpp"

namespace horse::sched {

class RunQueue {
 public:
  explicit RunQueue(CpuId cpu = 0, PeltParams pelt = {})
      : cpu_(cpu), pelt_(pelt) {}

  RunQueue(const RunQueue&) = delete;
  RunQueue& operator=(const RunQueue&) = delete;

  [[nodiscard]] CpuId cpu() const noexcept { return cpu_; }

  // --- structural operations (caller holds lock() unless noted) ---------

  /// Vanilla step ④: walk the queue and link `vcpu` before the first
  /// element with a larger credit. O(n) in the queue length.
  void insert_sorted(Vcpu& vcpu) noexcept;

  /// Append without ordering (used when the caller already knows the
  /// position, e.g. credit refill rebuilds).
  void push_back(Vcpu& vcpu) noexcept;

  /// Remove a specific vCPU (pause path, migration).
  void remove(Vcpu& vcpu) noexcept;

  /// Pop the head (lowest credit) or nullptr when empty.
  Vcpu* pop_front() noexcept;

  [[nodiscard]] Vcpu* peek_front() noexcept {
    return queue_.empty() ? nullptr : &queue_.front();
  }

  [[nodiscard]] bool empty() const noexcept { return queue_.size() == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return queue_.size(); }

  /// Checks ascending-credit order; test/debug helper, O(n).
  [[nodiscard]] bool is_sorted() const noexcept;

  /// Full structural audit, O(n). Verifies, walking from the sentinel:
  ///   * prev/next symmetry at every hook (node->next->prev == node),
  ///   * the walk closes back at the sentinel within size() steps (no
  ///     cycles, no lost nodes — the failure mode of a mis-spliced merge),
  ///   * the walked node count equals size() (the count the 𝒫²𝒮ℳ splice
  ///     path maintains out-of-band via add_size),
  ///   * size/version consistency: a non-empty queue has a non-zero
  ///     version (every way a node gets in bumps it),
  ///   * ascending credit order when `require_sorted` (run queues built
  ///     via insert_sorted / 𝒫²𝒮ℳ merges must be sorted; push_back-built
  ///     staging queues may legitimately not be).
  /// Returns the first violation found. Mutators self-audit with the
  /// structural subset under HORSE_DCHECK; release builds never call this.
  [[nodiscard]] util::Status check_invariants(
      bool require_sorted = true) const noexcept;

  /// Direct access for 𝒫²𝒮ℳ (splice primitives, sentinel anchor).
  [[nodiscard]] VcpuList& list() noexcept { return queue_; }

  // --- locking -----------------------------------------------------------

  util::Spinlock& lock() noexcept { return lock_; }

  // --- load tracking (step ⑤) --------------------------------------------

  /// Apply one αx+β enqueue update under the load lock; returns new load.
  double update_load_enqueue() noexcept;

  /// Apply n enqueue updates in a single locked operation using the
  /// closed form — HORSE's coalesced update (§4.2).
  double update_load_coalesced(std::uint32_t n) noexcept;

  /// Coalesced update from pause-time precomputed factors (§4.2.2): the
  /// resume path does one locked FMA, L = alpha_n * L + beta_geo_sum.
  double apply_precomputed_load(double alpha_n, double beta_geo_sum) noexcept;

  /// Decay for idle periods (scheduler tick path).
  void decay_load(std::uint32_t periods) noexcept;

  [[nodiscard]] double load() const noexcept;
  void set_load_for_test(double load) noexcept;

  [[nodiscard]] const PeltLoadTracker& pelt() const noexcept { return pelt_; }

  // --- change tracking for 𝒫²𝒮ℳ precompute --------------------------------

  [[nodiscard]] std::uint64_t version() const noexcept {
    return version_.load(std::memory_order_acquire);
  }

  /// Called by every mutator; also available to 𝒫²𝒮ℳ after a splice.
  void bump_version() noexcept {
    version_.fetch_add(1, std::memory_order_acq_rel);
  }

 private:
  CpuId cpu_;
  util::Spinlock lock_;
  VcpuList queue_;
  std::atomic<std::uint64_t> version_{0};

  // The DVFS-relevant load variable with its own lock, as described in
  // §1/§3.1: "the update of a lock-protected variable, which represents
  // the vCPUs' load on each CPU".
  mutable util::Spinlock load_lock_;
  double load_ = 0.0;
  PeltLoadTracker pelt_;
};

}  // namespace horse::sched
