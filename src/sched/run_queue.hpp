// A per-CPU run queue: credit-sorted intrusive list of vCPUs plus the
// lock-protected load variable the DVFS governor reads.
//
// This is the data structure both resume paths contend on:
//   * vanilla step ④ calls insert_sorted() once per vCPU (O(queue length)
//     each), step ⑤ calls update_load_enqueue() once per vCPU under the
//     load lock;
//   * HORSE splices a pre-merged chain with 𝒫²𝒮ℳ and applies one
//     coalesced load update.
// A monotonically increasing version counter lets 𝒫²𝒮ℳ's precompute layer
// detect structural changes (§4.1.3: "the updates are performed each time
// ull_runqueue is updated").
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

#include "sched/pelt.hpp"
#include "sched/vcpu.hpp"
#include "util/epoch.hpp"
#include "util/spinlock.hpp"
#include "util/status.hpp"

namespace horse::sched {

/// One journalled structural mutation. Carries exactly what 𝒫²𝒮ℳ's delta
/// repair needs to mirror the change into a stale index without re-walking
/// the queue: the post-mutation position of the affected element, its
/// credit, and the hook identity (§4.1.3 maintenance off the resume path).
struct QueueDelta {
  enum class Kind : std::uint8_t { kInsert, kRemove };

  /// The mutator did not know the element's index (remove-by-node); the
  /// repairer resolves it from (credit, hook) against its own snapshot.
  static constexpr std::int32_t kUnknownPosition = -1;

  /// The queue version this entry produced. A slot whose version does not
  /// match the probe is stale (overwritten by a later mutation) or was
  /// never written (an unjournalled bump_version()); either way the reader
  /// must fall back to a full rebuild.
  std::uint64_t version = 0;
  Kind kind = Kind::kInsert;
  std::int32_t position = kUnknownPosition;
  Credit credit = 0;
  util::ListHook* hook = nullptr;
};

class RunQueue {
 public:
  explicit RunQueue(CpuId cpu = 0, PeltParams pelt = {})
      : cpu_(cpu), pelt_(pelt) {}

  RunQueue(const RunQueue&) = delete;
  RunQueue& operator=(const RunQueue&) = delete;

  [[nodiscard]] CpuId cpu() const noexcept { return cpu_; }

  // --- structural operations (caller holds lock() unless noted) ---------

  /// Vanilla step ④: walk the queue and link `vcpu` before the first
  /// element with a larger credit. O(n) in the queue length.
  void insert_sorted(Vcpu& vcpu) noexcept;

  /// Single-pass fallback merge (the optimized vanilla sorted walk): moves
  /// every vCPU from `incoming` into the queue under ONE lock hold of the
  /// caller, scanning forward monotonically while incoming credits are
  /// non-decreasing (the common case — merge lists are kept sorted) and
  /// restarting from the head only on an out-of-order element. Element-
  /// for-element equivalent to calling insert_sorted() on each vCPU in
  /// list order — same final ordering, same journal positions — but with
  /// one journal publish, software prefetch of the next node, and no
  /// per-element lock traffic. Returns the number of vCPUs merged.
  std::size_t merge_sorted(VcpuList& incoming) noexcept;

  /// Append without ordering (used when the caller already knows the
  /// position, e.g. credit refill rebuilds).
  void push_back(Vcpu& vcpu) noexcept;

  /// Remove a specific vCPU (pause path, migration).
  void remove(Vcpu& vcpu) noexcept;

  /// Pop the head (lowest credit) or nullptr when empty.
  Vcpu* pop_front() noexcept;

  [[nodiscard]] Vcpu* peek_front() noexcept {
    return queue_.empty() ? nullptr : &queue_.front();
  }

  [[nodiscard]] bool empty() const noexcept { return queue_.size() == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return queue_.size(); }

  /// Checks ascending-credit order; test/debug helper, O(n).
  [[nodiscard]] bool is_sorted() const noexcept;

  /// Full structural audit, O(n). Verifies, walking from the sentinel:
  ///   * prev/next symmetry at every hook (node->next->prev == node),
  ///   * the walk closes back at the sentinel within size() steps (no
  ///     cycles, no lost nodes — the failure mode of a mis-spliced merge),
  ///   * the walked node count equals size() (the count the 𝒫²𝒮ℳ splice
  ///     path maintains out-of-band via add_size),
  ///   * size/version consistency: a non-empty queue has a non-zero
  ///     version (every way a node gets in bumps it),
  ///   * ascending credit order when `require_sorted` (run queues built
  ///     via insert_sorted / 𝒫²𝒮ℳ merges must be sorted; push_back-built
  ///     staging queues may legitimately not be).
  /// Returns the first violation found. Mutators self-audit with the
  /// structural subset under HORSE_DCHECK; release builds never call this.
  [[nodiscard]] util::Status check_invariants(
      bool require_sorted = true) const noexcept;

  /// Direct access for 𝒫²𝒮ℳ (splice primitives, sentinel anchor).
  [[nodiscard]] VcpuList& list() noexcept { return queue_; }

  // --- locking -----------------------------------------------------------

  util::Spinlock& lock() noexcept { return lock_; }

  // --- deferred reclamation ----------------------------------------------

  /// Per-queue epoch reclaimer for retired 𝒫²𝒮ℳ run nodes. The resume
  /// path pins it while reading an index and the ull-manager retires
  /// untracked nodes to it instead of freeing under its mutex; actual
  /// frees happen in maintenance (track/refresh) via try_reclaim(). See
  /// util/epoch.hpp for the protocol and its place in the lock hierarchy.
  [[nodiscard]] util::EpochReclaimer& epoch() noexcept { return epoch_; }

  // --- load tracking (step ⑤) --------------------------------------------

  /// Apply one αx+β enqueue update under the load lock; returns new load.
  double update_load_enqueue() noexcept;

  /// Apply n enqueue updates in a single locked operation using the
  /// closed form — HORSE's coalesced update (§4.2).
  double update_load_coalesced(std::uint32_t n) noexcept;

  /// Coalesced update from pause-time precomputed factors (§4.2.2): the
  /// resume path does one locked FMA, L = alpha_n * L + beta_geo_sum.
  double apply_precomputed_load(double alpha_n, double beta_geo_sum) noexcept;

  /// Decay for idle periods (scheduler tick path).
  void decay_load(std::uint32_t periods) noexcept;

  [[nodiscard]] double load() const noexcept;
  void set_load_for_test(double load) noexcept;

  [[nodiscard]] const PeltLoadTracker& pelt() const noexcept { return pelt_; }

  // --- change tracking for 𝒫²𝒮ℳ precompute --------------------------------

  [[nodiscard]] std::uint64_t version() const noexcept {
    return version_.load(std::memory_order_acquire);
  }

  /// Advance the version WITHOUT journalling the mutation. Every structural
  /// mutator journals internally; this exists for callers that change the
  /// queue in ways the journal cannot express (test-injected foreign
  /// mutations, index invalidation). Repairers observing the resulting gap
  /// fall back to a full rebuild — that is the intended contract.
  void bump_version() noexcept {
    version_.fetch_add(1, std::memory_order_acq_rel);
  }

  // --- mutation journal (caller holds lock()) -----------------------------
  //
  // A fixed ring of the last kJournalCapacity structural mutations, keyed
  // by the version each produced. 𝒫²𝒮ℳ repair replays the entries between
  // its built version and the current one; a missing or overwritten entry
  // (ring wrapped, or an unjournalled bump_version()) reads as a gap and
  // forces the rebuild fallback. Slots are written before the version that
  // names them is published, so any reader that observes version v under
  // the queue lock can trust a slot whose version field equals v.

  static constexpr std::size_t kJournalCapacity = 64;

  /// The journal entry that produced `version`, or nullptr when it has
  /// been overwritten / was never journalled.
  [[nodiscard]] const QueueDelta* delta_for_version(
      std::uint64_t version) const noexcept {
    const QueueDelta& slot = journal_[version % kJournalCapacity];
    return slot.version == version ? &slot : nullptr;
  }

  /// Batch journalling for 𝒫²𝒮ℳ merge splices: stage the entry for version
  /// version()+1+offset with plain stores, then publish the whole batch
  /// with one release fetch_add via publish_staged_deltas(count). Avoids
  /// one atomic RMW per spliced vCPU on the resume path.
  void stage_delta(std::size_t offset, QueueDelta::Kind kind,
                   std::int32_t position, Credit credit,
                   util::ListHook* hook) noexcept {
    const std::uint64_t v =
        version_.load(std::memory_order_relaxed) + 1 + offset;
    QueueDelta& slot = journal_[v % kJournalCapacity];
    slot.version = v;
    slot.kind = kind;
    slot.position = position;
    slot.credit = credit;
    slot.hook = hook;
  }

  void publish_staged_deltas(std::size_t count) noexcept {
    version_.fetch_add(count, std::memory_order_acq_rel);
  }

 private:
  /// Stage + publish a single mutation (the common mutator path).
  void journal_record(QueueDelta::Kind kind, std::int32_t position,
                      Credit credit, util::ListHook* hook) noexcept {
    stage_delta(0, kind, position, credit, hook);
    publish_staged_deltas(1);
  }

  CpuId cpu_;
  util::Spinlock lock_;
  VcpuList queue_;
  std::atomic<std::uint64_t> version_{0};
  std::array<QueueDelta, kJournalCapacity> journal_{};

  // The DVFS-relevant load variable with its own lock, as described in
  // §1/§3.1: "the update of a lock-protected variable, which represents
  // the vCPUs' load on each CPU".
  mutable util::Spinlock load_lock_;
  double load_ = 0.0;
  PeltLoadTracker pelt_;

  util::EpochReclaimer epoch_;
};

}  // namespace horse::sched
