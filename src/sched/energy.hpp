// CPU energy model over DVFS decisions.
//
// The load variable HORSE coalesces feeds frequency scaling, and
// frequency scaling exists for energy proportionality (the paper's §1
// motivates DVFS with the energy literature). This model closes the loop:
// given the governor's frequency decisions over time, estimate energy as
//
//   P(f) = P_static + C_eff · f · V(f)²,   V(f) linear in f between
//                                          (min_freq, V_min) and
//                                          (max_freq, V_max)
//
// — the standard CMOS dynamic-power approximation. Its role in the test
// suite is the end-to-end coalescing property: identical frequency
// decisions ⇒ identical energy, whether load was updated n times or once.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "metrics/time_series.hpp"
#include "sched/dvfs.hpp"
#include "util/time.hpp"

namespace horse::sched {

struct EnergyParams {
  double static_watts = 8.0;        // per-core uncore/leakage share
  double c_eff_nf = 1.1;            // effective switched capacitance (nF)
  double v_min = 0.70;              // volts at min frequency
  double v_max = 1.15;              // volts at max frequency
  std::uint64_t min_freq_khz = 800'000;
  std::uint64_t max_freq_khz = 2'400'000;

  void validate() const {
    if (!(static_watts >= 0.0) || !(c_eff_nf > 0.0)) {
      throw std::invalid_argument("EnergyParams: bad power constants");
    }
    if (!(v_min > 0.0) || !(v_max >= v_min)) {
      throw std::invalid_argument("EnergyParams: bad voltage range");
    }
    if (min_freq_khz == 0 || max_freq_khz <= min_freq_khz) {
      throw std::invalid_argument("EnergyParams: bad frequency range");
    }
  }
};

class EnergyModel {
 public:
  explicit EnergyModel(EnergyParams params = {}) : params_(params) {
    params_.validate();
  }

  [[nodiscard]] const EnergyParams& params() const noexcept { return params_; }

  /// Voltage at a frequency: linear interpolation, clamped to the range.
  [[nodiscard]] double voltage_at(std::uint64_t freq_khz) const noexcept;

  /// Instantaneous power (watts) at a frequency.
  [[nodiscard]] double power_at(std::uint64_t freq_khz) const noexcept;

  /// Energy (joules) of holding `freq_khz` for `duration`.
  [[nodiscard]] double energy_joules(std::uint64_t freq_khz,
                                     util::Nanos duration) const noexcept {
    return power_at(freq_khz) * static_cast<double>(duration) / 1e9;
  }

  /// Energy of a frequency trace (step function: each sample holds until
  /// the next, the last until `end`).
  [[nodiscard]] double energy_of_trace(const metrics::TimeSeries& freq_khz,
                                       util::Nanos end) const;

 private:
  EnergyParams params_;
};

}  // namespace horse::sched
