// PELT-style (per-entity load tracking) run-queue load model.
//
// The paper (§3.1 step ⑤) observes that on every vCPU insertion the
// hypervisor updates a lock-protected per-run-queue load variable with an
// affine update L(x) = αx + β, whose value the DVFS governor reads. This
// class is that update rule, factored out so both the vanilla path (apply
// it n times under the lock) and HORSE's coalescer (apply the closed form
// once) use the identical arithmetic — tests assert they agree to within
// floating-point tolerance.
#pragma once

#include <cmath>
#include <cstdint>
#include <stdexcept>

namespace horse::sched {

struct PeltParams {
  /// Geometric decay factor per update. Linux PELT halves contribution
  /// every 32 periods: alpha = 0.5^(1/32).
  double alpha = 0.978572062087700134;
  /// Fresh-contribution constant of one runnable entity per update, scaled
  /// so a persistently runnable entity converges to ~1024 (PELT's
  /// LOAD_AVG_MAX-normalised unit load).
  double beta = 21.942208422195108;  // 1024 * (1 - alpha)

  void validate() const {
    if (!(alpha > 0.0) || !(alpha < 1.0)) {
      throw std::invalid_argument("PeltParams: alpha must be in (0,1)");
    }
    if (!(beta >= 0.0)) {
      throw std::invalid_argument("PeltParams: beta must be >= 0");
    }
  }
};

class PeltLoadTracker {
 public:
  PeltLoadTracker() = default;
  explicit PeltLoadTracker(PeltParams params) : params_(params) {
    params_.validate();
  }

  [[nodiscard]] const PeltParams& params() const noexcept { return params_; }

  /// One vanilla step-⑤ update: L(x) = αx + β.
  [[nodiscard]] double apply_once(double load) const noexcept {
    return params_.alpha * load + params_.beta;
  }

  /// n sequential applications, done the slow way. Kept for the vanilla
  /// resume path and as the reference in coalescing equivalence tests.
  [[nodiscard]] double apply_iterative(double load, std::uint32_t n) const noexcept {
    for (std::uint32_t i = 0; i < n; ++i) {
      load = apply_once(load);
    }
    return load;
  }

  /// Closed form of n applications: αⁿ·x + β·(1-αⁿ)/(1-α).
  /// (Sum of the geometric series Σ_{i=0}^{n-1} αⁱ = (1-αⁿ)/(1-α).)
  [[nodiscard]] double apply_closed_form(double load, std::uint32_t n) const noexcept {
    const double alpha_n = std::pow(params_.alpha, static_cast<double>(n));
    return alpha_n * load +
           params_.beta * (1.0 - alpha_n) / (1.0 - params_.alpha);
  }

  /// Pure decay of an idle run queue over `periods` ticks (no new
  /// contribution): L(x) = α^periods · x.
  [[nodiscard]] double decay(double load, std::uint32_t periods) const noexcept {
    return std::pow(params_.alpha, static_cast<double>(periods)) * load;
  }

 private:
  PeltParams params_{};
};

}  // namespace horse::sched
