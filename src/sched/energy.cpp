#include "sched/energy.hpp"

#include <algorithm>

namespace horse::sched {

double EnergyModel::voltage_at(std::uint64_t freq_khz) const noexcept {
  const auto clamped =
      std::clamp(freq_khz, params_.min_freq_khz, params_.max_freq_khz);
  const double span =
      static_cast<double>(params_.max_freq_khz - params_.min_freq_khz);
  const double fraction =
      static_cast<double>(clamped - params_.min_freq_khz) / span;
  return params_.v_min + fraction * (params_.v_max - params_.v_min);
}

double EnergyModel::power_at(std::uint64_t freq_khz) const noexcept {
  const double volts = voltage_at(freq_khz);
  // C (nF) · f (kHz) · V² → 1e-9 F · 1e3 Hz = 1e-6 W scale factor.
  const double dynamic = params_.c_eff_nf * static_cast<double>(freq_khz) *
                         volts * volts * 1e-6;
  return params_.static_watts + dynamic;
}

double EnergyModel::energy_of_trace(const metrics::TimeSeries& freq_khz,
                                    util::Nanos end) const {
  if (freq_khz.empty()) {
    return 0.0;
  }
  auto points = freq_khz.points();
  std::stable_sort(points.begin(), points.end(),
                   [](const metrics::TimeSeries::Point& lhs,
                      const metrics::TimeSeries::Point& rhs) {
                     return lhs.time < rhs.time;
                   });
  double joules = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const util::Nanos start = points[i].time;
    const util::Nanos stop =
        i + 1 < points.size() ? std::min(points[i + 1].time, end) : end;
    if (stop <= start) {
      continue;
    }
    joules += energy_joules(static_cast<std::uint64_t>(points[i].value),
                            stop - start);
  }
  return joules;
}

}  // namespace horse::sched
