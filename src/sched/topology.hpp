// Physical-CPU topology: one run queue per CPU, with some queues
// reservable for uLL sandboxes (the paper's ull_runqueue, §4.1.3).
//
// Reserved queues are excluded from general vCPU placement, so longer-
// running functions never land on them — the isolation that §5.4 credits
// for the absence of mean/p95 interference.
//
// Thread-safety: the queue array is immutable after construction and each
// RunQueue carries its own locks, so any number of threads may operate on
// (distinct or shared) queues concurrently. The reserved flags are read
// on every general placement (least_loaded_general) from concurrently
// invoking control-plane shards while the adaptive scaler may be flipping
// them (grow/shrink); they are accessed through std::atomic_ref so a flip
// is a benign race — a placement decided just before a reserve lands on a
// queue that was general when the decision was made, exactly as in the
// kernel, where placement and reservation are not globally ordered.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <stdexcept>
#include <vector>

#include "sched/run_queue.hpp"

namespace horse::sched {

class CpuTopology {
 public:
  explicit CpuTopology(std::size_t num_cpus, PeltParams pelt = {}) {
    if (num_cpus == 0) {
      throw std::invalid_argument("CpuTopology: need at least one CPU");
    }
    queues_.reserve(num_cpus);
    for (std::size_t cpu = 0; cpu < num_cpus; ++cpu) {
      queues_.push_back(
          std::make_unique<RunQueue>(static_cast<CpuId>(cpu), pelt));
    }
    // char (not vector<bool>) so each flag is addressable for atomic_ref.
    reserved_.resize(num_cpus, 0);
  }

  [[nodiscard]] std::size_t num_cpus() const noexcept { return queues_.size(); }

  [[nodiscard]] RunQueue& queue(CpuId cpu) {
    return *queues_.at(cpu);
  }
  [[nodiscard]] const RunQueue& queue(CpuId cpu) const {
    return *queues_.at(cpu);
  }

  /// Mark a CPU's queue as a reserved ull_runqueue.
  void reserve_for_ull(CpuId cpu) {
    std::atomic_ref(reserved_.at(cpu)).store(1, std::memory_order_release);
  }

  /// Return a reserved queue to the general pool (adaptive scaling).
  void unreserve(CpuId cpu) {
    std::atomic_ref(reserved_.at(cpu)).store(0, std::memory_order_release);
  }
  [[nodiscard]] bool is_reserved(CpuId cpu) const {
    return std::atomic_ref(reserved_.at(cpu))
               .load(std::memory_order_acquire) != 0;
  }

  [[nodiscard]] std::vector<CpuId> reserved_cpus() const {
    std::vector<CpuId> out;
    for (CpuId cpu = 0; cpu < reserved_.size(); ++cpu) {
      if (is_reserved(cpu)) {
        out.push_back(cpu);
      }
    }
    return out;
  }

  /// Least-loaded non-reserved queue — the vanilla placement policy used
  /// by step ④ when it "finds a run queue to add the vCPU".
  [[nodiscard]] CpuId least_loaded_general() const {
    CpuId best = 0;
    double best_load = -1.0;
    bool found = false;
    for (CpuId cpu = 0; cpu < queues_.size(); ++cpu) {
      if (is_reserved(cpu)) {
        continue;
      }
      const double load = queues_[cpu]->load();
      if (!found || load < best_load) {
        best = cpu;
        best_load = load;
        found = true;
      }
    }
    if (!found) {
      throw std::runtime_error("CpuTopology: all queues reserved for uLL");
    }
    return best;
  }

 private:
  std::vector<std::unique_ptr<RunQueue>> queues_;
  // 0/1 flags accessed via std::atomic_ref (see file comment).
  mutable std::vector<char> reserved_;
};

}  // namespace horse::sched
