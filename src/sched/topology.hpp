// Physical-CPU topology: one run queue per CPU, with some queues
// reservable for uLL sandboxes (the paper's ull_runqueue, §4.1.3).
//
// Reserved queues are excluded from general vCPU placement, so longer-
// running functions never land on them — the isolation that §5.4 credits
// for the absence of mean/p95 interference.
#pragma once

#include <cstddef>
#include <memory>
#include <stdexcept>
#include <vector>

#include "sched/run_queue.hpp"

namespace horse::sched {

class CpuTopology {
 public:
  explicit CpuTopology(std::size_t num_cpus, PeltParams pelt = {}) {
    if (num_cpus == 0) {
      throw std::invalid_argument("CpuTopology: need at least one CPU");
    }
    queues_.reserve(num_cpus);
    for (std::size_t cpu = 0; cpu < num_cpus; ++cpu) {
      queues_.push_back(
          std::make_unique<RunQueue>(static_cast<CpuId>(cpu), pelt));
    }
    reserved_.resize(num_cpus, false);
  }

  [[nodiscard]] std::size_t num_cpus() const noexcept { return queues_.size(); }

  [[nodiscard]] RunQueue& queue(CpuId cpu) {
    return *queues_.at(cpu);
  }
  [[nodiscard]] const RunQueue& queue(CpuId cpu) const {
    return *queues_.at(cpu);
  }

  /// Mark a CPU's queue as a reserved ull_runqueue.
  void reserve_for_ull(CpuId cpu) {
    reserved_.at(cpu) = true;
  }

  /// Return a reserved queue to the general pool (adaptive scaling).
  void unreserve(CpuId cpu) {
    reserved_.at(cpu) = false;
  }
  [[nodiscard]] bool is_reserved(CpuId cpu) const { return reserved_.at(cpu); }

  [[nodiscard]] std::vector<CpuId> reserved_cpus() const {
    std::vector<CpuId> out;
    for (CpuId cpu = 0; cpu < reserved_.size(); ++cpu) {
      if (reserved_[cpu]) {
        out.push_back(cpu);
      }
    }
    return out;
  }

  /// Least-loaded non-reserved queue — the vanilla placement policy used
  /// by step ④ when it "finds a run queue to add the vCPU".
  [[nodiscard]] CpuId least_loaded_general() const {
    CpuId best = 0;
    double best_load = -1.0;
    bool found = false;
    for (CpuId cpu = 0; cpu < queues_.size(); ++cpu) {
      if (reserved_[cpu]) {
        continue;
      }
      const double load = queues_[cpu]->load();
      if (!found || load < best_load) {
        best = cpu;
        best_load = load;
        found = true;
      }
    }
    if (!found) {
      throw std::runtime_error("CpuTopology: all queues reserved for uLL");
    }
    return best;
  }

 private:
  std::vector<std::unique_ptr<RunQueue>> queues_;
  std::vector<bool> reserved_;
};

}  // namespace horse::sched
