// Scheduler event tracing: a fixed-capacity ring of scheduling decisions
// (dispatch, requeue, migrate, preempt, resume-merge) with aggregate
// counters. The hypervisor analogue is xentrace / trace-cmd; here it lets
// tests and benches assert *behavioural* properties (e.g. "no thumbnail
// vCPU was ever dispatched on the reserved queue") instead of only end
// states, and gives examples something to print.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "sched/vcpu.hpp"
#include "util/time.hpp"

namespace horse::sched {

enum class TraceEvent : std::uint8_t {
  kDispatch,      // vCPU picked to run
  kRequeue,       // vCPU returned to a queue after its slice
  kMigrate,       // load balancer moved a vCPU
  kPreempt,       // running vCPU displaced
  kCreditReset,   // queue-wide credit refill
  kResumeMerge,   // HORSE 𝒫²𝒮ℳ splice into a queue
};

[[nodiscard]] constexpr std::string_view to_string(TraceEvent event) noexcept {
  switch (event) {
    case TraceEvent::kDispatch: return "dispatch";
    case TraceEvent::kRequeue: return "requeue";
    case TraceEvent::kMigrate: return "migrate";
    case TraceEvent::kPreempt: return "preempt";
    case TraceEvent::kCreditReset: return "credit-reset";
    case TraceEvent::kResumeMerge: return "resume-merge";
  }
  return "unknown";
}

struct TraceRecord {
  util::Nanos time = 0;
  TraceEvent event = TraceEvent::kDispatch;
  CpuId cpu = 0;
  VcpuId vcpu = 0;
  SandboxId sandbox = 0;
};

class SchedTrace {
 public:
  explicit SchedTrace(std::size_t capacity = 4096);

  void record(util::Nanos time, TraceEvent event, CpuId cpu, VcpuId vcpu = 0,
              SandboxId sandbox = 0) noexcept;

  /// Events in chronological order (oldest surviving first).
  [[nodiscard]] std::vector<TraceRecord> snapshot() const;

  [[nodiscard]] std::uint64_t count(TraceEvent event) const noexcept {
    return counters_[static_cast<std::size_t>(event)];
  }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return total_ > ring_.size() ? total_ - ring_.size() : 0;
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return ring_.size(); }

  void clear() noexcept;

 private:
  std::vector<TraceRecord> ring_;
  std::size_t head_ = 0;  // next write position
  std::uint64_t total_ = 0;
  std::array<std::uint64_t, 6> counters_{};
};

}  // namespace horse::sched
