// Per-entity load tracking (PELT proper).
//
// The run-queue-level rule this project measures (§3.1 step ⑤:
// L(x) = αx + β per enqueued vCPU) is the hypervisor's aggregate view.
// Underneath, Linux/Xen track load per scheduling entity: time is divided
// into 1 ms periods; each period a running/runnable entity contributes,
// and history decays geometrically (y^32 = 0.5). A queue's load is the
// sum of its entities' averages, which is what makes load migrate with a
// vCPU instead of being re-learned.
//
// This module implements the entity side faithfully enough to validate
// the aggregate rule against it: EntityLoad accumulates running time with
// per-period decay, and EntityQueueLoad sums entities with O(1)
// attach/detach — tests cross-check convergence, decay and migration
// against the closed-form PeltLoadTracker.
#pragma once

#include <cstdint>

#include "sched/pelt.hpp"
#include "util/time.hpp"

namespace horse::sched {

/// PELT period: contributions are accounted in 1 ms windows (Linux's
/// PELT period), decayed once per period boundary.
inline constexpr util::Nanos kPeltPeriod = util::kMillisecond;

class EntityLoad {
 public:
  explicit EntityLoad(PeltParams params = {}) : params_(params) {
    params_.validate();
  }

  /// Account `duration` ns ending at absolute time `now`, with the entity
  /// runnable throughout. Decay for elapsed idle periods is applied first.
  void update_running(util::Nanos now, util::Nanos duration);

  /// Account idle time up to `now` (pure decay).
  void update_idle(util::Nanos now);

  /// Load average in the queue-load unit (converges to ~1024 for an
  /// always-runnable entity).
  [[nodiscard]] double load_avg() const noexcept { return load_avg_; }

  [[nodiscard]] util::Nanos last_update() const noexcept {
    return last_update_;
  }

 private:
  void decay_to(util::Nanos now);

  PeltParams params_{};
  double load_avg_ = 0.0;
  util::Nanos last_update_ = 0;
};

/// Queue-level aggregation: load = Σ entity load_avg, maintained
/// incrementally as entities attach (enqueue/migrate in) and detach
/// (dequeue/migrate out) — the mechanism that makes a migrated vCPU carry
/// its load with it.
class EntityQueueLoad {
 public:
  void attach(const EntityLoad& entity) noexcept {
    total_ += entity.load_avg();
    ++entities_;
  }
  void detach(const EntityLoad& entity) noexcept {
    total_ -= entity.load_avg();
    if (total_ < 0.0) {
      total_ = 0.0;
    }
    --entities_;
  }

  [[nodiscard]] double total() const noexcept { return total_; }
  [[nodiscard]] std::uint32_t entities() const noexcept { return entities_; }

 private:
  double total_ = 0.0;
  std::uint32_t entities_ = 0;
};

}  // namespace horse::sched
