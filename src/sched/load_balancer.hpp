// Periodic load balancing across general run queues.
//
// credit2 rebalances by migrating runnable vCPUs from the busiest to the
// least-busy run queue when their load ratio exceeds a threshold. Beyond
// fidelity, this matters to HORSE specifically: migrations mutate run
// queues, which is exactly the event that invalidates 𝒫²𝒮ℳ indexes on
// reserved queues — so the balancer never touches reserved queues (uLL
// isolation), and integration tests use it to exercise the
// staleness/refresh machinery on everything else.
#pragma once

#include <cstddef>
#include <stdexcept>

#include "sched/sched_trace.hpp"
#include "sched/topology.hpp"

namespace horse::sched {

struct LoadBalancerParams {
  /// Migrate only when busiest/idlest queue length exceeds this ratio.
  double imbalance_ratio = 1.5;
  /// Cap on migrations per rebalance round (credit2 migrates gradually).
  std::size_t max_migrations_per_round = 2;

  void validate() const {
    if (!(imbalance_ratio > 1.0)) {
      throw std::invalid_argument("LoadBalancer: ratio must exceed 1");
    }
    if (max_migrations_per_round == 0) {
      throw std::invalid_argument("LoadBalancer: need migrations >= 1");
    }
  }
};

class LoadBalancer {
 public:
  explicit LoadBalancer(CpuTopology& topology, LoadBalancerParams params = {})
      : topology_(topology), params_(params) {
    params_.validate();
  }

  /// One rebalance round over the general queues; returns the number of
  /// vCPUs migrated.
  std::size_t rebalance();

  [[nodiscard]] std::uint64_t total_migrations() const noexcept {
    return total_migrations_;
  }

  /// Optional event tracer (records kMigrate per moved vCPU).
  void set_trace(SchedTrace* trace) noexcept { trace_ = trace; }

 private:
  CpuTopology& topology_;
  LoadBalancerParams params_;
  std::uint64_t total_migrations_ = 0;
  SchedTrace* trace_ = nullptr;
};

/// Scheduler tick bookkeeping: PELT decay of idle queues and periodic
/// rebalancing, the way a hypervisor's periodic timer handler would run
/// them. Clock-agnostic — callers invoke on_tick() at their own cadence
/// (real timers in stress tests, virtual time in the simulator).
class TickDriver {
 public:
  TickDriver(CpuTopology& topology, LoadBalancer& balancer,
             std::uint32_t rebalance_every = 4)
      : topology_(topology),
        balancer_(balancer),
        rebalance_every_(rebalance_every == 0 ? 1 : rebalance_every) {}

  /// One tick: decay the load of queues with no runnable vCPUs by one
  /// PELT period; every `rebalance_every` ticks, run the balancer.
  void on_tick();

  [[nodiscard]] std::uint64_t ticks() const noexcept { return ticks_; }

 private:
  CpuTopology& topology_;
  LoadBalancer& balancer_;
  std::uint32_t rebalance_every_;
  std::uint64_t ticks_ = 0;
};

}  // namespace horse::sched
