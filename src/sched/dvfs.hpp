// Schedutil-style DVFS governor.
//
// The load variable HORSE coalesces exists *for* this governor (§1: "This
// variable is used for frequency scaling"). Modelling the governor lets
// tests assert the property that actually matters to correctness: the
// frequency decisions made from a coalesced load equal the ones made from
// n iterative updates.
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "sched/run_queue.hpp"
#include "sched/topology.hpp"

namespace horse::sched {

struct DvfsParams {
  std::uint64_t min_freq_khz = 800'000;   // 0.8 GHz
  std::uint64_t max_freq_khz = 2'400'000; // 2.4 GHz, the paper's Xeon 8360Y
  /// Load value treated as "fully utilised"; PELT converges to ~1024.
  double capacity = 1024.0;
  /// Frequency quantisation step (P-state granularity).
  std::uint64_t step_khz = 100'000;

  void validate() const {
    if (min_freq_khz == 0 || max_freq_khz <= min_freq_khz) {
      throw std::invalid_argument("DvfsParams: need 0 < min < max frequency");
    }
    if (!(capacity > 0.0)) {
      throw std::invalid_argument("DvfsParams: capacity must be positive");
    }
    if (step_khz == 0) {
      throw std::invalid_argument("DvfsParams: step must be positive");
    }
  }
};

class DvfsGovernor {
 public:
  explicit DvfsGovernor(DvfsParams params = {}) : params_(params) {
    params_.validate();
  }

  [[nodiscard]] const DvfsParams& params() const noexcept { return params_; }

  /// schedutil's next_freq = max_freq * 1.25 * util / capacity, clamped
  /// and quantised down to a step boundary.
  [[nodiscard]] std::uint64_t target_freq_khz(double load) const noexcept {
    const double util = std::clamp(load / params_.capacity, 0.0, 1.0);
    const double raw = 1.25 * util * static_cast<double>(params_.max_freq_khz);
    const auto clamped = std::clamp(
        static_cast<std::uint64_t>(raw), params_.min_freq_khz, params_.max_freq_khz);
    return clamped - clamped % params_.step_khz;
  }

  /// Evaluate the whole topology; returns per-CPU frequency decisions.
  [[nodiscard]] std::vector<std::uint64_t> evaluate(const CpuTopology& topo) const {
    std::vector<std::uint64_t> freqs;
    freqs.reserve(topo.num_cpus());
    for (CpuId cpu = 0; cpu < topo.num_cpus(); ++cpu) {
      freqs.push_back(target_freq_khz(topo.queue(cpu).load()));
    }
    return freqs;
  }

 private:
  DvfsParams params_;
};

}  // namespace horse::sched
