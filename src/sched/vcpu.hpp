// Virtual CPU: the schedulable entity of the hypervisor substrate.
//
// Mirrors the role of Xen's `struct vcpu` / KVM's vCPU thread from the
// scheduler's point of view: a credit value that orders it inside a run
// queue, an intrusive hook linking it into exactly one list at a time
// (a CPU run queue while runnable, or its sandbox's `merge_vcpus` list
// while the sandbox is paused — §4.1.3 of the paper), and a load weight
// that feeds PELT-style load tracking.
#pragma once

#include <cstdint>

#include "util/intrusive_list.hpp"
#include "util/time.hpp"

namespace horse::sched {

using VcpuId = std::uint32_t;
using SandboxId = std::uint32_t;
using CpuId = std::uint32_t;

/// Credit is the run-queue sort key. Following the paper's description of
/// credit2 ("the process with the least remaining credit first"), queues
/// are ordered by ascending credit.
using Credit = std::int64_t;

enum class VcpuState : std::uint8_t {
  kOffline,   // exists but not schedulable (sandbox not started)
  kRunnable,  // linked into a CPU run queue
  kRunning,   // currently on a physical CPU
  kPaused,    // sandbox paused; linked into the sandbox merge list
};

struct Vcpu {
  VcpuId id = 0;
  SandboxId sandbox = 0;
  Credit credit = 0;
  std::uint32_t weight = 256;  // credit2 default weight
  /// Scheduling class: 0 = normal; higher always preempts lower. 𝒫²𝒮ℳ
  /// merge threads run at kBoostPriority (§4.1.3: "Merge threads are
  /// given the highest priority to preempt any task").
  std::uint8_t priority = 0;
  static constexpr std::uint8_t kBoostPriority = 255;
  /// Marks a vCPU belonging to an ultra-low-latency function. Consulted
  /// only by the credit2 `short_function_first` knob (SFS, PAPERS.md):
  /// a uLL candidate may bypass preemption resistance against a non-uLL
  /// runner so sub-microsecond slices never wait behind long tenants.
  bool ull = false;
  VcpuState state = VcpuState::kOffline;
  CpuId last_cpu = 0;

  /// Exactly one list membership at a time: a run queue or merge_vcpus.
  util::ListHook hook;

  /// Cumulative CPU time consumed, for accounting tests.
  util::Nanos cpu_time = 0;
};

using VcpuList = util::IntrusiveList<Vcpu, &Vcpu::hook>;

}  // namespace horse::sched
