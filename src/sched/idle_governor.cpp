#include "sched/idle_governor.hpp"

#include <limits>
#include <stdexcept>

namespace horse::sched {

const std::vector<CState>& default_cstates() {
  static const std::vector<CState> kStates{
      {"C0-poll", 0, 0, 35.0},
      {"C1", 2 * util::kMicrosecond, 2 * util::kMicrosecond, 22.0},
      {"C1E", 10 * util::kMicrosecond, 20 * util::kMicrosecond, 15.0},
      {"C6", 133 * util::kMicrosecond, 600 * util::kMicrosecond, 5.0},
  };
  return kStates;
}

IdleGovernor::IdleGovernor(std::size_t num_cpus, std::vector<CState> states,
                           Params params)
    : states_(std::move(states)), params_(params) {
  if (num_cpus == 0 || states_.empty()) {
    throw std::invalid_argument("IdleGovernor: need CPUs and states");
  }
  for (std::size_t i = 1; i < states_.size(); ++i) {
    if (states_[i].exit_latency < states_[i - 1].exit_latency) {
      throw std::invalid_argument(
          "IdleGovernor: states must be ordered shallow to deep");
    }
  }
  if (!(params_.ewma_alpha > 0.0) || params_.ewma_alpha > 1.0) {
    throw std::invalid_argument("IdleGovernor: alpha in (0,1]");
  }
  predictions_.assign(num_cpus, params_.initial_prediction);
  caps_.assign(num_cpus, std::numeric_limits<util::Nanos>::max());
  seeded_.assign(num_cpus, false);
}

std::size_t IdleGovernor::select(std::uint32_t cpu) const {
  const util::Nanos predicted = predictions_.at(cpu);
  const util::Nanos cap = caps_.at(cpu);
  std::size_t chosen = 0;
  for (std::size_t i = 0; i < states_.size(); ++i) {
    if (states_[i].exit_latency > cap) {
      break;  // deeper states only get more expensive to leave
    }
    if (states_[i].target_residency <= predicted) {
      chosen = i;
    }
  }
  return chosen;
}

void IdleGovernor::observe_idle(std::uint32_t cpu, util::Nanos duration) {
  if (duration < 0) {
    duration = 0;
  }
  util::Nanos& prediction = predictions_.at(cpu);
  if (!seeded_.at(cpu)) {
    prediction = duration;
    seeded_.at(cpu) = true;
    return;
  }
  prediction = static_cast<util::Nanos>(
      params_.ewma_alpha * static_cast<double>(duration) +
      (1.0 - params_.ewma_alpha) * static_cast<double>(prediction));
}

void IdleGovernor::set_latency_cap(std::uint32_t cpu, util::Nanos cap) {
  caps_.at(cpu) = cap;
}

util::Nanos IdleGovernor::latency_cap(std::uint32_t cpu) const {
  return caps_.at(cpu);
}

util::Nanos IdleGovernor::predicted_idle(std::uint32_t cpu) const {
  return predictions_.at(cpu);
}

}  // namespace horse::sched
