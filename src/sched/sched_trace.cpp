#include "sched/sched_trace.hpp"

#include <algorithm>

namespace horse::sched {

SchedTrace::SchedTrace(std::size_t capacity)
    : ring_(capacity == 0 ? 1 : capacity) {}

void SchedTrace::record(util::Nanos time, TraceEvent event, CpuId cpu,
                        VcpuId vcpu, SandboxId sandbox) noexcept {
  ring_[head_] = TraceRecord{time, event, cpu, vcpu, sandbox};
  head_ = (head_ + 1) % ring_.size();
  ++total_;
  ++counters_[static_cast<std::size_t>(event)];
}

std::vector<TraceRecord> SchedTrace::snapshot() const {
  std::vector<TraceRecord> out;
  const std::size_t kept = std::min<std::uint64_t>(total_, ring_.size());
  out.reserve(kept);
  // Oldest surviving entry: head_ when the ring has wrapped, else 0.
  const std::size_t start = total_ > ring_.size() ? head_ : 0;
  for (std::size_t i = 0; i < kept; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

void SchedTrace::clear() noexcept {
  head_ = 0;
  total_ = 0;
  counters_.fill(0);
}

}  // namespace horse::sched
