// Credit2-like scheduler over the run-queue substrate.
//
// Implements the subset of Xen's credit2 semantics the paper's experiments
// exercise: credit-ordered dispatch (least remaining credit first, per the
// paper's description), credit burn proportional to weighted runtime,
// global credit reset when the head's credit is exhausted, per-queue time
// slices — with the uLL twist that reserved queues cap slices at 1 µs
// (§4.1.3). The scheduler is clock-agnostic: callers pass elapsed time, so
// the same code runs under the discrete-event simulator and in real time.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>

#include "sched/sched_trace.hpp"
#include "sched/topology.hpp"
#include "sched/vcpu.hpp"
#include "util/time.hpp"

namespace horse::sched {

struct Credit2Params {
  /// Credit granted to every vCPU at a reset, in nanosecond-equivalents.
  Credit reset_credit = 10 * util::kMillisecond;
  /// Default time slice for general queues.
  util::Nanos default_slice = 2 * util::kMillisecond;
  /// Slice on reserved uLL queues (§4.1.3: "a maximum time slice of 1µs").
  util::Nanos ull_slice = 1 * util::kMicrosecond;
  /// Reference weight: a vCPU with this weight burns credit 1:1 with time.
  std::uint32_t reference_weight = 256;
  /// Credit advantage a waking vCPU needs before it preempts the running
  /// one (credit2's "migration resistance" against ping-ponging).
  Credit preemption_resistance = 500 * util::kMicrosecond;
  /// SFS-style short-function-first (PAPERS.md): when set, a uLL candidate
  /// bypasses `preemption_resistance` — and the credit comparison — against
  /// a non-uLL runner. A sub-microsecond slice should never wait out a
  /// long tenant's multi-millisecond slice; the runner loses at most ~1 µs
  /// of its slice. uLL-vs-uLL and everything else keep stock semantics.
  bool short_function_first = false;

  void validate() const {
    if (reset_credit <= 0 || default_slice <= 0 || ull_slice <= 0) {
      throw std::invalid_argument("Credit2Params: all durations must be positive");
    }
    if (reference_weight == 0) {
      throw std::invalid_argument("Credit2Params: reference_weight must be nonzero");
    }
  }
};

class Credit2Scheduler {
 public:
  Credit2Scheduler(CpuTopology& topology, Credit2Params params = {})
      : topology_(topology), params_(params) {
    params_.validate();
  }

  [[nodiscard]] const Credit2Params& params() const noexcept { return params_; }
  [[nodiscard]] CpuTopology& topology() noexcept { return topology_; }

  /// Vanilla placement for one vCPU: least-loaded general queue.
  [[nodiscard]] CpuId pick_cpu() const { return topology_.least_loaded_general(); }

  /// Enqueue a vCPU on `cpu` (sorted insert + one load update) — exactly
  /// the per-vCPU work of resume steps ④+⑤.
  void enqueue(Vcpu& vcpu, CpuId cpu);

  /// Remove a runnable vCPU from its queue (pause path).
  void dequeue(Vcpu& vcpu);

  /// Pick the next vCPU to run on `cpu`, or nullptr if the queue is idle.
  /// Performs a credit reset for the queue when the head is out of credit.
  Vcpu* schedule(CpuId cpu);

  /// Account `ran` nanoseconds of execution to `vcpu` (credit burn scaled
  /// by weight) and return it to its queue if still runnable.
  void charge_and_requeue(Vcpu& vcpu, util::Nanos ran, bool still_runnable);

  /// Time slice for a CPU's queue (1 µs on reserved uLL queues).
  [[nodiscard]] util::Nanos slice_for(CpuId cpu) const {
    return topology_.is_reserved(cpu) ? params_.ull_slice : params_.default_slice;
  }

  /// Preemption check: a higher priority class always preempts; within a
  /// class, the candidate must beat the running vCPU's credit by more
  /// than the resistance (we dispatch lowest credit first).
  [[nodiscard]] bool should_preempt(const Vcpu& running,
                                    const Vcpu& candidate) const noexcept {
    if (candidate.priority != running.priority) {
      return candidate.priority > running.priority;
    }
    // SFS: a short (uLL) candidate immediately preempts a long (non-uLL)
    // runner regardless of credit — long tenants burn credit downward, so
    // a fresh uLL vCPU would otherwise never clear the resistance bar.
    if (params_.short_function_first && candidate.ull && !running.ull) {
      return true;
    }
    return candidate.credit + params_.preemption_resistance < running.credit;
  }

  /// Wake-up placement: keep cache affinity with last_cpu unless another
  /// general queue is at least two entries shorter; reports whether the
  /// woken vCPU should preempt what currently runs there.
  struct WakeResult {
    CpuId cpu = 0;
    bool preempt = false;
  };
  WakeResult wake(Vcpu& vcpu, const Vcpu* running_on_target = nullptr);

  /// Hand `cpu` directly to a preemption winner that was never enqueued
  /// (SFS wake preemption). Dispatch is lowest-credit-first and long
  /// runners burn credit downward, so requeue-then-schedule() would give
  /// the CPU straight back to the just-preempted victim; the executor
  /// instead dispatches the winner in place. Sets running state and
  /// traces the dispatch; the caller must have requeued the victim.
  void dispatch_direct(Vcpu& vcpu, CpuId cpu);

  [[nodiscard]] std::uint64_t credit_resets() const noexcept { return credit_resets_; }

  /// Attach an event tracer (nullptr detaches). `clock` supplies event
  /// timestamps; when absent, a logical sequence number is used — the
  /// scheduler itself is clock-agnostic.
  void set_trace(SchedTrace* trace,
                 std::function<util::Nanos()> clock = nullptr) {
    trace_ = trace;
    trace_clock_ = std::move(clock);
  }
  [[nodiscard]] SchedTrace* trace() const noexcept { return trace_; }

 private:
  void reset_credits(RunQueue& queue);
  void trace_event(TraceEvent event, CpuId cpu, const Vcpu* vcpu) noexcept;

  CpuTopology& topology_;
  Credit2Params params_;
  std::uint64_t credit_resets_ = 0;
  SchedTrace* trace_ = nullptr;
  std::function<util::Nanos()> trace_clock_;
  util::Nanos trace_seq_ = 0;
};

}  // namespace horse::sched
