#include "sched/load_balancer.hpp"

#include "util/spinlock.hpp"

namespace horse::sched {

std::size_t LoadBalancer::rebalance() {
  // Find the busiest and idlest *general* queues by runnable count.
  bool found = false;
  CpuId busiest = 0;
  CpuId idlest = 0;
  std::size_t busiest_len = 0;
  std::size_t idlest_len = 0;
  for (CpuId cpu = 0; cpu < topology_.num_cpus(); ++cpu) {
    if (topology_.is_reserved(cpu)) {
      continue;  // never migrate into or out of ull_runqueues
    }
    const std::size_t length = topology_.queue(cpu).size();
    if (!found) {
      busiest = idlest = cpu;
      busiest_len = idlest_len = length;
      found = true;
      continue;
    }
    if (length > busiest_len) {
      busiest = cpu;
      busiest_len = length;
    }
    if (length < idlest_len) {
      idlest = cpu;
      idlest_len = length;
    }
  }
  if (!found || busiest == idlest || busiest_len == 0) {
    return 0;
  }
  const double ratio = idlest_len == 0
                           ? static_cast<double>(busiest_len) + 1.0
                           : static_cast<double>(busiest_len) /
                                 static_cast<double>(idlest_len);
  if (ratio <= params_.imbalance_ratio) {
    return 0;
  }

  RunQueue& source = topology_.queue(busiest);
  RunQueue& target = topology_.queue(idlest);
  std::size_t migrated = 0;
  while (migrated < params_.max_migrations_per_round &&
         source.size() > target.size() + 1) {
    // Steal from the back (highest credit = furthest from dispatch), the
    // cheapest victim for cache locality, as credit2 does.
    Vcpu* victim = nullptr;
    {
      util::LockGuard guard(source.lock());
      if (source.empty()) {
        break;
      }
      victim = &source.list().back();
      source.remove(*victim);
    }
    {
      util::LockGuard guard(target.lock());
      target.insert_sorted(*victim);
    }
    target.update_load_enqueue();
    if (trace_ != nullptr) {
      trace_->record(static_cast<util::Nanos>(total_migrations_ + migrated),
                     TraceEvent::kMigrate, idlest, victim->id,
                     victim->sandbox);
    }
    ++migrated;
  }
  total_migrations_ += migrated;
  return migrated;
}

void TickDriver::on_tick() {
  ++ticks_;
  for (CpuId cpu = 0; cpu < topology_.num_cpus(); ++cpu) {
    RunQueue& queue = topology_.queue(cpu);
    if (queue.empty()) {
      queue.decay_load(1);
    }
  }
  if (ticks_ % rebalance_every_ == 0) {
    (void)balancer_.rebalance();
  }
}

}  // namespace sched
