// CPU idle-state (cpuidle) governor.
//
// Between uLL triggers the reserved ull_runqueue's CPU is idle, and what
// C-state it sleeps in bounds the *hardware* wake-up latency added on top
// of HORSE's software resume. The paper's related work (µDPM, AgileWatts,
// Yawn) attacks exactly this "killer microseconds" problem: C6 exit costs
// ~100 µs — three orders of magnitude over the ~150 ns fast path. This
// module models a menu-governor-style policy: per-CPU EWMA prediction of
// idle duration, deepest state whose target residency fits, with an
// optional per-CPU latency cap that uLL reservation sets to keep the
// ull_runqueue's CPU in shallow states.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "util/time.hpp"

namespace horse::sched {

struct CState {
  std::string_view name;
  /// Wake-up cost paid by the first task after idle.
  util::Nanos exit_latency = 0;
  /// Minimum profitable idle duration (entry+exit amortisation).
  util::Nanos target_residency = 0;
  /// Package power while resident, for energy comparisons.
  double power_watts = 0.0;
};

/// A typical server-class C-state table (Skylake-SP-like magnitudes).
[[nodiscard]] const std::vector<CState>& default_cstates();

struct IdleGovernorParams {
  /// EWMA smoothing for the per-CPU idle-duration predictor.
  double ewma_alpha = 0.3;
  /// Predictions start at this value until observations arrive.
  util::Nanos initial_prediction = 1 * util::kMillisecond;
};

class IdleGovernor {
 public:
  using Params = IdleGovernorParams;

  IdleGovernor(std::size_t num_cpus, std::vector<CState> states,
               Params params = {});
  explicit IdleGovernor(std::size_t num_cpus)
      : IdleGovernor(num_cpus, default_cstates()) {}

  /// Menu policy: deepest state whose target residency fits the predicted
  /// idle duration AND whose exit latency respects the CPU's cap.
  [[nodiscard]] std::size_t select(std::uint32_t cpu) const;

  /// Record an observed idle interval; updates the predictor.
  void observe_idle(std::uint32_t cpu, util::Nanos duration);

  /// Latency cap (QoS): states with exit_latency above it are off-limits
  /// on this CPU. uLL reservation sets ~0 to pin the CPU at C0/C1.
  void set_latency_cap(std::uint32_t cpu, util::Nanos cap);
  [[nodiscard]] util::Nanos latency_cap(std::uint32_t cpu) const;

  [[nodiscard]] util::Nanos predicted_idle(std::uint32_t cpu) const;
  [[nodiscard]] const CState& state(std::size_t index) const {
    return states_.at(index);
  }
  [[nodiscard]] std::size_t num_states() const noexcept {
    return states_.size();
  }

  /// Wake-up latency the next trigger on `cpu` would pay right now.
  [[nodiscard]] util::Nanos wake_penalty(std::uint32_t cpu) const {
    return states_.at(select(cpu)).exit_latency;
  }

 private:
  std::vector<CState> states_;  // ordered shallow -> deep
  Params params_;
  std::vector<util::Nanos> predictions_;
  std::vector<util::Nanos> caps_;
  std::vector<bool> seeded_;
};

}  // namespace horse::sched
