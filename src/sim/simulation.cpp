#include "sim/simulation.hpp"

#include <stdexcept>

namespace horse::sim {

EventId Simulation::schedule_at(util::Nanos when, Callback callback) {
  if (when < now_) {
    throw std::invalid_argument("Simulation: cannot schedule in the past");
  }
  const EventId id = next_id_++;
  heap_.push(Event{when, id, std::move(callback)});
  pending_ids_.insert(id);
  return id;
}

bool Simulation::cancel(EventId id) {
  // Only a still-pending event can be cancelled; cancelling one that has
  // already fired reports false so callers can tell the race apart.
  if (pending_ids_.erase(id) == 0) {
    return false;
  }
  cancelled_.insert(id);
  return true;
}

void Simulation::purge_cancelled() {
  while (!heap_.empty() && cancelled_.count(heap_.top().id) > 0) {
    cancelled_.erase(heap_.top().id);
    heap_.pop();
  }
}

bool Simulation::step() {
  purge_cancelled();
  if (heap_.empty()) {
    return false;
  }
  Event event = heap_.top();
  heap_.pop();
  pending_ids_.erase(event.id);
  now_ = event.when;
  ++processed_;
  event.callback();
  return true;
}

void Simulation::run_until(util::Nanos end) {
  for (;;) {
    purge_cancelled();
    if (heap_.empty() || heap_.top().when > end) {
      break;
    }
    if (!step()) {
      break;
    }
  }
  if (now_ < end) {
    now_ = end;
  }
}

void Simulation::run() {
  while (step()) {
  }
}

}  // namespace horse::sim
