// Resume/boot cost model for the simulation plane.
//
// The macro experiments need a latency figure for every sandbox operation.
// Two sources are supported:
//
//   * defaults(profile) — analytic constants reproducing the paper's
//     reported bands (Table 1: cold 1.5 s, restore 1.3 ms, warm init
//     ≈1.1 µs at 1 vCPU; Figure 3: vanilla growing ~linearly in vCPUs,
//     HORSE flat ≈150 ns). Deterministic; used by unit tests and for
//     paper-shape comparison runs.
//   * calibrate(profile) — runs the *real* vanilla and HORSE resume
//     engines of this repository across vCPU counts on the current host
//     and stores median measurements, so simulated end-to-end numbers are
//     grounded in this machine's actual data-structure costs.
//
// A note on the paper's internal numbers: Table 1 reports 1.1 µs of warm
// *initialization* for a 1-vCPU microVM, while Figure 3 shows resume times
// whose 36-vCPU vanilla point is ≈7.16× HORSE's flat ≈150 ns ≈ 1.07 µs.
// These are only consistent if warm initialization includes generic
// dispatch plumbing on top of the scheduler resume; the model therefore
// separates `warm_dispatch_overhead` (charged to cold/restore/warm
// strategies) from the resume call itself (all HORSE's fast path pays).
#pragma once

#include <array>
#include <cstdint>

#include "util/time.hpp"
#include "vmm/profile.hpp"

namespace horse::sim {

class CostModel {
 public:
  static constexpr std::uint32_t kMaxVcpus = 36;

  /// Analytic model with the paper's bands.
  [[nodiscard]] static CostModel defaults(const vmm::VmmProfile& profile);

  /// Measure this host: medians over `repetitions` pause/resume cycles per
  /// vCPU count, on a private topology. Takes a few hundred ms.
  [[nodiscard]] static CostModel calibrate(const vmm::VmmProfile& profile,
                                           unsigned repetitions = 15);

  [[nodiscard]] util::Nanos cold_boot() const noexcept { return cold_boot_; }
  [[nodiscard]] util::Nanos restore() const noexcept { return restore_; }

  /// Scheduler-path resume cost (Figure 3's y-axis).
  [[nodiscard]] util::Nanos vanilla_resume(std::uint32_t vcpus) const noexcept {
    return vanilla_[clamp_vcpus(vcpus)];
  }
  [[nodiscard]] util::Nanos horse_resume(std::uint32_t vcpus) const noexcept {
    return horse_[clamp_vcpus(vcpus)];
  }

  /// Generic warm-start plumbing on top of the resume call (request
  /// routing, sandbox lookup); HORSE's fast path bypasses it.
  [[nodiscard]] util::Nanos warm_dispatch_overhead() const noexcept {
    return warm_dispatch_overhead_;
  }

  /// Full sandbox-initialization latency per start strategy, as Table 1 /
  /// Figure 4 account it.
  [[nodiscard]] util::Nanos init_cold(std::uint32_t vcpus) const noexcept {
    return cold_boot_ + warm_dispatch_overhead_ + vanilla_resume(vcpus);
  }
  [[nodiscard]] util::Nanos init_restore(std::uint32_t vcpus) const noexcept {
    return restore_ + warm_dispatch_overhead_ + vanilla_resume(vcpus);
  }
  [[nodiscard]] util::Nanos init_warm(std::uint32_t vcpus) const noexcept {
    return warm_dispatch_overhead_ + vanilla_resume(vcpus);
  }
  [[nodiscard]] util::Nanos init_horse(std::uint32_t vcpus) const noexcept {
    return horse_resume(vcpus);
  }

 private:
  static std::uint32_t clamp_vcpus(std::uint32_t vcpus) noexcept {
    if (vcpus == 0) {
      return 1;
    }
    return vcpus > kMaxVcpus ? kMaxVcpus : vcpus;
  }

  util::Nanos cold_boot_ = 0;
  util::Nanos restore_ = 0;
  util::Nanos warm_dispatch_overhead_ = 0;
  std::array<util::Nanos, kMaxVcpus + 1> vanilla_{};
  std::array<util::Nanos, kMaxVcpus + 1> horse_{};
};

}  // namespace horse::sim
