// Virtual-time CPU execution over the credit scheduler.
//
// Each physical CPU dispatches vCPUs from its run queue via
// Credit2Scheduler, runs the head for min(time slice, remaining work),
// charges credit, and requeues — all as simulation events. This is what
// turns the scheduler substrate into end-to-end function latencies for the
// §5.4 colocation experiment.
//
// Interference modelling: block_cpu() injects a blackout interval on a
// CPU, standing in for (a) the time a resume holds the target queue
// stalled and (b) a 𝒫²𝒮ℳ merge thread preempting whatever runs there
// (§4.1.3: merge threads "preempt any task on the run queue where it is
// scheduled"). A blackout extends the completion of the slice currently
// running on that CPU and delays the next dispatch.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "sched/credit2.hpp"
#include "sim/simulation.hpp"
#include "util/time.hpp"

namespace horse::sim {

class CpuExecutor {
 public:
  using CompletionFn = std::function<void(sched::Vcpu&)>;

  CpuExecutor(Simulation& simulation, sched::Credit2Scheduler& scheduler);

  CpuExecutor(const CpuExecutor&) = delete;
  CpuExecutor& operator=(const CpuExecutor&) = delete;

  /// Enqueue `vcpu` on `cpu` with `work` nanoseconds of pending execution;
  /// `on_done` fires in virtual time when the work completes.
  void submit(sched::Vcpu& vcpu, sched::CpuId cpu, util::Nanos work,
              CompletionFn on_done);

  /// Add `work` to a vCPU that is already submitted (keeps its position).
  void add_work(sched::Vcpu& vcpu, util::Nanos work);

  /// Blackout: see file comment. Extends a running slice and delays the
  /// next dispatch on `cpu` by `duration`.
  void block_cpu(sched::CpuId cpu, util::Nanos duration);

  /// Opt-in wake preemption (SFS colocation experiments): when enabled,
  /// submit() compares the new vCPU against the slice running on the
  /// target CPU with Credit2Scheduler::should_preempt(); a winning
  /// candidate cancels the victim's slice mid-flight (only the executed
  /// fraction is charged, the rest requeues) and takes the CPU
  /// immediately via dispatch_direct(). Default OFF: the executor keeps
  /// its historical run-to-slice-end behaviour, so existing experiments
  /// are bit-identical unless they ask for this.
  void set_wake_preemption(bool on) noexcept { wake_preemption_ = on; }
  [[nodiscard]] bool wake_preemption() const noexcept {
    return wake_preemption_;
  }

  [[nodiscard]] bool idle(sched::CpuId cpu) const {
    return !cpus_.at(cpu).busy;
  }
  [[nodiscard]] std::uint64_t dispatches() const noexcept { return dispatches_; }
  [[nodiscard]] std::uint64_t preemptions() const noexcept { return preemptions_; }

 private:
  struct Task {
    util::Nanos remaining = 0;
    CompletionFn on_done;
  };
  struct CpuState {
    bool busy = false;
    sched::Vcpu* running = nullptr;
    EventId slice_event = 0;
    util::Nanos slice_end = 0;
    util::Nanos slice_started = 0;
    util::Nanos slice_run = 0;       // planned execution in this slice
    util::Nanos blackout_until = 0;  // dispatch gate
  };

  void kick(sched::CpuId cpu);
  void dispatch(sched::CpuId cpu);
  void finish_slice(sched::CpuId cpu);
  /// Cancel the slice running on `cpu`, charge the victim for what it
  /// actually executed, and requeue (or complete) it. Leaves the CPU
  /// idle; callers dispatch the winner themselves. When the preemption
  /// lands at the exact instant the victim's work ran out, its
  /// completion callback is NOT invoked here — it is returned for the
  /// caller to run after the winner has taken the CPU, so a callback
  /// that submits new work never sees the CPU in its transient idle
  /// state (run_now() asserts !busy).
  [[nodiscard]] std::function<void()> preempt_running(sched::CpuId cpu);
  /// Start a slice for `vcpu` on the (idle) `cpu` without going through
  /// the scheduler's head pick.
  void run_now(sched::CpuId cpu, sched::Vcpu& vcpu);

  Simulation& sim_;
  sched::Credit2Scheduler& scheduler_;
  std::unordered_map<sched::Vcpu*, Task> tasks_;
  std::vector<CpuState> cpus_;
  bool wake_preemption_ = false;
  std::uint64_t dispatches_ = 0;
  std::uint64_t preemptions_ = 0;
};

}  // namespace horse::sim
