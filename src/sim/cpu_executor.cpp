#include "sim/cpu_executor.hpp"

#include <algorithm>
#include <cassert>

namespace horse::sim {

CpuExecutor::CpuExecutor(Simulation& simulation,
                         sched::Credit2Scheduler& scheduler)
    : sim_(simulation), scheduler_(scheduler) {
  cpus_.resize(scheduler.topology().num_cpus());
}

void CpuExecutor::submit(sched::Vcpu& vcpu, sched::CpuId cpu, util::Nanos work,
                         CompletionFn on_done) {
  assert(work > 0);
  tasks_[&vcpu] = Task{work, std::move(on_done)};
  if (wake_preemption_) {
    CpuState& state = cpus_.at(cpu);
    if (state.busy && state.running != nullptr &&
        state.blackout_until <= sim_.now() &&
        scheduler_.should_preempt(*state.running, vcpu)) {
      // Install the winner before the victim's completion (if any) runs:
      // a completion callback may submit/kick more work, and it must see
      // the CPU busy with the winner, not mid-handoff idle.
      const std::function<void()> victim_done = preempt_running(cpu);
      scheduler_.dispatch_direct(vcpu, cpu);
      run_now(cpu, vcpu);
      if (victim_done) {
        victim_done();
      }
      return;
    }
  }
  scheduler_.enqueue(vcpu, cpu);
  kick(cpu);
}

void CpuExecutor::add_work(sched::Vcpu& vcpu, util::Nanos work) {
  const auto it = tasks_.find(&vcpu);
  if (it != tasks_.end()) {
    it->second.remaining += work;
  }
}

void CpuExecutor::block_cpu(sched::CpuId cpu, util::Nanos duration) {
  CpuState& state = cpus_.at(cpu);
  const util::Nanos now = sim_.now();
  state.blackout_until = std::max(state.blackout_until, now + duration);
  if (state.busy && state.slice_event != 0) {
    // The blackout preempts the running slice: its wall completion moves
    // out by `duration`, the executed work stays the same.
    sim_.cancel(state.slice_event);
    state.slice_end += duration;
    state.slice_event =
        sim_.schedule_at(state.slice_end, [this, cpu] { finish_slice(cpu); });
    ++preemptions_;
  } else if (!state.busy) {
    // Ensure a dispatch attempt happens once the blackout lifts.
    sim_.schedule_at(state.blackout_until, [this, cpu] { kick(cpu); });
  }
}

std::function<void()> CpuExecutor::preempt_running(sched::CpuId cpu) {
  CpuState& state = cpus_.at(cpu);
  sched::Vcpu* victim = state.running;
  sim_.cancel(state.slice_event);
  const util::Nanos executed = std::clamp<util::Nanos>(
      sim_.now() - state.slice_started, 0, state.slice_run);
  state.busy = false;
  state.running = nullptr;
  state.slice_event = 0;
  ++preemptions_;

  const auto it = tasks_.find(victim);
  if (it == tasks_.end()) {
    return {};
  }
  Task& task = it->second;
  task.remaining -= executed;
  const bool done = task.remaining <= 0;
  scheduler_.charge_and_requeue(*victim, executed, /*still_runnable=*/!done);
  if (!done) {
    return {};
  }
  // Preempted at the exact instant its work ran out: complete as usual,
  // but deferred — the caller runs this after the winner owns the CPU.
  CompletionFn on_done = std::move(task.on_done);
  tasks_.erase(it);
  if (!on_done) {
    return {};
  }
  return [on_done = std::move(on_done), victim] { on_done(*victim); };
}

void CpuExecutor::run_now(sched::CpuId cpu, sched::Vcpu& vcpu) {
  CpuState& state = cpus_.at(cpu);
  assert(!state.busy);
  const auto it = tasks_.find(&vcpu);
  assert(it != tasks_.end());
  const util::Nanos run =
      std::min(scheduler_.slice_for(cpu), it->second.remaining);
  state.busy = true;
  state.running = &vcpu;
  state.slice_started = sim_.now();
  state.slice_run = run;
  state.slice_end = sim_.now() + run;
  ++dispatches_;
  state.slice_event =
      sim_.schedule_at(state.slice_end, [this, cpu] { finish_slice(cpu); });
}

void CpuExecutor::kick(sched::CpuId cpu) {
  CpuState& state = cpus_.at(cpu);
  if (state.busy) {
    return;
  }
  const util::Nanos now = sim_.now();
  if (state.blackout_until > now) {
    sim_.schedule_at(state.blackout_until, [this, cpu] { kick(cpu); });
    return;
  }
  dispatch(cpu);
}

void CpuExecutor::dispatch(sched::CpuId cpu) {
  sched::Vcpu* vcpu = scheduler_.schedule(cpu);
  if (vcpu == nullptr) {
    return;  // idle
  }
  if (tasks_.find(vcpu) == tasks_.end()) {
    // A vCPU with no pending work (e.g. a resumed-but-idle uLL vCPU):
    // charge nothing, drop it from the queue, look for the next one.
    vcpu->state = sched::VcpuState::kOffline;
    dispatch(cpu);
    return;
  }
  run_now(cpu, *vcpu);
}

void CpuExecutor::finish_slice(sched::CpuId cpu) {
  CpuState& state = cpus_.at(cpu);
  sched::Vcpu* vcpu = state.running;
  state.busy = false;
  state.running = nullptr;
  state.slice_event = 0;
  if (vcpu == nullptr) {
    kick(cpu);
    return;
  }

  const auto it = tasks_.find(vcpu);
  assert(it != tasks_.end());
  Task& task = it->second;
  task.remaining -= state.slice_run;
  const bool done = task.remaining <= 0;
  scheduler_.charge_and_requeue(*vcpu, state.slice_run, /*still_runnable=*/!done);
  if (done) {
    CompletionFn on_done = std::move(task.on_done);
    tasks_.erase(it);
    if (on_done) {
      on_done(*vcpu);
    }
  }
  kick(cpu);
}

}  // namespace horse::sim
