#include "sim/cost_model.hpp"

#include <algorithm>
#include <vector>

#include "core/horse_resume.hpp"
#include "sched/topology.hpp"
#include "vmm/resume_engine.hpp"
#include "vmm/sandbox.hpp"

namespace horse::sim {

CostModel CostModel::defaults(const vmm::VmmProfile& profile) {
  CostModel model;
  model.cold_boot_ = profile.cold_boot;
  model.restore_ = profile.snapshot_restore;
  model.warm_dispatch_overhead_ = 820;  // warm init(1 vCPU) ≈ 1.1 µs total
  for (std::uint32_t n = 0; n <= kMaxVcpus; ++n) {
    // Vanilla grows linearly in vCPUs (one sorted walk + one locked load
    // update each); 36 vCPUs ≈ 1.08 µs ≈ 7.16× HORSE's flat ≈150 ns.
    model.vanilla_[n] = 250 + 23 * static_cast<util::Nanos>(n);
    // HORSE: constant-time splice set + one load FMA; the residual slope
    // is the per-vCPU state-bit writes.
    model.horse_[n] = 148 + (n / 8);
  }
  return model;
}

namespace {

/// Median resume latency over `reps` pause/resume cycles of a fresh
/// sandbox with `vcpus` vCPUs, against `engine`.
util::Nanos measure_resume(vmm::ResumeEngine& engine, std::uint32_t vcpus,
                           bool ull, unsigned reps) {
  vmm::SandboxConfig config;
  config.name = "calib";
  config.num_vcpus = vcpus;
  config.memory_mb = 1;  // calibration needs no memory image to speak of
  config.ull = ull;
  vmm::Sandbox sandbox(9000 + vcpus, config);
  (void)engine.start(sandbox);

  std::vector<util::Nanos> samples;
  samples.reserve(reps);
  for (unsigned i = 0; i < reps; ++i) {
    (void)engine.pause(sandbox);
    vmm::ResumeBreakdown breakdown;
    (void)engine.resume(sandbox, &breakdown);
    samples.push_back(breakdown.total());
  }
  (void)engine.destroy(sandbox);

  std::nth_element(samples.begin(), samples.begin() + samples.size() / 2,
                   samples.end());
  return samples[samples.size() / 2];
}

/// Background occupancy so calibration's sorted merges walk realistic
/// queue lengths (an idle queue would understate vanilla's step ④).
struct BackgroundLoad {
  explicit BackgroundLoad(vmm::ResumeEngine& engine) : engine_(engine) {
    vmm::SandboxConfig config;
    config.name = "background";
    config.num_vcpus = 12;
    config.memory_mb = 1;
    sandbox = std::make_unique<vmm::Sandbox>(8999, config);
    // Spread credits so sorted inserts land mid-queue, not always at an end.
    for (std::uint32_t i = 0; i < config.num_vcpus; ++i) {
      sandbox->vcpu(i).credit = static_cast<sched::Credit>(1000) * (i + 1);
    }
    (void)engine_.start(*sandbox);
  }

  // The sandbox's vCPUs are linked into the engine's run queues; they must
  // be dequeued through the engine BEFORE the sandbox frees them, or the
  // queues' destructors walk dangling hooks (BackgroundLoad is declared
  // after the topology, so it is destroyed first — use-after-free caught
  // by the asan-ubsan preset).
  ~BackgroundLoad() { (void)engine_.destroy(*sandbox); }

  BackgroundLoad(const BackgroundLoad&) = delete;
  BackgroundLoad& operator=(const BackgroundLoad&) = delete;

  vmm::ResumeEngine& engine_;
  std::unique_ptr<vmm::Sandbox> sandbox;
};

}  // namespace

CostModel CostModel::calibrate(const vmm::VmmProfile& profile,
                               unsigned repetitions) {
  CostModel model = defaults(profile);  // modelled boot/restore unchanged

  // Vanilla engine on its own topology.
  {
    sched::CpuTopology topology(8);
    vmm::ResumeEngine engine(topology, profile);
    BackgroundLoad background(engine);
    for (std::uint32_t n = 1; n <= kMaxVcpus; ++n) {
      model.vanilla_[n] = measure_resume(engine, n, /*ull=*/false, repetitions);
    }
    model.vanilla_[0] = model.vanilla_[1];
  }

  // HORSE engine (sequential merge, one ull queue), same background.
  {
    sched::CpuTopology topology(8);
    core::HorseConfig config;
    core::HorseResumeEngine engine(topology, profile, config);
    BackgroundLoad background(engine);
    for (std::uint32_t n = 1; n <= kMaxVcpus; ++n) {
      model.horse_[n] = measure_resume(engine, n, /*ull=*/true, repetitions);
    }
    model.horse_[0] = model.horse_[1];
  }

  return model;
}

}  // namespace horse::sim
