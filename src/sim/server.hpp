// Whole-node FaaS server in virtual time.
//
// ColocationExperiment (faas/colocation.hpp) reproduces one paper section;
// SimServer generalises the plane: a multi-function server processing an
// arbitrary arrival schedule with warm pools, keep-alive policy (fixed or
// hybrid-histogram), cold starts, and the HORSE fast path — entirely on
// the discrete-event clock, with resume/boot costs from the CostModel.
// It answers platform-design questions the real-time plane cannot reach
// in bounded wall time: cold-start rates over hours of traffic, warm-pool
// residency cost, init-latency distributions per start class.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "faas/keepalive_policy.hpp"
#include "metrics/histogram.hpp"
#include "sim/cost_model.hpp"
#include "trace/schedule.hpp"
#include "trace/synthetic.hpp"
#include "util/time.hpp"

namespace horse::sim {

struct SimFunctionSpec {
  std::string name;
  std::uint32_t vcpus = 1;
  bool ull = false;
  /// Per-function concurrency limit (FaaS providers cap in-flight
  /// executions); arrivals beyond it queue FIFO. 0 = unlimited.
  std::uint32_t max_concurrent = 0;
  trace::DurationSampler::Params durations{
      .median = 100 * util::kMillisecond,
      .sigma = 0.5,
      .tail_fraction = 0.02,
      .tail_min = util::kSecond,
      .tail_max = 5 * util::kSecond,
      .tail_alpha = 1.5,
  };
};

struct SimServerParams {
  std::size_t num_cpus = 12;
  std::size_t num_ull_queues = 1;
  /// Resume uLL functions through the HORSE fast path (vs vanilla warm).
  bool use_horse = true;
  /// Keep-alive: fixed window, or learned per function when adaptive.
  bool adaptive_keep_alive = false;
  faas::KeepAlivePolicyConfig keep_alive_policy;
  util::Nanos fixed_keep_alive = 10LL * 60 * util::kSecond;
  std::uint64_t seed = 5;
};

struct SimServerReport {
  std::uint64_t invocations = 0;
  std::uint64_t cold_starts = 0;
  std::uint64_t warm_starts = 0;   // vanilla warm resumes
  std::uint64_t horse_starts = 0;  // fast-path resumes
  std::uint64_t evictions = 0;
  /// Arrivals that waited for a concurrency slot, and their wait times.
  std::uint64_t throttled = 0;
  metrics::Histogram admission_wait;
  /// Warm-pool residency: sandbox-seconds kept paused in the pool.
  double warm_sandbox_seconds = 0.0;
  metrics::Histogram init_latency;
  metrics::Histogram init_latency_ull;   // uLL-flagged functions only
  metrics::Histogram init_latency_long;  // everything else
  metrics::Histogram end_to_end_latency;

  [[nodiscard]] double cold_fraction() const noexcept {
    return invocations == 0
               ? 0.0
               : static_cast<double>(cold_starts) /
                     static_cast<double>(invocations);
  }
};

class SimServer {
 public:
  SimServer(SimServerParams params, const CostModel& costs);

  /// Register a function; returns the id to use in the arrival schedule.
  std::uint32_t add_function(SimFunctionSpec spec);

  /// Process the whole schedule; returns the aggregate report.
  [[nodiscard]] SimServerReport run(const trace::ArrivalSchedule& arrivals);

 private:
  struct PooledSandbox {
    util::Nanos parked_at = 0;
  };
  struct FunctionState {
    SimFunctionSpec spec;
    std::deque<PooledSandbox> pool;
    std::unique_ptr<trace::DurationSampler> durations;
    std::uint32_t in_flight = 0;
    std::deque<util::Nanos> admission_queue;  // arrival times of waiters
  };

  /// Policy windows for a function: release the sandbox for
  /// `prewarm` after it parks (re-provision it at the end of that gap),
  /// then keep it warm for `keep_alive`. Fixed policy: prewarm = 0.
  struct Windows {
    util::Nanos prewarm = 0;
    util::Nanos keep_alive = 0;
  };
  [[nodiscard]] Windows windows_for(std::uint32_t function) const;

  SimServerParams params_;
  const CostModel& costs_;
  std::vector<FunctionState> functions_;
  faas::HybridHistogramPolicy policy_;
};

}  // namespace horse::sim
