// Discrete-event simulation kernel.
//
// The macro experiments (Table 1, Figure 4, the §5.4 colocation study)
// need hours-equivalent of FaaS traffic with nanosecond-resolution resume
// events — far beyond what real-time execution on one host could cover.
// The kernel is a classic calendar: a min-heap of (time, sequence, event)
// with a virtual clock, strictly deterministic (ties break by insertion
// sequence), single-threaded.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "util/time.hpp"

namespace horse::sim {

using EventId = std::uint64_t;

class Simulation {
 public:
  using Callback = std::function<void()>;

  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  [[nodiscard]] util::Nanos now() const noexcept { return now_; }

  /// Schedule `callback` at absolute virtual time `when` (>= now).
  EventId schedule_at(util::Nanos when, Callback callback);

  /// Schedule `callback` `delay` nanoseconds from now.
  EventId schedule_after(util::Nanos delay, Callback callback) {
    return schedule_at(now_ + (delay < 0 ? 0 : delay), std::move(callback));
  }

  /// Cancel a pending event. Returns false if it already fired or was
  /// already cancelled. (Keep-alive eviction timers get cancelled when a
  /// warm sandbox is reused.)
  bool cancel(EventId id);

  /// Run until the queue drains or the clock would pass `end`; events at
  /// exactly `end` still fire.
  void run_until(util::Nanos end);

  /// Run until the queue drains.
  void run();

  [[nodiscard]] std::uint64_t events_processed() const noexcept {
    return processed_;
  }
  [[nodiscard]] std::size_t pending() const noexcept {
    return pending_ids_.size();
  }

 private:
  struct Event {
    util::Nanos when;
    EventId id;
    Callback callback;
  };
  struct Later {
    bool operator()(const Event& lhs, const Event& rhs) const noexcept {
      // Min-heap by time; FIFO among equal timestamps (ids are monotonic).
      return lhs.when != rhs.when ? lhs.when > rhs.when : lhs.id > rhs.id;
    }
  };

  bool step();
  void purge_cancelled();

  util::Nanos now_ = 0;
  EventId next_id_ = 1;
  std::uint64_t processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::unordered_set<EventId> cancelled_;
  std::unordered_set<EventId> pending_ids_;
};

}  // namespace horse::sim
