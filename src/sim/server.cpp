#include "sim/server.hpp"

#include <functional>

#include "sched/credit2.hpp"
#include "sched/topology.hpp"
#include "sim/cpu_executor.hpp"
#include "sim/simulation.hpp"
#include "util/rng.hpp"

namespace horse::sim {

SimServer::SimServer(SimServerParams params, const CostModel& costs)
    : params_(params), costs_(costs), policy_(params.keep_alive_policy) {}

std::uint32_t SimServer::add_function(SimFunctionSpec spec) {
  FunctionState state;
  state.spec = std::move(spec);
  state.durations = std::make_unique<trace::DurationSampler>(
      state.spec.durations,
      params_.seed + 100 + functions_.size());
  functions_.push_back(std::move(state));
  return static_cast<std::uint32_t>(functions_.size() - 1);
}

SimServer::Windows SimServer::windows_for(std::uint32_t function) const {
  if (!params_.adaptive_keep_alive) {
    return Windows{0, params_.fixed_keep_alive};
  }
  const auto decision = policy_.decide(function);
  if (!decision.from_histogram) {
    return Windows{0, params_.fixed_keep_alive};
  }
  return Windows{decision.prewarm_window, decision.keep_alive};
}

SimServerReport SimServer::run(const trace::ArrivalSchedule& arrivals) {
  Simulation sim;
  sched::CpuTopology topology(params_.num_cpus);
  std::vector<sched::CpuId> ull_cpus;
  for (std::size_t i = 0; i < params_.num_ull_queues; ++i) {
    const auto cpu = static_cast<sched::CpuId>(params_.num_cpus - 1 - i);
    topology.reserve_for_ull(cpu);
    ull_cpus.push_back(cpu);
  }
  std::vector<sched::CpuId> general_cpus;
  for (sched::CpuId cpu = 0; cpu < topology.num_cpus(); ++cpu) {
    if (!topology.is_reserved(cpu)) {
      general_cpus.push_back(cpu);
    }
  }

  sched::Credit2Scheduler scheduler(topology);
  CpuExecutor executor(sim, scheduler);
  util::Xoshiro256 rng(params_.seed);
  SimServerReport report;

  std::unordered_map<sched::Vcpu*, std::unique_ptr<sched::Vcpu>> live;
  std::uint32_t next_vcpu_id = 1;
  auto make_vcpu = [&]() -> sched::Vcpu& {
    auto vcpu = std::make_unique<sched::Vcpu>();
    vcpu->id = next_vcpu_id++;
    sched::Vcpu& ref = *vcpu;
    live.emplace(&ref, std::move(vcpu));
    return ref;
  };

  auto pick_general = [&]() -> sched::CpuId {
    sched::CpuId best = general_cpus.front();
    std::size_t best_depth =
        topology.queue(best).size() + (executor.idle(best) ? 0 : 1);
    for (const sched::CpuId cpu : general_cpus) {
      const std::size_t depth =
          topology.queue(cpu).size() + (executor.idle(cpu) ? 0 : 1);
      if (depth < best_depth) {
        best = cpu;
        best_depth = depth;
      }
    }
    return best;
  };

  // Reclaim expired pool entries of one function at virtual time `now`.
  // Tokens enter the pool at the end of any pre-warm gap, so only the
  // keep-alive window applies here.
  auto evict_expired = [&](std::uint32_t id, util::Nanos now) {
    FunctionState& fn = functions_[id];
    const util::Nanos window = windows_for(id).keep_alive;
    while (!fn.pool.empty() && now - fn.pool.front().parked_at > window) {
      report.warm_sandbox_seconds +=
          static_cast<double>(window) / 1e9;  // kept warm for the window
      fn.pool.pop_front();
      ++report.evictions;
    }
  };

  // Park a finished sandbox. With a learned pre-warm window the sandbox
  // is *released* for the gap and re-provisioned at its end (the ATC'20
  // mechanism: pay a gap of absence instead of idle residency); with the
  // fixed policy it pools immediately.
  auto park = [&](std::uint32_t id) {
    const Windows windows = windows_for(id);
    if (windows.prewarm <= 0) {
      functions_[id].pool.push_back(PooledSandbox{sim.now()});
      return;
    }
    sim.schedule_after(windows.prewarm, [&, id] {
      functions_[id].pool.push_back(PooledSandbox{sim.now()});
    });
  };

  // Admit one invocation of function `id` that originally arrived at
  // `arrived`. Called from the arrival event (if a concurrency slot is
  // free) or from a completion (draining the admission queue).
  std::function<void(std::uint32_t, util::Nanos)> admit =
      [&](std::uint32_t id, util::Nanos arrived) {
        FunctionState& fn = functions_[id];
        const util::Nanos now = sim.now();
        ++fn.in_flight;
        evict_expired(id, now);

        // Start strategy: warm pool hit or cold.
        util::Nanos init = 0;
        if (!fn.pool.empty()) {
          const PooledSandbox token = fn.pool.back();
          fn.pool.pop_back();
          report.warm_sandbox_seconds +=
              static_cast<double>(now - token.parked_at) / 1e9;
          if (fn.spec.ull && params_.use_horse) {
            init = costs_.init_horse(fn.spec.vcpus);
            ++report.horse_starts;
          } else {
            init = costs_.init_warm(fn.spec.vcpus);
            ++report.warm_starts;
          }
        } else {
          init = costs_.init_cold(fn.spec.vcpus);
          ++report.cold_starts;
        }
        report.init_latency.record(init);
        (fn.spec.ull ? report.init_latency_ull : report.init_latency_long)
            .record(init);

        // Execute after init; uLL fast-path work lands on the reserved
        // queue, everything else on the general queues.
        const sched::CpuId cpu = (fn.spec.ull && params_.use_horse)
                                     ? ull_cpus.front()
                                     : pick_general();
        const util::Nanos service = fn.durations->sample();
        sim.schedule_after(init, [&, id, cpu, service, arrived] {
          sched::Vcpu& vcpu = make_vcpu();
          executor.submit(
              vcpu, cpu, service, [&, id, arrived](sched::Vcpu& done) {
                report.end_to_end_latency.record(sim.now() - arrived);
                FunctionState& fn_done = functions_[id];
                park(id);
                --fn_done.in_flight;
                live.erase(&done);
                // Drain one queued arrival, if any.
                if (!fn_done.admission_queue.empty()) {
                  const util::Nanos queued_at = fn_done.admission_queue.front();
                  fn_done.admission_queue.pop_front();
                  report.admission_wait.record(sim.now() - queued_at);
                  admit(id, queued_at);
                }
              });
        });
      };

  for (const auto& arrival : arrivals.arrivals()) {
    sim.schedule_at(arrival.time, [&, arrival] {
      const std::uint32_t id = arrival.function_id % functions_.size();
      FunctionState& fn = functions_[id];
      policy_.record_invocation(id, sim.now());
      ++report.invocations;
      if (fn.spec.max_concurrent != 0 &&
          fn.in_flight >= fn.spec.max_concurrent) {
        ++report.throttled;
        fn.admission_queue.push_back(sim.now());
        return;
      }
      admit(id, sim.now());
    });
  }

  sim.run();

  // Residual pool residency at end of run.
  const util::Nanos end = sim.now();
  for (std::uint32_t id = 0; id < functions_.size(); ++id) {
    for (const auto& token : functions_[id].pool) {
      report.warm_sandbox_seconds +=
          static_cast<double>(end - token.parked_at) / 1e9;
    }
    functions_[id].pool.clear();
    functions_[id].in_flight = 0;
    functions_[id].admission_queue.clear();
  }
  return report;
}

}  // namespace horse::sim
