// Arrival schedules: the common currency between the trace sources (real
// Azure CSV or synthetic) and the experiment drivers.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/time.hpp"

namespace horse::trace {

struct Arrival {
  util::Nanos time = 0;
  std::uint32_t function_id = 0;
};

class ArrivalSchedule {
 public:
  ArrivalSchedule() = default;
  explicit ArrivalSchedule(std::vector<Arrival> arrivals)
      : arrivals_(std::move(arrivals)) {
    sort();
  }

  void add(Arrival arrival) { arrivals_.push_back(arrival); }
  void sort() {
    std::stable_sort(arrivals_.begin(), arrivals_.end(),
                     [](const Arrival& lhs, const Arrival& rhs) {
                       return lhs.time < rhs.time;
                     });
  }

  [[nodiscard]] const std::vector<Arrival>& arrivals() const noexcept {
    return arrivals_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return arrivals_.size(); }
  [[nodiscard]] bool empty() const noexcept { return arrivals_.empty(); }

  [[nodiscard]] util::Nanos duration() const noexcept {
    return arrivals_.empty() ? 0 : arrivals_.back().time;
  }

  /// Arrivals within [begin, end), shifted so the window starts at 0 —
  /// how the §5.4 experiment consumes "a 30 s chunk" of the trace.
  [[nodiscard]] ArrivalSchedule window(util::Nanos begin, util::Nanos end) const {
    std::vector<Arrival> out;
    for (const Arrival& a : arrivals_) {
      if (a.time >= begin && a.time < end) {
        out.push_back(Arrival{a.time - begin, a.function_id});
      }
    }
    return ArrivalSchedule(std::move(out));
  }

 private:
  std::vector<Arrival> arrivals_;
};

}  // namespace horse::trace
