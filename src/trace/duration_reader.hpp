// Reader for the Azure Public Dataset function-duration files
// (`function_durations_percentiles.anon.d*.csv`): one row per function
// with average/min/max execution time and per-percentile averages, all in
// milliseconds. Used to parameterize the heavy-tailed DurationSampler
// from real data when the user provides the CSVs; the synthetic defaults
// stay in charge otherwise.
//
// Column layout (per the dataset's documentation):
//   HashOwner,HashApp,HashFunction,Average,Count,Minimum,Maximum,
//   percentile_Average_0,percentile_Average_1,percentile_Average_25,
//   percentile_Average_50,percentile_Average_75,percentile_Average_99,
//   percentile_Average_100
#pragma once

#include <istream>
#include <string>
#include <vector>

#include "trace/synthetic.hpp"
#include "util/status.hpp"
#include "util/time.hpp"

namespace horse::trace {

struct DurationRow {
  std::string owner;
  std::string app;
  std::string function;
  double average_ms = 0.0;
  double count = 0.0;
  double minimum_ms = 0.0;
  double maximum_ms = 0.0;
  double p0_ms = 0.0;
  double p1_ms = 0.0;
  double p25_ms = 0.0;
  double p50_ms = 0.0;
  double p75_ms = 0.0;
  double p99_ms = 0.0;
  double p100_ms = 0.0;
};

class DurationReader {
 public:
  [[nodiscard]] static util::Expected<std::vector<DurationRow>> parse(
      std::istream& input);

  /// Fit DurationSampler parameters to a row: lognormal body anchored at
  /// the median with sigma from the p75/p50 spread, tail calibrated so
  /// the sampler's p99 tracks the row's.
  [[nodiscard]] static DurationSampler::Params fit_sampler(
      const DurationRow& row);
};

}  // namespace horse::trace
