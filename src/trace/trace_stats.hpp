// Workload characterization over arrival schedules.
//
// The keep-alive policy and the synthetic generator both reason about
// inter-arrival-time (IAT) distributions; this module computes the
// standard descriptors — per-function rate, IAT mean / CV / percentiles,
// burstiness — from any ArrivalSchedule (real Azure CSV or synthetic).
// A CV well above 1 marks the bursty, keep-alive-hostile functions the
// ATC'20 study highlights.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "trace/schedule.hpp"
#include "util/time.hpp"

namespace horse::trace {

struct FunctionStats {
  std::uint32_t function_id = 0;
  std::size_t invocations = 0;
  /// Mean invocations per minute over the observed span.
  double rate_per_minute = 0.0;
  /// Inter-arrival time statistics (ns); zero when < 2 invocations.
  double iat_mean = 0.0;
  double iat_cv = 0.0;  // coefficient of variation: stddev / mean
  util::Nanos iat_p50 = 0;
  util::Nanos iat_p99 = 0;
  util::Nanos iat_max = 0;
};

struct TraceStats {
  std::size_t total_invocations = 0;
  util::Nanos span = 0;
  std::vector<FunctionStats> functions;  // sorted by invocation count desc

  /// Share of total invocations issued by the top `k` functions —
  /// quantifies the Zipf-like skew of serverless traffic.
  [[nodiscard]] double top_k_share(std::size_t k) const;
};

[[nodiscard]] TraceStats analyze(const ArrivalSchedule& schedule);

}  // namespace horse::trace
