// Reader for the Azure Public Dataset serverless invocation traces
// (https://github.com/Azure/AzurePublicDataset, the format introduced by
// Shahrad et al., USENIX ATC'20): one row per function, with columns
//
//   HashOwner,HashApp,HashFunction,Trigger,1,2,...,1440
//
// where column "m" is the number of invocations during minute m of the
// day. The dataset itself is not redistributable with this repository;
// when the CSV is absent, SyntheticAzureTrace (synthetic.hpp) generates a
// statistically matching stand-in, and this reader accepts the real file
// whenever the user provides one — same downstream API either way.
#pragma once

#include <cstdint>
#include <istream>
#include <string>
#include <vector>

#include "trace/schedule.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace horse::trace {

struct FunctionRow {
  std::string owner;
  std::string app;
  std::string function;
  std::string trigger;
  std::vector<std::uint32_t> per_minute;  // up to 1440 entries
};

class AzureTraceReader {
 public:
  /// Parse the CSV from a stream. Tolerates a header row and rows with
  /// fewer than 1440 minute columns (the public dataset has both).
  [[nodiscard]] static util::Expected<std::vector<FunctionRow>> parse(
      std::istream& input);

  /// Expand per-minute counts into concrete arrival instants: each
  /// minute's invocations are placed uniformly at random inside that
  /// minute (the dataset's resolution floor), deterministically per seed.
  [[nodiscard]] static ArrivalSchedule expand(
      const std::vector<FunctionRow>& rows, std::uint64_t seed);
};

}  // namespace horse::trace
