// Synthetic Azure-like serverless trace generator.
//
// We cannot ship the Azure Public Dataset, so this generator reproduces
// the distribution shapes its companion paper reports (Shahrad et al.,
// "Serverless in the Wild", ATC'20) and that the HORSE evaluation relies
// on:
//   * per-function popularity is heavy-tailed (few hot functions dominate
//     invocations) — Zipf over functions;
//   * a function's per-minute invocation counts fluctuate (bursty);
//     modelled as Poisson with a per-minute rate jittered around the
//     function's base rate;
//   * execution durations are heavy-tailed with a non-negligible fraction
//     above 1 s (the §5.4 premise) — lognormal body + bounded-Pareto tail.
//
// Output is the same FunctionRow/ArrivalSchedule currency as the real
// reader, so experiments are agnostic to the trace's origin.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "trace/azure_reader.hpp"
#include "trace/schedule.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace horse::trace {

struct SyntheticTraceParams {
  std::uint32_t num_functions = 50;
  std::uint32_t num_minutes = 10;
  /// Invocations per minute of the most popular function.
  double top_rate_per_minute = 120.0;
  /// Zipf exponent for the popularity ranking.
  double zipf_s = 1.1;
  /// Relative per-minute rate jitter (burstiness).
  double rate_jitter = 0.35;
  std::uint64_t seed = 2024;

  void validate() const {
    if (num_functions == 0 || num_minutes == 0) {
      throw std::invalid_argument("SyntheticTraceParams: empty trace");
    }
    if (!(top_rate_per_minute > 0.0) || !(zipf_s > 0.0)) {
      throw std::invalid_argument("SyntheticTraceParams: bad rate/zipf");
    }
  }
};

/// Heavy-tailed function duration sampler (lognormal body, bounded-Pareto
/// tail above the 95th percentile).
class DurationSampler {
 public:
  struct Params {
    /// Median of the lognormal body.
    util::Nanos median = 300 * util::kMillisecond;
    /// Lognormal sigma (log-space).
    double sigma = 0.6;
    /// Fraction of invocations drawn from the long tail.
    double tail_fraction = 0.05;
    util::Nanos tail_min = 1 * util::kSecond;
    util::Nanos tail_max = 30 * util::kSecond;
    double tail_alpha = 1.5;
  };

  explicit DurationSampler(Params params, std::uint64_t seed = 7)
      : params_(params), rng_(seed) {}

  [[nodiscard]] util::Nanos sample();

  [[nodiscard]] const Params& params() const noexcept { return params_; }

 private:
  Params params_;
  util::Xoshiro256 rng_;
};

class SyntheticAzureTrace {
 public:
  explicit SyntheticAzureTrace(SyntheticTraceParams params)
      : params_(params) {
    params_.validate();
  }

  /// Generate per-function per-minute rows in the dataset's own format.
  [[nodiscard]] std::vector<FunctionRow> generate_rows() const;

  /// Generate the expanded arrival schedule directly.
  [[nodiscard]] ArrivalSchedule generate_schedule() const {
    return AzureTraceReader::expand(generate_rows(), params_.seed + 1);
  }

  [[nodiscard]] const SyntheticTraceParams& params() const noexcept {
    return params_;
  }

 private:
  SyntheticTraceParams params_;
};

}  // namespace horse::trace
