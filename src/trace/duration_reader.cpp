#include "trace/duration_reader.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <sstream>

namespace horse::trace {

namespace {

constexpr std::size_t kColumns = 14;

bool parse_double(const std::string& text, double& out) {
  if (text.empty()) {
    return false;
  }
  char* end = nullptr;
  out = std::strtod(text.c_str(), &end);
  return end == text.c_str() + text.size();
}

}  // namespace

util::Expected<std::vector<DurationRow>> DurationReader::parse(
    std::istream& input) {
  std::vector<DurationRow> rows;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(input, line)) {
    ++line_number;
    if (line.empty()) {
      continue;
    }
    std::vector<std::string> fields;
    std::stringstream stream(line);
    std::string field;
    while (std::getline(stream, field, ',')) {
      fields.push_back(field);
    }
    if (line_number == 1 && fields.size() >= 4 && fields[3] == "Average") {
      continue;  // header
    }
    if (fields.size() != kColumns) {
      return util::Status{util::StatusCode::kInvalidArgument,
                          "duration trace: row " + std::to_string(line_number) +
                              " has " + std::to_string(fields.size()) +
                              " columns, want 14"};
    }
    DurationRow row;
    row.owner = fields[0];
    row.app = fields[1];
    row.function = fields[2];
    double* const targets[] = {&row.average_ms, &row.count,  &row.minimum_ms,
                               &row.maximum_ms, &row.p0_ms,  &row.p1_ms,
                               &row.p25_ms,     &row.p50_ms, &row.p75_ms,
                               &row.p99_ms,     &row.p100_ms};
    for (std::size_t i = 0; i < std::size(targets); ++i) {
      if (!parse_double(fields[i + 3], *targets[i])) {
        return util::Status{util::StatusCode::kInvalidArgument,
                            "duration trace: bad number at row " +
                                std::to_string(line_number) + " column " +
                                std::to_string(i + 3)};
      }
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

DurationSampler::Params DurationReader::fit_sampler(const DurationRow& row) {
  DurationSampler::Params params;
  const double median_ms = std::max(row.p50_ms, 0.001);
  params.median = static_cast<util::Nanos>(median_ms * 1e6);

  // Lognormal: p75/p50 = exp(0.6745 sigma) => sigma = ln(ratio)/0.6745.
  const double ratio = row.p75_ms > median_ms ? row.p75_ms / median_ms : 1.05;
  params.sigma = std::clamp(std::log(ratio) / 0.6745, 0.05, 2.5);

  // Tail: send a small mass to [p99, p100]; degenerate rows (p99 close to
  // the median) keep a token tail so sampling still exercises the branch.
  const double p99_ms = std::max(row.p99_ms, median_ms * 1.01);
  const double p100_ms = std::max(row.p100_ms, p99_ms * 1.01);
  params.tail_fraction = 0.01;
  params.tail_min = static_cast<util::Nanos>(p99_ms * 1e6);
  params.tail_max = static_cast<util::Nanos>(p100_ms * 1e6);
  params.tail_alpha = 1.5;
  return params;
}

}  // namespace horse::trace
