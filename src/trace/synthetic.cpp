#include "trace/synthetic.hpp"

#include <cmath>
#include <string>

namespace horse::trace {

util::Nanos DurationSampler::sample() {
  if (rng_.uniform01() < params_.tail_fraction) {
    return static_cast<util::Nanos>(rng_.bounded_pareto(
        params_.tail_alpha, static_cast<double>(params_.tail_min),
        static_cast<double>(params_.tail_max)));
  }
  const double log_median = std::log(static_cast<double>(params_.median));
  const double sample = rng_.normal(log_median, params_.sigma);
  return static_cast<util::Nanos>(std::exp(sample));
}

std::vector<FunctionRow> SyntheticAzureTrace::generate_rows() const {
  util::Xoshiro256 rng(params_.seed);
  std::vector<FunctionRow> rows;
  rows.reserve(params_.num_functions);
  for (std::uint32_t f = 0; f < params_.num_functions; ++f) {
    FunctionRow row;
    row.owner = "owner-" + std::to_string(f % 7);
    row.app = "app-" + std::to_string(f % 13);
    row.function = "fn-" + std::to_string(f);
    row.trigger = f % 3 == 0 ? "http" : (f % 3 == 1 ? "queue" : "timer");

    // Zipf popularity: rank f+1 gets rate ~ top / (rank^s).
    const double base_rate =
        params_.top_rate_per_minute /
        std::pow(static_cast<double>(f + 1), params_.zipf_s);

    row.per_minute.reserve(params_.num_minutes);
    for (std::uint32_t m = 0; m < params_.num_minutes; ++m) {
      // Bursty per-minute rate, then a Poisson draw at that rate
      // (inversion by sequential search is fine at these magnitudes).
      const double jitter =
          1.0 + params_.rate_jitter * (2.0 * rng.uniform01() - 1.0);
      const double rate = base_rate * (jitter < 0.05 ? 0.05 : jitter);
      std::uint32_t count = 0;
      double p = std::exp(-rate);
      double cumulative = p;
      const double u = rng.uniform01();
      while (u > cumulative && count < 100000) {
        ++count;
        p *= rate / static_cast<double>(count);
        cumulative += p;
      }
      row.per_minute.push_back(count);
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace horse::trace
