#include "trace/trace_stats.hpp"

#include <algorithm>
#include <cmath>
#include <map>

namespace horse::trace {

double TraceStats::top_k_share(std::size_t k) const {
  if (total_invocations == 0) {
    return 0.0;
  }
  std::size_t counted = 0;
  for (std::size_t i = 0; i < std::min(k, functions.size()); ++i) {
    counted += functions[i].invocations;
  }
  return static_cast<double>(counted) / static_cast<double>(total_invocations);
}

TraceStats analyze(const ArrivalSchedule& schedule) {
  TraceStats stats;
  stats.total_invocations = schedule.size();
  stats.span = schedule.duration();

  std::map<std::uint32_t, std::vector<util::Nanos>> per_function;
  for (const Arrival& arrival : schedule.arrivals()) {
    per_function[arrival.function_id].push_back(arrival.time);
  }

  const double span_minutes =
      stats.span > 0 ? static_cast<double>(stats.span) / (60.0 * 1e9) : 0.0;

  for (auto& [id, times] : per_function) {
    FunctionStats fn;
    fn.function_id = id;
    fn.invocations = times.size();
    fn.rate_per_minute =
        span_minutes > 0.0 ? static_cast<double>(times.size()) / span_minutes
                           : static_cast<double>(times.size());

    if (times.size() >= 2) {
      // Times arrive sorted from ArrivalSchedule, but be defensive: the
      // schedule only guarantees global order, which implies per-function
      // order here anyway.
      std::vector<util::Nanos> iats;
      iats.reserve(times.size() - 1);
      double sum = 0.0;
      for (std::size_t i = 1; i < times.size(); ++i) {
        const util::Nanos iat = times[i] - times[i - 1];
        iats.push_back(iat);
        sum += static_cast<double>(iat);
      }
      fn.iat_mean = sum / static_cast<double>(iats.size());
      double sq = 0.0;
      for (const util::Nanos iat : iats) {
        const double d = static_cast<double>(iat) - fn.iat_mean;
        sq += d * d;
      }
      const double stddev =
          std::sqrt(sq / static_cast<double>(iats.size()));
      fn.iat_cv = fn.iat_mean > 0.0 ? stddev / fn.iat_mean : 0.0;

      std::sort(iats.begin(), iats.end());
      fn.iat_p50 = iats[iats.size() / 2];
      fn.iat_p99 = iats[static_cast<std::size_t>(
          0.99 * static_cast<double>(iats.size() - 1))];
      fn.iat_max = iats.back();
    }
    stats.functions.push_back(fn);
  }

  std::sort(stats.functions.begin(), stats.functions.end(),
            [](const FunctionStats& lhs, const FunctionStats& rhs) {
              return lhs.invocations > rhs.invocations;
            });
  return stats;
}

}  // namespace horse::trace
