#include "trace/azure_reader.hpp"

#include <charconv>
#include <sstream>

namespace horse::trace {

namespace {

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::stringstream stream(line);
  while (std::getline(stream, field, ',')) {
    fields.push_back(field);
  }
  return fields;
}

bool parse_u32(const std::string& text, std::uint32_t& out) {
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto result = std::from_chars(begin, end, out);
  return result.ec == std::errc{} && result.ptr == end;
}

}  // namespace

util::Expected<std::vector<FunctionRow>> AzureTraceReader::parse(
    std::istream& input) {
  std::vector<FunctionRow> rows;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(input, line)) {
    ++line_number;
    if (line.empty()) {
      continue;
    }
    auto fields = split_csv_line(line);
    if (fields.size() < 5) {
      return util::Status{
          util::StatusCode::kInvalidArgument,
          "azure trace: row " + std::to_string(line_number) + " too short"};
    }
    // Header detection: the first minute column of a header row is the
    // literal "1", of a data row a count — both parse; disambiguate on the
    // trigger column names used by the dataset ("Trigger" header literal).
    if (line_number == 1 && fields[3] == "Trigger") {
      continue;
    }
    FunctionRow row;
    row.owner = std::move(fields[0]);
    row.app = std::move(fields[1]);
    row.function = std::move(fields[2]);
    row.trigger = std::move(fields[3]);
    row.per_minute.reserve(fields.size() - 4);
    for (std::size_t i = 4; i < fields.size(); ++i) {
      std::uint32_t count = 0;
      if (!parse_u32(fields[i], count)) {
        return util::Status{util::StatusCode::kInvalidArgument,
                            "azure trace: bad count at row " +
                                std::to_string(line_number) + " column " +
                                std::to_string(i)};
      }
      row.per_minute.push_back(count);
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

ArrivalSchedule AzureTraceReader::expand(const std::vector<FunctionRow>& rows,
                                         std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  ArrivalSchedule schedule;
  for (std::uint32_t function_id = 0; function_id < rows.size(); ++function_id) {
    const FunctionRow& row = rows[function_id];
    for (std::size_t minute = 0; minute < row.per_minute.size(); ++minute) {
      const util::Nanos minute_start =
          static_cast<util::Nanos>(minute) * 60 * util::kSecond;
      for (std::uint32_t i = 0; i < row.per_minute[minute]; ++i) {
        const auto offset =
            static_cast<util::Nanos>(rng.uniform01() * 60.0 * util::kSecond);
        schedule.add(Arrival{minute_start + offset, function_id});
      }
    }
  }
  schedule.sort();
  return schedule;
}

}  // namespace horse::trace
