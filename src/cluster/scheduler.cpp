#include "cluster/scheduler.hpp"

#include <chrono>
#include <string>
#include <thread>
#include <utility>

#include "util/fault_injection.hpp"

namespace horse::cluster {

util::Expected<DispatchMode> parse_dispatch_mode(std::string_view name) {
  if (name == "push") {
    return DispatchMode::kPush;
  }
  if (name == "pull") {
    return DispatchMode::kPull;
  }
  return util::Status{util::StatusCode::kInvalidArgument,
                      "unknown dispatch mode (expected push | pull)"};
}

ClusterScheduler::ClusterScheduler(ClusterConfig config)
    : config_(std::move(config)), policy_(make_policy(config_.policy)) {
  if (config_.num_hosts == 0) {
    config_.num_hosts = 1;
  }
  if (config_.workers_per_host == 0) {
    config_.workers_per_host = std::max<std::size_t>(
        2, config_.platform.num_cpus / 2);
  }
  if (config_.dispatch == DispatchMode::kPull) {
    pull_queue_ =
        std::make_unique<faas::SharedTaskQueue>(config_.pull_queue_capacity);
  }
  hosts_.reserve(config_.num_hosts);
  const util::Nanos max_sojourn =
      config_.admission.enabled ? config_.admission.max_sojourn : 0;
  for (std::size_t i = 0; i < config_.num_hosts; ++i) {
    hosts_.push_back(std::make_unique<Host>(i, config_.platform,
                                            config_.workers_per_host,
                                            pull_queue_.get(), max_sojourn));
  }
  policy_decisions_.assign(hosts_.size(), 0);
}

ClusterScheduler::~ClusterScheduler() {
  if (pull_queue_) {
    // Unblocks every pull worker; remaining queued tasks are drained and
    // executed before the hosts (declared after the queue, destroyed
    // first) join their workers.
    pull_queue_->close();
  }
}

util::Expected<faas::FunctionId> ClusterScheduler::register_function(
    const std::function<faas::FunctionSpec()>& make_spec) {
  bool first = true;
  faas::FunctionId agreed = 0;
  for (auto& host : hosts_) {
    auto result = host->platform().registry().add(make_spec());
    if (!result) {
      return result.status();
    }
    if (first) {
      agreed = *result;
      first = false;
    } else if (*result != agreed) {
      return util::Status{
          util::StatusCode::kInternal,
          "cluster: hosts disagree on function id (registries diverged)"};
    }
  }
  return agreed;
}

util::Status ClusterScheduler::provision(faas::FunctionId function,
                                         std::size_t count) {
  for (auto& host : hosts_) {
    if (auto status = host->platform().provision(function, count);
        !status.is_ok()) {
      return status;
    }
  }
  return util::Status::ok();
}

util::Status ClusterScheduler::ensure_snapshot(faas::FunctionId function) {
  for (auto& host : hosts_) {
    if (auto status = host->platform().ensure_snapshot(function);
        !status.is_ok()) {
      return status;
    }
  }
  return util::Status::ok();
}

void ClusterScheduler::advance_time(util::Nanos delta) {
  for (auto& host : hosts_) {
    host->platform().advance_time(delta);
  }
}

void ClusterScheduler::submit(faas::FunctionId function,
                              workloads::Request request,
                              faas::StartMode mode) {
  submit(function, std::move(request), mode, 0);
}

void ClusterScheduler::submit(faas::FunctionId function,
                              workloads::Request request, faas::StartMode mode,
                              util::Nanos deadline) {
  const std::uint64_t seq =
      submitted_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (config_.health_check_interval != 0 &&
      seq % config_.health_check_interval == 0) {
    check_health();
  }
  faas::Submission task;
  task.function = function;
  task.mode = mode;
  task.request = std::move(request);
  task.enqueued_at = util::monotonic_now();
  task.deadline = deadline;
  task.seq = seq;
  if (config_.admission.enabled) {
    // Fault site first: a spurious shed exercises the whole typed-refusal
    // path (outcome, counters, drain accounting) without real overload.
    if (HORSE_FAULT_POINT("admission.spurious_shed")) {
      spurious_sheds_.fetch_add(1, std::memory_order_relaxed);
      record_shed(task, faas::SubmissionReject::kQueueShed,
                  "admission: spurious shed (fault injection)");
      return;
    }
    if (task.deadline != 0) {
      const util::Nanos slack =
          task.deadline > task.enqueued_at ? task.deadline - task.enqueued_at
                                           : 0;
      // Optimistic estimate (min over healthy hosts): shed only when even
      // the least-loaded host's recent queue delay already eats the whole
      // slack — executing would only produce a late, worthless response.
      if (slack == 0 || queue_delay_estimate() > slack) {
        record_shed(task, faas::SubmissionReject::kQueueShed,
                    "admission: estimated queue delay exceeds deadline slack");
        return;
      }
    }
  }
  dispatch(std::move(task));
}

util::Nanos ClusterScheduler::queue_delay_estimate() const {
  util::Nanos best = 0;
  bool any = false;
  for (const auto& host : hosts_) {
    if (!host->healthy()) {
      continue;
    }
    const util::Nanos ewma = host->queueing_ewma();
    if (!any || ewma < best) {
      best = ewma;
      any = true;
    }
  }
  return any ? best : 0;
}

void ClusterScheduler::record_shed(const faas::Submission& task,
                                   faas::SubmissionReject reject,
                                   std::string_view detail) {
  faas::SubmissionOutcome outcome;
  outcome.function = task.function;
  outcome.mode = task.mode;
  outcome.seq = task.seq;
  outcome.status = util::Status{reject == faas::SubmissionReject::kQueueFull
                                    ? util::StatusCode::kResourceExhausted
                                    : util::StatusCode::kUnavailable,
                                std::string(detail)};
  outcome.reject = reject;
  {
    std::lock_guard lock(shed_mutex_);
    shed_outcomes_.push_back(std::move(outcome));
  }
  // After the push: once shed_count_ makes drain's termination arithmetic
  // add up, the outcome must already be mergeable.
  shed_count_.fetch_add(1, std::memory_order_acq_rel);
}

void ClusterScheduler::dispatch(faas::Submission task) {
  if (!task.redispatched && HORSE_FAULT_POINT("cluster.dispatch_drop")) {
    // Modelled lost dispatch: the request never reaches its host, the
    // frontend detects the loss and retries. The retry is marked
    // redispatched, which exempts it from this site — exactly once.
    dispatch_drops_.fetch_add(1, std::memory_order_relaxed);
    task.redispatched = true;
  }
  if (config_.dispatch == DispatchMode::kPull) {
    // Deadline traffic must not convoy behind a full queue: a full pull
    // queue means every host is busy AND the buffer is exhausted, so the
    // submission is shed (typed kQueueFull) instead of blocking. Deadline-
    // free and re-dispatched tasks keep the blocking backpressure push —
    // they have no slack to protect, and re-dispatched tasks must never
    // be lost (exactly-once re-dispatch is a structural property).
    if (config_.admission.enabled && task.deadline != 0 &&
        !task.redispatched) {
      faas::Submission meta;  // shed outcome needs only the identity fields
      meta.function = task.function;
      meta.mode = task.mode;
      meta.seq = task.seq;
      if (!pull_queue_->try_push(std::move(task))) {
        shed_queue_full_.fetch_add(1, std::memory_order_relaxed);
        record_shed(meta, faas::SubmissionReject::kQueueFull,
                    "admission: pull queue full");
      }
      return;
    }
    pull_queue_->push(std::move(task));
    return;
  }
  std::lock_guard lock(dispatch_mutex_);
  select_host_locked(task.function).submit(std::move(task));
}

Host& ClusterScheduler::select_host_locked(faas::FunctionId function) {
  const bool want_warm = config_.policy == PolicyKind::kMostWarmSlots;
  std::vector<HostSnapshot> snapshots;
  std::vector<Host*> healthy;
  snapshots.reserve(hosts_.size());
  healthy.reserve(hosts_.size());
  for (auto& host : hosts_) {
    if (host->healthy()) {
      snapshots.push_back(host->snapshot(function, want_warm));
      healthy.push_back(host.get());
    }
  }
  if (healthy.empty()) {
    // Bottom ladder rung: never drop a request. Force-recover host 0 and
    // route there; the stall model means the host works again once its
    // workers are unparked.
    forced_routes_.fetch_add(1, std::memory_order_relaxed);
    hosts_.front()->force_recover();
    policy_decisions_.front()++;
    return *hosts_.front();
  }
  if (healthy.size() == 1 && hosts_.size() > 1) {
    // One rung above: the cluster has gracefully degraded to single-host
    // dispatch (sticky, observable; routing still works).
    degraded_single_host_.store(true, std::memory_order_release);
  }
  const std::size_t choice = policy_->select(snapshots, function);
  Host& chosen = *healthy[choice < healthy.size() ? choice : 0];
  policy_decisions_[chosen.id()]++;
  return chosen;
}

void ClusterScheduler::check_health() {
  std::lock_guard guard(health_mutex_);
  for (auto& host : hosts_) {
    if (host->stalled() && host->healthy()) {
      hosts_quarantined_.fetch_add(1, std::memory_order_relaxed);
      std::vector<faas::Submission> backlog = host->quarantine();
      for (auto& task : backlog) {
        // Exactly once: steal_pending removed these from the stalled
        // host atomically, and the redispatched flag exempts them from
        // the drop/stall fault sites on the way back in.
        task.redispatched = true;
        redispatched_.fetch_add(1, std::memory_order_relaxed);
        dispatch(std::move(task));
      }
    }
  }
}

std::vector<faas::SubmissionOutcome> ClusterScheduler::drain() {
  while (true) {
    check_health();
    const std::uint64_t target = submitted_.load(std::memory_order_acquire);
    // Shed submissions never reach a host; their typed outcomes complete
    // the accounting (completed + shed == submitted when idle).
    std::uint64_t done = shed_count_.load(std::memory_order_acquire);
    for (const auto& host : hosts_) {
      done += host->completed();
    }
    if (done >= target) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::vector<faas::SubmissionOutcome> out;
  for (auto& host : hosts_) {
    std::vector<faas::SubmissionOutcome> outcomes =
        host->dispatcher().take_outcomes();
    for (auto& outcome : outcomes) {
      out.push_back(std::move(outcome));
    }
  }
  {
    std::lock_guard lock(shed_mutex_);
    for (auto& outcome : shed_outcomes_) {
      out.push_back(std::move(outcome));
    }
    shed_outcomes_.clear();
  }
  return out;
}

ClusterCounters ClusterScheduler::counters() const {
  ClusterCounters counters;
  counters.submitted = submitted_.load(std::memory_order_acquire);
  for (const auto& host : hosts_) {
    counters.completed += host->completed();
    counters.host_stalls += host->stall_faults();
    counters.expired += host->expired();
  }
  counters.shed = shed_count_.load(std::memory_order_acquire);
  counters.shed_queue_full =
      shed_queue_full_.load(std::memory_order_relaxed);
  counters.spurious_sheds = spurious_sheds_.load(std::memory_order_relaxed);
  counters.hosts_quarantined =
      hosts_quarantined_.load(std::memory_order_relaxed);
  counters.redispatched = redispatched_.load(std::memory_order_relaxed);
  counters.dispatch_drops = dispatch_drops_.load(std::memory_order_relaxed);
  counters.forced_routes = forced_routes_.load(std::memory_order_relaxed);
  counters.degraded_single_host =
      degraded_single_host_.load(std::memory_order_acquire);
  return counters;
}

ClusterStats ClusterScheduler::stats() const {
  ClusterStats stats;
  stats.policy = config_.policy;
  stats.dispatch = config_.dispatch;
  stats.counters = counters();
  stats.hosts.reserve(hosts_.size());
  std::vector<std::uint64_t> decisions;
  {
    std::lock_guard lock(dispatch_mutex_);
    decisions = policy_decisions_;
  }
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    const Host& host = *hosts_[i];
    HostStats entry;
    entry.host = host.id();
    entry.healthy = host.healthy();
    entry.dispatched = host.dispatched();
    entry.completed = host.completed();
    entry.policy_decisions = decisions[i];
    entry.stall_faults = host.stall_faults();
    entry.expired = host.expired();
    entry.queueing_ewma = host.queueing_ewma();
    const HostSnapshot snapshot = host.snapshot(0, false);
    entry.queued = snapshot.queued;
    entry.in_flight = snapshot.in_flight;
    entry.free_slots = snapshot.free_slots;
    const faas::ControlPlaneSnapshot plane =
        host.platform().control_plane_snapshot();
    for (const std::size_t occupancy : plane.shard_pool_occupancy) {
      entry.pool_sandboxes += occupancy;
    }
    for (const auto& queue : plane.ull.occupancy) {
      entry.ull_paused += queue.paused;
    }
    entry.dispatch_latency = host.dispatch_latency();
    stats.hosts.push_back(std::move(entry));
  }
  return stats;
}

}  // namespace horse::cluster
