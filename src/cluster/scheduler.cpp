#include "cluster/scheduler.hpp"

#include <chrono>
#include <condition_variable>
#include <string>
#include <thread>
#include <utility>

#include "util/fault_injection.hpp"

namespace horse::cluster {

util::Expected<DispatchMode> parse_dispatch_mode(std::string_view name) {
  if (name == "push") {
    return DispatchMode::kPush;
  }
  if (name == "pull") {
    return DispatchMode::kPull;
  }
  return util::Status{util::StatusCode::kInvalidArgument,
                      "unknown dispatch mode (expected push | pull)"};
}

ClusterScheduler::ClusterScheduler(ClusterConfig config)
    : config_(std::move(config)),
      policy_(make_policy(config_.policy)),
      probe_backoff_(util::BackoffPolicy{config_.health.probe_backoff_base,
                                         config_.health.probe_backoff_cap}),
      // Decorrelated from the per-host platform streams (they offset by
      // id * 7919); same cluster seed → same probe schedule.
      probe_rng_(config_.platform.seed + 0x9e3779b9ULL) {
  if (config_.num_hosts == 0) {
    config_.num_hosts = 1;
  }
  if (config_.workers_per_host == 0) {
    config_.workers_per_host = std::max<std::size_t>(
        2, config_.platform.num_cpus / 2);
  }
  if (config_.dispatch == DispatchMode::kPull) {
    pull_queue_ =
        std::make_unique<faas::SharedTaskQueue>(config_.pull_queue_capacity);
  }
  hosts_.reserve(config_.num_hosts);
  const util::Nanos max_sojourn =
      config_.admission.enabled ? config_.admission.max_sojourn : 0;
  for (std::size_t i = 0; i < config_.num_hosts; ++i) {
    hosts_.push_back(std::make_unique<Host>(i, config_.platform,
                                            config_.workers_per_host,
                                            pull_queue_.get(), max_sojourn));
  }
  policy_decisions_.assign(hosts_.size(), 0);
  leases_.resize(hosts_.size());
  if (config_.health.sweep_period > 0) {
    // Time-based health-sweep fallback: submission-driven sweeps only run
    // under traffic, so an idle cluster would never notice a dead host.
    sweeper_ = std::jthread([this](const std::stop_token& stoken) {
      const auto period = std::chrono::nanoseconds(config_.health.sweep_period);
      std::mutex mutex;
      std::condition_variable_any wakeup;
      std::unique_lock lock(mutex);
      while (!stoken.stop_requested()) {
        // The predicate never passes: the wait ends on the period elapsing
        // or on request_stop (which also makes the loop exit).
        wakeup.wait_for(lock, stoken, period, [] { return false; });
        if (stoken.stop_requested()) {
          break;
        }
        check_health();
      }
    });
  }
}

ClusterScheduler::~ClusterScheduler() {
  // Sweeper first: a health sweep must not run against hosts mid-teardown
  // or re-dispatch into a closing pull queue.
  if (sweeper_.joinable()) {
    sweeper_.request_stop();
    sweeper_.join();
  }
  if (pull_queue_) {
    // Unblocks every pull worker; remaining queued tasks are drained and
    // executed before the hosts (declared after the queue, destroyed
    // first) join their workers.
    pull_queue_->close();
  }
}

util::Expected<faas::FunctionId> ClusterScheduler::register_function(
    const std::function<faas::FunctionSpec()>& make_spec) {
  bool first = true;
  faas::FunctionId agreed = 0;
  for (auto& host : hosts_) {
    auto result = host->platform().registry().add(make_spec());
    if (!result) {
      return result.status();
    }
    if (first) {
      agreed = *result;
      first = false;
    } else if (*result != agreed) {
      return util::Status{
          util::StatusCode::kInternal,
          "cluster: hosts disagree on function id (registries diverged)"};
    }
  }
  return agreed;
}

util::Expected<faas::WorkflowId> ClusterScheduler::register_workflow(
    const faas::WorkflowSpec& spec) {
  bool first = true;
  faas::WorkflowId agreed = 0;
  for (auto& host : hosts_) {
    auto result = host->platform().registry().add_workflow(spec);
    if (!result) {
      return result.status();
    }
    if (first) {
      agreed = *result;
      first = false;
    } else if (*result != agreed) {
      return util::Status{
          util::StatusCode::kInternal,
          "cluster: hosts disagree on workflow id (registries diverged)"};
    }
  }
  return agreed;
}

util::Status ClusterScheduler::provision(faas::FunctionId function,
                                         std::size_t count) {
  for (auto& host : hosts_) {
    if (auto status = host->platform().provision(function, count);
        !status.is_ok()) {
      return status;
    }
  }
  return util::Status::ok();
}

util::Status ClusterScheduler::ensure_snapshot(faas::FunctionId function) {
  for (auto& host : hosts_) {
    if (auto status = host->platform().ensure_snapshot(function);
        !status.is_ok()) {
      return status;
    }
  }
  return util::Status::ok();
}

void ClusterScheduler::advance_time(util::Nanos delta) {
  for (auto& host : hosts_) {
    host->platform().advance_time(delta);
  }
}

void ClusterScheduler::submit(faas::FunctionId function,
                              workloads::Request request,
                              faas::StartMode mode) {
  submit(function, std::move(request), mode, 0);
}

void ClusterScheduler::submit(faas::FunctionId function,
                              workloads::Request request, faas::StartMode mode,
                              util::Nanos deadline) {
  faas::Submission task;
  task.function = function;
  task.mode = mode;
  task.request = std::move(request);
  task.deadline = deadline;
  admit_and_dispatch(std::move(task));
}

void ClusterScheduler::submit_chain(faas::WorkflowId workflow,
                                    workloads::Request request,
                                    faas::StartMode mode,
                                    util::Nanos deadline) {
  faas::Submission task;
  task.workflow = workflow;
  task.hop = 0;
  // Mirror the entry stage in `function` so routing policies and the
  // per-shard dispatch paths see the chain under its first stage's
  // identity. Unknown workflows keep function 0 and surface a typed
  // NotFound outcome at the executing host — same late-failure contract
  // as an unknown function id.
  const auto spec =
      hosts_.front()->platform().registry().find_workflow(workflow);
  task.function = spec ? (*spec)->stages.front() : 0;
  task.mode = mode;
  task.request = std::move(request);
  task.deadline = deadline;
  admit_and_dispatch(std::move(task));
}

void ClusterScheduler::admit_and_dispatch(faas::Submission task) {
  const std::uint64_t seq =
      submitted_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (config_.health_check_interval != 0 &&
      seq % config_.health_check_interval == 0) {
    check_health();
  }
  task.enqueued_at = util::monotonic_now();
  task.seq = seq;
  // Idempotency key, assigned exactly once at the front door and carried
  // through every re-dispatch: the orphan ledger dedups on it. A chain
  // carries ONE key (and one deadline) end-to-end — re-dispatches move
  // its hop cursor, never mint a new identity.
  task.key = seq;
  if (config_.admission.enabled) {
    // Fault site first: a spurious shed exercises the whole typed-refusal
    // path (outcome, counters, drain accounting) without real overload.
    if (HORSE_FAULT_POINT("admission.spurious_shed")) {
      spurious_sheds_.fetch_add(1, std::memory_order_relaxed);
      record_shed(task, faas::SubmissionReject::kQueueShed,
                  "admission: spurious shed (fault injection)");
      return;
    }
    if (task.deadline != 0) {
      const util::Nanos slack =
          task.deadline > task.enqueued_at ? task.deadline - task.enqueued_at
                                           : 0;
      // Optimistic estimate (min over healthy hosts): shed only when even
      // the least-loaded host's recent queue delay already eats the whole
      // slack — executing would only produce a late, worthless response.
      if (slack == 0 || queue_delay_estimate() > slack) {
        record_shed(task, faas::SubmissionReject::kQueueShed,
                    "admission: estimated queue delay exceeds deadline slack");
        return;
      }
    }
  }
  dispatch(std::move(task));
}

util::Nanos ClusterScheduler::queue_delay_estimate() const {
  util::Nanos best = 0;
  bool any = false;
  for (const auto& host : hosts_) {
    if (!host->healthy()) {
      continue;
    }
    const util::Nanos ewma = host->queueing_ewma();
    if (!any || ewma < best) {
      best = ewma;
      any = true;
    }
  }
  return any ? best : 0;
}

void ClusterScheduler::record_shed(const faas::Submission& task,
                                   faas::SubmissionReject reject,
                                   std::string_view detail) {
  faas::SubmissionOutcome outcome;
  outcome.function = task.function;
  outcome.mode = task.mode;
  outcome.seq = task.seq;
  outcome.key = task.key;
  outcome.workflow = task.workflow;
  outcome.chain_first_hop = task.hop;
  outcome.status = util::Status{reject == faas::SubmissionReject::kQueueFull
                                    ? util::StatusCode::kResourceExhausted
                                    : util::StatusCode::kUnavailable,
                                std::string(detail)};
  outcome.reject = reject;
  {
    std::lock_guard lock(shed_mutex_);
    shed_outcomes_.push_back(std::move(outcome));
  }
  // After the push: once shed_count_ makes drain's termination arithmetic
  // add up, the outcome must already be mergeable.
  shed_count_.fetch_add(1, std::memory_order_acq_rel);
}

void ClusterScheduler::dispatch(faas::Submission task) {
  if (!task.redispatched && HORSE_FAULT_POINT("cluster.dispatch_drop")) {
    // Modelled lost dispatch: the request never reaches its host, the
    // frontend detects the loss and retries. The retry is marked
    // redispatched, which exempts it from this site — exactly once.
    dispatch_drops_.fetch_add(1, std::memory_order_relaxed);
    task.redispatched = true;
  }
  if (config_.dispatch == DispatchMode::kPull) {
    // Deadline traffic must not convoy behind a full queue: a full pull
    // queue means every host is busy AND the buffer is exhausted, so the
    // submission is shed (typed kQueueFull) instead of blocking. Deadline-
    // free and re-dispatched tasks keep the blocking backpressure push —
    // they have no slack to protect, and re-dispatched tasks must never
    // be lost (exactly-once re-dispatch is a structural property).
    if (config_.admission.enabled && task.deadline != 0 &&
        !task.redispatched) {
      faas::Submission meta;  // shed outcome needs only the identity fields
      meta.function = task.function;
      meta.mode = task.mode;
      meta.seq = task.seq;
      meta.key = task.key;
      if (!pull_queue_->try_push(std::move(task))) {
        shed_queue_full_.fetch_add(1, std::memory_order_relaxed);
        record_shed(meta, faas::SubmissionReject::kQueueFull,
                    "admission: pull queue full");
      }
      return;
    }
    pull_queue_->push(std::move(task));
    return;
  }
  std::lock_guard lock(dispatch_mutex_);
  select_host_locked(task.function).submit(std::move(task));
}

Host& ClusterScheduler::select_host_locked(faas::FunctionId function) {
  const bool want_warm = config_.policy == PolicyKind::kMostWarmSlots;
  std::vector<HostSnapshot> snapshots;
  std::vector<Host*> healthy;
  snapshots.reserve(hosts_.size());
  healthy.reserve(hosts_.size());
  for (auto& host : hosts_) {
    if (host->healthy()) {
      snapshots.push_back(host->snapshot(function, want_warm));
      healthy.push_back(host.get());
    }
  }
  if (healthy.empty()) {
    // Bottom ladder rung: never drop a request. Force-recover host 0 and
    // route there; the stall model means the host works again once its
    // workers are unparked (a crashed host's restart is forced too).
    forced_routes_.fetch_add(1, std::memory_order_relaxed);
    hosts_.front()->force_recover();
    // The recovered host leaves the out-of-rotation set, so the gauge
    // comes down with it (identity: quarantine events == gauge + rejoins
    // + forced routes).
    gauge_decrement_quarantined();
    policy_decisions_.front()++;
    return *hosts_.front();
  }
  if (healthy.size() == 1 && hosts_.size() > 1) {
    // One rung above: the cluster has gracefully degraded to single-host
    // dispatch (sticky, observable; routing still works).
    degraded_single_host_.store(true, std::memory_order_release);
  }
  const std::size_t choice = policy_->select(snapshots, function);
  Host& chosen = *healthy[choice < healthy.size() ? choice : 0];
  policy_decisions_[chosen.id()]++;
  return chosen;
}

void ClusterScheduler::check_health() {
  std::lock_guard guard(health_mutex_);
  const util::Nanos now = util::monotonic_now();
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    Host& host = *hosts_[i];
    HostLease& lease = leases_[i];
    if (!host.healthy()) {
      // Out of rotation: half-open probe on the backoff schedule. A host
      // that answers (stall cleared, or crashed host restart()ed) is
      // rehydrated and rejoined; one that doesn't backs off further.
      if (now >= lease.next_probe) {
        probes_.fetch_add(1, std::memory_order_relaxed);
        if (host.probe()) {
          rejoin_locked(i, now);
        } else {
          ++lease.probe_streak;
          lease.next_probe =
              now + probe_backoff_.delay(lease.probe_streak, probe_rng_);
        }
      }
      continue;
    }
    // Lease renewal: completion progress or a live (responsive) process
    // both count as a heartbeat — only a CRASHED host can ever miss, so
    // stall semantics are untouched by the detector.
    const std::uint64_t completed = host.completed();
    if (completed != lease.last_completed || host.responsive()) {
      lease.last_completed = completed;
      lease.missed = 0;
      lease.deadline = now + config_.health.lease_duration;
    } else if (now >= lease.deadline) {
      ++lease.missed;
      missed_heartbeats_.fetch_add(1, std::memory_order_relaxed);
      lease.deadline = now + config_.health.lease_duration;
      if (lease.missed >= config_.health.missed_to_death) {
        declare_dead_locked(i, now);
        continue;
      }
    }
    // Stall fast path (PR5 semantics): a stalled host is still responsive,
    // so it is quarantined immediately rather than waiting out a lease.
    if (host.stalled()) {
      hosts_quarantined_.fetch_add(1, std::memory_order_relaxed);
      std::vector<faas::Submission> backlog = host.quarantine();
      for (auto& task : backlog) {
        // Exactly once: steal_pending removed these from the stalled
        // host atomically, and the redispatched flag exempts them from
        // the drop/stall fault sites on the way back in.
        task.redispatched = true;
        redispatched_.fetch_add(1, std::memory_order_relaxed);
        dispatch(std::move(task));
      }
      lease.probe_streak = 1;
      lease.next_probe = now + probe_backoff_.delay(1, probe_rng_);
    }
  }
}

void ClusterScheduler::declare_dead_locked(std::size_t index, util::Nanos now) {
  Host& host = *hosts_[index];
  HostLease& lease = leases_[index];
  hosts_declared_dead_.fetch_add(1, std::memory_order_relaxed);
  hosts_quarantined_.fetch_add(1, std::memory_order_relaxed);
  host.mark_dead();
  const util::Nanos crashed_at = host.crashed_at();
  if (crashed_at != 0 && now > crashed_at) {
    last_detection_latency_.store(now - crashed_at,
                                  std::memory_order_relaxed);
  }
  // Queued backlog first: these never started, so plain exactly-once
  // re-dispatch (same as the stall path) covers them.
  for (auto& task : host.dispatcher().steal_pending()) {
    task.redispatched = true;
    redispatched_.fetch_add(1, std::memory_order_relaxed);
    dispatch(std::move(task));
  }
  // In-flight orphans: the dispatcher always finishes a dequeued task, so
  // each of these WILL surface a late (zombie) completion. Register the
  // key in the ledger and re-dispatch a copy — drain() keeps whichever
  // outcome lands first and suppresses the other.
  for (auto& task : host.take_inflight()) {
    if (task.redispatched) {
      // Already a re-dispatched copy (stolen off an earlier death): its
      // zombie completion is the one surviving outcome for its key.
      // Re-dispatching again would mint a THIRD outcome and break the
      // drain arithmetic (submitted + orphans_redispatched).
      continue;
    }
    orphan_keys_.insert(task.key);
    orphans_redispatched_.fetch_add(1, std::memory_order_relaxed);
    task.redispatched = true;
    dispatch(std::move(task));
  }
  lease.probe_streak = 1;
  lease.next_probe = now + probe_backoff_.delay(1, probe_rng_);
}

void ClusterScheduler::rejoin_locked(std::size_t index, util::Nanos now) {
  Host& host = *hosts_[index];
  HostLease& lease = leases_[index];
  if (config_.health.rehydrate_top_k != 0) {
    // Warm rejoin BEFORE re-entering rotation (the health mutex keeps the
    // half-rejoined host invisible to routing): restore pooled sandboxes
    // for the top-k recently-invoked functions so post-failover traffic
    // resumes kWarm/kHorse instead of kCold. Best-effort — a failed
    // restore must not keep an otherwise-live host out of the cluster.
    (void)host.rehydrate_warm(config_.health.rehydrate_top_k,
                              config_.health.rehydrate_per_function);
  }
  host.force_recover();
  gauge_decrement_quarantined();
  hosts_rejoined_.fetch_add(1, std::memory_order_relaxed);
  lease.missed = 0;
  lease.probe_streak = 0;
  lease.last_completed = host.completed();
  lease.deadline = now + config_.health.lease_duration;
}

void ClusterScheduler::gauge_decrement_quarantined() {
  std::uint64_t current = hosts_quarantined_.load(std::memory_order_relaxed);
  while (current > 0 &&
         !hosts_quarantined_.compare_exchange_weak(
             current, current - 1, std::memory_order_relaxed)) {
  }
}

std::vector<faas::SubmissionOutcome> ClusterScheduler::drain() {
  while (true) {
    check_health();
    // Each in-flight orphan re-dispatched off a declared-dead host yields
    // exactly TWO host outcomes (the zombie completion plus the copy), so
    // the target grows with the ledger. Both terms are re-read every
    // iteration — the sweep above can declare further deaths mid-drain.
    const std::uint64_t target =
        submitted_.load(std::memory_order_acquire) +
        orphans_redispatched_.load(std::memory_order_acquire);
    // Shed submissions never reach a host; their typed outcomes complete
    // the accounting (completed + shed == submitted + orphans when idle).
    std::uint64_t done = shed_count_.load(std::memory_order_acquire);
    for (const auto& host : hosts_) {
      done += host->completed();
    }
    if (done >= target) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::vector<faas::SubmissionOutcome> out;
  std::uint64_t suppressed = 0;
  {
    // Ledger consultation only — no dispatching happens under this hold,
    // so the health → dispatch lock edge is not exercised here.
    std::lock_guard guard(health_mutex_);
    for (auto& host : hosts_) {
      for (auto& outcome : host->dispatcher().take_outcomes()) {
        if (outcome.key != 0 && orphan_keys_.contains(outcome.key) &&
            !delivered_orphans_.insert(outcome.key).second) {
          // Second sighting of an orphaned key: zombie vs re-dispatched
          // copy, whichever landed later. Suppressed as a typed
          // kDuplicateSuppressed — counted, never surfaced, so every
          // submission completes exactly once.
          ++suppressed;
          continue;
        }
        out.push_back(std::move(outcome));
      }
    }
  }
  duplicates_suppressed_.fetch_add(suppressed, std::memory_order_relaxed);
  {
    std::lock_guard lock(shed_mutex_);
    for (auto& outcome : shed_outcomes_) {
      out.push_back(std::move(outcome));
    }
    shed_outcomes_.clear();
  }
  return out;
}

ClusterCounters ClusterScheduler::counters() const {
  ClusterCounters counters;
  counters.submitted = submitted_.load(std::memory_order_acquire);
  for (const auto& host : hosts_) {
    counters.completed += host->completed();
    counters.host_stalls += host->stall_faults();
    counters.expired += host->expired();
    counters.host_crashes += host->crash_faults();
    counters.rehydrated_sandboxes +=
        host->platform().counters().rehydrated_sandboxes;
  }
  counters.shed = shed_count_.load(std::memory_order_acquire);
  counters.shed_queue_full =
      shed_queue_full_.load(std::memory_order_relaxed);
  counters.spurious_sheds = spurious_sheds_.load(std::memory_order_relaxed);
  counters.hosts_quarantined =
      hosts_quarantined_.load(std::memory_order_relaxed);
  counters.redispatched = redispatched_.load(std::memory_order_relaxed);
  counters.dispatch_drops = dispatch_drops_.load(std::memory_order_relaxed);
  counters.forced_routes = forced_routes_.load(std::memory_order_relaxed);
  counters.missed_heartbeats =
      missed_heartbeats_.load(std::memory_order_relaxed);
  counters.hosts_declared_dead =
      hosts_declared_dead_.load(std::memory_order_relaxed);
  counters.probes = probes_.load(std::memory_order_relaxed);
  counters.hosts_rejoined = hosts_rejoined_.load(std::memory_order_relaxed);
  counters.orphans_redispatched =
      orphans_redispatched_.load(std::memory_order_relaxed);
  counters.duplicates_suppressed =
      duplicates_suppressed_.load(std::memory_order_relaxed);
  counters.degraded_single_host =
      degraded_single_host_.load(std::memory_order_acquire);
  return counters;
}

ClusterStats ClusterScheduler::stats() const {
  ClusterStats stats;
  stats.policy = config_.policy;
  stats.dispatch = config_.dispatch;
  stats.counters = counters();
  stats.hosts.reserve(hosts_.size());
  std::vector<std::uint64_t> decisions;
  {
    std::lock_guard lock(dispatch_mutex_);
    decisions = policy_decisions_;
  }
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    const Host& host = *hosts_[i];
    HostStats entry;
    entry.host = host.id();
    entry.healthy = host.healthy();
    entry.dispatched = host.dispatched();
    entry.completed = host.completed();
    entry.policy_decisions = decisions[i];
    entry.stall_faults = host.stall_faults();
    entry.crashed = host.crashed();
    entry.crash_faults = host.crash_faults();
    entry.expired = host.expired();
    entry.queueing_ewma = host.queueing_ewma();
    const HostSnapshot snapshot = host.snapshot(0, false);
    entry.queued = snapshot.queued;
    entry.in_flight = snapshot.in_flight;
    entry.free_slots = snapshot.free_slots;
    const faas::ControlPlaneSnapshot plane =
        host.platform().control_plane_snapshot();
    for (const std::size_t occupancy : plane.shard_pool_occupancy) {
      entry.pool_sandboxes += occupancy;
    }
    for (const auto& queue : plane.ull.occupancy) {
      entry.ull_paused += queue.paused;
    }
    entry.dispatch_latency = host.dispatch_latency();
    stats.hosts.push_back(std::move(entry));
  }
  return stats;
}

}  // namespace horse::cluster
