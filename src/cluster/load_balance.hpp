// Pluggable cluster load-balancing policies.
//
// The cluster scheduler decides which host receives a pushed invocation
// through a LoadBalancePolicy — the same policy-object shape faabric
// hangs off its Scheduler (FaasmDefault / LeastLoadAverage / MostSlots),
// specialised to HORSE's host model:
//
//   * RoundRobin     — rotate over the healthy hosts; the fairness
//                      baseline (max/min dispatch delta ≤ 1).
//   * LeastLoaded    — fewest queued + running invocations; classic
//                      join-shortest-queue push dispatch.
//   * MostWarmSlots  — most warm sandboxes pooled for the submitted
//                      function: route where the resume will be hot,
//                      trading queue balance for fewer cold starts.
//
// Policies are deterministic pure functions of (snapshot vector, own
// internal counters): given the same sequence of snapshot vectors they
// make the same decisions, which is what lets the tests/cluster/ harness
// replay every decision from a seed. They see only healthy hosts — the
// scheduler pre-filters — and must return an index INTO THE VECTOR they
// were given (the snapshot's `host` field carries the cluster-wide id).
//
// Thread-safety: select() is called under the cluster's dispatch lock;
// policies need no locking of their own.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "faas/registry.hpp"
#include "util/status.hpp"

namespace horse::cluster {

using HostId = std::size_t;

/// Point-in-time view of one host, the policy decision currency. Built by
/// the real scheduler from per-host Dispatcher/Platform counters and by
/// the deterministic harness from modelled hosts, so policies cannot tell
/// (and need not care) which world they are balancing.
struct HostSnapshot {
  HostId host = 0;
  bool healthy = true;
  /// Worker slots with neither queued nor running work.
  std::size_t free_slots = 0;
  /// Queued-but-unstarted invocations (push backlog; 0 in pull mode).
  std::size_t queued = 0;
  /// Invocations currently executing.
  std::size_t in_flight = 0;
  /// Total worker slots.
  std::size_t capacity = 0;
  /// Warm sandboxes pooled for the function being dispatched.
  std::size_t warm_slots = 0;
  /// Lifetime dispatches this host has received.
  std::uint64_t dispatched = 0;

  /// Queue-occupancy load metric the LeastLoaded policy minimises.
  [[nodiscard]] std::size_t load() const noexcept { return queued + in_flight; }
};

class LoadBalancePolicy {
 public:
  virtual ~LoadBalancePolicy() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Pick a host for one invocation of `function`. `hosts` is non-empty
  /// and healthy-only; returns an index into it. Called under the
  /// cluster's dispatch lock.
  [[nodiscard]] virtual std::size_t select(
      const std::vector<HostSnapshot>& hosts, faas::FunctionId function) = 0;
};

/// Rotates over healthy hosts. The rotation counter advances once per
/// decision regardless of the host set's size, so fairness holds even as
/// hosts are quarantined and the vector shrinks.
class RoundRobinPolicy final : public LoadBalancePolicy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "round_robin";
  }
  [[nodiscard]] std::size_t select(const std::vector<HostSnapshot>& hosts,
                                   faas::FunctionId function) override;

 private:
  std::uint64_t next_ = 0;
};

/// Fewest queued + in-flight invocations; ties break toward the lowest
/// host id so decisions are deterministic.
class LeastLoadedPolicy final : public LoadBalancePolicy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "least_loaded";
  }
  [[nodiscard]] std::size_t select(const std::vector<HostSnapshot>& hosts,
                                   faas::FunctionId function) override;
};

/// Most warm sandboxes pooled for the function; ties break toward the
/// least-loaded, then lowest-id host.
class MostWarmSlotsPolicy final : public LoadBalancePolicy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "most_warm";
  }
  [[nodiscard]] std::size_t select(const std::vector<HostSnapshot>& hosts,
                                   faas::FunctionId function) override;
};

enum class PolicyKind : std::uint8_t {
  kRoundRobin,
  kLeastLoaded,
  kMostWarmSlots,
};

[[nodiscard]] std::unique_ptr<LoadBalancePolicy> make_policy(PolicyKind kind);

/// Accepts the bench spellings: "rr"/"round_robin", "least_loaded"/"ll",
/// "most_warm"/"most_warm_slots"/"mw".
[[nodiscard]] util::Expected<PolicyKind> parse_policy(std::string_view name);

[[nodiscard]] constexpr std::string_view to_string(PolicyKind kind) noexcept {
  switch (kind) {
    case PolicyKind::kRoundRobin: return "round_robin";
    case PolicyKind::kLeastLoaded: return "least_loaded";
    case PolicyKind::kMostWarmSlots: return "most_warm";
  }
  return "unknown";
}

}  // namespace horse::cluster
