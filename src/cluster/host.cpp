#include "cluster/host.hpp"

#include <utility>

#include "util/fault_injection.hpp"

namespace horse::cluster {

namespace {

faas::PlatformConfig per_host_config(faas::PlatformConfig config, HostId id) {
  // Decorrelate the per-host RNG streams (backoff jitter, keep-alive
  // sampling) while keeping the whole cluster replayable from one seed.
  config.seed = config.seed + id * 7919;
  return config;
}

}  // namespace

Host::Host(HostId id, faas::PlatformConfig platform_config, std::size_t workers,
           faas::TaskSource* pull_source, util::Nanos max_sojourn)
    : id_(id),
      pull_mode_(pull_source != nullptr),
      platform_(per_host_config(std::move(platform_config), id)),
      dispatcher_([&] {
        faas::Dispatcher::Options options;
        options.workers = workers;
        options.source = pull_source;
        options.max_sojourn = max_sojourn;
        options.executor = [this](faas::Submission task,
                                  faas::SubmissionOutcome& outcome) {
          run_task(std::move(task), outcome);
        };
        options.router = [this](faas::FunctionId function) {
          return platform_.shard_of(function);
        };
        return options;
      }()) {}

void Host::submit(faas::Submission task) {
  // Re-dispatched submissions are exempt: a task stolen off a stalled host
  // must not stall its rescue host too, or an always-armed stall site
  // would steal/re-dispatch the same task forever without executing it.
  if (!task.redispatched && healthy() && HORSE_FAULT_POINT("cluster.host_stall")) {
    stall();
  }
  dispatched_.fetch_add(1, std::memory_order_relaxed);
  // The task is accepted even when the stall just fired: it sits in the
  // parked dispatcher's queue until the health sweep steals it — exactly
  // the "requests queued on a stalled host" the fault tests exercise.
  dispatcher_.submit(std::move(task));
}

HostSnapshot Host::snapshot(faas::FunctionId function,
                            bool include_warm) const {
  HostSnapshot snapshot;
  snapshot.host = id_;
  snapshot.healthy = healthy();
  snapshot.free_slots = dispatcher_.free_slots();
  snapshot.queued = dispatcher_.pending();
  snapshot.in_flight = dispatcher_.in_flight();
  snapshot.capacity = dispatcher_.capacity();
  snapshot.dispatched = dispatched();
  if (include_warm) {
    // const_cast: warm_pool() is non-const on Platform but available() is
    // a read under the owning shard's lock.
    snapshot.warm_slots =
        const_cast<faas::Platform&>(platform_).warm_pool().available(function);
  }
  return snapshot;
}

std::vector<faas::Submission> Host::quarantine() {
  healthy_.store(false, std::memory_order_release);
  std::vector<faas::Submission> backlog = dispatcher_.steal_pending();
  // Restart the workers: in-flight work finishes, and a later forced
  // route (all-hosts-down ladder rung) can still make progress. The host
  // stays out of policy rotation until force_recover().
  dispatcher_.resume();
  return backlog;
}

void Host::force_recover() {
  stalled_.store(false, std::memory_order_release);
  healthy_.store(true, std::memory_order_release);
  dispatcher_.resume();
}

metrics::Histogram Host::dispatch_latency() const {
  std::lock_guard lock(latency_mutex_);
  return dispatch_latency_;
}

void Host::run_task(faas::Submission task, faas::SubmissionOutcome& outcome) {
  // Pull mode has no submit path on the host, so the stall is probed at
  // task pickup instead: the host finishes this task, then stops pulling.
  // Re-dispatched tasks are exempt, as on the push path.
  if (pull_mode_ && !task.redispatched && healthy() &&
      HORSE_FAULT_POINT("cluster.host_stall")) {
    stall();
    dispatched_.fetch_add(1, std::memory_order_relaxed);
  } else if (pull_mode_) {
    dispatched_.fetch_add(1, std::memory_order_relaxed);
  }
  outcome.host = id_;
  {
    std::lock_guard lock(latency_mutex_);
    dispatch_latency_.record(outcome.queueing);
  }
  // Queue-delay EWMA (α = 1/8) for the scheduler's admission estimate.
  // Benign race: two workers updating concurrently lose at most one
  // sample's weight — it is an estimate, not an account.
  const util::Nanos prev = queueing_ewma_.load(std::memory_order_relaxed);
  queueing_ewma_.store(prev + (outcome.queueing - prev) / 8,
                       std::memory_order_relaxed);
  faas::InvokeControls controls;
  controls.now = util::monotonic_now();
  controls.deadline = task.deadline;
  auto result = platform_.invoke(task.function, std::move(task.request),
                                 task.mode, controls);
  if (result) {
    outcome.record = std::move(*result);
  } else {
    outcome.status = result.status();
    outcome.reject = controls.reject;
  }
}

void Host::stall() {
  stalled_.store(true, std::memory_order_release);
  stall_count_.fetch_add(1, std::memory_order_relaxed);
  dispatcher_.pause();
}

}  // namespace horse::cluster
