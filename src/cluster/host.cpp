#include "cluster/host.hpp"

#include <utility>

#include "util/fault_injection.hpp"

namespace horse::cluster {

namespace {

faas::PlatformConfig per_host_config(faas::PlatformConfig config, HostId id) {
  // Decorrelate the per-host RNG streams (backoff jitter, keep-alive
  // sampling) while keeping the whole cluster replayable from one seed.
  config.seed = config.seed + id * 7919;
  return config;
}

}  // namespace

Host::Host(HostId id, faas::PlatformConfig platform_config, std::size_t workers,
           faas::TaskSource* pull_source, util::Nanos max_sojourn)
    : id_(id),
      pull_mode_(pull_source != nullptr),
      platform_(per_host_config(std::move(platform_config), id)),
      dispatcher_([&] {
        faas::Dispatcher::Options options;
        options.workers = workers;
        options.source = pull_source;
        options.max_sojourn = max_sojourn;
        options.executor = [this](faas::Submission task,
                                  faas::SubmissionOutcome& outcome) {
          run_task(std::move(task), outcome);
        };
        options.router = [this](faas::FunctionId function) {
          return platform_.shard_of(function);
        };
        return options;
      }()) {}

void Host::submit(faas::Submission task) {
  // Re-dispatched submissions are exempt: a task stolen off a stalled host
  // must not stall its rescue host too, or an always-armed stall site
  // would steal/re-dispatch the same task forever without executing it.
  // Same for crashes — re-dispatched orphans must land somewhere.
  if (!task.redispatched && healthy()) {
    if (HORSE_FAULT_POINT("cluster.host_crash")) {
      crash();
    } else if (HORSE_FAULT_POINT("cluster.host_stall")) {
      stall();
    }
  }
  dispatched_.fetch_add(1, std::memory_order_relaxed);
  // The task is accepted even when the stall just fired: it sits in the
  // parked dispatcher's queue until the health sweep steals it — exactly
  // the "requests queued on a stalled host" the fault tests exercise.
  dispatcher_.submit(std::move(task));
}

HostSnapshot Host::snapshot(faas::FunctionId function,
                            bool include_warm) const {
  HostSnapshot snapshot;
  snapshot.host = id_;
  snapshot.healthy = healthy();
  snapshot.free_slots = dispatcher_.free_slots();
  snapshot.queued = dispatcher_.pending();
  snapshot.in_flight = dispatcher_.in_flight();
  snapshot.capacity = dispatcher_.capacity();
  snapshot.dispatched = dispatched();
  if (include_warm) {
    // const_cast: warm_pool() is non-const on Platform but available() is
    // a read under the owning shard's lock.
    snapshot.warm_slots =
        const_cast<faas::Platform&>(platform_).warm_pool().available(function);
  }
  return snapshot;
}

std::vector<faas::Submission> Host::quarantine() {
  healthy_.store(false, std::memory_order_release);
  std::vector<faas::Submission> backlog = dispatcher_.steal_pending();
  // Restart the workers: in-flight work finishes, and a later forced
  // route (all-hosts-down ladder rung) can still make progress. The host
  // stays out of policy rotation until force_recover().
  dispatcher_.resume();
  return backlog;
}

void Host::force_recover() {
  crashed_.store(false, std::memory_order_release);
  stalled_.store(false, std::memory_order_release);
  healthy_.store(true, std::memory_order_release);
  dispatcher_.resume();
}

void Host::crash() {
  // Order matters: probes must start failing before the warm state goes,
  // so a concurrent health sweep never sees a responsive host with an
  // empty pool mid-crash.
  crashed_.store(true, std::memory_order_release);
  crashed_at_.store(util::monotonic_now(), std::memory_order_release);
  crash_count_.fetch_add(1, std::memory_order_relaxed);
  dispatcher_.pause();
  // A dead host's warm state is gone. Workers mid-task keep running (the
  // dispatcher always finishes a dequeued task) — those become the
  // zombie completions the orphan ledger dedups.
  platform_.clear_warm_pools();
}

void Host::restart() {
  crashed_.store(false, std::memory_order_release);
  stalled_.store(false, std::memory_order_release);
  dispatcher_.resume();
  // healthy_ is NOT touched: if the scheduler declared this host dead,
  // only its half-open probe path may put it back in rotation (and
  // rehydrate it first).
}

void Host::mark_dead() {
  healthy_.store(false, std::memory_order_release);
  // No dispatcher_.resume(), unlike quarantine(): the workers are not
  // merely parked behind a stall — the host is gone until restart().
}

bool Host::probe() {
  if (crashed()) {
    return false;
  }
  // Alive (possibly stalled-and-recovered, possibly restarted after a
  // crash): clear the stall and get the workers moving again. The caller
  // flips healthy_ once rehydration is done.
  stalled_.store(false, std::memory_order_release);
  dispatcher_.resume();
  return true;
}

std::vector<faas::Submission> Host::take_inflight() {
  std::vector<faas::Submission> orphans;
  std::lock_guard lock(inflight_mutex_);
  orphans.reserve(inflight_.size());
  for (auto& [key, task] : inflight_) {
    orphans.push_back(std::move(task));
  }
  inflight_.clear();
  return orphans;
}

util::Status Host::rehydrate_warm(std::size_t top_k,
                                  std::size_t per_function) {
  util::Status first_error = util::Status::ok();
  for (const faas::FunctionId function : platform_.recently_invoked(top_k)) {
    const util::Status status = platform_.rehydrate(function, per_function);
    if (!status.is_ok() && first_error.is_ok()) {
      first_error = status;  // keep going: partial warmth beats none
    }
  }
  return first_error;
}

metrics::Histogram Host::dispatch_latency() const {
  std::lock_guard lock(latency_mutex_);
  return dispatch_latency_;
}

void Host::run_task(faas::Submission task, faas::SubmissionOutcome& outcome) {
  // Register the task in the in-flight set BEFORE any fault probe: if the
  // crash fires right here, this task is already tracked, so it becomes
  // the guaranteed orphan/zombie pair the dedup ledger exists for.
  {
    std::lock_guard lock(inflight_mutex_);
    inflight_.insert_or_assign(task.key, task);
  }
  // Pull mode has no submit path on the host, so the stall/crash is
  // probed at task pickup instead: the host finishes this task, then
  // stops pulling. Re-dispatched tasks are exempt, as on the push path.
  if (pull_mode_) {
    if (!task.redispatched && healthy()) {
      if (HORSE_FAULT_POINT("cluster.host_crash")) {
        crash();
      } else if (HORSE_FAULT_POINT("cluster.host_stall")) {
        stall();
      }
    }
    dispatched_.fetch_add(1, std::memory_order_relaxed);
  }
  outcome.host = id_;
  {
    std::lock_guard lock(latency_mutex_);
    dispatch_latency_.record(outcome.queueing);
  }
  // Queue-delay EWMA (α = 1/8) for the scheduler's admission estimate.
  // Benign race: two workers updating concurrently lose at most one
  // sample's weight — it is an estimate, not an account.
  const util::Nanos prev = queueing_ewma_.load(std::memory_order_relaxed);
  queueing_ewma_.store(prev + (outcome.queueing - prev) / 8,
                       std::memory_order_relaxed);
  faas::InvokeControls controls;
  controls.now = util::monotonic_now();
  controls.deadline = task.deadline;
  if (task.workflow != faas::kNoWorkflow) {
    // Chain submission: resume from the hop cursor and keep the in-flight
    // copy's cursor at the frontier as stages complete. If this host is
    // declared dead mid-chain, take_inflight() hands the scheduler the
    // advanced copy, so the re-dispatch resumes where we stopped and
    // completed stages never re-execute. The callback runs under the
    // executing shard's mutex; inflight_mutex_ is a leaf, so this nesting
    // is always safe.
    controls.hop = task.hop;
    controls.on_hop = [this, &task](std::uint32_t hop,
                                    faas::FunctionId function) {
      std::lock_guard lock(inflight_mutex_);
      const auto it = inflight_.find(task.key);
      if (it != inflight_.end()) {
        it->second.hop = hop;
        it->second.function = function;
      }
    };
    outcome.workflow = task.workflow;
    outcome.chain_first_hop = task.hop;
    auto result = platform_.invoke_chain(
        task.workflow, std::move(task.request), task.mode, controls);
    outcome.chain_stages = controls.hops_completed;
    if (result) {
      outcome.record = std::move(result->record);
    } else {
      outcome.status = result.status();
      outcome.reject = controls.reject;
    }
  } else {
    auto result = platform_.invoke(task.function, std::move(task.request),
                                   task.mode, controls);
    if (result) {
      outcome.record = std::move(*result);
    } else {
      outcome.status = result.status();
      outcome.reject = controls.reject;
    }
  }
  // Done (the outcome is about to be recorded): leave the in-flight set.
  // If the health sweep stole the set first, this erase is a no-op and
  // the completion surfaces as a zombie the ledger dedups.
  {
    std::lock_guard lock(inflight_mutex_);
    inflight_.erase(task.key);
  }
}

void Host::stall() {
  stalled_.store(true, std::memory_order_release);
  stall_count_.fetch_add(1, std::memory_order_relaxed);
  dispatcher_.pause();
}

}  // namespace horse::cluster
