// Deterministic virtual-time cluster model (the tests/cluster/ harness).
//
// The real ClusterScheduler runs jthread worker pools, so its interleavings
// are not replayable. This model is: one thread, virtual nanoseconds, and a
// single seeded RNG stream drawn in submission order. Given the same
// (params, seed, submission sequence) it produces the same decision log,
// the same per-host assignment, and the same latency numbers — which is
// what lets the property tests sweep 1024 seeds and re-run any failure
// from its seed alone.
//
// The model exercises the REAL policy objects (cluster/load_balance.hpp):
// policies see HostSnapshots built from modelled hosts exactly the way the
// real scheduler builds them from Dispatcher counters, so a policy bug
// caught here is a policy bug in production.
//
// Dispatch modes mirror the real scheduler:
//   * push — early binding: the policy picks a host at submit time; the
//     task queues there even if the host is busy (head-of-line blocking is
//     faithfully modelled — this is what E18 measures).
//   * pull — late binding: a task is bound only when some host has a free
//     slot; until then it waits in a shared FIFO. The idle-host choice is
//     deterministic (most free slots, then lowest id), standing in for
//     "whichever idle worker reached the queue first".
//
// Controllability for tests: per-host speed/overhead/jitter/slots,
// set_healthy() between submissions (quarantine modelling), occupy() to
// pre-load a host with synthetic work, set_warm_slots() to steer the
// warm-aware policy. Every decision records the candidate snapshot vector
// it was made from, so invariants ("never picked a strictly-more-loaded
// host") are checked against the exact evidence the policy saw.
//
// Crash mirror (the real scheduler's §5.7 model in virtual time):
// crash_host() kills a host wholesale — out of rotation, warm slots gone,
// but tasks already started STILL finish (the dispatcher-always-finishes
// rule) and surface as zombie completions. declare_dead() steals the
// queued backlog AND the in-flight orphans (the caller re-dispatches, as
// the scheduler does) and registers the orphan seqs in a dedup ledger:
// exactly one of {zombie, re-dispatched copy} lands in completions(); the
// other bumps duplicates_suppressed(). recover_host() models restart +
// warm rejoin (rehydrated warm slots restored). All three log typed
// events (SimEventKind) into the decision log, so a seed's crash/recover
// schedule replays bit-identically with everything else.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cluster/load_balance.hpp"
#include "cluster/scheduler.hpp"
#include "metrics/histogram.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace horse::cluster {

struct SimHostParams {
  /// Concurrent task capacity (the modelled worker-slot count).
  std::size_t slots = 4;
  /// Multiplier on every task's nominal service time (host speed).
  double speed = 1.0;
  /// Fixed per-task overhead added after scaling.
  util::Nanos overhead = 0;
  /// Relative service-time jitter (stddev of a clamped normal around 1.0);
  /// 0 disables the RNG draw entirely.
  double jitter = 0.0;
  /// Modelled warm-pool slots reported to the MostWarmSlots policy.
  std::size_t warm_slots = 0;
};

struct SimClusterParams {
  std::size_t num_hosts = 1;
  DispatchMode dispatch = DispatchMode::kPush;
  PolicyKind policy = PolicyKind::kRoundRobin;
  std::uint64_t seed = 1;
  /// Cluster-style admission control, mirrored in virtual time: acts only
  /// on deadline-carrying submissions (sheds when the per-host queueing
  /// EWMA exceeds the remaining slack; expires stale tasks at dequeue).
  bool admission = true;
  /// Pull-mode shared-queue bound; 0 = unbounded. A deadline submission
  /// arriving at a full queue is rejected kQueueFull.
  std::size_t pull_queue_capacity = 0;
  /// Host i uses hosts[i] when provided, `defaults` otherwise.
  SimHostParams defaults;
  std::vector<SimHostParams> hosts;
};

/// What a decision-log entry records: a routing decision, or one of the
/// crash-tolerance lifecycle events (which carry host + time only).
enum class SimEventKind : std::uint8_t {
  kDispatch,
  kCrash,
  kDeclareDead,
  kRejoin,
};

/// One routing decision (or lifecycle event), with the evidence it was
/// made from.
struct SimDecision {
  std::uint64_t seq = 0;
  util::Nanos time = 0;
  faas::FunctionId function = 0;
  /// Cluster-wide id of the chosen host.
  HostId host = 0;
  /// The healthy-only snapshot vector handed to the policy (empty for
  /// pull-mode bindings, which are slot-availability driven, and for
  /// forced routes).
  std::vector<HostSnapshot> candidates;
  /// No healthy host existed; the ladder forced host 0.
  bool forced = false;
  /// kDispatch for routing decisions; crash/declare-dead/rejoin events
  /// interleave in the same log so seed replay covers the full schedule.
  SimEventKind kind = SimEventKind::kDispatch;
};

struct SimCompletion {
  std::uint64_t seq = 0;
  faas::FunctionId function = 0;
  HostId host = 0;
  util::Nanos arrival = 0;
  util::Nanos start = 0;
  util::Nanos finish = 0;
  util::Nanos deadline = 0;  // absolute; 0 = none
  /// Chain accounting (submit_chain submissions; both 0 for plain tasks):
  /// the hop cursor this EXECUTION started from — nonzero means an
  /// orphan-recovery re-dispatch resumed mid-chain — and the chain's
  /// total stage count. This execution ran stages [chain_hop,
  /// chain_stages), which is what the no-stage-re-executed sweep checks.
  std::uint32_t chain_hop = 0;
  std::uint32_t chain_stages = 0;

  [[nodiscard]] util::Nanos queueing() const noexcept { return start - arrival; }
  [[nodiscard]] util::Nanos latency() const noexcept { return finish - arrival; }
  /// A completion with a deadline counts toward goodput iff it finished
  /// in time.
  [[nodiscard]] bool met_deadline() const noexcept {
    return deadline == 0 || finish <= deadline;
  }
};

/// A typed refusal in virtual time — the model's SubmissionOutcome-with-
/// reject. Every submission yields exactly one completion XOR rejection
/// (the property the 1024-seed sweep pins).
struct SimRejection {
  std::uint64_t seq = 0;
  faas::FunctionId function = 0;
  util::Nanos time = 0;
  faas::SubmissionReject reject = faas::SubmissionReject::kNone;
};

class SimCluster {
 public:
  explicit SimCluster(SimClusterParams params);

  /// Submit one invocation at virtual time `at` (non-decreasing across
  /// calls) with nominal service time `service`. Completions due before
  /// `at` are processed first, so snapshots reflect the state at `at`.
  void submit(util::Nanos at, faas::FunctionId function, util::Nanos service);

  /// Deadline-carrying submit (`deadline` absolute virtual time; 0 =
  /// none). With admission on, may shed (kQueueShed/kQueueFull) at submit
  /// or expire (kDeadlineExpired) at dequeue — each recorded in
  /// rejections() exactly once.
  void submit(util::Nanos at, faas::FunctionId function, util::Nanos service,
              util::Nanos deadline);

  /// Submit a workflow chain as ONE routed unit (the submit_chain mirror):
  /// `function` is the chain's entry-stage identity (what routing sees),
  /// `stage_services` the nominal per-stage service times. One jitter
  /// draw scales the whole chain, so chain and plain submissions each
  /// consume exactly one draw and the RNG stream stays aligned with the
  /// submission sequence. The chain carries one seq and one deadline;
  /// declare_dead() advances an in-flight chain orphan's hop cursor past
  /// the stages its dying host completed, so the re-dispatched copy runs
  /// only the remainder — no stage ever executes twice across the
  /// surviving outcome.
  void submit_chain(util::Nanos at, faas::FunctionId function,
                    const std::vector<util::Nanos>& stage_services,
                    util::Nanos deadline = 0);

  /// Advance virtual time, processing completions (and pull bindings) due
  /// by `now`. submit() calls this implicitly.
  void advance_to(util::Nanos now);

  /// Run every outstanding task to completion; returns virtual end time.
  util::Nanos run_to_completion();

  /// Mark a host (un)healthy. Push dispatch skips unhealthy hosts; pull
  /// workers on an unhealthy host stop pulling. Queued push-mode work
  /// stays put until steal_backlog().
  void set_healthy(HostId host, bool healthy);

  /// Take an unhealthy host's queued-but-unstarted push backlog, as the
  /// scheduler's quarantine sweep does. The caller re-submits.
  [[nodiscard]] std::vector<std::uint64_t> steal_backlog(HostId host);

  /// Re-dispatch a stolen task (by its original seq) at time `at`.
  void redispatch(std::uint64_t seq, util::Nanos at);

  // --- crash mirror --------------------------------------------------------

  /// Kill a host wholesale at `at`: out of rotation, warm slots gone.
  /// Tasks it already started still run to completion (zombies); its
  /// queued backlog stays put until declare_dead().
  void crash_host(HostId host, util::Nanos at);

  /// The failure detector's verdict, in virtual time: steal the dead
  /// host's queued backlog AND its in-flight orphans into the stolen set,
  /// register the orphan seqs in the dedup ledger, and return every seq
  /// for the caller to redispatch() — exactly what the scheduler does at
  /// declared death. Orphans' zombie completions are then deduped:
  /// exactly one outcome per seq survives.
  [[nodiscard]] std::vector<std::uint64_t> declare_dead(HostId host,
                                                        util::Nanos at);

  /// Restart + warm rejoin: the host re-enters rotation with
  /// `rehydrated_warm_slots` modelled warm slots (the SnapshotManager
  /// rehydration, seen through the MostWarmSlots policy's eyes).
  void recover_host(HostId host, util::Nanos at,
                    std::size_t rehydrated_warm_slots);

  [[nodiscard]] bool host_crashed(HostId host) const {
    return hosts_.at(host).crashed;
  }
  /// Zombie completions dropped by the dedup ledger (each orphaned seq
  /// completes exactly once; the other sighting lands here).
  [[nodiscard]] std::uint64_t duplicates_suppressed() const noexcept {
    return duplicates_suppressed_;
  }

  /// Pre-load `count` synthetic tasks of `service` each onto a host at the
  /// current virtual time, bypassing the policy (occupancy control).
  void occupy(HostId host, std::size_t count, util::Nanos service);

  void set_warm_slots(HostId host, std::size_t warm);

  [[nodiscard]] const std::vector<SimDecision>& decisions() const noexcept {
    return decisions_;
  }
  [[nodiscard]] const std::vector<SimCompletion>& completions() const noexcept {
    return completions_;
  }
  [[nodiscard]] const std::vector<SimRejection>& rejections() const noexcept {
    return rejections_;
  }
  [[nodiscard]] std::vector<std::uint64_t> dispatch_counts() const;
  [[nodiscard]] std::size_t forced_routes() const noexcept { return forced_; }
  [[nodiscard]] util::Nanos now() const noexcept { return now_; }

  /// Per-host end-to-end latency histograms (arrival → finish).
  [[nodiscard]] std::vector<metrics::Histogram> latency_by_host() const;
  /// Merged queueing-delay histogram (arrival → start).
  [[nodiscard]] metrics::Histogram queueing_histogram() const;

 private:
  struct Task {
    std::uint64_t seq = 0;
    faas::FunctionId function = 0;
    util::Nanos arrival = 0;
    /// Post-jitter nominal service time (host speed applied at start).
    /// For chains: the sum of the REMAINING stages from `hop`.
    util::Nanos service = 0;
    util::Nanos deadline = 0;  // absolute; 0 = none
    bool redispatched = false;
    /// Chain mirror: post-jitter nominal per-stage services (empty =
    /// plain task), the hop cursor (first stage still to run), and the
    /// virtual time the current execution started (set by start_on; what
    /// declare_dead uses to place the dying host's stage boundaries).
    std::vector<util::Nanos> stage_services;
    std::uint32_t hop = 0;
    util::Nanos started_at = 0;
  };

  struct SimHost {
    SimHostParams params;
    bool healthy = true;
    bool crashed = false;
    std::size_t in_flight = 0;
    std::deque<Task> queue;  // push-mode backlog
    /// Tasks started but not finished, keyed by seq (pre-scaling service
    /// copies) — the in-flight set declare_dead() steals orphans from.
    std::unordered_map<std::uint64_t, Task> running;
    std::uint64_t dispatched = 0;
    /// Virtual-time queueing EWMA (α = 1/8), the admission estimate —
    /// the mirror of Host::queueing_ewma().
    util::Nanos queueing_ewma = 0;
  };

  struct Finish {
    util::Nanos time = 0;
    std::uint64_t order = 0;  // ties resolve in schedule order
    HostId host = 0;
    Task task;
    bool operator>(const Finish& other) const noexcept {
      return time != other.time ? time > other.time : order > other.order;
    }
  };

  [[nodiscard]] HostSnapshot snapshot_of(HostId id) const;
  /// Shared tail of submit()/submit_chain(): admission (deadline-slack
  /// shed, bounded pull queue), then dispatch by mode.
  void admit_or_dispatch(Task task, util::Nanos at);
  void start_on(HostId id, Task task, util::Nanos at);
  void push_dispatch(Task task, util::Nanos at);
  void pull_try_bind(util::Nanos at);
  void complete_due(util::Nanos now);
  [[nodiscard]] util::Nanos jittered(util::Nanos service);
  /// Expire-at-dequeue: records a kDeadlineExpired rejection and returns
  /// true when `task`'s deadline has passed at `at`.
  bool expire_if_due(const Task& task, util::Nanos at);
  void record_rejection(const Task& task, util::Nanos at,
                        faas::SubmissionReject reject);
  /// Min queueing EWMA over healthy hosts (the admission estimate).
  [[nodiscard]] util::Nanos queue_delay_estimate() const;

  SimClusterParams params_;
  std::unique_ptr<LoadBalancePolicy> policy_;
  util::Xoshiro256 rng_;
  std::vector<SimHost> hosts_;
  std::deque<Task> shared_queue_;  // pull-mode FIFO
  std::priority_queue<Finish, std::vector<Finish>, std::greater<>> finishes_;
  std::vector<SimDecision> decisions_;
  std::vector<SimCompletion> completions_;
  std::vector<SimRejection> rejections_;
  std::vector<Task> stolen_;  // parked between steal_backlog and redispatch
  /// Dedup ledger, mirroring the scheduler's: seqs orphaned off dead
  /// hosts, and which of those already delivered their one completion.
  std::unordered_set<std::uint64_t> orphan_seqs_;
  std::unordered_set<std::uint64_t> delivered_orphans_;
  std::uint64_t duplicates_suppressed_ = 0;
  util::Nanos now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_order_ = 0;
  std::size_t forced_ = 0;
};

/// Route a whole arrival schedule through a SimCluster policy and split it
/// into one per-host schedule (macro_trace_sim's cluster mode: each slice
/// then drives an independent single-host SimServer). `service_hint` is
/// the nominal per-invocation service time used to model occupancy while
/// routing.
[[nodiscard]] std::vector<std::vector<std::uint64_t>> split_indices(
    const std::vector<util::Nanos>& times,
    const std::vector<faas::FunctionId>& functions, SimClusterParams params,
    util::Nanos service_hint);

}  // namespace horse::cluster
