// Multi-host cluster scheduler over N simulated Hosts.
//
// The control plane's top layer: N Hosts (each a full single-host
// Platform + worker pool) behind one submission front door, with two
// dispatch disciplines:
//
//   * PUSH — submit() consults the pluggable LoadBalancePolicy over
//     healthy-host snapshots and commits the request to the chosen
//     host's local queue immediately (faabric-style early binding).
//   * PULL — submit() appends to one shared bounded queue; idle hosts
//     pull the next request the moment a worker frees up (Hiku-style
//     late binding). No request is ever committed to a host without a
//     free slot, which is what flattens tail latency under skew: a
//     burst on a hot function can never convoy behind one host's
//     backlog while other hosts sit idle.
//
// Cluster-level state is tiny and reconstructable (Dirigent): the
// scheduler owns only the policy object, the monotonic submit counter,
// the per-host policy-decision counters, and fault counters. Everything
// in stats() — occupancy, completions, health — is recomputed from the
// hosts' own atomics at call time; quarantining a host writes one flag
// on the host, not a parallel registry here.
//
// Health & degradation ladder (extends DESIGN.md §5.2 to the cluster):
// a host whose cluster.host_stall fault fires parks its workers. The
// health sweep (every `health_check_interval` submissions, at drain
// start, and while drain waits) quarantines it: out of policy rotation,
// queued backlog stolen and re-dispatched EXACTLY ONCE to healthy hosts
// (re-dispatched submissions are exempt from the dispatch fault sites,
// so a request can be re-routed at most once per stall and once per
// drop). When quarantines leave a single healthy host the cluster
// degrades to single-host routing (sticky `degraded_single_host`
// counter); when none remain, the bottom rung force-recovers one host
// and routes there (`forced_routes`) — requests are never dropped.
//
// Fault sites: cluster.host_stall (see host.hpp) and
// cluster.dispatch_drop — a modelled lost dispatch, detected and
// retried through the policy immediately (the retry is the
// re-dispatch; `dispatch_drops` counts the losses).
//
// Lock hierarchy (extends the platform's, left before right):
//   health sweep mutex → cluster dispatch mutex → host dispatcher worker
//   mutex → [Platform: shard → resume → manager → queue → load]
// drain() takes none of these while waiting; it polls host counters.
//
// Thread-safety: submit() from any thread; drain() single-drainer, and
// it must not run concurrently with submit() (same contract as
// Invoker::drain). register/provision/ensure_snapshot/advance_time are
// setup/driver calls, not hot paths.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

#include "cluster/host.hpp"
#include "cluster/load_balance.hpp"
#include "faas/platform.hpp"
#include "faas/submission.hpp"
#include "metrics/histogram.hpp"

namespace horse::cluster {

enum class DispatchMode : std::uint8_t { kPush, kPull };

[[nodiscard]] constexpr std::string_view to_string(DispatchMode mode) noexcept {
  return mode == DispatchMode::kPush ? "push" : "pull";
}

[[nodiscard]] util::Expected<DispatchMode> parse_dispatch_mode(
    std::string_view name);

/// Cluster-level admission control. Enabled by default, but it only acts
/// on submissions that carry a deadline — deadline-free traffic is never
/// shed, so pre-overload callers see byte-identical behaviour.
struct ClusterAdmissionConfig {
  bool enabled = true;
  /// CoDel-style sojourn cap forwarded to every host's dispatcher: tasks
  /// queued longer than this expire at dequeue. 0 disables (per-task
  /// deadlines are always honoured regardless).
  util::Nanos max_sojourn = 0;
};

struct ClusterConfig {
  std::size_t num_hosts = 1;
  /// Worker slots per host; 0 = max(2, platform.num_cpus / 2).
  std::size_t workers_per_host = 0;
  DispatchMode dispatch = DispatchMode::kPush;
  PolicyKind policy = PolicyKind::kRoundRobin;
  /// Shared pull-queue bound; producers block when full (backpressure).
  std::size_t pull_queue_capacity = 4096;
  /// Submissions between health sweeps (drain always sweeps too).
  std::size_t health_check_interval = 64;
  ClusterAdmissionConfig admission;
  /// Per-host platform template; host i runs it with seed + i*7919.
  faas::PlatformConfig platform;
};

/// Cluster-level lifetime counters (host counters live on the hosts).
struct ClusterCounters {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  /// Stall faults fired across hosts (cluster.host_stall).
  std::uint64_t host_stalls = 0;
  /// Hosts taken out of rotation by the health sweep.
  std::uint64_t hosts_quarantined = 0;
  /// Backlog submissions re-routed off quarantined hosts (each exactly
  /// once per stall).
  std::uint64_t redispatched = 0;
  /// cluster.dispatch_drop faults fired (each retried exactly once).
  std::uint64_t dispatch_drops = 0;
  /// Times the cluster found ZERO healthy hosts and force-recovered one.
  std::uint64_t forced_routes = 0;
  // --- overload control ----------------------------------------------------
  /// Submissions shed at admission (estimated queue delay already past the
  /// deadline's slack, pull queue full, or a spurious-shed fault). Every
  /// shed produces a typed outcome in drain(); completed + shed covers
  /// every submission.
  std::uint64_t shed = 0;
  /// Subset of `shed`: the bounded pull queue refused (try_push).
  std::uint64_t shed_queue_full = 0;
  /// Tasks expired at dequeue by host dispatchers (deadline / sojourn).
  /// These DO count toward `completed` (the host recorded the outcome).
  std::uint64_t expired = 0;
  /// admission.spurious_shed fault fires (each one also counts in shed).
  std::uint64_t spurious_sheds = 0;
  /// Sticky: the quarantine ladder reached single-host routing.
  bool degraded_single_host = false;
};

struct HostStats {
  HostId host = 0;
  bool healthy = true;
  std::uint64_t dispatched = 0;
  std::uint64_t completed = 0;
  std::uint64_t policy_decisions = 0;
  std::uint64_t stall_faults = 0;
  std::size_t queued = 0;
  std::size_t in_flight = 0;
  std::size_t free_slots = 0;
  /// Tasks this host expired at dequeue (deadline / sojourn cap).
  std::uint64_t expired = 0;
  /// The host's queue-delay EWMA the admission check reads.
  util::Nanos queueing_ewma = 0;
  /// Pooled warm sandboxes on the host (all functions).
  std::size_t pool_sandboxes = 0;
  /// Reserved-queue paused-sandbox occupancy (from the host platform's
  /// consistent control-plane snapshot).
  std::size_t ull_paused = 0;
  metrics::Histogram dispatch_latency;
};

struct ClusterStats {
  std::vector<HostStats> hosts;
  ClusterCounters counters;
  PolicyKind policy = PolicyKind::kRoundRobin;
  DispatchMode dispatch = DispatchMode::kPush;
};

class ClusterScheduler {
 public:
  explicit ClusterScheduler(ClusterConfig config);
  ~ClusterScheduler();

  ClusterScheduler(const ClusterScheduler&) = delete;
  ClusterScheduler& operator=(const ClusterScheduler&) = delete;

  [[nodiscard]] std::size_t num_hosts() const noexcept {
    return hosts_.size();
  }
  [[nodiscard]] Host& host(std::size_t index) { return *hosts_[index]; }
  [[nodiscard]] const ClusterConfig& config() const noexcept {
    return config_;
  }

  /// Register the same function on every host. The factory is invoked
  /// once per host (each Platform needs its own workload instance — a
  /// function's implementation state is only serialised within one
  /// host). All hosts must agree on the id.
  [[nodiscard]] util::Expected<faas::FunctionId> register_function(
      const std::function<faas::FunctionSpec()>& make_spec);

  /// Fan-out to every host.
  util::Status provision(faas::FunctionId function, std::size_t count);
  util::Status ensure_snapshot(faas::FunctionId function);
  void advance_time(util::Nanos delta);

  /// Fire-and-collect (push: policy + host queue; pull: shared queue).
  void submit(faas::FunctionId function, workloads::Request request,
              faas::StartMode mode);

  /// Deadline-carrying submit: `deadline` is an absolute monotonic
  /// timestamp (0 = none). Deadline submissions pass admission control —
  /// when the cluster's estimated queue delay already exceeds the
  /// remaining slack (or the pull queue is full) the submission is shed
  /// with a typed outcome instead of queueing toward certain expiry.
  void submit(faas::FunctionId function, workloads::Request request,
              faas::StartMode mode, util::Nanos deadline);

  /// The admission check's queue-delay estimate: minimum dispatch-latency
  /// EWMA over healthy hosts (optimistic — the cluster sheds only when
  /// EVERY healthy host is already backed up past the slack).
  [[nodiscard]] util::Nanos queue_delay_estimate() const;

  /// Wait for every accepted submission and take the outcomes (from all
  /// hosts; order is per-host arbitrary — sort by .seq if needed).
  /// Runs health sweeps while waiting so stalled hosts cannot wedge it.
  [[nodiscard]] std::vector<faas::SubmissionOutcome> drain();

  /// Quarantine stalled hosts and re-dispatch their backlog (also runs
  /// periodically from submit() and from drain()).
  void check_health();

  [[nodiscard]] ClusterCounters counters() const;
  /// Recomputed from host state at call time (nothing cached).
  [[nodiscard]] ClusterStats stats() const;

 private:
  void dispatch(faas::Submission task);
  /// Healthy-host selection + policy bookkeeping; handles the
  /// degradation ladder. Returns the chosen host.
  Host& select_host_locked(faas::FunctionId function);
  /// Record a typed shed outcome (never a silent drop): the submission is
  /// refused here, at the cluster front door, and its outcome surfaces
  /// from drain() like any completion.
  void record_shed(const faas::Submission& task, faas::SubmissionReject reject,
                   std::string_view detail);

  ClusterConfig config_;
  std::unique_ptr<LoadBalancePolicy> policy_;
  std::unique_ptr<faas::SharedTaskQueue> pull_queue_;  // pull mode only
  std::vector<std::unique_ptr<Host>> hosts_;

  mutable std::mutex health_mutex_;
  mutable std::mutex dispatch_mutex_;
  std::vector<std::uint64_t> policy_decisions_;  // per host, dispatch lock
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> hosts_quarantined_{0};
  std::atomic<std::uint64_t> redispatched_{0};
  std::atomic<std::uint64_t> dispatch_drops_{0};
  std::atomic<std::uint64_t> forced_routes_{0};
  std::atomic<bool> degraded_single_host_{false};

  // Shed bookkeeping: outcomes buffered here until drain() merges them
  // with host completions. shed_count_ is an atomic so drain's
  // termination check (completed + shed >= submitted) needs no lock.
  mutable std::mutex shed_mutex_;
  std::vector<faas::SubmissionOutcome> shed_outcomes_;
  std::atomic<std::uint64_t> shed_count_{0};
  std::atomic<std::uint64_t> shed_queue_full_{0};
  std::atomic<std::uint64_t> spurious_sheds_{0};
};

}  // namespace horse::cluster
