// Multi-host cluster scheduler over N simulated Hosts.
//
// The control plane's top layer: N Hosts (each a full single-host
// Platform + worker pool) behind one submission front door, with two
// dispatch disciplines:
//
//   * PUSH — submit() consults the pluggable LoadBalancePolicy over
//     healthy-host snapshots and commits the request to the chosen
//     host's local queue immediately (faabric-style early binding).
//   * PULL — submit() appends to one shared bounded queue; idle hosts
//     pull the next request the moment a worker frees up (Hiku-style
//     late binding). No request is ever committed to a host without a
//     free slot, which is what flattens tail latency under skew: a
//     burst on a hot function can never convoy behind one host's
//     backlog while other hosts sit idle.
//
// Cluster-level state is tiny and reconstructable (Dirigent): the
// scheduler owns only the policy object, the monotonic submit counter,
// the per-host policy-decision counters, and fault counters. Everything
// in stats() — occupancy, completions, health — is recomputed from the
// hosts' own atomics at call time; quarantining a host writes one flag
// on the host, not a parallel registry here.
//
// Health & degradation ladder (extends DESIGN.md §5.2 to the cluster):
// a host whose cluster.host_stall fault fires parks its workers. The
// health sweep (every `health_check_interval` submissions, on the
// background sweeper's timer tick, at drain start, and while drain
// waits) quarantines it: out of policy rotation, queued backlog stolen
// and re-dispatched EXACTLY ONCE to healthy hosts (re-dispatched
// submissions are exempt from the dispatch fault sites, so a request
// can be re-routed at most once per stall and once per drop). When
// quarantines leave a single healthy host the cluster degrades to
// single-host routing (sticky `degraded_single_host` flag); when none
// remain, the bottom rung force-recovers one host and routes there
// (`forced_routes`) — requests are never dropped.
//
// Crash tolerance (DESIGN.md §5.7) extends the ladder to hosts that
// DIE rather than stall:
//   * Failure detection — per-host leases (HostLease). A host renews by
//     making completion progress or answering a liveness probe; a
//     non-responsive host misses its lease deadline, and after
//     `missed_to_death` consecutive misses the sweep declares it dead.
//     A background sweeper thread ticks every `sweep_period` so an IDLE
//     cluster notices dead hosts too (sweeps used to run only on
//     submission activity).
//   * Exactly-once orphan recovery — declared death steals both the
//     dead host's queued backlog AND its in-flight set. In-flight
//     orphans are re-dispatched through a dedup ledger keyed on the
//     submission's idempotency key: the dispatcher always finishes a
//     dequeued task, so the dead host eventually emits a LATE (zombie)
//     completion for each orphan — drain() surfaces exactly one of
//     {zombie, re-dispatched copy} per key and suppresses the other as
//     kDuplicateSuppressed. Property: every submission completes
//     exactly once XOR is shed with a typed outcome — never zero,
//     never twice.
//   * Rejoin — quarantine is no longer sticky. Unhealthy hosts get
//     half-open liveness probes on a full-jitter util::Backoff
//     schedule; a probe that answers (stall cleared, or crashed host
//     restart()ed) rehydrates the host's warm pools for its top-k
//     recently-invoked functions (Platform::rehydrate — post-failover
//     traffic resumes kWarm/kHorse, not kCold) and only THEN returns
//     it to rotation. `hosts_quarantined` is a gauge (decrements on
//     rejoin); `degraded_single_host` stays sticky as a "this
//     happened" flag but no longer blocks recovery.
//
// Fault sites: cluster.host_stall, cluster.host_crash (see host.hpp)
// and cluster.dispatch_drop — a modelled lost dispatch, detected and
// retried through the policy immediately (the retry is the
// re-dispatch; `dispatch_drops` counts the losses).
//
// Lock hierarchy (extends the platform's, left before right):
//   health sweep mutex → cluster dispatch mutex → host dispatcher worker
//   mutex → [Platform: shard → resume → manager → queue → load]
// The health mutex also directly precedes the platform shard mutexes on
// the rejoin path (rehydration runs under the sweep so a half-rejoined
// host is never routed to); the host's in-flight set has its own leaf
// mutex below all of these. drain() polls host counters with no lock
// held while waiting; its merge takes the health mutex only to consult
// the dedup ledger.
//
// Thread-safety: submit() from any thread; drain() single-drainer, and
// it must not run concurrently with submit() (same contract as
// Invoker::drain). register/provision/ensure_snapshot/advance_time are
// setup/driver calls, not hot paths.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string_view>
#include <thread>
#include <unordered_set>
#include <vector>

#include "cluster/host.hpp"
#include "cluster/load_balance.hpp"
#include "faas/platform.hpp"
#include "faas/submission.hpp"
#include "metrics/histogram.hpp"
#include "util/backoff.hpp"
#include "util/rng.hpp"

namespace horse::cluster {

enum class DispatchMode : std::uint8_t { kPush, kPull };

[[nodiscard]] constexpr std::string_view to_string(DispatchMode mode) noexcept {
  return mode == DispatchMode::kPush ? "push" : "pull";
}

[[nodiscard]] util::Expected<DispatchMode> parse_dispatch_mode(
    std::string_view name);

/// Cluster-level admission control. Enabled by default, but it only acts
/// on submissions that carry a deadline — deadline-free traffic is never
/// shed, so pre-overload callers see byte-identical behaviour.
struct ClusterAdmissionConfig {
  bool enabled = true;
  /// CoDel-style sojourn cap forwarded to every host's dispatcher: tasks
  /// queued longer than this expire at dequeue. 0 disables (per-task
  /// deadlines are always honoured regardless).
  util::Nanos max_sojourn = 0;
};

/// Lease/heartbeat failure detector + rejoin knobs.
struct FailureDetectorConfig {
  /// Lease a renewing host holds. A healthy host renews by making
  /// completion progress or answering a liveness probe; once the lease
  /// expires with neither, each subsequent sweep past the deadline
  /// counts one missed heartbeat. 0 = every no-progress sweep of a
  /// non-responsive host is a miss (deterministic tests).
  util::Nanos lease_duration = 5 * util::kMillisecond;
  /// Consecutive missed heartbeats before a host is declared dead.
  std::size_t missed_to_death = 3;
  /// Background sweeper period — the time-based fallback that lets an
  /// IDLE cluster notice dead hosts (submission-driven sweeps only fire
  /// under traffic). 0 disables the sweeper thread.
  util::Nanos sweep_period = 1 * util::kMillisecond;
  /// Half-open probe schedule for unhealthy hosts: full-jitter
  /// util::Backoff over the consecutive-failed-probe streak.
  util::Nanos probe_backoff_base = 1 * util::kMillisecond;
  util::Nanos probe_backoff_cap = 50 * util::kMillisecond;
  /// Warm rejoin: rehydrate this many most-recently-invoked functions,
  /// this many pooled sandboxes each, before re-entering rotation.
  /// rehydrate_top_k = 0 disables rehydration (rejoin lands cold).
  std::size_t rehydrate_top_k = 4;
  std::size_t rehydrate_per_function = 1;
};

struct ClusterConfig {
  std::size_t num_hosts = 1;
  /// Worker slots per host; 0 = max(2, platform.num_cpus / 2).
  std::size_t workers_per_host = 0;
  DispatchMode dispatch = DispatchMode::kPush;
  PolicyKind policy = PolicyKind::kRoundRobin;
  /// Shared pull-queue bound; producers block when full (backpressure).
  std::size_t pull_queue_capacity = 4096;
  /// Submissions between health sweeps (drain always sweeps too).
  std::size_t health_check_interval = 64;
  ClusterAdmissionConfig admission;
  FailureDetectorConfig health;
  /// Per-host platform template; host i runs it with seed + i*7919.
  faas::PlatformConfig platform;
};

/// Cluster-level lifetime counters (host counters live on the hosts).
struct ClusterCounters {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  /// Stall faults fired across hosts (cluster.host_stall).
  std::uint64_t host_stalls = 0;
  /// GAUGE: hosts currently out of rotation (quarantined or declared
  /// dead). Increments on quarantine/declared death, decrements when a
  /// half-open probe rejoins the host or a forced route recovers it —
  /// quarantine is no longer sticky.
  std::uint64_t hosts_quarantined = 0;
  /// Backlog submissions re-routed off quarantined hosts (each exactly
  /// once per stall).
  std::uint64_t redispatched = 0;
  /// cluster.dispatch_drop faults fired (each retried exactly once).
  std::uint64_t dispatch_drops = 0;
  /// Times the cluster found ZERO healthy hosts and force-recovered one.
  std::uint64_t forced_routes = 0;
  // --- overload control ----------------------------------------------------
  /// Submissions shed at admission (estimated queue delay already past the
  /// deadline's slack, pull queue full, or a spurious-shed fault). Every
  /// shed produces a typed outcome in drain(); completed + shed covers
  /// every submission.
  std::uint64_t shed = 0;
  /// Subset of `shed`: the bounded pull queue refused (try_push).
  std::uint64_t shed_queue_full = 0;
  /// Tasks expired at dequeue by host dispatchers (deadline / sojourn).
  /// These DO count toward `completed` (the host recorded the outcome).
  std::uint64_t expired = 0;
  /// admission.spurious_shed fault fires (each one also counts in shed).
  std::uint64_t spurious_sheds = 0;
  // --- crash tolerance -----------------------------------------------------
  /// Host crash events (cluster.host_crash fires + bench crash() calls).
  std::uint64_t host_crashes = 0;
  /// Lease deadlines missed by non-responsive hosts (detector ticks).
  std::uint64_t missed_heartbeats = 0;
  /// Hosts the failure detector declared dead (cumulative).
  std::uint64_t hosts_declared_dead = 0;
  /// Half-open liveness probes sent to unhealthy hosts.
  std::uint64_t probes = 0;
  /// Hosts returned to rotation by a successful probe (cumulative).
  std::uint64_t hosts_rejoined = 0;
  /// In-flight submissions re-dispatched off declared-dead hosts. Each
  /// adds one EXTRA expected outcome (the zombie completion) to drain's
  /// accounting; the duplicate is suppressed at merge.
  std::uint64_t orphans_redispatched = 0;
  /// Late zombie completions dropped by the dedup ledger
  /// (kDuplicateSuppressed — counted, typed, never surfaced).
  std::uint64_t duplicates_suppressed = 0;
  /// Sandboxes restored into warm pools by rejoin rehydration (summed
  /// over host platforms).
  std::uint64_t rehydrated_sandboxes = 0;
  /// Sticky: the quarantine ladder reached single-host routing ("this
  /// happened" flag; does NOT block rejoin).
  bool degraded_single_host = false;
};

struct HostStats {
  HostId host = 0;
  bool healthy = true;
  std::uint64_t dispatched = 0;
  std::uint64_t completed = 0;
  std::uint64_t policy_decisions = 0;
  std::uint64_t stall_faults = 0;
  /// Crash model: is the host currently dead, and how often has it died.
  bool crashed = false;
  std::uint64_t crash_faults = 0;
  std::size_t queued = 0;
  std::size_t in_flight = 0;
  std::size_t free_slots = 0;
  /// Tasks this host expired at dequeue (deadline / sojourn cap).
  std::uint64_t expired = 0;
  /// The host's queue-delay EWMA the admission check reads.
  util::Nanos queueing_ewma = 0;
  /// Pooled warm sandboxes on the host (all functions).
  std::size_t pool_sandboxes = 0;
  /// Reserved-queue paused-sandbox occupancy (from the host platform's
  /// consistent control-plane snapshot).
  std::size_t ull_paused = 0;
  metrics::Histogram dispatch_latency;
};

struct ClusterStats {
  std::vector<HostStats> hosts;
  ClusterCounters counters;
  PolicyKind policy = PolicyKind::kRoundRobin;
  DispatchMode dispatch = DispatchMode::kPush;
};

class ClusterScheduler {
 public:
  explicit ClusterScheduler(ClusterConfig config);
  ~ClusterScheduler();

  ClusterScheduler(const ClusterScheduler&) = delete;
  ClusterScheduler& operator=(const ClusterScheduler&) = delete;

  [[nodiscard]] std::size_t num_hosts() const noexcept {
    return hosts_.size();
  }
  [[nodiscard]] Host& host(std::size_t index) { return *hosts_[index]; }
  [[nodiscard]] const ClusterConfig& config() const noexcept {
    return config_;
  }

  /// Register the same function on every host. The factory is invoked
  /// once per host (each Platform needs its own workload instance — a
  /// function's implementation state is only serialised within one
  /// host). All hosts must agree on the id.
  [[nodiscard]] util::Expected<faas::FunctionId> register_function(
      const std::function<faas::FunctionSpec()>& make_spec);

  /// Fan-out to every host.
  util::Status provision(faas::FunctionId function, std::size_t count);
  util::Status ensure_snapshot(faas::FunctionId function);
  void advance_time(util::Nanos delta);

  /// Fire-and-collect (push: policy + host queue; pull: shared queue).
  void submit(faas::FunctionId function, workloads::Request request,
              faas::StartMode mode);

  /// Deadline-carrying submit: `deadline` is an absolute monotonic
  /// timestamp (0 = none). Deadline submissions pass admission control —
  /// when the cluster's estimated queue delay already exceeds the
  /// remaining slack (or the pull queue is full) the submission is shed
  /// with a typed outcome instead of queueing toward certain expiry.
  void submit(faas::FunctionId function, workloads::Request request,
              faas::StartMode mode, util::Nanos deadline);

  /// Register the same workflow chain on every host (stage ids must
  /// already agree across hosts — register_function guarantees that).
  /// All hosts must agree on the workflow id.
  [[nodiscard]] util::Expected<faas::WorkflowId> register_workflow(
      const faas::WorkflowSpec& spec);

  /// Submit a workflow chain as ONE routed unit: one submission, one
  /// idempotency key, one deadline. The chain is dispatched under its
  /// entry stage's identity; the executing host advances the hop cursor
  /// as stages complete, so orphan recovery re-dispatches a mid-chain
  /// casualty from its frontier and never re-executes completed stages.
  void submit_chain(faas::WorkflowId workflow, workloads::Request request,
                    faas::StartMode mode, util::Nanos deadline = 0);

  /// The admission check's queue-delay estimate: minimum dispatch-latency
  /// EWMA over healthy hosts (optimistic — the cluster sheds only when
  /// EVERY healthy host is already backed up past the slack).
  [[nodiscard]] util::Nanos queue_delay_estimate() const;

  /// Wait for every accepted submission and take the outcomes (from all
  /// hosts; order is per-host arbitrary — sort by .seq if needed).
  /// Runs health sweeps while waiting so stalled hosts cannot wedge it.
  [[nodiscard]] std::vector<faas::SubmissionOutcome> drain();

  /// Quarantine stalled hosts and re-dispatch their backlog (also runs
  /// periodically from submit() and from drain()).
  void check_health();

  [[nodiscard]] ClusterCounters counters() const;
  /// Recomputed from host state at call time (nothing cached).
  [[nodiscard]] ClusterStats stats() const;

  /// Detection latency of the most recent declared death: declared-dead
  /// instant minus the host's crashed_at() (0 = no death declared yet).
  [[nodiscard]] util::Nanos last_detection_latency() const noexcept {
    return last_detection_latency_.load(std::memory_order_relaxed);
  }

 private:
  /// Per-host lease state (all fields under health_mutex_).
  struct HostLease {
    /// Monotonic deadline of the current lease (0 = not yet armed).
    util::Nanos deadline = 0;
    /// Host completion count at the last renewal (progress detector).
    std::uint64_t last_completed = 0;
    /// Consecutive missed heartbeats; reset on renewal.
    std::size_t missed = 0;
    /// Consecutive failed half-open probes (backoff attempt number).
    std::size_t probe_streak = 0;
    /// Earliest instant the next half-open probe may fire.
    util::Nanos next_probe = 0;
  };

  /// Common front door for submit()/submit_chain(): assign seq + key,
  /// run the periodic health check, apply admission (spurious-shed fault
  /// site, deadline-slack shed), then dispatch.
  void admit_and_dispatch(faas::Submission task);
  void dispatch(faas::Submission task);
  /// Healthy-host selection + policy bookkeeping; handles the
  /// degradation ladder. Returns the chosen host.
  Host& select_host_locked(faas::FunctionId function);
  /// Record a typed shed outcome (never a silent drop): the submission is
  /// refused here, at the cluster front door, and its outcome surfaces
  /// from drain() like any completion.
  void record_shed(const faas::Submission& task, faas::SubmissionReject reject,
                   std::string_view detail);
  /// Failure-detector verdict (health_mutex_ held): mark the host dead,
  /// steal its backlog + in-flight set, re-dispatch orphans through the
  /// ledger, and arm the half-open probe schedule.
  void declare_dead_locked(std::size_t index, util::Nanos now);
  /// Successful half-open probe (health_mutex_ held): rehydrate warm
  /// pools, return the host to rotation, reset its lease.
  void rejoin_locked(std::size_t index, util::Nanos now);
  /// Guarded decrement of the hosts_quarantined_ gauge (never
  /// underflows — a forced route may recover a host that was never
  /// counted into the gauge).
  void gauge_decrement_quarantined();

  ClusterConfig config_;
  std::unique_ptr<LoadBalancePolicy> policy_;
  std::unique_ptr<faas::SharedTaskQueue> pull_queue_;  // pull mode only
  std::vector<std::unique_ptr<Host>> hosts_;

  mutable std::mutex health_mutex_;
  mutable std::mutex dispatch_mutex_;
  std::vector<std::uint64_t> policy_decisions_;  // per host, dispatch lock
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> hosts_quarantined_{0};
  std::atomic<std::uint64_t> redispatched_{0};
  std::atomic<std::uint64_t> dispatch_drops_{0};
  std::atomic<std::uint64_t> forced_routes_{0};
  std::atomic<bool> degraded_single_host_{false};

  // Shed bookkeeping: outcomes buffered here until drain() merges them
  // with host completions. shed_count_ is an atomic so drain's
  // termination check (completed + shed >= submitted) needs no lock.
  mutable std::mutex shed_mutex_;
  std::vector<faas::SubmissionOutcome> shed_outcomes_;
  std::atomic<std::uint64_t> shed_count_{0};
  std::atomic<std::uint64_t> shed_queue_full_{0};
  std::atomic<std::uint64_t> spurious_sheds_{0};

  // --- crash tolerance (DESIGN.md §5.7) ------------------------------------
  /// Per-host leases; indexed like hosts_. Guarded by health_mutex_.
  std::vector<HostLease> leases_;
  /// Orphan ledger (health_mutex_): keys of in-flight submissions stolen
  /// off declared-dead hosts. delivered_orphans_ records which of those
  /// keys already surfaced one outcome — the second one is suppressed.
  std::unordered_set<std::uint64_t> orphan_keys_;
  std::unordered_set<std::uint64_t> delivered_orphans_;
  /// Half-open probe schedule; rng state guarded by health_mutex_.
  util::Backoff probe_backoff_;
  util::Xoshiro256 probe_rng_;

  std::atomic<std::uint64_t> missed_heartbeats_{0};
  std::atomic<std::uint64_t> hosts_declared_dead_{0};
  std::atomic<std::uint64_t> probes_{0};
  std::atomic<std::uint64_t> hosts_rejoined_{0};
  std::atomic<std::uint64_t> orphans_redispatched_{0};
  std::atomic<std::uint64_t> duplicates_suppressed_{0};
  std::atomic<util::Nanos> last_detection_latency_{0};

  /// Background sweeper: the time-based health-sweep fallback. Declared
  /// LAST so it stops before any state it sweeps is torn down; the dtor
  /// additionally stops it before closing the pull queue.
  std::jthread sweeper_;
};

}  // namespace horse::cluster
