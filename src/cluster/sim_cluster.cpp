#include "cluster/sim_cluster.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace horse::cluster {

SimCluster::SimCluster(SimClusterParams params)
    : params_(std::move(params)),
      policy_(make_policy(params_.policy)),
      rng_(params_.seed) {
  if (params_.num_hosts == 0) {
    params_.num_hosts = 1;
  }
  hosts_.resize(params_.num_hosts);
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    hosts_[i].params =
        i < params_.hosts.size() ? params_.hosts[i] : params_.defaults;
    if (hosts_[i].params.slots == 0) {
      hosts_[i].params.slots = 1;
    }
  }
}

HostSnapshot SimCluster::snapshot_of(HostId id) const {
  const SimHost& host = hosts_[id];
  HostSnapshot snap;
  snap.host = id;
  snap.healthy = host.healthy;
  snap.queued = host.queue.size();
  snap.in_flight = host.in_flight;
  snap.capacity = host.params.slots;
  snap.free_slots = host.params.slots > host.in_flight + host.queue.size()
                        ? host.params.slots - host.in_flight - host.queue.size()
                        : 0;
  snap.warm_slots = host.params.warm_slots;
  snap.dispatched = host.dispatched;
  return snap;
}

util::Nanos SimCluster::jittered(util::Nanos service) {
  // One draw per task, taken in submission order, so the RNG stream (and
  // therefore every downstream decision) is a pure function of the seed
  // and the submission sequence.
  const double jitter = params_.defaults.jitter;
  if (jitter <= 0.0) {
    return service;
  }
  const double factor = std::max(0.05, rng_.normal(1.0, jitter));
  return static_cast<util::Nanos>(static_cast<double>(service) * factor);
}

util::Nanos SimCluster::queue_delay_estimate() const {
  util::Nanos best = 0;
  bool any = false;
  for (const SimHost& host : hosts_) {
    if (!host.healthy) {
      continue;
    }
    if (!any || host.queueing_ewma < best) {
      best = host.queueing_ewma;
      any = true;
    }
  }
  return any ? best : 0;
}

void SimCluster::record_rejection(const Task& task, util::Nanos at,
                                  faas::SubmissionReject reject) {
  // The ledger covers rejections too: if an orphan's re-dispatched copy
  // expires at dequeue AFTER its zombie already completed (or vice
  // versa), the second typed outcome is suppressed — exactly one outcome
  // per seq, whatever its kind.
  if (orphan_seqs_.contains(task.seq) &&
      !delivered_orphans_.insert(task.seq).second) {
    ++duplicates_suppressed_;
    return;
  }
  SimRejection rejection;
  rejection.seq = task.seq;
  rejection.function = task.function;
  rejection.time = at;
  rejection.reject = reject;
  rejections_.push_back(rejection);
}

bool SimCluster::expire_if_due(const Task& task, util::Nanos at) {
  if (!params_.admission || task.deadline == 0 || at < task.deadline) {
    return false;
  }
  record_rejection(task, at, faas::SubmissionReject::kDeadlineExpired);
  return true;
}

void SimCluster::start_on(HostId id, Task task, util::Nanos at) {
  SimHost& host = hosts_[id];
  task.started_at = at;
  // In-flight registration BEFORE the service field is rewritten below:
  // the stolen copy keeps the nominal (pre-scaling) service time so a
  // re-dispatched orphan re-scales on its rescue host, as in reality.
  host.running.emplace(task.seq, task);
  // Same α = 1/8 update the real Host applies at task pickup.
  host.queueing_ewma += ((at - task.arrival) - host.queueing_ewma) / 8;
  ++host.in_flight;
  // Chains scale stage-by-stage so the finish time equals the last stage
  // boundary exactly — declare_dead's hop arithmetic and the finish heap
  // must place the same boundaries or a completed stage could look
  // un-run (and re-execute) after an orphan re-dispatch.
  util::Nanos scaled = 0;
  if (task.stage_services.empty()) {
    scaled = static_cast<util::Nanos>(
        static_cast<double>(task.service) * host.params.speed);
  } else {
    for (std::size_t i = task.hop; i < task.stage_services.size(); ++i) {
      scaled += static_cast<util::Nanos>(
          static_cast<double>(task.stage_services[i]) * host.params.speed);
    }
  }
  Finish finish;
  finish.time = at + host.params.overhead + scaled;
  finish.order = next_order_++;
  finish.host = id;
  finish.task = std::move(task);
  // Overwrite service with the actual run span so completion can recover
  // start = finish.time - service without carrying a separate field.
  finish.task.service = finish.time - at;
  finishes_.push(std::move(finish));
}

void SimCluster::push_dispatch(Task task, util::Nanos at) {
  std::vector<HostSnapshot> candidates;
  std::vector<HostId> healthy;
  candidates.reserve(hosts_.size());
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    if (hosts_[i].healthy) {
      candidates.push_back(snapshot_of(i));
      healthy.push_back(i);
    }
  }
  SimDecision decision;
  decision.seq = task.seq;
  decision.time = at;
  decision.function = task.function;
  HostId chosen = 0;
  if (healthy.empty()) {
    // Ladder bottom: never drop — force host 0, as the real scheduler
    // force-recovers it.
    decision.forced = true;
    ++forced_;
  } else {
    const std::size_t index = policy_->select(candidates, task.function);
    chosen = healthy[index < healthy.size() ? index : 0];
    decision.candidates = std::move(candidates);
  }
  decision.host = chosen;
  decisions_.push_back(std::move(decision));

  SimHost& host = hosts_[chosen];
  ++host.dispatched;
  if (host.in_flight < host.params.slots) {
    // Starting now IS the dequeue; a task whose deadline has already
    // passed is expired instead of run (the slot stays free).
    if (expire_if_due(task, at)) {
      return;
    }
    start_on(chosen, std::move(task), at);
  } else {
    host.queue.push_back(std::move(task));
  }
}

void SimCluster::pull_try_bind(util::Nanos at) {
  while (!shared_queue_.empty()) {
    // Late binding: the task goes to a host that has a free slot RIGHT
    // NOW. Deterministic stand-in for "first idle worker at the queue":
    // most free slots, then lowest id.
    HostId best = 0;
    std::size_t best_free = 0;
    for (std::size_t i = 0; i < hosts_.size(); ++i) {
      if (!hosts_[i].healthy) {
        continue;
      }
      const SimHost& host = hosts_[i];
      const std::size_t free =
          host.params.slots > host.in_flight ? host.params.slots - host.in_flight
                                             : 0;
      if (free > best_free) {
        best_free = free;
        best = i;
      }
    }
    if (best_free == 0) {
      return;  // every healthy host is saturated; tasks wait unbound
    }
    Task task = std::move(shared_queue_.front());
    shared_queue_.pop_front();
    // Expire-at-dequeue: a stale task is refused before binding a slot;
    // the loop keeps draining so fresh work behind it still binds now.
    if (expire_if_due(task, at)) {
      continue;
    }
    SimDecision decision;
    decision.seq = task.seq;
    decision.time = at;
    decision.function = task.function;
    decision.host = best;
    decisions_.push_back(std::move(decision));
    ++hosts_[best].dispatched;
    start_on(best, std::move(task), at);
  }
}

void SimCluster::complete_due(util::Nanos now) {
  while (!finishes_.empty() && finishes_.top().time <= now) {
    Finish finish = finishes_.top();
    finishes_.pop();
    SimHost& host = hosts_[finish.host];
    --host.in_flight;
    host.running.erase(finish.task.seq);  // no-op if declare_dead stole it
    SimCompletion done;
    done.seq = finish.task.seq;
    done.function = finish.task.function;
    done.host = finish.host;
    done.arrival = finish.task.arrival;
    done.finish = finish.time;
    done.start = finish.time - finish.task.service;
    done.deadline = finish.task.deadline;
    done.chain_hop = finish.task.hop;
    done.chain_stages =
        static_cast<std::uint32_t>(finish.task.stage_services.size());
    // Dedup ledger: an orphaned seq delivers exactly one completion —
    // zombie or re-dispatched copy, whichever finishes first; the second
    // sighting is suppressed (the scheduler's drain()-merge mirror).
    if (orphan_seqs_.contains(done.seq) &&
        !delivered_orphans_.insert(done.seq).second) {
      ++duplicates_suppressed_;
    } else {
      completions_.push_back(done);
    }
    if (params_.dispatch == DispatchMode::kPush) {
      // The freed slot starts the host's own backlog head (push keeps
      // per-host FIFO order). Unhealthy hosts still finish in-flight work
      // but leave their backlog for steal_backlog(). Stale heads are
      // expired (not run), so the loop keeps dequeuing until a live task
      // takes the slot or the backlog empties.
      while (host.healthy && !host.queue.empty() &&
             host.in_flight < host.params.slots) {
        Task next = std::move(host.queue.front());
        host.queue.pop_front();
        if (expire_if_due(next, finish.time)) {
          continue;
        }
        start_on(finish.host, std::move(next), finish.time);
      }
    } else {
      pull_try_bind(finish.time);
    }
  }
}

void SimCluster::advance_to(util::Nanos now) {
  if (now < now_) {
    throw std::logic_error("SimCluster: time went backwards");
  }
  complete_due(now);
  now_ = now;
}

void SimCluster::submit(util::Nanos at, faas::FunctionId function,
                        util::Nanos service) {
  submit(at, function, service, 0);
}

void SimCluster::submit(util::Nanos at, faas::FunctionId function,
                        util::Nanos service, util::Nanos deadline) {
  advance_to(at);
  Task task;
  task.seq = next_seq_++;
  task.function = function;
  task.arrival = at;
  task.service = jittered(service);  // drawn before any shed: the RNG
                                     // stream stays a pure function of the
                                     // submission sequence
  task.deadline = deadline;
  admit_or_dispatch(std::move(task), at);
}

void SimCluster::submit_chain(util::Nanos at, faas::FunctionId function,
                              const std::vector<util::Nanos>& stage_services,
                              util::Nanos deadline) {
  if (stage_services.empty()) {
    throw std::invalid_argument("SimCluster: chain needs at least one stage");
  }
  advance_to(at);
  Task task;
  task.seq = next_seq_++;
  task.function = function;
  task.arrival = at;
  task.deadline = deadline;
  // ONE jitter draw scales the whole chain (drawn before any shed, like
  // submit): every submission — chain or plain — consumes exactly one
  // draw, keeping the stream a pure function of the submission sequence.
  util::Nanos total = 0;
  for (const util::Nanos service : stage_services) {
    total += service;
  }
  const util::Nanos jittered_total = jittered(total);
  task.stage_services.reserve(stage_services.size());
  if (total == 0) {
    task.stage_services = stage_services;  // all-zero stages stay zero
  } else {
    // Distribute proportionally; the last stage absorbs rounding so the
    // stage boundaries sum to the finish time exactly.
    util::Nanos accumulated = 0;
    for (std::size_t i = 0; i < stage_services.size(); ++i) {
      util::Nanos share;
      if (i + 1 == stage_services.size()) {
        share = jittered_total - accumulated;
      } else {
        share = static_cast<util::Nanos>(
            static_cast<double>(stage_services[i]) *
            static_cast<double>(jittered_total) / static_cast<double>(total));
      }
      task.stage_services.push_back(share);
      accumulated += share;
    }
  }
  task.service = jittered_total;
  admit_or_dispatch(std::move(task), at);
}

void SimCluster::admit_or_dispatch(Task task, util::Nanos at) {
  if (params_.admission && task.deadline != 0) {
    const util::Nanos slack = task.deadline > at ? task.deadline - at : 0;
    if (slack == 0 || queue_delay_estimate() > slack) {
      record_rejection(task, at, faas::SubmissionReject::kQueueShed);
      return;
    }
    if (params_.dispatch == DispatchMode::kPull &&
        params_.pull_queue_capacity != 0 &&
        shared_queue_.size() >= params_.pull_queue_capacity) {
      record_rejection(task, at, faas::SubmissionReject::kQueueFull);
      return;
    }
  }
  if (params_.dispatch == DispatchMode::kPull) {
    shared_queue_.push_back(std::move(task));
    pull_try_bind(at);
  } else {
    push_dispatch(std::move(task), at);
  }
}

util::Nanos SimCluster::run_to_completion() {
  while (!finishes_.empty()) {
    const util::Nanos next = finishes_.top().time;
    complete_due(next);
    now_ = std::max(now_, next);
  }
  return now_;
}

void SimCluster::set_healthy(HostId host, bool healthy) {
  hosts_.at(host).healthy = healthy;
  if (healthy && params_.dispatch == DispatchMode::kPull) {
    pull_try_bind(now_);
  }
}

std::vector<std::uint64_t> SimCluster::steal_backlog(HostId host) {
  std::vector<std::uint64_t> seqs;
  SimHost& victim = hosts_.at(host);
  for (Task& task : victim.queue) {
    seqs.push_back(task.seq);
    task.redispatched = true;
    stolen_.push_back(std::move(task));
  }
  victim.queue.clear();
  return seqs;
}

void SimCluster::redispatch(std::uint64_t seq, util::Nanos at) {
  advance_to(at);
  const auto it =
      std::find_if(stolen_.begin(), stolen_.end(),
                   [seq](const Task& task) { return task.seq == seq; });
  if (it == stolen_.end()) {
    throw std::logic_error("SimCluster: redispatch of a task never stolen");
  }
  Task task = std::move(*it);
  stolen_.erase(it);
  if (params_.dispatch == DispatchMode::kPull) {
    shared_queue_.push_back(std::move(task));
    pull_try_bind(at);
  } else {
    push_dispatch(std::move(task), at);
  }
}

void SimCluster::crash_host(HostId host, util::Nanos at) {
  advance_to(at);
  SimHost& victim = hosts_.at(host);
  victim.crashed = true;
  victim.healthy = false;
  victim.params.warm_slots = 0;  // a dead host's warm state is gone
  SimDecision event;
  event.time = at;
  event.host = host;
  event.kind = SimEventKind::kCrash;
  decisions_.push_back(std::move(event));
}

std::vector<std::uint64_t> SimCluster::declare_dead(HostId host,
                                                    util::Nanos at) {
  advance_to(at);
  SimHost& victim = hosts_.at(host);
  victim.healthy = false;
  std::vector<std::uint64_t> seqs;
  // Queued backlog: never started, so plain exactly-once re-dispatch.
  for (Task& task : victim.queue) {
    seqs.push_back(task.seq);
    task.redispatched = true;
    stolen_.push_back(std::move(task));
  }
  victim.queue.clear();
  // In-flight orphans: their Finish entries stay scheduled (the host
  // always finishes a started task — the zombie), and a fresh copy goes
  // through the ledger so exactly one completion per seq survives.
  // Sorted by seq: unordered_map iteration order must not leak into the
  // stolen set, or seed replay would stop being bit-identical.
  std::vector<Task> orphans;
  orphans.reserve(victim.running.size());
  for (auto& [seq, task] : victim.running) {
    orphans.push_back(std::move(task));
  }
  victim.running.clear();
  std::sort(orphans.begin(), orphans.end(),
            [](const Task& a, const Task& b) { return a.seq < b.seq; });
  for (Task& task : orphans) {
    if (task.redispatched) {
      // A copy already re-dispatched off an earlier death: its zombie IS
      // the surviving outcome; a second copy would make three sightings.
      continue;
    }
    if (!task.stage_services.empty()) {
      // Chain orphan: advance the stolen copy's hop cursor past every
      // stage whose boundary the dying host had reached by `at` — the
      // re-dispatch resumes from the frontier and never re-executes a
      // completed stage. Boundaries are rebuilt with the dying host's own
      // speed/overhead, per-stage, exactly as start_on scheduled them.
      // (advance_to(at) above already completed anything fully done, so
      // at least one stage always remains.)
      util::Nanos boundary = task.started_at + victim.params.overhead;
      std::uint32_t hop = task.hop;
      while (hop < task.stage_services.size()) {
        boundary += static_cast<util::Nanos>(
            static_cast<double>(task.stage_services[hop]) *
            victim.params.speed);
        if (boundary > at) {
          break;
        }
        ++hop;
      }
      task.hop = hop;
      util::Nanos remaining = 0;
      for (std::size_t i = hop; i < task.stage_services.size(); ++i) {
        remaining += task.stage_services[i];
      }
      task.service = remaining;
    }
    orphan_seqs_.insert(task.seq);
    seqs.push_back(task.seq);
    task.redispatched = true;
    stolen_.push_back(std::move(task));
  }
  SimDecision event;
  event.time = at;
  event.host = host;
  event.kind = SimEventKind::kDeclareDead;
  decisions_.push_back(std::move(event));
  return seqs;
}

void SimCluster::recover_host(HostId host, util::Nanos at,
                              std::size_t rehydrated_warm_slots) {
  advance_to(at);
  SimHost& revived = hosts_.at(host);
  revived.crashed = false;
  revived.healthy = true;
  revived.params.warm_slots = rehydrated_warm_slots;
  SimDecision event;
  event.time = at;
  event.host = host;
  event.kind = SimEventKind::kRejoin;
  decisions_.push_back(std::move(event));
  if (params_.dispatch == DispatchMode::kPull) {
    pull_try_bind(at);  // the rejoined host's slots are pullable again
  }
}

void SimCluster::occupy(HostId host, std::size_t count, util::Nanos service) {
  for (std::size_t i = 0; i < count; ++i) {
    Task task;
    task.seq = next_seq_++;
    task.function = 0;
    task.arrival = now_;
    task.service = service;
    SimHost& target = hosts_.at(host);
    ++target.dispatched;
    if (target.in_flight < target.params.slots) {
      start_on(host, std::move(task), now_);
    } else {
      target.queue.push_back(std::move(task));
    }
  }
}

void SimCluster::set_warm_slots(HostId host, std::size_t warm) {
  hosts_.at(host).params.warm_slots = warm;
}

std::vector<std::uint64_t> SimCluster::dispatch_counts() const {
  std::vector<std::uint64_t> out;
  out.reserve(hosts_.size());
  for (const SimHost& host : hosts_) {
    out.push_back(host.dispatched);
  }
  return out;
}

std::vector<metrics::Histogram> SimCluster::latency_by_host() const {
  std::vector<metrics::Histogram> out(hosts_.size());
  for (const SimCompletion& done : completions_) {
    out[done.host].record(done.latency());
  }
  return out;
}

metrics::Histogram SimCluster::queueing_histogram() const {
  metrics::Histogram out;
  for (const SimCompletion& done : completions_) {
    out.record(done.queueing());
  }
  return out;
}

std::vector<std::vector<std::uint64_t>> split_indices(
    const std::vector<util::Nanos>& times,
    const std::vector<faas::FunctionId>& functions, SimClusterParams params,
    util::Nanos service_hint) {
  if (times.size() != functions.size()) {
    throw std::invalid_argument("split_indices: times/functions mismatch");
  }
  SimCluster cluster(params);
  for (std::size_t i = 0; i < times.size(); ++i) {
    cluster.submit(times[i], functions[i], service_hint);
  }
  cluster.run_to_completion();
  std::vector<std::vector<std::uint64_t>> out(
      std::max<std::size_t>(1, params.num_hosts));
  for (const SimDecision& decision : cluster.decisions()) {
    // occupy()/redispatch bookkeeping never reaches here: every submitted
    // arrival produced exactly one decision in both modes.
    if (decision.seq < times.size()) {
      out[decision.host].push_back(decision.seq);
    }
  }
  return out;
}

}  // namespace horse::cluster
