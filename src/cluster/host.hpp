// One simulated cluster host: a whole single-host control plane
// (faas::Platform) plus the per-host dispatch plumbing (faas::Dispatcher)
// and the minimal health state the cluster scheduler balances on.
//
// Health state is deliberately tiny and reconstructable (Dirigent's
// lesson: cluster orchestration state should be rebuildable from the
// hosts, not a second source of truth): a host carries only
//   * healthy_  — cleared when the scheduler quarantines it,
//   * stalled_  — set when the cluster.host_stall fault fires (the
//                 modelled "host stopped making progress"),
//   * dispatched_ / stall_count_ — monotonic counters.
// Everything else a policy or an observer needs (queue depth, in-flight,
// free slots, warm-pool occupancy, completions) is read fresh from the
// Dispatcher/Platform at snapshot time; the cluster caches none of it.
//
// Fault sites (compiled out with HORSE_FAULT_INJECTION=OFF):
//   * cluster.host_stall — probed on the push-mode submit path and, in
//     pull mode, at task pickup. Firing parks the host's workers after
//     their current task; queued work stays put until the scheduler's
//     health sweep quarantines the host and re-dispatches the backlog.
//   * cluster.host_crash — same probe points, but the host dies
//     wholesale: workers park, the warm pools are destroyed, and the
//     host stops answering probes until restart(). crash() itself is a
//     public method (not fault-gated) so release-build benches can kill
//     hosts too.
//
// Crash model: a crash cannot kill a worker mid-task — the dispatcher
// guarantees a dequeued task is always finished — so a task in flight at
// crash time completes anyway and surfaces as a LATE (zombie) outcome.
// The host therefore tracks its in-flight set (inflight_): the scheduler
// steals it at declared death, re-dispatches each orphan, and dedups the
// zombie's completion against the re-dispatched copy by idempotency key.
//
// Thread-safety: submit() under the cluster's dispatch lock; snapshot()
// and the health accessors from any thread; quarantine/crash/rejoin
// transitions are serialised by the scheduler's health sweep. inflight_
// has its own leaf mutex (worker threads and the health sweep touch it);
// it nests inside everything and takes nothing.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "cluster/load_balance.hpp"
#include "faas/dispatcher.hpp"
#include "faas/platform.hpp"
#include "faas/submission.hpp"
#include "metrics/histogram.hpp"

namespace horse::cluster {

class Host {
 public:
  /// `pull_source` non-null puts the host's workers in pull mode (they
  /// drain the cluster's shared queue when idle); it must outlive the
  /// host and be close()d before destruction. `max_sojourn` is the
  /// dispatcher's CoDel-style queue-sojourn cap (0 = disabled).
  Host(HostId id, faas::PlatformConfig platform_config, std::size_t workers,
       faas::TaskSource* pull_source, util::Nanos max_sojourn = 0);

  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  [[nodiscard]] HostId id() const noexcept { return id_; }
  [[nodiscard]] faas::Platform& platform() noexcept { return platform_; }
  [[nodiscard]] const faas::Platform& platform() const noexcept {
    return platform_;
  }

  /// Push-mode enqueue (cluster dispatch lock held). Probes the
  /// cluster.host_stall fault site before accepting.
  void submit(faas::Submission task);

  /// Policy decision view. `include_warm` fills warm_slots with the warm
  /// pool's availability for `function` (costs one shard lock); policies
  /// that never read warm_slots skip that cost.
  [[nodiscard]] HostSnapshot snapshot(faas::FunctionId function,
                                      bool include_warm) const;

  // --- health (see header comment for the state model) --------------------

  [[nodiscard]] bool healthy() const noexcept {
    return healthy_.load(std::memory_order_acquire);
  }
  [[nodiscard]] bool stalled() const noexcept {
    return stalled_.load(std::memory_order_acquire);
  }
  /// Scheduler-side quarantine: mark unhealthy, hand back the queued
  /// backlog for re-dispatch, and restart the workers so in-flight work
  /// (and any later forced routing) still completes.
  [[nodiscard]] std::vector<faas::Submission> quarantine();
  /// Degradation-ladder escape hatch: forcibly clear the stall (and any
  /// crash) and mark the host healthy again so traffic can be routed
  /// somewhere.
  void force_recover();

  // --- crash model ---------------------------------------------------------

  [[nodiscard]] bool crashed() const noexcept {
    return crashed_.load(std::memory_order_acquire);
  }
  /// Does the host answer a liveness probe right now? (The failure
  /// detector renews a host's lease on this; a crashed host flunks it.)
  [[nodiscard]] bool responsive() const noexcept { return !crashed(); }
  /// Kill the host wholesale: workers park after their current task, the
  /// warm pools are destroyed, probes fail. Public (not fault-gated) so
  /// release-build benches can kill hosts; the cluster.host_crash fault
  /// site calls this too.
  void crash();
  /// Bring a crashed host's process back: workers resume, probes answer
  /// again. The host stays OUT of rotation (healthy_ false if the
  /// scheduler declared it dead) until a half-open probe rejoins it.
  void restart();
  /// Failure-detector verdict: mark the host dead WITHOUT restarting its
  /// workers (unlike quarantine() — there is nothing to restart, the
  /// host is gone until restart()).
  void mark_dead();
  /// One half-open liveness probe: false while crashed; otherwise clears
  /// any stall, resumes the workers, and reports the host fit to rejoin.
  [[nodiscard]] bool probe();
  /// Steal the in-flight set (the tasks workers were executing when the
  /// host was declared dead). Each entry is a full Submission copy, ready
  /// to re-dispatch; late (zombie) completions of the originals are
  /// deduped by the scheduler's orphan ledger.
  [[nodiscard]] std::vector<faas::Submission> take_inflight();
  /// Warm rejoin: top the pools back up for the top-k most recently
  /// invoked functions (per_function sandboxes each) so post-failover
  /// traffic lands kWarm/kHorse instead of kCold. Returns the first
  /// error; later functions are still attempted.
  util::Status rehydrate_warm(std::size_t top_k, std::size_t per_function);

  [[nodiscard]] std::uint64_t crash_faults() const noexcept {
    return crash_count_.load(std::memory_order_relaxed);
  }
  /// Monotonic instant of the most recent crash (0 = never crashed);
  /// detection latency = declared-dead time minus this.
  [[nodiscard]] util::Nanos crashed_at() const noexcept {
    return crashed_at_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::uint64_t dispatched() const noexcept {
    return dispatched_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t completed() const noexcept {
    return dispatcher_.completed();
  }
  /// Tasks this host's dispatcher expired at dequeue (counted within
  /// completed() too — expiry records an outcome).
  [[nodiscard]] std::uint64_t expired() const noexcept {
    return dispatcher_.expired();
  }
  [[nodiscard]] std::uint64_t stall_faults() const noexcept {
    return stall_count_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] faas::Dispatcher& dispatcher() noexcept { return dispatcher_; }

  /// Copy of the host's dispatch-latency histogram (submit → worker
  /// pickup, i.e. queueing; recorded at execution time).
  [[nodiscard]] metrics::Histogram dispatch_latency() const;

  /// EWMA of recent dispatch (queueing) latency — the scheduler's
  /// queue-delay estimate for admission control. Updated lock-free at
  /// task pickup (α = 1/8); 0 until the first task runs.
  [[nodiscard]] util::Nanos queueing_ewma() const noexcept {
    return queueing_ewma_.load(std::memory_order_relaxed);
  }

 private:
  void run_task(faas::Submission task, faas::SubmissionOutcome& outcome);
  void stall();

  const HostId id_;
  const bool pull_mode_;
  std::atomic<bool> healthy_{true};
  std::atomic<bool> stalled_{false};
  std::atomic<bool> crashed_{false};
  std::atomic<util::Nanos> crashed_at_{0};
  std::atomic<std::uint64_t> dispatched_{0};
  std::atomic<std::uint64_t> stall_count_{0};
  std::atomic<std::uint64_t> crash_count_{0};
  /// Tasks currently inside run_task, keyed by idempotency key. Leaf
  /// lock: taken by workers (insert/erase) and the health sweep (steal).
  mutable std::mutex inflight_mutex_;
  std::unordered_map<std::uint64_t, faas::Submission> inflight_;
  mutable std::mutex latency_mutex_;
  metrics::Histogram dispatch_latency_;
  std::atomic<util::Nanos> queueing_ewma_{0};
  // Platform before Dispatcher: workers join before the control plane
  // they invoke against is torn down.
  faas::Platform platform_;
  faas::Dispatcher dispatcher_;
};

}  // namespace horse::cluster
