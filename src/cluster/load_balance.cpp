#include "cluster/load_balance.hpp"

namespace horse::cluster {

std::size_t RoundRobinPolicy::select(const std::vector<HostSnapshot>& hosts,
                                     faas::FunctionId function) {
  (void)function;
  return static_cast<std::size_t>(next_++ % hosts.size());
}

std::size_t LeastLoadedPolicy::select(const std::vector<HostSnapshot>& hosts,
                                      faas::FunctionId function) {
  (void)function;
  std::size_t best = 0;
  for (std::size_t i = 1; i < hosts.size(); ++i) {
    const HostSnapshot& candidate = hosts[i];
    const HostSnapshot& incumbent = hosts[best];
    // Ties break toward the lowest cluster-wide host ID (not vector
    // position), so the decision is stable however the healthy set was
    // assembled.
    if (candidate.load() < incumbent.load() ||
        (candidate.load() == incumbent.load() &&
         candidate.host < incumbent.host)) {
      best = i;
    }
  }
  return best;
}

std::size_t MostWarmSlotsPolicy::select(const std::vector<HostSnapshot>& hosts,
                                        faas::FunctionId function) {
  (void)function;
  std::size_t best = 0;
  for (std::size_t i = 1; i < hosts.size(); ++i) {
    const HostSnapshot& candidate = hosts[i];
    const HostSnapshot& incumbent = hosts[best];
    if (candidate.warm_slots > incumbent.warm_slots ||
        (candidate.warm_slots == incumbent.warm_slots &&
         (candidate.load() < incumbent.load() ||
          (candidate.load() == incumbent.load() &&
           candidate.host < incumbent.host)))) {
      best = i;
    }
  }
  return best;
}

std::unique_ptr<LoadBalancePolicy> make_policy(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kRoundRobin:
      return std::make_unique<RoundRobinPolicy>();
    case PolicyKind::kLeastLoaded:
      return std::make_unique<LeastLoadedPolicy>();
    case PolicyKind::kMostWarmSlots:
      return std::make_unique<MostWarmSlotsPolicy>();
  }
  return std::make_unique<RoundRobinPolicy>();
}

util::Expected<PolicyKind> parse_policy(std::string_view name) {
  if (name == "rr" || name == "round_robin" || name == "roundrobin") {
    return PolicyKind::kRoundRobin;
  }
  if (name == "ll" || name == "least_loaded" || name == "leastloaded") {
    return PolicyKind::kLeastLoaded;
  }
  if (name == "mw" || name == "most_warm" || name == "most_warm_slots" ||
      name == "mostwarm") {
    return PolicyKind::kMostWarmSlots;
  }
  return util::Status{util::StatusCode::kInvalidArgument,
                      "unknown load-balance policy (expected rr | "
                      "least_loaded | most_warm)"};
}

}  // namespace horse::cluster
