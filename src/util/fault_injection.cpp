#include "util/fault_injection.hpp"

#if defined(HORSE_FAULT_INJECTION)

#include <cstdlib>

namespace horse::util {

namespace {

constexpr std::uint64_t kDefaultSeed = 0x5eed0fau;

std::uint64_t seed_from_env() noexcept {
  const char* env = std::getenv("HORSE_FAULT_SEED");
  if (env == nullptr || *env == '\0') {
    return kDefaultSeed;
  }
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(env, &end, 10);
  if (end == env) {
    return kDefaultSeed;
  }
  return static_cast<std::uint64_t>(parsed);
}

}  // namespace

FaultInjector::FaultInjector() : rng_(seed_from_env()), seed_(seed_from_env()) {}

FaultInjector& FaultInjector::global() noexcept {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::arm(std::string site, Site armed) {
  std::lock_guard lock(mutex_);
  sites_[std::move(site)] = armed;
  armed_count_.store(sites_.size(), std::memory_order_release);
}

void FaultInjector::arm_always(std::string site, std::uint64_t max_fires) {
  Site s;
  s.mode = Mode::kAlways;
  s.max_fires = max_fires;
  arm(std::move(site), s);
}

void FaultInjector::arm_nth(std::string site, std::uint64_t nth,
                            std::uint64_t max_fires) {
  Site s;
  s.mode = Mode::kNth;
  s.nth = nth;
  s.max_fires = max_fires;
  arm(std::move(site), s);
}

void FaultInjector::arm_probability(std::string site, double probability,
                                    std::uint64_t max_fires) {
  Site s;
  s.mode = Mode::kProbability;
  s.probability = probability;
  s.max_fires = max_fires;
  arm(std::move(site), s);
}

void FaultInjector::disarm(std::string_view site) {
  std::lock_guard lock(mutex_);
  const auto it = sites_.find(site);
  if (it != sites_.end()) {
    sites_.erase(it);
  }
  armed_count_.store(sites_.size(), std::memory_order_release);
}

void FaultInjector::reset() {
  std::lock_guard lock(mutex_);
  sites_.clear();
  total_fires_ = 0;
  total_hits_ = 0;
  armed_count_.store(0, std::memory_order_release);
}

void FaultInjector::reseed(std::uint64_t seed) {
  std::lock_guard lock(mutex_);
  seed_ = seed;
  rng_.reseed(seed);
}

std::uint64_t FaultInjector::seed() const {
  std::lock_guard lock(mutex_);
  return seed_;
}

bool FaultInjector::should_fire(const char* site) noexcept {
  if (armed_count_.load(std::memory_order_relaxed) == 0) {
    return false;  // nothing armed anywhere: production-speed exit
  }
  std::lock_guard lock(mutex_);
  const auto it = sites_.find(std::string_view{site});
  if (it == sites_.end()) {
    return false;
  }
  Site& armed = it->second;
  ++armed.stats.hits;
  ++total_hits_;
  if (armed.stats.fires >= armed.max_fires) {
    return false;
  }
  bool fire = false;
  switch (armed.mode) {
    case Mode::kAlways:
      fire = true;
      break;
    case Mode::kNth:
      fire = armed.stats.hits == armed.nth;
      break;
    case Mode::kProbability:
      fire = rng_.uniform01() < armed.probability;
      break;
  }
  if (fire) {
    ++armed.stats.fires;
    ++total_fires_;
  }
  return fire;
}

FaultSiteStats FaultInjector::site_stats(std::string_view site) const {
  std::lock_guard lock(mutex_);
  const auto it = sites_.find(site);
  return it == sites_.end() ? FaultSiteStats{} : it->second.stats;
}

std::uint64_t FaultInjector::total_fires() const {
  std::lock_guard lock(mutex_);
  return total_fires_;
}

std::uint64_t FaultInjector::total_hits() const {
  std::lock_guard lock(mutex_);
  return total_hits_;
}

std::vector<std::pair<std::string, FaultSiteStats>> FaultInjector::armed_sites()
    const {
  std::lock_guard lock(mutex_);
  std::vector<std::pair<std::string, FaultSiteStats>> out;
  out.reserve(sites_.size());
  for (const auto& [name, site] : sites_) {
    out.emplace_back(name, site.stats);
  }
  return out;
}

}  // namespace horse::util

#endif  // HORSE_FAULT_INJECTION
