// Counting global operator new/delete replacement.
//
// NOT a member of horse_util: only targets that assert allocation
// behaviour (tests/core/p2sm_alloc_test.cpp, bench/abl_p2sm_maintenance)
// compile this TU into their own sources, which replaces the global
// operators binary-wide for that target. Every variant funnels through
// malloc/free (aligned_alloc for over-aligned requests) and bumps the
// thread-local counters in util/alloc_counter.
//
// ASan/TSan interpose malloc themselves; these replacements still layer
// correctly on top (they call the sanitizer's malloc), but the alloc test
// targets are only built for the non-sanitizer presets to keep the
// counters meaning exactly one thing.

#include <cstdlib>
#include <new>

#include "util/alloc_counter.hpp"

namespace {

void* counted_alloc(std::size_t size) {
  if (size == 0) {
    size = 1;
  }
  void* ptr = std::malloc(size);
  if (ptr == nullptr) {
    throw std::bad_alloc{};
  }
  horse::util::note_alloc();
  return ptr;
}

void* counted_alloc_aligned(std::size_t size, std::size_t alignment) {
  if (size == 0) {
    size = 1;
  }
  // aligned_alloc requires the size to be a multiple of the alignment.
  const std::size_t rounded = (size + alignment - 1) / alignment * alignment;
  void* ptr = std::aligned_alloc(alignment, rounded);
  if (ptr == nullptr) {
    throw std::bad_alloc{};
  }
  horse::util::note_alloc();
  return ptr;
}

void counted_free(void* ptr) noexcept {
  if (ptr == nullptr) {
    return;
  }
  horse::util::note_free();
  std::free(ptr);
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return counted_alloc(size);
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return counted_alloc(size);
  } catch (...) {
    return nullptr;
  }
}

void operator delete(void* ptr) noexcept { counted_free(ptr); }
void operator delete[](void* ptr) noexcept { counted_free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { counted_free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { counted_free(ptr); }
void operator delete(void* ptr, std::align_val_t) noexcept { counted_free(ptr); }
void operator delete[](void* ptr, std::align_val_t) noexcept {
  counted_free(ptr);
}
void operator delete(void* ptr, std::size_t, std::align_val_t) noexcept {
  counted_free(ptr);
}
void operator delete[](void* ptr, std::size_t, std::align_val_t) noexcept {
  counted_free(ptr);
}
void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  counted_free(ptr);
}
void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  counted_free(ptr);
}
