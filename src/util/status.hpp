// Lightweight status / expected types for exception-free hot paths.
//
// The resume path is the measured artifact; throwing (or even having
// unwinding tables exercised) there would perturb it. Library operations
// that can fail return Status or Expected<T>; exceptions are reserved for
// construction-time configuration errors.
#pragma once

#include <cassert>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace horse::util {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,  // e.g. resuming a sandbox that is not paused
  kResourceExhausted,
  kUnavailable,
  kInternal,
  kDeadlineExceeded,  // request outlived its deadline (admission / dequeue)
};

[[nodiscard]] constexpr std::string_view to_string(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
  }
  return "UNKNOWN";
}

class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return {}; }

  [[nodiscard]] bool is_ok() const noexcept { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }

  [[nodiscard]] std::string to_report() const {
    std::string out{to_string(code_)};
    if (!message_.empty()) {
      out += ": ";
      out += message_;
    }
    return out;
  }

  explicit operator bool() const noexcept { return is_ok(); }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Minimal expected<T, Status>. std::expected is C++23; this covers the
/// subset the codebase needs.
template <typename T>
class [[nodiscard]] Expected {
 public:
  Expected(T value) : storage_(std::in_place_index<0>, std::move(value)) {}  // NOLINT
  Expected(Status status) : storage_(std::in_place_index<1>, std::move(status)) {  // NOLINT
    assert(!std::get<1>(storage_).is_ok() && "Expected error must not be OK");
  }

  [[nodiscard]] bool has_value() const noexcept { return storage_.index() == 0; }
  explicit operator bool() const noexcept { return has_value(); }

  T& value() & noexcept {
    assert(has_value());
    return std::get<0>(storage_);
  }
  const T& value() const& noexcept {
    assert(has_value());
    return std::get<0>(storage_);
  }
  T&& value() && noexcept {
    assert(has_value());
    return std::get<0>(std::move(storage_));
  }

  T* operator->() noexcept { return &value(); }
  const T* operator->() const noexcept { return &value(); }
  T& operator*() noexcept { return value(); }
  const T& operator*() const noexcept { return value(); }

  [[nodiscard]] const Status& status() const noexcept {
    static const Status ok_status{};
    return has_value() ? ok_status : std::get<1>(storage_);
  }

 private:
  std::variant<T, Status> storage_;
};

}  // namespace horse::util

/// Early-return plumbing for Status-returning functions: evaluate `expr`
/// (any util::Status-valued expression) and propagate it when it is not
/// OK. Replaces the manual
///   if (util::Status st = expr; !st.is_ok()) return st;
/// boilerplate. Deliberately NOT usable where cleanup (unlocking, state
/// rollback) must happen before returning — those sites keep the explicit
/// form so the cleanup stays visible.
#define HORSE_RETURN_IF_ERROR(expr)                            \
  do {                                                         \
    if (::horse::util::Status horse_status_rie_ = (expr);      \
        !horse_status_rie_.is_ok()) {                          \
      return horse_status_rie_;                                \
    }                                                          \
  } while (false)
