// A test-and-test-and-set spinlock with exponential backoff.
//
// The hypervisor code paths HORSE targets (Xen credit2, Linux KVM) protect
// per-run-queue state with spinlocks, not sleeping mutexes: critical
// sections are tens of nanoseconds and a futex wait would dominate them.
// This lock mirrors that behaviour so the resume-path measurements carry
// the same contention profile as the kernel code the paper modifies.
#pragma once

#include <atomic>
#include <cstdint>

#include "util/align.hpp"
#include "util/yield_point.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace horse::util {

inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

class alignas(kCacheLineSize) Spinlock {
 public:
  Spinlock() = default;
  Spinlock(const Spinlock&) = delete;
  Spinlock& operator=(const Spinlock&) = delete;

  void lock() noexcept {
    std::uint32_t backoff = 1;
    for (;;) {
      HORSE_YIELD_POINT("spinlock.try_acquire");
      if (!locked_.exchange(true, std::memory_order_acquire)) {
        HORSE_YIELD_POINT("spinlock.acquired");
        return;
      }
      // Spin on a plain load to keep the line shared until it is released.
      while (locked_.load(std::memory_order_relaxed)) {
        // Under the interleaving explorer this is what keeps a contended
        // schedule live: the waiter parks here and the holder gets the
        // token back to reach its unlock().
        HORSE_YIELD_POINT("spinlock.spin");
        for (std::uint32_t i = 0; i < backoff; ++i) {
          cpu_relax();
        }
        if (backoff < 64) {
          backoff <<= 1;
        }
      }
    }
  }

  [[nodiscard]] bool try_lock() noexcept {
    return !locked_.load(std::memory_order_relaxed) &&
           !locked_.exchange(true, std::memory_order_acquire);
  }

  void unlock() noexcept {
    HORSE_YIELD_POINT("spinlock.release");
    locked_.store(false, std::memory_order_release);
  }

 private:
  std::atomic<bool> locked_{false};
};

/// RAII guard; same shape as std::lock_guard but usable with Spinlock in
/// noexcept paths (lock() never throws).
template <typename Lock>
class LockGuard {
 public:
  explicit LockGuard(Lock& lock) noexcept : lock_(lock) { lock_.lock(); }
  ~LockGuard() { lock_.unlock(); }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Lock& lock_;
};

}  // namespace horse::util
