// Fixed-size worker pool for general background tasks (trace replay,
// concurrent invokers in the examples). The 𝒫²𝒮ℳ merge does NOT use this
// pool — it has its own pre-armed MergeCrew (core/merge_crew.hpp) because
// the merge's latency budget cannot absorb a mutex/condvar round trip.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace horse::util {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. Never blocks (unbounded queue).
  void submit(std::function<void()> task);

  /// Block until every task submitted so far has finished executing.
  void wait_idle();

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

 private:
  void worker_loop(std::stop_token stop);

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_idle_;
  std::queue<std::function<void()>> tasks_;
  std::size_t in_flight_ = 0;
  bool shutting_down_ = false;
  std::vector<std::jthread> workers_;
};

}  // namespace horse::util
