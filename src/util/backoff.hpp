// Capped full-jitter exponential backoff (reusable retry spacing).
//
// The platform's retry ladder and the per-function circuit breaker both
// need "wait longer after each consecutive failure, but never unboundedly,
// and never in lockstep across clients". The classic answer is capped
// exponential backoff with FULL jitter (AWS architecture blog): the delay
// for attempt k is drawn uniformly from (0, min(cap, base * 2^(k-1))].
// Full jitter beats the ±50% band the ladder used before because
// uncorrelated clients spread over the whole window instead of clustering
// around the midpoint — under a synchronized failure (exactly the overload
// scenarios E19 models) the retry arrivals decorrelate immediately.
//
// The helper is stateless: callers own the attempt counter and the RNG
// stream, which keeps every use seeded/deterministic (the ladder draws
// from its shard's RNG, the breaker from its shard's RNG, tests from a
// fixed seed). Delays are modelled values (recorded, not slept) everywhere
// the ladder uses them, matching the caller-driven logical clock.
#pragma once

#include <cstddef>

#include "util/rng.hpp"
#include "util/time.hpp"

namespace horse::util {

struct BackoffPolicy {
  /// Ceiling of the first attempt's delay window.
  Nanos base = 50 * kMicrosecond;
  /// Hard upper bound on any delay window (the "capped" part).
  Nanos cap = 10 * kMillisecond;
};

class Backoff {
 public:
  explicit constexpr Backoff(BackoffPolicy policy = {}) noexcept
      : policy_(policy) {}

  /// Window ceiling for `attempt` (1-based): min(cap, base * 2^(attempt-1)),
  /// saturating instead of overflowing. Monotone non-decreasing in attempt
  /// and never above cap — the property the unit tests pin.
  [[nodiscard]] constexpr Nanos ceiling(std::size_t attempt) const noexcept {
    if (policy_.base <= 0) {
      return 0;
    }
    const std::size_t shift = attempt > 1 ? attempt - 1 : 0;
    // 2^shift would overflow past 62; by then the cap has long won.
    if (shift >= 62) {
      return policy_.cap;
    }
    const Nanos doubled = policy_.base << shift;
    // Left shift may wrap negative before reaching 62 for large bases.
    if (doubled <= 0 || (doubled >> shift) != policy_.base) {
      return policy_.cap;
    }
    return doubled < policy_.cap ? doubled : policy_.cap;
  }

  /// Full-jitter delay for `attempt`: uniform in (0, ceiling(attempt)],
  /// drawn from the caller's seeded stream (floored at 1 ns so a recorded
  /// backoff is never mistaken for "no backoff happened").
  [[nodiscard]] Nanos delay(std::size_t attempt, Xoshiro256& rng) const noexcept {
    const Nanos window = ceiling(attempt);
    if (window <= 0) {
      return 0;
    }
    const Nanos drawn = static_cast<Nanos>(
        rng.bounded(static_cast<std::uint64_t>(window)) + 1);
    return drawn;
  }

  [[nodiscard]] constexpr const BackoffPolicy& policy() const noexcept {
    return policy_;
  }

 private:
  BackoffPolicy policy_;
};

}  // namespace horse::util
