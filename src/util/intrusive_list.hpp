// Intrusive doubly-linked list, the backbone of every run queue.
//
// Hypervisor run queues (Xen credit2's runq, CFS's cfs_rq before the
// rbtree era for the paused path) link scheduling entities through hooks
// embedded in the entity itself: insertion and removal never allocate, and
// splicing a pre-linked chain is a constant number of pointer writes.
// 𝒫²𝒮ℳ's O(1) merge depends on exactly that property, so the list exposes
// raw splice primitives (`splice_after_node`) in addition to the usual
// container interface.
//
// The list is NOT thread-safe by itself; callers hold the owning run
// queue's lock, except for the 𝒫²𝒮ℳ merge which is race-free by
// construction (disjoint anchor nodes, see core/p2sm.hpp).
#pragma once

#include <cassert>
#include <cstddef>
#include <iterator>

namespace horse::util {

/// Embedded hook. A type participates in an IntrusiveList<T, &T::hook> by
/// owning one of these per list it can be linked into.
struct ListHook {
  ListHook* prev = nullptr;
  ListHook* next = nullptr;

  [[nodiscard]] bool is_linked() const noexcept { return next != nullptr; }

  /// Detach from whatever list this hook is on. Safe to call when unlinked.
  void unlink() noexcept {
    if (next == nullptr) {
      return;
    }
    prev->next = next;
    next->prev = prev;
    prev = nullptr;
    next = nullptr;
  }
};

template <typename T, ListHook T::* Hook>
class IntrusiveList {
 public:
  IntrusiveList() noexcept { reset(); }
  IntrusiveList(const IntrusiveList&) = delete;
  IntrusiveList& operator=(const IntrusiveList&) = delete;

  ~IntrusiveList() { clear(); }

  class iterator {
   public:
    using iterator_category = std::bidirectional_iterator_tag;
    using value_type = T;
    using difference_type = std::ptrdiff_t;
    using pointer = T*;
    using reference = T&;

    iterator() = default;
    explicit iterator(ListHook* node) noexcept : node_(node) {}

    reference operator*() const noexcept { return *from_hook(node_); }
    pointer operator->() const noexcept { return from_hook(node_); }
    iterator& operator++() noexcept {
      node_ = node_->next;
      return *this;
    }
    iterator operator++(int) noexcept {
      iterator old = *this;
      ++*this;
      return old;
    }
    iterator& operator--() noexcept {
      node_ = node_->prev;
      return *this;
    }
    bool operator==(const iterator&) const = default;

    [[nodiscard]] ListHook* node() const noexcept { return node_; }

   private:
    ListHook* node_ = nullptr;
  };

  [[nodiscard]] bool empty() const noexcept { return head_.next == &head_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  iterator begin() noexcept { return iterator(head_.next); }
  iterator end() noexcept { return iterator(&head_); }

  T& front() noexcept {
    assert(!empty());
    return *from_hook(head_.next);
  }
  T& back() noexcept {
    assert(!empty());
    return *from_hook(head_.prev);
  }

  void push_front(T& item) noexcept { insert_after_hook(&head_, hook_of(item)); }
  void push_back(T& item) noexcept { insert_after_hook(head_.prev, hook_of(item)); }

  /// Insert `item` immediately before `pos`.
  void insert(iterator pos, T& item) noexcept {
    insert_after_hook(pos.node()->prev, hook_of(item));
  }

  void erase(T& item) noexcept {
    assert(hook_of(item)->is_linked());
    hook_of(item)->unlink();
    --size_;
  }

  T& pop_front() noexcept {
    T& item = front();
    erase(item);
    return item;
  }

  void clear() noexcept {
    while (!empty()) {
      pop_front();
    }
  }

  /// Reset to empty WITHOUT touching any node: the hooks currently linked
  /// (or mis-linked) through this list are simply abandoned where they
  /// are. This is the only safe teardown after a detected corruption —
  /// clear() walks next pointers that an interleaving-explorer negative
  /// control may have left pointing anywhere. Callers own the nodes and
  /// must not reuse their hooks without re-initialising them.
  void abandon_all() noexcept { reset(); }

  /// Splice the chain [first..last] (already linked to each other, not to
  /// any list) after `anchor`, which must be a node of this list or the
  /// sentinel head. This is the 𝒫²𝒮ℳ primitive: two boundary rewrites.
  /// `count` is the caller-known chain length (hooks are not counted here
  /// to keep the operation O(1)).
  void splice_after_node(ListHook* anchor, ListHook* first, ListHook* last,
                         std::size_t count) noexcept {
    ListHook* after = anchor->next;
    anchor->next = first;
    first->prev = anchor;
    last->next = after;
    after->prev = last;
    size_ += count;
  }

  /// Detach the entire content as a chain [first,last]; the list becomes
  /// empty. Returns {nullptr,nullptr} when empty.
  struct Chain {
    ListHook* first = nullptr;
    ListHook* last = nullptr;
    std::size_t count = 0;
  };

  Chain take_all() noexcept {
    if (empty()) {
      return {};
    }
    Chain chain{head_.next, head_.prev, size_};
    chain.first->prev = nullptr;
    chain.last->next = nullptr;
    reset();
    return chain;
  }

  /// Sentinel node, exposed so 𝒫²𝒮ℳ can use "position -1" (insert at
  /// front) as an anchor like any other node.
  [[nodiscard]] ListHook* sentinel() noexcept { return &head_; }

  // Standard intrusive-container offset arithmetic; the hook is a
  // plain-old member subobject of T. The offset computation dereferences
  // a fake object at address 1 (not 0, which UBSan's null check would
  // flag) purely for pointer arithmetic — no memory is touched. This is
  // the classic offsetof-via-member-pointer idiom every intrusive
  // container relies on; the sanitizer suppression scopes the known
  // technical UB to this one function.
#if defined(__GNUC__) || defined(__clang__)
  __attribute__((no_sanitize("undefined")))
#endif
  static T* from_hook(ListHook* hook) noexcept {
    const auto offset =
        reinterpret_cast<std::ptrdiff_t>(&(reinterpret_cast<T*>(1)->*Hook)) - 1;
    return reinterpret_cast<T*>(reinterpret_cast<char*>(hook) - offset);
  }

  /// Adjusts size after an external splice performed directly on hooks
  /// (the parallel merge path bypasses the container interface).
  void add_size(std::size_t delta) noexcept { size_ += delta; }

 private:
  static ListHook* hook_of(T& item) noexcept { return &(item.*Hook); }

  void insert_after_hook(ListHook* where, ListHook* node) noexcept {
    assert(!node->is_linked());
    node->prev = where;
    node->next = where->next;
    where->next->prev = node;
    where->next = node;
    ++size_;
  }

  void reset() noexcept {
    head_.prev = &head_;
    head_.next = &head_;
    size_ = 0;
  }

  ListHook head_;
  std::size_t size_ = 0;
};

}  // namespace horse::util
