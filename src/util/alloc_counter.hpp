// Thread-local allocation counters for the zero-allocation invariants on
// the 𝒫²𝒮ℳ precompute path.
//
// The counters only move when the counting operator new/delete
// replacement (util/alloc_hook.cpp) is compiled into the binary; it is
// deliberately NOT part of horse_util, so production binaries never carry
// a replaced global allocator. Targets that assert allocation behaviour
// (the p2sm alloc test, the maintenance bench) add alloc_hook.cpp to
// their own sources and verify the hook is live with a canary allocation
// before trusting a zero reading.
#pragma once

#include <cstdint>

namespace horse::util {

/// Allocations observed on the calling thread since it started.
[[nodiscard]] std::uint64_t thread_alloc_count() noexcept;
/// Deallocations observed on the calling thread since it started.
[[nodiscard]] std::uint64_t thread_free_count() noexcept;

/// Called by the replaced operators; not for direct use.
void note_alloc() noexcept;
void note_free() noexcept;

}  // namespace horse::util
