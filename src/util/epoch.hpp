// Epoch-based reclamation for retired run-table nodes.
//
// The kHorse resume path reads a sandbox's 𝒫²𝒮ℳ index and then untracks
// it. Freeing the index inline would put an unordered_map erase plus a
// handful of heap frees inside the timed window, and — worse — another
// thread could still be walking the index it looked up moments earlier.
// Instead the owner *retires* the node to a per-queue EpochReclaimer and
// the actual destruction happens later, off the hot path, once every
// in-flight reader has provably moved on.
//
// Scheme (classic 3-epoch EBR, sized for a handful of readers per queue):
//  - A global epoch counter e and kReaderSlots padded reader slots.
//  - Readers pin: claim a slot, publish the current epoch into it, and
//    re-check the global (publish-then-verify) so a concurrent advance
//    cannot miss them. Unpin stores the kIdle sentinel.
//  - retire(node) CAS-pushes onto bucket[e % 3]. Zero allocation: the
//    link lives inside the retired object (EpochRetireNode is intrusive).
//  - try_reclaim() advances e -> e+1 only when every pinned reader is at
//    exactly e. It grabs bucket[(e+1) % 3] — retirements from e-2, which
//    no reader pinned at e can still reference — *before* publishing the
//    advance, then frees the grabbed chain. Reclaimers serialize on an
//    internal spinlock; readers and retirers never block.
//
// Lock hierarchy: pin/unpin/retire are lock-free and may be called under
// any lock at or below the ull-manager mutex (the resume path pins inside
// UllRunQueueManager::lookup(), under the manager mutex — the same mutex
// retire runs under, which is what orders every pin before the retirement
// it protects against). try_reclaim takes only its internal spinlock and
// must be called with no queue Spinlock held — maintenance paths
// (track/refresh) call it, resume never does.
//
// Fault site `sched.epoch.stall` models a reader stalled mid-epoch: a
// reclaim attempt sees it and declines, leaving garbage pending but
// bounded (at most the retirements of the last three epochs).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "util/align.hpp"
#include "util/spinlock.hpp"

namespace horse::util {

/// Intrusive hook carried by every object that can be retired. `destroy`
/// receives `owner` and must free the whole object (including this node).
struct EpochRetireNode {
  EpochRetireNode* next = nullptr;
  void* owner = nullptr;
  void (*destroy)(void*) = nullptr;
};

class EpochReclaimer {
 public:
  static constexpr std::size_t kReaderSlots = 16;

  EpochReclaimer() noexcept {
    for (auto& slot : reader_epochs_) slot.store(kIdle, std::memory_order_relaxed);
  }
  ~EpochReclaimer() { drain(); }
  EpochReclaimer(const EpochReclaimer&) = delete;
  EpochReclaimer& operator=(const EpochReclaimer&) = delete;

  /// Pin the calling thread into the current epoch. Returns the claimed
  /// slot. With more than kReaderSlots threads pinned simultaneously —
  /// a contract violation; nothing here can make a slot appear — it
  /// spins (with backoff) until one frees, counting the event in
  /// slot_exhaustion() and aborting via HORSE_DCHECK on test builds
  /// once the spin is clearly a hang rather than a transient.
  std::size_t pin() noexcept;

  /// Release a slot returned by pin(). Nodes read since pin() must not be
  /// dereferenced afterwards.
  void unpin(std::size_t slot) noexcept;

  /// Hand a node to the reclaimer. Lock-free; safe under any lock. The
  /// node must already be unreachable for *new* readers (e.g. erased from
  /// the owning map) — epochs only protect readers that looked it up
  /// before that point.
  void retire(EpochRetireNode* node) noexcept;

  /// Attempt one epoch advance + free of the expired bucket. Returns the
  /// number of nodes destroyed (0 when a pinned reader blocks the
  /// advance). Must not be called while holding a queue lock or while the
  /// calling thread itself is pinned.
  std::size_t try_reclaim() noexcept;

  /// Destroy everything still pending regardless of epochs. Only safe
  /// when no reader can be pinned (destructor / teardown).
  void drain() noexcept;

  /// Nodes retired but not yet destroyed.
  [[nodiscard]] std::uint64_t pending() const noexcept {
    return retired_.load(std::memory_order_relaxed) -
           reclaimed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t retired() const noexcept {
    return retired_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t reclaimed() const noexcept {
    return reclaimed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t epoch() const noexcept {
    return global_epoch_.load(std::memory_order_relaxed);
  }

  /// Times pin() found every reader slot occupied and had to wait for
  /// one (counted once per affected pin() call). Nonzero means the
  /// process ran more simultaneous readers than kReaderSlots — size the
  /// slot array up or fix the caller.
  [[nodiscard]] std::uint64_t slot_exhaustion() const noexcept {
    return slot_exhaustion_.load(std::memory_order_relaxed);
  }

  /// RAII pin covering a read-side critical section.
  class ReadGuard {
   public:
    explicit ReadGuard(EpochReclaimer& reclaimer) noexcept
        : reclaimer_(&reclaimer), slot_(reclaimer.pin()) {}
    ~ReadGuard() {
      if (reclaimer_ != nullptr) reclaimer_->unpin(slot_);
    }
    ReadGuard(const ReadGuard&) = delete;
    ReadGuard& operator=(const ReadGuard&) = delete;

   private:
    EpochReclaimer* reclaimer_;
    std::size_t slot_;
  };

 private:
  static constexpr std::uint64_t kIdle = ~std::uint64_t{0};
  static constexpr std::size_t kBuckets = 3;

  std::size_t destroy_list(EpochRetireNode* head) noexcept;

  std::atomic<std::uint64_t> global_epoch_{0};
  PaddedAtomic<std::uint64_t> reader_epochs_[kReaderSlots] = {};
  std::atomic<EpochRetireNode*> buckets_[kBuckets] = {};
  Spinlock reclaim_lock_;
  std::atomic<std::uint64_t> retired_{0};
  std::atomic<std::uint64_t> reclaimed_{0};
  std::atomic<std::uint64_t> slot_exhaustion_{0};
};

}  // namespace horse::util
