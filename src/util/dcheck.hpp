// Debug invariant checking — free in release builds.
//
// The resume path's data structures (run queues, the 𝒫²𝒮ℳ index) carry
// invariants that are cheap to state and O(n) to verify: sorted order,
// prev/next symmetry, size consistency, runs partitioning A. Verifying
// them after every mutation would destroy the O(1) resume the paper is
// about, so the audits are functions (`RunQueue::check_invariants()`,
// `P2smIndex::audit()`) that always exist — tests call them directly —
// while the *automatic* call sites inside mutators are guarded by
// HORSE_DCHECK, enabled with -DHORSE_DCHECK=ON (the default for test
// builds, forced off by the `release` preset). When disabled the guarded
// expression is not evaluated at all.
//
// HORSE_DCHECK(cond, msg)          — abort with a report unless cond.
// HORSE_DCHECK_OK(status_expr)     — abort unless the util::Status-valued
//                                    expression evaluates to ok().
#pragma once

#if defined(HORSE_DCHECK_ENABLED)

#include <cstdio>
#include <cstdlib>

#include "util/status.hpp"

namespace horse::util {

[[noreturn]] inline void dcheck_fail(const char* what, const char* file,
                                     int line) noexcept {
  std::fprintf(stderr, "HORSE_DCHECK failed at %s:%d: %s\n", file, line, what);
  std::fflush(stderr);
  std::abort();
}

inline void dcheck_status(const Status& status, const char* expr,
                          const char* file, int line) noexcept {
  if (!status.is_ok()) {
    std::fprintf(stderr, "HORSE_DCHECK_OK(%s) failed at %s:%d: %s\n", expr,
                 file, line, status.message().c_str());
    std::fflush(stderr);
    std::abort();
  }
}

}  // namespace horse::util

#define HORSE_DCHECK(cond, msg)                              \
  do {                                                       \
    if (!(cond)) {                                           \
      ::horse::util::dcheck_fail((msg), __FILE__, __LINE__); \
    }                                                        \
  } while (false)

#define HORSE_DCHECK_OK(expr) \
  ::horse::util::dcheck_status((expr), #expr, __FILE__, __LINE__)

#else  // !HORSE_DCHECK_ENABLED

#define HORSE_DCHECK(cond, msg) ((void)0)
#define HORSE_DCHECK_OK(expr) ((void)0)

#endif  // HORSE_DCHECK_ENABLED
