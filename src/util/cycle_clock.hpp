// Cycle-accurate timing for the resume hot path.
//
// The paper's kHorse resume is a ~150 ns operation; timing it (and its
// internal stages) with std::chrono costs ~20-25 ns per read through the
// vDSO, so a six-read breakdown can easily outweigh the thing measured.
// CycleClock reads the TSC directly — `lfence; rdtsc` on x86-64, which
// orders the read against earlier loads without the full pipeline drain of
// cpuid — and converts to nanoseconds with a ratio calibrated once against
// steady_clock. Reading is ~10 ns and conversion is one multiply, paid at
// reporting time, not inside the measured window.
//
// Fallback: on architectures without a usable counter (or when the TSC
// does not advance), now() degrades to monotonic_now() and the calibrated
// ratio is exactly 1.0, so cycles_to_nanos() stays an identity and every
// caller keeps working — just at chrono precision.
//
// Calibration is lazy (first call to ns_per_cycle()/cycles_to_nanos())
// and spins for ~1 ms once per process. Hot paths that convert inline
// should call CycleClock::calibrate() at setup so the spin never lands in
// a measured region; now() itself never calibrates.
#pragma once

#include <cstdint>

#include "util/time.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#define HORSE_CYCLE_CLOCK_TSC 1
#include <x86intrin.h>
#elif defined(__aarch64__)
#define HORSE_CYCLE_CLOCK_CNTVCT 1
#endif

namespace horse::util {

class CycleClock {
 public:
  /// True when now() is backed by a real cycle counter (TSC / CNTVCT)
  /// rather than the chrono fallback.
  [[nodiscard]] static bool available() noexcept {
#if defined(HORSE_CYCLE_CLOCK_TSC) || defined(HORSE_CYCLE_CLOCK_CNTVCT)
    return true;
#else
    return false;
#endif
  }

  /// Current cycle count (or nanoseconds in the fallback). Fenced against
  /// earlier loads so a stage boundary cannot drift into the stage it ends.
  [[nodiscard]] static std::uint64_t now() noexcept {
#if defined(HORSE_CYCLE_CLOCK_TSC)
    _mm_lfence();
    return __rdtsc();
#elif defined(HORSE_CYCLE_CLOCK_CNTVCT)
    std::uint64_t virtual_timer = 0;
    asm volatile("isb; mrs %0, cntvct_el0" : "=r"(virtual_timer));
    return virtual_timer;
#else
    return static_cast<std::uint64_t>(monotonic_now());
#endif
  }

  /// Nanoseconds per cycle, calibrated once against steady_clock. 1.0 in
  /// the fallback (now() already returns nanoseconds) and whenever the
  /// counter turns out not to advance.
  [[nodiscard]] static double ns_per_cycle() noexcept;

  /// Force the one-time calibration now (outside any measured window).
  static void calibrate() noexcept { (void)ns_per_cycle(); }

  [[nodiscard]] static Nanos cycles_to_nanos(std::uint64_t cycles) noexcept {
    return static_cast<Nanos>(static_cast<double>(cycles) * ns_per_cycle());
  }
};

/// Drop-in Stopwatch replacement over CycleClock: elapsed() still reports
/// Nanos, but each read is one fenced counter read instead of a chrono
/// call. Callers must have run CycleClock::calibrate() (engines do it at
/// construction) if the first elapsed() matters.
class CycleStopwatch {
 public:
  CycleStopwatch() noexcept : start_(CycleClock::now()) {}

  void restart() noexcept { start_ = CycleClock::now(); }
  [[nodiscard]] std::uint64_t elapsed_cycles() const noexcept {
    return CycleClock::now() - start_;
  }
  [[nodiscard]] Nanos elapsed() const noexcept {
    return CycleClock::cycles_to_nanos(elapsed_cycles());
  }

 private:
  std::uint64_t start_;
};

}  // namespace horse::util
