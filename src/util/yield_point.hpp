// Deterministic-schedule instrumentation points.
//
// HORSE's correctness story for the lock-free 𝒫²𝒮ℳ splice path is an
// *argument* (pairwise-disjoint fields, Algorithm 1); this header is the
// mechanism that lets tests turn the argument into something a machine can
// falsify. Concurrency-sensitive code sprinkles HORSE_YIELD_POINT("site")
// between the individual loads and stores whose interleaving matters. In a
// normal build the macro compiles to nothing — the release splice path is
// byte-identical to the uninstrumented one. When the tree is configured
// with -DHORSE_SCHED_TEST=ON the macro becomes a call through a global
// hook pointer; the test-only ScheduleExplorer (tests/harness/) installs a
// hook that serialises the participating threads and hands control between
// them under a seeded PCT-style scheduler, so any interleaving it explores
// can be replayed exactly from its seed.
//
// Contract for hook implementations:
//   * the hook may block (that is the point: it parks the calling thread
//     until the explorer hands it the token again);
//   * it must be async-signal-unsafe-free and must not throw;
//   * threads the hook does not recognise must pass through with nothing
//     but one atomic load of cost — production threads (e.g. a crew
//     worker owned by an unrelated test) keep running at full speed.
#pragma once

#if defined(HORSE_SCHED_TEST)

#include <atomic>

namespace horse::util {

/// `site` is a static string naming the instrumentation point (e.g.
/// "splice.set_anchor_next"); explorers record it so a failing schedule's
/// trace reads as a sequence of named events, not raw program counters.
using YieldHookFn = void (*)(const char* site) noexcept;

inline std::atomic<YieldHookFn> g_yield_hook{nullptr};

inline void set_yield_hook(YieldHookFn hook) noexcept {
  g_yield_hook.store(hook, std::memory_order_release);
}

[[nodiscard]] inline YieldHookFn yield_hook() noexcept {
  return g_yield_hook.load(std::memory_order_acquire);
}

inline void yield_point(const char* site) noexcept {
  if (YieldHookFn hook = g_yield_hook.load(std::memory_order_acquire)) {
    hook(site);
  }
}

}  // namespace horse::util

#define HORSE_YIELD_POINT(site) ::horse::util::yield_point(site)

#else  // !HORSE_SCHED_TEST

#define HORSE_YIELD_POINT(site) ((void)0)

#endif  // HORSE_SCHED_TEST
