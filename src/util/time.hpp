// Time primitives shared by the measurement and simulation planes.
//
// Nanos is the single time unit across the codebase: the paper's claims
// span 150 ns (HORSE resume) to 1.5 s (cold boot), all representable in a
// signed 64-bit nanosecond count.
#pragma once

#include <chrono>
#include <cstdint>

namespace horse::util {

/// Nanoseconds as a plain integer. Simulation timestamps and durations
/// both use this; the simulator's virtual clock never touches the real one.
using Nanos = std::int64_t;

inline constexpr Nanos kMicrosecond = 1'000;
inline constexpr Nanos kMillisecond = 1'000'000;
inline constexpr Nanos kSecond = 1'000'000'000;

/// Monotonic wall-clock now, for real measurements.
inline Nanos monotonic_now() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Stopwatch over the monotonic clock.
class Stopwatch {
 public:
  Stopwatch() noexcept : start_(monotonic_now()) {}

  void restart() noexcept { start_ = monotonic_now(); }
  [[nodiscard]] Nanos elapsed() const noexcept { return monotonic_now() - start_; }

 private:
  Nanos start_;
};

/// Busy-spin for approximately `duration` nanoseconds. Workload stand-ins
/// (sysbench burner, uLL function bodies below timer resolution) use this
/// rather than sleeping: sleeping yields the core, which would erase the
/// run-queue occupancy the experiments depend on.
inline void spin_for(Nanos duration) noexcept {
  const Nanos deadline = monotonic_now() + duration;
  while (monotonic_now() < deadline) {
    // busy wait
  }
}

}  // namespace horse::util
