#include "util/alloc_counter.hpp"

namespace horse::util {

namespace {
// Trivially-initialised thread locals: safe to touch from operator new
// even during early TLS setup (no dynamic initialisation, no
// allocation-on-first-use).
thread_local std::uint64_t allocs = 0;
thread_local std::uint64_t frees = 0;
}  // namespace

std::uint64_t thread_alloc_count() noexcept { return allocs; }
std::uint64_t thread_free_count() noexcept { return frees; }
void note_alloc() noexcept { ++allocs; }
void note_free() noexcept { ++frees; }

}  // namespace horse::util
