#include "util/thread_pool.hpp"

#include <utility>

namespace horse::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = 1;
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this](std::stop_token stop) { worker_loop(stop); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    shutting_down_ = true;
  }
  for (auto& worker : workers_) {
    worker.request_stop();
  }
  work_available_.notify_all();
  // jthread joins in its destructor.
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    tasks_.push(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  all_idle_.wait(lock, [this] { return tasks_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop(std::stop_token stop) {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      work_available_.wait(lock, [this, &stop] {
        return !tasks_.empty() || shutting_down_ || stop.stop_requested();
      });
      if (tasks_.empty()) {
        return;  // shutdown with drained queue
      }
      task = std::move(tasks_.front());
      tasks_.pop();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
      if (tasks_.empty() && in_flight_ == 0) {
        all_idle_.notify_all();
      }
    }
  }
}

}  // namespace horse::util
