// Deterministic pseudo-random number generation.
//
// Every stochastic element of the reproduction (trace arrival times,
// function durations, credit jitter) draws from an explicitly seeded
// xoshiro256** stream so experiments are bit-reproducible across runs;
// std::mt19937 is avoided on hot paths because of its state size.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace horse::util {

/// SplitMix64: used to expand a single seed into xoshiro state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna), public-domain reference algorithm.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x5eed0fULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& word : state_) {
      word = sm.next();
    }
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t bounded(std::uint64_t bound) noexcept {
    if (bound == 0) {
      return 0;
    }
    unsigned __int128 mul = static_cast<unsigned __int128>((*this)()) * bound;
    return static_cast<std::uint64_t>(mul >> 64);
  }

  /// Exponential with the given rate (mean 1/rate).
  double exponential(double rate) noexcept {
    double u = uniform01();
    // Guard against log(0); uniform01() < 1 always but can be 0.
    if (u <= 0.0) {
      u = 0x1.0p-53;
    }
    return -std::log(u) / rate;
  }

  /// Bounded Pareto on [lo, hi] with tail index alpha; heavy-tailed
  /// function durations in the synthetic Azure trace use this.
  double bounded_pareto(double alpha, double lo, double hi) noexcept {
    const double u = uniform01();
    const double la = std::pow(lo, alpha);
    const double ha = std::pow(hi, alpha);
    return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
  }

  /// Normal via Box-Muller (no cached spare: callers are not perf-critical).
  double normal(double mean, double stddev) noexcept {
    double u1 = uniform01();
    if (u1 <= 0.0) {
      u1 = 0x1.0p-53;
    }
    const double u2 = uniform01();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * mag * std::cos(2.0 * 3.14159265358979323846 * u2);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace horse::util
