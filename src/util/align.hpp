// Cache-line alignment helpers used throughout the hot paths.
//
// Run-queue locks and load counters are written by resume threads while
// scheduler ticks read them; false sharing between adjacent queues would
// distort exactly the nanosecond-scale measurements this project is about,
// so every shared hot variable is padded to a cache line.
#pragma once

#include <atomic>
#include <cstddef>
#include <new>

namespace horse::util {

// Fixed at 64 rather than std::hardware_destructive_interference_size:
// the constant participates in struct layout (ABI), and GCC warns that the
// library value can drift with -mtune. 64 is correct for every x86-64 and
// current AArch64 server part this will run on.
inline constexpr std::size_t kCacheLineSize = 64;

/// An atomic value padded to occupy a full cache line.
template <typename T>
struct alignas(kCacheLineSize) PaddedAtomic {
  std::atomic<T> value{};

  PaddedAtomic() = default;
  explicit PaddedAtomic(T initial) : value(initial) {}

  T load(std::memory_order order = std::memory_order_seq_cst) const noexcept {
    return value.load(order);
  }
  void store(T v, std::memory_order order = std::memory_order_seq_cst) noexcept {
    value.store(v, order);
  }
};

}  // namespace horse::util
