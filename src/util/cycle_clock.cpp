#include "util/cycle_clock.hpp"

namespace horse::util {
namespace {

// One-shot calibration: sample (steady_clock, counter) twice across a
// ~1 ms spin and take the ratio. The TSC on anything this code targets is
// invariant/constant-rate, so a single window is enough; we only need the
// ratio to convert stage budgets, not to replace wall clocks.
double calibrate_ns_per_cycle() noexcept {
  if (!CycleClock::available()) return 1.0;

  const Nanos wall_start = monotonic_now();
  const std::uint64_t cycles_start = CycleClock::now();
  Nanos wall_end = wall_start;
  // Spin on the wall clock, not the counter, so a stuck counter cannot
  // hang calibration.
  constexpr Nanos kCalibrationWindow = 1'000'000;  // 1 ms
  while (wall_end - wall_start < kCalibrationWindow) {
    wall_end = monotonic_now();
  }
  const std::uint64_t cycles_end = CycleClock::now();

  if (cycles_end <= cycles_start) return 1.0;  // counter not advancing
  const double ratio = static_cast<double>(wall_end - wall_start) /
                       static_cast<double>(cycles_end - cycles_start);
  // An implausible ratio (sub-0.01 ns or >100 ns per tick) means the
  // counter is not usable as a timebase; fall back to identity.
  if (ratio < 0.01 || ratio > 100.0) return 1.0;
  return ratio;
}

}  // namespace

double CycleClock::ns_per_cycle() noexcept {
  static const double ratio = calibrate_ns_per_cycle();
  return ratio;
}

}  // namespace horse::util
