// Seeded, deterministic fault injection — compiled out in release builds.
//
// The degradation ladder (crew watchdog, stale-index fallback, platform
// retry rungs) only earns its keep if the failures it guards against can
// be produced on demand, deterministically, in tests. This header is the
// mechanism: failure-prone code carries named HORSE_FAULT_POINT("site")
// markers at the exact decision points that can go wrong — 𝒫²𝒮ℳ index
// build/splice, merge-crew dispatch, the resume prologue, snapshot
// restore, warm-pool park/take. In a normal (fault-armed) build the macro
// is one relaxed atomic load when nothing is armed; in the `release`
// preset (-DHORSE_FAULT_INJECTION=OFF) it is the constant `false` and the
// fault plumbing does not exist, exactly like HORSE_DCHECK.
//
// Arming modes:
//   * arm_always(site[, max_fires])      — fire on every hit (bounded);
//   * arm_nth(site, nth[, max_fires])    — fire on the nth hit (1-based),
//                                          the workhorse for replayable
//                                          "fail exactly here" tests;
//   * arm_probability(site, p[, max])    — fire with probability p drawn
//                                          from the injector's seeded
//                                          xoshiro stream.
//
// Determinism: counting modes are exact; the probability stream is seeded
// from HORSE_FAULT_SEED (environment, decimal) or reseed(), so a stochastic
// fault campaign replays bit-identically from its seed as long as the
// thread interleaving of hits is fixed (single-threaded drivers, or the
// tests/harness/ explorer). Per-site hit/fire counters are kept so
// experiments can assert both that faults fired and how often the
// fallbacks engaged.
//
// Thread-safety: should_fire() may be called concurrently from crew
// workers and resume threads; arming/disarming is mutex-protected and
// meant for test setup/teardown, not hot paths.
#pragma once

#if defined(HORSE_FAULT_INJECTION)

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/rng.hpp"

namespace horse::util {

struct FaultSiteStats {
  std::uint64_t hits = 0;   // times an armed site was reached
  std::uint64_t fires = 0;  // times it actually injected the fault
};

class FaultInjector {
 public:
  static constexpr std::uint64_t kUnlimited = ~std::uint64_t{0};

  /// Process-wide injector. Seeded from the HORSE_FAULT_SEED environment
  /// variable when present (decimal), else a fixed default, so a failing
  /// fault campaign can be replayed with `HORSE_FAULT_SEED=<n> ctest ...`.
  static FaultInjector& global() noexcept;

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // --- arming (test setup; mutex-protected) -------------------------------

  void arm_always(std::string site, std::uint64_t max_fires = kUnlimited);
  /// Fire exactly when the site's hit counter reaches `nth` (1-based).
  void arm_nth(std::string site, std::uint64_t nth,
               std::uint64_t max_fires = 1);
  void arm_probability(std::string site, double probability,
                       std::uint64_t max_fires = kUnlimited);
  void disarm(std::string_view site);
  /// Disarm every site and clear all statistics.
  void reset();

  void reseed(std::uint64_t seed);
  [[nodiscard]] std::uint64_t seed() const;

  // --- hot-path query ------------------------------------------------------

  /// True when the named fault should be injected now. One relaxed atomic
  /// load when nothing is armed anywhere.
  [[nodiscard]] bool should_fire(const char* site) noexcept;

  // --- introspection -------------------------------------------------------

  [[nodiscard]] FaultSiteStats site_stats(std::string_view site) const;
  [[nodiscard]] std::uint64_t total_fires() const;
  [[nodiscard]] std::uint64_t total_hits() const;
  /// Snapshot of every armed site's counters, for surfacing through
  /// metrics::counters_table alongside the fallback counters.
  [[nodiscard]] std::vector<std::pair<std::string, FaultSiteStats>>
  armed_sites() const;

 private:
  enum class Mode : std::uint8_t { kAlways, kNth, kProbability };

  struct Site {
    Mode mode = Mode::kAlways;
    double probability = 0.0;
    std::uint64_t nth = 0;
    std::uint64_t max_fires = kUnlimited;
    FaultSiteStats stats;
  };

  FaultInjector();

  void arm(std::string site, Site armed);

  mutable std::mutex mutex_;
  // std::map with transparent comparison: should_fire() looks up by
  // const char* without constructing a std::string (no allocation, so the
  // noexcept contract holds).
  std::map<std::string, Site, std::less<>> sites_;
  std::atomic<std::size_t> armed_count_{0};
  Xoshiro256 rng_;
  std::uint64_t seed_ = 0;
  std::uint64_t total_fires_ = 0;
  std::uint64_t total_hits_ = 0;
};

/// RAII arming for tests: disarms its site (on the global injector) when
/// leaving scope, so one test's faults cannot leak into the next.
class ScopedFault {
 public:
  [[nodiscard]] static ScopedFault always(
      std::string site, std::uint64_t max_fires = FaultInjector::kUnlimited) {
    FaultInjector::global().arm_always(site, max_fires);
    return ScopedFault(std::move(site));
  }
  [[nodiscard]] static ScopedFault nth(std::string site, std::uint64_t nth,
                                       std::uint64_t max_fires = 1) {
    FaultInjector::global().arm_nth(site, nth, max_fires);
    return ScopedFault(std::move(site));
  }
  [[nodiscard]] static ScopedFault probability(
      std::string site, double p,
      std::uint64_t max_fires = FaultInjector::kUnlimited) {
    FaultInjector::global().arm_probability(site, p, max_fires);
    return ScopedFault(std::move(site));
  }

  ScopedFault(ScopedFault&& other) noexcept : site_(std::move(other.site_)) {
    other.site_.clear();
  }
  ScopedFault& operator=(ScopedFault&&) = delete;
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

  ~ScopedFault() {
    if (!site_.empty()) {
      FaultInjector::global().disarm(site_);
    }
  }

 private:
  explicit ScopedFault(std::string site) : site_(std::move(site)) {}
  std::string site_;
};

}  // namespace horse::util

#define HORSE_FAULT_POINT(site) \
  (::horse::util::FaultInjector::global().should_fire(site))

#else  // !HORSE_FAULT_INJECTION

#define HORSE_FAULT_POINT(site) (false)

#endif  // HORSE_FAULT_INJECTION
