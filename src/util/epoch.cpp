#include "util/epoch.hpp"

#include "util/dcheck.hpp"
#include "util/fault_injection.hpp"
#include "util/yield_point.hpp"

namespace horse::util {

namespace {
// pin() sweeps before the DCHECK decides the slot array is not merely
// contended but wedged. With the capped 64-relax backoff this is on the
// order of seconds of wall time — far beyond any legitimate pin hold
// (a handful of splices), even with sanitizer slowdowns and descheduled
// holders in between.
constexpr std::uint64_t kPinStuckSweeps = std::uint64_t{1} << 26;
}  // namespace

std::size_t EpochReclaimer::pin() noexcept {
  // Claim any idle slot. With kReaderSlots comfortably above the number
  // of threads that ever touch one queue's indexes, the first probe
  // almost always wins. Nothing enforces that bound, though, so full
  // sweeps with no idle slot are accounted (slot_exhaustion_) and backed
  // off rather than spun silently; a sweep count that could only mean
  // every slot has been held for milliseconds trips the DCHECK on test
  // builds instead of presenting as a mystery hang.
  for (std::uint64_t sweeps = 0;; ++sweeps) {
    for (std::size_t i = 0; i < kReaderSlots; ++i) {
      std::uint64_t expected = kIdle;
      if (reader_epochs_[i].value.compare_exchange_strong(
              expected, global_epoch_.load(std::memory_order_acquire),
              std::memory_order_acq_rel)) {
        // Publish-then-verify: if the global moved between our read and
        // our publish, a reclaimer may have scanned the slot before the
        // store landed. Republish until the global holds still.
        HORSE_YIELD_POINT("epoch.pin.publish");
        for (;;) {
          const std::uint64_t current =
              global_epoch_.load(std::memory_order_acquire);
          if (reader_epochs_[i].load(std::memory_order_relaxed) == current) {
            return i;
          }
          reader_epochs_[i].store(current, std::memory_order_seq_cst);
        }
      }
    }
    // Every slot occupied: more simultaneous readers than kReaderSlots.
    if (sweeps == 0) {
      slot_exhaustion_.fetch_add(1, std::memory_order_relaxed);
    }
    HORSE_DCHECK(sweeps < kPinStuckSweeps,
                 "epoch: all reader slots pinned for the whole spin "
                 "budget — more concurrent readers than kReaderSlots?");
    HORSE_YIELD_POINT("epoch.pin.exhausted");
    const std::uint64_t backoff = sweeps < 6 ? (std::uint64_t{1} << sweeps) : 64;
    for (std::uint64_t b = 0; b < backoff; ++b) {
      cpu_relax();
    }
  }
}

void EpochReclaimer::unpin(std::size_t slot) noexcept {
  reader_epochs_[slot].store(kIdle, std::memory_order_release);
}

void EpochReclaimer::retire(EpochRetireNode* node) noexcept {
  const std::uint64_t epoch = global_epoch_.load(std::memory_order_acquire);
  std::atomic<EpochRetireNode*>& bucket = buckets_[epoch % kBuckets];
  HORSE_YIELD_POINT("epoch.retire.push");
  node->next = bucket.load(std::memory_order_relaxed);
  while (!bucket.compare_exchange_weak(node->next, node,
                                       std::memory_order_release,
                                       std::memory_order_relaxed)) {
  }
  retired_.fetch_add(1, std::memory_order_relaxed);
}

std::size_t EpochReclaimer::try_reclaim() noexcept {
  if (!reclaim_lock_.try_lock()) return 0;  // another reclaimer is at it
  const std::uint64_t epoch = global_epoch_.load(std::memory_order_acquire);

  // The advance is legal only if every active reader is pinned at exactly
  // the current epoch — a reader still at epoch-1 may hold nodes retired
  // two buckets back, which are precisely what we are about to free.
  // The fault models a reader parked mid-epoch (e.g. a descheduled resume
  // thread): the advance must be declined, leaving the garbage pending.
  bool stalled_reader = HORSE_FAULT_POINT("sched.epoch.stall");
  for (std::size_t i = 0; i < kReaderSlots && !stalled_reader; ++i) {
    HORSE_YIELD_POINT("epoch.reclaim.scan");
    const std::uint64_t seen = reader_epochs_[i].load(std::memory_order_seq_cst);
    if (seen != kIdle && seen != epoch) stalled_reader = true;
  }
  if (stalled_reader) {
    reclaim_lock_.unlock();
    return 0;
  }

  // Grab the expired bucket (epoch-2 retirements) BEFORE publishing the
  // advance: once the global reads epoch+1, new retirements CAS-push onto
  // this same slot index, and they must not be freed this round.
  EpochRetireNode* expired =
      buckets_[(epoch + 1) % kBuckets].exchange(nullptr,
                                                std::memory_order_acquire);
  global_epoch_.store(epoch + 1, std::memory_order_seq_cst);
  reclaim_lock_.unlock();

  return destroy_list(expired);
}

void EpochReclaimer::drain() noexcept {
  LockGuard<Spinlock> guard(reclaim_lock_);
  for (auto& bucket : buckets_) {
    destroy_list(bucket.exchange(nullptr, std::memory_order_acquire));
  }
}

std::size_t EpochReclaimer::destroy_list(EpochRetireNode* head) noexcept {
  std::size_t destroyed = 0;
  while (head != nullptr) {
    EpochRetireNode* next = head->next;
    head->destroy(head->owner);
    ++destroyed;
    head = next;
  }
  if (destroyed > 0) reclaimed_.fetch_add(destroyed, std::memory_order_relaxed);
  return destroyed;
}

}  // namespace horse::util
