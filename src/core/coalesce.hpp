// Load-update coalescing (§4.2).
//
// The vanilla resume applies the PELT enqueue update L(x) = αx + β once
// per vCPU under the run queue's load lock. Applying an affine map n times
// is itself affine:
//
//   Lⁿ(x) = αⁿ·x + β·Σ_{i=0}^{n-1} αⁱ = αⁿ·x + β·(1-αⁿ)/(1-α)
//
// so both factors can be precomputed at *pause* time from the sandbox's
// vCPU count and applied at resume as a single locked multiply-add.
//
// Note: the paper's §4.2.1 prints the series bound as (1-α^{n-1}); the sum
// of the first n powers α⁰..α^{n-1} is (1-αⁿ)/(1-α). We implement the
// mathematically consistent form — it is the one that matches n iterative
// applications exactly, which the equivalence tests verify.
#pragma once

#include <cmath>
#include <cstdint>

#include "sched/pelt.hpp"
#include "vmm/sandbox.hpp"

namespace horse::core {

class LoadCoalescer {
 public:
  explicit LoadCoalescer(sched::PeltParams params = {}) : tracker_(params) {}

  [[nodiscard]] const sched::PeltLoadTracker& tracker() const noexcept {
    return tracker_;
  }

  /// Pause-time precomputation (§4.2.2): αⁿ and the geometric-series term
  /// for n = the sandbox's vCPU count, stored on the sandbox.
  [[nodiscard]] vmm::CoalescePrecompute precompute(std::uint32_t n) const noexcept {
    vmm::CoalescePrecompute out;
    const double alpha = tracker_.params().alpha;
    out.alpha_n = std::pow(alpha, static_cast<double>(n));
    out.beta_geo_sum =
        tracker_.params().beta * (1.0 - out.alpha_n) / (1.0 - alpha);
    out.valid = true;
    return out;
  }

  /// Resume-time application given a precompute; pure function used by
  /// tests. Production code applies it through
  /// RunQueue::apply_precomputed_load() under the load lock.
  [[nodiscard]] static double apply(const vmm::CoalescePrecompute& pre,
                                    double load) noexcept {
    return pre.alpha_n * load + pre.beta_geo_sum;
  }

 private:
  sched::PeltLoadTracker tracker_;
};

}  // namespace horse::core
