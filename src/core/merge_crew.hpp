// Execution of the 𝒫²𝒮ℳ splice set.
//
// Algorithm 1 of the paper assigns one thread per posA key, each doing two
// pointer rewrites. Inside a hypervisor those "threads" are per-CPU
// workers signalled by IPI; in user space, spawning a std::thread per
// resume (~20 µs) would be three orders of magnitude more expensive than
// the work itself. MergeCrew therefore keeps a fixed set of pre-armed
// workers that spin-wait on a generation counter while armed — dispatch is
// one atomic store, completion is observed through per-worker done flags.
//
// A sequential executor is also provided: on machines with few cores (or
// when the splice count is small) issuing the two writes per run from the
// resuming thread is faster than any cross-core signalling. HorseConfig
// selects the mode; both are semantically identical and tested as such.
#pragma once

#include <atomic>
#include <cstddef>
#include <span>
#include <thread>
#include <vector>

#include "util/align.hpp"
#include "util/intrusive_list.hpp"
#include "util/yield_point.hpp"

namespace horse::core {

/// One splice: link chain [head..tail] right after `anchor`.
/// Field-level disjointness across tasks (guaranteed by 𝒫²𝒮ℳ's
/// construction: distinct anchors, runs partition A) makes the set safe to
/// execute concurrently without locks.
struct SpliceTask {
  util::ListHook* anchor = nullptr;
  util::ListHook* head = nullptr;
  util::ListHook* tail = nullptr;
};

/// Execute one splice: the two boundary rewrites of Algorithm 1 (four
/// pointer stores for a doubly-linked queue).
///
/// The HORSE_YIELD_POINT markers expose every individual load/store to the
/// deterministic interleaving explorer (tests/harness/): under
/// -DHORSE_SCHED_TEST=ON a seeded scheduler can suspend a splicing thread
/// between any two of these operations, which is exactly the granularity
/// at which the paper's field-disjointness argument must hold. In normal
/// builds the markers compile to nothing.
inline void execute_splice(const SpliceTask& task) noexcept {
  HORSE_YIELD_POINT("splice.read_after");
  util::ListHook* after = task.anchor->next;
  HORSE_YIELD_POINT("splice.set_anchor_next");
  task.anchor->next = task.head;
  HORSE_YIELD_POINT("splice.set_head_prev");
  task.head->prev = task.anchor;
  HORSE_YIELD_POINT("splice.set_tail_next");
  task.tail->next = after;
  HORSE_YIELD_POINT("splice.set_after_prev");
  after->prev = task.tail;
  HORSE_YIELD_POINT("splice.done");
}

class MergeExecutor {
 public:
  virtual ~MergeExecutor() = default;
  /// Execute every task; returns when all splices are globally visible.
  virtual void execute(std::span<const SpliceTask> tasks) = 0;
};

/// Runs the splices from the calling thread. O(#runs) with a ~1 ns
/// constant; the right choice when #runs is small or cores are scarce.
class SequentialMergeExecutor final : public MergeExecutor {
 public:
  void execute(std::span<const SpliceTask> tasks) override {
    for (const SpliceTask& task : tasks) {
      execute_splice(task);
    }
  }
};

/// Pre-armed parallel crew. Workers spin while armed (call arm() before a
/// resume burst, disarm() after — armed workers burn their cores, exactly
/// like the high-priority merge threads in §4.1.3 preempt whatever runs
/// on the target queue's CPUs). While disarmed, workers block cheaply.
class ParallelMergeCrew final : public MergeExecutor {
 public:
  explicit ParallelMergeCrew(std::size_t num_workers);
  ~ParallelMergeCrew() override;

  ParallelMergeCrew(const ParallelMergeCrew&) = delete;
  ParallelMergeCrew& operator=(const ParallelMergeCrew&) = delete;

  void arm() noexcept;
  void disarm() noexcept;
  [[nodiscard]] bool armed() const noexcept {
    return armed_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Tasks beyond the crew size are chunked across workers. Blocks until
  /// every splice has completed. Works whether armed (spin dispatch) or
  /// not (arms temporarily).
  void execute(std::span<const SpliceTask> tasks) override;

 private:
  struct alignas(util::kCacheLineSize) WorkerSlot {
    std::atomic<std::uint64_t> generation{0};
    std::atomic<std::uint64_t> completed{0};
    const SpliceTask* tasks = nullptr;
    std::size_t count = 0;
  };

  void worker_loop(std::size_t index, std::stop_token stop);

  std::vector<WorkerSlot> slots_;
  std::atomic<bool> armed_{false};
  std::atomic<bool> shutdown_{false};
  std::vector<std::jthread> workers_;
};

}  // namespace horse::core
