// Execution of the 𝒫²𝒮ℳ splice set.
//
// Algorithm 1 of the paper assigns one thread per posA key, each doing two
// pointer rewrites. Inside a hypervisor those "threads" are per-CPU
// workers signalled by IPI; in user space, spawning a std::thread per
// resume (~20 µs) would be three orders of magnitude more expensive than
// the work itself. MergeCrew therefore keeps a fixed set of pre-armed
// workers that spin-wait on a generation counter while armed — dispatch is
// one atomic store, completion is observed through per-worker done flags.
//
// A sequential executor is also provided: on machines with few cores (or
// when the splice count is small) issuing the two writes per run from the
// resuming thread is faster than any cross-core signalling. HorseConfig
// selects the mode; both are semantically identical and tested as such.
//
// Degradation ladder (this file's rung): a worker that stalls or dies
// between dispatch and completion would otherwise wedge the resume thread
// in the done-flag spin forever. The dispatcher therefore runs a watchdog
// over the wait: when a worker misses its deadline the dispatcher *steals*
// the chunk — arbitrated through a per-slot `claimed` CAS so the splice is
// executed exactly once — runs it inline (sequential demotion), and
// quarantines + respawns the offending worker. If every slot is
// quarantined (respawn budget exhausted) the crew demotes itself to a full
// sequential executor. Every event is counted in MergeCrewStats.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "util/align.hpp"
#include "util/intrusive_list.hpp"
#include "util/time.hpp"
#include "util/yield_point.hpp"

namespace horse::core {

/// One splice: link chain [head..tail] right after `anchor`.
/// Field-level disjointness across tasks (guaranteed by 𝒫²𝒮ℳ's
/// construction: distinct anchors, runs partition A) makes the set safe to
/// execute concurrently without locks.
struct SpliceTask {
  util::ListHook* anchor = nullptr;
  util::ListHook* head = nullptr;
  util::ListHook* tail = nullptr;
};

/// Execute one splice: the two boundary rewrites of Algorithm 1 (four
/// pointer stores for a doubly-linked queue).
///
/// The HORSE_YIELD_POINT markers expose every individual load/store to the
/// deterministic interleaving explorer (tests/harness/): under
/// -DHORSE_SCHED_TEST=ON a seeded scheduler can suspend a splicing thread
/// between any two of these operations, which is exactly the granularity
/// at which the paper's field-disjointness argument must hold. In normal
/// builds the markers compile to nothing.
inline void execute_splice(const SpliceTask& task) noexcept {
  HORSE_YIELD_POINT("splice.read_after");
  util::ListHook* after = task.anchor->next;
  HORSE_YIELD_POINT("splice.set_anchor_next");
  task.anchor->next = task.head;
  HORSE_YIELD_POINT("splice.set_head_prev");
  task.head->prev = task.anchor;
  HORSE_YIELD_POINT("splice.set_tail_next");
  task.tail->next = after;
  HORSE_YIELD_POINT("splice.set_after_prev");
  after->prev = task.tail;
  HORSE_YIELD_POINT("splice.done");
}

class MergeExecutor {
 public:
  virtual ~MergeExecutor() = default;
  /// Execute every task; returns when all splices are globally visible.
  virtual void execute(std::span<const SpliceTask> tasks) = 0;
};

/// Runs the splices from the calling thread. O(#runs) with a ~1 ns
/// constant; the right choice when #runs is small or cores are scarce.
class SequentialMergeExecutor final : public MergeExecutor {
 public:
  void execute(std::span<const SpliceTask> tasks) override {
    for (const SpliceTask& task : tasks) {
      execute_splice(task);
    }
  }
};

/// Counters for the crew's degradation rungs. Monotonic over the crew's
/// lifetime; snapshot via ParallelMergeCrew::stats().
struct MergeCrewStats {
  /// Chunks the dispatcher's watchdog stole from a stalled/dead worker and
  /// executed inline (sequential demotion of that chunk).
  std::uint64_t watchdog_steals = 0;
  /// Workers pulled from rotation after missing a deadline.
  std::uint64_t workers_quarantined = 0;
  /// Replacement workers spawned for quarantined slots.
  std::uint64_t workers_respawned = 0;
  /// Dispatches that ran entirely inline because no healthy worker was
  /// left (respawn budget exhausted on every slot).
  std::uint64_t full_sequential_fallbacks = 0;
};

/// Pre-armed parallel crew. Workers spin while armed (call arm() before a
/// resume burst, disarm() after — armed workers burn their cores, exactly
/// like the high-priority merge threads in §4.1.3 preempt whatever runs
/// on the target queue's CPUs). While disarmed, workers block cheaply.
class ParallelMergeCrew final : public MergeExecutor {
 public:
  /// Dispatcher-side deadline per dispatched chunk before the watchdog
  /// steals it. Generous: real chunks complete in hundreds of nanoseconds,
  /// so a missed deadline means the worker is preempted-forever, wedged,
  /// or dead — not merely slow. 0 disables the watchdog (wait forever).
  static constexpr util::Nanos kDefaultWatchdogTimeout =
      250 * util::kMillisecond;

  explicit ParallelMergeCrew(std::size_t num_workers,
                             util::Nanos watchdog_timeout =
                                 kDefaultWatchdogTimeout);
  ~ParallelMergeCrew() override;

  ParallelMergeCrew(const ParallelMergeCrew&) = delete;
  ParallelMergeCrew& operator=(const ParallelMergeCrew&) = delete;

  void arm() noexcept;
  void disarm() noexcept;
  [[nodiscard]] bool armed() const noexcept {
    return armed_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::size_t size() const noexcept { return slots_.size(); }

  /// Workers that are currently in rotation (not quarantined).
  [[nodiscard]] std::size_t healthy_workers() const noexcept;

  /// Quarantined workers are normally replaced immediately. Tests (and
  /// deployments that prefer fail-static behaviour) can bound the number
  /// of respawns per slot; once exhausted the slot stays quarantined and
  /// the dispatcher stops routing work to it. 0 = never respawn.
  void set_max_respawns_per_slot(std::uint64_t max_respawns) noexcept {
    max_respawns_per_slot_.store(max_respawns, std::memory_order_release);
  }

  [[nodiscard]] MergeCrewStats stats() const noexcept;

  /// Tasks beyond the crew size are chunked across workers. Blocks until
  /// every splice has completed. Works whether armed (spin dispatch) or
  /// not (arms temporarily). Never blocks forever while the watchdog is
  /// enabled: chunks whose worker misses the deadline are stolen and run
  /// inline.
  void execute(std::span<const SpliceTask> tasks) override;

 private:
  struct alignas(util::kCacheLineSize) WorkerSlot {
    /// Dispatch sequence number; bumped (release) to publish tasks/count.
    std::atomic<std::uint64_t> generation{0};
    /// Claim token: executing generation g requires CAS g-1 → g. The
    /// worker and the watchdog race on this CAS; the loser backs off, so
    /// each chunk is spliced exactly once.
    std::atomic<std::uint64_t> claimed{0};
    /// Completion flag: matches generation when the chunk is done.
    std::atomic<std::uint64_t> completed{0};
    /// Bumped on respawn; a worker observing an epoch other than its own
    /// has been superseded and exits.
    std::atomic<std::uint64_t> epoch{0};
    /// True while the slot has no live worker (dispatch skips it).
    std::atomic<bool> quarantined{false};
    /// Respawns consumed by this slot (vs. max_respawns_per_slot_).
    std::atomic<std::uint64_t> respawns{0};
    const SpliceTask* tasks = nullptr;
    std::size_t count = 0;
  };

  void worker_loop(std::size_t index, std::uint64_t my_epoch,
                   std::stop_token stop);
  void spawn_worker(std::size_t index);
  /// Pull the slot's worker from rotation and (budget permitting) spawn a
  /// replacement at a new epoch. The old jthread is parked in the
  /// graveyard and joined at destruction — it may still be mid-stall.
  void quarantine_and_respawn(std::size_t index);

  std::vector<WorkerSlot> slots_;
  const util::Nanos watchdog_timeout_;
  std::atomic<bool> armed_{false};
  std::atomic<bool> shutdown_{false};
  std::atomic<std::uint64_t> max_respawns_per_slot_{
      ~std::uint64_t{0}};  // unlimited

  // Stats as atomics so workers/watchdog update without a lock.
  std::atomic<std::uint64_t> watchdog_steals_{0};
  std::atomic<std::uint64_t> workers_quarantined_{0};
  std::atomic<std::uint64_t> workers_respawned_{0};
  std::atomic<std::uint64_t> full_sequential_fallbacks_{0};

  mutable std::mutex respawn_mutex_;  // guards workers_ / graveyard_
  std::vector<std::jthread> workers_;
  std::vector<std::jthread> graveyard_;  // superseded workers, joined in dtor
};

}  // namespace horse::core
