#include "core/adaptive_ull.hpp"

namespace horse::core {

std::size_t AdaptiveUllScaler::observe(std::uint64_t triggers,
                                       util::Nanos window) {
  if (window <= 0) {
    return manager_.ull_cpus().size();
  }
  const double rate = static_cast<double>(triggers) * 1e9 /
                      static_cast<double>(window);
  if (!seeded_) {
    ewma_rate_ = rate;
    seeded_ = true;
  } else {
    ewma_rate_ = params_.ewma_alpha * rate +
                 (1.0 - params_.ewma_alpha) * ewma_rate_;
  }

  const auto queues = manager_.ull_cpus().size();
  const double capacity =
      static_cast<double>(queues) * params_.triggers_per_queue_per_sec;

  if (ewma_rate_ > params_.grow_threshold * capacity &&
      queues < params_.max_queues) {
    if (manager_.grow().is_ok()) {
      ++grows_;
    }
  } else if (queues > 1) {
    const double shrunk_capacity = static_cast<double>(queues - 1) *
                                   params_.triggers_per_queue_per_sec;
    if (ewma_rate_ < params_.shrink_threshold * shrunk_capacity) {
      if (manager_.shrink().is_ok()) {
        ++shrinks_;
      }
    }
  }
  return manager_.ull_cpus().size();
}

}  // namespace horse::core
