#include "core/horse_resume.hpp"

#include <utility>

namespace horse::core {

HorseResumeEngine::HorseResumeEngine(sched::CpuTopology& topology,
                                     vmm::VmmProfile profile,
                                     HorseConfig config, HorseFeatures features)
    : vmm::ResumeEngine(topology, std::move(profile)),
      config_(config),
      features_(features),
      ull_(topology, config),
      coalescer_(topology.queue(0).pelt().params()) {
  config_.validate();
  if (config_.merge_mode == MergeMode::kParallel) {
    auto crew = std::make_unique<ParallelMergeCrew>(config_.effective_crew_size());
    crew_ = crew.get();
    executor_ = std::move(crew);
  } else {
    executor_ = std::make_unique<SequentialMergeExecutor>();
  }
}

void HorseResumeEngine::arm_crew() noexcept {
  if (crew_ != nullptr) {
    crew_->arm();
  }
}

void HorseResumeEngine::disarm_crew() noexcept {
  if (crew_ != nullptr) {
    crew_->disarm();
  }
}

util::Status HorseResumeEngine::pause_locked(vmm::Sandbox& sandbox) {
  // Vanilla park first: dequeue vCPUs, build the credit-sorted merge_vcpus.
  if (util::Status status = ResumeEngine::pause_locked(sandbox);
      !status.is_ok()) {
    return status;
  }
  if (!sandbox.config().ull) {
    return util::Status::ok();
  }

  // §4.1.3: the target ull_runqueue is chosen when pausing, balancing by
  // the number of paused sandboxes per reserved queue.
  const sched::CpuId cpu = ull_.assign(sandbox);
  for (const auto& vcpu : sandbox.vcpus()) {
    vcpu->last_cpu = cpu;
  }

  if (features_.use_coalescing) {
    // §4.2.2: precompute the coalescing factors from the vCPU count.
    sandbox.coalesce() = coalescer_.precompute(sandbox.num_vcpus());
  }
  if (features_.use_p2sm) {
    return ull_.track(sandbox);
  }
  return util::Status::ok();
}

util::Status HorseResumeEngine::hotplug_vcpu_locked(vmm::Sandbox& sandbox) {
  if (!sandbox.config().ull || !features_.use_p2sm) {
    if (util::Status status = ResumeEngine::hotplug_vcpu_locked(sandbox);
        !status.is_ok()) {
      return status;
    }
  } else {
    P2smIndex* index = ull_.index_of(sandbox.id());
    const auto assignment = ull_.assignment(sandbox.id());
    if (index == nullptr || !assignment) {
      return {util::StatusCode::kFailedPrecondition,
              "hotplug: sandbox not tracked by the ull manager"};
    }
    auto vcpu = sandbox.add_vcpu();
    if (!vcpu) {
      return vcpu.status();
    }
    sched::RunQueue& queue = topology_.queue(*assignment);
    (*vcpu)->last_cpu = *assignment;
    util::LockGuard guard(queue.lock());
    if (!index->fresh(queue)) {
      index->rebuild(sandbox.merge_vcpus(), queue);
    }
    // §4.1.1 incremental insert: position search in A plus a run update.
    if (util::Status status =
            index->insert_into_a(sandbox.merge_vcpus(), **vcpu, queue);
        !status.is_ok()) {
      return status;
    }
  }
  if (features_.use_coalescing && sandbox.config().ull) {
    sandbox.coalesce() = coalescer_.precompute(sandbox.num_vcpus());
  }
  return util::Status::ok();
}

util::Status HorseResumeEngine::unplug_vcpu_locked(vmm::Sandbox& sandbox) {
  if (!sandbox.config().ull || !features_.use_p2sm) {
    if (util::Status status = ResumeEngine::unplug_vcpu_locked(sandbox);
        !status.is_ok()) {
      return status;
    }
  } else {
    if (sandbox.state() != vmm::SandboxState::kPaused) {
      return {util::StatusCode::kFailedPrecondition,
              "unplug: sandbox must be paused"};
    }
    if (sandbox.num_vcpus() <= 1) {
      return {util::StatusCode::kFailedPrecondition,
              "unplug: at least one vCPU must remain"};
    }
    P2smIndex* index = ull_.index_of(sandbox.id());
    if (index == nullptr) {
      return {util::StatusCode::kFailedPrecondition,
              "unplug: sandbox not tracked by the ull manager"};
    }
    sched::Vcpu& victim = sandbox.vcpu(sandbox.num_vcpus() - 1);
    // §4.1.1 incremental delete: O(m) run walk, unlinks from A.
    if (util::Status status =
            index->remove_from_a(sandbox.merge_vcpus(), victim);
        !status.is_ok()) {
      return status;
    }
    if (util::Status status = sandbox.remove_last_vcpu(); !status.is_ok()) {
      return status;
    }
  }
  if (features_.use_coalescing && sandbox.config().ull) {
    sandbox.coalesce() = coalescer_.precompute(sandbox.num_vcpus());
  }
  return util::Status::ok();
}

util::Status HorseResumeEngine::resume_fallback_merge(
    vmm::Sandbox& sandbox, sched::CpuId cpu, vmm::ResumeBreakdown& breakdown) {
  // coal-only ablation: step ④ stays the vanilla per-vCPU sorted walk, but
  // onto the single assigned queue so the coalesced step-⑤ update is exact.
  util::Stopwatch watch;
  sched::RunQueue& queue = topology_.queue(cpu);
  while (!sandbox.merge_vcpus().empty()) {
    sched::Vcpu& vcpu = sandbox.merge_vcpus().pop_front();
    util::LockGuard guard(queue.lock());
    queue.insert_sorted(vcpu);
  }
  breakdown.merge += watch.elapsed() +
                     static_cast<util::Nanos>(sandbox.num_vcpus()) *
                         profile_.resume_per_vcpu_tax;
  return util::Status::ok();
}

util::Status HorseResumeEngine::resume(vmm::Sandbox& sandbox,
                                       vmm::ResumeBreakdown* breakdown) {
  if (!sandbox.config().ull) {
    return ResumeEngine::resume(sandbox, breakdown);
  }

  vmm::ResumeBreakdown local;
  vmm::ResumeBreakdown& bd = breakdown != nullptr ? *breakdown : local;
  bd = {};

  if (util::Status status = run_prologue(sandbox, bd); !status.is_ok()) {
    return status;
  }

  const auto assignment = ull_.assignment(sandbox.id());
  if (!assignment) {
    resume_lock_.unlock();
    return assignment.status();
  }
  const sched::CpuId cpu = *assignment;
  sched::RunQueue& queue = topology_.queue(cpu);
  const std::uint32_t n = sandbox.num_vcpus();

  // --- step ④: one 𝒫²𝒮ℳ merge (or the coal-only fallback) ---------------
  if (features_.use_p2sm) {
    util::Stopwatch watch;
    P2smIndex* index = ull_.index_of(sandbox.id());
    util::LockGuard guard(queue.lock());
    if (index == nullptr || !index->fresh(queue)) {
      // Stale-index fallback: rebuild inline. This charges the rebuild to
      // the resume (honest accounting); UllRunQueueManager::refresh() run
      // off the critical path keeps this branch cold.
      if (index == nullptr) {
        resume_lock_.unlock();
        return {util::StatusCode::kFailedPrecondition,
                "horse: sandbox not tracked (was pause() skipped?)"};
      }
      index->rebuild(sandbox.merge_vcpus(), queue);
    }
    if (util::Status status =
            index->merge(sandbox.merge_vcpus(), queue, *executor_);
        !status.is_ok()) {
      resume_lock_.unlock();
      return status;
    }
    // Per-vCPU byte writes so the scheduler-facing state is consistent.
    // (In the kernel patch the equivalent bits live in the vCPU's
    // already-touched cache lines; ~2 ns each here, bounded by 36 vCPUs.)
    for (const auto& vcpu : sandbox.vcpus()) {
      vcpu->state = sched::VcpuState::kRunnable;
      vcpu->last_cpu = cpu;
    }
    bd.merge = watch.elapsed() + profile_.resume_per_vcpu_tax;
  } else {
    if (util::Status status = resume_fallback_merge(sandbox, cpu, bd);
        !status.is_ok()) {
      resume_lock_.unlock();
      return status;
    }
  }

  // --- step ⑤: load update, coalesced or iterative ------------------------
  {
    util::Stopwatch watch;
    if (features_.use_coalescing) {
      const vmm::CoalescePrecompute& pre = sandbox.coalesce();
      if (pre.valid) {
        queue.apply_precomputed_load(pre.alpha_n, pre.beta_geo_sum);
      } else {
        queue.update_load_coalesced(n);
      }
    } else {
      // ppsm-only ablation: n iterative lock round-trips, as vanilla.
      for (std::uint32_t i = 0; i < n; ++i) {
        queue.update_load_enqueue();
      }
    }
    bd.load_update = watch.elapsed();
  }

  // Manager bookkeeping happens BEFORE the epilogue drops resume_lock_:
  // untrack() mutates the ull manager's maps, which have no lock of their
  // own — pause()/resume() on other threads read and write them under
  // resume_lock_, so erasing after the unlock is a data race on the
  // unordered_map buckets (caught by the tsan preset).
  sandbox.coalesce().valid = false;
  ull_.untrack(sandbox.id());

  run_epilogue(sandbox, bd);
  return util::Status::ok();
}

}  // namespace horse::core
