#include "core/horse_resume.hpp"

#include <optional>
#include <utility>

#include "core/splice_calibration.hpp"
#include "util/cycle_clock.hpp"
#include "util/epoch.hpp"
#include "util/fault_injection.hpp"

namespace horse::core {

HorseResumeEngine::HorseResumeEngine(sched::CpuTopology& topology,
                                     vmm::VmmProfile profile,
                                     HorseConfig config, HorseFeatures features)
    : vmm::ResumeEngine(topology, std::move(profile)),
      config_(config),
      features_(features),
      owned_ull_(std::make_unique<UllRunQueueManager>(topology, config)),
      ull_(owned_ull_.get()),
      coalescer_(topology.queue(0).pelt().params()) {
  config_.validate();
  cycle_timing_ = config_.cycle_timing;
  // Standalone shape: this engine serves every reserved queue.
  for (const sched::CpuId cpu : ull_->ull_cpus()) {
    ull_->bind_engine(cpu, this);
  }
  if (config_.merge_mode == MergeMode::kParallel) {
    auto crew = std::make_unique<ParallelMergeCrew>(
        config_.effective_crew_size(), config_.crew_watchdog_timeout);
    crew_ = crew.get();
    executor_ = std::move(crew);
  } else {
    executor_ = std::make_unique<SequentialMergeExecutor>();
  }
  inline_splice_threshold_ = resolve_inline_splice_threshold();
}

HorseResumeEngine::HorseResumeEngine(sched::CpuTopology& topology,
                                     vmm::VmmProfile profile,
                                     UllRunQueueManager& shared_manager,
                                     sched::CpuId bound_cpu, HorseConfig config,
                                     HorseFeatures features)
    : vmm::ResumeEngine(topology, std::move(profile)),
      config_(config),
      features_(features),
      ull_(&shared_manager),
      coalescer_(topology.queue(0).pelt().params()) {
  config_.validate();
  cycle_timing_ = config_.cycle_timing;
  ull_->bind_engine(bound_cpu, this);
  if (config_.merge_mode == MergeMode::kParallel) {
    auto crew = std::make_unique<ParallelMergeCrew>(
        config_.effective_crew_size(), config_.crew_watchdog_timeout);
    crew_ = crew.get();
    executor_ = std::move(crew);
  } else {
    executor_ = std::make_unique<SequentialMergeExecutor>();
  }
  inline_splice_threshold_ = resolve_inline_splice_threshold();
}

HorseResumeEngine::~HorseResumeEngine() { ull_->unbind_engine(this); }

std::uint32_t HorseResumeEngine::resolve_inline_splice_threshold() {
  if (config_.inline_splice_max_runs != HorseConfig::kInlineSpliceAuto) {
    return config_.inline_splice_max_runs;
  }
  if (crew_ == nullptr) {
    return 0;  // sequential mode: the main executor is already inline
  }
  return calibrate_inline_splice(*crew_).crossover_runs;
}

void HorseResumeEngine::arm_crew() noexcept {
  if (crew_ != nullptr) {
    crew_->arm();
  }
}

void HorseResumeEngine::disarm_crew() noexcept {
  if (crew_ != nullptr) {
    crew_->disarm();
  }
}

ResumeCycleStats HorseResumeEngine::cycle_stats() const {
  util::LockGuard guard(cycle_stats_lock_);
  return cycle_stats_;
}

ResumeDegradationStats HorseResumeEngine::degradation_stats() const noexcept {
  ResumeDegradationStats out;
  out.fallback_merges = fallback_merges_.load(std::memory_order_acquire);
  out.stale_index_fallbacks =
      stale_index_fallbacks_.load(std::memory_order_acquire);
  out.poisoned_index_fallbacks =
      poisoned_index_fallbacks_.load(std::memory_order_acquire);
  out.merge_error_fallbacks =
      merge_error_fallbacks_.load(std::memory_order_acquire);
  out.deferred_refreshes = deferred_refreshes_.load(std::memory_order_acquire);
  return out;
}

util::Status HorseResumeEngine::pause_locked(vmm::Sandbox& sandbox) {
  // Vanilla park first: dequeue vCPUs, build the credit-sorted merge_vcpus.
  HORSE_RETURN_IF_ERROR(ResumeEngine::pause_locked(sandbox));
  if (!sandbox.config().ull) {
    return util::Status::ok();
  }

  // §4.1.3: the target ull_runqueue is chosen when pausing, balancing by
  // the number of paused sandboxes per reserved queue.
  const sched::CpuId cpu = ull_->assign(sandbox);
  for (const auto& vcpu : sandbox.vcpus()) {
    vcpu->last_cpu = cpu;
  }

  if (features_.use_coalescing) {
    // §4.2.2: precompute the coalescing factors from the vCPU count.
    sandbox.coalesce() = coalescer_.precompute(sandbox.num_vcpus());
  }
  if (features_.use_p2sm) {
    return ull_->track(sandbox);
  }
  return util::Status::ok();
}

util::Status HorseResumeEngine::hotplug_vcpu_locked(vmm::Sandbox& sandbox) {
  if (!sandbox.config().ull || !features_.use_p2sm) {
    HORSE_RETURN_IF_ERROR(ResumeEngine::hotplug_vcpu_locked(sandbox));
  } else {
    P2smIndex* index = ull_->index_of(sandbox.id());
    const auto assignment = ull_->assignment(sandbox.id());
    if (index == nullptr || !assignment) {
      return {util::StatusCode::kFailedPrecondition,
              "hotplug: sandbox not tracked by the ull manager"};
    }
    auto vcpu = sandbox.add_vcpu();
    if (!vcpu) {
      return vcpu.status();
    }
    sched::RunQueue& queue = topology_.queue(*assignment);
    (*vcpu)->last_cpu = *assignment;
    util::LockGuard guard(queue.lock());
    if (!index->fresh(queue) || index->poisoned()) {
      index->rebuild(sandbox.merge_vcpus(), queue);
    }
    // §4.1.1 incremental insert: position search in A plus a run update.
    // On failure, roll the added vCPU back out so the sandbox and the
    // index stay consistent (the vCPU was never linked into merge_vcpus).
    if (util::Status status =
            index->insert_into_a(sandbox.merge_vcpus(), **vcpu, queue);
        !status.is_ok()) {
      if (util::Status rollback = sandbox.remove_last_vcpu();
          !rollback.is_ok()) {
        return {util::StatusCode::kInternal,
                "hotplug: insert failed (" + status.to_report() +
                    ") and rollback failed (" + rollback.to_report() + ")"};
      }
      return status;
    }
  }
  if (features_.use_coalescing && sandbox.config().ull) {
    sandbox.coalesce() = coalescer_.precompute(sandbox.num_vcpus());
  }
  return util::Status::ok();
}

util::Status HorseResumeEngine::unplug_vcpu_locked(vmm::Sandbox& sandbox) {
  if (!sandbox.config().ull || !features_.use_p2sm) {
    HORSE_RETURN_IF_ERROR(ResumeEngine::unplug_vcpu_locked(sandbox));
  } else {
    if (sandbox.state() != vmm::SandboxState::kPaused) {
      return {util::StatusCode::kFailedPrecondition,
              "unplug: sandbox must be paused"};
    }
    if (sandbox.num_vcpus() <= 1) {
      return {util::StatusCode::kFailedPrecondition,
              "unplug: at least one vCPU must remain"};
    }
    P2smIndex* index = ull_->index_of(sandbox.id());
    if (index == nullptr) {
      return {util::StatusCode::kFailedPrecondition,
              "unplug: sandbox not tracked by the ull manager"};
    }
    sched::Vcpu& victim = sandbox.vcpu(sandbox.num_vcpus() - 1);
    // §4.1.1 incremental delete: O(m) run walk, unlinks from A.
    HORSE_RETURN_IF_ERROR(index->remove_from_a(sandbox.merge_vcpus(), victim));
    HORSE_RETURN_IF_ERROR(sandbox.remove_last_vcpu());
  }
  if (features_.use_coalescing && sandbox.config().ull) {
    sandbox.coalesce() = coalescer_.precompute(sandbox.num_vcpus());
  }
  return util::Status::ok();
}

util::Status HorseResumeEngine::resume_fallback_merge(
    vmm::Sandbox& sandbox, sched::CpuId cpu, vmm::ResumeBreakdown& breakdown) {
  // Vanilla step ④ onto the assigned queue: a per-vCPU sorted walk instead
  // of the O(1) splice. Used by the coal-only ablation AND as the
  // degradation rung when the 𝒫²𝒮ℳ index cannot be trusted — the queue
  // stays sorted and the single-queue placement keeps the coalesced
  // step-⑤ update exact in both cases.
  vmm::StageTimer watch(cycle_timing_);
  sched::RunQueue& queue = topology_.queue(cpu);
  if (config_.branchless_walk) {
    // One lock hold, one monotone branch-free scan over the whole
    // pre-sorted merge list (RunQueue::merge_sorted is element-equivalent
    // to the per-vCPU loop below and publishes a single journal batch).
    util::LockGuard guard(queue.lock());
    queue.merge_sorted(sandbox.merge_vcpus());
  } else {
    // Scalar baseline arm: n lock round-trips, n O(|queue|) walks.
    while (!sandbox.merge_vcpus().empty()) {
      sched::Vcpu& vcpu = sandbox.merge_vcpus().pop_front();
      util::LockGuard guard(queue.lock());
      queue.insert_sorted(vcpu);
    }
  }
  breakdown.merge += watch.elapsed() +
                     static_cast<util::Nanos>(sandbox.num_vcpus()) *
                         profile_.resume_per_vcpu_tax;
  return util::Status::ok();
}

void HorseResumeEngine::run_deferred_refresh() {
  if (!needs_refresh_.exchange(false, std::memory_order_acq_rel)) {
    return;
  }
  // Outside the timed path, after the epilogue released resume_lock_.
  // Whatever made this resume's index untrustworthy (a foreign queue
  // mutation, injected corruption) likely staled every other index
  // targeting the same queue; rebuild them now so the NEXT resumes take
  // the fast path again. The manager locks itself (and each target queue)
  // since the sharding refactor, so no resume_lock_ re-acquire: the sweep
  // runs concurrently with other engines' resumes.
  ull_->refresh();
  deferred_refreshes_.fetch_add(1, std::memory_order_relaxed);
}

util::Status HorseResumeEngine::resume(vmm::Sandbox& sandbox,
                                       vmm::ResumeBreakdown* breakdown) {
  if (!sandbox.config().ull) {
    return ResumeEngine::resume(sandbox, breakdown);
  }

  vmm::ResumeBreakdown local;
  vmm::ResumeBreakdown& bd = breakdown != nullptr ? *breakdown : local;
  bd = {};

  // Per-stage cycle boundaries (tentpole item 1): five fenced rdtsc reads
  // on the fast path, off when the baseline arm disables cycle_timing or
  // the target has no usable counter.
  const bool cycle_accounting = cycle_timing_ && util::CycleClock::available();
  const std::uint64_t c0 = cycle_accounting ? util::CycleClock::now() : 0;

  HORSE_RETURN_IF_ERROR(run_prologue(sandbox, bd));
  const std::uint64_t c1 = cycle_accounting ? util::CycleClock::now() : 0;

  // ONE manager-lock acquisition for assignment + index (pre-PR-10 code
  // paid two: assignment() here and index_of() inside step ④). The queue's
  // reclamation epoch is pinned INSIDE that hold, while the node is still
  // tracked: a concurrent untrack (rogue destroy racing this resume) can
  // only retire the node after the pin is visible, so the reclaimer
  // cannot free it until the guard unpins. Pinning after lookup() returns
  // would leave a window where maintenance pumps advance the epoch and
  // free the index under step ④.
  std::optional<util::EpochReclaimer::ReadGuard> epoch_pin;
  const auto looked = ull_->lookup(sandbox.id(), &epoch_pin);
  if (!looked) {
    resume_lock_.unlock();
    return looked.status();
  }
  const sched::CpuId cpu = (*looked).cpu;
  sched::RunQueue& queue = topology_.queue(cpu);
  const std::uint32_t n = sandbox.num_vcpus();
  const std::uint64_t c2 = cycle_accounting ? util::CycleClock::now() : 0;

  // --- step ④: one 𝒫²𝒮ℳ merge, degrading to the vanilla sorted walk ------
  if (features_.use_p2sm) {
    vmm::StageTimer watch(cycle_timing_);
    P2smIndex* index = (*looked).index;
    if (index == nullptr) {
      resume_lock_.unlock();
      return {util::StatusCode::kFailedPrecondition,
              "horse: sandbox not tracked (was pause() skipped?)"};
    }

    // Decide fast vs. degraded under the queue lock, then release it: the
    // fallback walk takes the lock per vCPU itself.
    bool fast_path_done = false;
    {
      util::LockGuard guard(queue.lock());
      if (HORSE_FAULT_POINT("horse.resume.stale_index")) {
        // Injected foreign mutation: the index genuinely no longer
        // matches the queue, exactly as if another scheduler path had
        // touched the ull_runqueue after pause.
        index->invalidate();
      }
      const bool poisoned = index->poisoned();
      const bool stale = !poisoned && !index->fresh(queue);
      if (poisoned) {
        poisoned_index_fallbacks_.fetch_add(1, std::memory_order_relaxed);
      } else if (stale) {
        stale_index_fallbacks_.fetch_add(1, std::memory_order_relaxed);
      } else {
        // Adaptive crossover: below the calibrated run count, the crew's
        // cross-core dispatch costs more than the splices — issue them
        // from this thread instead.
        const bool splice_inline =
            crew_ != nullptr &&
            index->run_count() <= inline_splice_threshold_;
        MergeExecutor& chosen =
            splice_inline ? static_cast<MergeExecutor&>(inline_executor_)
                          : *executor_;
        util::Status status =
            index->merge(sandbox.merge_vcpus(), queue, chosen);
        if (status.is_ok()) {
          fast_path_done = true;
          if (splice_inline) {
            inline_splices_.fetch_add(1, std::memory_order_relaxed);
          }
        } else {
          // merge() refuses without mutating A or B, so the degraded walk
          // below still sees the full merge_vcpus list.
          merge_error_fallbacks_.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }

    if (fast_path_done) {
      // Per-vCPU byte writes so the scheduler-facing state is consistent.
      // (In the kernel patch the equivalent bits live in the vCPU's
      // already-touched cache lines; ~2 ns each here, bounded by 36 vCPUs.)
      for (const auto& vcpu : sandbox.vcpus()) {
        vcpu->state = sched::VcpuState::kRunnable;
        vcpu->last_cpu = cpu;
      }
      bd.merge = watch.elapsed() + profile_.resume_per_vcpu_tax;
    } else {
      // Degradation rung: the precomputed index cannot be trusted, but
      // the resume must still succeed — fall back to the vanilla sorted
      // walk (correct at any index state) and schedule the index repair
      // off the hot path. The rebuild is NOT charged to this resume; the
      // old inline-rebuild behaviour hid an O(|A|+|B|) cost in the 150 ns
      // path.
      fallback_merges_.fetch_add(1, std::memory_order_relaxed);
      needs_refresh_.store(true, std::memory_order_release);
      if (util::Status status = resume_fallback_merge(sandbox, cpu, bd);
          !status.is_ok()) {
        resume_lock_.unlock();
        return status;
      }
    }
  } else {
    if (util::Status status = resume_fallback_merge(sandbox, cpu, bd);
        !status.is_ok()) {
      resume_lock_.unlock();
      return status;
    }
  }

  // Step ④ done: the index pointer is dead from here on, so drop the pin
  // before step ⑤ — a long load update must not hold the epoch back.
  epoch_pin.reset();
  const std::uint64_t c3 = cycle_accounting ? util::CycleClock::now() : 0;

  // --- step ⑤: load update, coalesced or iterative ------------------------
  {
    vmm::StageTimer watch(cycle_timing_);
    if (features_.use_coalescing) {
      const vmm::CoalescePrecompute& pre = sandbox.coalesce();
      if (pre.valid) {
        queue.apply_precomputed_load(pre.alpha_n, pre.beta_geo_sum);
      } else {
        queue.update_load_coalesced(n);
      }
    } else {
      // ppsm-only ablation: n iterative lock round-trips, as vanilla.
      for (std::uint32_t i = 0; i < n; ++i) {
        queue.update_load_enqueue();
      }
    }
    bd.load_update = watch.elapsed();
  }

  // Manager bookkeeping happens BEFORE the epilogue drops resume_lock_.
  // The manager is internally locked now, so this is no longer about map
  // races — it preserves the state-machine invariant that a sandbox seen
  // as kRunning by other control-plane paths is never still tracked (its
  // index_of() pointer would dangle once the invoker hands the sandbox to
  // the workload).
  sandbox.coalesce().valid = false;
  ull_->untrack(sandbox.id());

  run_epilogue(sandbox, bd);
  const std::uint64_t c4 = cycle_accounting ? util::CycleClock::now() : 0;

  if (cycle_accounting) {
    // Off the timed path (after c4); the spinlock is a leaf lock held for
    // five adds and one allocation-free histogram record.
    util::LockGuard guard(cycle_stats_lock_);
    ++cycle_stats_.resumes;
    cycle_stats_.prologue_cycles += c1 - c0;
    cycle_stats_.lookup_cycles += c2 - c1;
    cycle_stats_.splice_cycles += c3 - c2;
    cycle_stats_.publish_cycles += c4 - c3;
    cycle_stats_.total_cycles.record(static_cast<util::Nanos>(c4 - c0));
  }

  // Off-hot-path repair for whatever degraded this resume (no-op when the
  // fast path ran). After the epilogue: the caller's measured latency
  // never includes the rebuild sweep.
  run_deferred_refresh();
  return util::Status::ok();
}

}  // namespace horse::core
