// Adaptive ull_runqueue scaling (§4.1.3's extension).
//
// "In the case of a high frequency of uLL workload triggers, we can
// increase the number of ull_runqueue." This controller turns that into a
// policy: an exponentially-weighted trigger-rate estimate drives grow /
// shrink decisions against per-queue capacity targets, with hysteresis so
// the queue count does not flap around a boundary rate.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "core/ull_manager.hpp"
#include "util/time.hpp"

namespace horse::core {

struct AdaptiveUllParams {
  /// Target sustained uLL triggers per second per reserved queue. One
  /// ull_runqueue handles vastly more than any real trigger rate (a
  /// resume is sub-µs); the default keeps tail isolation comfortable.
  double triggers_per_queue_per_sec = 50'000.0;
  /// Grow above this fraction of capacity, shrink below that fraction of
  /// the post-shrink capacity (hysteresis band).
  double grow_threshold = 0.8;
  double shrink_threshold = 0.4;
  /// EWMA smoothing factor per observation window.
  double ewma_alpha = 0.3;
  std::uint32_t max_queues = 8;

  void validate() const {
    if (!(triggers_per_queue_per_sec > 0.0)) {
      throw std::invalid_argument("adaptive ull: bad capacity");
    }
    if (!(grow_threshold > shrink_threshold) || grow_threshold > 1.0 ||
        shrink_threshold < 0.0) {
      throw std::invalid_argument("adaptive ull: thresholds must satisfy "
                                  "0 <= shrink < grow <= 1");
    }
    if (!(ewma_alpha > 0.0) || ewma_alpha > 1.0) {
      throw std::invalid_argument("adaptive ull: alpha in (0,1]");
    }
  }
};

class AdaptiveUllScaler {
 public:
  AdaptiveUllScaler(UllRunQueueManager& manager, AdaptiveUllParams params = {})
      : manager_(manager), params_(params) {
    params_.validate();
  }

  /// Feed one observation window: `triggers` uLL resumes over `window`
  /// nanoseconds. May grow or shrink the reserved set (at most one step
  /// per observation). Returns the resulting queue count.
  std::size_t observe(std::uint64_t triggers, util::Nanos window);

  [[nodiscard]] double rate_estimate() const noexcept { return ewma_rate_; }
  [[nodiscard]] std::uint64_t grows() const noexcept { return grows_; }
  [[nodiscard]] std::uint64_t shrinks() const noexcept { return shrinks_; }

 private:
  UllRunQueueManager& manager_;
  AdaptiveUllParams params_;
  double ewma_rate_ = 0.0;
  bool seeded_ = false;
  std::uint64_t grows_ = 0;
  std::uint64_t shrinks_ = 0;
};

}  // namespace horse::core
