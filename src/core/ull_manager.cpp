#include "core/ull_manager.hpp"

#include <limits>
#include <stdexcept>

#include "util/spinlock.hpp"

namespace horse::core {

namespace {
/// All map/counter mutation happens under this metered guard.
using ManagerLock = metrics::MeteredLock<std::mutex>;
}  // namespace

UllRunQueueManager::UllRunQueueManager(sched::CpuTopology& topology,
                                       const HorseConfig& config)
    : topology_(topology),
      epoch_reclaim_(config.epoch_reclaim),
      branchless_walk_(config.branchless_walk) {
  config.validate();
  if (config.num_ull_runqueues >= topology.num_cpus()) {
    throw std::invalid_argument(
        "UllRunQueueManager: cannot reserve every CPU for uLL");
  }
  const auto n = static_cast<sched::CpuId>(topology.num_cpus());
  for (sched::CpuId i = 0; i < config.num_ull_runqueues; ++i) {
    const sched::CpuId cpu = n - 1 - i;
    topology.reserve_for_ull(cpu);
    ull_cpus_.push_back(cpu);
  }
  occupancy_.assign(ull_cpus_.size(), 0);
}

UllRunQueueManager::~UllRunQueueManager() {
  // Still-tracked nodes are owned by the map; retired ones by the queue
  // reclaimers. Drain the latter too — by the time the manager dies the
  // platform guarantees no resume is in flight, so no reader can be
  // pinned, and leaving garbage for the topology's (later) destruction
  // would just hide leaks from the sanitizer runs.
  for (auto& [id, node] : tracked_) {
    delete node;
  }
  for (const sched::CpuId cpu : ull_cpus_) {
    topology_.queue(cpu).epoch().drain();
  }
}

void UllRunQueueManager::pump_reclaim(sched::CpuId cpu) noexcept {
  topology_.queue(cpu).epoch().try_reclaim();
}

std::size_t& UllRunQueueManager::occupancy_slot(sched::CpuId cpu) {
  for (std::size_t i = 0; i < ull_cpus_.size(); ++i) {
    if (ull_cpus_[i] == cpu) {
      return occupancy_[i];
    }
  }
  throw std::logic_error("ull: occupancy_slot for non-reserved cpu");
}

sched::CpuId UllRunQueueManager::assign(vmm::Sandbox& sandbox) {
  ManagerLock lock(mutex_, meter_);
  // Least-occupied reserved queue, straight from the per-queue counters.
  std::size_t best_slot = 0;
  std::size_t best_count = std::numeric_limits<std::size_t>::max();
  for (std::size_t i = 0; i < ull_cpus_.size(); ++i) {
    if (occupancy_[i] < best_count) {
      best_slot = i;
      best_count = occupancy_[i];
    }
  }
  const sched::CpuId best = ull_cpus_[best_slot];
  // Re-assign without an intervening untrack releases the old slot first,
  // so the counters always sum to assignments_.size().
  if (const auto it = assignments_.find(sandbox.id());
      it != assignments_.end()) {
    --occupancy_slot(it->second);
  }
  assignments_[sandbox.id()] = best;
  ++occupancy_[best_slot];
  return best;
}

util::Expected<sched::CpuId> UllRunQueueManager::assignment(
    sched::SandboxId id) const {
  ManagerLock lock(mutex_, meter_);
  const auto it = assignments_.find(id);
  if (it == assignments_.end()) {
    return util::Status{util::StatusCode::kNotFound,
                        "ull: sandbox has no queue assignment"};
  }
  return it->second;
}

util::Status UllRunQueueManager::track(vmm::Sandbox& sandbox) {
  sched::CpuId cpu;
  {
    ManagerLock lock(mutex_, meter_);
    const auto it = assignments_.find(sandbox.id());
    if (it == assignments_.end()) {
      return {util::StatusCode::kFailedPrecondition,
              "ull: assign() before track()"};
    }
    if (sandbox.merge_vcpus().size() == 0) {
      return {util::StatusCode::kFailedPrecondition,
              "ull: sandbox has no parked vCPUs (not paused?)"};
    }
    auto* node = new TrackedNode;
    node->sandbox = &sandbox;
    node->cpu = cpu = it->second;
    node->index.set_branchless(branchless_walk_);
    node->retire.owner = node;
    node->retire.destroy = &destroy_node;
    {
      // The build reads the target queue's structure; hold its lock so a
      // concurrent resume splicing into the same queue cannot interleave.
      sched::RunQueue& queue = topology_.queue(node->cpu);
      util::LockGuard guard(queue.lock());
      node->index.rebuild(sandbox.merge_vcpus(), queue);
    }
    TrackedNode*& slot = tracked_[sandbox.id()];
    if (slot != nullptr) {
      // Re-track without an intervening untrack: the old node follows the
      // same retire-or-delete path an untrack would have taken.
      if (epoch_reclaim_) {
        topology_.queue(slot->cpu).epoch().retire(&slot->retire);
      } else {
        delete slot;
      }
    }
    slot = node;
  }
  // Pause-time maintenance is where retired garbage gets freed — off the
  // resume path, holding neither the manager mutex nor any queue lock.
  pump_reclaim(cpu);
  return util::Status::ok();
}

void UllRunQueueManager::untrack(sched::SandboxId id) {
  ManagerLock lock(mutex_, meter_);
  if (const auto it = tracked_.find(id); it != tracked_.end()) {
    TrackedNode* node = it->second;
    // Erase first: after this no new reader can look the node up, so the
    // epoch protocol only has to cover readers already holding a pointer.
    // Those readers were pinned inside lookup(), under this same mutex —
    // i.e. strictly before this retire — so the reclaimer cannot free the
    // node under them.
    tracked_.erase(it);
    if (epoch_reclaim_) {
      topology_.queue(node->cpu).epoch().retire(&node->retire);
    } else {
      delete node;
    }
  }
  if (const auto it = assignments_.find(id); it != assignments_.end()) {
    --occupancy_slot(it->second);
    assignments_.erase(it);
  }
}

std::size_t UllRunQueueManager::refresh() {
  std::size_t refreshed = 0;
  std::vector<sched::CpuId> cpus;
  {
    ManagerLock lock(mutex_, meter_);
    cpus = ull_cpus_;
    for (auto& [id, node] : tracked_) {
      sched::RunQueue& queue = topology_.queue(node->cpu);
      util::LockGuard guard(queue.lock());
      P2smIndex& index = node->index;
      if (index.fresh(queue) && !index.poisoned()) {
        continue;
      }
      // Incremental first: replay the queue's mutation journal in
      // O(runs + delta). This is what kills the rebuild storm — N
      // co-resident indexes used to pay O(N·(|A|+|B|)) per queue mutation.
      if (index.built() && !index.poisoned() &&
          index.repair(node->sandbox->merge_vcpus(), queue).is_ok()) {
        ++refreshed;
        continue;
      }
      // Journal gap, poisoning, or a failed audit: the O(|A|+|B|) fallback
      // cures every repair failure mode.
      index.rebuild(node->sandbox->merge_vcpus(), queue);
      ++refreshed;
    }
  }
  // The refresh sweep doubles as the reclaim pump for every reserved
  // queue (refresh runs from ticks/deferred-refresh, never from the
  // timed resume window).
  for (const sched::CpuId cpu : cpus) {
    pump_reclaim(cpu);
  }
  return refreshed;
}

P2smIndex* UllRunQueueManager::index_of(sched::SandboxId id) {
  ManagerLock lock(mutex_, meter_);
  const auto it = tracked_.find(id);
  return it == tracked_.end() ? nullptr : &it->second->index;
}

util::Expected<UllRunQueueManager::LookupResult> UllRunQueueManager::lookup(
    sched::SandboxId id,
    std::optional<util::EpochReclaimer::ReadGuard>* epoch_pin) {
  ManagerLock lock(mutex_, meter_);
  const auto assigned = assignments_.find(id);
  if (assigned == assignments_.end()) {
    return util::Status{util::StatusCode::kNotFound,
                        "ull: sandbox has no queue assignment"};
  }
  LookupResult result;
  result.cpu = assigned->second;
  const auto it = tracked_.find(id);
  result.index = it == tracked_.end() ? nullptr : &it->second->index;
  // Pin while the node is still in tracked_, i.e. before any untrack can
  // retire it: retire() runs only under this mutex, so once the pin is
  // published here no subsequent retirement of this node can be freed
  // until the caller drops the guard (the reclaimer cannot advance two
  // epochs past a pinned reader). Pin/unpin are lock-free, so this adds
  // two atomics to the mutex hold, never a wait.
  if (epoch_pin != nullptr && epoch_reclaim_ && result.index != nullptr) {
    epoch_pin->emplace(topology_.queue(result.cpu).epoch());
  }
  return result;
}

std::size_t UllRunQueueManager::tracked_count() const {
  ManagerLock lock(mutex_, meter_);
  return tracked_.size();
}

std::vector<UllQueueOccupancy> UllRunQueueManager::occupancy() const {
  ManagerLock lock(mutex_, meter_);
  std::vector<UllQueueOccupancy> out;
  out.reserve(ull_cpus_.size());
  for (std::size_t i = 0; i < ull_cpus_.size(); ++i) {
    out.push_back({ull_cpus_[i], occupancy_[i]});
  }
  return out;
}

UllRunQueueManager::ManagerSnapshot UllRunQueueManager::snapshot() const {
  ManagerLock lock(mutex_, meter_);
  ManagerSnapshot out;
  out.occupancy.reserve(ull_cpus_.size());
  for (std::size_t i = 0; i < ull_cpus_.size(); ++i) {
    out.occupancy.push_back({ull_cpus_[i], occupancy_[i]});
  }
  // Read under the same hold as the occupancy so a reporting row cannot
  // mix counters from different instants (the meter itself is relaxed
  // atomics; the hold pins it relative to assign/untrack).
  out.contention = meter_.snapshot();
  out.tracked = tracked_.size();
  return out;
}

void UllRunQueueManager::bind_engine(sched::CpuId cpu,
                                     HorseResumeEngine* engine) {
  ManagerLock lock(mutex_, meter_);
  engines_[cpu] = engine;
}

void UllRunQueueManager::unbind_engine(const HorseResumeEngine* engine) {
  ManagerLock lock(mutex_, meter_);
  for (auto it = engines_.begin(); it != engines_.end();) {
    it = it->second == engine ? engines_.erase(it) : std::next(it);
  }
}

HorseResumeEngine* UllRunQueueManager::engine_for(sched::CpuId cpu) const {
  ManagerLock lock(mutex_, meter_);
  if (const auto it = engines_.find(cpu); it != engines_.end()) {
    return it->second;
  }
  // Unbound queue (grown after engine construction): any bound engine is
  // correct — its step-② lock is wider than necessary, never narrower.
  for (const sched::CpuId candidate : ull_cpus_) {
    if (const auto it = engines_.find(candidate); it != engines_.end()) {
      return it->second;
    }
  }
  return nullptr;
}

HorseResumeEngine* UllRunQueueManager::engine_for_sandbox(
    sched::SandboxId id) const {
  sched::CpuId cpu;
  {
    ManagerLock lock(mutex_, meter_);
    const auto it = assignments_.find(id);
    if (it == assignments_.end()) {
      cpu = ull_cpus_.front();
    } else {
      cpu = it->second;
    }
  }
  return engine_for(cpu);
}

util::Status UllRunQueueManager::grow() {
  ManagerLock lock(mutex_, meter_);
  // Reserved queues are allocated downward from the top CPU; the next
  // candidate is just below the last one we hold.
  const sched::CpuId candidate = ull_cpus_.back() - 1;
  if (ull_cpus_.size() + 1 >= topology_.num_cpus() || candidate == 0 ||
      topology_.is_reserved(candidate)) {
    return {util::StatusCode::kResourceExhausted,
            "ull: cannot reserve another queue"};
  }
  topology_.reserve_for_ull(candidate);
  ull_cpus_.push_back(candidate);
  occupancy_.push_back(0);
  return util::Status::ok();
}

util::Status UllRunQueueManager::shrink() {
  ManagerLock lock(mutex_, meter_);
  if (ull_cpus_.size() <= 1) {
    return {util::StatusCode::kFailedPrecondition,
            "ull: at least one ull_runqueue must remain"};
  }
  const sched::CpuId victim = ull_cpus_.back();
  if (occupancy_.back() != 0) {
    return {util::StatusCode::kFailedPrecondition,
            "ull: paused sandboxes still assigned to the victim queue"};
  }
  if (!topology_.queue(victim).empty()) {
    return {util::StatusCode::kFailedPrecondition,
            "ull: victim queue still has runnable uLL vCPUs"};
  }
  topology_.unreserve(victim);
  ull_cpus_.pop_back();
  occupancy_.pop_back();
  return util::Status::ok();
}

std::size_t UllRunQueueManager::total_index_bytes() const {
  ManagerLock lock(mutex_, meter_);
  std::size_t total = 0;
  for (const auto& [id, node] : tracked_) {
    total += node->index.memory_bytes() + sizeof(TrackedNode);
  }
  return total;
}

}  // namespace horse::core
