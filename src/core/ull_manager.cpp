#include "core/ull_manager.hpp"

#include <limits>
#include <stdexcept>

namespace horse::core {

UllRunQueueManager::UllRunQueueManager(sched::CpuTopology& topology,
                                       const HorseConfig& config)
    : topology_(topology) {
  config.validate();
  if (config.num_ull_runqueues >= topology.num_cpus()) {
    throw std::invalid_argument(
        "UllRunQueueManager: cannot reserve every CPU for uLL");
  }
  const auto n = static_cast<sched::CpuId>(topology.num_cpus());
  for (sched::CpuId i = 0; i < config.num_ull_runqueues; ++i) {
    const sched::CpuId cpu = n - 1 - i;
    topology.reserve_for_ull(cpu);
    ull_cpus_.push_back(cpu);
  }
}

sched::CpuId UllRunQueueManager::assign(vmm::Sandbox& sandbox) {
  // Count paused sandboxes per reserved queue; pick the least occupied.
  std::unordered_map<sched::CpuId, std::size_t> occupancy;
  for (const sched::CpuId cpu : ull_cpus_) {
    occupancy[cpu] = 0;
  }
  for (const auto& [id, tracked] : tracked_) {
    ++occupancy[tracked.cpu];
  }
  sched::CpuId best = ull_cpus_.front();
  std::size_t best_count = std::numeric_limits<std::size_t>::max();
  for (const sched::CpuId cpu : ull_cpus_) {
    if (occupancy[cpu] < best_count) {
      best = cpu;
      best_count = occupancy[cpu];
    }
  }
  assignments_[sandbox.id()] = best;
  return best;
}

util::Expected<sched::CpuId> UllRunQueueManager::assignment(
    sched::SandboxId id) const {
  const auto it = assignments_.find(id);
  if (it == assignments_.end()) {
    return util::Status{util::StatusCode::kNotFound,
                        "ull: sandbox has no queue assignment"};
  }
  return it->second;
}

util::Status UllRunQueueManager::track(vmm::Sandbox& sandbox) {
  const auto it = assignments_.find(sandbox.id());
  if (it == assignments_.end()) {
    return {util::StatusCode::kFailedPrecondition,
            "ull: assign() before track()"};
  }
  if (sandbox.merge_vcpus().size() == 0) {
    return {util::StatusCode::kFailedPrecondition,
            "ull: sandbox has no parked vCPUs (not paused?)"};
  }
  Tracked tracked;
  tracked.sandbox = &sandbox;
  tracked.cpu = it->second;
  tracked.index = std::make_unique<P2smIndex>();
  tracked.index->rebuild(sandbox.merge_vcpus(), topology_.queue(tracked.cpu));
  tracked_[sandbox.id()] = std::move(tracked);
  return util::Status::ok();
}

void UllRunQueueManager::untrack(sched::SandboxId id) {
  tracked_.erase(id);
  assignments_.erase(id);
}

std::size_t UllRunQueueManager::refresh() {
  std::size_t rebuilt = 0;
  for (auto& [id, tracked] : tracked_) {
    sched::RunQueue& queue = topology_.queue(tracked.cpu);
    if (!tracked.index->fresh(queue)) {
      tracked.index->rebuild(tracked.sandbox->merge_vcpus(), queue);
      ++rebuilt;
    }
  }
  return rebuilt;
}

P2smIndex* UllRunQueueManager::index_of(sched::SandboxId id) {
  const auto it = tracked_.find(id);
  return it == tracked_.end() ? nullptr : it->second.index.get();
}

util::Status UllRunQueueManager::grow() {
  // Reserved queues are allocated downward from the top CPU; the next
  // candidate is just below the last one we hold.
  const sched::CpuId candidate = ull_cpus_.back() - 1;
  if (ull_cpus_.size() + 1 >= topology_.num_cpus() || candidate == 0 ||
      topology_.is_reserved(candidate)) {
    return {util::StatusCode::kResourceExhausted,
            "ull: cannot reserve another queue"};
  }
  topology_.reserve_for_ull(candidate);
  ull_cpus_.push_back(candidate);
  return util::Status::ok();
}

util::Status UllRunQueueManager::shrink() {
  if (ull_cpus_.size() <= 1) {
    return {util::StatusCode::kFailedPrecondition,
            "ull: at least one ull_runqueue must remain"};
  }
  const sched::CpuId victim = ull_cpus_.back();
  for (const auto& [id, cpu] : assignments_) {
    if (cpu == victim) {
      return {util::StatusCode::kFailedPrecondition,
              "ull: paused sandboxes still assigned to the victim queue"};
    }
  }
  if (!topology_.queue(victim).empty()) {
    return {util::StatusCode::kFailedPrecondition,
            "ull: victim queue still has runnable uLL vCPUs"};
  }
  topology_.unreserve(victim);
  ull_cpus_.pop_back();
  return util::Status::ok();
}

std::size_t UllRunQueueManager::total_index_bytes() const noexcept {
  std::size_t total = 0;
  for (const auto& [id, tracked] : tracked_) {
    total += tracked.index->memory_bytes() + sizeof(Tracked);
  }
  return total;
}

}  // namespace horse::core
