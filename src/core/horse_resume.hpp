// HorseResumeEngine — the paper's fast resume path (§4).
//
// Same six-step skeleton as the vanilla ResumeEngine, with the two
// contested steps replaced:
//
//   ④ becomes one 𝒫²𝒮ℳ merge of the sandbox's pre-sorted merge_vcpus
//     list into its assigned ull_runqueue — O(1) splices instead of an
//     O(|queue|) sorted walk per vCPU;
//   ⑤ becomes a single coalesced load update from pause-time precomputed
//     factors instead of n lock round-trips.
//
// The pause path does the extra work that buys this: assign a reserved
// queue (load-balanced by paused-sandbox count), precompute the coalescing
// factors, and build the 𝒫²𝒮ℳ index. Individual feature toggles exist so
// the Figure-3 ablation (vanil / ppsm / coal / horse) runs through one
// engine.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "core/coalesce.hpp"
#include "core/config.hpp"
#include "core/merge_crew.hpp"
#include "core/ull_manager.hpp"
#include "metrics/histogram.hpp"
#include "util/spinlock.hpp"
#include "vmm/resume_engine.hpp"

namespace horse::core {

struct HorseFeatures {
  bool use_p2sm = true;
  bool use_coalescing = true;

  [[nodiscard]] static HorseFeatures all() { return {true, true}; }
  [[nodiscard]] static HorseFeatures ppsm_only() { return {true, false}; }
  [[nodiscard]] static HorseFeatures coalescing_only() { return {false, true}; }
};

/// Per-stage cycle accounting for the HORSE fast path. Recorded only when
/// HorseConfig::cycle_timing is on AND CycleClock has a real counter; the
/// stage sums are raw TSC cycles (convert with CycleClock::cycles_to_nanos
/// for reporting). Stage boundaries:
///   prologue   — steps ①-③ (parse, lock, sanity)
///   lookup     — the single manager-lock assignment+index fetch
///   splice     — step ④ (𝒫²𝒮ℳ merge or the fallback walk) + vCPU state
///   publish    — step ⑤ load update, untrack/retire, step ⑥ epilogue
/// total_cycles is the whole-resume distribution (recorded in cycles, so
/// its quantiles are cycle counts, not nanoseconds).
struct ResumeCycleStats {
  std::uint64_t resumes = 0;
  std::uint64_t prologue_cycles = 0;
  std::uint64_t lookup_cycles = 0;
  std::uint64_t splice_cycles = 0;
  std::uint64_t publish_cycles = 0;
  metrics::Histogram total_cycles;
};

/// Counters for the engine's degradation rungs (monotonic; snapshot via
/// degradation_stats()). A degraded resume is still a *successful* resume:
/// the sandbox runs, the queue is sorted — only the O(1) splice was
/// replaced by the vanilla sorted walk.
struct ResumeDegradationStats {
  /// Resumes that fell back to the vanilla sorted-merge walk (any cause).
  std::uint64_t fallback_merges = 0;
  /// ... because the index no longer matched the queue's version.
  std::uint64_t stale_index_fallbacks = 0;
  /// ... because the index was poisoned (corrupt anchor table).
  std::uint64_t poisoned_index_fallbacks = 0;
  /// ... because merge() itself reported an error.
  std::uint64_t merge_error_fallbacks = 0;
  /// Off-hot-path refresh() sweeps triggered by a degraded resume.
  std::uint64_t deferred_refreshes = 0;
};

class HorseResumeEngine final : public vmm::ResumeEngine {
 public:
  /// Standalone engine: owns its UllRunQueueManager and binds itself to
  /// every reserved queue. This is the pre-sharding shape, kept for tests,
  /// benches and single-engine deployments.
  HorseResumeEngine(sched::CpuTopology& topology, vmm::VmmProfile profile,
                    HorseConfig config = {},
                    HorseFeatures features = HorseFeatures::all());

  /// Sharded engine: shares a platform-owned manager with its sibling
  /// engines and binds itself to exactly one reserved queue, so HORSE
  /// resumes on different ull_runqueues serialise on different step-②
  /// locks. The manager must outlive the engine.
  HorseResumeEngine(sched::CpuTopology& topology, vmm::VmmProfile profile,
                    UllRunQueueManager& shared_manager, sched::CpuId bound_cpu,
                    HorseConfig config = {},
                    HorseFeatures features = HorseFeatures::all());

  ~HorseResumeEngine() override;

  [[nodiscard]] UllRunQueueManager& ull_manager() noexcept { return *ull_; }
  [[nodiscard]] const HorseConfig& config() const noexcept { return config_; }
  [[nodiscard]] const HorseFeatures& features() const noexcept { return features_; }
  [[nodiscard]] MergeExecutor& executor() noexcept { return *executor_; }
  /// The parallel crew, or nullptr in sequential mode (for crew stats and
  /// watchdog introspection).
  [[nodiscard]] ParallelMergeCrew* crew() noexcept { return crew_; }

  /// Adaptive inline-splice crossover in effect: fast-path merges with at
  /// most this many runs splice on the resuming thread instead of the
  /// crew. 0 in sequential mode (the main executor is already inline) or
  /// when the crew wins even at one run; set from
  /// HorseConfig::inline_splice_max_runs or the startup micro-calibration.
  [[nodiscard]] std::uint32_t inline_splice_threshold() const noexcept {
    return inline_splice_threshold_;
  }
  /// Fast-path merges the crossover routed to the inline executor.
  [[nodiscard]] std::uint64_t inline_splice_count() const noexcept {
    return inline_splices_.load(std::memory_order_acquire);
  }

  [[nodiscard]] ResumeDegradationStats degradation_stats() const noexcept;

  /// Snapshot of the per-stage cycle accounting (copy under an internal
  /// spinlock; ~10 KB, so call this from reporting paths, not hot loops).
  [[nodiscard]] ResumeCycleStats cycle_stats() const;

  /// Pre-arm / disarm the parallel crew around a resume burst (no-op in
  /// sequential mode).
  void arm_crew() noexcept;
  void disarm_crew() noexcept;

  /// HORSE resume: prologue, then 𝒫²𝒮ℳ merge (step ④) and coalesced load
  /// update (step ⑤), then epilogue. Falls back to the vanilla loop for
  /// non-uLL sandboxes or disabled features.
  util::Status resume(vmm::Sandbox& sandbox,
                      vmm::ResumeBreakdown* breakdown = nullptr) override;

 protected:
  /// HORSE pause: vanilla park + queue assignment + coalesce precompute +
  /// 𝒫²𝒮ℳ index build. Only uLL-flagged sandboxes get the fast path;
  /// others fall back to vanilla behaviour entirely.
  util::Status pause_locked(vmm::Sandbox& sandbox) override;

  /// Hot(un)plug with fast-path repair: the new/removed vCPU flows
  /// through the 𝒫²𝒮ℳ index's incremental insert/remove (§4.1.1's O(n)
  /// and O(m) operations) and the coalescing factors are recomputed for
  /// the new vCPU count.
  util::Status hotplug_vcpu_locked(vmm::Sandbox& sandbox) override;
  util::Status unplug_vcpu_locked(vmm::Sandbox& sandbox) override;

 private:
  util::Status resume_fallback_merge(vmm::Sandbox& sandbox,
                                     sched::CpuId cpu,
                                     vmm::ResumeBreakdown& breakdown);

  /// Off-hot-path repair: when a degraded resume observed stale indexes,
  /// refresh every stale index via the manager AFTER the epilogue (outside
  /// the timed path) — journal repair first, rebuild as the fallback. The
  /// manager is internally locked since the sharding refactor, so no
  /// resume_lock_ re-acquire is needed — the sweep runs concurrently with
  /// other engines' resumes.
  void run_deferred_refresh();

  /// Resolve the inline-splice crossover from config or, in auto mode,
  /// from the startup micro-calibration against the freshly built crew.
  [[nodiscard]] std::uint32_t resolve_inline_splice_threshold();

  HorseConfig config_;
  HorseFeatures features_;
  /// Owned in the standalone shape, null in the sharded shape; ull_ is the
  /// manager actually used either way (declaration order matters: owned
  /// manager before the pointer that may alias it).
  std::unique_ptr<UllRunQueueManager> owned_ull_;
  UllRunQueueManager* ull_ = nullptr;
  LoadCoalescer coalescer_;
  std::unique_ptr<MergeExecutor> executor_;
  ParallelMergeCrew* crew_ = nullptr;  // non-null in parallel mode
  /// Inline lane for the adaptive crossover: small splice sets bypass the
  /// crew's cross-core dispatch entirely.
  SequentialMergeExecutor inline_executor_;
  std::uint32_t inline_splice_threshold_ = 0;
  std::atomic<std::uint64_t> inline_splices_{0};

  // Cycle accounting. The recording site runs after the epilogue released
  // resume_lock_, so a spinlock (last in the lock hierarchy, leaf-only)
  // serialises engine-local recording against cycle_stats() snapshots.
  mutable util::Spinlock cycle_stats_lock_;
  ResumeCycleStats cycle_stats_;

  // Degradation bookkeeping. needs_refresh_ is set inside the timed path
  // (one relaxed store) and consumed after the epilogue.
  std::atomic<bool> needs_refresh_{false};
  std::atomic<std::uint64_t> fallback_merges_{0};
  std::atomic<std::uint64_t> stale_index_fallbacks_{0};
  std::atomic<std::uint64_t> poisoned_index_fallbacks_{0};
  std::atomic<std::uint64_t> merge_error_fallbacks_{0};
  std::atomic<std::uint64_t> deferred_refreshes_{0};
};

}  // namespace horse::core
