// 𝒫²𝒮ℳ — parallel precomputed sorted merge (§4.1 of the paper).
//
// Merges a sorted vCPU list A (a paused sandbox's `merge_vcpus`) into a
// sorted run queue B (the reserved ull_runqueue) in O(1) splice
// operations, by maintaining while the sandbox is paused:
//
//   arrayB : position-indexed snapshot of B's nodes (plus their credits,
//            kept separately so anchor search never chases pointers), and
//   posA   : anchor position in B  →  the maximal run of consecutive A
//            elements that belongs immediately after that position.
//            Key -1 designates "before B's first element"; its anchor is
//            the queue's sentinel, making the head case uniform.
//
// The merge phase turns each posA entry into one SpliceTask (two boundary
// rewrites). Distinct runs have distinct anchors and each task writes only
// its own anchor's `next`, its run's boundary pointers, and the *original*
// successor's `prev` — pairwise-disjoint fields, so the tasks can execute
// concurrently without locks, which is exactly the paper's Algorithm 1
// correctness argument.
//
// Freshness: the index snapshots B at a specific RunQueue::version(). Any
// structural change to B invalidates it. Maintenance is incremental first:
// repair() replays the queue's bounded mutation journal in O(runs + delta),
// shifting anchors and the B snapshot in place; rebuild() is the O(|A|+|B|)
// fallback when the journal cannot cover the gap (§4.1.3: "the updates are
// performed each time ull_runqueue is updated").
//
// Storage is allocation-free in steady state: posA is a sorted flat vector
// whose capacity is recycled across rebuilds, and arrayB/creditsB live in
// one SoA block (hooks then credits) that is reused and only grows
// geometrically. A rebuild or repair at stable queue sizes touches the
// heap zero times (asserted by the allocation-counting test hook).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/merge_crew.hpp"
#include "sched/run_queue.hpp"
#include "sched/vcpu.hpp"
#include "util/align.hpp"
#include "util/status.hpp"

namespace horse::core {

struct P2smStats {
  std::uint64_t rebuilds = 0;
  /// Delta repairs that brought a stale index fresh without a rebuild.
  std::uint64_t repairs = 0;
  /// Repair attempts that had to decline (journal gap/overflow, position
  /// mismatch, injected corruption, failed post-repair audit); the caller
  /// falls back to rebuild().
  std::uint64_t repair_fallbacks = 0;
  /// Journal entries applied across all successful repairs.
  std::uint64_t repaired_deltas = 0;
  std::uint64_t incremental_inserts = 0;
  std::uint64_t incremental_removes = 0;
  std::uint64_t merges = 0;
};

class P2smIndex {
 public:
  /// Anchor position in B; -1 is "before the first element".
  using AnchorIndex = std::int64_t;
  static constexpr AnchorIndex kBeforeHead = -1;

  /// A maximal run of consecutive A nodes sharing one anchor.
  struct Run {
    util::ListHook* head = nullptr;
    util::ListHook* tail = nullptr;
    std::size_t count = 0;
  };

  /// One run-table entry: anchor plus its run, stored contiguously in
  /// anchor order. Structured bindings decompose it exactly like the old
  /// map's value_type: `for (const auto& [anchor, run] : index.runs())`.
  ///
  /// Layout is load-bearing: the merge loop streams these sequentially and
  /// touches every field of every entry, so the entry is packed to exactly
  /// half a cache line and aligned to its own size — two entries per line,
  /// no entry ever straddling a line boundary, and the next-line prefetch
  /// in merge() always covers whole entries. The anchor leads because the
  /// splice-task build reads it first (it selects the anchor hook).
  struct alignas(32) RunEntry {
    AnchorIndex anchor = kBeforeHead;  // 8B: read first, selects anchor hook
    Run run;                           // 24B: head, tail, count
  };
  static_assert(sizeof(RunEntry) == 32,
                "RunEntry must stay exactly half a cache line: the merge "
                "loop's prefetch stride and the two-entries-per-line packing "
                "both assume 32 bytes");
  static_assert(alignof(RunEntry) == 32,
                "RunEntry must be self-aligned so no entry straddles a "
                "cache-line boundary");
  static_assert(util::kCacheLineSize % sizeof(RunEntry) == 0,
                "a cache line must hold a whole number of RunEntries");

  /// Opaque, container-agnostic view over the run table in anchor order.
  /// Callers iterate RunEntry values or look up by anchor; the backing
  /// container (today a sorted flat vector) is not part of the contract,
  /// so swapping it cannot break callers again.
  class RunsView {
   public:
    using const_iterator = const RunEntry*;

    [[nodiscard]] const_iterator begin() const noexcept { return data_; }
    [[nodiscard]] const_iterator end() const noexcept { return data_ + size_; }
    [[nodiscard]] std::size_t size() const noexcept { return size_; }
    [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
    [[nodiscard]] bool contains(AnchorIndex anchor) const noexcept {
      return find(anchor) != nullptr;
    }
    /// The run anchored at `anchor`; throws std::out_of_range when absent
    /// (map::at semantics — this is a test/introspection helper).
    [[nodiscard]] const Run& at(AnchorIndex anchor) const {
      const RunEntry* entry = find(anchor);
      if (entry == nullptr) {
        throw std::out_of_range("p2sm runs(): no run at requested anchor");
      }
      return entry->run;
    }

   private:
    friend class P2smIndex;
    RunsView(const RunEntry* data, std::size_t size) noexcept
        : data_(data), size_(size) {}
    [[nodiscard]] const RunEntry* find(AnchorIndex anchor) const noexcept;

    const RunEntry* data_;
    std::size_t size_;
  };

  P2smIndex() = default;

  // --- precomputation phase (§4.1.1) ------------------------------------

  /// Full recompute: O(|A| + |B|). Caller must hold B's lock or otherwise
  /// guarantee B is quiescent.
  void rebuild(sched::VcpuList& a, sched::RunQueue& b);

  /// Incremental recompute: replay B's mutation journal between the built
  /// version and the current one, shifting anchors and the B snapshot in
  /// place — O(runs + delta) instead of O(|A| + |B|). Returns non-ok
  /// (without repairing anything trustworthy) when the journal cannot
  /// cover the gap: overflow, an unjournalled version bump, a position
  /// that contradicts the snapshot, or injected corruption
  /// (p2sm.repair.corrupt_delta, which also poisons the index). The caller
  /// falls back to rebuild(), which cures every failure mode. Caller must
  /// hold B's lock.
  util::Status repair(sched::VcpuList& a, sched::RunQueue& b);

  /// True when the index still matches B's current structure.
  [[nodiscard]] bool fresh(const sched::RunQueue& b) const noexcept {
    return built_ && built_version_ == b.version();
  }
  [[nodiscard]] bool built() const noexcept { return built_; }
  void invalidate() noexcept {
    built_ = false;
    pos_a_.clear();
  }

  /// A poisoned index is one whose precomputed structures are suspected
  /// corrupt (detected — or injected via the p2sm.rebuild.corrupt_anchor /
  /// p2sm.repair.corrupt_delta fault sites — during maintenance).
  /// merge()/insert/remove/repair refuse it, the audit reports it, and the
  /// next rebuild() cures it. Freshness and poisoning are orthogonal: a
  /// poisoned index may still match B's version, but it must never be
  /// trusted for an O(1) splice.
  [[nodiscard]] bool poisoned() const noexcept { return poisoned_; }
  void poison() noexcept { poisoned_ = true; }

  /// A-side incremental insert (paper: O(n) position search + O(1) list
  /// insert). Inserts `vcpu` into A at its sorted position *and* extends
  /// the appropriate run. Requires a fresh index.
  util::Status insert_into_a(sched::VcpuList& a, sched::Vcpu& vcpu,
                             const sched::RunQueue& b);

  /// A-side incremental removal (paper: O(m) run walk). Unlinks `vcpu`
  /// from A and shrinks/erases its run. Requires a fresh index.
  util::Status remove_from_a(sched::VcpuList& a, sched::Vcpu& vcpu);

  // --- merge phase (§4.1.2, Algorithm 1) ---------------------------------

  /// Splice all of A into B. O(#runs) splice tasks executed by `executor`
  /// (possibly in parallel), independent of |A| and |B|. On return A is
  /// empty, B is sorted and contains every former A element, and the
  /// index is consumed (invalidated). The spliced nodes are journalled
  /// into B as per-position inserts, so co-resident indexes on the same
  /// queue can repair() instead of rebuilding. Caller must hold B's lock
  /// if other threads may mutate B concurrently.
  util::Status merge(sched::VcpuList& a, sched::RunQueue& b,
                     MergeExecutor& executor);

  /// Full audit of the precomputed structures against the live A and B,
  /// O(|A| + |B|). Verifies:
  ///   * arrayB/creditsB agreement: equal lengths, creditsB ascending, and
  ///     each cached credit equal to the credit of the vCPU its hook
  ///     belongs to (a divergence means B mutated under a "fresh" index);
  ///   * anchors strictly monotone, each within [-1, |B|);
  ///   * runs partition A: walking A front-to-back visits each run's
  ///     [head..tail] exactly once, in anchor order, with per-run node
  ///     counts summing to |A| and every run's nodes anchored correctly
  ///     (anchor_for(credit) == the run's anchor).
  /// Returns the first violation. rebuild()/repair()/merge() self-audit
  /// under HORSE_DCHECK; release builds never pay for this.
  [[nodiscard]] util::Status audit(sched::VcpuList& a,
                                   const sched::RunQueue& b) const;

  // --- introspection ------------------------------------------------------

  [[nodiscard]] std::size_t run_count() const noexcept { return pos_a_.size(); }
  [[nodiscard]] std::size_t array_b_size() const noexcept { return b_size_; }
  [[nodiscard]] const P2smStats& stats() const noexcept { return stats_; }

  /// Approximate heap footprint of the precomputed structures, for the
  /// §5.2 memory-overhead experiment.
  [[nodiscard]] std::size_t memory_bytes() const noexcept;

  /// The runs in anchor order (opaque view; see RunsView).
  [[nodiscard]] RunsView runs() const noexcept {
    return {pos_a_.data(), pos_a_.size()};
  }

  /// Select the credit-comparison strategy for the anchor search and the
  /// delta-replay position searches: branchless/SIMD hybrid (default) or
  /// the plain std:: binary searches (the E22 scalar baseline arm). Both
  /// produce identical results on sorted input — asserted by the 1024-seed
  /// equivalence sweep.
  void set_branchless(bool branchless) noexcept { branchless_ = branchless; }
  [[nodiscard]] bool branchless() const noexcept { return branchless_; }

 private:
  /// Largest index i with creditsB[i] <= credit, or kBeforeHead.
  [[nodiscard]] AnchorIndex anchor_for(sched::Credit credit) const noexcept;

  /// Grow the SoA block so it can hold `needed` B entries plus repair
  /// headroom. `preserve` keeps the live entries (repair-time growth);
  /// rebuild passes false and refills from scratch. No-op when the block
  /// is already big enough — the steady-state path.
  void ensure_b_capacity(std::size_t needed, bool preserve);

  /// Apply one journalled mutation to the snapshot + run table. Returns
  /// false when the entry contradicts the index (caller declines the
  /// whole repair and rebuilds).
  [[nodiscard]] bool apply_insert_delta(const sched::QueueDelta& delta);
  [[nodiscard]] bool apply_remove_delta(const sched::QueueDelta& delta);

  // B snapshot as one recycled SoA block: kBCapacity hook pointers, then
  // kBCapacity credits. Folding both arrays into a single allocation
  // halves the growth events and keeps the anchor search's credit scan
  // contiguous.
  std::unique_ptr<std::byte[]> b_block_;
  std::size_t b_capacity_ = 0;
  std::size_t b_size_ = 0;
  util::ListHook** hooks_b_ = nullptr;
  sched::Credit* credits_b_ = nullptr;

  // Run table: sorted by anchor, capacity recycled across rebuilds. A
  // rebuild reserves |A| entries; since runs never outnumber A nodes and
  // A does not change during repair, repair-time splits can never exceed
  // that capacity — vector::insert never reallocates in steady state.
  std::vector<RunEntry> pos_a_;
  std::vector<SpliceTask> task_buffer_;
  std::uint64_t built_version_ = 0;
  bool built_ = false;
  bool poisoned_ = false;
  bool branchless_ = true;
  P2smStats stats_;
};

}  // namespace horse::core
