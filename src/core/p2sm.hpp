// 𝒫²𝒮ℳ — parallel precomputed sorted merge (§4.1 of the paper).
//
// Merges a sorted vCPU list A (a paused sandbox's `merge_vcpus`) into a
// sorted run queue B (the reserved ull_runqueue) in O(1) splice
// operations, by maintaining while the sandbox is paused:
//
//   arrayB : position-indexed snapshot of B's nodes (plus their credits,
//            kept separately so anchor search never chases pointers), and
//   posA   : anchor position in B  →  the maximal run of consecutive A
//            elements that belongs immediately after that position.
//            Key -1 designates "before B's first element"; its anchor is
//            the queue's sentinel, making the head case uniform.
//
// The merge phase turns each posA entry into one SpliceTask (two boundary
// rewrites). Distinct runs have distinct anchors and each task writes only
// its own anchor's `next`, its run's boundary pointers, and the *original*
// successor's `prev` — pairwise-disjoint fields, so the tasks can execute
// concurrently without locks, which is exactly the paper's Algorithm 1
// correctness argument.
//
// Freshness: the index snapshots B at a specific RunQueue::version(). Any
// structural change to B invalidates it; UllRunQueueManager rebuilds stale
// indexes off the resume path (§4.1.3: "the updates are performed each
// time ull_runqueue is updated").
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "core/merge_crew.hpp"
#include "sched/run_queue.hpp"
#include "sched/vcpu.hpp"
#include "util/status.hpp"

namespace horse::core {

struct P2smStats {
  std::uint64_t rebuilds = 0;
  std::uint64_t incremental_inserts = 0;
  std::uint64_t incremental_removes = 0;
  std::uint64_t merges = 0;
};

class P2smIndex {
 public:
  /// Anchor position in B; -1 is "before the first element".
  using AnchorIndex = std::int64_t;
  static constexpr AnchorIndex kBeforeHead = -1;

  /// A maximal run of consecutive A nodes sharing one anchor.
  struct Run {
    util::ListHook* head = nullptr;
    util::ListHook* tail = nullptr;
    std::size_t count = 0;
  };

  P2smIndex() = default;

  // --- precomputation phase (§4.1.1) ------------------------------------

  /// Full recompute: O(|A| + |B|). Caller must hold B's lock or otherwise
  /// guarantee B is quiescent.
  void rebuild(sched::VcpuList& a, sched::RunQueue& b);

  /// True when the index still matches B's current structure.
  [[nodiscard]] bool fresh(const sched::RunQueue& b) const noexcept {
    return built_ && built_version_ == b.version();
  }
  [[nodiscard]] bool built() const noexcept { return built_; }
  void invalidate() noexcept {
    built_ = false;
    pos_a_.clear();
  }

  /// A poisoned index is one whose precomputed structures are suspected
  /// corrupt (detected — or injected via the p2sm.rebuild.corrupt_anchor
  /// fault site — during rebuild). merge()/insert/remove refuse it, the
  /// audit reports it, and the next rebuild() cures it. Freshness and
  /// poisoning are orthogonal: a poisoned index may still match B's
  /// version, but it must never be trusted for an O(1) splice.
  [[nodiscard]] bool poisoned() const noexcept { return poisoned_; }
  void poison() noexcept { poisoned_ = true; }

  /// A-side incremental insert (paper: O(n) position search + O(1) list
  /// insert). Inserts `vcpu` into A at its sorted position *and* extends
  /// the appropriate run. Requires a fresh index.
  util::Status insert_into_a(sched::VcpuList& a, sched::Vcpu& vcpu,
                             const sched::RunQueue& b);

  /// A-side incremental removal (paper: O(m) run walk). Unlinks `vcpu`
  /// from A and shrinks/erases its run. Requires a fresh index.
  util::Status remove_from_a(sched::VcpuList& a, sched::Vcpu& vcpu);

  // --- merge phase (§4.1.2, Algorithm 1) ---------------------------------

  /// Splice all of A into B. O(#runs) splice tasks executed by `executor`
  /// (possibly in parallel), independent of |A| and |B|. On return A is
  /// empty, B is sorted and contains every former A element, and the
  /// index is consumed (invalidated). Caller must hold B's lock if other
  /// threads may mutate B concurrently.
  util::Status merge(sched::VcpuList& a, sched::RunQueue& b,
                     MergeExecutor& executor);

  /// Full audit of the precomputed structures against the live A and B,
  /// O(|A| + |B|). Verifies:
  ///   * arrayB/creditsB agreement: equal lengths, creditsB ascending, and
  ///     each cached credit equal to the credit of the vCPU its hook
  ///     belongs to (a divergence means B mutated under a "fresh" index);
  ///   * anchors strictly monotone, each within [-1, |B|);
  ///   * runs partition A: walking A front-to-back visits each run's
  ///     [head..tail] exactly once, in anchor order, with per-run node
  ///     counts summing to |A| and every run's nodes anchored correctly
  ///     (anchor_for(credit) == the run's anchor).
  /// Returns the first violation. rebuild()/merge() self-audit under
  /// HORSE_DCHECK; release builds never pay for this.
  [[nodiscard]] util::Status audit(sched::VcpuList& a,
                                   const sched::RunQueue& b) const;

  // --- introspection ------------------------------------------------------

  [[nodiscard]] std::size_t run_count() const noexcept { return pos_a_.size(); }
  [[nodiscard]] std::size_t array_b_size() const noexcept { return array_b_.size(); }
  [[nodiscard]] const P2smStats& stats() const noexcept { return stats_; }

  /// Approximate heap footprint of the precomputed structures, for the
  /// §5.2 memory-overhead experiment.
  [[nodiscard]] std::size_t memory_bytes() const noexcept;

  /// Test hook: the runs in anchor order.
  [[nodiscard]] const std::map<AnchorIndex, Run>& runs() const noexcept {
    return pos_a_;
  }

 private:
  /// Largest index i with creditsB[i] <= credit, or kBeforeHead.
  [[nodiscard]] AnchorIndex anchor_for(sched::Credit credit) const noexcept;

  std::vector<util::ListHook*> array_b_;
  std::vector<sched::Credit> credits_b_;
  std::map<AnchorIndex, Run> pos_a_;
  std::vector<SpliceTask> task_buffer_;
  std::uint64_t built_version_ = 0;
  bool built_ = false;
  bool poisoned_ = false;
  P2smStats stats_;
};

}  // namespace horse::core
