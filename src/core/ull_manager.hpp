// Reserved uLL run-queue management (§4.1.3).
//
// HORSE confines uLL sandboxes to a small set of reserved run queues so
// that 𝒫²𝒮ℳ's precomputed structures only have to track those queues.
// Responsibilities:
//   * reserve the queues in the topology (general placement skips them),
//   * assign each pausing uLL sandbox to the reserved queue with the
//     fewest paused sandboxes ("the choice … considers the number of
//     paused sandboxes already associated with each ull_runqueue to
//     perform load balancing"), tracked with per-queue occupancy counters
//     maintained on assign/untrack — no per-call scan of the tracked set,
//   * own one P2smIndex per paused sandbox and keep it fresh whenever its
//     target queue changes structurally ("the updates are performed each
//     time ull_runqueue is updated"),
//   * map each reserved queue to the HorseResumeEngine bound to it, so
//     the sharded control plane can route a resume to the engine whose
//     step-② lock serialises exactly that queue and nothing else.
//
// Thread-safety: the manager IS internally locked (this changed with the
// sharded control plane; it used to rely on a single engine's
// resume_lock_). A fine-grained mutex guards the assignment/tracking maps
// and the occupancy counters; every P2smIndex build/rebuild additionally
// holds the target queue's lock, so index mutation is serialised against
// concurrent splices into that queue. Raw pointers handed out by
// index_of() stay valid only while the sandbox remains tracked — callers
// rely on the platform invariant that a sandbox is owned by exactly one
// invocation at a time (see DESIGN.md §6, cross-shard invariants).
//
// Lock hierarchy (never acquire right-to-left):
//   shard mutex → engine resume_lock_ → manager mutex → queue lock.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/config.hpp"
#include "core/p2sm.hpp"
#include "metrics/contention.hpp"
#include "sched/topology.hpp"
#include "util/epoch.hpp"
#include "util/status.hpp"
#include "vmm/sandbox.hpp"

namespace horse::core {

class HorseResumeEngine;

/// Paused-sandbox count of one reserved queue (occupancy snapshot).
struct UllQueueOccupancy {
  sched::CpuId cpu = 0;
  std::size_t paused = 0;
};

class UllRunQueueManager {
 public:
  /// Reserves `config.num_ull_runqueues` CPUs, starting from the highest
  /// CPU id (leaving low ids for general work, as pinned-core setups do).
  UllRunQueueManager(sched::CpuTopology& topology, const HorseConfig& config);

  [[nodiscard]] const std::vector<sched::CpuId>& ull_cpus() const noexcept {
    return ull_cpus_;
  }

  ~UllRunQueueManager();

  /// Pause-time assignment: least-occupied reserved queue, decided from
  /// the per-queue counters (O(#queues), not O(#tracked)).
  [[nodiscard]] sched::CpuId assign(vmm::Sandbox& sandbox);

  /// The queue a paused sandbox was assigned to.
  [[nodiscard]] util::Expected<sched::CpuId> assignment(
      sched::SandboxId id) const;

  /// assignment() + index_of() under ONE mutex hold — the resume fast
  /// path's single manager-lock acquisition. `index` is nullptr when the
  /// sandbox is assigned but not tracked (e.g. 𝒫²𝒮ℳ disabled). The
  /// pointer-validity contract of index_of() applies unless the caller
  /// passes `epoch_pin`: then, when epoch reclamation is on and an index
  /// was found, the target queue's epoch is pinned INSIDE the mutex hold,
  /// while the node is still reachable. retire() only ever runs under
  /// this same mutex (untrack/re-track), so a racing untrack either
  /// completed before the lookup (index comes back nullptr) or starts
  /// after the pin is visible — the reclaimer can then never advance far
  /// enough to free the node until the guard is dropped. Pinning after
  /// lookup() returns would leave a window where maintenance pumps free
  /// the node under the caller.
  struct LookupResult {
    sched::CpuId cpu = 0;
    P2smIndex* index = nullptr;
  };
  [[nodiscard]] util::Expected<LookupResult> lookup(
      sched::SandboxId id,
      std::optional<util::EpochReclaimer::ReadGuard>* epoch_pin = nullptr);

  /// Register a paused sandbox and build its 𝒫²𝒮ℳ index against its
  /// assigned queue (under that queue's lock). Requires merge_vcpus to be
  /// populated (post-pause).
  util::Status track(vmm::Sandbox& sandbox);

  /// Drop tracking (after resume or destroy); releases the sandbox's
  /// occupancy slot. With `HorseConfig::epoch_reclaim` the tracked node
  /// (and its 𝒫²𝒮ℳ index) is NOT destroyed here: it is retired lock-free
  /// to the target queue's epoch reclaimer, and freed later by the
  /// try_reclaim() pump in track()/refresh() — the resume path never pays
  /// heap frees under the manager mutex, and a racing reader stays safe
  /// because its pin was published inside lookup(), under this same
  /// mutex, while the node was still tracked.
  void untrack(sched::SandboxId id);

  /// Bring every index whose target queue changed since it was built (or
  /// that is poisoned) back to fresh, taking each target queue's lock
  /// around the work. Tries the O(runs + delta) journal repair() first and
  /// falls back to the O(|A|+|B|) rebuild() only on journal overflow,
  /// poisoning, or a failed audit — per-index outcomes land in P2smStats
  /// (repairs / rebuilds / repair_fallbacks). In a hypervisor this runs
  /// from the queue-mutation path; callers here invoke it from scheduler
  /// ticks / deferred-refresh sweeps after a degraded resume.
  /// Returns the number of indexes made fresh (repaired + rebuilt).
  std::size_t refresh();

  /// The index for a paused sandbox; nullptr when untracked. See the
  /// header comment for the pointer-validity contract.
  [[nodiscard]] P2smIndex* index_of(sched::SandboxId id);

  [[nodiscard]] std::size_t tracked_count() const;

  /// Total heap footprint of all precomputed structures (§5.2 memory
  /// overhead; the paper measures ≈528 KB for 10 paused uLL sandboxes).
  [[nodiscard]] std::size_t total_index_bytes() const;

  /// Per-queue paused-sandbox counters (control-plane observability; the
  /// macro throughput bench reports these next to its scaling numbers).
  [[nodiscard]] std::vector<UllQueueOccupancy> occupancy() const;

  /// Acquisition accounting for the manager's internal mutex.
  [[nodiscard]] metrics::ContentionStats contention() const noexcept {
    return meter_.snapshot();
  }

  /// Occupancy + contention + tracked count read in ONE critical section.
  /// occupancy() and contention() taken separately can straddle
  /// assign/untrack calls and disagree with each other; reporting paths
  /// that emit them side by side (macro_throughput CSV rows, per-host
  /// cluster stats) must use this so each row is internally consistent.
  struct ManagerSnapshot {
    std::vector<UllQueueOccupancy> occupancy;
    metrics::ContentionStats contention;
    std::size_t tracked = 0;
  };
  [[nodiscard]] ManagerSnapshot snapshot() const;

  // --- engine-per-queue binding (sharded control plane) -------------------

  /// Bind `engine` as the resume engine owning `cpu`'s queue. Engines
  /// bind themselves at construction and unbind at destruction.
  void bind_engine(sched::CpuId cpu, HorseResumeEngine* engine);
  void unbind_engine(const HorseResumeEngine* engine);

  /// The engine bound to a queue; falls back to the first bound engine
  /// when `cpu` has no binding (e.g. a queue added by grow()), nullptr
  /// when no engine is bound at all.
  [[nodiscard]] HorseResumeEngine* engine_for(sched::CpuId cpu) const;

  /// The engine owning the queue a paused sandbox was assigned to, or the
  /// fallback engine when the sandbox is unassigned.
  [[nodiscard]] HorseResumeEngine* engine_for_sandbox(sched::SandboxId id) const;

  // --- adaptive scaling (§4.1.3: "In the case of a high frequency of uLL
  // workload triggers, we can increase the number of ull_runqueue") ------

  /// Reserve one more CPU as a ull_runqueue. Fails with
  /// kResourceExhausted when growing would leave no general CPU.
  util::Status grow();

  /// Release the most recently reserved queue back to general duty.
  /// Fails when only one queue remains or when paused sandboxes are
  /// still assigned to the victim queue (their indexes target it).
  util::Status shrink();

 private:
  /// Heap-allocated tracking record. Owned by tracked_ while live; after
  /// untrack() ownership passes to the target queue's epoch reclaimer
  /// (via `retire`), which destroys it through destroy_node(). The index
  /// lives inline so node + run table share one lifetime.
  struct TrackedNode {
    vmm::Sandbox* sandbox = nullptr;
    sched::CpuId cpu = 0;
    P2smIndex index;
    util::EpochRetireNode retire;
  };
  static void destroy_node(void* owner) noexcept {
    delete static_cast<TrackedNode*>(owner);
  }

  /// Free whatever garbage the reclaimer of `cpu`'s queue has matured.
  /// Maintenance-path only: must not hold any queue lock.
  void pump_reclaim(sched::CpuId cpu) noexcept;

  [[nodiscard]] std::size_t& occupancy_slot(sched::CpuId cpu);

  sched::CpuTopology& topology_;
  mutable std::mutex mutex_;
  mutable metrics::ContentionMeter meter_;
  std::vector<sched::CpuId> ull_cpus_;
  /// Paused-sandbox count per reserved queue, parallel to ull_cpus_;
  /// updated on assign/untrack (and re-assign), consulted by assign() and
  /// shrink() instead of scanning tracked_.
  std::vector<std::size_t> occupancy_;
  std::unordered_map<sched::SandboxId, TrackedNode*> tracked_;
  const bool epoch_reclaim_;
  const bool branchless_walk_;
  std::unordered_map<sched::SandboxId, sched::CpuId> assignments_;
  std::unordered_map<sched::CpuId, HorseResumeEngine*> engines_;
};

}  // namespace horse::core
