// Reserved uLL run-queue management (§4.1.3).
//
// HORSE confines uLL sandboxes to a small set of reserved run queues so
// that 𝒫²𝒮ℳ's precomputed structures only have to track those queues.
// Responsibilities:
//   * reserve the queues in the topology (general placement skips them),
//   * assign each pausing uLL sandbox to the reserved queue with the
//     fewest paused sandboxes ("the choice … considers the number of
//     paused sandboxes already associated with each ull_runqueue to
//     perform load balancing"),
//   * own one P2smIndex per paused sandbox and keep it fresh whenever its
//     target queue changes structurally ("the updates are performed each
//     time ull_runqueue is updated").
//
// Thread-safety: the manager has NO internal locking. Every member that
// touches tracked_/assignments_ must be called with the owning engine's
// resume_lock_ held (HorseResumeEngine serialises pause/resume/hotplug
// through that lock; the tsan preset's concurrent stress tests enforce
// this contract).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/config.hpp"
#include "core/p2sm.hpp"
#include "sched/topology.hpp"
#include "util/status.hpp"
#include "vmm/sandbox.hpp"

namespace horse::core {

class UllRunQueueManager {
 public:
  /// Reserves `config.num_ull_runqueues` CPUs, starting from the highest
  /// CPU id (leaving low ids for general work, as pinned-core setups do).
  UllRunQueueManager(sched::CpuTopology& topology, const HorseConfig& config);

  [[nodiscard]] const std::vector<sched::CpuId>& ull_cpus() const noexcept {
    return ull_cpus_;
  }

  /// Pause-time assignment: least-occupied reserved queue.
  [[nodiscard]] sched::CpuId assign(vmm::Sandbox& sandbox);

  /// The queue a paused sandbox was assigned to.
  [[nodiscard]] util::Expected<sched::CpuId> assignment(
      sched::SandboxId id) const;

  /// Register a paused sandbox and build its 𝒫²𝒮ℳ index against its
  /// assigned queue. Requires merge_vcpus to be populated (post-pause).
  util::Status track(vmm::Sandbox& sandbox);

  /// Drop tracking (after resume or destroy).
  void untrack(sched::SandboxId id);

  /// Rebuild every index whose target queue changed since it was built.
  /// In a hypervisor this runs from the queue-mutation path; callers here
  /// invoke it from scheduler ticks / after any ull queue mutation.
  /// Returns the number of indexes rebuilt.
  std::size_t refresh();

  /// The index for a paused sandbox; nullptr when untracked.
  [[nodiscard]] P2smIndex* index_of(sched::SandboxId id);

  [[nodiscard]] std::size_t tracked_count() const noexcept {
    return tracked_.size();
  }

  /// Total heap footprint of all precomputed structures (§5.2 memory
  /// overhead; the paper measures ≈528 KB for 10 paused uLL sandboxes).
  [[nodiscard]] std::size_t total_index_bytes() const noexcept;

  // --- adaptive scaling (§4.1.3: "In the case of a high frequency of uLL
  // workload triggers, we can increase the number of ull_runqueue") ------

  /// Reserve one more CPU as a ull_runqueue. Fails with
  /// kResourceExhausted when growing would leave no general CPU.
  util::Status grow();

  /// Release the most recently reserved queue back to general duty.
  /// Fails when only one queue remains or when paused sandboxes are
  /// still assigned to the victim queue (their indexes target it).
  util::Status shrink();

 private:
  struct Tracked {
    vmm::Sandbox* sandbox = nullptr;
    sched::CpuId cpu = 0;
    std::unique_ptr<P2smIndex> index;
  };

  sched::CpuTopology& topology_;
  std::vector<sched::CpuId> ull_cpus_;
  std::unordered_map<sched::SandboxId, Tracked> tracked_;
  std::unordered_map<sched::SandboxId, sched::CpuId> assignments_;
};

}  // namespace horse::core
