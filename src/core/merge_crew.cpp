#include "core/merge_crew.hpp"

#include "util/spinlock.hpp"

namespace horse::core {

ParallelMergeCrew::ParallelMergeCrew(std::size_t num_workers)
    : slots_(num_workers == 0 ? 1 : num_workers) {
  const std::size_t n = slots_.size();
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back(
        [this, i](std::stop_token stop) { worker_loop(i, stop); });
  }
}

ParallelMergeCrew::~ParallelMergeCrew() {
  shutdown_.store(true, std::memory_order_release);
  for (auto& worker : workers_) {
    worker.request_stop();
  }
  // jthread destructors join; worker_loop exits on shutdown_.
}

void ParallelMergeCrew::arm() noexcept {
  armed_.store(true, std::memory_order_release);
}

void ParallelMergeCrew::disarm() noexcept {
  armed_.store(false, std::memory_order_release);
}

void ParallelMergeCrew::execute(std::span<const SpliceTask> tasks) {
  if (tasks.empty()) {
    return;
  }
  const bool was_armed = armed();
  if (!was_armed) {
    arm();
  }

  // Chunk tasks across workers; each worker w handles
  // tasks[w*chunk .. min((w+1)*chunk, n)).
  const std::size_t n_workers = slots_.size();
  const std::size_t chunk = (tasks.size() + n_workers - 1) / n_workers;
  std::size_t dispatched = 0;
  for (std::size_t w = 0; w < n_workers && dispatched < tasks.size(); ++w) {
    WorkerSlot& slot = slots_[w];
    const std::size_t count = std::min(chunk, tasks.size() - dispatched);
    slot.tasks = tasks.data() + dispatched;
    slot.count = count;
    dispatched += count;
    // Publish: the generation bump releases the task pointer/count.
    slot.generation.fetch_add(1, std::memory_order_release);
  }

  // Wait for completion: each dispatched worker acknowledges by matching
  // completed to generation.
  for (std::size_t w = 0; w < n_workers; ++w) {
    WorkerSlot& slot = slots_[w];
    const std::uint64_t target = slot.generation.load(std::memory_order_acquire);
    while (slot.completed.load(std::memory_order_acquire) != target) {
      util::cpu_relax();
    }
  }

  if (!was_armed) {
    disarm();
  }
}

void ParallelMergeCrew::worker_loop(std::size_t index, std::stop_token stop) {
  WorkerSlot& slot = slots_[index];
  std::uint64_t seen = 0;
  while (!stop.stop_requested() && !shutdown_.load(std::memory_order_acquire)) {
    const std::uint64_t gen = slot.generation.load(std::memory_order_acquire);
    if (gen == seen) {
      if (armed_.load(std::memory_order_acquire)) {
        util::cpu_relax();
      } else {
        // Disarmed: yield the core instead of burning it. A futex would be
        // cheaper still, but yield keeps wake-up latency bounded at one
        // scheduling quantum without platform-specific code.
        std::this_thread::yield();
      }
      continue;
    }
    seen = gen;
    for (std::size_t i = 0; i < slot.count; ++i) {
      execute_splice(slot.tasks[i]);
    }
    slot.completed.store(seen, std::memory_order_release);
  }
}

}  // namespace horse::core
