#include "core/merge_crew.hpp"

#include "util/spinlock.hpp"
#include "util/yield_point.hpp"

namespace horse::core {

namespace {

// Spins this many cpu_relax() iterations before conceding the core with a
// sched_yield. On a dedicated machine the budget is never exhausted (the
// peer thread answers within tens of cycles); on an oversubscribed host —
// CI runners, the single-core sanitizer matrix — burning a full scheduler
// quantum while the peer is preempted turns a ~100 ns handshake into
// milliseconds, so the fallback keeps worst-case latency at one context
// switch instead.
constexpr std::uint32_t kSpinBudget = 4096;

inline void relax_or_yield(std::uint32_t& spins) noexcept {
  util::cpu_relax();
  if (++spins >= kSpinBudget) {
    spins = 0;
    std::this_thread::yield();
  }
}

}  // namespace

ParallelMergeCrew::ParallelMergeCrew(std::size_t num_workers)
    : slots_(num_workers == 0 ? 1 : num_workers) {
  const std::size_t n = slots_.size();
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back(
        [this, i](std::stop_token stop) { worker_loop(i, stop); });
  }
}

ParallelMergeCrew::~ParallelMergeCrew() {
  shutdown_.store(true, std::memory_order_release);
  for (auto& worker : workers_) {
    worker.request_stop();
  }
  // jthread destructors join; worker_loop exits on shutdown_.
}

void ParallelMergeCrew::arm() noexcept {
  armed_.store(true, std::memory_order_release);
}

void ParallelMergeCrew::disarm() noexcept {
  armed_.store(false, std::memory_order_release);
}

void ParallelMergeCrew::execute(std::span<const SpliceTask> tasks) {
  if (tasks.empty()) {
    return;
  }
  const bool was_armed = armed();
  if (!was_armed) {
    arm();
  }

  // Chunk tasks across workers; each worker w handles
  // tasks[w*chunk .. min((w+1)*chunk, n)).
  const std::size_t n_workers = slots_.size();
  const std::size_t chunk = (tasks.size() + n_workers - 1) / n_workers;
  std::size_t dispatched = 0;
  for (std::size_t w = 0; w < n_workers && dispatched < tasks.size(); ++w) {
    WorkerSlot& slot = slots_[w];
    const std::size_t count = std::min(chunk, tasks.size() - dispatched);
    slot.tasks = tasks.data() + dispatched;
    slot.count = count;
    dispatched += count;
    // Publish: the generation bump releases the task pointer/count.
    HORSE_YIELD_POINT("crew.publish");
    slot.generation.fetch_add(1, std::memory_order_release);
  }

  // Wait for completion: each dispatched worker acknowledges by matching
  // completed to generation.
  for (std::size_t w = 0; w < n_workers; ++w) {
    WorkerSlot& slot = slots_[w];
    const std::uint64_t target = slot.generation.load(std::memory_order_acquire);
    std::uint32_t spins = 0;
    while (slot.completed.load(std::memory_order_acquire) != target) {
      HORSE_YIELD_POINT("crew.wait_complete");
      relax_or_yield(spins);
    }
  }

  if (!was_armed) {
    disarm();
  }
}

void ParallelMergeCrew::worker_loop(std::size_t index, std::stop_token stop) {
  WorkerSlot& slot = slots_[index];
  std::uint64_t seen = 0;
  std::uint32_t spins = 0;
  while (!stop.stop_requested() && !shutdown_.load(std::memory_order_acquire)) {
    const std::uint64_t gen = slot.generation.load(std::memory_order_acquire);
    if (gen == seen) {
      HORSE_YIELD_POINT("crew.spin");
      if (armed_.load(std::memory_order_acquire)) {
        // Armed: spin hot, but concede after a generous budget so an
        // oversubscribed host (fewer cores than crew + dispatcher) still
        // makes progress within one scheduling quantum.
        relax_or_yield(spins);
      } else {
        // Disarmed: yield the core instead of burning it. A futex would be
        // cheaper still, but yield keeps wake-up latency bounded at one
        // scheduling quantum without platform-specific code.
        std::this_thread::yield();
      }
      continue;
    }
    seen = gen;
    spins = 0;
    HORSE_YIELD_POINT("crew.dispatch");
    for (std::size_t i = 0; i < slot.count; ++i) {
      execute_splice(slot.tasks[i]);
    }
    HORSE_YIELD_POINT("crew.complete");
    slot.completed.store(seen, std::memory_order_release);
  }
}

}  // namespace horse::core
