#include "core/merge_crew.hpp"

#include <chrono>

#include "util/fault_injection.hpp"
#include "util/spinlock.hpp"
#include "util/yield_point.hpp"

namespace horse::core {

namespace {

// Spins this many cpu_relax() iterations before conceding the core with a
// sched_yield. On a dedicated machine the budget is never exhausted (the
// peer thread answers within tens of cycles); on an oversubscribed host —
// CI runners, the single-core sanitizer matrix — burning a full scheduler
// quantum while the peer is preempted turns a ~100 ns handshake into
// milliseconds, so the fallback keeps worst-case latency at one context
// switch instead.
constexpr std::uint32_t kSpinBudget = 4096;

inline void relax_or_yield(std::uint32_t& spins) noexcept {
  util::cpu_relax();
  if (++spins >= kSpinBudget) {
    spins = 0;
    std::this_thread::yield();
  }
}

}  // namespace

ParallelMergeCrew::ParallelMergeCrew(std::size_t num_workers,
                                     util::Nanos watchdog_timeout)
    : slots_(num_workers == 0 ? 1 : num_workers),
      watchdog_timeout_(watchdog_timeout) {
  const std::size_t n = slots_.size();
  workers_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    spawn_worker(i);
  }
}

ParallelMergeCrew::~ParallelMergeCrew() {
  shutdown_.store(true, std::memory_order_release);
  std::lock_guard lock(respawn_mutex_);
  for (auto& worker : workers_) {
    if (worker.joinable()) {
      worker.request_stop();
    }
  }
  for (auto& worker : graveyard_) {
    if (worker.joinable()) {
      worker.request_stop();
    }
  }
  // jthread destructors join; worker_loop exits on shutdown_ / stop /
  // epoch supersession (stalled workers poll all three every ~1 ms).
}

void ParallelMergeCrew::arm() noexcept {
  armed_.store(true, std::memory_order_release);
}

void ParallelMergeCrew::disarm() noexcept {
  armed_.store(false, std::memory_order_release);
}

std::size_t ParallelMergeCrew::healthy_workers() const noexcept {
  std::size_t healthy = 0;
  for (const WorkerSlot& slot : slots_) {
    if (!slot.quarantined.load(std::memory_order_acquire)) {
      ++healthy;
    }
  }
  return healthy;
}

MergeCrewStats ParallelMergeCrew::stats() const noexcept {
  MergeCrewStats out;
  out.watchdog_steals = watchdog_steals_.load(std::memory_order_acquire);
  out.workers_quarantined =
      workers_quarantined_.load(std::memory_order_acquire);
  out.workers_respawned = workers_respawned_.load(std::memory_order_acquire);
  out.full_sequential_fallbacks =
      full_sequential_fallbacks_.load(std::memory_order_acquire);
  return out;
}

void ParallelMergeCrew::spawn_worker(std::size_t index) {
  const std::uint64_t epoch = slots_[index].epoch.load(std::memory_order_acquire);
  slots_[index].quarantined.store(false, std::memory_order_release);
  workers_[index] = std::jthread(
      [this, index, epoch](std::stop_token stop) {
        worker_loop(index, epoch, stop);
      });
}

void ParallelMergeCrew::quarantine_and_respawn(std::size_t index) {
  std::lock_guard lock(respawn_mutex_);
  WorkerSlot& slot = slots_[index];
  if (slot.quarantined.load(std::memory_order_acquire)) {
    return;  // already handled (idempotent under races with shutdown)
  }
  slot.quarantined.store(true, std::memory_order_release);
  workers_quarantined_.fetch_add(1, std::memory_order_relaxed);

  // Supersede the old worker: it exits as soon as it next observes the
  // epoch bump (stalled workers poll every ~1 ms). Its jthread moves to
  // the graveyard so a wedged thread never blocks the dispatch path —
  // only destruction waits for it.
  slot.epoch.fetch_add(1, std::memory_order_release);
  if (workers_[index].joinable()) {
    workers_[index].request_stop();
    graveyard_.push_back(std::move(workers_[index]));
  }

  const std::uint64_t budget =
      max_respawns_per_slot_.load(std::memory_order_acquire);
  if (shutdown_.load(std::memory_order_acquire) ||
      slot.respawns.load(std::memory_order_acquire) >= budget) {
    return;  // slot stays quarantined; dispatch routes around it
  }
  slot.respawns.fetch_add(1, std::memory_order_relaxed);
  spawn_worker(index);
  workers_respawned_.fetch_add(1, std::memory_order_relaxed);
}

void ParallelMergeCrew::execute(std::span<const SpliceTask> tasks) {
  if (tasks.empty()) {
    return;
  }

  // Route around quarantined slots. If nothing healthy remains the crew
  // has degraded all the way to a sequential executor: correct, slower,
  // and counted.
  std::vector<std::size_t> healthy;
  healthy.reserve(slots_.size());
  for (std::size_t w = 0; w < slots_.size(); ++w) {
    if (!slots_[w].quarantined.load(std::memory_order_acquire)) {
      healthy.push_back(w);
    }
  }
  if (healthy.empty()) {
    full_sequential_fallbacks_.fetch_add(1, std::memory_order_relaxed);
    for (const SpliceTask& task : tasks) {
      execute_splice(task);
    }
    return;
  }

  const bool was_armed = armed();
  if (!was_armed) {
    arm();
  }

  // Chunk tasks across the healthy workers; worker k of the healthy set
  // handles tasks[k*chunk .. min((k+1)*chunk, n)).
  const std::size_t n_workers = healthy.size();
  const std::size_t chunk = (tasks.size() + n_workers - 1) / n_workers;
  std::size_t dispatched = 0;
  std::size_t used = 0;
  for (; used < n_workers && dispatched < tasks.size(); ++used) {
    WorkerSlot& slot = slots_[healthy[used]];
    const std::size_t count = std::min(chunk, tasks.size() - dispatched);
    slot.tasks = tasks.data() + dispatched;
    slot.count = count;
    dispatched += count;
    // Publish: the generation bump releases the task pointer/count.
    HORSE_YIELD_POINT("crew.publish");
    slot.generation.fetch_add(1, std::memory_order_release);
  }

  // Wait for completion: each dispatched worker acknowledges by matching
  // completed to generation. The watchdog bounds the wait — a worker that
  // misses its deadline has its chunk stolen via the `claimed` CAS and
  // executed inline, then the worker is quarantined and (budget
  // permitting) respawned.
  for (std::size_t k = 0; k < used; ++k) {
    WorkerSlot& slot = slots_[healthy[k]];
    const std::uint64_t target = slot.generation.load(std::memory_order_acquire);
    std::uint32_t spins = 0;
    const bool watchdog_enabled = watchdog_timeout_ > 0;
    util::Nanos deadline =
        watchdog_enabled ? util::monotonic_now() + watchdog_timeout_ : 0;
    bool steal_attempted = false;
    while (slot.completed.load(std::memory_order_acquire) != target) {
      HORSE_YIELD_POINT("crew.wait_complete");
      if (watchdog_enabled && !steal_attempted &&
          util::monotonic_now() >= deadline) {
        steal_attempted = true;
        std::uint64_t expected = target - 1;
        if (slot.claimed.compare_exchange_strong(expected, target,
                                                 std::memory_order_acq_rel)) {
          // Stolen before the worker claimed it: the chunk is ours alone.
          for (std::size_t i = 0; i < slot.count; ++i) {
            execute_splice(slot.tasks[i]);
          }
          slot.completed.store(target, std::memory_order_release);
          watchdog_steals_.fetch_add(1, std::memory_order_relaxed);
          quarantine_and_respawn(healthy[k]);
          break;
        }
        // The worker owns the claim: it is executing (or died mid-chunk,
        // which the fault sites cannot produce — they fire before the
        // claim). Keep waiting; the splice set must not run twice.
      }
      relax_or_yield(spins);
    }
  }

  if (!was_armed) {
    disarm();
  }
}

void ParallelMergeCrew::worker_loop(std::size_t index, std::uint64_t my_epoch,
                                    std::stop_token stop) {
  WorkerSlot& slot = slots_[index];
  // React only to dispatches issued after this worker took over the slot:
  // a replacement must not re-execute (or double-claim) its predecessor's
  // generations.
  std::uint64_t seen = slot.generation.load(std::memory_order_acquire);
  std::uint32_t spins = 0;
  const auto superseded = [&]() noexcept {
    return slot.epoch.load(std::memory_order_acquire) != my_epoch;
  };
  while (!stop.stop_requested() &&
         !shutdown_.load(std::memory_order_acquire) && !superseded()) {
    const std::uint64_t gen = slot.generation.load(std::memory_order_acquire);
    if (gen == seen) {
      HORSE_YIELD_POINT("crew.spin");
      if (armed_.load(std::memory_order_acquire)) {
        // Armed: spin hot, but concede after a generous budget so an
        // oversubscribed host (fewer cores than crew + dispatcher) still
        // makes progress within one scheduling quantum.
        relax_or_yield(spins);
      } else {
        // Disarmed: yield the core instead of burning it. A futex would be
        // cheaper still, but yield keeps wake-up latency bounded at one
        // scheduling quantum without platform-specific code.
        std::this_thread::yield();
      }
      continue;
    }
    seen = gen;
    spins = 0;

    // Both fault sites fire BEFORE the claim CAS, so injected failures
    // never abandon a half-spliced chunk: the watchdog's steal always
    // finds the chunk untouched.
    if (HORSE_FAULT_POINT("crew.worker_death")) {
      // Simulated worker death: exit without claiming or completing. The
      // dispatcher's watchdog steals the chunk and quarantines this slot.
      return;
    }
    if (HORSE_FAULT_POINT("crew.worker_stall")) {
      // Simulated indefinite preemption. Sleep in ~1 ms increments so the
      // stall ends promptly once the watchdog has stolen the chunk (or on
      // supersession/shutdown) and never wedges the destructor.
      const util::Nanos stall_deadline =
          util::monotonic_now() + 2 * util::kSecond;
      while (slot.claimed.load(std::memory_order_acquire) != gen &&
             !stop.stop_requested() &&
             !shutdown_.load(std::memory_order_acquire) && !superseded() &&
             util::monotonic_now() < stall_deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }

    // Claim the chunk: CAS gen-1 → gen. Losing means the watchdog stole
    // it while we were stalled — skip, never splice twice.
    std::uint64_t expected = gen - 1;
    if (!slot.claimed.compare_exchange_strong(expected, gen,
                                              std::memory_order_acq_rel)) {
      continue;
    }

    HORSE_YIELD_POINT("crew.dispatch");
    for (std::size_t i = 0; i < slot.count; ++i) {
      execute_splice(slot.tasks[i]);
    }
    HORSE_YIELD_POINT("crew.complete");
    slot.completed.store(seen, std::memory_order_release);
  }
}

}  // namespace horse::core
