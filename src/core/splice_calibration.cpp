#include "core/splice_calibration.hpp"

#include <algorithm>
#include <array>
#include <limits>
#include <vector>

#include "util/intrusive_list.hpp"

// Same detection as tests/support/sanitizers.hpp: GCC defines
// __SANITIZE_*, clang exposes __has_feature.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define HORSE_CALIBRATE_UNDER_SANITIZER 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define HORSE_CALIBRATE_UNDER_SANITIZER 1
#endif
#endif
#ifndef HORSE_CALIBRATE_UNDER_SANITIZER
#define HORSE_CALIBRATE_UNDER_SANITIZER 0
#endif

namespace horse::core {

namespace {

/// Run counts probed, ascending. 36 vCPUs is the paper's bound, so run
/// counts beyond 32 are rare; if inline still wins at 32 the crossover
/// saturates there.
constexpr std::array<std::uint32_t, 6> kProbes{1, 2, 4, 8, 16, 32};
constexpr int kSamples = 3;
constexpr int kItersPerSample = 64;

/// Synthetic splice scenario with `runs` single-node runs: a ring of
/// runs+1 "B" hooks with one "A" hook spliced after each B position.
/// execute_splice() only touches hook pointers, so no vCPUs or queues are
/// needed, and unlinking every A hook exactly reverses the splice set.
struct Fixture {
  explicit Fixture(std::uint32_t runs)
      : b(runs + 1), a(runs), tasks(runs) {
    for (std::size_t i = 0; i < b.size(); ++i) {
      b[i].next = &b[(i + 1) % b.size()];
      b[(i + 1) % b.size()].prev = &b[i];
    }
    for (std::size_t i = 0; i < a.size(); ++i) {
      tasks[i] = SpliceTask{&b[i], &a[i], &a[i]};
    }
  }

  void reset() noexcept {
    for (util::ListHook& hook : a) {
      hook.unlink();
    }
  }

  std::vector<util::ListHook> b;
  std::vector<util::ListHook> a;
  std::vector<SpliceTask> tasks;
};

/// Best-of-kSamples per-merge cost of (execute + reset). The reset cost is
/// identical for both executors, so the inline-vs-crew comparison is
/// unaffected by it; min-of-samples rejects scheduling noise.
util::Nanos sample_cost(MergeExecutor& executor, Fixture& fixture) {
  util::Nanos best = std::numeric_limits<util::Nanos>::max();
  // One discarded warmup sample faults in the fixture and wakes the crew.
  for (int s = 0; s < kSamples + 1; ++s) {
    util::Stopwatch watch;
    for (int i = 0; i < kItersPerSample; ++i) {
      executor.execute(fixture.tasks);
      fixture.reset();
    }
    const util::Nanos elapsed = watch.elapsed();
    if (s > 0) {
      best = std::min(best, elapsed);
    }
  }
  return best / kItersPerSample;
}

}  // namespace

SpliceCalibration calibrate_inline_splice(ParallelMergeCrew& crew) {
#if HORSE_CALIBRATE_UNDER_SANITIZER
  // Instrumentation multiplies every memory access (~10x under tsan),
  // shifting the relative weight of the two paths; measuring would bake
  // noise into the routing decision. Use a fixed conservative crossover.
  (void)crew;
  return SpliceCalibration{4, 0, 0};
#else
  SequentialMergeExecutor inline_executor;
  const bool was_armed = crew.armed();
  if (!was_armed) {
    crew.arm();
  }

  SpliceCalibration result;
  for (const std::uint32_t runs : kProbes) {
    Fixture fixture(runs);
    const util::Nanos inline_ns = sample_cost(inline_executor, fixture);
    const util::Nanos crew_ns = sample_cost(crew, fixture);
    result.inline_ns = inline_ns;
    result.crew_ns = crew_ns;
    if (inline_ns > crew_ns) {
      break;  // the crew wins from here up; the crossover is behind us
    }
    result.crossover_runs = runs;
  }

  if (!was_armed) {
    crew.disarm();
  }
  return result;
#endif
}

}  // namespace horse::core
