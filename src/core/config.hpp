// HORSE runtime configuration.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <thread>

#include "util/time.hpp"

namespace horse::core {

enum class MergeMode : std::uint8_t {
  /// Issue the splices from the resuming thread. Fastest when the run
  /// count is small or cores are scarce.
  kSequential,
  /// Dispatch one pre-armed worker per task chunk (Algorithm 1's
  /// thread-per-key model).
  kParallel,
};

struct HorseConfig {
  /// Number of reserved ull_runqueues (§4.1.3: one by default, more "in
  /// the case of a high frequency of uLL workload triggers").
  std::uint32_t num_ull_runqueues = 1;
  MergeMode merge_mode = MergeMode::kSequential;
  /// Workers in the parallel crew (ignored in sequential mode). 0 = one
  /// per hardware thread, capped at 8.
  std::size_t crew_size = 0;
  /// Dispatcher-side deadline per dispatched merge chunk before the crew
  /// watchdog steals the chunk, runs it inline, and quarantines the
  /// worker. 0 disables the watchdog (wait forever — the pre-ladder
  /// behaviour). Ignored in sequential mode.
  util::Nanos crew_watchdog_timeout = 250 * util::kMillisecond;

  /// Adaptive inline splice (parallel mode only): resumes whose index has
  /// at most this many runs splice inline on the resuming thread instead
  /// of dispatching to the pre-armed crew — below the crossover, the
  /// cross-core cacheline ping-pong of dispatch costs more than the
  /// splices themselves. kInlineSpliceAuto (the default) measures the
  /// crossover at engine startup; 0 means always dispatch to the crew.
  static constexpr std::uint32_t kInlineSpliceAuto = ~std::uint32_t{0};
  std::uint32_t inline_splice_max_runs = kInlineSpliceAuto;

  // --- resume hot-path tuning (E22 ablation arms flip these off) ---------

  /// Time resume stages with util::CycleClock (fenced rdtsc, one
  /// calibrated multiply per stage) instead of std::chrono reads, and
  /// record the per-stage ResumeCycleStats breakdown.
  bool cycle_timing = true;
  /// Branchless/SIMD credit comparisons: hybrid anchor search in the
  /// 𝒫²𝒮ℳ merge path, and the single-lock prefetching merge walk for the
  /// vanilla sorted-walk fallback (RunQueue::merge_sorted) instead of the
  /// per-vCPU insert_sorted loop.
  bool branchless_walk = true;
  /// Retire untracked 𝒫²𝒮ℳ run nodes to the per-queue epoch reclaimer
  /// (freed later in maintenance) instead of destroying them inline under
  /// the ull-manager mutex on the resume path.
  bool epoch_reclaim = true;

  [[nodiscard]] std::size_t effective_crew_size() const {
    if (crew_size != 0) {
      return crew_size;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : std::min<std::size_t>(hw, 8);
  }

  void validate() const {
    if (num_ull_runqueues == 0) {
      throw std::invalid_argument("HorseConfig: need at least one ull_runqueue");
    }
    if (crew_watchdog_timeout < 0) {
      throw std::invalid_argument(
          "HorseConfig: crew_watchdog_timeout must be >= 0");
    }
  }
};

}  // namespace horse::core
