// Startup micro-calibration for the adaptive inline-splice crossover.
//
// Dispatching a splice set to the pre-armed crew costs one cross-core
// cacheline round-trip per worker touched (generation store, claim CAS,
// completion flag) — hundreds of nanoseconds that dwarf the two boundary
// rewrites of a small run set. Below some machine-dependent run count it
// is faster to issue the splices from the resuming thread. This module
// measures that crossover once, at engine startup, on synthetic hook
// chains that never touch a real queue: HorseResumeEngine then routes
// merges with run_count <= crossover to its inline SequentialMergeExecutor
// and everything larger to the crew (overridable via
// HorseConfig::inline_splice_max_runs).
#pragma once

#include <cstdint>

#include "core/merge_crew.hpp"
#include "util/time.hpp"

namespace horse::core {

struct SpliceCalibration {
  /// Splice sets with at most this many runs should run inline; 0 means
  /// the crew won even at a single run.
  std::uint32_t crossover_runs = 0;
  /// Per-merge costs measured at the probe that decided the crossover
  /// (diagnostics; includes the fixture-reset overhead, identical on both
  /// sides, so only the comparison is meaningful).
  util::Nanos inline_ns = 0;
  util::Nanos crew_ns = 0;
};

/// Measure the inline-vs-crew crossover on `crew`. Arms the crew for the
/// measurement (and restores its previous armed state). Under sanitizer
/// instrumentation wall-clock ratios between the two paths are
/// meaningless, so a fixed conservative crossover is returned instead of
/// timing anything.
[[nodiscard]] SpliceCalibration calibrate_inline_splice(ParallelMergeCrew& crew);

}  // namespace horse::core
