#include "core/p2sm.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <string>

#include "sched/credit_scan.hpp"
#include "util/dcheck.hpp"
#include "util/fault_injection.hpp"

namespace horse::core {

namespace {

sched::Vcpu* vcpu_of(util::ListHook* hook) noexcept {
  return sched::VcpuList::from_hook(hook);
}

}  // namespace

const P2smIndex::RunEntry* P2smIndex::RunsView::find(
    AnchorIndex anchor) const noexcept {
  const RunEntry* it = std::lower_bound(
      data_, data_ + size_, anchor,
      [](const RunEntry& entry, AnchorIndex key) { return entry.anchor < key; });
  return (it != data_ + size_ && it->anchor == anchor) ? it : nullptr;
}

P2smIndex::AnchorIndex P2smIndex::anchor_for(sched::Credit credit) const noexcept {
  // First element of B strictly greater than `credit`; everything before
  // it is <= credit, so the anchor is the element just before it. The
  // hybrid scan counts <=credit linearly (SIMD/branch-free) on the short
  // snapshots the hot path sees and falls back to a cmov binary search on
  // long ones; identical result to std::upper_bound on sorted creditsB.
  if (branchless_) {
    return static_cast<AnchorIndex>(
               sched::credit_scan::credit_upper_bound(credits_b_, b_size_,
                                                      credit)) -
           1;
  }
  const auto it = std::upper_bound(credits_b_, credits_b_ + b_size_, credit);
  return static_cast<AnchorIndex>(it - credits_b_) - 1;
}

void P2smIndex::ensure_b_capacity(std::size_t needed, bool preserve) {
  if (b_capacity_ >= needed) {
    return;  // steady state: the recycled block absorbs the snapshot
  }
  // Grow past `needed` by one journal's worth so a rebuild-sized block can
  // absorb every repair insert a single journal window can deliver without
  // touching the heap again.
  const std::size_t target = needed + sched::RunQueue::kJournalCapacity;
  std::size_t cap = b_capacity_ == 0 ? 64 : b_capacity_;
  while (cap < target) {
    cap *= 2;
  }
  auto block = std::make_unique<std::byte[]>(
      cap * (sizeof(util::ListHook*) + sizeof(sched::Credit)));
  auto** hooks = reinterpret_cast<util::ListHook**>(block.get());
  auto* credits =
      reinterpret_cast<sched::Credit*>(block.get() + cap * sizeof(util::ListHook*));
  if (preserve && b_size_ > 0) {
    std::memcpy(hooks, hooks_b_, b_size_ * sizeof(util::ListHook*));
    std::memcpy(credits, credits_b_, b_size_ * sizeof(sched::Credit));
  }
  b_block_ = std::move(block);
  b_capacity_ = cap;
  hooks_b_ = hooks;
  credits_b_ = credits;
}

void P2smIndex::rebuild(sched::VcpuList& a, sched::RunQueue& b) {
  ensure_b_capacity(b.size(), /*preserve=*/false);
  b_size_ = 0;
  for (sched::Vcpu& vcpu : b.list()) {
    hooks_b_[b_size_] = &vcpu.hook;
    credits_b_[b_size_] = vcpu.credit;
    ++b_size_;
  }

  // Partition A (sorted) into maximal runs per anchor. Anchors are
  // non-decreasing along A, so a single pass appends in sorted order.
  // Capacity note: runs never outnumber A nodes, so reserving |A| once
  // makes both this pass and every later repair-time split allocation-free.
  pos_a_.clear();
  if (pos_a_.capacity() < a.size()) {
    pos_a_.reserve(a.size());
  }
  // Pre-size the splice buffer HERE (pause-time) so merge()'s reserve is
  // a guaranteed no-op: the resume hot path must stay allocation-free
  // even on the first merge of a freshly built index (fig3
  // --strict-alloc gates on this).
  if (task_buffer_.capacity() < a.size()) {
    task_buffer_.reserve(a.size());
  }
  for (sched::Vcpu& vcpu : a) {
    const AnchorIndex anchor = anchor_for(vcpu.credit);
    if (pos_a_.empty() || pos_a_.back().anchor != anchor) {
      pos_a_.push_back(RunEntry{anchor, Run{&vcpu.hook, &vcpu.hook, 1}});
    } else {
      Run& run = pos_a_.back().run;
      run.tail = &vcpu.hook;
      ++run.count;
    }
  }

  built_version_ = b.version();
  built_ = true;
  poisoned_ = false;  // a full recompute cures any earlier poisoning
  ++stats_.rebuilds;

  // Injected corruption: mark the freshly built anchor table untrustworthy.
  // No real structure is damaged (a truly scrambled pos_a_ would make the
  // *next* rebuild read freed memory); the poison flag makes merge() and
  // the audit behave exactly as if the corruption had been detected, which
  // is the contract the degradation ladder is tested against.
  if (HORSE_FAULT_POINT("p2sm.rebuild.corrupt_anchor")) {
    poisoned_ = true;
    return;  // skip the self-audit: it would (correctly) refuse the index
  }
  HORSE_DCHECK_OK(audit(a, b));
}

bool P2smIndex::apply_insert_delta(const sched::QueueDelta& delta) {
  if (delta.position < 0 ||
      static_cast<std::size_t>(delta.position) > b_size_) {
    return false;
  }
  const auto p = static_cast<std::size_t>(delta.position);
  const sched::Credit c = delta.credit;
  // The journalled position must be a valid sorted insert against our
  // snapshot: after every element <= c, before every element > c. Ties are
  // strict on the right — every mutator links new elements after equal
  // credits — so a violation means snapshot divergence, not a tie.
  if (p > 0 && credits_b_[p - 1] > c) {
    return false;
  }
  if (p < b_size_ && credits_b_[p] <= c) {
    return false;
  }

  // Re-anchor the run table. Runs anchored at or after p shift right; the
  // run anchored at p-1 (kBeforeHead when p == 0) may split: its nodes
  // with credit >= c now belong after the inserted element.
  const auto anchor_p = static_cast<AnchorIndex>(p);
  std::size_t idx = static_cast<std::size_t>(
      std::lower_bound(pos_a_.begin(), pos_a_.end(), anchor_p,
                       [](const RunEntry& entry, AnchorIndex key) {
                         return entry.anchor < key;
                       }) -
      pos_a_.begin());
  for (std::size_t i = idx; i < pos_a_.size(); ++i) {
    ++pos_a_[i].anchor;
  }
  if (idx > 0 && pos_a_[idx - 1].anchor == anchor_p - 1) {
    Run& prev = pos_a_[idx - 1].run;
    util::ListHook* node = prev.head;
    std::size_t keep = 0;
    while (keep < prev.count && vcpu_of(node)->credit < c) {
      node = node->next;
      ++keep;
    }
    if (keep == 0) {
      // Every node lands after the new element: the whole run re-anchors.
      pos_a_[idx - 1].anchor = anchor_p;
    } else if (keep < prev.count) {
      const Run second{node, prev.tail, prev.count - keep};
      prev.tail = node->prev;
      prev.count = keep;
      pos_a_.insert(pos_a_.begin() + static_cast<std::ptrdiff_t>(idx),
                    RunEntry{anchor_p, second});
    }
  }

  // Shift the snapshot and drop the new element in.
  ensure_b_capacity(b_size_ + 1, /*preserve=*/true);
  std::memmove(hooks_b_ + p + 1, hooks_b_ + p,
               (b_size_ - p) * sizeof(util::ListHook*));
  std::memmove(credits_b_ + p + 1, credits_b_ + p,
               (b_size_ - p) * sizeof(sched::Credit));
  hooks_b_[p] = delta.hook;
  credits_b_[p] = c;
  ++b_size_;
  return true;
}

bool P2smIndex::apply_remove_delta(const sched::QueueDelta& delta) {
  std::size_t p = 0;
  if (delta.position >= 0) {
    p = static_cast<std::size_t>(delta.position);
    if (p >= b_size_ || hooks_b_[p] != delta.hook) {
      return false;
    }
  } else {
    // Remove-by-node: resolve the position from the credit (binary search)
    // plus the hook identity among equal credits.
    const sched::Credit c = delta.credit;
    std::size_t i =
        branchless_
            ? sched::credit_scan::branchless_lower_bound(credits_b_, b_size_, c)
            : static_cast<std::size_t>(
                  std::lower_bound(credits_b_, credits_b_ + b_size_, c) -
                  credits_b_);
    while (i < b_size_ && credits_b_[i] == c && hooks_b_[i] != delta.hook) {
      ++i;
    }
    if (i >= b_size_ || credits_b_[i] != c || hooks_b_[i] != delta.hook) {
      return false;
    }
    p = i;
  }

  // Re-anchor the run table. A run anchored at the vanished element
  // re-anchors to p-1 and merges with an existing p-1 run (the two are
  // adjacent in A, in that order); everything after p shifts left.
  const auto anchor_p = static_cast<AnchorIndex>(p);
  std::size_t idx = static_cast<std::size_t>(
      std::lower_bound(pos_a_.begin(), pos_a_.end(), anchor_p,
                       [](const RunEntry& entry, AnchorIndex key) {
                         return entry.anchor < key;
                       }) -
      pos_a_.begin());
  if (idx < pos_a_.size() && pos_a_[idx].anchor == anchor_p) {
    if (idx > 0 && pos_a_[idx - 1].anchor == anchor_p - 1) {
      Run& prev = pos_a_[idx - 1].run;
      prev.tail = pos_a_[idx].run.tail;
      prev.count += pos_a_[idx].run.count;
      pos_a_.erase(pos_a_.begin() + static_cast<std::ptrdiff_t>(idx));
    } else {
      pos_a_[idx].anchor = anchor_p - 1;  // may become kBeforeHead
      ++idx;
    }
  }
  for (std::size_t i = idx; i < pos_a_.size(); ++i) {
    --pos_a_[i].anchor;
  }

  std::memmove(hooks_b_ + p, hooks_b_ + p + 1,
               (b_size_ - p - 1) * sizeof(util::ListHook*));
  std::memmove(credits_b_ + p, credits_b_ + p + 1,
               (b_size_ - p - 1) * sizeof(sched::Credit));
  --b_size_;
  return true;
}

util::Status P2smIndex::repair(sched::VcpuList& a, sched::RunQueue& b) {
  if (!built_) {
    return {util::StatusCode::kFailedPrecondition,
            "p2sm repair: index not built; rebuild instead"};
  }
  if (poisoned_) {
    ++stats_.repair_fallbacks;
    return {util::StatusCode::kFailedPrecondition,
            "p2sm repair: index poisoned; rebuild instead"};
  }
  const std::uint64_t current = b.version();
  if (current == built_version_) {
    return util::Status::ok();  // already fresh, nothing to replay
  }
  if (current < built_version_ ||
      current - built_version_ > sched::RunQueue::kJournalCapacity) {
    ++stats_.repair_fallbacks;
    return {util::StatusCode::kFailedPrecondition,
            "p2sm repair: journal cannot cover versions " +
                std::to_string(built_version_) + ".." +
                std::to_string(current)};
  }
  if (HORSE_FAULT_POINT("p2sm.repair.corrupt_delta")) {
    // A corrupt journal entry was "applied": the snapshot can no longer be
    // trusted, so the index poisons itself and the caller degrades to a
    // full rebuild (which cures the poisoning).
    poison();
    ++stats_.repair_fallbacks;
    return {util::StatusCode::kInternal,
            "p2sm repair: injected corrupt journal delta (index poisoned)"};
  }

  std::uint64_t applied = 0;
  for (std::uint64_t v = built_version_ + 1; v <= current; ++v) {
    const sched::QueueDelta* delta = b.delta_for_version(v);
    const bool ok =
        delta != nullptr &&
        (delta->kind == sched::QueueDelta::Kind::kInsert
             ? apply_insert_delta(*delta)
             : apply_remove_delta(*delta));
    if (!ok) {
      // Gap (unjournalled mutation / overwritten slot) or an entry that
      // contradicts the snapshot. A partially replayed index is not
      // trustworthy, so it un-builds itself; rebuild() restores it.
      built_ = false;
      ++stats_.repair_fallbacks;
      return {util::StatusCode::kFailedPrecondition,
              "p2sm repair: journal gap or contradictory entry at version " +
                  std::to_string(v)};
    }
    ++applied;
  }
  built_version_ = current;

#if defined(HORSE_DCHECK_ENABLED)
  // Instrumented builds audit every repair; a failure here means the
  // replay logic disagrees with the live structures, which must degrade to
  // rebuild (the ladder contract), not abort.
  if (util::Status audit_status = audit(a, b); !audit_status.is_ok()) {
    poison();
    ++stats_.repair_fallbacks;
    return audit_status;
  }
#else
  (void)a;
#endif

  ++stats_.repairs;
  stats_.repaired_deltas += applied;
  return util::Status::ok();
}

util::Status P2smIndex::audit(sched::VcpuList& a,
                              const sched::RunQueue& b) const {
  if (!built_) {
    return {util::StatusCode::kFailedPrecondition, "p2sm audit: index not built"};
  }
  if (poisoned_) {
    return {util::StatusCode::kInternal,
            "p2sm audit: index poisoned (corrupt anchor table)"};
  }

  // creditsB ordering.
  for (std::size_t i = 1; i < b_size_; ++i) {
    if (credits_b_[i] < credits_b_[i - 1]) {
      return {util::StatusCode::kInternal,
              "p2sm audit: creditsB not ascending at " + std::to_string(i)};
    }
  }
  if (fresh(b)) {
    // Only dereference the cached hooks when B is structurally unchanged
    // since the snapshot; on a stale index they may dangle.
    if (b_size_ != b.size()) {
      return {util::StatusCode::kInternal,
              "p2sm audit: fresh index but arrayB size " +
                  std::to_string(b_size_) + " != |B| " +
                  std::to_string(b.size())};
    }
    for (std::size_t i = 0; i < b_size_; ++i) {
      if (vcpu_of(hooks_b_[i])->credit != credits_b_[i]) {
        return {util::StatusCode::kInternal,
                "p2sm audit: cached credit diverges from live vCPU at " +
                    std::to_string(i) + " (B mutated under a fresh index?)"};
      }
    }
  }

  // Anchors monotone and in range. The flat table is kept sorted by
  // construction, so the monotonicity check guards the repair shift logic;
  // the range check is the live one.
  AnchorIndex prev_anchor = kBeforeHead - 1;
  for (const auto& [anchor, run] : runs()) {
    if (anchor <= prev_anchor) {
      return {util::StatusCode::kInternal, "p2sm audit: anchors not monotone"};
    }
    if (anchor < kBeforeHead || anchor >= static_cast<AnchorIndex>(b_size_)) {
      return {util::StatusCode::kInternal,
              "p2sm audit: anchor " + std::to_string(anchor) +
                  " outside [-1, " + std::to_string(b_size_) + ")"};
    }
    if (run.head == nullptr || run.tail == nullptr || run.count == 0) {
      return {util::StatusCode::kInternal,
              "p2sm audit: degenerate run at anchor " + std::to_string(anchor)};
    }
    prev_anchor = anchor;
  }

  // Runs partition A: walking A front-to-back must visit each run's
  // [head..tail] exactly once, in anchor order, covering every node.
  auto run_it = runs().begin();
  const auto run_end = runs().end();
  std::size_t remaining_in_run = 0;
  std::size_t covered = 0;
  const util::ListHook* expected_tail = nullptr;
  for (sched::Vcpu& vcpu : a) {
    if (remaining_in_run == 0) {
      if (run_it == run_end) {
        return {util::StatusCode::kInternal,
                "p2sm audit: A has nodes beyond the last run"};
      }
      if (run_it->run.head != &vcpu.hook) {
        return {util::StatusCode::kInternal,
                "p2sm audit: run head does not match A order at anchor " +
                    std::to_string(run_it->anchor)};
      }
      remaining_in_run = run_it->run.count;
      expected_tail = run_it->run.tail;
    }
    if (anchor_for(vcpu.credit) != run_it->anchor) {
      return {util::StatusCode::kInternal,
              "p2sm audit: node anchored to " +
                  std::to_string(anchor_for(vcpu.credit)) + " but run is " +
                  std::to_string(run_it->anchor)};
    }
    --remaining_in_run;
    ++covered;
    if (remaining_in_run == 0) {
      if (expected_tail != &vcpu.hook) {
        return {util::StatusCode::kInternal,
                "p2sm audit: run tail does not match A order at anchor " +
                    std::to_string(run_it->anchor)};
      }
      ++run_it;
    }
  }
  if (remaining_in_run != 0 || run_it != run_end) {
    return {util::StatusCode::kInternal,
            "p2sm audit: runs extend beyond A (count drift)"};
  }
  if (covered != a.size()) {
    return {util::StatusCode::kInternal,
            "p2sm audit: runs cover " + std::to_string(covered) +
                " nodes but |A| is " + std::to_string(a.size())};
  }
  return util::Status::ok();
}

util::Status P2smIndex::insert_into_a(sched::VcpuList& a, sched::Vcpu& vcpu,
                                      const sched::RunQueue& b) {
  if (!fresh(b)) {
    return {util::StatusCode::kFailedPrecondition,
            "p2sm: index stale; rebuild before A-side updates"};
  }
  if (poisoned_) {
    return {util::StatusCode::kFailedPrecondition,
            "p2sm: index poisoned; rebuild before A-side updates"};
  }
  if (HORSE_FAULT_POINT("p2sm.insert.fault")) {
    // Fires before any mutation: caller-visible failure with A, the run
    // table, and the vCPU all untouched (hotplug rolls back cleanly).
    return {util::StatusCode::kInternal,
            "p2sm: injected incremental-insert failure"};
  }
  const AnchorIndex anchor = anchor_for(vcpu.credit);
  const std::size_t idx = static_cast<std::size_t>(
      std::lower_bound(pos_a_.begin(), pos_a_.end(), anchor,
                       [](const RunEntry& entry, AnchorIndex key) {
                         return entry.anchor < key;
                       }) -
      pos_a_.begin());
  if (idx == pos_a_.size() || pos_a_[idx].anchor != anchor) {
    // New run. Its position inside A is immediately before the head of
    // the next run (runs are ordered by anchor along A), or at A's end.
    if (idx == pos_a_.size()) {
      a.push_back(vcpu);
    } else {
      a.insert(sched::VcpuList::iterator(pos_a_[idx].run.head), vcpu);
    }
    pos_a_.insert(pos_a_.begin() + static_cast<std::ptrdiff_t>(idx),
                  RunEntry{anchor, Run{&vcpu.hook, &vcpu.hook, 1}});
  } else {
    // Extend an existing run: walk it to keep A credit-sorted.
    Run& run = pos_a_[idx].run;
    util::ListHook* node = run.head;
    util::ListHook* insert_before = nullptr;
    for (std::size_t i = 0; i < run.count; ++i) {
      if (vcpu_of(node)->credit > vcpu.credit) {
        insert_before = node;
        break;
      }
      node = node->next;
    }
    if (insert_before == nullptr) {
      // Belongs after the run's current tail.
      a.insert(++sched::VcpuList::iterator(run.tail), vcpu);
      run.tail = &vcpu.hook;
    } else {
      a.insert(sched::VcpuList::iterator(insert_before), vcpu);
      if (insert_before == run.head) {
        run.head = &vcpu.hook;
      }
    }
    ++run.count;
  }
  ++stats_.incremental_inserts;
  HORSE_DCHECK_OK(audit(a, b));
  return util::Status::ok();
}

util::Status P2smIndex::remove_from_a(sched::VcpuList& a, sched::Vcpu& vcpu) {
  if (!built_) {
    return {util::StatusCode::kFailedPrecondition, "p2sm: index not built"};
  }
  if (poisoned_) {
    return {util::StatusCode::kFailedPrecondition,
            "p2sm: index poisoned; rebuild before A-side updates"};
  }
  if (HORSE_FAULT_POINT("p2sm.remove.fault")) {
    return {util::StatusCode::kInternal,
            "p2sm: injected incremental-remove failure"};
  }
  // Find the run containing the vCPU (paper: O(m) worst case — all of A
  // in one run with the victim last).
  for (std::size_t r = 0; r < pos_a_.size(); ++r) {
    Run& run = pos_a_[r].run;
    util::ListHook* node = run.head;
    for (std::size_t i = 0; i < run.count; ++i) {
      util::ListHook* next = node->next;
      if (node == &vcpu.hook) {
        if (run.count == 1) {
          pos_a_.erase(pos_a_.begin() + static_cast<std::ptrdiff_t>(r));
        } else {
          if (run.head == node) {
            run.head = next;
          }
          if (run.tail == node) {
            run.tail = node->prev;
          }
          --run.count;
        }
        a.erase(vcpu);
        ++stats_.incremental_removes;
        return util::Status::ok();
      }
      node = next;
    }
  }
  return {util::StatusCode::kNotFound, "p2sm: vcpu not indexed"};
}

util::Status P2smIndex::merge(sched::VcpuList& a, sched::RunQueue& b,
                              MergeExecutor& executor) {
  if (!fresh(b)) {
    return {util::StatusCode::kFailedPrecondition,
            "p2sm: index stale; cannot O(1)-merge"};
  }
  if (poisoned_) {
    return {util::StatusCode::kInternal,
            "p2sm: index poisoned; cannot trust the precomputed splices"};
  }
  if (a.size() == 0) {
    return {util::StatusCode::kFailedPrecondition, "p2sm: empty source list"};
  }
  HORSE_DCHECK_OK(audit(a, b));

  // Materialise the splice set. task_buffer_ is reused so the steady-state
  // merge allocates nothing. The loop streams the repacked RunEntry table
  // (two entries per cache line) and prefetches one entry ahead plus the
  // anchor hook that entry will dereference, so the splice build never
  // stalls on a cold arrayB node.
  task_buffer_.clear();
  task_buffer_.reserve(pos_a_.size());
  std::size_t total = 0;
  const RunEntry* entries = pos_a_.data();
  const std::size_t n_runs = pos_a_.size();
  for (std::size_t r = 0; r < n_runs; ++r) {
    if (r + 1 < n_runs) {
      sched::credit_scan::prefetch(entries + r + 1);
      const AnchorIndex next_anchor = entries[r + 1].anchor;
      if (next_anchor != kBeforeHead) {
        sched::credit_scan::prefetch(
            hooks_b_[static_cast<std::size_t>(next_anchor)]);
      }
    }
    const AnchorIndex anchor = entries[r].anchor;
    const Run& run = entries[r].run;
    util::ListHook* anchor_hook =
        anchor == kBeforeHead ? b.list().sentinel()
                              : hooks_b_[static_cast<std::size_t>(anchor)];
    task_buffer_.push_back(SpliceTask{anchor_hook, run.head, run.tail});
    total += run.count;
  }
  assert(total == a.size());

  // Journal every spliced node as a positional insert BEFORE the splices
  // rewrite any links (the staging walk follows A's chains). Co-resident
  // indexes on this queue then repair() in O(runs + delta) instead of
  // rebuilding — the mutation that used to trigger the rebuild storm.
  // Entries are staged with plain stores and published as one release
  // fetch_add of `total` after the splices land, so the resume path pays a
  // single atomic RMW. A chain larger than the journal (unreachable: the
  // paper bounds vCPUs at 36 < 64) is simply not staged; readers see the
  // version gap and rebuild.
  if (total <= sched::RunQueue::kJournalCapacity) {
    std::size_t prior = 0;
    for (const auto& [anchor, run] : runs()) {
      util::ListHook* node = run.head;
      for (std::size_t j = 0; j < run.count; ++j) {
        // Final position: the anchor's own index, plus every node staged
        // before this run, plus this run's prefix, plus one to land after
        // the anchor. Applying the entries in version order reproduces
        // exactly the post-splice queue.
        const auto position = static_cast<std::int32_t>(
            anchor + static_cast<AnchorIndex>(prior + j) + 1);
        b.stage_delta(prior + j, sched::QueueDelta::Kind::kInsert, position,
                      vcpu_of(node)->credit, node);
        node = node->next;
      }
      prior += run.count;
    }
  }

  // Detach A's container bookkeeping first (O(1)); the nodes themselves
  // are re-linked by the splices.
  const auto chain = a.take_all();
  (void)chain;

  executor.execute(task_buffer_);

  b.list().add_size(total);
  b.publish_staged_deltas(total);
  built_ = false;  // consumed
  pos_a_.clear();
  ++stats_.merges;
  // The post-merge queue must be a sorted, fully closed ring: this is the
  // check that catches a mis-spliced (non-disjoint) task set.
  HORSE_DCHECK_OK(b.check_invariants(/*require_sorted=*/true));
  return util::Status::ok();
}

std::size_t P2smIndex::memory_bytes() const noexcept {
  return b_capacity_ * (sizeof(util::ListHook*) + sizeof(sched::Credit)) +
         pos_a_.capacity() * sizeof(RunEntry) +
         task_buffer_.capacity() * sizeof(SpliceTask);
}

}  // namespace horse::core
