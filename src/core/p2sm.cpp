#include "core/p2sm.hpp"

#include <algorithm>
#include <cassert>
#include <string>

#include "util/dcheck.hpp"
#include "util/fault_injection.hpp"

namespace horse::core {

namespace {

sched::Vcpu* vcpu_of(util::ListHook* hook) noexcept {
  return sched::VcpuList::from_hook(hook);
}

}  // namespace

P2smIndex::AnchorIndex P2smIndex::anchor_for(sched::Credit credit) const noexcept {
  // First element of B strictly greater than `credit`; everything before
  // it is <= credit, so the anchor is the element just before it.
  const auto it =
      std::upper_bound(credits_b_.begin(), credits_b_.end(), credit);
  return static_cast<AnchorIndex>(it - credits_b_.begin()) - 1;
}

void P2smIndex::rebuild(sched::VcpuList& a, sched::RunQueue& b) {
  array_b_.clear();
  credits_b_.clear();
  pos_a_.clear();

  array_b_.reserve(b.size());
  credits_b_.reserve(b.size());
  for (sched::Vcpu& vcpu : b.list()) {
    array_b_.push_back(&vcpu.hook);
    credits_b_.push_back(vcpu.credit);
  }

  // Partition A (sorted) into maximal runs per anchor. Anchors are
  // non-decreasing along A, so a single pass suffices.
  for (sched::Vcpu& vcpu : a) {
    const AnchorIndex anchor = anchor_for(vcpu.credit);
    auto [it, inserted] = pos_a_.try_emplace(anchor);
    Run& run = it->second;
    if (inserted) {
      run.head = &vcpu.hook;
    }
    run.tail = &vcpu.hook;
    ++run.count;
  }

  built_version_ = b.version();
  built_ = true;
  poisoned_ = false;  // a full recompute cures any earlier poisoning
  ++stats_.rebuilds;

  // Injected corruption: mark the freshly built anchor table untrustworthy.
  // No real structure is damaged (a truly scrambled pos_a_ would make the
  // *next* rebuild read freed memory); the poison flag makes merge() and
  // the audit behave exactly as if the corruption had been detected, which
  // is the contract the degradation ladder is tested against.
  if (HORSE_FAULT_POINT("p2sm.rebuild.corrupt_anchor")) {
    poisoned_ = true;
    return;  // skip the self-audit: it would (correctly) refuse the index
  }
  HORSE_DCHECK_OK(audit(a, b));
}

util::Status P2smIndex::audit(sched::VcpuList& a,
                              const sched::RunQueue& b) const {
  if (!built_) {
    return {util::StatusCode::kFailedPrecondition, "p2sm audit: index not built"};
  }
  if (poisoned_) {
    return {util::StatusCode::kInternal,
            "p2sm audit: index poisoned (corrupt anchor table)"};
  }

  // arrayB / creditsB agreement.
  if (array_b_.size() != credits_b_.size()) {
    return {util::StatusCode::kInternal,
            "p2sm audit: arrayB/creditsB length mismatch"};
  }
  for (std::size_t i = 1; i < credits_b_.size(); ++i) {
    if (credits_b_[i] < credits_b_[i - 1]) {
      return {util::StatusCode::kInternal,
              "p2sm audit: creditsB not ascending at " + std::to_string(i)};
    }
  }
  if (fresh(b)) {
    // Only dereference the cached hooks when B is structurally unchanged
    // since the snapshot; on a stale index they may dangle.
    if (array_b_.size() != b.size()) {
      return {util::StatusCode::kInternal,
              "p2sm audit: fresh index but arrayB size " +
                  std::to_string(array_b_.size()) + " != |B| " +
                  std::to_string(b.size())};
    }
    for (std::size_t i = 0; i < array_b_.size(); ++i) {
      if (vcpu_of(array_b_[i])->credit != credits_b_[i]) {
        return {util::StatusCode::kInternal,
                "p2sm audit: cached credit diverges from live vCPU at " +
                    std::to_string(i) + " (B mutated under a fresh index?)"};
      }
    }
  }

  // Anchors monotone and in range. std::map keeps keys sorted, so the
  // monotonicity check guards against future container swaps; the range
  // check is the live one.
  AnchorIndex prev_anchor = kBeforeHead - 1;
  for (const auto& [anchor, run] : pos_a_) {
    if (anchor <= prev_anchor) {
      return {util::StatusCode::kInternal, "p2sm audit: anchors not monotone"};
    }
    if (anchor < kBeforeHead ||
        anchor >= static_cast<AnchorIndex>(array_b_.size())) {
      return {util::StatusCode::kInternal,
              "p2sm audit: anchor " + std::to_string(anchor) +
                  " outside [-1, " + std::to_string(array_b_.size()) + ")"};
    }
    if (run.head == nullptr || run.tail == nullptr || run.count == 0) {
      return {util::StatusCode::kInternal,
              "p2sm audit: degenerate run at anchor " + std::to_string(anchor)};
    }
    prev_anchor = anchor;
  }

  // Runs partition A: walking A front-to-back must visit each run's
  // [head..tail] exactly once, in anchor order, covering every node.
  auto run_it = pos_a_.begin();
  std::size_t remaining_in_run = 0;
  std::size_t covered = 0;
  const util::ListHook* expected_tail = nullptr;
  for (sched::Vcpu& vcpu : a) {
    if (remaining_in_run == 0) {
      if (run_it == pos_a_.end()) {
        return {util::StatusCode::kInternal,
                "p2sm audit: A has nodes beyond the last run"};
      }
      if (run_it->second.head != &vcpu.hook) {
        return {util::StatusCode::kInternal,
                "p2sm audit: run head does not match A order at anchor " +
                    std::to_string(run_it->first)};
      }
      remaining_in_run = run_it->second.count;
      expected_tail = run_it->second.tail;
    }
    if (anchor_for(vcpu.credit) != run_it->first) {
      return {util::StatusCode::kInternal,
              "p2sm audit: node anchored to " +
                  std::to_string(anchor_for(vcpu.credit)) + " but run is " +
                  std::to_string(run_it->first)};
    }
    --remaining_in_run;
    ++covered;
    if (remaining_in_run == 0) {
      if (expected_tail != &vcpu.hook) {
        return {util::StatusCode::kInternal,
                "p2sm audit: run tail does not match A order at anchor " +
                    std::to_string(run_it->first)};
      }
      ++run_it;
    }
  }
  if (remaining_in_run != 0 || run_it != pos_a_.end()) {
    return {util::StatusCode::kInternal,
            "p2sm audit: runs extend beyond A (count drift)"};
  }
  if (covered != a.size()) {
    return {util::StatusCode::kInternal,
            "p2sm audit: runs cover " + std::to_string(covered) +
                " nodes but |A| is " + std::to_string(a.size())};
  }
  return util::Status::ok();
}

util::Status P2smIndex::insert_into_a(sched::VcpuList& a, sched::Vcpu& vcpu,
                                      const sched::RunQueue& b) {
  if (!fresh(b)) {
    return {util::StatusCode::kFailedPrecondition,
            "p2sm: index stale; rebuild before A-side updates"};
  }
  if (poisoned_) {
    return {util::StatusCode::kFailedPrecondition,
            "p2sm: index poisoned; rebuild before A-side updates"};
  }
  if (HORSE_FAULT_POINT("p2sm.insert.fault")) {
    // Fires before any mutation: caller-visible failure with A, the run
    // table, and the vCPU all untouched (hotplug rolls back cleanly).
    return {util::StatusCode::kInternal,
            "p2sm: injected incremental-insert failure"};
  }
  const AnchorIndex anchor = anchor_for(vcpu.credit);
  auto it = pos_a_.find(anchor);
  if (it == pos_a_.end()) {
    // New run. Its position inside A is immediately before the head of
    // the next run (runs are ordered by anchor along A), or at A's end.
    auto next = pos_a_.upper_bound(anchor);
    if (next == pos_a_.end()) {
      a.push_back(vcpu);
    } else {
      a.insert(sched::VcpuList::iterator(next->second.head), vcpu);
    }
    pos_a_.emplace(anchor, Run{&vcpu.hook, &vcpu.hook, 1});
  } else {
    // Extend an existing run: walk it to keep A credit-sorted.
    Run& run = it->second;
    util::ListHook* node = run.head;
    util::ListHook* insert_before = nullptr;
    for (std::size_t i = 0; i < run.count; ++i) {
      if (vcpu_of(node)->credit > vcpu.credit) {
        insert_before = node;
        break;
      }
      node = node->next;
    }
    if (insert_before == nullptr) {
      // Belongs after the run's current tail.
      a.insert(++sched::VcpuList::iterator(run.tail), vcpu);
      run.tail = &vcpu.hook;
    } else {
      a.insert(sched::VcpuList::iterator(insert_before), vcpu);
      if (insert_before == run.head) {
        run.head = &vcpu.hook;
      }
    }
    ++run.count;
  }
  ++stats_.incremental_inserts;
  HORSE_DCHECK_OK(audit(a, b));
  return util::Status::ok();
}

util::Status P2smIndex::remove_from_a(sched::VcpuList& a, sched::Vcpu& vcpu) {
  if (!built_) {
    return {util::StatusCode::kFailedPrecondition, "p2sm: index not built"};
  }
  if (poisoned_) {
    return {util::StatusCode::kFailedPrecondition,
            "p2sm: index poisoned; rebuild before A-side updates"};
  }
  if (HORSE_FAULT_POINT("p2sm.remove.fault")) {
    return {util::StatusCode::kInternal,
            "p2sm: injected incremental-remove failure"};
  }
  // Find the run containing the vCPU (paper: O(m) worst case — all of A
  // in one run with the victim last).
  for (auto it = pos_a_.begin(); it != pos_a_.end(); ++it) {
    Run& run = it->second;
    util::ListHook* node = run.head;
    for (std::size_t i = 0; i < run.count; ++i) {
      util::ListHook* next = node->next;
      if (node == &vcpu.hook) {
        if (run.count == 1) {
          pos_a_.erase(it);
        } else {
          if (run.head == node) {
            run.head = next;
          }
          if (run.tail == node) {
            run.tail = node->prev;
          }
          --run.count;
        }
        a.erase(vcpu);
        ++stats_.incremental_removes;
        return util::Status::ok();
      }
      node = next;
    }
  }
  return {util::StatusCode::kNotFound, "p2sm: vcpu not indexed"};
}

util::Status P2smIndex::merge(sched::VcpuList& a, sched::RunQueue& b,
                              MergeExecutor& executor) {
  if (!fresh(b)) {
    return {util::StatusCode::kFailedPrecondition,
            "p2sm: index stale; cannot O(1)-merge"};
  }
  if (poisoned_) {
    return {util::StatusCode::kInternal,
            "p2sm: index poisoned; cannot trust the precomputed splices"};
  }
  if (a.size() == 0) {
    return {util::StatusCode::kFailedPrecondition, "p2sm: empty source list"};
  }
  HORSE_DCHECK_OK(audit(a, b));

  // Materialise the splice set. task_buffer_ is reused so the steady-state
  // merge allocates nothing.
  task_buffer_.clear();
  task_buffer_.reserve(pos_a_.size());
  std::size_t total = 0;
  for (const auto& [anchor, run] : pos_a_) {
    util::ListHook* anchor_hook =
        anchor == kBeforeHead ? b.list().sentinel()
                              : array_b_[static_cast<std::size_t>(anchor)];
    task_buffer_.push_back(SpliceTask{anchor_hook, run.head, run.tail});
    total += run.count;
  }
  assert(total == a.size());

  // Detach A's container bookkeeping first (O(1)); the nodes themselves
  // are re-linked by the splices.
  const auto chain = a.take_all();
  (void)chain;

  executor.execute(task_buffer_);

  b.list().add_size(total);
  b.bump_version();
  built_ = false;  // consumed
  pos_a_.clear();
  ++stats_.merges;
  // The post-merge queue must be a sorted, fully closed ring: this is the
  // check that catches a mis-spliced (non-disjoint) task set.
  HORSE_DCHECK_OK(b.check_invariants(/*require_sorted=*/true));
  return util::Status::ok();
}

std::size_t P2smIndex::memory_bytes() const noexcept {
  // std::map node: payload + two-child/parent pointers + color (~40 bytes
  // of overhead per node on libstdc++).
  constexpr std::size_t kMapNodeOverhead = 40;
  return array_b_.capacity() * sizeof(util::ListHook*) +
         credits_b_.capacity() * sizeof(sched::Credit) +
         task_buffer_.capacity() * sizeof(SpliceTask) +
         pos_a_.size() * (sizeof(std::pair<AnchorIndex, Run>) + kMapNodeOverhead);
}

}  // namespace horse::core
