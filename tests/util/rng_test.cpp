#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace horse::util {
namespace {

TEST(RngTest, DeterministicPerSeed) {
  Xoshiro256 a(123);
  Xoshiro256 b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) {
      ++same;
    }
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, ReseedRestartsStream) {
  Xoshiro256 rng(5);
  const auto first = rng();
  rng.reseed(5);
  EXPECT_EQ(rng(), first);
}

TEST(RngTest, Uniform01StaysInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, Uniform01MeanNearHalf) {
  Xoshiro256 rng(11);
  double sum = 0.0;
  constexpr int kSamples = 100'000;
  for (int i = 0; i < kSamples; ++i) {
    sum += rng.uniform01();
  }
  EXPECT_NEAR(sum / kSamples, 0.5, 0.01);
}

TEST(RngTest, BoundedRespectsBound) {
  Xoshiro256 rng(13);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.bounded(17), 17u);
  }
}

TEST(RngTest, BoundedZeroReturnsZero) {
  Xoshiro256 rng(13);
  EXPECT_EQ(rng.bounded(0), 0u);
}

TEST(RngTest, BoundedCoversAllValues) {
  Xoshiro256 rng(17);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.bounded(8));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Xoshiro256 rng(19);
  const double rate = 4.0;
  double sum = 0.0;
  constexpr int kSamples = 200'000;
  for (int i = 0; i < kSamples; ++i) {
    const double v = rng.exponential(rate);
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / kSamples, 1.0 / rate, 0.01);
}

TEST(RngTest, NormalMeanAndSpread) {
  Xoshiro256 rng(23);
  double sum = 0.0;
  double sq = 0.0;
  constexpr int kSamples = 200'000;
  for (int i = 0; i < kSamples; ++i) {
    const double v = rng.normal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / kSamples;
  const double var = sq / kSamples - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(RngTest, BoundedParetoStaysInBounds) {
  Xoshiro256 rng(29);
  for (int i = 0; i < 20'000; ++i) {
    const double v = rng.bounded_pareto(1.5, 10.0, 1000.0);
    EXPECT_GE(v, 10.0 * 0.999);
    EXPECT_LE(v, 1000.0 * 1.001);
  }
}

TEST(RngTest, BoundedParetoIsHeavyTailed) {
  // The mass should concentrate near the lower bound.
  Xoshiro256 rng(31);
  int below_100 = 0;
  constexpr int kSamples = 50'000;
  for (int i = 0; i < kSamples; ++i) {
    if (rng.bounded_pareto(1.5, 10.0, 10'000.0) < 100.0) {
      ++below_100;
    }
  }
  EXPECT_GT(below_100, kSamples * 9 / 10);
}

TEST(SplitMixTest, KnownFirstOutputsDiffer) {
  SplitMix64 sm(0);
  const auto a = sm.next();
  const auto b = sm.next();
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace horse::util
