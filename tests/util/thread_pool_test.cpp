#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>

namespace horse::util {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, WaitIdleOnFreshPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<bool> ran{false};
  pool.submit([&] { ran = true; });
  pool.wait_idle();
  EXPECT_TRUE(ran);
}

TEST(ThreadPoolTest, TasksCanSubmitMoreTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&] {
    counter.fetch_add(1);
    pool.submit([&] { counter.fetch_add(1); });
  });
  // Two rounds of wait: the nested task may enqueue after the first wait
  // begins, so wait until the counter settles.
  while (counter.load() < 2) {
    pool.wait_idle();
  }
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, DestructionJoinsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 10; ++i) {
      pool.submit([&] { counter.fetch_add(1); });
    }
    pool.wait_idle();
  }  // destructor joins
  EXPECT_EQ(counter.load(), 10);
}

}  // namespace
}  // namespace horse::util
