#include "util/intrusive_list.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace horse::util {
namespace {

struct Node {
  Node() = default;
  explicit Node(int v) : value(v) {}
  int value = 0;
  ListHook hook;
};

using List = IntrusiveList<Node, &Node::hook>;

std::vector<int> values_of(List& list) {
  std::vector<int> out;
  for (Node& node : list) {
    out.push_back(node.value);
  }
  return out;
}

TEST(IntrusiveListTest, StartsEmpty) {
  List list;
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.size(), 0u);
  EXPECT_EQ(list.begin(), list.end());
}

TEST(IntrusiveListTest, PushBackPreservesOrder) {
  List list;
  Node a{1}, b{2}, c{3};
  list.push_back(a);
  list.push_back(b);
  list.push_back(c);
  EXPECT_EQ(values_of(list), (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(list.size(), 3u);
}

TEST(IntrusiveListTest, PushFrontPrepends) {
  List list;
  Node a{1}, b{2};
  list.push_front(a);
  list.push_front(b);
  EXPECT_EQ(values_of(list), (std::vector<int>{2, 1}));
}

TEST(IntrusiveListTest, FrontAndBackAccessors) {
  List list;
  Node a{1}, b{2};
  list.push_back(a);
  list.push_back(b);
  EXPECT_EQ(list.front().value, 1);
  EXPECT_EQ(list.back().value, 2);
}

TEST(IntrusiveListTest, InsertBeforeIterator) {
  List list;
  Node a{1}, b{3}, mid{2};
  list.push_back(a);
  list.push_back(b);
  auto it = list.begin();
  ++it;  // points at b
  list.insert(it, mid);
  EXPECT_EQ(values_of(list), (std::vector<int>{1, 2, 3}));
}

TEST(IntrusiveListTest, InsertAtEndIsPushBack) {
  List list;
  Node a{1}, b{2};
  list.push_back(a);
  list.insert(list.end(), b);
  EXPECT_EQ(values_of(list), (std::vector<int>{1, 2}));
}

TEST(IntrusiveListTest, EraseMiddleRelinksNeighbours) {
  List list;
  Node a{1}, b{2}, c{3};
  list.push_back(a);
  list.push_back(b);
  list.push_back(c);
  list.erase(b);
  EXPECT_EQ(values_of(list), (std::vector<int>{1, 3}));
  EXPECT_FALSE(b.hook.is_linked());
}

TEST(IntrusiveListTest, PopFrontReturnsHead) {
  List list;
  Node a{1}, b{2};
  list.push_back(a);
  list.push_back(b);
  EXPECT_EQ(list.pop_front().value, 1);
  EXPECT_EQ(list.pop_front().value, 2);
  EXPECT_TRUE(list.empty());
}

TEST(IntrusiveListTest, ClearUnlinksEverything) {
  List list;
  Node nodes[5];
  for (int i = 0; i < 5; ++i) {
    nodes[i].value = i;
    list.push_back(nodes[i]);
  }
  list.clear();
  EXPECT_TRUE(list.empty());
  for (const Node& node : nodes) {
    EXPECT_FALSE(node.hook.is_linked());
  }
}

TEST(IntrusiveListTest, UnlinkOnUnlinkedHookIsNoop) {
  Node a{1};
  a.hook.unlink();  // must not crash
  EXPECT_FALSE(a.hook.is_linked());
}

TEST(IntrusiveListTest, FromHookRecoversObject) {
  Node a{42};
  EXPECT_EQ(List::from_hook(&a.hook), &a);
  EXPECT_EQ(List::from_hook(&a.hook)->value, 42);
}

TEST(IntrusiveListTest, BidirectionalIteration) {
  List list;
  Node a{1}, b{2}, c{3};
  list.push_back(a);
  list.push_back(b);
  list.push_back(c);
  auto it = list.end();
  --it;
  EXPECT_EQ(it->value, 3);
  --it;
  EXPECT_EQ(it->value, 2);
}

TEST(IntrusiveListTest, TakeAllDetachesChain) {
  List list;
  Node a{1}, b{2}, c{3};
  list.push_back(a);
  list.push_back(b);
  list.push_back(c);
  const auto chain = list.take_all();
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(chain.count, 3u);
  EXPECT_EQ(chain.first, &a.hook);
  EXPECT_EQ(chain.last, &c.hook);
  EXPECT_EQ(chain.first->prev, nullptr);
  EXPECT_EQ(chain.last->next, nullptr);
  // Interior links intact.
  EXPECT_EQ(a.hook.next, &b.hook);
  EXPECT_EQ(b.hook.next, &c.hook);
  // Manually unlink the chain so the nodes' destructors see clean hooks.
  a.hook = {};
  b.hook = {};
  c.hook = {};
}

TEST(IntrusiveListTest, TakeAllOnEmptyListReturnsNull) {
  List list;
  const auto chain = list.take_all();
  EXPECT_EQ(chain.first, nullptr);
  EXPECT_EQ(chain.count, 0u);
}

TEST(IntrusiveListTest, SpliceAfterSentinelPrepends) {
  List target;
  Node a{10}, b{20};
  target.push_back(a);
  target.push_back(b);

  List source;
  Node x{1}, y{2};
  source.push_back(x);
  source.push_back(y);
  const auto chain = source.take_all();

  target.splice_after_node(target.sentinel(), chain.first, chain.last,
                           chain.count);
  EXPECT_EQ(values_of(target), (std::vector<int>{1, 2, 10, 20}));
  EXPECT_EQ(target.size(), 4u);
}

TEST(IntrusiveListTest, SpliceAfterMiddleNode) {
  List target;
  Node a{1}, b{4};
  target.push_back(a);
  target.push_back(b);

  List source;
  Node x{2}, y{3};
  source.push_back(x);
  source.push_back(y);
  const auto chain = source.take_all();

  target.splice_after_node(&a.hook, chain.first, chain.last, chain.count);
  EXPECT_EQ(values_of(target), (std::vector<int>{1, 2, 3, 4}));
}

TEST(IntrusiveListTest, SpliceAfterLastNodeAppends) {
  List target;
  Node a{1};
  target.push_back(a);

  List source;
  Node x{2};
  source.push_back(x);
  const auto chain = source.take_all();

  target.splice_after_node(&a.hook, chain.first, chain.last, chain.count);
  EXPECT_EQ(values_of(target), (std::vector<int>{1, 2}));
  EXPECT_EQ(&target.back(), &x);
}

TEST(IntrusiveListTest, SpliceIntoEmptyList) {
  List target;
  List source;
  Node x{1}, y{2};
  source.push_back(x);
  source.push_back(y);
  const auto chain = source.take_all();
  target.splice_after_node(target.sentinel(), chain.first, chain.last,
                           chain.count);
  EXPECT_EQ(values_of(target), (std::vector<int>{1, 2}));
}

TEST(IntrusiveListTest, ReusableAfterErase) {
  List list;
  Node a{1};
  list.push_back(a);
  list.erase(a);
  list.push_back(a);  // re-link the same node
  EXPECT_EQ(values_of(list), (std::vector<int>{1}));
}

}  // namespace
}  // namespace horse::util
