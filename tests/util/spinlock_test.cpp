#include "util/spinlock.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace horse::util {
namespace {

TEST(SpinlockTest, LockUnlockSingleThread) {
  Spinlock lock;
  lock.lock();
  lock.unlock();
  lock.lock();
  lock.unlock();
}

TEST(SpinlockTest, TryLockSucceedsWhenFree) {
  Spinlock lock;
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(SpinlockTest, TryLockFailsWhenHeld) {
  Spinlock lock;
  lock.lock();
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(SpinlockTest, GuardReleasesOnScopeExit) {
  Spinlock lock;
  {
    LockGuard guard(lock);
    EXPECT_FALSE(lock.try_lock());
  }
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(SpinlockTest, MutualExclusionUnderContention) {
  Spinlock lock;
  long counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIncrements = 20'000;
  std::vector<std::jthread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        LockGuard guard(lock);
        ++counter;  // data race iff the lock is broken
      }
    });
  }
  threads.clear();  // join
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIncrements);
}

TEST(SpinlockTest, IsCacheLineAligned) {
  EXPECT_EQ(alignof(Spinlock), kCacheLineSize);
}

TEST(PaddedAtomicTest, OccupiesFullCacheLine) {
  EXPECT_GE(sizeof(PaddedAtomic<int>), kCacheLineSize);
  PaddedAtomic<int> value(7);
  EXPECT_EQ(value.load(), 7);
  value.store(9);
  EXPECT_EQ(value.load(), 9);
}

}  // namespace
}  // namespace horse::util
