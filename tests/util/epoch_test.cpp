#include "util/epoch.hpp"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

namespace horse::util {
namespace {

// Heap object carrying the intrusive retire hook, the way TrackedNode
// does. `destroy` counts into the shared counter and frees the object.
struct TestNode {
  explicit TestNode(std::atomic<int>& counter) : destroyed(&counter) {
    retire.owner = this;
    retire.destroy = [](void* owner) {
      auto* node = static_cast<TestNode*>(owner);
      node->destroyed->fetch_add(1);
      delete node;
    };
  }
  std::atomic<int>* destroyed;
  EpochRetireNode retire;
};

TEST(EpochReclaimerTest, RetireThenReclaimWithinThreeAdvances) {
  EpochReclaimer reclaimer;
  std::atomic<int> destroyed{0};
  reclaimer.retire(&(new TestNode(destroyed))->retire);
  EXPECT_EQ(reclaimer.pending(), 1u);

  // A node retired at epoch e sits two advances behind the reclaim
  // horizon: with no readers, at most three attempts free it.
  std::size_t freed = 0;
  for (int i = 0; i < 3 && freed == 0; ++i) {
    freed = reclaimer.try_reclaim();
  }
  EXPECT_EQ(freed, 1u);
  EXPECT_EQ(destroyed.load(), 1);
  EXPECT_EQ(reclaimer.pending(), 0u);
  EXPECT_EQ(reclaimer.retired(), 1u);
  EXPECT_EQ(reclaimer.reclaimed(), 1u);
}

TEST(EpochReclaimerTest, PinnedReaderBlocksItsEpochsGarbage) {
  EpochReclaimer reclaimer;
  std::atomic<int> destroyed{0};

  const std::size_t slot = reclaimer.pin();
  EXPECT_LT(slot, EpochReclaimer::kReaderSlots);
  reclaimer.retire(&(new TestNode(destroyed))->retire);

  // The reader pinned the retire epoch. One advance may legally happen
  // (the reader is at the current epoch), after which the reader lags and
  // every further attempt must decline — so the node can never reach the
  // reclaim horizon while the pin is held.
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(reclaimer.try_reclaim(), 0u);
  }
  EXPECT_EQ(destroyed.load(), 0);
  EXPECT_EQ(reclaimer.pending(), 1u);

  reclaimer.unpin(slot);
  std::size_t freed = 0;
  for (int i = 0; i < 3 && freed == 0; ++i) {
    freed = reclaimer.try_reclaim();
  }
  EXPECT_EQ(freed, 1u);
  EXPECT_EQ(destroyed.load(), 1);
}

TEST(EpochReclaimerTest, ReadGuardUnpinsOnScopeExit) {
  EpochReclaimer reclaimer;
  std::atomic<int> destroyed{0};
  {
    EpochReclaimer::ReadGuard guard(reclaimer);
    reclaimer.retire(&(new TestNode(destroyed))->retire);
    for (int i = 0; i < 6; ++i) {
      EXPECT_EQ(reclaimer.try_reclaim(), 0u);
    }
    EXPECT_EQ(destroyed.load(), 0);
  }
  std::size_t freed = 0;
  for (int i = 0; i < 3 && freed == 0; ++i) {
    freed = reclaimer.try_reclaim();
  }
  EXPECT_EQ(freed, 1u);
  EXPECT_EQ(destroyed.load(), 1);
}

TEST(EpochReclaimerTest, DistinctSlotsForConcurrentPins) {
  EpochReclaimer reclaimer;
  const std::size_t first = reclaimer.pin();
  const std::size_t second = reclaimer.pin();
  EXPECT_NE(first, second);
  reclaimer.unpin(first);
  reclaimer.unpin(second);
}

TEST(EpochReclaimerTest, SlotExhaustionIsCountedNotSilent) {
  // All kReaderSlots occupied: an extra pin() must wait for a free slot,
  // and the wait must be observable (slot_exhaustion counter) rather
  // than an indistinguishable-from-deadlock silent spin.
  EpochReclaimer reclaimer;
  std::array<std::size_t, EpochReclaimer::kReaderSlots> slots{};
  for (auto& slot : slots) {
    slot = reclaimer.pin();
  }
  EXPECT_EQ(reclaimer.slot_exhaustion(), 0u);

  std::atomic<bool> pinned{false};
  std::thread waiter([&reclaimer, &pinned] {
    const std::size_t slot = reclaimer.pin();
    pinned.store(true);
    reclaimer.unpin(slot);
  });
  while (reclaimer.slot_exhaustion() == 0) {
    std::this_thread::yield();
  }
  // No slot has been released yet, so the waiter cannot have claimed one.
  EXPECT_FALSE(pinned.load());

  reclaimer.unpin(slots.front());
  waiter.join();
  EXPECT_TRUE(pinned.load());
  EXPECT_GE(reclaimer.slot_exhaustion(), 1u);
  for (std::size_t i = 1; i < slots.size(); ++i) {
    reclaimer.unpin(slots[i]);
  }
}

TEST(EpochReclaimerTest, DestructorDrainsEverythingPending) {
  std::atomic<int> destroyed{0};
  constexpr int kNodes = 5;
  {
    EpochReclaimer reclaimer;
    for (int i = 0; i < kNodes; ++i) {
      reclaimer.retire(&(new TestNode(destroyed))->retire);
      // Spread the retirements across epochs so every bucket holds some.
      (void)reclaimer.try_reclaim();
    }
  }
  EXPECT_EQ(destroyed.load(), kNodes);
}

TEST(EpochReclaimerTest, ThreadedPinRetireReclaimLosesNothing) {
  // Free-running exercise of the whole protocol; the TSan preset turns a
  // missing happens-before between retire and destroy into a hard fail.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::atomic<int> destroyed{0};
  {
    EpochReclaimer reclaimer;
    std::vector<std::jthread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&reclaimer, &destroyed] {
        for (int i = 0; i < kPerThread; ++i) {
          auto* node = new TestNode(destroyed);
          {
            EpochReclaimer::ReadGuard guard(reclaimer);
            // Simulated read-side critical section: the object must be
            // alive for the whole pinned window even after retiring.
            ASSERT_EQ(node->retire.owner, node);
          }
          reclaimer.retire(&node->retire);
          if (i % 16 == 0) {
            (void)reclaimer.try_reclaim();
          }
        }
      });
    }
    threads.clear();  // join
    EXPECT_EQ(reclaimer.retired(),
              static_cast<std::uint64_t>(kThreads) * kPerThread);
  }
  // Destructor drain: every retired node was destroyed exactly once.
  EXPECT_EQ(destroyed.load(), kThreads * kPerThread);
}

}  // namespace
}  // namespace horse::util
