#include "util/status.hpp"

#include <gtest/gtest.h>

namespace horse::util {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.is_ok());
  EXPECT_TRUE(static_cast<bool>(status));
  EXPECT_EQ(status.code(), StatusCode::kOk);
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status(StatusCode::kNotFound, "no such sandbox");
  EXPECT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(status.message(), "no such sandbox");
  EXPECT_EQ(status.to_report(), "NOT_FOUND: no such sandbox");
}

TEST(StatusTest, ToStringCoversAllCodes) {
  EXPECT_EQ(to_string(StatusCode::kOk), "OK");
  EXPECT_EQ(to_string(StatusCode::kInvalidArgument), "INVALID_ARGUMENT");
  EXPECT_EQ(to_string(StatusCode::kNotFound), "NOT_FOUND");
  EXPECT_EQ(to_string(StatusCode::kAlreadyExists), "ALREADY_EXISTS");
  EXPECT_EQ(to_string(StatusCode::kFailedPrecondition), "FAILED_PRECONDITION");
  EXPECT_EQ(to_string(StatusCode::kResourceExhausted), "RESOURCE_EXHAUSTED");
  EXPECT_EQ(to_string(StatusCode::kUnavailable), "UNAVAILABLE");
  EXPECT_EQ(to_string(StatusCode::kInternal), "INTERNAL");
}

TEST(ExpectedTest, HoldsValue) {
  Expected<int> value(42);
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(*value, 42);
  EXPECT_TRUE(value.status().is_ok());
}

TEST(ExpectedTest, HoldsError) {
  Expected<int> error(Status{StatusCode::kUnavailable, "nope"});
  EXPECT_FALSE(error.has_value());
  EXPECT_FALSE(static_cast<bool>(error));
  EXPECT_EQ(error.status().code(), StatusCode::kUnavailable);
}

TEST(ExpectedTest, MoveOutValue) {
  Expected<std::string> value(std::string("payload"));
  const std::string moved = std::move(value).value();
  EXPECT_EQ(moved, "payload");
}

TEST(ExpectedTest, ArrowOperator) {
  Expected<std::string> value(std::string("abc"));
  EXPECT_EQ(value->size(), 3u);
}

}  // namespace
}  // namespace horse::util
