#include "util/backoff.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <limits>
#include <vector>

#include "util/rng.hpp"
#include "util/time.hpp"

namespace horse::util {
namespace {

TEST(BackoffTest, CeilingDoublesFromBase) {
  Backoff backoff{BackoffPolicy{100, 100000}};
  EXPECT_EQ(backoff.ceiling(1), 100);
  EXPECT_EQ(backoff.ceiling(2), 200);
  EXPECT_EQ(backoff.ceiling(3), 400);
  EXPECT_EQ(backoff.ceiling(4), 800);
}

TEST(BackoffTest, CeilingMonotoneAndNeverAboveCap) {
  Backoff backoff{BackoffPolicy{50 * kMicrosecond, 10 * kMillisecond}};
  Nanos prev = 0;
  for (std::size_t attempt = 1; attempt <= 100; ++attempt) {
    const Nanos ceiling = backoff.ceiling(attempt);
    EXPECT_GE(ceiling, prev) << "attempt " << attempt;
    EXPECT_LE(ceiling, backoff.policy().cap) << "attempt " << attempt;
    prev = ceiling;
  }
  // The cap is actually reached (not just approached).
  EXPECT_EQ(backoff.ceiling(100), backoff.policy().cap);
}

TEST(BackoffTest, CeilingSaturatesInsteadOfOverflowing) {
  // A base large enough that doubling wraps Nanos well before the shift
  // guard kicks in: the ceiling must saturate at the cap, never go
  // negative or cycle.
  const Nanos huge = std::numeric_limits<Nanos>::max() / 3;
  Backoff backoff{BackoffPolicy{huge, std::numeric_limits<Nanos>::max()}};
  for (std::size_t attempt = 1; attempt <= 70; ++attempt) {
    const Nanos ceiling = backoff.ceiling(attempt);
    EXPECT_GT(ceiling, 0) << "attempt " << attempt;
    EXPECT_LE(ceiling, backoff.policy().cap) << "attempt " << attempt;
  }
  EXPECT_EQ(backoff.ceiling(70), backoff.policy().cap);
}

TEST(BackoffTest, ZeroBaseDisablesDelay) {
  Backoff backoff{BackoffPolicy{0, 10 * kMillisecond}};
  Xoshiro256 rng(7);
  EXPECT_EQ(backoff.ceiling(1), 0);
  EXPECT_EQ(backoff.delay(1, rng), 0);
  EXPECT_EQ(backoff.delay(10, rng), 0);
}

TEST(BackoffTest, DelayWithinWindowAndFlooredAtOneNanosecond) {
  Backoff backoff{BackoffPolicy{50 * kMicrosecond, 10 * kMillisecond}};
  Xoshiro256 rng(42);
  for (std::size_t attempt = 1; attempt <= 40; ++attempt) {
    for (int i = 0; i < 64; ++i) {
      const Nanos delay = backoff.delay(attempt, rng);
      EXPECT_GE(delay, 1) << "attempt " << attempt;
      EXPECT_LE(delay, backoff.ceiling(attempt)) << "attempt " << attempt;
    }
  }
}

TEST(BackoffTest, SeededDeterminism) {
  Backoff backoff{BackoffPolicy{50 * kMicrosecond, 10 * kMillisecond}};
  std::vector<Nanos> first;
  std::vector<Nanos> second;
  {
    Xoshiro256 rng(12345);
    for (std::size_t attempt = 1; attempt <= 20; ++attempt) {
      first.push_back(backoff.delay(attempt, rng));
    }
  }
  {
    Xoshiro256 rng(12345);
    for (std::size_t attempt = 1; attempt <= 20; ++attempt) {
      second.push_back(backoff.delay(attempt, rng));
    }
  }
  EXPECT_EQ(first, second);
  // And a different seed produces a different stream (full jitter, not a
  // fixed schedule).
  Xoshiro256 other(54321);
  std::vector<Nanos> third;
  for (std::size_t attempt = 1; attempt <= 20; ++attempt) {
    third.push_back(backoff.delay(attempt, other));
  }
  EXPECT_NE(first, third);
}

TEST(BackoffTest, FullJitterSpreadsOverWindow) {
  // Draws for one attempt should cover the window broadly, not cluster:
  // with 512 draws from (0, 1024] expect both halves populated.
  Backoff backoff{BackoffPolicy{1024, 1024}};
  Xoshiro256 rng(99);
  int low = 0;
  int high = 0;
  for (int i = 0; i < 512; ++i) {
    const Nanos delay = backoff.delay(1, rng);
    (delay <= 512 ? low : high)++;
  }
  EXPECT_GT(low, 100);
  EXPECT_GT(high, 100);
}

}  // namespace
}  // namespace horse::util
