#include "util/cycle_clock.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "util/time.hpp"

namespace horse::util {
namespace {

TEST(CycleClockTest, NowIsNonDecreasing) {
  std::uint64_t previous = CycleClock::now();
  for (int i = 0; i < 10'000; ++i) {
    const std::uint64_t current = CycleClock::now();
    ASSERT_GE(current, previous);
    previous = current;
  }
}

TEST(CycleClockTest, CalibratedRatioIsPlausible) {
  CycleClock::calibrate();
  const double ratio = CycleClock::ns_per_cycle();
  if (CycleClock::available()) {
    // Anything from a 100 GHz counter to a 10 MHz one; outside that the
    // calibration is supposed to have fallen back to identity.
    EXPECT_GT(ratio, 0.0);
    EXPECT_LE(ratio, 100.0);
  } else {
    EXPECT_DOUBLE_EQ(ratio, 1.0);  // now() already returns nanoseconds
  }
}

TEST(CycleClockTest, CalibrationIsStableAcrossCalls) {
  const double first = CycleClock::ns_per_cycle();
  const double second = CycleClock::ns_per_cycle();
  EXPECT_DOUBLE_EQ(first, second);  // one-time magic static, never re-spun
}

TEST(CycleClockTest, CyclesToNanosTracksSteadyClock) {
  CycleClock::calibrate();
  // Time the same ~2 ms sleep with both clocks; the conversions must agree
  // to well within 2x (generous: CI boxes sleep long, never short).
  const Stopwatch chrono_watch;
  const std::uint64_t start = CycleClock::now();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const std::uint64_t cycles = CycleClock::now() - start;
  const Nanos chrono_ns = chrono_watch.elapsed();
  const Nanos cycle_ns = CycleClock::cycles_to_nanos(cycles);

  EXPECT_GE(cycle_ns, chrono_ns / 2);
  EXPECT_LE(cycle_ns, chrono_ns * 2);
}

TEST(CycleClockTest, CyclesToNanosIsMonotoneInCycles) {
  EXPECT_EQ(CycleClock::cycles_to_nanos(0), 0);
  EXPECT_LE(CycleClock::cycles_to_nanos(100), CycleClock::cycles_to_nanos(200));
}

TEST(CycleStopwatchTest, ElapsedGrowsAndRestartResets) {
  CycleClock::calibrate();
  CycleStopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  const Nanos first = watch.elapsed();
  EXPECT_GT(first, 0);
  watch.restart();
  const Nanos after_restart = watch.elapsed();
  // A fresh start cannot carry the slept interval.
  EXPECT_LT(after_restart, first);
}

}  // namespace
}  // namespace horse::util
