#include "util/time.hpp"

#include <gtest/gtest.h>

namespace horse::util {
namespace {

TEST(TimeTest, UnitConstantsConsistent) {
  EXPECT_EQ(kMicrosecond, 1'000);
  EXPECT_EQ(kMillisecond, 1'000 * kMicrosecond);
  EXPECT_EQ(kSecond, 1'000 * kMillisecond);
}

TEST(TimeTest, MonotonicNowAdvances) {
  const Nanos a = monotonic_now();
  const Nanos b = monotonic_now();
  EXPECT_GE(b, a);
}

TEST(TimeTest, StopwatchMeasuresElapsed) {
  Stopwatch watch;
  spin_for(200 * kMicrosecond);
  const Nanos elapsed = watch.elapsed();
  EXPECT_GE(elapsed, 200 * kMicrosecond);
  // Generous upper bound: a loaded CI machine should still be far under 100x.
  EXPECT_LT(elapsed, 20 * kMillisecond);
}

TEST(TimeTest, StopwatchRestart) {
  Stopwatch watch;
  spin_for(100 * kMicrosecond);
  watch.restart();
  const Nanos elapsed = watch.elapsed();
  EXPECT_LT(elapsed, 100 * kMicrosecond);
}

TEST(TimeTest, SpinForZeroReturnsQuickly) {
  Stopwatch watch;
  spin_for(0);
  EXPECT_LT(watch.elapsed(), kMillisecond);
}

}  // namespace
}  // namespace horse::util
