// Property test for 𝒫²𝒮ℳ delta repair: 1024 seeds of random queue
// mutations (sorted inserts, targeted removes, head pops) interleaved
// with repair(), each repair checked for EXACT equivalence against a
// reference index freshly rebuilt from the live A and B.
//
// Equivalence is two-sided:
//   * the full structural audit (arrayB/creditsB vs the live queue, run
//     partition of A, anchor monotonicity) must pass after every repair;
//   * the repaired run table must equal the reference's entry-for-entry —
//     same anchors, same head/tail hook identities, same counts — and the
//     snapshots must agree on length.
// Both repair cadences run per seed from the same mutation sequence:
// stepwise (repair after every mutation, delta = 1) and batched (repair
// every k mutations, k random within the journal window), because the
// two exercise different shift/merge interleavings in the run table.
// Every scenario ends with a real merge, checked against std::sort.
#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <memory>
#include <vector>

#include "core/p2sm.hpp"
#include "sched/run_queue.hpp"
#include "util/rng.hpp"

namespace horse::core {
namespace {

enum class Cadence { kStepwise, kBatched };

/// The repaired index must be indistinguishable from one rebuilt from
/// scratch over the same A and B.
void expect_equivalent_to_fresh_rebuild(P2smIndex& subject,
                                        sched::VcpuList& a,
                                        sched::RunQueue& b,
                                        std::uint64_t seed, int step) {
  ASSERT_TRUE(subject.audit(a, b).is_ok())
      << "seed " << seed << " step " << step;
  P2smIndex reference;
  reference.rebuild(a, b);
  const auto subject_runs = subject.runs();
  const auto reference_runs = reference.runs();
  ASSERT_EQ(subject_runs.size(), reference_runs.size())
      << "seed " << seed << " step " << step;
  ASSERT_EQ(subject.array_b_size(), reference.array_b_size())
      << "seed " << seed << " step " << step;
  auto sub_it = subject_runs.begin();
  auto ref_it = reference_runs.begin();
  for (; sub_it != subject_runs.end(); ++sub_it, ++ref_it) {
    ASSERT_EQ(sub_it->anchor, ref_it->anchor)
        << "seed " << seed << " step " << step;
    ASSERT_EQ(sub_it->run.head, ref_it->run.head)
        << "seed " << seed << " step " << step;
    ASSERT_EQ(sub_it->run.tail, ref_it->run.tail)
        << "seed " << seed << " step " << step;
    ASSERT_EQ(sub_it->run.count, ref_it->run.count)
        << "seed " << seed << " step " << step;
  }
}

void run_scenario(std::uint64_t seed, Cadence cadence) {
  util::Xoshiro256 rng(seed);
  std::vector<std::unique_ptr<sched::Vcpu>> storage;
  auto make_vcpu = [&storage](sched::Credit credit) -> sched::Vcpu& {
    auto vcpu = std::make_unique<sched::Vcpu>();
    vcpu->id = static_cast<sched::VcpuId>(storage.size());
    vcpu->credit = credit;
    storage.push_back(std::move(vcpu));
    return *storage.back();
  };

  sched::RunQueue b(0);
  std::vector<sched::Vcpu*> b_members;  // shadow set for targeted removes
  const std::size_t b_initial = rng.bounded(24);
  for (std::size_t i = 0; i < b_initial; ++i) {
    sched::Vcpu& vcpu = make_vcpu(static_cast<sched::Credit>(rng.bounded(500)));
    b.insert_sorted(vcpu);
    b_members.push_back(&vcpu);
  }

  sched::VcpuList a;
  const std::size_t a_size = 1 + rng.bounded(10);
  for (std::size_t i = 0; i < a_size; ++i) {
    sched::Vcpu& vcpu = make_vcpu(static_cast<sched::Credit>(rng.bounded(500)));
    auto it = a.begin();
    while (it != a.end() && it->credit <= vcpu.credit) {
      ++it;
    }
    a.insert(it, vcpu);
  }

  P2smIndex subject;
  subject.rebuild(a, b);

  // Batched cadence repairs every k-th mutation; k stays well inside the
  // journal window so repair is always entitled to succeed.
  const std::size_t batch =
      cadence == Cadence::kStepwise
          ? 1
          : 1 + rng.bounded(sched::RunQueue::kJournalCapacity / 2);
  constexpr int kSteps = 20;
  std::size_t pending = 0;
  for (int step = 0; step < kSteps; ++step) {
    const std::uint64_t op = rng.bounded(3);
    if (op == 0 || b_members.empty()) {
      sched::Vcpu& vcpu =
          make_vcpu(static_cast<sched::Credit>(rng.bounded(500)));
      b.insert_sorted(vcpu);
      b_members.push_back(&vcpu);
    } else if (op == 1) {
      const std::size_t victim = rng.bounded(b_members.size());
      b.remove(*b_members[victim]);
      b_members.erase(b_members.begin() +
                      static_cast<std::ptrdiff_t>(victim));
    } else {
      sched::Vcpu* popped = b.pop_front();
      ASSERT_NE(popped, nullptr);
      b_members.erase(std::find(b_members.begin(), b_members.end(), popped));
    }
    if (++pending < batch) {
      continue;
    }
    pending = 0;
    ASSERT_TRUE(subject.repair(a, b).is_ok())
        << "seed " << seed << " step " << step;
    expect_equivalent_to_fresh_rebuild(subject, a, b, seed, step);
    if (::testing::Test::HasFatalFailure()) {
      return;  // ASSERTs in the helper only abort the helper itself
    }
  }
  if (pending > 0) {
    ASSERT_TRUE(subject.repair(a, b).is_ok()) << "seed " << seed;
    expect_equivalent_to_fresh_rebuild(subject, a, b, seed, kSteps);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
  EXPECT_GT(subject.stats().repairs, 0u) << "seed " << seed;
  EXPECT_EQ(subject.stats().repair_fallbacks, 0u) << "seed " << seed;
  EXPECT_EQ(subject.stats().rebuilds, 1u) << "seed " << seed;

  // The repaired index must still drive a correct O(1) splice.
  std::vector<sched::Credit> expected;
  for (const sched::Vcpu& vcpu : a) {
    expected.push_back(vcpu.credit);
  }
  for (const sched::Vcpu& vcpu : b.list()) {
    expected.push_back(vcpu.credit);
  }
  std::sort(expected.begin(), expected.end());
  SequentialMergeExecutor executor;
  ASSERT_TRUE(subject.merge(a, b, executor).is_ok()) << "seed " << seed;
  std::vector<sched::Credit> actual;
  for (const sched::Vcpu& vcpu : b.list()) {
    actual.push_back(vcpu.credit);
  }
  ASSERT_EQ(actual, expected) << "seed " << seed;
  ASSERT_TRUE(b.is_sorted()) << "seed " << seed;
  b.list().clear();  // unlink before vcpu storage is freed
}

TEST(P2smRepairPropertyTest, StepwiseRepairMatchesFreshRebuild1024Seeds) {
  for (std::uint64_t seed = 1; seed <= 1024; ++seed) {
    run_scenario(seed, Cadence::kStepwise);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
}

TEST(P2smRepairPropertyTest, BatchedRepairMatchesFreshRebuild1024Seeds) {
  for (std::uint64_t seed = 1; seed <= 1024; ++seed) {
    run_scenario(seed, Cadence::kBatched);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
}

}  // namespace
}  // namespace horse::core
