// Concurrency stress: multiple threads drive pause/resume cycles of
// distinct sandboxes against shared engines and topologies. These tests
// verify the engine-level serialization contract (global lock) and the
// per-queue locking under real contention — the properties TSan-style
// reasoning depends on but unit tests cannot exercise.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "core/horse_resume.hpp"
#include "vmm/resume_engine.hpp"

namespace horse {
namespace {

std::unique_ptr<vmm::Sandbox> make_sandbox(sched::SandboxId id,
                                           std::uint32_t vcpus, bool ull) {
  vmm::SandboxConfig config;
  config.name = "stress";
  config.num_vcpus = vcpus;
  config.memory_mb = 1;
  config.ull = ull;
  return std::make_unique<vmm::Sandbox>(id, config);
}

TEST(ConcurrentStressTest, VanillaEngineParallelCycles) {
  sched::CpuTopology topology(8);
  vmm::ResumeEngine engine(topology, vmm::VmmProfile::firecracker());

  constexpr int kThreads = 4;
  constexpr int kCycles = 200;
  std::vector<std::unique_ptr<vmm::Sandbox>> sandboxes;
  for (int t = 0; t < kThreads; ++t) {
    sandboxes.push_back(make_sandbox(static_cast<sched::SandboxId>(t + 1),
                                     1 + static_cast<std::uint32_t>(t), false));
    ASSERT_TRUE(engine.start(*sandboxes.back()).is_ok());
  }

  std::atomic<int> failures{0};
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        vmm::Sandbox& sandbox = *sandboxes[static_cast<std::size_t>(t)];
        for (int cycle = 0; cycle < kCycles; ++cycle) {
          if (!engine.pause(sandbox).is_ok() ||
              !engine.resume(sandbox).is_ok()) {
            failures.fetch_add(1);
            return;
          }
        }
      });
    }
  }
  EXPECT_EQ(failures.load(), 0);

  // Post-conditions: every vCPU runnable on a sorted queue, totals match.
  std::size_t queued = 0;
  for (sched::CpuId cpu = 0; cpu < topology.num_cpus(); ++cpu) {
    EXPECT_TRUE(topology.queue(cpu).is_sorted());
    queued += topology.queue(cpu).size();
  }
  EXPECT_EQ(queued, 1u + 2u + 3u + 4u);
  for (auto& sandbox : sandboxes) {
    EXPECT_TRUE(engine.destroy(*sandbox).is_ok());
  }
}

TEST(ConcurrentStressTest, HorseEngineParallelCycles) {
  sched::CpuTopology topology(8);
  core::HorseResumeEngine engine(topology, vmm::VmmProfile::firecracker());

  constexpr int kThreads = 4;
  constexpr int kCycles = 150;
  std::vector<std::unique_ptr<vmm::Sandbox>> sandboxes;
  for (int t = 0; t < kThreads; ++t) {
    sandboxes.push_back(make_sandbox(static_cast<sched::SandboxId>(t + 1), 2,
                                     /*ull=*/true));
    ASSERT_TRUE(engine.start(*sandboxes.back()).is_ok());
  }

  std::atomic<int> failures{0};
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        vmm::Sandbox& sandbox = *sandboxes[static_cast<std::size_t>(t)];
        for (int cycle = 0; cycle < kCycles; ++cycle) {
          if (!engine.pause(sandbox).is_ok()) {
            failures.fetch_add(1);
            return;
          }
          // The resume hits the stale-index fallback whenever another
          // thread's resume mutated the shared ull queue in between —
          // exactly the §4.1.3 contention scenario.
          if (!engine.resume(sandbox).is_ok()) {
            failures.fetch_add(1);
            return;
          }
        }
      });
    }
  }
  EXPECT_EQ(failures.load(), 0);

  EXPECT_TRUE(topology.queue(7).is_sorted());
  EXPECT_EQ(topology.queue(7).size(), 8u);  // 4 sandboxes x 2 vCPUs
  EXPECT_EQ(engine.ull_manager().tracked_count(), 0u);
  for (auto& sandbox : sandboxes) {
    EXPECT_TRUE(engine.destroy(*sandbox).is_ok());
  }
}

TEST(ConcurrentStressTest, MixedUllAndPlainSandboxes) {
  sched::CpuTopology topology(8);
  core::HorseResumeEngine engine(topology, vmm::VmmProfile::firecracker());

  constexpr int kThreads = 4;
  std::vector<std::unique_ptr<vmm::Sandbox>> sandboxes;
  for (int t = 0; t < kThreads; ++t) {
    sandboxes.push_back(make_sandbox(static_cast<sched::SandboxId>(t + 1), 3,
                                     /*ull=*/t % 2 == 0));
    ASSERT_TRUE(engine.start(*sandboxes.back()).is_ok());
  }
  std::atomic<int> failures{0};
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        vmm::Sandbox& sandbox = *sandboxes[static_cast<std::size_t>(t)];
        for (int cycle = 0; cycle < 100; ++cycle) {
          if (!engine.pause(sandbox).is_ok() ||
              !engine.resume(sandbox).is_ok()) {
            failures.fetch_add(1);
            return;
          }
        }
      });
    }
  }
  EXPECT_EQ(failures.load(), 0);
  // uLL vCPUs confined to the reserved queue; plain ones never on it.
  for (const sched::Vcpu& vcpu : topology.queue(7).list()) {
    EXPECT_EQ(vcpu.sandbox % 2, 1u);  // ids 1 and 3 are the ull sandboxes
  }
  for (auto& sandbox : sandboxes) {
    EXPECT_TRUE(engine.destroy(*sandbox).is_ok());
  }
}

TEST(ConcurrentStressTest, ParallelCrewUnderConcurrentResumes) {
  sched::CpuTopology topology(8);
  core::HorseConfig config;
  config.merge_mode = core::MergeMode::kParallel;
  config.crew_size = 2;
  core::HorseResumeEngine engine(topology, vmm::VmmProfile::firecracker(),
                                 config);

  constexpr int kThreads = 3;
  std::vector<std::unique_ptr<vmm::Sandbox>> sandboxes;
  for (int t = 0; t < kThreads; ++t) {
    sandboxes.push_back(make_sandbox(static_cast<sched::SandboxId>(t + 1), 4,
                                     /*ull=*/true));
    ASSERT_TRUE(engine.start(*sandboxes.back()).is_ok());
  }
  std::atomic<int> failures{0};
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        vmm::Sandbox& sandbox = *sandboxes[static_cast<std::size_t>(t)];
        for (int cycle = 0; cycle < 50; ++cycle) {
          if (!engine.pause(sandbox).is_ok() ||
              !engine.resume(sandbox).is_ok()) {
            failures.fetch_add(1);
            return;
          }
        }
      });
    }
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_TRUE(topology.queue(7).is_sorted());
  EXPECT_EQ(topology.queue(7).size(), 12u);
  for (auto& sandbox : sandboxes) {
    EXPECT_TRUE(engine.destroy(*sandbox).is_ok());
  }
}

TEST(ConcurrentStressTest, RunQueueDirectContention) {
  // Raw queue-level mutual exclusion: threads hammer one queue with
  // insert/remove; counts and sortedness must survive.
  sched::RunQueue queue(0);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::vector<std::unique_ptr<sched::Vcpu>>> storage(kThreads);
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        auto& mine = storage[static_cast<std::size_t>(t)];
        for (int i = 0; i < kPerThread; ++i) {
          auto vcpu = std::make_unique<sched::Vcpu>();
          vcpu->credit = static_cast<sched::Credit>((t * 7919 + i) % 1000);
          {
            util::LockGuard guard(queue.lock());
            queue.insert_sorted(*vcpu);
          }
          queue.update_load_enqueue();
          if (i % 3 == 0) {
            util::LockGuard guard(queue.lock());
            queue.remove(*vcpu);
            vcpu.reset();
          }
          if (vcpu) {
            mine.push_back(std::move(vcpu));
          }
        }
      });
    }
  }
  std::size_t kept = 0;
  for (const auto& per_thread : storage) {
    kept += per_thread.size();
  }
  EXPECT_EQ(queue.size(), kept);
  EXPECT_TRUE(queue.is_sorted());
  EXPECT_GT(queue.load(), 0.0);
  queue.list().clear();
}

}  // namespace
}  // namespace horse
