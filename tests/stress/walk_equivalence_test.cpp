// 1024-seed equivalence sweep for the PR-10 walk changes: with identical
// sandboxes and credits, the branchless/SIMD credit walk (and the
// cache-packed RunEntry merge loop behind it) must produce bit-identical
// queue orderings to the scalar path — ties included — through the full
// pause/resume engine, on both merge executors.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <random>
#include <tuple>
#include <vector>

#include "core/horse_resume.hpp"
#include "support/sanitizers.hpp"

namespace horse::core {
namespace {

using QueueOrder = std::vector<std::tuple<sched::Credit, sched::SandboxId,
                                          sched::VcpuId>>;

struct SweepCase {
  std::uint32_t resident_vcpus;
  std::uint32_t probe_vcpus;
  std::vector<sched::Credit> resident_credits;
  std::vector<sched::Credit> probe_credits;
};

SweepCase make_case(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::uint32_t> vcpu_dist(1, 8);
  // Narrow credit range on purpose: ties across and within sandboxes are
  // where a walk rewrite would diverge first.
  std::uniform_int_distribution<sched::Credit> credit_dist(-10, 10);
  SweepCase sweep;
  sweep.resident_vcpus = vcpu_dist(rng);
  sweep.probe_vcpus = vcpu_dist(rng);
  for (std::uint32_t i = 0; i < sweep.resident_vcpus; ++i) {
    sweep.resident_credits.push_back(credit_dist(rng));
  }
  for (std::uint32_t i = 0; i < sweep.probe_vcpus; ++i) {
    sweep.probe_credits.push_back(credit_dist(rng));
  }
  return sweep;
}

// Resume a resident sandbox onto the reserved queue, then merge a probe
// into the now-populated queue, and return the final ordering.
QueueOrder run_config(const SweepCase& sweep, bool branchless,
                      MergeMode mode) {
  sched::CpuTopology topology(4);
  HorseConfig config;
  config.num_ull_runqueues = 1;
  config.branchless_walk = branchless;
  config.merge_mode = mode;
  config.crew_size = 2;
  config.inline_splice_max_runs = 0;  // parallel arm: always dispatch
  HorseResumeEngine engine(topology, vmm::VmmProfile::firecracker(), config,
                           HorseFeatures::all());

  vmm::SandboxConfig sandbox_config;
  sandbox_config.memory_mb = 1;
  sandbox_config.ull = true;
  sandbox_config.name = "resident";
  sandbox_config.num_vcpus = sweep.resident_vcpus;
  vmm::Sandbox resident(1, sandbox_config);
  sandbox_config.name = "probe";
  sandbox_config.num_vcpus = sweep.probe_vcpus;
  vmm::Sandbox probe(2, sandbox_config);

  EXPECT_TRUE(engine.start(resident).is_ok());
  for (std::uint32_t i = 0; i < sweep.resident_vcpus; ++i) {
    resident.vcpu(i).credit = sweep.resident_credits[i];
  }
  EXPECT_TRUE(engine.start(probe).is_ok());
  for (std::uint32_t i = 0; i < sweep.probe_vcpus; ++i) {
    probe.vcpu(i).credit = sweep.probe_credits[i];
  }
  EXPECT_TRUE(engine.pause(resident).is_ok());
  EXPECT_TRUE(engine.pause(probe).is_ok());
  EXPECT_TRUE(engine.resume(resident).is_ok());
  EXPECT_TRUE(engine.resume(probe).is_ok());

  QueueOrder order;
  sched::RunQueue& queue = topology.queue(3);  // the reserved queue
  EXPECT_TRUE(queue.check_invariants(/*require_sorted=*/true).is_ok());
  for (const sched::Vcpu& vcpu : queue.list()) {
    order.emplace_back(vcpu.credit, vcpu.sandbox, vcpu.id);
  }
  EXPECT_EQ(order.size(),
            static_cast<std::size_t>(sweep.resident_vcpus) +
                sweep.probe_vcpus);
  EXPECT_TRUE(engine.destroy(probe).is_ok());
  EXPECT_TRUE(engine.destroy(resident).is_ok());
  return order;
}

TEST(WalkEquivalenceStressTest, BranchlessMatchesScalarBothExecutors) {
  // The 1024-seed bit-identical-ordering claim is established on the
  // uninstrumented presets; each seed spins up four full engines (crew
  // threads included), so under tsan's ~10x memory-access tax the full
  // sweep blows the CI stress time-box. The sanitizer presets keep the
  // same code paths under race/UB scrutiny at a reduced seed count.
  constexpr std::uint64_t kSeeds = HORSE_UNDER_SANITIZER ? 96 : 1024;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    const SweepCase sweep = make_case(seed);
    const QueueOrder scalar =
        run_config(sweep, /*branchless=*/false, MergeMode::kSequential);
    const QueueOrder branchless =
        run_config(sweep, /*branchless=*/true, MergeMode::kSequential);
    ASSERT_EQ(branchless, scalar) << "sequential executor, seed " << seed;

    const QueueOrder scalar_crew =
        run_config(sweep, /*branchless=*/false, MergeMode::kParallel);
    const QueueOrder branchless_crew =
        run_config(sweep, /*branchless=*/true, MergeMode::kParallel);
    ASSERT_EQ(scalar_crew, scalar) << "crew vs sequential, seed " << seed;
    ASSERT_EQ(branchless_crew, scalar) << "crew branchless, seed " << seed;
  }
}

}  // namespace
}  // namespace horse::core
