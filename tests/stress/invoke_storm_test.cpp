// Invocation storm: many submit threads drive the FULL control-plane
// path (Invoker → shard → engines → pool) concurrently, with mixed
// functions and every StartMode at once — the end-to-end counterpart of
// the engine-level stress tests. What unit tests cannot see and these
// can:
//
//   * shard mutexes really partition the work — invocations of disjoint
//     functions make progress from many threads without corrupting the
//     pool / snapshot / counter state each shard owns;
//   * the ladder runs under contention — a never-provisioned function
//     invoked as kWarm demotes through kRestore (building its snapshot
//     on demand, racing other shards) and still completes;
//   * advance_time (keep-alive eviction walking every shard) can run
//     concurrently with invocations without breaking accounting;
//   * the ull-manager's cross-engine bookkeeping stays consistent: when
//     the dust settles, every tracked sandbox is exactly a pooled uLL
//     sandbox.
//
// Sizes are deliberately modest — this binary also runs under TSan on
// small CI runners; the point is interleaving coverage, not volume.
#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "faas/invoker.hpp"
#include "faas/platform.hpp"
#include "workloads/array_filter.hpp"
#include "workloads/nat.hpp"

namespace horse::faas {
namespace {

workloads::Request filter_request() {
  workloads::Request request;
  request.payload = {3, 9, 27, 81};
  request.threshold = 10;
  return request;
}

workloads::Request packet_request() {
  workloads::Request request;
  request.header = "src=192.168.1.9 dst=10.1.2.3 port=8080 proto=udp";
  return request;
}

struct StormFunction {
  FunctionId id = 0;
  bool ull = false;
  bool provisioned = false;
};

/// Register `count` functions alternating uLL (NAT) / plain (filter);
/// provision + snapshot each unless `provision` is 0.
std::vector<StormFunction> register_functions(Platform& platform,
                                              std::size_t count,
                                              std::size_t provision) {
  std::vector<StormFunction> functions;
  for (std::size_t i = 0; i < count; ++i) {
    const bool ull = (i % 2) == 0;
    FunctionSpec spec;
    spec.name = (ull ? "storm-nat-" : "storm-filter-") + std::to_string(i);
    if (ull) {
      spec.implementation = std::make_shared<workloads::NatFunction>(32);
    } else {
      spec.implementation = std::make_shared<workloads::ArrayFilterFunction>();
    }
    spec.sandbox.name = spec.name + "-sb";
    spec.sandbox.num_vcpus = 1;
    spec.sandbox.memory_mb = 1;
    spec.sandbox.ull = ull;
    const auto id = platform.registry().add(std::move(spec));
    EXPECT_TRUE(id.has_value());
    if (provision > 0) {
      EXPECT_TRUE(platform.provision(*id, provision).is_ok());
      EXPECT_TRUE(platform.ensure_snapshot(*id).is_ok());
    }
    functions.push_back({*id, ull, provision > 0});
  }
  return functions;
}

TEST(InvokeStormTest, MixedModesAcrossShardsAllComplete) {
  PlatformConfig config;
  config.num_cpus = 8;
  config.horse.num_ull_runqueues = 2;
  Platform platform(config);

  constexpr std::size_t kProvision = 2;
  auto functions = register_functions(platform, 6, kProvision);
  // One extra uLL function that is NEVER provisioned: every kWarm request
  // for it must walk the ladder (pool miss → kRestore, snapshot built on
  // demand under storm contention).
  {
    FunctionSpec spec;
    spec.name = "storm-ladder";
    spec.implementation = std::make_shared<workloads::NatFunction>(32);
    spec.sandbox.name = "storm-ladder-sb";
    spec.sandbox.num_vcpus = 1;
    spec.sandbox.memory_mb = 1;
    spec.sandbox.ull = true;
    const auto id = platform.registry().add(std::move(spec));
    ASSERT_TRUE(id.has_value());
    functions.push_back({*id, true, false});
  }

  constexpr std::size_t kSubmitThreads = 4;
  constexpr std::size_t kPerThread = 64;
  Invoker invoker(platform, kSubmitThreads);

  {
    std::vector<std::jthread> submitters;
    for (std::size_t t = 0; t < kSubmitThreads; ++t) {
      submitters.emplace_back([&invoker, &functions, t] {
        for (std::size_t i = 0; i < kPerThread; ++i) {
          const StormFunction& fn = functions[(t + i) % functions.size()];
          StartMode mode;
          if (!fn.provisioned) {
            mode = StartMode::kWarm;  // forced onto the ladder
          } else if (i % 16 == 15) {
            mode = StartMode::kCold;
          } else if (i % 16 == 7) {
            mode = StartMode::kRestore;
          } else {
            mode = fn.ull ? StartMode::kHorse : StartMode::kWarm;
          }
          invoker.submit(fn.id,
                         fn.ull ? packet_request() : filter_request(), mode);
        }
      });
    }
    // Keep-alive eviction sweeps every shard while the storm runs. Small
    // deltas: nothing actually expires (default keep-alive is minutes),
    // the point is that the walk itself races invocations safely.
    std::jthread ticker([&platform] {
      for (int i = 0; i < 50; ++i) {
        platform.advance_time(util::kMillisecond);
        std::this_thread::yield();
      }
    });
  }

  const auto outcomes = invoker.drain();
  constexpr std::uint64_t kExpected = kSubmitThreads * kPerThread;
  ASSERT_EQ(outcomes.size(), kExpected);
  EXPECT_EQ(invoker.submitted(), kExpected);

  std::uint64_t ladder_completions = 0;
  for (const auto& outcome : outcomes) {
    ASSERT_TRUE(outcome.status.is_ok()) << outcome.status.to_report();
    if (outcome.record.mode != outcome.record.requested) {
      EXPECT_EQ(outcome.record.requested, StartMode::kWarm);
      ++ladder_completions;
    }
  }
  // At least the FIRST kWarm hit on the un-provisioned function had an
  // empty pool and must have walked the ladder (later ones may hit the
  // sandbox its completion re-pooled — that is the keep-alive working).
  EXPECT_GT(ladder_completions, 0u);

  const PlatformCounters counters = platform.counters();
  EXPECT_EQ(counters.invocations, kExpected);
  EXPECT_EQ(counters.failed, 0u);
  EXPECT_EQ(counters.cold + counters.restore + counters.warm + counters.horse,
            counters.invocations);
  EXPECT_EQ(counters.degraded_invocations, ladder_completions);

  // Pool integrity: provisioned floors survived the storm, and the
  // ull-manager tracks exactly the pooled uLL sandboxes (every invocation
  // re-pooled or properly destroyed what it took).
  std::size_t pooled_ull = 0;
  for (const auto& fn : functions) {
    if (fn.provisioned) {
      EXPECT_GE(platform.warm_pool().available(fn.id), kProvision) << fn.id;
    }
    if (fn.ull) {
      pooled_ull += platform.warm_pool().available(fn.id);
    }
  }
  EXPECT_EQ(platform.ull_manager().tracked_count(), pooled_ull);

  // Shard accounting is internally consistent: per-shard pool occupancy
  // sums to the global total.
  std::size_t occupancy_sum = 0;
  for (const std::size_t count : platform.shard_pool_occupancy()) {
    occupancy_sum += count;
  }
  EXPECT_EQ(occupancy_sum, platform.warm_pool().total());
}

TEST(InvokeStormTest, SingleFunctionStormSerialisesOnItsShard) {
  // Many threads hammering ONE function with provision=1: the shard mutex
  // is the only thing preventing double-take of the single pooled
  // sandbox. Every invocation must still complete (taker wins, others
  // wait — never a corrupted pool or a spurious ladder fall to kCold
  // counted as failure).
  PlatformConfig config;
  config.num_cpus = 4;
  config.horse.num_ull_runqueues = 1;
  Platform platform(config);

  const auto functions = register_functions(platform, 1, 1);
  const FunctionId fn = functions.front().id;

  constexpr std::size_t kSubmitThreads = 4;
  constexpr std::size_t kPerThread = 48;
  Invoker invoker(platform, kSubmitThreads);
  {
    std::vector<std::jthread> submitters;
    for (std::size_t t = 0; t < kSubmitThreads; ++t) {
      submitters.emplace_back([&invoker, fn] {
        for (std::size_t i = 0; i < kPerThread; ++i) {
          invoker.submit(fn, packet_request(),
                         i % 8 == 7 ? StartMode::kCold : StartMode::kHorse);
        }
      });
    }
  }

  const auto outcomes = invoker.drain();
  ASSERT_EQ(outcomes.size(), kSubmitThreads * kPerThread);
  for (const auto& outcome : outcomes) {
    ASSERT_TRUE(outcome.status.is_ok()) << outcome.status.to_report();
  }
  const PlatformCounters counters = platform.counters();
  EXPECT_EQ(counters.invocations, kSubmitThreads * kPerThread);
  EXPECT_EQ(counters.failed, 0u);
  EXPECT_GE(platform.warm_pool().available(fn), 1u);
  EXPECT_EQ(platform.ull_manager().tracked_count(),
            platform.warm_pool().available(fn));
}

}  // namespace
}  // namespace horse::faas
