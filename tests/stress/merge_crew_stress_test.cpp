// MergeCrew stress: hammer the spin-armed dispatch protocol across
// repeated arm/dispatch/disarm cycles and worker counts. The point is not
// the merge *result* (the property suite owns that) but the handshake
// itself — generation/completed publication, temporary arming inside
// execute(), and shutdown while armed — executed enough times, from
// enough shapes, that the TSan preset gets a real shot at any missing
// happens-before edge. Runs clean under `--preset tsan` by construction:
// every cross-thread edge is an acquire/release pair in merge_crew.cpp.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "core/merge_crew.hpp"
#include "sched/run_queue.hpp"
#include "sched/vcpu.hpp"
#include "util/rng.hpp"
#include "util/spinlock.hpp"

namespace horse::core {
namespace {

class MergeCrewStressTest : public ::testing::TestWithParam<std::size_t> {};

/// Build a fresh sorted B of size `b_size` and a sorted standalone chain
/// of `a_size` nodes, returning the splice tasks that interleave them one
/// node at a time (worst case: maximum task count for the crew).
struct SpliceFixture {
  std::vector<std::unique_ptr<sched::Vcpu>> storage;
  sched::RunQueue b{0};
  std::vector<SpliceTask> tasks;
  std::vector<sched::Credit> expected;

  void build(util::Xoshiro256& rng, std::size_t a_size, std::size_t b_size) {
    storage.clear();
    tasks.clear();
    expected.clear();
    b.list().abandon_all();

    std::vector<sched::Credit> b_credits;
    for (std::size_t i = 0; i < b_size; ++i) {
      // Spread B out so every A node gets its own anchor run.
      b_credits.push_back(static_cast<sched::Credit>(i * 100));
    }
    for (const sched::Credit credit : b_credits) {
      auto vcpu = std::make_unique<sched::Vcpu>();
      vcpu->credit = credit;
      util::LockGuard guard(b.lock());
      b.insert_sorted(*vcpu);
      storage.push_back(std::move(vcpu));
      expected.push_back(credit);
    }

    std::vector<util::ListHook*> b_hooks;
    for (sched::Vcpu& vcpu : b.list()) {
      b_hooks.push_back(&vcpu.hook);
    }

    // One A node per distinct anchor: task i splices right after B[i].
    const std::size_t runs = std::min(a_size, b_size);
    for (std::size_t i = 0; i < runs; ++i) {
      auto vcpu = std::make_unique<sched::Vcpu>();
      vcpu->credit = static_cast<sched::Credit>(i * 100 + 1 + rng.bounded(50));
      vcpu->hook.prev = nullptr;
      vcpu->hook.next = nullptr;
      tasks.push_back(SpliceTask{b_hooks[i], &vcpu->hook, &vcpu->hook});
      expected.push_back(vcpu->credit);
      storage.push_back(std::move(vcpu));
    }
    std::sort(expected.begin(), expected.end());
  }

  void verify_and_reset(std::size_t spliced) {
    b.list().add_size(spliced);
    b.bump_version();
    ASSERT_TRUE(b.check_invariants(/*require_sorted=*/true).is_ok());
    std::vector<sched::Credit> actual;
    for (const sched::Vcpu& vcpu : b.list()) {
      actual.push_back(vcpu.credit);
    }
    ASSERT_EQ(actual, expected);
    b.list().abandon_all();
  }
};

TEST_P(MergeCrewStressTest, RepeatedArmDispatchCycles) {
  const std::size_t workers = GetParam();
  util::Xoshiro256 rng(0xC0FFEE + workers);
  ParallelMergeCrew crew(workers);
  ASSERT_EQ(crew.size(), workers);

  constexpr int kRounds = 40;
  SpliceFixture fixture;
  for (int round = 0; round < kRounds; ++round) {
    const std::size_t b_size = 8 + rng.bounded(24);
    const std::size_t a_size = 1 + rng.bounded(b_size);
    fixture.build(rng, a_size, b_size);

    // Alternate between pre-armed dispatch (the resume-burst pattern) and
    // cold execute() (which arms temporarily).
    const bool pre_armed = (round % 2) == 0;
    if (pre_armed) {
      crew.arm();
      ASSERT_TRUE(crew.armed());
    }
    crew.execute(fixture.tasks);
    if (pre_armed) {
      crew.disarm();
      ASSERT_FALSE(crew.armed());
    }
    fixture.verify_and_reset(fixture.tasks.size());
  }
}

TEST_P(MergeCrewStressTest, BackToBackExecutesWhileArmed) {
  const std::size_t workers = GetParam();
  util::Xoshiro256 rng(0xBEEF + workers);
  ParallelMergeCrew crew(workers);
  crew.arm();

  constexpr int kBursts = 10;
  constexpr int kMergesPerBurst = 5;
  SpliceFixture fixture;
  for (int burst = 0; burst < kBursts; ++burst) {
    for (int m = 0; m < kMergesPerBurst; ++m) {
      fixture.build(rng, 4 + rng.bounded(8), 16);
      crew.execute(fixture.tasks);
      fixture.verify_and_reset(fixture.tasks.size());
    }
  }
  crew.disarm();
}

TEST_P(MergeCrewStressTest, DestructionWhileArmedIsClean) {
  // Tear the crew down in every arming state; the jthread/stop_token
  // shutdown path must not race the spin loop.
  const std::size_t workers = GetParam();
  for (int i = 0; i < 8; ++i) {
    ParallelMergeCrew crew(workers);
    if (i % 2 == 0) {
      crew.arm();
    }
    SpliceFixture fixture;
    util::Xoshiro256 rng(7 + i);
    fixture.build(rng, 4, 8);
    crew.execute(fixture.tasks);
    fixture.verify_and_reset(fixture.tasks.size());
    // Destructor runs here, armed or not.
  }
}

TEST(MergeCrewStressEdgeTest, EmptyTaskSetIsANoOp) {
  ParallelMergeCrew crew(2);
  crew.execute({});
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, MergeCrewStressTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 8u),
                         [](const auto& info) {
                           return "workers" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace horse::core
