// Cluster fault-ladder tests: the cluster.host_stall, cluster.host_crash
// and cluster.dispatch_drop sites drive quarantine, declared death,
// exactly-once re-dispatch (including orphan recovery with zombie
// dedup), rejoin, and the degrade-to-single-host / force-recover rungs.
// Compiled only with HORSE_FAULT_INJECTION (the binary is gated in
// CMake).
#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <thread>

#include "cluster/scheduler.hpp"
#include "util/fault_injection.hpp"
#include "workloads/array_filter.hpp"
#include "workloads/cpu_burner.hpp"

namespace horse::cluster {
namespace {

faas::FunctionSpec filter_spec() {
  faas::FunctionSpec spec;
  spec.name = "filter";
  spec.implementation = std::make_shared<workloads::ArrayFilterFunction>();
  spec.sandbox.name = "filter-sb";
  spec.sandbox.num_vcpus = 1;
  spec.sandbox.memory_mb = 1;
  spec.sandbox.ull = true;
  return spec;
}

workloads::Request filter_request() {
  workloads::Request request;
  request.payload = {5, 10, 15};
  request.threshold = 7;
  return request;
}

class ClusterFaultTest : public ::testing::Test {
 protected:
  void TearDown() override { util::FaultInjector::global().reset(); }

  static ClusterConfig make_config(std::size_t hosts, DispatchMode dispatch) {
    ClusterConfig config;
    config.num_hosts = hosts;
    config.workers_per_host = 2;
    config.dispatch = dispatch;
    config.policy = PolicyKind::kRoundRobin;
    config.health_check_interval = 4;
    config.platform.num_cpus = 4;
    // Quarantine is unsticky now (half-open probes rejoin hosts), so
    // tests asserting on the hosts_quarantined GAUGE push the first
    // probe far past their own lifetime. Rejoin tests override this.
    config.health.probe_backoff_base = 3600 * util::kSecond;
    config.health.probe_backoff_cap = 3600 * util::kSecond;
    return config;
  }

  static void expect_exactly_once(
      const std::vector<faas::SubmissionOutcome>& outcomes,
      std::size_t expected) {
    ASSERT_EQ(outcomes.size(), expected) << "lost or duplicated submissions";
    std::set<std::uint64_t> seqs;
    for (const auto& outcome : outcomes) {
      EXPECT_TRUE(outcome.status.is_ok()) << outcome.status.to_report();
      EXPECT_TRUE(seqs.insert(outcome.seq).second)
          << "seq " << outcome.seq << " executed twice";
    }
  }
};

TEST_F(ClusterFaultTest, HostStallIsQuarantinedAndBacklogRedispatchedOnce) {
  ClusterScheduler cluster(make_config(3, DispatchMode::kPush));
  const auto filter = cluster.register_function(filter_spec);
  ASSERT_TRUE(filter);
  // First probe fires: the first submission's host stalls BEFORE the task
  // is enqueued, so at least that task sits in a parked queue until the
  // health sweep steals it.
  const auto fault = util::ScopedFault::nth("cluster.host_stall", 1);
  for (int i = 0; i < 30; ++i) {
    cluster.submit(*filter, filter_request(), faas::StartMode::kCold);
  }
  expect_exactly_once(cluster.drain(), 30);
  const ClusterCounters counters = cluster.counters();
  EXPECT_EQ(counters.host_stalls, 1u);
  EXPECT_EQ(counters.hosts_quarantined, 1u);
  EXPECT_GE(counters.redispatched, 1u);
  EXPECT_EQ(counters.completed, 30u);
  // Exactly one host went down; the cluster never degraded to one.
  EXPECT_FALSE(counters.degraded_single_host);
}

TEST_F(ClusterFaultTest, StallLadderDegradesToSingleHostThenForcedRoute) {
  ClusterConfig config = make_config(2, DispatchMode::kPush);
  config.health_check_interval = 1;  // sweep on every submission
  ClusterScheduler cluster(config);
  const auto filter = cluster.register_function(filter_spec);
  ASSERT_TRUE(filter);
  // Every fresh submission stalls its (healthy) host; re-dispatched tasks
  // are exempt, so stolen backlogs always make progress. With 2 hosts the
  // ladder must walk: quarantine → single-host → zero-healthy → forced
  // route with force_recover.
  const auto fault = util::ScopedFault::always("cluster.host_stall");
  for (int i = 0; i < 12; ++i) {
    cluster.submit(*filter, filter_request(), faas::StartMode::kCold);
  }
  expect_exactly_once(cluster.drain(), 12);
  const ClusterCounters counters = cluster.counters();
  // hosts_quarantined is a gauge now; quarantine EVENTS = gauge +
  // rejoins + forced routes (each forced route force-recovers exactly
  // one counted-out host).
  EXPECT_GE(counters.hosts_quarantined + counters.hosts_rejoined +
                counters.forced_routes,
            2u);
  EXPECT_TRUE(counters.degraded_single_host);
  EXPECT_GE(counters.forced_routes, 1u);
  EXPECT_EQ(counters.completed, 12u);
}

TEST_F(ClusterFaultTest, DispatchDropIsRetriedExactlyOncePush) {
  ClusterScheduler cluster(make_config(3, DispatchMode::kPush));
  const auto filter = cluster.register_function(filter_spec);
  ASSERT_TRUE(filter);
  const auto fault = util::ScopedFault::always("cluster.dispatch_drop", 5);
  for (int i = 0; i < 30; ++i) {
    cluster.submit(*filter, filter_request(), faas::StartMode::kCold);
  }
  expect_exactly_once(cluster.drain(), 30);
  const ClusterCounters counters = cluster.counters();
  EXPECT_EQ(counters.dispatch_drops, 5u);
  EXPECT_EQ(counters.completed, 30u);
}

TEST_F(ClusterFaultTest, DispatchDropIsRetriedExactlyOncePull) {
  ClusterScheduler cluster(make_config(3, DispatchMode::kPull));
  const auto filter = cluster.register_function(filter_spec);
  ASSERT_TRUE(filter);
  const auto fault = util::ScopedFault::always("cluster.dispatch_drop", 4);
  for (int i = 0; i < 24; ++i) {
    cluster.submit(*filter, filter_request(), faas::StartMode::kCold);
  }
  expect_exactly_once(cluster.drain(), 24);
  EXPECT_EQ(cluster.counters().dispatch_drops, 4u);
}

TEST_F(ClusterFaultTest, PullHostStallsAtPickupAndClusterStillDrains) {
  ClusterScheduler cluster(make_config(3, DispatchMode::kPull));
  const auto filter = cluster.register_function(filter_spec);
  ASSERT_TRUE(filter);
  const auto fault = util::ScopedFault::nth("cluster.host_stall", 1);
  for (int i = 0; i < 30; ++i) {
    cluster.submit(*filter, filter_request(), faas::StartMode::kCold);
  }
  expect_exactly_once(cluster.drain(), 30);
  const ClusterCounters counters = cluster.counters();
  EXPECT_EQ(counters.host_stalls, 1u);
  // The stalled host was quarantined by a sweep (from submit or drain).
  EXPECT_GE(counters.hosts_quarantined, 1u);
}

TEST_F(ClusterFaultTest, QuarantinedHostKeepsItsHealthFlagUntilRecovered) {
  ClusterScheduler cluster(make_config(3, DispatchMode::kPush));
  const auto filter = cluster.register_function(filter_spec);
  ASSERT_TRUE(filter);
  const auto fault = util::ScopedFault::nth("cluster.host_stall", 1);
  for (int i = 0; i < 12; ++i) {
    cluster.submit(*filter, filter_request(), faas::StartMode::kCold);
  }
  (void)cluster.drain();
  const ClusterStats stats = cluster.stats();
  std::size_t unhealthy = 0;
  for (const HostStats& host : stats.hosts) {
    unhealthy += host.healthy ? 0 : 1;
  }
  // Dirigent-style: the only cluster record of the quarantine is the
  // host's own flag, and it survives into stats().
  EXPECT_EQ(unhealthy, 1u);
}

// --- crash tolerance (cluster.host_crash, §5.7) ----------------------------

faas::FunctionSpec burner_spec() {
  faas::FunctionSpec spec;
  spec.name = "burner";
  spec.implementation = std::make_shared<workloads::CpuBurnerFunction>();
  spec.sandbox.name = "burner-sb";
  spec.sandbox.num_vcpus = 1;
  spec.sandbox.memory_mb = 1;
  spec.sandbox.ull = true;
  return spec;
}

TEST_F(ClusterFaultTest, CrashedHostIsDeclaredDeadAndBacklogRedispatched) {
  ClusterConfig config = make_config(2, DispatchMode::kPush);
  // Deterministic detector: every no-progress sweep of the dead host is a
  // missed heartbeat, and two misses kill it — drain's sweeps get there
  // without wall-clock tuning.
  config.health.lease_duration = 0;
  config.health.missed_to_death = 2;
  ClusterScheduler cluster(config);
  const auto filter = cluster.register_function(filter_spec);
  ASSERT_TRUE(filter);
  // The first submission's host dies at the submit probe: its queue keeps
  // accepting work (routing still sees it healthy) until the detector
  // declares it dead and the backlog re-dispatches.
  const auto fault = util::ScopedFault::nth("cluster.host_crash", 1);
  for (int i = 0; i < 20; ++i) {
    cluster.submit(*filter, filter_request(), faas::StartMode::kCold);
  }
  expect_exactly_once(cluster.drain(), 20);
  const ClusterCounters counters = cluster.counters();
  EXPECT_EQ(counters.host_crashes, 1u);
  EXPECT_GE(counters.missed_heartbeats, 2u);
  EXPECT_EQ(counters.hosts_declared_dead, 1u);
  EXPECT_GE(counters.redispatched, 1u);
  EXPECT_EQ(counters.duplicates_suppressed, counters.orphans_redispatched)
      << "every orphan's zombie completion must be suppressed exactly once";
}

TEST_F(ClusterFaultTest, ZombieCompletionIsSuppressedExactlyOnce) {
  ClusterConfig config = make_config(2, DispatchMode::kPull);
  config.health_check_interval = 0;  // sweeps are driven manually below
  config.health.sweep_period = 0;
  config.health.lease_duration = 0;
  config.health.missed_to_death = 1;
  ClusterScheduler cluster(config);
  const auto burner = cluster.register_function(burner_spec);
  ASSERT_TRUE(burner);
  // Pull mode probes the crash at task PICKUP — after the in-flight
  // registration — so the crashing host is mid-execution of a long
  // burner task: the canonical zombie.
  const auto fault = util::ScopedFault::nth("cluster.host_crash", 1);
  workloads::Request slow;
  slow.threshold = 500'000;  // prime-search bound: tens of ms of work
  cluster.submit(*burner, std::move(slow), faas::StartMode::kCold);
  // The crash flag is set synchronously at pickup, well before the burner
  // finishes; once visible, the task is guaranteed still in flight.
  while (cluster.counters().host_crashes == 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  // First sweep may renew on completion progress; the second must miss
  // (missed_to_death = 1) and declare death, stealing the orphan.
  cluster.check_health();
  cluster.check_health();
  const std::vector<faas::SubmissionOutcome> outcomes = cluster.drain();
  // Exactly ONE outcome surfaces for the single submission, even though
  // two completions happened (zombie + re-dispatched copy).
  expect_exactly_once(outcomes, 1);
  const ClusterCounters counters = cluster.counters();
  EXPECT_EQ(counters.hosts_declared_dead, 1u);
  EXPECT_EQ(counters.orphans_redispatched, 1u);
  EXPECT_EQ(counters.duplicates_suppressed, 1u);
  EXPECT_EQ(counters.completed, 2u) << "zombie + copy both ran to completion";
}

TEST_F(ClusterFaultTest, CrashLadderServesDeadlineTrafficViaForcedRoutes) {
  // PR6 × PR5 × crash interaction: every fresh submission kills its host,
  // deadlines and admission stay active, and the zero-healthy rung must
  // still route — every submission ends completed XOR typed-shed.
  ClusterConfig config = make_config(2, DispatchMode::kPush);
  config.health_check_interval = 1;
  config.health.lease_duration = 0;
  config.health.missed_to_death = 1;
  ClusterScheduler cluster(config);
  const auto filter = cluster.register_function(filter_spec);
  ASSERT_TRUE(filter);
  const auto fault = util::ScopedFault::always("cluster.host_crash");
  constexpr int kTotal = 12;
  for (int i = 0; i < kTotal; ++i) {
    cluster.submit(*filter, filter_request(), faas::StartMode::kCold,
                   util::monotonic_now() + 10 * util::kSecond);
  }
  const std::vector<faas::SubmissionOutcome> outcomes = cluster.drain();
  std::set<std::uint64_t> seqs;
  std::size_t ok = 0;
  std::size_t shed = 0;
  for (const auto& outcome : outcomes) {
    EXPECT_TRUE(seqs.insert(outcome.seq).second)
        << "seq " << outcome.seq << " surfaced twice";
    if (outcome.status.is_ok()) {
      ++ok;
    } else {
      EXPECT_NE(outcome.reject, faas::SubmissionReject::kNone)
          << "failed outcome must carry a typed reject";
      ++shed;
    }
  }
  EXPECT_EQ(ok + shed, static_cast<std::size_t>(kTotal));
  const ClusterCounters counters = cluster.counters();
  EXPECT_GE(counters.host_crashes, 1u);
  EXPECT_GE(counters.forced_routes, 1u);
}

TEST_F(ClusterFaultTest, RestartedHostRejoinsWarmThroughHalfOpenProbe) {
  ClusterConfig config = make_config(2, DispatchMode::kPush);
  config.health_check_interval = 0;  // manual sweeps: deterministic steps
  config.health.sweep_period = 0;
  config.health.lease_duration = 0;
  config.health.missed_to_death = 1;
  config.health.probe_backoff_base = 1;  // probes due immediately
  config.health.probe_backoff_cap = 2;
  config.health.rehydrate_top_k = 2;
  config.health.rehydrate_per_function = 1;
  ClusterScheduler cluster(config);
  const auto filter = cluster.register_function(filter_spec);
  ASSERT_TRUE(filter);
  // Warm-up traffic: records recent invocations (the rehydration ranking)
  // and builds the snapshots rehydrate() restores from.
  for (int i = 0; i < 16; ++i) {
    cluster.submit(*filter, filter_request(), faas::StartMode::kCold);
  }
  (void)cluster.drain();
  cluster.host(0).crash();
  cluster.check_health();  // may renew on warm-up progress
  cluster.check_health();  // no progress, not responsive: declared dead
  ASSERT_EQ(cluster.counters().hosts_declared_dead, 1u);
  EXPECT_FALSE(cluster.host(0).healthy());
  // Dead host flunks its probes; the gauge holds.
  cluster.check_health();
  EXPECT_EQ(cluster.counters().hosts_rejoined, 0u);
  // Process restart: the next probe answers, rehydration runs, and only
  // then does the host rejoin rotation — warm, not cold.
  cluster.host(0).restart();
  cluster.check_health();
  const ClusterCounters counters = cluster.counters();
  EXPECT_EQ(counters.hosts_rejoined, 1u);
  EXPECT_EQ(counters.hosts_quarantined, 0u) << "gauge decrements on rejoin";
  EXPECT_TRUE(cluster.host(0).healthy());
  EXPECT_GE(counters.rehydrated_sandboxes, 1u);
  EXPECT_GE(cluster.host(0).platform().warm_pool().available(*filter), 1u)
      << "post-failover traffic must find warm sandboxes, not cold starts";
}

TEST_F(ClusterFaultTest, StalledHostRejoinsAndGaugeDecrements) {
  // Unsticky quarantine for plain stalls too: a stalled-then-quarantined
  // host answers its half-open probe (the process never died) and comes
  // back without force_recover.
  ClusterConfig config = make_config(3, DispatchMode::kPush);
  config.health.probe_backoff_base = 1;
  config.health.probe_backoff_cap = 2;
  config.health.rehydrate_top_k = 0;  // rejoin ladder works without warmth
  ClusterScheduler cluster(config);
  const auto filter = cluster.register_function(filter_spec);
  ASSERT_TRUE(filter);
  const auto fault = util::ScopedFault::nth("cluster.host_stall", 1);
  for (int i = 0; i < 12; ++i) {
    cluster.submit(*filter, filter_request(), faas::StartMode::kCold);
  }
  expect_exactly_once(cluster.drain(), 12);
  // The probe is due (1-2 ns backoff): one sweep rejoins the host.
  cluster.check_health();
  const ClusterCounters counters = cluster.counters();
  EXPECT_EQ(counters.host_stalls, 1u);
  EXPECT_GE(counters.hosts_rejoined, 1u);
  EXPECT_EQ(counters.hosts_quarantined, 0u);
  EXPECT_FALSE(counters.degraded_single_host);
  for (std::size_t i = 0; i < cluster.num_hosts(); ++i) {
    EXPECT_TRUE(cluster.host(i).healthy()) << "host " << i;
  }
}

}  // namespace
}  // namespace horse::cluster
