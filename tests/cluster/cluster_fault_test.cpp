// Cluster fault-ladder tests: the cluster.host_stall and
// cluster.dispatch_drop sites drive quarantine, exactly-once re-dispatch,
// and the degrade-to-single-host / force-recover rungs. Compiled only
// with HORSE_FAULT_INJECTION (the binary is gated in CMake).
#include <gtest/gtest.h>

#include <set>

#include "cluster/scheduler.hpp"
#include "util/fault_injection.hpp"
#include "workloads/array_filter.hpp"

namespace horse::cluster {
namespace {

faas::FunctionSpec filter_spec() {
  faas::FunctionSpec spec;
  spec.name = "filter";
  spec.implementation = std::make_shared<workloads::ArrayFilterFunction>();
  spec.sandbox.name = "filter-sb";
  spec.sandbox.num_vcpus = 1;
  spec.sandbox.memory_mb = 1;
  spec.sandbox.ull = true;
  return spec;
}

workloads::Request filter_request() {
  workloads::Request request;
  request.payload = {5, 10, 15};
  request.threshold = 7;
  return request;
}

class ClusterFaultTest : public ::testing::Test {
 protected:
  void TearDown() override { util::FaultInjector::global().reset(); }

  static ClusterConfig make_config(std::size_t hosts, DispatchMode dispatch) {
    ClusterConfig config;
    config.num_hosts = hosts;
    config.workers_per_host = 2;
    config.dispatch = dispatch;
    config.policy = PolicyKind::kRoundRobin;
    config.health_check_interval = 4;
    config.platform.num_cpus = 4;
    return config;
  }

  static void expect_exactly_once(
      const std::vector<faas::SubmissionOutcome>& outcomes,
      std::size_t expected) {
    ASSERT_EQ(outcomes.size(), expected) << "lost or duplicated submissions";
    std::set<std::uint64_t> seqs;
    for (const auto& outcome : outcomes) {
      EXPECT_TRUE(outcome.status.is_ok()) << outcome.status.to_report();
      EXPECT_TRUE(seqs.insert(outcome.seq).second)
          << "seq " << outcome.seq << " executed twice";
    }
  }
};

TEST_F(ClusterFaultTest, HostStallIsQuarantinedAndBacklogRedispatchedOnce) {
  ClusterScheduler cluster(make_config(3, DispatchMode::kPush));
  const auto filter = cluster.register_function(filter_spec);
  ASSERT_TRUE(filter);
  // First probe fires: the first submission's host stalls BEFORE the task
  // is enqueued, so at least that task sits in a parked queue until the
  // health sweep steals it.
  const auto fault = util::ScopedFault::nth("cluster.host_stall", 1);
  for (int i = 0; i < 30; ++i) {
    cluster.submit(*filter, filter_request(), faas::StartMode::kCold);
  }
  expect_exactly_once(cluster.drain(), 30);
  const ClusterCounters counters = cluster.counters();
  EXPECT_EQ(counters.host_stalls, 1u);
  EXPECT_EQ(counters.hosts_quarantined, 1u);
  EXPECT_GE(counters.redispatched, 1u);
  EXPECT_EQ(counters.completed, 30u);
  // Exactly one host went down; the cluster never degraded to one.
  EXPECT_FALSE(counters.degraded_single_host);
}

TEST_F(ClusterFaultTest, StallLadderDegradesToSingleHostThenForcedRoute) {
  ClusterConfig config = make_config(2, DispatchMode::kPush);
  config.health_check_interval = 1;  // sweep on every submission
  ClusterScheduler cluster(config);
  const auto filter = cluster.register_function(filter_spec);
  ASSERT_TRUE(filter);
  // Every fresh submission stalls its (healthy) host; re-dispatched tasks
  // are exempt, so stolen backlogs always make progress. With 2 hosts the
  // ladder must walk: quarantine → single-host → zero-healthy → forced
  // route with force_recover.
  const auto fault = util::ScopedFault::always("cluster.host_stall");
  for (int i = 0; i < 12; ++i) {
    cluster.submit(*filter, filter_request(), faas::StartMode::kCold);
  }
  expect_exactly_once(cluster.drain(), 12);
  const ClusterCounters counters = cluster.counters();
  EXPECT_GE(counters.hosts_quarantined, 2u);
  EXPECT_TRUE(counters.degraded_single_host);
  EXPECT_GE(counters.forced_routes, 1u);
  EXPECT_EQ(counters.completed, 12u);
}

TEST_F(ClusterFaultTest, DispatchDropIsRetriedExactlyOncePush) {
  ClusterScheduler cluster(make_config(3, DispatchMode::kPush));
  const auto filter = cluster.register_function(filter_spec);
  ASSERT_TRUE(filter);
  const auto fault = util::ScopedFault::always("cluster.dispatch_drop", 5);
  for (int i = 0; i < 30; ++i) {
    cluster.submit(*filter, filter_request(), faas::StartMode::kCold);
  }
  expect_exactly_once(cluster.drain(), 30);
  const ClusterCounters counters = cluster.counters();
  EXPECT_EQ(counters.dispatch_drops, 5u);
  EXPECT_EQ(counters.completed, 30u);
}

TEST_F(ClusterFaultTest, DispatchDropIsRetriedExactlyOncePull) {
  ClusterScheduler cluster(make_config(3, DispatchMode::kPull));
  const auto filter = cluster.register_function(filter_spec);
  ASSERT_TRUE(filter);
  const auto fault = util::ScopedFault::always("cluster.dispatch_drop", 4);
  for (int i = 0; i < 24; ++i) {
    cluster.submit(*filter, filter_request(), faas::StartMode::kCold);
  }
  expect_exactly_once(cluster.drain(), 24);
  EXPECT_EQ(cluster.counters().dispatch_drops, 4u);
}

TEST_F(ClusterFaultTest, PullHostStallsAtPickupAndClusterStillDrains) {
  ClusterScheduler cluster(make_config(3, DispatchMode::kPull));
  const auto filter = cluster.register_function(filter_spec);
  ASSERT_TRUE(filter);
  const auto fault = util::ScopedFault::nth("cluster.host_stall", 1);
  for (int i = 0; i < 30; ++i) {
    cluster.submit(*filter, filter_request(), faas::StartMode::kCold);
  }
  expect_exactly_once(cluster.drain(), 30);
  const ClusterCounters counters = cluster.counters();
  EXPECT_EQ(counters.host_stalls, 1u);
  // The stalled host was quarantined by a sweep (from submit or drain).
  EXPECT_GE(counters.hosts_quarantined, 1u);
}

TEST_F(ClusterFaultTest, QuarantinedHostKeepsItsHealthFlagUntilRecovered) {
  ClusterScheduler cluster(make_config(3, DispatchMode::kPush));
  const auto filter = cluster.register_function(filter_spec);
  ASSERT_TRUE(filter);
  const auto fault = util::ScopedFault::nth("cluster.host_stall", 1);
  for (int i = 0; i < 12; ++i) {
    cluster.submit(*filter, filter_request(), faas::StartMode::kCold);
  }
  (void)cluster.drain();
  const ClusterStats stats = cluster.stats();
  std::size_t unhealthy = 0;
  for (const HostStats& host : stats.hosts) {
    unhealthy += host.healthy ? 0 : 1;
  }
  // Dirigent-style: the only cluster record of the quarantine is the
  // host's own flag, and it survives into stats().
  EXPECT_EQ(unhealthy, 1u);
}

}  // namespace
}  // namespace horse::cluster
