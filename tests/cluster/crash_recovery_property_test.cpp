// 1024-seed crash/recover property sweep: a seeded host crash, declared
// death (backlog + in-flight orphans stolen and re-dispatched through
// the dedup ledger), and warm rejoin are injected into a seeded workload
// — and every submission still produces EXACTLY one outcome, a
// completion XOR a typed rejection, never zero, never twice. Zombie
// completions (the dead host always finishes what it started) are
// suppressed by the ledger, not surfaced. Runs through the deterministic
// SimCluster, so a failing seed replays the exact decision sequence; the
// sweep also re-runs every seed and pins the decision log, completions,
// rejections and suppression count bit-identical.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "cluster/sim_cluster.hpp"
#include "cluster_harness.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace horse::cluster {
namespace {

constexpr std::uint64_t kSeeds = 1024;
constexpr std::size_t kHosts = 3;
constexpr std::size_t kSubmissions = 60;

/// The crash schedule drawn for one seed (its own RNG stream, so the
/// workload shape and the failure schedule vary independently).
struct CrashPlan {
  HostId victim = 0;
  std::size_t crash_index = 0;    // crash just before this submission
  std::size_t declare_index = 0;  // detector verdict before this one
  std::size_t recover_index = 0;  // warm rejoin before this one
};

CrashPlan plan_for(std::uint64_t seed) {
  util::Xoshiro256 rng(seed ^ 0xc4a5'1dea'd0'5eedULL);
  CrashPlan plan;
  plan.victim = static_cast<HostId>(rng.bounded(kHosts));
  plan.crash_index = kSubmissions / 4 + rng.bounded(kSubmissions / 8);
  plan.declare_index = plan.crash_index + 1 + rng.bounded(4);
  plan.recover_index =
      (3 * kSubmissions) / 4 + rng.bounded(kSubmissions / 8);
  return plan;
}

struct RunResult {
  std::vector<SimDecision> decisions;
  std::vector<SimCompletion> completions;
  std::vector<SimRejection> rejections;
  std::uint64_t duplicates_suppressed = 0;
  std::size_t forced_routes = 0;
};

RunResult run_seed(std::uint64_t seed, DispatchMode dispatch) {
  test_harness::WorkloadParams shape;
  shape.count = kSubmissions;
  // A quarter of the traffic arrives as 3-stage workflow chains, so the
  // crash/steal/re-dispatch machinery is exercised against hop cursors:
  // an orphaned chain resumes from the frontier its dead host reached,
  // never re-executing completed stages.
  shape.chain_fraction = 0.25;
  const test_harness::SeededWorkload workload =
      test_harness::make_workload(seed, shape);
  const CrashPlan plan = plan_for(seed);

  SimClusterParams params;
  params.num_hosts = kHosts;
  params.dispatch = dispatch;
  params.policy = PolicyKind::kRoundRobin;
  params.seed = seed;
  params.defaults.slots = 2;
  params.defaults.jitter = 0.15;
  // Heterogeneous host speeds: when a slow host dies, the re-dispatched
  // orphan on a faster host can finish BEFORE the victim's zombie, so the
  // dedup ledger is exercised in both landing orders (and resumed chains
  // become observable on delivered completions).
  params.hosts = {params.defaults, params.defaults, params.defaults};
  params.hosts[0].speed = 1.4;
  params.hosts[2].speed = 0.8;
  SimCluster sim(params);

  for (std::size_t i = 0; i < workload.size(); ++i) {
    const util::Nanos at = workload.times[i];
    if (i == plan.crash_index) {
      sim.crash_host(plan.victim, at);
    }
    if (i == plan.declare_index) {
      for (const std::uint64_t seq : sim.declare_dead(plan.victim, at)) {
        sim.redispatch(seq, at);
      }
    }
    if (i == plan.recover_index) {
      sim.recover_host(plan.victim, at, /*rehydrated_warm_slots=*/2);
    }
    // Every 5th submission carries a loose deadline, so the admission /
    // expiry paths interleave with the crash machinery too.
    const util::Nanos deadline =
        i % 5 == 0 ? at + 10 * util::kMillisecond : 0;
    test_harness::submit_one(sim, workload, i, deadline);
  }
  sim.run_to_completion();

  RunResult result;
  result.decisions = sim.decisions();
  result.completions = sim.completions();
  result.rejections = sim.rejections();
  result.duplicates_suppressed = sim.duplicates_suppressed();
  result.forced_routes = sim.forced_routes();
  return result;
}

/// The tentpole invariant: completions and rejections partition the
/// submitted sequence space.
void assert_exactly_once(const RunResult& result, std::uint64_t seed,
                         const char* label) {
  std::set<std::uint64_t> seen;
  for (const SimCompletion& done : result.completions) {
    ASSERT_TRUE(seen.insert(done.seq).second)
        << label << " seed " << seed << ": seq " << done.seq
        << " completed twice (zombie leaked past the ledger)";
  }
  for (const SimRejection& rejection : result.rejections) {
    ASSERT_NE(rejection.reject, faas::SubmissionReject::kNone)
        << label << " seed " << seed << ": untyped rejection";
    ASSERT_TRUE(seen.insert(rejection.seq).second)
        << label << " seed " << seed << ": seq " << rejection.seq
        << " produced two outcomes";
  }
  ASSERT_EQ(seen.size(), kSubmissions)
      << label << " seed " << seed << ": lost submissions";
  for (std::uint64_t seq = 0; seq < kSubmissions; ++seq) {
    ASSERT_TRUE(seen.contains(seq))
        << label << " seed " << seed << ": seq " << seq << " vanished";
  }
  // Chain completions must carry a cursor inside the stage list; the
  // delivered execution ran exactly the stages [chain_hop, chain_stages),
  // so a cursor at or past the end would mean a stage ran twice or a
  // chain completed with nothing left to run.
  for (const SimCompletion& done : result.completions) {
    if (done.chain_stages > 0) {
      ASSERT_LT(done.chain_hop, done.chain_stages)
          << label << " seed " << seed << ": seq " << done.seq
          << " chain cursor past the last stage";
    }
  }
}

bool same_decisions(const std::vector<SimDecision>& a,
                    const std::vector<SimDecision>& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].seq != b[i].seq || a[i].time != b[i].time ||
        a[i].function != b[i].function || a[i].host != b[i].host ||
        a[i].forced != b[i].forced || a[i].kind != b[i].kind ||
        a[i].candidates.size() != b[i].candidates.size()) {
      return false;
    }
  }
  return true;
}

bool same_completions(const std::vector<SimCompletion>& a,
                      const std::vector<SimCompletion>& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].seq != b[i].seq || a[i].host != b[i].host ||
        a[i].start != b[i].start || a[i].finish != b[i].finish ||
        a[i].chain_hop != b[i].chain_hop ||
        a[i].chain_stages != b[i].chain_stages) {
      return false;
    }
  }
  return true;
}

class CrashRecoveryProperty : public ::testing::TestWithParam<DispatchMode> {};

TEST_P(CrashRecoveryProperty, EverySubmissionHasExactlyOneOutcome) {
  const DispatchMode dispatch = GetParam();
  std::uint64_t runs_with_suppression = 0;
  std::uint64_t resumed_chains = 0;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const RunResult result = run_seed(seed, dispatch);
    assert_exactly_once(result, seed, to_string(dispatch).data());
    for (const SimCompletion& done : result.completions) {
      resumed_chains += done.chain_stages > 0 && done.chain_hop > 0 ? 1 : 0;
    }
    // The decision log carries the full lifecycle: one crash, one
    // declared death, one rejoin, in that order.
    std::vector<SimEventKind> lifecycle;
    for (const SimDecision& decision : result.decisions) {
      if (decision.kind != SimEventKind::kDispatch) {
        lifecycle.push_back(decision.kind);
      }
    }
    ASSERT_EQ(lifecycle.size(), 3u) << "seed " << seed;
    EXPECT_EQ(lifecycle[0], SimEventKind::kCrash) << "seed " << seed;
    EXPECT_EQ(lifecycle[1], SimEventKind::kDeclareDead) << "seed " << seed;
    EXPECT_EQ(lifecycle[2], SimEventKind::kRejoin) << "seed " << seed;
    runs_with_suppression += result.duplicates_suppressed > 0 ? 1 : 0;
  }
  // The sweep must actually exercise the dedup ledger: with ~15 virtual
  // submissions between crash and declaration, a decent fraction of
  // seeds orphan at least one in-flight task whose zombie then lands.
  EXPECT_GT(runs_with_suppression, kSeeds / 16)
      << "crash schedule almost never produced a zombie — the sweep is "
         "not testing orphan recovery";
  // The sweep must actually resume chains mid-way: at least some orphaned
  // chains were re-dispatched from an advanced hop cursor (completed
  // stages skipped, not re-executed).
  EXPECT_GT(resumed_chains, 0u)
      << "no orphaned chain ever resumed from a non-zero hop cursor";
}

TEST_P(CrashRecoveryProperty, SeedReplayIsBitIdentical) {
  const DispatchMode dispatch = GetParam();
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const RunResult first = run_seed(seed, dispatch);
    const RunResult second = run_seed(seed, dispatch);
    ASSERT_TRUE(same_decisions(first.decisions, second.decisions))
        << "seed " << seed << ": decision log diverged on replay";
    ASSERT_TRUE(same_completions(first.completions, second.completions))
        << "seed " << seed << ": completions diverged on replay";
    ASSERT_EQ(first.rejections.size(), second.rejections.size())
        << "seed " << seed;
    ASSERT_EQ(first.duplicates_suppressed, second.duplicates_suppressed)
        << "seed " << seed;
    ASSERT_EQ(first.forced_routes, second.forced_routes) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(CrashSweep, CrashRecoveryProperty,
                         ::testing::Values(DispatchMode::kPush,
                                           DispatchMode::kPull),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

}  // namespace
}  // namespace horse::cluster
