// Concurrency stress for the cluster layer: many submitter threads, a
// concurrent health-sweeper, both dispatch modes. The properties under
// test are accounting ones — every submission completes exactly once —
// and the TSan preset turns the same binaries into a data-race check.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "cluster/scheduler.hpp"
#include "workloads/array_filter.hpp"

namespace horse::cluster {
namespace {

constexpr int kSubmitters = 6;
constexpr int kPerThread = 150;

faas::FunctionSpec filter_spec() {
  faas::FunctionSpec spec;
  spec.name = "filter";
  spec.implementation = std::make_shared<workloads::ArrayFilterFunction>();
  spec.sandbox.name = "filter-sb";
  spec.sandbox.num_vcpus = 1;
  spec.sandbox.memory_mb = 1;
  spec.sandbox.ull = true;
  return spec;
}

workloads::Request filter_request() {
  workloads::Request request;
  request.payload = {5, 10, 15};
  request.threshold = 7;
  return request;
}

ClusterConfig make_config(DispatchMode dispatch, PolicyKind policy) {
  ClusterConfig config;
  config.num_hosts = 4;
  config.workers_per_host = 2;
  config.dispatch = dispatch;
  config.policy = policy;
  config.health_check_interval = 16;
  config.platform.num_cpus = 4;
  // The storm's cold half re-pools hundreds of sandboxes per host; keep
  // the per-function cap out of the way (a full pool fails the park and
  // that failure would surface in the outcome accounting under test).
  config.platform.warm_pool.max_per_function = 2048;
  return config;
}

void storm(ClusterScheduler& cluster, faas::FunctionId filter) {
  {
    std::vector<std::jthread> submitters;
    // One thread hammers health sweeps concurrently with the submitters —
    // quarantine bookkeeping must never lose or duplicate work even when
    // nothing is actually stalled.
    std::atomic<bool> stop{false};
    std::jthread sweeper([&] {
      while (!stop.load(std::memory_order_acquire)) {
        cluster.check_health();
        std::this_thread::yield();
      }
    });
    for (int t = 0; t < kSubmitters; ++t) {
      submitters.emplace_back([&cluster, filter, t] {
        for (int i = 0; i < kPerThread; ++i) {
          cluster.submit(filter, filter_request(),
                         (t + i) % 2 == 0 ? faas::StartMode::kHorse
                                          : faas::StartMode::kCold);
        }
      });
    }
    submitters.clear();  // join all submitters
    stop.store(true, std::memory_order_release);
  }
  const auto outcomes = cluster.drain();
  ASSERT_EQ(outcomes.size(),
            static_cast<std::size_t>(kSubmitters) * kPerThread);
  std::set<std::uint64_t> seqs;
  for (const auto& outcome : outcomes) {
    EXPECT_TRUE(outcome.status.is_ok()) << outcome.status.to_report();
    EXPECT_TRUE(seqs.insert(outcome.seq).second)
        << "seq " << outcome.seq << " executed twice";
  }
  const ClusterCounters counters = cluster.counters();
  EXPECT_EQ(counters.submitted, counters.completed);
}

TEST(ClusterStressTest, ConcurrentPushSubmittersLoseNothing) {
  for (const PolicyKind policy :
       {PolicyKind::kRoundRobin, PolicyKind::kLeastLoaded}) {
    ClusterScheduler cluster(make_config(DispatchMode::kPush, policy));
    const auto filter = cluster.register_function(filter_spec);
    ASSERT_TRUE(filter);
    ASSERT_TRUE(cluster.provision(*filter, 2).is_ok());
    storm(cluster, *filter);
  }
}

TEST(ClusterStressTest, ConcurrentPullSubmittersLoseNothing) {
  ClusterConfig config =
      make_config(DispatchMode::kPull, PolicyKind::kRoundRobin);
  // A small queue exercises producer backpressure under contention.
  config.pull_queue_capacity = 32;
  ClusterScheduler cluster(config);
  const auto filter = cluster.register_function(filter_spec);
  ASSERT_TRUE(filter);
  ASSERT_TRUE(cluster.provision(*filter, 2).is_ok());
  storm(cluster, *filter);
}

TEST(ClusterStressTest, RepeatedDrainCyclesStayConsistent) {
  ClusterScheduler cluster(
      make_config(DispatchMode::kPush, PolicyKind::kLeastLoaded));
  const auto filter = cluster.register_function(filter_spec);
  ASSERT_TRUE(filter);
  std::uint64_t total = 0;
  for (int round = 0; round < 5; ++round) {
    {
      std::vector<std::jthread> submitters;
      for (int t = 0; t < 3; ++t) {
        submitters.emplace_back([&cluster, &filter] {
          for (int i = 0; i < 40; ++i) {
            cluster.submit(*filter, filter_request(), faas::StartMode::kCold);
          }
        });
      }
    }
    total += 120;
    const auto outcomes = cluster.drain();
    ASSERT_EQ(outcomes.size(), 120u) << "round " << round;
    EXPECT_EQ(cluster.counters().completed, total);
  }
}

}  // namespace
}  // namespace horse::cluster
