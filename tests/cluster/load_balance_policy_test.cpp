#include "cluster/load_balance.hpp"

#include <gtest/gtest.h>

#include "cluster/scheduler.hpp"

namespace horse::cluster {
namespace {

HostSnapshot snap(HostId host, std::size_t queued, std::size_t in_flight,
                  std::size_t warm = 0) {
  HostSnapshot out;
  out.host = host;
  out.queued = queued;
  out.in_flight = in_flight;
  out.capacity = 4;
  out.warm_slots = warm;
  return out;
}

TEST(RoundRobinPolicyTest, RotatesOverTheVector) {
  RoundRobinPolicy policy;
  const std::vector<HostSnapshot> hosts = {snap(0, 0, 0), snap(1, 0, 0),
                                           snap(2, 0, 0)};
  EXPECT_EQ(policy.select(hosts, 0), 0u);
  EXPECT_EQ(policy.select(hosts, 0), 1u);
  EXPECT_EQ(policy.select(hosts, 0), 2u);
  EXPECT_EQ(policy.select(hosts, 0), 0u);
}

TEST(RoundRobinPolicyTest, CounterAdvancesAcrossShrinkingHostSets) {
  RoundRobinPolicy policy;
  const std::vector<HostSnapshot> three = {snap(0, 0, 0), snap(1, 0, 0),
                                           snap(2, 0, 0)};
  const std::vector<HostSnapshot> two = {snap(0, 0, 0), snap(2, 0, 0)};
  (void)policy.select(three, 0);
  (void)policy.select(three, 0);
  // The counter keeps advancing per decision, so a shrunken healthy set
  // still gets an in-range, rotating pick.
  const std::size_t first = policy.select(two, 0);
  const std::size_t second = policy.select(two, 0);
  EXPECT_LT(first, two.size());
  EXPECT_LT(second, two.size());
  EXPECT_NE(first, second);
}

TEST(LeastLoadedPolicyTest, PicksMinimumQueuedPlusInFlight) {
  LeastLoadedPolicy policy;
  const std::vector<HostSnapshot> hosts = {snap(0, 2, 1), snap(1, 0, 1),
                                           snap(2, 3, 0)};
  EXPECT_EQ(policy.select(hosts, 0), 1u);
}

TEST(LeastLoadedPolicyTest, TiesBreakTowardLowestHostId) {
  LeastLoadedPolicy policy;
  const std::vector<HostSnapshot> hosts = {snap(3, 1, 0), snap(1, 0, 1),
                                           snap(2, 1, 0)};
  // Loads are 1, 1, 1: the lowest HOST ID wins, not the lowest index.
  EXPECT_EQ(policy.select(hosts, 0), 1u);
}

TEST(MostWarmSlotsPolicyTest, PicksMostWarm) {
  MostWarmSlotsPolicy policy;
  const std::vector<HostSnapshot> hosts = {snap(0, 0, 0, 1), snap(1, 0, 0, 4),
                                           snap(2, 0, 0, 2)};
  EXPECT_EQ(policy.select(hosts, 0), 1u);
}

TEST(MostWarmSlotsPolicyTest, WarmTiesBreakTowardLeastLoaded) {
  MostWarmSlotsPolicy policy;
  const std::vector<HostSnapshot> hosts = {snap(0, 3, 1, 2), snap(1, 0, 1, 2),
                                           snap(2, 0, 0, 1)};
  EXPECT_EQ(policy.select(hosts, 0), 1u);
}

TEST(MostWarmSlotsPolicyTest, AllColdFallsBackToLeastLoaded) {
  MostWarmSlotsPolicy policy;
  const std::vector<HostSnapshot> hosts = {snap(0, 2, 0, 0), snap(1, 1, 0, 0)};
  EXPECT_EQ(policy.select(hosts, 0), 1u);
}

TEST(PolicyFactoryTest, MakePolicyReportsCanonicalNames) {
  EXPECT_EQ(make_policy(PolicyKind::kRoundRobin)->name(), "round_robin");
  EXPECT_EQ(make_policy(PolicyKind::kLeastLoaded)->name(), "least_loaded");
  EXPECT_EQ(make_policy(PolicyKind::kMostWarmSlots)->name(), "most_warm");
}

TEST(PolicyFactoryTest, ParseAcceptsBenchSpellings) {
  EXPECT_EQ(*parse_policy("rr"), PolicyKind::kRoundRobin);
  EXPECT_EQ(*parse_policy("round_robin"), PolicyKind::kRoundRobin);
  EXPECT_EQ(*parse_policy("ll"), PolicyKind::kLeastLoaded);
  EXPECT_EQ(*parse_policy("least_loaded"), PolicyKind::kLeastLoaded);
  EXPECT_EQ(*parse_policy("mw"), PolicyKind::kMostWarmSlots);
  EXPECT_EQ(*parse_policy("most_warm"), PolicyKind::kMostWarmSlots);
  EXPECT_EQ(*parse_policy("most_warm_slots"), PolicyKind::kMostWarmSlots);
  EXPECT_FALSE(parse_policy("banana"));
}

TEST(PolicyFactoryTest, ToStringRoundTripsThroughParse) {
  for (const PolicyKind kind :
       {PolicyKind::kRoundRobin, PolicyKind::kLeastLoaded,
        PolicyKind::kMostWarmSlots}) {
    EXPECT_EQ(*parse_policy(to_string(kind)), kind);
  }
}

TEST(DispatchModeTest, ParseAndToString) {
  EXPECT_EQ(*parse_dispatch_mode("push"), DispatchMode::kPush);
  EXPECT_EQ(*parse_dispatch_mode("pull"), DispatchMode::kPull);
  EXPECT_FALSE(parse_dispatch_mode("shove"));
  EXPECT_EQ(to_string(DispatchMode::kPush), "push");
  EXPECT_EQ(to_string(DispatchMode::kPull), "pull");
}

}  // namespace
}  // namespace horse::cluster
