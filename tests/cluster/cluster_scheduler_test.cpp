#include "cluster/scheduler.hpp"

#include <gtest/gtest.h>

#include <set>

#include "workloads/array_filter.hpp"
#include "workloads/nat.hpp"

namespace horse::cluster {
namespace {

faas::FunctionSpec filter_spec() {
  faas::FunctionSpec spec;
  spec.name = "filter";
  spec.implementation = std::make_shared<workloads::ArrayFilterFunction>();
  spec.sandbox.name = "filter-sb";
  spec.sandbox.num_vcpus = 1;
  spec.sandbox.memory_mb = 1;
  spec.sandbox.ull = true;
  return spec;
}

faas::FunctionSpec nat_spec() {
  faas::FunctionSpec spec;
  spec.name = "nat";
  spec.implementation = std::make_shared<workloads::NatFunction>(16);
  spec.sandbox.name = "nat-sb";
  spec.sandbox.num_vcpus = 1;
  spec.sandbox.memory_mb = 1;
  spec.sandbox.ull = true;
  return spec;
}

workloads::Request filter_request() {
  workloads::Request request;
  request.payload = {5, 10, 15};
  request.threshold = 7;
  return request;
}

ClusterConfig make_config(std::size_t hosts, DispatchMode dispatch,
                          PolicyKind policy) {
  ClusterConfig config;
  config.num_hosts = hosts;
  config.workers_per_host = 2;
  config.dispatch = dispatch;
  config.policy = policy;
  config.platform.num_cpus = 4;
  return config;
}

void expect_all_ok(const std::vector<faas::SubmissionOutcome>& outcomes,
                   std::size_t expected) {
  ASSERT_EQ(outcomes.size(), expected);
  std::set<std::uint64_t> seqs;
  for (const auto& outcome : outcomes) {
    EXPECT_TRUE(outcome.status.is_ok()) << outcome.status.to_report();
    EXPECT_TRUE(seqs.insert(outcome.seq).second)
        << "seq " << outcome.seq << " completed twice";
  }
}

TEST(ClusterSchedulerTest, PushEndToEndForEveryPolicy) {
  for (const PolicyKind policy :
       {PolicyKind::kRoundRobin, PolicyKind::kLeastLoaded,
        PolicyKind::kMostWarmSlots}) {
    ClusterScheduler cluster(make_config(3, DispatchMode::kPush, policy));
    const auto filter = cluster.register_function(filter_spec);
    ASSERT_TRUE(filter) << to_string(policy);
    for (int i = 0; i < 60; ++i) {
      cluster.submit(*filter, filter_request(), faas::StartMode::kCold);
    }
    expect_all_ok(cluster.drain(), 60);
    const ClusterCounters counters = cluster.counters();
    EXPECT_EQ(counters.submitted, 60u) << to_string(policy);
    EXPECT_EQ(counters.completed, 60u) << to_string(policy);
  }
}

TEST(ClusterSchedulerTest, PullEndToEnd) {
  ClusterScheduler cluster(
      make_config(3, DispatchMode::kPull, PolicyKind::kRoundRobin));
  const auto filter = cluster.register_function(filter_spec);
  ASSERT_TRUE(filter);
  for (int i = 0; i < 60; ++i) {
    cluster.submit(*filter, filter_request(), faas::StartMode::kCold);
  }
  const auto outcomes = cluster.drain();
  expect_all_ok(outcomes, 60);
  // Every outcome names the host that executed it.
  for (const auto& outcome : outcomes) {
    EXPECT_LT(outcome.host, 3u);
  }
}

TEST(ClusterSchedulerTest, RoundRobinSpreadsDecisionsEvenly) {
  ClusterScheduler cluster(
      make_config(4, DispatchMode::kPush, PolicyKind::kRoundRobin));
  const auto filter = cluster.register_function(filter_spec);
  ASSERT_TRUE(filter);
  for (int i = 0; i < 40; ++i) {
    cluster.submit(*filter, filter_request(), faas::StartMode::kCold);
  }
  expect_all_ok(cluster.drain(), 40);
  const ClusterStats stats = cluster.stats();
  ASSERT_EQ(stats.hosts.size(), 4u);
  for (const HostStats& host : stats.hosts) {
    EXPECT_EQ(host.policy_decisions, 10u) << "host " << host.host;
    EXPECT_EQ(host.dispatched, 10u) << "host " << host.host;
  }
}

TEST(ClusterSchedulerTest, MultipleFunctionsAgreeOnIdsAcrossHosts) {
  ClusterScheduler cluster(
      make_config(2, DispatchMode::kPush, PolicyKind::kLeastLoaded));
  const auto filter = cluster.register_function(filter_spec);
  const auto nat = cluster.register_function(nat_spec);
  ASSERT_TRUE(filter);
  ASSERT_TRUE(nat);
  EXPECT_NE(*filter, *nat);
  ASSERT_TRUE(cluster.provision(*filter, 2).is_ok());

  workloads::Request packet;
  packet.header = "src=1.1.1.1 dst=2.2.2.2 port=80 proto=tcp";
  for (int i = 0; i < 30; ++i) {
    if (i % 2 == 0) {
      cluster.submit(*filter, filter_request(), faas::StartMode::kHorse);
    } else {
      cluster.submit(*nat, packet, faas::StartMode::kCold);
    }
  }
  const auto outcomes = cluster.drain();
  expect_all_ok(outcomes, 30);
  int horse = 0;
  for (const auto& outcome : outcomes) {
    horse += outcome.mode == faas::StartMode::kHorse ? 1 : 0;
  }
  EXPECT_EQ(horse, 15);
}

TEST(ClusterSchedulerTest, StatsAreReconstructedFromHosts) {
  ClusterScheduler cluster(
      make_config(2, DispatchMode::kPush, PolicyKind::kMostWarmSlots));
  const auto filter = cluster.register_function(filter_spec);
  ASSERT_TRUE(filter);
  ASSERT_TRUE(cluster.provision(*filter, 2).is_ok());
  for (int i = 0; i < 20; ++i) {
    cluster.submit(*filter, filter_request(), faas::StartMode::kWarm);
  }
  expect_all_ok(cluster.drain(), 20);

  const ClusterStats stats = cluster.stats();
  EXPECT_EQ(stats.policy, PolicyKind::kMostWarmSlots);
  EXPECT_EQ(stats.dispatch, DispatchMode::kPush);
  ASSERT_EQ(stats.hosts.size(), 2u);
  std::uint64_t completed = 0;
  std::uint64_t decisions = 0;
  for (const HostStats& host : stats.hosts) {
    EXPECT_TRUE(host.healthy);
    EXPECT_EQ(host.queued, 0u);
    EXPECT_EQ(host.in_flight, 0u);
    // Warm starts park the sandbox back: each host keeps its 2 pooled.
    EXPECT_EQ(host.pool_sandboxes, 2u);
    EXPECT_EQ(host.dispatch_latency.count(), host.completed);
    completed += host.completed;
    decisions += host.policy_decisions;
  }
  EXPECT_EQ(completed, 20u);
  EXPECT_EQ(decisions, 20u);
  EXPECT_EQ(stats.counters.completed, 20u);
  EXPECT_FALSE(stats.counters.degraded_single_host);
}

TEST(ClusterSchedulerTest, PullBackpressureWithTinyQueueStillCompletes) {
  ClusterConfig config =
      make_config(2, DispatchMode::kPull, PolicyKind::kRoundRobin);
  config.pull_queue_capacity = 2;
  ClusterScheduler cluster(config);
  const auto filter = cluster.register_function(filter_spec);
  ASSERT_TRUE(filter);
  for (int i = 0; i < 50; ++i) {
    cluster.submit(*filter, filter_request(), faas::StartMode::kCold);
  }
  expect_all_ok(cluster.drain(), 50);
}

TEST(ClusterSchedulerTest, DrainOnIdleClusterIsEmpty) {
  ClusterScheduler cluster(
      make_config(2, DispatchMode::kPush, PolicyKind::kRoundRobin));
  EXPECT_TRUE(cluster.drain().empty());
}

TEST(ClusterSchedulerTest, ErrorsSurfaceInOutcomes) {
  ClusterConfig config =
      make_config(2, DispatchMode::kPush, PolicyKind::kRoundRobin);
  config.platform.degradation.enabled = false;
  ClusterScheduler cluster(config);
  const auto filter = cluster.register_function(filter_spec);
  ASSERT_TRUE(filter);
  cluster.submit(*filter, filter_request(), faas::StartMode::kWarm);  // empty pool
  cluster.submit(999, filter_request(), faas::StartMode::kCold);      // unknown
  const auto outcomes = cluster.drain();
  ASSERT_EQ(outcomes.size(), 2u);
  for (const auto& outcome : outcomes) {
    EXPECT_FALSE(outcome.status.is_ok());
  }
}

}  // namespace
}  // namespace horse::cluster
