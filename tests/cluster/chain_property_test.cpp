// Workflow chains as one routed unit across the cluster layer.
//
// The deterministic half pins SimCluster's chain semantics exactly
// (jitter 0, hand-placed crash times): an orphaned chain is re-dispatched
// from the hop cursor its dead host had reached — completed stages are
// skipped, the zombie completion is suppressed, and the chain keeps its
// ONE deadline through the re-dispatch. The threaded half drives real
// chains end-to-end through ClusterScheduler: registered on every host,
// submitted as one seq, executed with platform-side fusion.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "cluster/scheduler.hpp"
#include "cluster/sim_cluster.hpp"
#include "cluster_harness.hpp"
#include "util/time.hpp"
#include "workloads/array_filter.hpp"
#include "workloads/nat.hpp"

namespace horse::cluster {
namespace {

constexpr util::Nanos kUs = util::kMicrosecond;

/// Two hosts, exact virtual time. Host 0 runs at half speed (factor 2.0)
/// so a re-dispatched orphan on host 1 finishes BEFORE the slow victim's
/// zombie — the delivered completion is the resume, the zombie is the
/// suppressed duplicate. (With homogeneous speeds the zombie always wins
/// the ledger race: it started earlier and loses no work to the steal.)
SimClusterParams two_host_params() {
  SimClusterParams params;
  params.num_hosts = 2;
  params.policy = PolicyKind::kRoundRobin;
  params.defaults.slots = 1;
  params.defaults.jitter = 0.0;  // exact virtual time: no RNG on services
  params.hosts = {params.defaults, params.defaults};
  params.hosts[0].speed = 2.0;
  return params;
}

TEST(ChainSimTest, OrphanedChainResumesFromHopCursor) {
  SimCluster sim(two_host_params());
  // Stages 100/200/300 µs nominal; on the speed-2.0 victim the stage
  // boundaries land at 200, 600, 1200 µs after start.
  sim.submit_chain(0, /*function=*/0, {100 * kUs, 200 * kUs, 300 * kUs});
  ASSERT_EQ(sim.decisions().size(), 1u);
  const HostId victim = sim.decisions()[0].host;
  ASSERT_EQ(victim, 0u) << "round-robin must open on host 0";

  // Crash at 250 µs — inside stage 1, with stage 0 complete. The stolen
  // copy's cursor must land at hop 1: stage 0 is never re-executed, and
  // the re-dispatch carries only the remaining 500 µs of nominal work.
  sim.crash_host(victim, 250 * kUs);
  const auto orphans = sim.declare_dead(victim, 250 * kUs);
  ASSERT_EQ(orphans.size(), 1u);
  sim.redispatch(orphans[0], 250 * kUs);
  sim.run_to_completion();

  ASSERT_EQ(sim.completions().size(), 1u);
  const SimCompletion& done = sim.completions()[0];
  EXPECT_EQ(done.seq, 0u);
  EXPECT_EQ(done.host, 1u);  // forced off the dead host
  EXPECT_EQ(done.chain_hop, 1u);
  EXPECT_EQ(done.chain_stages, 3u);
  EXPECT_EQ(done.start, 250 * kUs);
  EXPECT_EQ(done.finish, 250 * kUs + 500 * kUs);  // stages 1+2 only
  // The dead host still finished its copy (zombie at 1200 µs, well after
  // the resume landed); the ledger ate it.
  EXPECT_EQ(sim.duplicates_suppressed(), 1u);
}

TEST(ChainSimTest, CursorAdvancesStageByStage) {
  // Declaring death at each window between stage boundaries yields the
  // matching cursor — the boundary walk is exact, not approximate. On the
  // speed-2.0 victim the boundaries sit at 200/600/1200 µs; every case is
  // placed so the host-1 resume (nominal speed) beats the zombie, making
  // the cursor observable on the delivered completion.
  const std::vector<util::Nanos> stages = {100 * kUs, 200 * kUs, 300 * kUs};
  struct Case {
    util::Nanos declare_at;
    std::uint32_t expected_hop;
  };
  const Case cases[] = {{100 * kUs, 0}, {200 * kUs, 1}, {599 * kUs, 1},
                        {600 * kUs, 2}, {700 * kUs, 2}};
  for (const Case& c : cases) {
    SimCluster sim(two_host_params());
    sim.submit_chain(0, 0, stages);
    const HostId victim = sim.decisions()[0].host;
    ASSERT_EQ(victim, 0u);
    sim.crash_host(victim, c.declare_at);
    const auto orphans = sim.declare_dead(victim, c.declare_at);
    ASSERT_EQ(orphans.size(), 1u) << "declare at " << c.declare_at;
    sim.redispatch(orphans[0], c.declare_at);
    sim.run_to_completion();
    ASSERT_EQ(sim.completions().size(), 1u) << "declare at " << c.declare_at;
    const SimCompletion& done = sim.completions()[0];
    EXPECT_EQ(done.host, 1u) << "declare at " << c.declare_at;
    EXPECT_EQ(done.chain_hop, c.expected_hop)
        << "declare at " << c.declare_at;
    util::Nanos remaining = 0;
    for (std::size_t i = c.expected_hop; i < stages.size(); ++i) {
      remaining += stages[i];
    }
    EXPECT_EQ(done.finish - done.start, remaining)
        << "declare at " << c.declare_at
        << ": re-dispatch did not carry exactly the remaining stages";
    EXPECT_EQ(sim.duplicates_suppressed(), 1u)
        << "declare at " << c.declare_at;
  }
}

TEST(ChainSimTest, ChainKeepsItsOneDeadlineAcrossRedispatch) {
  SimCluster sim(two_host_params());
  const util::Nanos deadline = 800 * kUs;
  sim.submit_chain(0, 0, {100 * kUs, 200 * kUs, 300 * kUs}, deadline);
  const HostId victim = sim.decisions()[0].host;
  ASSERT_EQ(victim, 0u);
  sim.crash_host(victim, 250 * kUs);
  for (const std::uint64_t seq : sim.declare_dead(victim, 250 * kUs)) {
    sim.redispatch(seq, 250 * kUs);
  }
  sim.run_to_completion();
  ASSERT_EQ(sim.completions().size(), 1u);
  const SimCompletion& done = sim.completions()[0];
  // One deadline for the whole chain, preserved verbatim through the
  // steal + re-dispatch — and met BY the resume (250 + 500 = 750 <
  // 800 µs) where the slow zombie (1200 µs) would have blown it.
  EXPECT_EQ(done.chain_hop, 1u);
  EXPECT_EQ(done.deadline, deadline);
  EXPECT_TRUE(done.met_deadline());
}

TEST(ChainSimTest, StageSplitPreservesTotalService) {
  // The harness feeds chains by splitting one nominal service across
  // stages; SimCluster draws ONE jitter factor on the total, so a chain
  // and a plain submission with equal totals keep identical finish times.
  const auto split = test_harness::stage_split(1'000'001, 3);
  ASSERT_EQ(split.size(), 3u);
  EXPECT_EQ(split[0] + split[1] + split[2], 1'000'001);

  SimClusterParams params = two_host_params();
  params.defaults.jitter = 0.15;
  params.seed = 42;
  SimCluster chain_sim(params);
  SimCluster plain_sim(params);
  chain_sim.submit_chain(0, 0, test_harness::stage_split(900 * kUs, 3));
  plain_sim.submit(0, 0, 900 * kUs);
  chain_sim.run_to_completion();
  plain_sim.run_to_completion();
  ASSERT_EQ(chain_sim.completions().size(), 1u);
  ASSERT_EQ(plain_sim.completions().size(), 1u);
  EXPECT_EQ(chain_sim.completions()[0].finish,
            plain_sim.completions()[0].finish)
      << "chain jitter must be one draw on the total, not per-stage";
}

// ---------------------------------------------------------------------
// Real-threaded half: chains through ClusterScheduler.

faas::FunctionSpec nat_spec() {
  faas::FunctionSpec spec;
  spec.name = "nat";
  spec.implementation = std::make_shared<workloads::NatFunction>(16);
  spec.sandbox.name = "nat-sb";
  spec.sandbox.num_vcpus = 1;
  spec.sandbox.memory_mb = 1;
  spec.sandbox.ull = true;
  return spec;
}

faas::FunctionSpec filter_spec() {
  faas::FunctionSpec spec;
  spec.name = "filter";
  spec.implementation = std::make_shared<workloads::ArrayFilterFunction>();
  spec.sandbox.name = "filter-sb";
  spec.sandbox.num_vcpus = 1;
  spec.sandbox.memory_mb = 1;
  spec.sandbox.ull = true;
  return spec;
}

workloads::Request chain_request() {
  workloads::Request request;
  request.header = "src=10.2.3.4 dst=10.0.0.1 port=443 proto=tcp";
  request.payload = {5, 10, 15};
  request.threshold = 7;
  return request;
}

TEST(ChainClusterTest, ChainsAndPlainSubmissionsShareOneOutcomeSpace) {
  ClusterConfig config;
  config.num_hosts = 3;
  config.workers_per_host = 2;
  config.platform.num_cpus = 4;
  ClusterScheduler cluster(config);
  const auto nat = cluster.register_function(nat_spec);
  const auto filter = cluster.register_function(filter_spec);
  ASSERT_TRUE(nat);
  ASSERT_TRUE(filter);
  faas::WorkflowSpec spec;
  spec.name = "nat-filter";
  spec.stages = {*nat, *filter};
  const auto workflow = cluster.register_workflow(spec);
  ASSERT_TRUE(workflow) << workflow.status().to_report();

  constexpr int kChains = 30;
  constexpr int kPlain = 30;
  for (int i = 0; i < kChains; ++i) {
    cluster.submit_chain(*workflow, chain_request(), faas::StartMode::kCold);
  }
  for (int i = 0; i < kPlain; ++i) {
    cluster.submit(*filter, chain_request(), faas::StartMode::kCold);
  }
  const auto outcomes = cluster.drain();
  ASSERT_EQ(outcomes.size(), static_cast<std::size_t>(kChains + kPlain));
  std::set<std::uint64_t> seqs;
  int chains_seen = 0;
  for (const auto& outcome : outcomes) {
    ASSERT_TRUE(outcome.status.is_ok()) << outcome.status.to_report();
    ASSERT_TRUE(seqs.insert(outcome.seq).second)
        << "seq " << outcome.seq << " produced two outcomes";
    if (outcome.workflow != faas::kNoWorkflow) {
      ++chains_seen;
      EXPECT_EQ(outcome.workflow, *workflow);
      EXPECT_EQ(outcome.chain_stages, 2u);
      EXPECT_EQ(outcome.chain_first_hop, 0u);
      // Both stages really ran: the filter's indexes ride the final
      // response (payload {5,10,15} over threshold 7 → positions 1, 2).
      EXPECT_EQ(outcome.record.response.indexes,
                (std::vector<std::int32_t>{1, 2}));
    }
  }
  EXPECT_EQ(chains_seen, kChains);
}

TEST(ChainClusterTest, UnknownWorkflowRefusedTyped) {
  ClusterConfig config;
  config.num_hosts = 2;
  config.workers_per_host = 1;
  config.platform.num_cpus = 2;
  ClusterScheduler cluster(config);
  const auto filter = cluster.register_function(filter_spec);
  ASSERT_TRUE(filter);
  cluster.submit_chain(/*workflow=*/99, chain_request(),
                       faas::StartMode::kCold);
  const auto outcomes = cluster.drain();
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_FALSE(outcomes[0].status.is_ok());
  EXPECT_EQ(outcomes[0].status.code(), util::StatusCode::kNotFound);
}

TEST(ChainClusterTest, WorkflowRegistrationAgreesAcrossHosts) {
  ClusterConfig config;
  config.num_hosts = 3;
  config.workers_per_host = 1;
  config.platform.num_cpus = 2;
  ClusterScheduler cluster(config);
  const auto nat = cluster.register_function(nat_spec);
  const auto filter = cluster.register_function(filter_spec);
  ASSERT_TRUE(nat && filter);
  faas::WorkflowSpec first;
  first.name = "wf-first";
  first.stages = {*nat, *filter};
  faas::WorkflowSpec second;
  second.name = "wf-second";
  second.stages = {*filter, *nat, *filter};
  const auto id_first = cluster.register_workflow(first);
  const auto id_second = cluster.register_workflow(second);
  ASSERT_TRUE(id_first);
  ASSERT_TRUE(id_second);
  EXPECT_NE(*id_first, *id_second);
  // Duplicate names are refused cluster-wide, same contract as the
  // single-host registry.
  faas::WorkflowSpec duplicate = first;
  EXPECT_FALSE(cluster.register_workflow(duplicate).has_value());
}

}  // namespace
}  // namespace horse::cluster
