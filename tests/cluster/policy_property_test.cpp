// 1024-seed property sweep over the cluster policies and dispatch modes,
// run through the deterministic SimCluster so every failure replays from
// the seed printed in the assertion message.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "cluster/sim_cluster.hpp"
#include "cluster_harness.hpp"

namespace horse::cluster {
namespace {

using test_harness::decision_counts;
using test_harness::feed;
using test_harness::make_workload;
using test_harness::peak_concurrency;
using test_harness::unique_seqs;

constexpr std::uint64_t kSeeds = 1024;
constexpr std::size_t kHosts = 4;

SimClusterParams sweep_params(DispatchMode dispatch, PolicyKind policy,
                              std::uint64_t seed) {
  SimClusterParams params;
  params.num_hosts = kHosts;
  params.dispatch = dispatch;
  params.policy = policy;
  params.seed = seed;
  params.defaults.slots = 2;
  params.defaults.jitter = 0.15;
  return params;
}

test_harness::WorkloadParams sweep_workload() {
  test_harness::WorkloadParams shape;
  shape.count = 160;
  return shape;
}

TEST(ClusterPropertySweepTest, RoundRobinFairnessDeltaAtMostOne) {
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    SimCluster sim(
        sweep_params(DispatchMode::kPush, PolicyKind::kRoundRobin, seed));
    feed(sim, make_workload(seed, sweep_workload()));
    sim.run_to_completion();
    const auto counts = decision_counts(sim, kHosts);
    const auto [min_it, max_it] =
        std::minmax_element(counts.begin(), counts.end());
    ASSERT_LE(*max_it - *min_it, 1u)
        << "round-robin unfair at seed " << seed << ": min " << *min_it
        << " max " << *max_it;
  }
}

TEST(ClusterPropertySweepTest, LeastLoadedNeverPicksStrictlyMoreLoaded) {
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    SimCluster sim(
        sweep_params(DispatchMode::kPush, PolicyKind::kLeastLoaded, seed));
    feed(sim, make_workload(seed, sweep_workload()));
    sim.run_to_completion();
    for (const SimDecision& decision : sim.decisions()) {
      ASSERT_FALSE(decision.candidates.empty()) << "seed " << seed;
      std::size_t chosen_load = 0;
      std::size_t min_load = ~std::size_t{0};
      for (const HostSnapshot& candidate : decision.candidates) {
        min_load = std::min(min_load, candidate.load());
        if (candidate.host == decision.host) {
          chosen_load = candidate.load();
        }
      }
      ASSERT_EQ(chosen_load, min_load)
          << "least-loaded picked load " << chosen_load << " over " << min_load
          << " at seed " << seed << " seq " << decision.seq;
    }
  }
}

TEST(ClusterPropertySweepTest, MostWarmNeverPicksStrictlyColderHost) {
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    SimClusterParams params =
        sweep_params(DispatchMode::kPush, PolicyKind::kMostWarmSlots, seed);
    SimCluster sim(params);
    util::Xoshiro256 rng(seed ^ 0xbeefULL);
    for (std::size_t host = 0; host < kHosts; ++host) {
      sim.set_warm_slots(host, rng.bounded(5));
    }
    feed(sim, make_workload(seed, sweep_workload()));
    sim.run_to_completion();
    for (const SimDecision& decision : sim.decisions()) {
      std::size_t chosen_warm = 0;
      std::size_t max_warm = 0;
      for (const HostSnapshot& candidate : decision.candidates) {
        max_warm = std::max(max_warm, candidate.warm_slots);
        if (candidate.host == decision.host) {
          chosen_warm = candidate.warm_slots;
        }
      }
      ASSERT_EQ(chosen_warm, max_warm)
          << "most-warm picked " << chosen_warm << " over " << max_warm
          << " at seed " << seed << " seq " << decision.seq;
    }
  }
}

TEST(ClusterPropertySweepTest, PullNeverOverfillsAHost) {
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    SimClusterParams params =
        sweep_params(DispatchMode::kPull, PolicyKind::kRoundRobin, seed);
    // Heterogeneous capacities so the invariant is non-trivial.
    params.hosts.resize(kHosts);
    for (std::size_t host = 0; host < kHosts; ++host) {
      params.hosts[host] = params.defaults;
      params.hosts[host].slots = 1 + host % 3;
    }
    SimCluster sim(params);
    feed(sim, make_workload(seed, sweep_workload()));
    sim.run_to_completion();
    const auto peaks = peak_concurrency(sim.completions(), kHosts);
    for (std::size_t host = 0; host < kHosts; ++host) {
      ASSERT_LE(peaks[host], params.hosts[host].slots)
          << "pull overfilled host " << host << " at seed " << seed;
    }
  }
}

TEST(ClusterPropertySweepTest, NoSubmissionLostOrDoubleDispatched) {
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    for (const DispatchMode mode : {DispatchMode::kPush, DispatchMode::kPull}) {
      SimCluster sim(sweep_params(mode, PolicyKind::kLeastLoaded, seed));
      const auto workload = make_workload(seed, sweep_workload());
      feed(sim, workload);
      sim.run_to_completion();
      ASSERT_EQ(sim.completions().size(), workload.size())
          << to_string(mode) << " lost a submission at seed " << seed;
      ASSERT_TRUE(unique_seqs(sim.completions()))
          << to_string(mode) << " double-dispatched at seed " << seed;
      ASSERT_EQ(sim.decisions().size(), workload.size())
          << to_string(mode) << " decision count mismatch at seed " << seed;
    }
  }
}

TEST(ClusterPropertySweepTest, DecisionLogReplaysBitIdenticallyFromSeed) {
  // A sparse sub-sweep (every 31st seed) re-runs the full pipeline and
  // demands an identical decision log — the replayability contract the
  // other properties rely on when they print a seed.
  for (std::uint64_t seed = 1; seed <= kSeeds; seed += 31) {
    for (const PolicyKind policy :
         {PolicyKind::kRoundRobin, PolicyKind::kLeastLoaded,
          PolicyKind::kMostWarmSlots}) {
      const auto workload = make_workload(seed, sweep_workload());
      SimCluster first(sweep_params(DispatchMode::kPush, policy, seed));
      SimCluster second(sweep_params(DispatchMode::kPush, policy, seed));
      feed(first, workload);
      feed(second, workload);
      first.run_to_completion();
      second.run_to_completion();
      ASSERT_EQ(first.decisions().size(), second.decisions().size());
      for (std::size_t i = 0; i < first.decisions().size(); ++i) {
        ASSERT_EQ(first.decisions()[i].host, second.decisions()[i].host)
            << to_string(policy) << " diverged at seed " << seed << " seq "
            << first.decisions()[i].seq;
        ASSERT_EQ(first.decisions()[i].time, second.decisions()[i].time);
      }
    }
  }
}

}  // namespace
}  // namespace horse::cluster
