// --hosts 1 must be the pre-cluster Invoker, behaviorally: same outcomes,
// same pool state, same error surface. The cluster layer may add latency
// noise (an extra atomic or two) but never semantics.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "cluster/scheduler.hpp"
#include "faas/invoker.hpp"
#include "workloads/array_filter.hpp"

namespace horse::cluster {
namespace {

faas::FunctionSpec filter_spec() {
  faas::FunctionSpec spec;
  spec.name = "filter";
  spec.implementation = std::make_shared<workloads::ArrayFilterFunction>();
  spec.sandbox.name = "filter-sb";
  spec.sandbox.num_vcpus = 1;
  spec.sandbox.memory_mb = 1;
  spec.sandbox.ull = true;
  return spec;
}

workloads::Request filter_request() {
  workloads::Request request;
  request.payload = {5, 10, 15};
  request.threshold = 7;
  return request;
}

faas::PlatformConfig platform_config() {
  faas::PlatformConfig config;
  config.num_cpus = 4;
  return config;
}

struct OutcomeDigest {
  std::vector<util::StatusCode> codes;
  std::vector<faas::StartMode> modes;
  std::vector<std::size_t> response_sizes;
};

OutcomeDigest digest(std::vector<faas::SubmissionOutcome> outcomes) {
  std::sort(outcomes.begin(), outcomes.end(),
            [](const auto& a, const auto& b) { return a.seq < b.seq; });
  OutcomeDigest out;
  for (const auto& outcome : outcomes) {
    out.codes.push_back(outcome.status.code());
    out.modes.push_back(outcome.mode);
    out.response_sizes.push_back(outcome.record.response.indexes.size());
  }
  return out;
}

template <typename SubmitFn>
void drive(SubmitFn submit, faas::FunctionId filter) {
  for (int i = 0; i < 24; ++i) {
    submit(filter, filter_request(),
           i % 3 == 0 ? faas::StartMode::kHorse : faas::StartMode::kCold);
  }
  // And two deliberate failures: unknown function, empty-pool warm start
  // is NOT included (degradation would mask it nondeterministically);
  // unknown-function is mode-independent.
  submit(999, filter_request(), faas::StartMode::kCold);
}

TEST(SingleHostEquivalenceTest, OutcomesMatchTheInvokerPath) {
  // Invoker path.
  faas::Platform platform(platform_config());
  const auto invoker_filter = platform.registry().add(filter_spec());
  ASSERT_TRUE(invoker_filter);
  ASSERT_TRUE(platform.provision(*invoker_filter, 2).is_ok());
  faas::Invoker invoker(platform, 2);
  drive(
      [&](faas::FunctionId fn, workloads::Request request,
          faas::StartMode mode) { invoker.submit(fn, std::move(request), mode); },
      *invoker_filter);
  const OutcomeDigest single = digest(invoker.drain());

  // Cluster path, one host, same worker count, same platform template
  // (host 0's seed offset is zero, so the two platforms are identical).
  ClusterConfig config;
  config.num_hosts = 1;
  config.workers_per_host = 2;
  config.platform = platform_config();
  ClusterScheduler cluster(config);
  const auto cluster_filter = cluster.register_function(filter_spec);
  ASSERT_TRUE(cluster_filter);
  EXPECT_EQ(*cluster_filter, *invoker_filter);
  ASSERT_TRUE(cluster.provision(*cluster_filter, 2).is_ok());
  drive(
      [&](faas::FunctionId fn, workloads::Request request,
          faas::StartMode mode) { cluster.submit(fn, std::move(request), mode); },
      *cluster_filter);
  const OutcomeDigest clustered = digest(cluster.drain());

  EXPECT_EQ(single.codes, clustered.codes);
  EXPECT_EQ(single.modes, clustered.modes);
  EXPECT_EQ(single.response_sizes, clustered.response_sizes);

  // Same residual pool state on both sides.
  EXPECT_EQ(platform.warm_pool().available(*invoker_filter),
            cluster.host(0).platform().warm_pool().available(*cluster_filter));
}

TEST(SingleHostEquivalenceTest, SingleHostOutcomesAllNameHostZero) {
  ClusterConfig config;
  config.num_hosts = 1;
  config.workers_per_host = 2;
  config.platform = platform_config();
  ClusterScheduler cluster(config);
  const auto filter = cluster.register_function(filter_spec);
  ASSERT_TRUE(filter);
  for (int i = 0; i < 10; ++i) {
    cluster.submit(*filter, filter_request(), faas::StartMode::kCold);
  }
  const auto outcomes = cluster.drain();
  ASSERT_EQ(outcomes.size(), 10u);
  for (const auto& outcome : outcomes) {
    EXPECT_EQ(outcome.host, 0u);
    EXPECT_TRUE(outcome.status.is_ok()) << outcome.status.to_report();
  }
  const ClusterCounters counters = cluster.counters();
  EXPECT_EQ(counters.forced_routes, 0u);
  EXPECT_FALSE(counters.degraded_single_host);
}

}  // namespace
}  // namespace horse::cluster
