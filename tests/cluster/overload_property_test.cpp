// 1024-seed overload-control property sweep: every submission produces
// EXACTLY one outcome — a completion XOR a typed rejection (shed at
// admission, queue-full, or expiry at dequeue) — across push/pull, every
// policy, and every deadline mix. Runs through the deterministic
// SimCluster, so a failing seed replays the exact decision sequence.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "cluster/sim_cluster.hpp"
#include "cluster_harness.hpp"
#include "util/time.hpp"

namespace horse::cluster {
namespace {

using test_harness::make_workload;
using test_harness::unique_seqs;

constexpr std::uint64_t kSeeds = 1024;
constexpr std::size_t kHosts = 4;

enum class DeadlineMix { kNone, kTight, kLoose };

constexpr const char* to_string(DeadlineMix mix) {
  switch (mix) {
    case DeadlineMix::kNone: return "none";
    case DeadlineMix::kTight: return "tight";
    case DeadlineMix::kLoose: return "loose";
  }
  return "?";
}

util::Nanos deadline_for(DeadlineMix mix, util::Nanos at) {
  switch (mix) {
    case DeadlineMix::kNone: return 0;
    case DeadlineMix::kTight: return at + 50 * util::kMicrosecond;
    case DeadlineMix::kLoose: return at + 10'000 * util::kMillisecond;
  }
  return 0;
}

void feed_with_deadlines(SimCluster& sim,
                         const test_harness::SeededWorkload& workload,
                         DeadlineMix mix) {
  for (std::size_t i = 0; i < workload.size(); ++i) {
    test_harness::submit_one(sim, workload, i,
                             deadline_for(mix, workload.times[i]));
  }
}

SimClusterParams sweep_params(DispatchMode dispatch, PolicyKind policy,
                              std::uint64_t seed) {
  SimClusterParams params;
  params.num_hosts = kHosts;
  params.dispatch = dispatch;
  params.policy = policy;
  params.seed = seed;
  params.defaults.slots = 2;
  params.defaults.jitter = 0.15;
  return params;
}

test_harness::WorkloadParams sweep_workload() {
  test_harness::WorkloadParams shape;
  shape.count = 100;
  return shape;
}

/// The tentpole invariant: completions and rejections partition the
/// submitted sequence space — nothing lost, nothing double-counted, no
/// seq in both sets, every rejection typed.
void assert_exactly_one_outcome(const SimCluster& sim, std::size_t submitted,
                                std::uint64_t seed, const char* label) {
  ASSERT_TRUE(unique_seqs(sim.completions()))
      << label << " duplicate completion at seed " << seed;
  std::set<std::uint64_t> seen;
  for (const SimCompletion& done : sim.completions()) {
    seen.insert(done.seq);
  }
  for (const SimRejection& rejection : sim.rejections()) {
    ASSERT_NE(rejection.reject, faas::SubmissionReject::kNone)
        << label << " untyped rejection at seed " << seed << " seq "
        << rejection.seq;
    ASSERT_TRUE(rejection.reject == faas::SubmissionReject::kQueueShed ||
                rejection.reject == faas::SubmissionReject::kQueueFull ||
                rejection.reject == faas::SubmissionReject::kDeadlineExpired)
        << label << " unexpected reject reason at seed " << seed;
    ASSERT_TRUE(seen.insert(rejection.seq).second)
        << label << " seq " << rejection.seq
        << " has two outcomes at seed " << seed;
  }
  ASSERT_EQ(seen.size(), submitted)
      << label << " lost submissions at seed " << seed << ": "
      << sim.completions().size() << " completed + "
      << sim.rejections().size() << " rejected";
  ASSERT_EQ(*seen.rbegin(), submitted - 1)
      << label << " seq space has holes at seed " << seed;
}

TEST(OverloadPropertySweepTest, ExactlyOneOutcomeAcrossAllConfigurations) {
  const DispatchMode modes[] = {DispatchMode::kPush, DispatchMode::kPull};
  const PolicyKind policies[] = {PolicyKind::kRoundRobin,
                                 PolicyKind::kLeastLoaded,
                                 PolicyKind::kMostWarmSlots};
  const DeadlineMix mixes[] = {DeadlineMix::kNone, DeadlineMix::kTight,
                               DeadlineMix::kLoose};
  for (const DispatchMode mode : modes) {
    for (const PolicyKind policy : policies) {
      for (const DeadlineMix mix : mixes) {
        for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
          SimCluster sim(sweep_params(mode, policy, seed));
          const auto workload = make_workload(seed, sweep_workload());
          feed_with_deadlines(sim, workload, mix);
          sim.run_to_completion();
          const char* label = to_string(mix);
          assert_exactly_one_outcome(sim, workload.size(), seed, label);
          if (mix == DeadlineMix::kNone) {
            ASSERT_TRUE(sim.rejections().empty())
                << "deadline-free traffic shed at seed " << seed << " ("
                << to_string(mode) << ")";
          }
        }
      }
    }
  }
}

TEST(OverloadPropertySweepTest, ExactlyOneOutcomeWithChainMixes) {
  // The tentpole invariant extends to workflow chains: a chain is ONE
  // routed unit — one seq, one deadline — so mixing ~30% chains into the
  // sweep must leave the outcome partition intact, and every delivered
  // chain completion must carry a cursor inside its stage list.
  const DispatchMode modes[] = {DispatchMode::kPush, DispatchMode::kPull};
  const DeadlineMix mixes[] = {DeadlineMix::kNone, DeadlineMix::kTight,
                               DeadlineMix::kLoose};
  std::uint64_t chain_completions = 0;
  for (const DispatchMode mode : modes) {
    for (const DeadlineMix mix : mixes) {
      for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
        SimCluster sim(
            sweep_params(mode, PolicyKind::kLeastLoaded, seed));
        test_harness::WorkloadParams shape = sweep_workload();
        shape.chain_fraction = 0.3;
        const auto workload = make_workload(seed, shape);
        feed_with_deadlines(sim, workload, mix);
        sim.run_to_completion();
        assert_exactly_one_outcome(sim, workload.size(), seed, "chain-mix");
        for (const SimCompletion& done : sim.completions()) {
          if (done.chain_stages > 0) {
            ASSERT_LT(done.chain_hop, done.chain_stages)
                << "chain cursor past the last stage at seed " << seed;
            ++chain_completions;
          }
        }
      }
    }
  }
  EXPECT_GT(chain_completions, 0u)
      << "the chain mix never delivered a chain completion";
}

TEST(OverloadPropertySweepTest, DeadlineFreeTrafficUnchangedByAdmission) {
  // The back-compat contract: with no deadlines in play, admission on vs
  // off produces byte-identical schedules (same hosts, starts, finishes).
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    SimClusterParams on =
        sweep_params(DispatchMode::kPush, PolicyKind::kLeastLoaded, seed);
    SimClusterParams off = on;
    on.admission = true;
    off.admission = false;
    SimCluster sim_on(on);
    SimCluster sim_off(off);
    const auto workload = make_workload(seed, sweep_workload());
    test_harness::feed(sim_on, workload);
    test_harness::feed(sim_off, workload);
    sim_on.run_to_completion();
    sim_off.run_to_completion();
    ASSERT_EQ(sim_on.completions().size(), sim_off.completions().size())
        << "seed " << seed;
    for (std::size_t i = 0; i < sim_on.completions().size(); ++i) {
      const SimCompletion& a = sim_on.completions()[i];
      const SimCompletion& b = sim_off.completions()[i];
      ASSERT_EQ(a.seq, b.seq) << "seed " << seed;
      ASSERT_EQ(a.host, b.host) << "seed " << seed << " seq " << a.seq;
      ASSERT_EQ(a.start, b.start) << "seed " << seed << " seq " << a.seq;
      ASSERT_EQ(a.finish, b.finish) << "seed " << seed << " seq " << a.seq;
    }
  }
}

TEST(OverloadPropertySweepTest, TightDeadlinesShedInsteadOfSilentLoss) {
  // Under overload the cluster must refuse work — and every refusal must
  // be typed. The mix interleaves deadline-free traffic (which queues
  // without bound and drives the queueing EWMA up) with tight-deadline
  // traffic: once the estimate exceeds the slack, tight submissions are
  // shed at admission; tight tasks admitted before the estimate caught up
  // expire at dequeue. Aggregate across the sweep so the assertion is
  // about the mechanism, not one seed's arrival pattern.
  std::uint64_t total_shed = 0;
  std::uint64_t total_expired = 0;
  std::uint64_t total_completed = 0;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    SimClusterParams params =
        sweep_params(DispatchMode::kPush, PolicyKind::kRoundRobin, seed);
    // Single host, single slot: the min-over-hosts estimate is the host's
    // own EWMA, which rises monotonically under sustained overload — the
    // deterministic way to reach the shed threshold. (Multi-host
    // round-robin keeps the optimistic MIN estimate low: one host with a
    // fresh zero-queueing start vetoes the shed, by design.)
    params.num_hosts = 1;
    params.defaults.slots = 1;
    SimCluster sim(params);
    test_harness::WorkloadParams shape = sweep_workload();
    shape.mean_gap = 20 * util::kMicrosecond;  // ~5x one host's capacity
    const auto workload = make_workload(seed, shape);
    for (std::size_t i = 0; i < workload.size(); ++i) {
      sim.submit(workload.times[i], workload.functions[i],
                 workload.services[i],
                 i % 2 == 0 ? 0
                            : deadline_for(DeadlineMix::kTight,
                                           workload.times[i]));
    }
    sim.run_to_completion();
    assert_exactly_one_outcome(sim, workload.size(), seed, "tight-overload");
    for (const SimRejection& rejection : sim.rejections()) {
      (rejection.reject == faas::SubmissionReject::kDeadlineExpired
           ? total_expired
           : total_shed)++;
    }
    total_completed += sim.completions().size();
  }
  EXPECT_GT(total_shed, 0u) << "admission never shed under 5x overload";
  EXPECT_GT(total_expired, 0u) << "expiry-at-dequeue never fired";
  EXPECT_GT(total_completed, 0u) << "overload control starved the cluster";
}

TEST(OverloadPropertySweepTest, AdmissionImprovesGoodputUnderOverload) {
  // E19 in miniature: the same tight-deadline overload with admission on
  // vs off. Admission converts would-be-late executions into typed
  // refusals, so fewer completions blow their deadline (less wasted
  // work) while on-time completions stay comparable.
  std::uint64_t met_on = 0;
  std::uint64_t late_on = 0;
  std::uint64_t met_off = 0;
  std::uint64_t late_off = 0;
  for (std::uint64_t seed = 1; seed <= 256; ++seed) {
    SimClusterParams on =
        sweep_params(DispatchMode::kPush, PolicyKind::kRoundRobin, seed);
    on.defaults.slots = 1;
    SimClusterParams off = on;
    off.admission = false;
    test_harness::WorkloadParams shape = sweep_workload();
    shape.mean_gap = 20 * util::kMicrosecond;
    const auto workload = make_workload(seed, shape);
    SimCluster sim_on(on);
    SimCluster sim_off(off);
    feed_with_deadlines(sim_on, workload, DeadlineMix::kTight);
    feed_with_deadlines(sim_off, workload, DeadlineMix::kTight);
    sim_on.run_to_completion();
    sim_off.run_to_completion();
    for (const SimCompletion& done : sim_on.completions()) {
      (done.met_deadline() ? met_on : late_on)++;
    }
    for (const SimCompletion& done : sim_off.completions()) {
      (done.met_deadline() ? met_off : late_off)++;
    }
  }
  EXPECT_LT(late_on, late_off)
      << "admission should reduce wasted (past-deadline) executions";
  EXPECT_GT(met_on, 0u);
  // Graceful degradation: refusing early must not destroy goodput.
  EXPECT_GE(met_on * 10, met_off * 9)
      << "goodput with admission fell below 90% of the no-admission run";
}

TEST(OverloadPropertySweepTest, BoundedPullQueueShedsTypedQueueFull) {
  std::uint64_t total_queue_full = 0;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    SimClusterParams params =
        sweep_params(DispatchMode::kPull, PolicyKind::kRoundRobin, seed);
    params.defaults.slots = 1;
    params.pull_queue_capacity = 2;
    SimCluster sim(params);
    test_harness::WorkloadParams shape = sweep_workload();
    shape.mean_gap = 20 * util::kMicrosecond;
    const auto workload = make_workload(seed, shape);
    feed_with_deadlines(sim, workload, DeadlineMix::kLoose);
    sim.run_to_completion();
    assert_exactly_one_outcome(sim, workload.size(), seed, "bounded-pull");
    for (const SimRejection& rejection : sim.rejections()) {
      if (rejection.reject == faas::SubmissionReject::kQueueFull) {
        ++total_queue_full;
      }
    }
  }
  EXPECT_GT(total_queue_full, 0u)
      << "a 2-deep pull queue under 5x overload never refused";
}

}  // namespace
}  // namespace horse::cluster
