#include "cluster/sim_cluster.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "cluster_harness.hpp"

namespace horse::cluster {
namespace {

using test_harness::feed;
using test_harness::make_workload;
using test_harness::peak_concurrency;
using test_harness::unique_seqs;

SimClusterParams base_params(std::size_t hosts, DispatchMode dispatch,
                             PolicyKind policy, std::uint64_t seed) {
  SimClusterParams params;
  params.num_hosts = hosts;
  params.dispatch = dispatch;
  params.policy = policy;
  params.seed = seed;
  params.defaults.slots = 1;
  return params;
}

TEST(SimClusterTest, PushStartsImmediatelyWithFreeSlots) {
  SimClusterParams params =
      base_params(1, DispatchMode::kPush, PolicyKind::kRoundRobin, 1);
  params.defaults.slots = 2;
  SimCluster sim(params);
  sim.submit(0, 0, 100);
  sim.submit(0, 0, 100);
  sim.run_to_completion();
  ASSERT_EQ(sim.completions().size(), 2u);
  for (const SimCompletion& done : sim.completions()) {
    EXPECT_EQ(done.queueing(), 0);
    EXPECT_EQ(done.finish, 100);
  }
}

TEST(SimClusterTest, PushQueuesBeyondCapacityFifo) {
  SimCluster sim(
      base_params(1, DispatchMode::kPush, PolicyKind::kRoundRobin, 1));
  sim.submit(0, 0, 100);
  sim.submit(0, 0, 100);
  sim.submit(0, 0, 100);
  sim.run_to_completion();
  ASSERT_EQ(sim.completions().size(), 3u);
  EXPECT_EQ(sim.completions()[0].queueing(), 0);
  EXPECT_EQ(sim.completions()[1].queueing(), 100);
  EXPECT_EQ(sim.completions()[2].queueing(), 200);
}

TEST(SimClusterTest, PullNeverExceedsAnyHostCapacity) {
  SimClusterParams params =
      base_params(2, DispatchMode::kPull, PolicyKind::kRoundRobin, 7);
  SimCluster sim(params);
  for (int i = 0; i < 8; ++i) {
    sim.submit(0, 0, 50);
  }
  sim.run_to_completion();
  ASSERT_EQ(sim.completions().size(), 8u);
  for (const std::size_t peak : peak_concurrency(sim.completions(), 2)) {
    EXPECT_LE(peak, 1u);
  }
}

TEST(SimClusterTest, PullBindsLateToTheIdleHost) {
  SimClusterParams params =
      base_params(2, DispatchMode::kPull, PolicyKind::kRoundRobin, 7);
  SimCluster sim(params);
  sim.occupy(0, 1, 10'000);  // host 0 busy for a long time
  sim.submit(1, 3, 50);
  ASSERT_FALSE(sim.decisions().empty());
  EXPECT_EQ(sim.decisions().back().host, 1u);
  sim.run_to_completion();
}

TEST(SimClusterTest, DeterministicReplayFromSeed) {
  const auto workload = make_workload(99);
  SimClusterParams params =
      base_params(4, DispatchMode::kPush, PolicyKind::kLeastLoaded, 99);
  params.defaults.jitter = 0.2;
  SimCluster first(params);
  SimCluster second(params);
  feed(first, workload);
  feed(second, workload);
  first.run_to_completion();
  second.run_to_completion();
  ASSERT_EQ(first.decisions().size(), second.decisions().size());
  for (std::size_t i = 0; i < first.decisions().size(); ++i) {
    EXPECT_EQ(first.decisions()[i].host, second.decisions()[i].host);
    EXPECT_EQ(first.decisions()[i].seq, second.decisions()[i].seq);
  }
  ASSERT_EQ(first.completions().size(), second.completions().size());
  for (std::size_t i = 0; i < first.completions().size(); ++i) {
    EXPECT_EQ(first.completions()[i].finish, second.completions()[i].finish);
    EXPECT_EQ(first.completions()[i].host, second.completions()[i].host);
  }
}

TEST(SimClusterTest, JitterStreamDependsOnSeed) {
  const auto workload = make_workload(5);
  SimClusterParams params =
      base_params(2, DispatchMode::kPush, PolicyKind::kRoundRobin, 5);
  params.defaults.jitter = 0.3;
  SimClusterParams other = params;
  other.seed = 6;
  SimCluster a(params);
  SimCluster b(other);
  feed(a, workload);
  feed(b, workload);
  a.run_to_completion();
  b.run_to_completion();
  bool any_difference = false;
  for (std::size_t i = 0; i < a.completions().size(); ++i) {
    any_difference |= a.completions()[i].finish != b.completions()[i].finish;
  }
  EXPECT_TRUE(any_difference);
}

TEST(SimClusterTest, ForcedRouteWhenNoHostIsHealthy) {
  SimCluster sim(
      base_params(2, DispatchMode::kPush, PolicyKind::kRoundRobin, 1));
  sim.set_healthy(0, false);
  sim.set_healthy(1, false);
  sim.submit(0, 0, 10);
  EXPECT_EQ(sim.forced_routes(), 1u);
  ASSERT_EQ(sim.decisions().size(), 1u);
  EXPECT_TRUE(sim.decisions()[0].forced);
  EXPECT_EQ(sim.decisions()[0].host, 0u);
  sim.run_to_completion();
  EXPECT_EQ(sim.completions().size(), 1u);
}

TEST(SimClusterTest, StolenBacklogRedispatchesExactlyOnce) {
  SimCluster sim(
      base_params(2, DispatchMode::kPush, PolicyKind::kLeastLoaded, 3));
  sim.occupy(0, 1, 1'000'000);
  sim.occupy(1, 1, 1'000'000);
  // Both hosts busy: these queue. LeastLoaded alternates the backlog.
  sim.submit(10, 0, 50);
  sim.submit(10, 1, 50);
  sim.submit(10, 2, 50);
  sim.set_healthy(0, false);
  const std::vector<std::uint64_t> stolen = sim.steal_backlog(0);
  EXPECT_FALSE(stolen.empty());
  for (const std::uint64_t seq : stolen) {
    sim.redispatch(seq, 20);
  }
  sim.run_to_completion();
  // 2 occupy + 3 submissions, each completed exactly once.
  EXPECT_EQ(sim.completions().size(), 5u);
  EXPECT_TRUE(unique_seqs(sim.completions()));
  // Re-dispatch went through the policy again, to the healthy host.
  for (const std::uint64_t seq : stolen) {
    for (const SimCompletion& done : sim.completions()) {
      if (done.seq == seq) {
        EXPECT_EQ(done.host, 1u);
      }
    }
  }
  EXPECT_THROW(sim.redispatch(stolen.front(), 30), std::logic_error);
}

TEST(SimClusterTest, TimeCannotGoBackwards) {
  SimCluster sim(
      base_params(1, DispatchMode::kPush, PolicyKind::kRoundRobin, 1));
  sim.submit(100, 0, 10);
  EXPECT_THROW(sim.submit(50, 0, 10), std::logic_error);
}

TEST(SimClusterTest, SplitIndicesPartitionsTheSchedule) {
  const auto workload = make_workload(17);
  SimClusterParams params =
      base_params(4, DispatchMode::kPush, PolicyKind::kRoundRobin, 17);
  const auto split = split_indices(workload.times, workload.functions, params,
                                   50 * util::kMicrosecond);
  ASSERT_EQ(split.size(), 4u);
  std::set<std::uint64_t> seen;
  for (const auto& slice : split) {
    for (const std::uint64_t index : slice) {
      EXPECT_TRUE(seen.insert(index).second) << "index assigned twice";
    }
  }
  EXPECT_EQ(seen.size(), workload.size());
}

// The E18 shape, deterministically: under a 90/10 short/long mix, push +
// round-robin convoys short requests behind long ones on the host they
// were early-bound to, while pull binds each request to a host that is
// idle NOW. Pull's tail queueing must be strictly better.
TEST(SimClusterTest, PullBeatsPushTailUnderSkew) {
  test_harness::WorkloadParams shape;
  shape.count = 600;
  shape.long_fraction = 0.1;
  const auto workload = make_workload(23, shape);

  SimClusterParams push =
      base_params(4, DispatchMode::kPush, PolicyKind::kRoundRobin, 23);
  SimClusterParams pull = push;
  pull.dispatch = DispatchMode::kPull;

  SimCluster push_sim(push);
  SimCluster pull_sim(pull);
  feed(push_sim, workload);
  feed(pull_sim, workload);
  push_sim.run_to_completion();
  pull_sim.run_to_completion();

  const util::Nanos push_p99 = push_sim.queueing_histogram().p99();
  const util::Nanos pull_p99 = pull_sim.queueing_histogram().p99();
  EXPECT_LT(pull_p99, push_p99)
      << "pull p99 queueing " << pull_p99 << " should beat push " << push_p99;
}

}  // namespace
}  // namespace horse::cluster
